// Read-only adjacency access for streaming heuristics.
//
// LDG's neighbour tallies and equal opportunism's bid terms only ever ask
// one question of the streamed-so-far graph: "who are v's neighbours right
// now?". NeighborView is that single-method seam. DynamicGraph implements
// it directly; the sharded backend substitutes a view over per-shard
// adjacency slices whose visible prefix tracks the sequencer's position, so
// the same scoring code sees bit-identical state whether the graph was
// built inline or by worker threads running ahead of the decisions.
//
// The span contract matches DynamicGraph::Neighbors: valid until the next
// mutation of the underlying storage, entries in insertion (stream) order,
// duplicates preserved.

#ifndef LOOM_GRAPH_NEIGHBOR_VIEW_H_
#define LOOM_GRAPH_NEIGHBOR_VIEW_H_

#include <span>

#include "graph/types.h"

namespace loom {
namespace graph {

class NeighborView {
 public:
  virtual ~NeighborView() = default;

  /// Neighbours of `v` in the visible portion of the streamed-so-far graph
  /// (possibly empty for unknown vertices). Insertion order; duplicate
  /// edges appear once per insertion.
  virtual std::span<const VertexId> Neighbors(VertexId v) const = 0;
};

}  // namespace graph
}  // namespace loom

#endif  // LOOM_GRAPH_NEIGHBOR_VIEW_H_
