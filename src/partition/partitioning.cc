#include "partition/partitioning.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace loom {
namespace partition {

Partitioning::Partitioning(uint32_t k, size_t expected_vertices, double nu)
    : k_(k) {
  assert(k >= 1);
  assert(nu >= 1.0);
  capacity_ = static_cast<size_t>(
      std::ceil(nu * static_cast<double>(expected_vertices) / k));
  if (capacity_ == 0) capacity_ = 1;
  assignment_.assign(expected_vertices, graph::kNoPartition);
  sizes_.assign(k, 0);
}

graph::PartitionId Partitioning::Assign(graph::VertexId v,
                                        graph::PartitionId p) {
  assert(p < k_);
  if (v >= assignment_.size()) {
    assignment_.resize(v + 1, graph::kNoPartition);
  }
  if (assignment_[v] != graph::kNoPartition) return assignment_[v];
  if (AtCapacity(p)) p = LeastLoaded();
  assignment_[v] = p;
  ++sizes_[p];
  ++num_assigned_;
  return p;
}

size_t Partitioning::MinSize() const {
  return *std::min_element(sizes_.begin(), sizes_.end());
}

size_t Partitioning::MaxSize() const {
  return *std::max_element(sizes_.begin(), sizes_.end());
}

graph::PartitionId Partitioning::LeastLoaded() const {
  graph::PartitionId best = 0;
  for (graph::PartitionId p = 1; p < k_; ++p) {
    if (sizes_[p] < sizes_[best]) best = p;
  }
  return best;
}

}  // namespace partition
}  // namespace loom
