// Synthetic MusicBrainz-like music metadata graph (12 labels) — the paper's
// most heterogeneous dataset, where Loom's advantage is most pronounced.
//
// Schema (a pragmatic subset of the real MusicBrainz entity graph): Artists
// release Albums (with occasional collaborations), Albums carry Recordings
// of Works, are published by Labels, tagged with Genres and tied to Releases
// and Events at Places; Artists and Labels live in Areas; Series group
// Albums.

#ifndef LOOM_DATASETS_MUSICBRAINZ_GENERATOR_H_
#define LOOM_DATASETS_MUSICBRAINZ_GENERATOR_H_

#include <cstdint>

#include "datasets/graph_sink.h"
#include "datasets/schema.h"

namespace loom {
namespace datasets {

struct MusicBrainzConfig {
  /// Number of albums; everything else derives from it.
  size_t num_albums = 18000;
  uint64_t seed = 0x3b5;
};

Dataset GenerateMusicBrainz(const MusicBrainzConfig& config);

/// Emit-only path (see graph_sink.h): same walk, no materialised graph.
void EmitMusicBrainz(const MusicBrainzConfig& config,
                     graph::LabelRegistry* registry, GraphSink* sink);

}  // namespace datasets
}  // namespace loom

#endif  // LOOM_DATASETS_MUSICBRAINZ_GENERATOR_H_
