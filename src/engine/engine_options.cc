#include "engine/engine_options.h"

#include <charconv>
#include <cmath>

#include "util/simd.h"

namespace loom {
namespace engine {

namespace {

// ------------------------------------------------------- parse / format

bool ParseU64(std::string_view s, uint64_t* out) {
  if (s.empty()) return false;
  // Accept 0x-prefixed hex (seeds are conventionally written that way).
  int base = 10;
  if (s.size() > 2 && s[0] == '0' && (s[1] == 'x' || s[1] == 'X')) {
    base = 16;
    s.remove_prefix(2);
  }
  uint64_t v = 0;
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v, base);
  if (ec != std::errc() || ptr != s.data() + s.size()) return false;
  *out = v;
  return true;
}

bool ParseDouble(std::string_view s, double* out) {
  if (s.empty()) return false;
  double v = 0.0;
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc() || ptr != s.data() + s.size()) return false;
  if (!std::isfinite(v)) return false;
  *out = v;
  return true;
}

bool ParseBool(std::string_view s, bool* out) {
  if (s == "true" || s == "1" || s == "yes" || s == "on") {
    *out = true;
    return true;
  }
  if (s == "false" || s == "0" || s == "no" || s == "off") {
    *out = false;
    return true;
  }
  return false;
}

std::string FormatU64(uint64_t v) { return std::to_string(v); }

/// Shortest decimal that round-trips to the identical double (C++17
/// to_chars contract) — the property the registry tests pin down.
std::string FormatDouble(double v) {
  char buf[64];
  auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  return ec == std::errc() ? std::string(buf, ptr) : std::string("nan");
}

std::string FormatBool(bool v) { return v ? "true" : "false"; }

// ----------------------------------------------------------- key table

struct KeyDesc {
  std::string_view name;
  /// Type and legal range, quoted verbatim in error messages.
  std::string_view spec;
  /// One-line description for --help-opts / the README options table.
  std::string_view help;
  std::string (*get)(const EngineOptions&);
  bool (*set)(EngineOptions&, std::string_view);
};

// One entry per EngineOptions field, in declaration order. Range checks
// live in the setters so every construction path (CLI, bench config,
// programmatic ApplyOverrides) rejects the same inputs.
const KeyDesc kKeys[] = {
    {"k", "uint, >= 1",
     "number of partitions",
     [](const EngineOptions& o) { return FormatU64(o.k); },
     [](EngineOptions& o, std::string_view v) {
       uint64_t x;
       if (!ParseU64(v, &x) || x < 1 || x > UINT32_MAX) return false;
       o.k = static_cast<uint32_t>(x);
       return true;
     }},
    {"expected_vertices", "uint",
     "expected vertex total n (sizes tables and capacity bounds)",
     [](const EngineOptions& o) { return FormatU64(o.expected_vertices); },
     [](EngineOptions& o, std::string_view v) {
       return ParseU64(v, &o.expected_vertices);
     }},
    {"expected_edges", "uint",
     "expected edge total m (Fennel's objective; adjacency pre-sizing)",
     [](const EngineOptions& o) { return FormatU64(o.expected_edges); },
     [](EngineOptions& o, std::string_view v) {
       return ParseU64(v, &o.expected_edges);
     }},
    {"max_imbalance", "float, >= 1.0",
     "nu: per-partition vertex capacity is nu*n/k",
     [](const EngineOptions& o) { return FormatDouble(o.max_imbalance); },
     [](EngineOptions& o, std::string_view v) {
       double x;
       if (!ParseDouble(v, &x) || x < 1.0) return false;
       o.max_imbalance = x;
       return true;
     }},
    {"adj_page", "uint in [0, 65536] (0 = default)",
     "adjacency arena page capacity; layout/speed only, never quality",
     [](const EngineOptions& o) { return FormatU64(o.adj_page); },
     [](EngineOptions& o, std::string_view v) {
       uint64_t x;
       if (!ParseU64(v, &x) || x > 65536) return false;
       o.adj_page = static_cast<uint32_t>(x);
       return true;
     }},
    {"hub_threshold", "uint (0 = default)",
     "degree at which LDG tallies go incremental; speed only, never quality",
     [](const EngineOptions& o) { return FormatU64(o.hub_threshold); },
     [](EngineOptions& o, std::string_view v) {
       uint64_t x;
       if (!ParseU64(v, &x) || x > UINT32_MAX) return false;
       o.hub_threshold = static_cast<uint32_t>(x);
       return true;
     }},
    {"window_size", "uint, >= 1",
     "loom: sliding window size t (paper default 10000 edges)",
     [](const EngineOptions& o) { return FormatU64(o.window_size); },
     [](EngineOptions& o, std::string_view v) {
       uint64_t x;
       if (!ParseU64(v, &x) || x < 1) return false;
       o.window_size = x;
       return true;
     }},
    {"support_threshold", "float in [0, 1]",
     "loom: motif support threshold T (paper default 0.4)",
     [](const EngineOptions& o) { return FormatDouble(o.support_threshold); },
     [](EngineOptions& o, std::string_view v) {
       double x;
       if (!ParseDouble(v, &x) || x < 0.0 || x > 1.0) return false;
       o.support_threshold = x;
       return true;
     }},
    {"prime", "uint, >= 2",
     "loom: finite-field prime p for signatures (paper: 251)",
     [](const EngineOptions& o) { return FormatU64(o.prime); },
     [](EngineOptions& o, std::string_view v) {
       uint64_t x;
       if (!ParseU64(v, &x) || x < 2 || x > UINT32_MAX) return false;
       o.prime = static_cast<uint32_t>(x);
       return true;
     }},
    {"signature_seed", "uint (decimal or 0x hex)",
     "loom: seed for the label -> random signature value draws",
     [](const EngineOptions& o) { return FormatU64(o.signature_seed); },
     [](EngineOptions& o, std::string_view v) {
       return ParseU64(v, &o.signature_seed);
     }},
    {"alpha", "float in (0, 1]",
     "loom: equal-opportunism rationing aggression (Eq. 2)",
     [](const EngineOptions& o) { return FormatDouble(o.alpha); },
     [](EngineOptions& o, std::string_view v) {
       double x;
       if (!ParseDouble(v, &x) || x <= 0.0 || x > 1.0) return false;
       o.alpha = x;
       return true;
     }},
    {"balance_b", "float, >= 1.0",
     "loom: partitions larger than b*Smin get ration 0",
     [](const EngineOptions& o) { return FormatDouble(o.balance_b); },
     [](EngineOptions& o, std::string_view v) {
       double x;
       if (!ParseDouble(v, &x) || x < 1.0) return false;
       o.balance_b = x;
       return true;
     }},
    {"neighbor_bid_weight", "float, >= 0",
     "loom: weight of the assigned-neighbour term in Eq. 1 bids",
     [](const EngineOptions& o) { return FormatDouble(o.neighbor_bid_weight); },
     [](EngineOptions& o, std::string_view v) {
       double x;
       if (!ParseDouble(v, &x) || x < 0.0) return false;
       o.neighbor_bid_weight = x;
       return true;
     }},
    {"disable_rationing", "bool (true/false)",
     "loom: ablation escape hatch disabling rationing entirely",
     [](const EngineOptions& o) { return FormatBool(o.disable_rationing); },
     [](EngineOptions& o, std::string_view v) {
       return ParseBool(v, &o.disable_rationing);
     }},
    {"max_matches_per_vertex", "uint, >= 1",
     "loom: matcher cap on live matches considered per endpoint",
     [](const EngineOptions& o) { return FormatU64(o.max_matches_per_vertex); },
     [](EngineOptions& o, std::string_view v) {
       uint64_t x;
       if (!ParseU64(v, &x) || x < 1) return false;
       o.max_matches_per_vertex = x;
       return true;
     }},
    {"compact_interval", "uint, >= 1",
     "loom: compact the match list every this many admitted edges",
     [](const EngineOptions& o) { return FormatU64(o.compact_interval); },
     [](EngineOptions& o, std::string_view v) {
       uint64_t x;
       if (!ParseU64(v, &x) || x < 1) return false;
       o.compact_interval = x;
       return true;
     }},
    {"fennel_gamma", "float, > 1.0",
     "fennel: objective exponent gamma (paper evaluation: 1.5)",
     [](const EngineOptions& o) { return FormatDouble(o.fennel_gamma); },
     [](EngineOptions& o, std::string_view v) {
       double x;
       if (!ParseDouble(v, &x) || x <= 1.0) return false;
       o.fennel_gamma = x;
       return true;
     }},
    {"lambda", "float, >= 0",
     "hdrf: balance weight (0 = pure greedy; HDRF paper default 1.1)",
     [](const EngineOptions& o) { return FormatDouble(o.lambda); },
     [](EngineOptions& o, std::string_view v) {
       double x;
       if (!ParseDouble(v, &x) || x < 0.0) return false;
       o.lambda = x;
       return true;
     }},
    {"epsilon", "float, > 0",
     "hdrf: balance-term denominator guard",
     [](const EngineOptions& o) { return FormatDouble(o.epsilon); },
     [](EngineOptions& o, std::string_view v) {
       double x;
       if (!ParseDouble(v, &x) || x <= 0.0) return false;
       o.epsilon = x;
       return true;
     }},
    {"threshold_factor", "float, > 0",
     "hep: high/low-degree split at threshold_factor * mean partial degree",
     [](const EngineOptions& o) { return FormatDouble(o.threshold_factor); },
     [](EngineOptions& o, std::string_view v) {
       double x;
       if (!ParseDouble(v, &x) || x <= 0.0) return false;
       o.threshold_factor = x;
       return true;
     }},
    {"simd", "one of auto|scalar|sse2|avx2",
     "force the SIMD kernel dispatch level; all levels bit-identical",
     [](const EngineOptions& o) { return o.simd; },
     [](EngineOptions& o, std::string_view v) {
       util::simd::Level level;
       if (v != "auto" && !util::simd::ParseLevel(v, &level)) return false;
       o.simd = std::string(v);
       return true;
     }},
    {"shards", "uint in [1, 256]",
     "loom-sharded: shard worker threads S (output identical for every S)",
     [](const EngineOptions& o) { return FormatU64(o.shards); },
     [](EngineOptions& o, std::string_view v) {
       uint64_t x;
       if (!ParseU64(v, &x) || x < 1 || x > 256) return false;
       o.shards = static_cast<uint32_t>(x);
       return true;
     }},
    {"shard_queue_depth", "uint, >= 1",
     "loom-sharded: bounded fan-out work-queue depth per shard",
     [](const EngineOptions& o) { return FormatU64(o.shard_queue_depth); },
     [](EngineOptions& o, std::string_view v) {
       uint64_t x;
       if (!ParseU64(v, &x) || x < 1) return false;
       o.shard_queue_depth = x;
       return true;
     }},
};

std::string KnownKeyList() {
  std::string out;
  for (const KeyDesc& d : kKeys) {
    if (!out.empty()) out += ", ";
    out += d.name;
  }
  return out;
}

}  // namespace

bool EngineOptions::Set(std::string_view key, std::string_view value,
                        std::string* error) {
  for (const KeyDesc& d : kKeys) {
    if (d.name != key) continue;
    if (!d.set(*this, value)) {
      if (error != nullptr) {
        *error = "invalid value '" + std::string(value) + "' for key '" +
                 std::string(key) + "' (expected " + std::string(d.spec) + ")";
      }
      return false;
    }
    return true;
  }
  if (error != nullptr) {
    *error = "unknown EngineOptions key '" + std::string(key) +
             "'; known keys: " + KnownKeyList();
  }
  return false;
}

std::string EngineOptions::Get(std::string_view key, bool* found) const {
  for (const KeyDesc& d : kKeys) {
    if (d.name == key) {
      if (found != nullptr) *found = true;
      return d.get(*this);
    }
  }
  if (found != nullptr) *found = false;
  return "";
}

bool EngineOptions::ApplyOverrides(const std::vector<std::string>& overrides,
                                   std::string* error) {
  for (const std::string& kv : overrides) {
    const size_t eq = kv.find('=');
    if (eq == std::string::npos || eq == 0) {
      if (error != nullptr) {
        *error = "malformed override '" + kv + "' (expected key=value)";
      }
      return false;
    }
    if (!Set(std::string_view(kv).substr(0, eq),
             std::string_view(kv).substr(eq + 1), error)) {
      return false;
    }
  }
  return true;
}

std::vector<std::pair<std::string, std::string>> EngineOptions::ToFlat()
    const {
  std::vector<std::pair<std::string, std::string>> out;
  out.reserve(std::size(kKeys));
  for (const KeyDesc& d : kKeys) {
    out.emplace_back(std::string(d.name), d.get(*this));
  }
  return out;
}

std::vector<std::string_view> EngineOptions::KeyNames() {
  std::vector<std::string_view> out;
  out.reserve(std::size(kKeys));
  for (const KeyDesc& d : kKeys) out.push_back(d.name);
  return out;
}

std::vector<EngineOptions::KeyInfo> EngineOptions::KeyTable() {
  std::vector<KeyInfo> out;
  out.reserve(std::size(kKeys));
  for (const KeyDesc& d : kKeys) out.push_back({d.name, d.spec, d.help});
  return out;
}

}  // namespace engine
}  // namespace loom
