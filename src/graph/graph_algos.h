// Traversal orders and structural statistics over LabeledGraph.
//
// The evaluation (Sec. 5.1) streams each graph in breadth-first, depth-first
// or random edge order; these functions produce the corresponding edge
// permutations deterministically.

#ifndef LOOM_GRAPH_GRAPH_ALGOS_H_
#define LOOM_GRAPH_GRAPH_ALGOS_H_

#include <cstdint>
#include <vector>

#include "graph/labeled_graph.h"
#include "graph/types.h"
#include "util/rng.h"

namespace loom {
namespace graph {

/// Edge ids in the order a breadth-first search across all connected
/// components discovers them. Every edge appears exactly once (when first
/// touched from either endpoint). Deterministic: components are entered in
/// ascending root id, neighbours scanned in CSR order.
std::vector<EdgeId> BfsEdgeOrder(const LabeledGraph& g);

/// Edge ids in depth-first discovery order across all components.
std::vector<EdgeId> DfsEdgeOrder(const LabeledGraph& g);

/// Random permutation of all edge ids under the given generator.
std::vector<EdgeId> RandomEdgeOrder(const LabeledGraph& g, util::Rng* rng);

/// Connected components: returns component id per vertex and sets
/// *num_components.
std::vector<uint32_t> ConnectedComponents(const LabeledGraph& g,
                                          size_t* num_components);

/// Returns a copy of `g` without degree-0 vertices, ids renumbered densely
/// (relative order preserved). Streaming partitioners only ever see vertices
/// through edges, so datasets are compacted with this before streaming.
LabeledGraph DropIsolatedVertices(const LabeledGraph& g);

/// Degree summary statistics.
struct DegreeStats {
  size_t min = 0;
  size_t max = 0;
  double mean = 0.0;
};
DegreeStats ComputeDegreeStats(const LabeledGraph& g);

}  // namespace graph
}  // namespace loom

#endif  // LOOM_GRAPH_GRAPH_ALGOS_H_
