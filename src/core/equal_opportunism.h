// The equal opportunism allocation heuristic (Sec. 4, Eq. 1-3).
//
// When an edge e is evicted from the window, its cluster of motif matches
// Me = {⟨E1,m1⟩...⟨En,mn⟩} is allocated to the single partition with the
// highest *rationed* total bid:
//
//   bid(Si, ⟨Ek,mk⟩) = N(Si, Ek) · (1 - |V(Si)|/C) · supp(mk)       (Eq. 1)
//   l(Si)            = (Smin / |V(Si)|) · α_eff                      (Eq. 2)
//   winner           = argmax_Si  l(Si) · Σ_{k < ⌈l(Si)·|Me|⌉} bid   (Eq. 3)
//
// where matches are sorted by support descending and α_eff follows the
// paper's piecewise rule: 1 when |V(Si)| equals the smallest partition,
// 0 when it exceeds b·Smin, the user α (default 2/3) otherwise.
//
// NOTE on Eq. 2: the paper's displayed formula reads |V(Si)|/Smin · α, but
// its prose ("inversely correlated with Si's size") and worked example
// (l = 1/1.33 · 1/1.5 = 1/2) both require the reciprocal; we implement the
// reciprocal and treat Smin = 0 (empty partitions exist) as Smin = 1 to keep
// the ratio defined. See DESIGN.md "ambiguities".

#ifndef LOOM_CORE_EQUAL_OPPORTUNISM_H_
#define LOOM_CORE_EQUAL_OPPORTUNISM_H_

#include <vector>

#include "graph/neighbor_view.h"
#include "motif/match_list.h"
#include "partition/partitioning.h"
#include "tpstry/tpstry.h"

namespace loom {
namespace core {

struct EqualOpportunismConfig {
  /// Rationing aggression α in (0, 1]; the paper's empirical default is 2/3.
  double alpha = 2.0 / 3.0;
  /// Imbalance bound b: partitions larger than b·Smin get ration 0 (their
  /// bids are muted entirely). Paper default 1.1, emulating Fennel.
  double balance_b = 1.1;
  /// Weight of the assigned-neighbour term in the bid: Eq. 1's N counts
  /// match vertices resident in Si; we additionally count (at this weight)
  /// the match vertices' already-assigned neighbours in Si, so clusters land
  /// near their satellite structure too. The paper presents N as "a
  /// generalisation of LDG's [neighbour count] N"; 0 recovers the literal
  /// Eq. 1 (ablated in bench/ablation_alpha).
  double neighbor_bid_weight = 0.25;
  /// Escape hatch for the ablation bench: disables rationing entirely
  /// (every partition considers and receives the full match cluster).
  bool disable_rationing = false;
};

/// What to do with the evictee's match cluster.
struct AllocationDecision {
  graph::PartitionId partition = graph::kNoPartition;
  /// Length of the support-ordered prefix of Me the winner bid on (Decide
  /// sorts the caller's cluster in place); exactly those matches' edges are
  /// assigned to `partition`. Remaining matches are implicitly dropped
  /// (their shared edge e is leaving the window).
  size_t take = 0;
};

class EqualOpportunism {
 public:
  /// `trie` supplies match supports, `neighborhood` the streamed-so-far
  /// adjacency for the neighbour-bid term (may be nullptr to disable it);
  /// both must outlive the allocator.
  EqualOpportunism(const tpstry::Tpstry* trie,
                   const graph::NeighborView* neighborhood,
                   EqualOpportunismConfig config);

  /// The rationing function l(Si) in [0, 1].
  double Ration(graph::PartitionId si, const partition::Partitioning& p) const;

  /// Decides the winning partition and the prefix of matches it takes. `me`
  /// is the (unordered) set of live match handles (resolved through `ml`)
  /// containing the evicted edge; it is sorted support-descending IN PLACE
  /// (no copy — eviction is the partitioner's second-hottest path). Never
  /// returns kNoPartition: when every bid is zero (cold start, or none of
  /// the cluster's vertices are resident anywhere yet) `fallback` wins —
  /// callers pass an LDG-style choice for the evictee so cluster seeding
  /// still uses neighbourhood information.
  AllocationDecision Decide(const motif::MatchList& ml,
                            std::vector<motif::MatchHandle>& me,
                            const partition::Partitioning& p,
                            graph::PartitionId fallback) const;

  /// Decide without the fallback step: partition stays kNoPartition when no
  /// positive bid exists, so the caller can compute its (expensive,
  /// adjacency-scanning) fallback lazily. Sorts `me` like Decide.
  AllocationDecision DecideBids(const motif::MatchList& ml,
                                std::vector<motif::MatchHandle>& me,
                                const partition::Partitioning& p) const;

 private:
  /// Eq. 1: vertex overlap, residual-capacity weighted, support weighted.
  /// Kept for tests/ablations; Decide uses the batched per-partition tally
  /// below (bit-identical arithmetic, one adjacency pass per match instead
  /// of one per (partition, match) pair).
  double Bid(graph::PartitionId si, const motif::Match& match,
             const partition::Partitioning& p) const;

  /// Ration with Smin and the b-cutoff's average hoisted out (Decide
  /// computes them once per eviction instead of once per partition).
  double RationWith(double size, double smin, double avg) const;

  const tpstry::Tpstry* trie_;
  const graph::NeighborView* neighborhood_;
  EqualOpportunismConfig config_;

  /// Per-eviction scratch (Decide is on the eviction hot path).
  struct SortKey {
    double support;
    size_t num_edges;
    uint64_t key;
    motif::MatchHandle handle;
  };
  mutable std::vector<SortKey> sort_scratch_;
  mutable std::vector<double> overlap_scratch_;  // me.size() x k tallies
  // Per-vertex neighbour tallies, cached across the cluster's matches (they
  // share hub vertices; each vertex's adjacency is scanned at most once per
  // eviction instead of once per containing match).
  mutable std::vector<graph::VertexId> nbr_cached_vertices_;
  mutable std::vector<uint32_t> nbr_rows_;  // k counts per cached vertex
  mutable std::vector<uint32_t> nbr_match_tally_;  // per-match accumulator
  // Per-partition inputs/outputs of the vectorised Eq. 3 totals pass.
  mutable std::vector<double> ration_scratch_;
  mutable std::vector<double> residual_scratch_;
  mutable std::vector<uint32_t> count_scratch_;
  mutable std::vector<double> support_scratch_;
  mutable std::vector<double> totals_scratch_;
};

}  // namespace core
}  // namespace loom

#endif  // LOOM_CORE_EQUAL_OPPORTUNISM_H_
