#include "query/query.h"

#include <cassert>

namespace loom {
namespace query {

void Workload::Add(std::string name, graph::PatternGraph pattern,
                   double frequency) {
  assert(frequency > 0.0);
  assert(pattern.NumEdges() >= 1);
  assert(pattern.IsConnected());
  queries_.push_back({std::move(name), std::move(pattern), frequency});
}

double Workload::TotalFrequency() const {
  double total = 0.0;
  for (const Query& q : queries_) total += q.frequency;
  return total;
}

void Workload::Normalize() {
  const double total = TotalFrequency();
  if (total <= 0.0) return;
  for (Query& q : queries_) q.frequency /= total;
}

}  // namespace query
}  // namespace loom
