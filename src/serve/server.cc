#include "serve/server.h"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <span>
#include <stdexcept>

#include "partition/partition_metrics.h"

namespace loom {
namespace serve {

namespace {

/// EdgeSource over an already-stamped span: the decision thread assigns
/// stream ids BEFORE handing edges to the session, so this source must
/// never touch them.
class SpanSource : public engine::EdgeSource {
 public:
  explicit SpanSource(std::span<const stream::StreamEdge> edges)
      : edges_(edges) {}

  size_t NextBatch(std::span<stream::StreamEdge> out) override {
    const size_t n = std::min(out.size(), edges_.size() - served_);
    std::copy_n(edges_.begin() + static_cast<ptrdiff_t>(served_), n,
                out.begin());
    served_ += n;
    return n;
  }
  size_t SizeHint() const override { return edges_.size(); }
  void Reset() override { served_ = 0; }

 private:
  std::span<const stream::StreamEdge> edges_;
  size_t served_ = 0;
};

bool SendAll(int fd, std::string_view bytes) {
  while (!bytes.empty()) {
    const ssize_t n = ::send(fd, bytes.data(), bytes.size(), MSG_NOSIGNAL);
    if (n <= 0) return false;
    bytes.remove_prefix(static_cast<size_t>(n));
  }
  return true;
}

std::string HexU64(uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

std::string FmtF6(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6f", v);
  return buf;
}

}  // namespace

Server::Server(const ServerConfig& config, const engine::BuildContext& context)
    : config_(config), num_labels_(context.num_labels) {}

std::unique_ptr<Server> Server::Create(const ServerConfig& config,
                                       const engine::BuildContext& context,
                                       std::string* error) {
  auto server = std::unique_ptr<Server>(new Server(config, context));
  // The extension must be attached before Resume so the tracker's parked
  // state restores atomically with the backend it derives from.
  auto make = [&](std::string* err) {
    std::unique_ptr<engine::Session> s =
        engine::Session::Create(config.session, context, err);
    if (s != nullptr) s->SetExtension(&server->tracker_);
    return s;
  };
  if (!config.resume_path.empty()) {
    bool used_fallback = false;
    server->session_ = engine::ResumeSessionWithFallback(
        make, config.resume_path, error, &used_fallback);
    if (server->session_ == nullptr) return nullptr;
    if (used_fallback) {
      std::cerr << "loom_serve: primary checkpoint rejected, resumed from "
                << config.resume_path << ".prev\n";
    }
    // Re-seed the read path: restored placements never fire OnAssign.
    const std::span<const graph::PartitionId> restored =
        server->session_->partitioning().assignments();
    for (size_t v = 0; v < restored.size(); ++v) {
      if (restored[v] != graph::kNoPartition) {
        server->table_.Publish(static_cast<graph::VertexId>(v), restored[v]);
      }
    }
    server->edges_published_.store(server->session_->edges_ingested(),
                                   std::memory_order_release);
    // Resume re-bases the accept cursor too: clients re-sending with seq
    // below the restored cursor get "OK dup" instead of double-ingest.
    server->ingest_accepted_ = server->session_->edges_ingested();
  } else {
    server->session_ = make(error);
    if (server->session_ == nullptr) return nullptr;
  }
  server->session_->AddSink(&server->table_);
  server->session_->AddSink(&server->tracker_);  // after the table: it reads it
  server->session_->AddObserver(&server->latency_);
  if (!config.ingest_log_path.empty()) {
    if (config.registry == nullptr) {
      *error = "ingest log requires config.registry (the label table for "
               "the LOOMES header)";
      return nullptr;
    }
    try {
      server->ingest_log_ = std::make_unique<io::EdgeStreamWriter>(
          config.ingest_log_path, *config.registry,
          config.session.options.expected_vertices, io::StreamFormat::kBinary);
    } catch (const std::exception& e) {
      *error = e.what();
      return nullptr;
    }
  }
  return server;
}

Server::~Server() {
  if (started_ && !shut_down_) {
    // Crash-like: no drain, no final checkpoint (see class comment).
    abort_.store(true, std::memory_order_release);
    Shutdown();
  }
}

void Server::Start() {
  if (started_) return;
  if (!config_.socket_path.empty()) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (config_.socket_path.size() >= sizeof(addr.sun_path)) {
      throw std::runtime_error("socket path too long: " + config_.socket_path);
    }
    std::memcpy(addr.sun_path, config_.socket_path.c_str(),
                config_.socket_path.size() + 1);
    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listen_fd_ < 0) {
      throw std::runtime_error("socket() failed: " +
                               std::string(std::strerror(errno)));
    }
    ::unlink(config_.socket_path.c_str());  // stale socket from a crash
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(listen_fd_, 64) != 0) {
      const std::string detail = std::strerror(errno);
      ::close(listen_fd_);
      listen_fd_ = -1;
      throw std::runtime_error("cannot listen on " + config_.socket_path +
                               ": " + detail);
    }
  }
  started_ = true;
  decision_thread_ = std::thread(&Server::DecisionLoop, this);
  if (listen_fd_ >= 0) listen_thread_ = std::thread(&Server::ListenLoop, this);
  if (!config_.tail_path.empty()) {
    tail_thread_ = std::thread(&Server::TailLoop, this);
  }
}

void Server::Shutdown() {
  if (!started_ || shut_down_) return;
  shut_down_ = true;
  {
    // The flag is checked under queue_mutex_ by every producer/consumer
    // wait; setting it under the lock makes the wake-up race-free.
    std::lock_guard<std::mutex> lock(queue_mutex_);
    stopping_.store(true, std::memory_order_release);
  }
  queue_not_empty_.notify_all();
  queue_not_full_.notify_all();
  // Stop the intake first: no new connections, unblock parked reads.
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  if (listen_thread_.joinable()) listen_thread_.join();
  {
    std::lock_guard<std::mutex> lock(conns_mutex_);
    for (int fd : conn_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  if (tail_thread_.joinable()) tail_thread_.join();
  // The decision thread drains whatever is queued (answering every parked
  // control promise), then — unless aborting — writes the final checkpoint
  // and closes the ingest log.
  if (decision_thread_.joinable()) decision_thread_.join();
  for (std::thread& t : conn_threads_) {
    if (t.joinable()) t.join();
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    ::unlink(config_.socket_path.c_str());
  }
}

Server::EnqueueResult Server::EnqueueEdge(const stream::StreamEdge& e,
                                          const uint64_t* seq,
                                          uint64_t* cursor) {
  std::unique_lock<std::mutex> lock(queue_mutex_);
  queue_not_full_.wait(lock, [&] {
    return queued_edges_ < config_.queue_capacity ||
           stopping_.load(std::memory_order_acquire);
  });
  if (cursor != nullptr) *cursor = ingest_accepted_;
  if (stopping_.load(std::memory_order_acquire)) {
    return EnqueueResult::kStopping;
  }
  // The dedup decision and the accept must be one atomic step (same lock
  // hold): two retries of the same seq racing here must resolve to exactly
  // one accept, and the capacity wait above may have let other accepts
  // advance the cursor past our seq in the meantime.
  if (seq != nullptr) {
    if (*seq < ingest_accepted_) return EnqueueResult::kDuplicate;
    if (*seq > ingest_accepted_) return EnqueueResult::kGap;
  }
  QueueItem item;
  item.kind = QueueItem::Kind::kEdge;
  item.edge = e;
  queue_.push_back(item);
  ++queued_edges_;
  ++ingest_accepted_;
  if (cursor != nullptr) *cursor = ingest_accepted_;
  queue_not_empty_.notify_one();
  return EnqueueResult::kAccepted;
}

std::string Server::RoundtripControl(CommandType type) {
  if (!started_) {
    // No decision thread yet (pre-Start wiring, protocol-level tests):
    // nothing else can touch the session, run the op inline.
    return ControlOnDecisionThread(type);
  }
  std::promise<std::string> promise;
  std::future<std::string> future = promise.get_future();
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    if (stopping_.load(std::memory_order_acquire)) {
      return ErrReply("server shutting down");
    }
    QueueItem item;
    item.kind = QueueItem::Kind::kControl;
    item.control = type;
    item.reply = &promise;
    queue_.push_back(item);
  }
  queue_not_empty_.notify_one();
  return future.get();
}

std::string Server::HandleLine(const std::string& line) {
  Command c;
  std::string err;
  if (!ParseCommand(line, &c, &err)) return ErrReply(err);
  switch (c.type) {
    case CommandType::kIngest: {
      const uint64_t bound = config_.session.options.expected_vertices;
      if (bound > 0 && (c.edge.u >= bound || c.edge.v >= bound)) {
        return ErrReply("vertex id out of range (expected_vertices=" +
                        std::to_string(bound) + ")");
      }
      if (num_labels_ > 0 &&
          (c.edge.label_u >= num_labels_ || c.edge.label_v >= num_labels_)) {
        return ErrReply("label id outside the table (" +
                        std::to_string(num_labels_) + " labels)");
      }
      uint64_t cursor = 0;
      switch (EnqueueEdge(c.edge, c.has_seq ? &c.seq : nullptr, &cursor)) {
        case EnqueueResult::kAccepted:
          return "OK queued";
        case EnqueueResult::kDuplicate:
          // Already accepted at this position — the re-send is dropped, the
          // reply tells the client where its next fresh edge goes.
          return "OK dup seq=" + std::to_string(c.seq) +
                 " cursor=" + std::to_string(cursor);
        case EnqueueResult::kGap:
          return ErrReply("sequence gap: got seq=" + std::to_string(c.seq) +
                          ", next expected " + std::to_string(cursor) +
                          "; re-send from " + std::to_string(cursor));
        case EnqueueResult::kStopping:
          return ErrReply("server shutting down");
      }
      return ErrReply("unreachable");
    }
    case CommandType::kGet: {
      const graph::PartitionId p = table_.Get(c.vertex);
      std::string reply = "OK " + std::to_string(c.vertex) + " ";
      reply += p == graph::kNoPartition ? "-" : std::to_string(p);
      return reply;
    }
    case CommandType::kStats:
      return StatsReply();
    case CommandType::kCheckpoint:
    case CommandType::kFinalize:
    case CommandType::kSnapshotQuality:
      return RoundtripControl(c.type);
    case CommandType::kShutdown:
      shutdown_requested_.store(true, std::memory_order_release);
      return "OK shutting down";
  }
  return ErrReply("unreachable");
}

std::string Server::StatsReply() {
  size_t queued = 0;
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    queued = queued_edges_;
  }
  return "OK edges=" +
         std::to_string(edges_published_.load(std::memory_order_acquire)) +
         " assigned=" + std::to_string(table_.assigned()) +
         " queue=" + std::to_string(queued) +
         " cut=" + std::to_string(tracker_.cut()) +
         " window=" +
         std::to_string(window_population_.load(std::memory_order_relaxed)) +
         " latency[" + latency_.histogram().Snapshot().Summary() + "]";
}

void Server::DecisionLoop() {
  const size_t max_run = std::max<size_t>(config_.session.drive.batch_size, 1);
  std::vector<stream::StreamEdge> run;
  run.reserve(max_run);
  for (;;) {
    run.clear();
    QueueItem control;
    bool have_control = false;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_not_empty_.wait_for(lock, std::chrono::milliseconds(50), [&] {
        return !queue_.empty() || stopping_.load(std::memory_order_acquire);
      });
      if (queue_.empty()) {
        if (stopping_.load(std::memory_order_acquire)) break;
        continue;
      }
      if (abort_.load(std::memory_order_acquire)) {
        // Crash-like teardown: answer parked controls so their connection
        // threads can unwind, drop undecided edges (a real SIGKILL drops
        // them too — durability is the checkpoint's job, not the queue's).
        for (QueueItem& item : queue_) {
          if (item.kind == QueueItem::Kind::kControl) {
            item.reply->set_value(ErrReply("server aborted"));
          }
        }
        queue_.clear();
        queued_edges_ = 0;
        queue_not_full_.notify_all();
        break;
      }
      while (!queue_.empty() && run.size() < max_run) {
        QueueItem& front = queue_.front();
        if (front.kind == QueueItem::Kind::kEdge) {
          run.push_back(front.edge);
          queue_.pop_front();
        } else {
          if (run.empty()) {
            control = front;
            have_control = true;
            queue_.pop_front();
          }
          break;  // keep stream order: finish edges before this control
        }
      }
      queued_edges_ -= run.size();
      queue_not_full_.notify_all();
    }
    if (!run.empty()) IngestRun(&run);
    if (have_control) {
      control.reply->set_value(ControlOnDecisionThread(control.control));
    }
  }
  if (!abort_.load(std::memory_order_acquire)) {
    if (!config_.checkpoint_path.empty()) {
      std::string error;
      if (!RotateCheckpoint(&error)) {
        std::cerr << "loom_serve: final checkpoint failed: " << error << "\n";
      }
    }
    if (ingest_log_ != nullptr) {
      try {
        ingest_log_->Close();
      } catch (const std::exception& e) {
        std::cerr << "loom_serve: closing the ingest log failed: " << e.what()
                  << "\n";
      }
    }
  }
}

void Server::IngestRun(std::vector<stream::StreamEdge>* run) {
  // Stream ids are positions: stamp in queue-accept order, starting at the
  // session's lifetime cursor — the invariant that makes a served stream
  // bit-identical to an offline replay of the same sequence.
  const uint64_t base = session_->edges_ingested();
  for (size_t i = 0; i < run->size(); ++i) {
    (*run)[i].id = static_cast<graph::EdgeId>(base + i);
  }
  const std::span<const stream::StreamEdge> span(run->data(), run->size());
  if (ingest_log_ != nullptr) ingest_log_->AppendBatch(span);
  for (const stream::StreamEdge& e : span) tracker_.AddEdge(e);
  SpanSource source(span);
  session_->IngestSome(source, run->size());
  PublishProgress();
  edges_since_checkpoint_ += run->size();
  if (!config_.checkpoint_path.empty() && config_.checkpoint_every > 0 &&
      edges_since_checkpoint_ >= config_.checkpoint_every) {
    std::string error;
    if (!RotateCheckpoint(&error)) {
      std::cerr << "loom_serve: periodic checkpoint failed: " << error << "\n";
    }
  }
}

std::string Server::ControlOnDecisionThread(CommandType type) {
  switch (type) {
    case CommandType::kCheckpoint: {
      if (config_.checkpoint_path.empty()) {
        return ErrReply("no checkpoint path configured (--checkpoint)");
      }
      std::string error;
      if (!RotateCheckpoint(&error)) return ErrReply(error);
      return "OK checkpoint " + config_.checkpoint_path +
             " edges=" + std::to_string(session_->edges_ingested());
    }
    case CommandType::kFinalize: {
      // End-of-stream: place everything still parked in the window. The
      // backend contract keeps Finalize non-terminal, so ingest may resume
      // after — but a mid-stream FINALIZE changes subsequent decisions
      // versus an uninterrupted run; clients own that trade-off.
      const engine::RunReport report = session_->Finish();
      PublishProgress();
      return "OK finalized edges=" + std::to_string(report.edges) +
             " assigned=" + std::to_string(table_.assigned());
    }
    case CommandType::kSnapshotQuality: {
      // Non-destructive: reports the partitioning AS IS (no finalize — that
      // would perturb every later decision and break offline equivalence).
      const partition::Partitioning& p = session_->partitioning();
      return "OK hash=" +
             HexU64(partition::AssignmentHash(
                 p, config_.session.options.expected_vertices)) +
             " cut=" + std::to_string(tracker_.cut()) +
             " imbalance=" + FmtF6(partition::Imbalance(p));
    }
    default:
      return ErrReply("not a control command");
  }
}

void Server::PublishProgress() {
  edges_published_.store(session_->edges_ingested(),
                         std::memory_order_release);
  engine::ProgressEvent p;
  session_->backend().FillProgress(&p);
  window_population_.store(p.window_population, std::memory_order_relaxed);
}

bool Server::RotateCheckpoint(std::string* error) {
  // Log first, checkpoint second: after any crash the ingest log covers at
  // least the checkpointed prefix, so the history stays replayable.
  if (ingest_log_ != nullptr) {
    try {
      ingest_log_->Flush();
    } catch (const std::exception& e) {
      *error = e.what();
      return false;
    }
  }
  if (!engine::CheckpointSessionRotating(session_.get(),
                                         config_.checkpoint_path, error)) {
    return false;
  }
  edges_since_checkpoint_ = 0;
  return true;
}

void Server::ListenLoop() {
  for (;;) {
    pollfd p{listen_fd_, POLLIN, 0};
    const int r = ::poll(&p, 1, 100);
    if (stopping_.load(std::memory_order_acquire)) return;
    if (r <= 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (stopping_.load(std::memory_order_acquire)) return;
      continue;
    }
    std::lock_guard<std::mutex> lock(conns_mutex_);
    conn_fds_.push_back(fd);
    conn_threads_.emplace_back(&Server::ConnLoop, this, fd);
  }
}

void Server::ConnLoop(int fd) {
  LineFramer framer;
  char buf[4096];
  std::string line;
  bool alive = true;
  while (alive) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    framer.Feed(std::string_view(buf, static_cast<size_t>(n)));
    for (;;) {
      const LineFramer::Result res = framer.Next(&line);
      if (res == LineFramer::Result::kNeedMore) break;
      std::string reply =
          res == LineFramer::Result::kOversize
              ? ErrReply("line exceeds " + std::to_string(kMaxLineBytes) +
                         " bytes")
              : HandleLine(line);
      reply.push_back('\n');
      if (!SendAll(fd, reply)) {
        alive = false;
        break;
      }
    }
  }
  {
    std::lock_guard<std::mutex> lock(conns_mutex_);
    conn_fds_.erase(std::find(conn_fds_.begin(), conn_fds_.end(), fd));
  }
  ::close(fd);
}

void Server::TailLoop() {
  try {
    io::FollowOptions follow;
    follow.follow = true;
    follow.poll_interval_ms = config_.tail_poll_ms;
    follow.stop = &stopping_;
    io::FileEdgeSource source(config_.tail_path, follow);
    const uint64_t cursor = edges_published_.load(std::memory_order_acquire);
    if (cursor > 0) source.SkipTo(cursor);  // resume: skip the decided prefix
    std::vector<stream::StreamEdge> batch(512);
    for (;;) {
      const size_t n = source.NextBatch(batch);
      if (n == 0) return;  // stop signal
      for (size_t i = 0; i < n; ++i) {
        // The tail source is the at-least-once path: no seq, no dedup.
        if (EnqueueEdge(batch[i], nullptr, nullptr) !=
            EnqueueResult::kAccepted) {
          return;
        }
      }
    }
  } catch (const std::exception& e) {
    std::cerr << "loom_serve: tail ingest of '" << config_.tail_path
              << "' failed: " << e.what() << "\n";
  }
}

}  // namespace serve
}  // namespace loom
