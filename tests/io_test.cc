// loom::io coverage: edge-stream write -> read round trips for both
// formats (byte-exact determinism, header metadata, label tables), the
// actionable error paths (bad magic, unsupported version, truncation,
// checksum drift, label-space mismatch), and the assignment sinks.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "datasets/dataset_registry.h"
#include "engine/edge_source.h"
#include "io/assignment_sink.h"
#include "io/edge_stream_io.h"
#include "stream/stream_order.h"

namespace loom {
namespace {

namespace fs = std::filesystem;

fs::path TempDir() {
  const fs::path dir = fs::path(testing::TempDir()) / "loom_io_test";
  fs::create_directories(dir);
  return dir;
}

std::vector<stream::StreamEdge> Drain(engine::EdgeSource& source) {
  std::vector<stream::StreamEdge> out;
  std::vector<stream::StreamEdge> batch(57);  // deliberately odd
  for (;;) {
    const size_t n = source.NextBatch(batch);
    if (n == 0) break;
    out.insert(out.end(), batch.begin(), batch.begin() + n);
  }
  return out;
}

std::string FileBytes(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

struct Written {
  fs::path path;
  datasets::Dataset ds;
  std::vector<stream::StreamEdge> expected;
};

Written WriteDataset(io::StreamFormat format, const std::string& filename) {
  Written w;
  w.path = TempDir() / filename;
  w.ds = datasets::MakeDataset(datasets::DatasetId::kProvGen, 0.02);
  auto source =
      engine::MakeEdgeSource(w.ds, stream::StreamOrder::kBreadthFirst);
  io::WriteEdgeStream(w.path.string(), w.ds.registry, w.ds.NumVertices(),
                      source.get(), format);
  source->Reset();
  w.expected = Drain(*source);
  return w;
}

class EdgeStreamFormatTest
    : public testing::TestWithParam<io::StreamFormat> {};

TEST_P(EdgeStreamFormatTest, RoundTripsExactly) {
  const Written w = WriteDataset(GetParam(), "roundtrip");
  io::FileEdgeSource reader(w.path.string());

  EXPECT_EQ(reader.info().format, GetParam());
  EXPECT_EQ(reader.info().edge_count, w.expected.size());
  EXPECT_EQ(reader.info().vertex_count, w.ds.NumVertices());
  ASSERT_EQ(reader.info().labels.size(), w.ds.registry.size());
  for (size_t i = 0; i < reader.info().labels.size(); ++i) {
    EXPECT_EQ(reader.info().labels[i],
              w.ds.registry.Name(static_cast<graph::LabelId>(i)));
  }

  const std::vector<stream::StreamEdge> got = Drain(reader);
  ASSERT_EQ(got.size(), w.expected.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].id, w.expected[i].id);
    EXPECT_EQ(got[i].u, w.expected[i].u);
    EXPECT_EQ(got[i].v, w.expected[i].v);
    EXPECT_EQ(got[i].label_u, w.expected[i].label_u);
    EXPECT_EQ(got[i].label_v, w.expected[i].label_v);
  }
}

TEST_P(EdgeStreamFormatTest, WritingTwiceIsByteIdentical) {
  const Written a = WriteDataset(GetParam(), "bytes_a");
  const Written b = WriteDataset(GetParam(), "bytes_b");
  EXPECT_EQ(FileBytes(a.path), FileBytes(b.path));
}

TEST_P(EdgeStreamFormatTest, InternLabelsAgreesOrFailsActionably) {
  const Written w = WriteDataset(GetParam(), "labels");
  io::FileEdgeSource reader(w.path.string());

  graph::LabelRegistry fresh;
  std::string error;
  EXPECT_TRUE(reader.InternLabels(&fresh, &error)) << error;
  EXPECT_EQ(fresh.size(), w.ds.registry.size());

  graph::LabelRegistry clashing;
  clashing.Intern("SomethingElse");  // id 0 now taken by a foreign name
  EXPECT_FALSE(reader.InternLabels(&clashing, &error));
  EXPECT_NE(error.find("label"), std::string::npos) << error;
}

INSTANTIATE_TEST_SUITE_P(Formats, EdgeStreamFormatTest,
                         testing::Values(io::StreamFormat::kBinary,
                                         io::StreamFormat::kText),
                         [](const testing::TestParamInfo<io::StreamFormat>& i) {
                           return io::ToString(i.param);
                         });

// ------------------------------------------------------------ error paths

TEST(EdgeStreamErrorTest, BadMagicIsActionable) {
  const fs::path path = TempDir() / "bad_magic";
  std::ofstream(path) << "this is not an edge stream\n";
  try {
    io::FileEdgeSource source(path.string());
    FAIL() << "bad magic should throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("bad magic"), std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find(path.string()), std::string::npos)
        << e.what();
  }
}

TEST(EdgeStreamErrorTest, MissingFileIsActionable) {
  try {
    io::FileEdgeSource source((TempDir() / "does_not_exist").string());
    FAIL() << "missing file should throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("cannot open"), std::string::npos);
  }
}

TEST(EdgeStreamErrorTest, UnsupportedVersionIsActionable) {
  const Written w = WriteDataset(io::StreamFormat::kBinary, "version");
  std::string bytes = FileBytes(w.path);
  bytes[6] = 9;  // version field (little-endian uint16 at offset 6)
  std::ofstream(w.path, std::ios::binary | std::ios::trunc) << bytes;
  try {
    io::FileEdgeSource source(w.path.string());
    FAIL() << "future version should throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("version 9"), std::string::npos)
        << e.what();
  }
}

TEST(EdgeStreamErrorTest, TruncatedFileIsDetected) {
  for (auto format : {io::StreamFormat::kBinary, io::StreamFormat::kText}) {
    const Written w = WriteDataset(format, "truncated");
    std::string bytes = FileBytes(w.path);
    bytes.resize(bytes.size() - 40);  // lose the tail records
    if (format == io::StreamFormat::kText) {
      // Cut on a line boundary so the failure is specifically "fewer edges
      // than the header declares", not a torn record.
      bytes.resize(bytes.rfind('\n') + 1);
    }
    std::ofstream(w.path, std::ios::binary | std::ios::trunc) << bytes;

    io::FileEdgeSource source(w.path.string());
    try {
      Drain(source);
      FAIL() << "truncated " << io::ToString(format) << " should throw";
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find("truncated"), std::string::npos)
          << e.what();
    }
  }
}

TEST(EdgeStreamErrorTest, BinaryChecksumCatchesPayloadCorruption) {
  const Written w = WriteDataset(io::StreamFormat::kBinary, "corrupt");
  std::string bytes = FileBytes(w.path);
  bytes[bytes.size() - 5] ^= 0x20;  // flip a bit inside the last record
  std::ofstream(w.path, std::ios::binary | std::ios::trunc) << bytes;

  io::FileEdgeSource source(w.path.string());
  try {
    Drain(source);
    FAIL() << "corrupt payload should throw";
  } catch (const std::runtime_error& e) {
    // Either the record became structurally invalid (range check) or the
    // checksum catches it at exhaustion — both are loud failures.
    const std::string what = e.what();
    EXPECT_TRUE(what.find("checksum") != std::string::npos ||
                what.find("exceeds") != std::string::npos)
        << what;
  }
}

TEST(EdgeStreamErrorTest, ZeroEdgeStreamsRoundTripAndReset) {
  // A header-only stream is legal; Reset on it must honour the EdgeSource
  // contract instead of seeking to a failed tellg() position.
  graph::LabelRegistry registry;
  registry.Intern("Only");
  for (auto format : {io::StreamFormat::kBinary, io::StreamFormat::kText}) {
    const fs::path path =
        TempDir() / ("empty_" + io::ToString(format));
    {
      io::EdgeStreamWriter writer(path.string(), registry, /*vertex_count=*/3,
                                  format);
      writer.Close();
    }
    io::FileEdgeSource source(path.string());
    EXPECT_EQ(source.info().edge_count, 0u);
    EXPECT_EQ(source.SizeHint(), 0u);
    std::vector<stream::StreamEdge> batch(4);
    EXPECT_EQ(source.NextBatch(batch), 0u);
    EXPECT_NO_THROW(source.Reset()) << io::ToString(format);
    EXPECT_EQ(source.NextBatch(batch), 0u);
  }
}

TEST(EdgeStreamErrorTest, FutureTextVersionIsRejectedNotMisparsed) {
  const fs::path path = TempDir() / "future_text";
  std::ofstream(path) << "# loom-edge-stream v10\nN 2 1\nL a\nE 0 1 0 0\n";
  try {
    io::FileEdgeSource source(path.string());
    FAIL() << "v10 text stream should throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("unsupported format version"),
              std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("v10"), std::string::npos)
        << e.what();
  }
}

TEST(EdgeStreamErrorTest, FailedInternLabelsLeavesRegistryUntouched) {
  const Written w = WriteDataset(io::StreamFormat::kBinary, "intern_atomic");
  io::FileEdgeSource reader(w.path.string());
  ASSERT_GE(reader.info().labels.size(), 2u);

  graph::LabelRegistry clashing;
  clashing.Intern(reader.info().labels[1]);  // file's id-1 name at id 0
  std::string error;
  EXPECT_FALSE(reader.InternLabels(&clashing, &error));
  // The failed check interned nothing: still exactly the one label.
  EXPECT_EQ(clashing.size(), 1u);
  EXPECT_EQ(clashing.Find(reader.info().labels[0]), graph::kInvalidLabel);
}

TEST(EdgeStreamErrorTest, TextFormatIsHumanReadable) {
  const Written w = WriteDataset(io::StreamFormat::kText, "readable");
  std::ifstream in(w.path);
  std::string first;
  std::getline(in, first);
  EXPECT_EQ(first, "# loom-edge-stream v1");
}

// ------------------------------------------------------- assignment sinks

// --------------------------------------------------------------- follow
// Tail-follow coverage. These tests avoid real concurrency where possible:
// ReadFollow returns as soon as at least one COMPLETE record is on disk, so
// writing (and flushing) before each NextBatch keeps everything
// deterministic and poll-free.

stream::StreamEdge MakeEdge(uint32_t u, uint32_t v) {
  stream::StreamEdge e;
  e.u = u;
  e.v = v;
  e.label_u = 0;
  e.label_v = 1;
  return e;
}

graph::LabelRegistry TwoLabels() {
  graph::LabelRegistry registry;
  registry.Intern("a");
  registry.Intern("b");
  return registry;
}

// The stream format forbids self-loops (graphs in this library are
// self-loop-free); the READER enforces it so a hand-made or corrupted file
// cannot push a self-loop past the io boundary — partitioner backends only
// canonicalise them as defence in depth for direct API users.
class EdgeStreamSelfLoopTest : public testing::TestWithParam<io::StreamFormat> {
};

TEST_P(EdgeStreamSelfLoopTest, ReaderRejectsSelfLoopRecords) {
  const fs::path path =
      TempDir() / ("selfloop_" + io::ToString(GetParam()));
  {
    io::EdgeStreamWriter writer(path.string(), TwoLabels(), 100, GetParam());
    writer.Append(MakeEdge(1, 2));
    writer.Append(MakeEdge(7, 7));  // the writer is not the trust boundary
    writer.Append(MakeEdge(3, 4));
    writer.Close();
  }
  io::FileEdgeSource reader(path.string());
  std::vector<stream::StreamEdge> batch(8);
  try {
    while (reader.NextBatch(batch) > 0) {
    }
    FAIL() << "self-loop record was not rejected";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("self-loop"), std::string::npos) << msg;
    EXPECT_NE(msg.find("edge 1"), std::string::npos) << msg;  // which record
  }
}

INSTANTIATE_TEST_SUITE_P(Formats, EdgeStreamSelfLoopTest,
                         testing::Values(io::StreamFormat::kBinary,
                                         io::StreamFormat::kText));

class EdgeStreamFollowTest : public testing::TestWithParam<io::StreamFormat> {
};

TEST_P(EdgeStreamFollowTest, ReadsEdgesFlushedAfterOpen) {
  const fs::path path =
      TempDir() / ("follow_live_" + io::ToString(GetParam()));
  io::EdgeStreamWriter writer(path.string(), TwoLabels(), 100, GetParam());
  writer.Append(MakeEdge(1, 2));
  writer.Append(MakeEdge(3, 4));
  writer.Append(MakeEdge(5, 6));
  writer.Flush();  // header + 3 edges visible; counts still unpatched

  std::atomic<bool> stop{false};
  io::FollowOptions follow;
  follow.follow = true;
  follow.poll_interval_ms = 1;
  follow.stop = &stop;
  io::FileEdgeSource reader(path.string(), follow);
  if (GetParam() == io::StreamFormat::kBinary) {
    EXPECT_EQ(reader.info().edge_count, 0u);  // stale until Close — ignored
  }
  ASSERT_EQ(reader.info().labels.size(), 2u);

  std::vector<stream::StreamEdge> batch(8);
  ASSERT_EQ(reader.NextBatch(batch), 3u);
  EXPECT_EQ(batch[0].u, 1u);
  EXPECT_EQ(batch[2].v, 6u);
  EXPECT_EQ(batch[2].id, 2u);

  writer.Append(MakeEdge(7, 8));
  writer.Flush();
  ASSERT_EQ(reader.NextBatch(batch), 1u);
  EXPECT_EQ(batch[0].u, 7u);
  EXPECT_EQ(batch[0].id, 3u);  // stream ids keep counting across polls

  stop.store(true);
  EXPECT_EQ(reader.NextBatch(batch), 0u);
  EXPECT_EQ(reader.NextBatch(batch), 0u);  // exhausted once stopped
}

TEST_P(EdgeStreamFollowTest, PartialRecordIsReReadWhole) {
  const fs::path path =
      TempDir() / ("follow_partial_" + io::ToString(GetParam()));
  io::EdgeStreamWriter writer(path.string(), TwoLabels(), 100, GetParam());
  writer.Append(MakeEdge(1, 2));
  writer.Flush();

  std::atomic<bool> stop{false};
  io::FollowOptions follow;
  follow.follow = true;
  follow.poll_interval_ms = 1;
  follow.stop = &stop;
  io::FileEdgeSource reader(path.string(), follow);

  // Land only the front half of the next record, as an interrupted
  // producer would.
  std::string head, tail;
  if (GetParam() == io::StreamFormat::kBinary) {
    const uint32_t u = 9, v = 10;
    const uint16_t lu = 0, lv = 1;
    std::string record(12, '\0');
    std::memcpy(record.data(), &u, 4);
    std::memcpy(record.data() + 4, &v, 4);
    std::memcpy(record.data() + 8, &lu, 2);
    std::memcpy(record.data() + 10, &lv, 2);
    head = record.substr(0, 5);
    tail = record.substr(5);
  } else {
    head = "E 9 1";
    tail = "0 0 1\n";
  }
  {
    std::ofstream app(path, std::ios::binary | std::ios::app);
    app << head;
  }

  std::vector<stream::StreamEdge> batch(8);
  ASSERT_EQ(reader.NextBatch(batch), 1u);  // only the complete record
  EXPECT_EQ(batch[0].u, 1u);

  {
    std::ofstream app(path, std::ios::binary | std::ios::app);
    app << tail;
  }
  ASSERT_EQ(reader.NextBatch(batch), 1u);
  EXPECT_EQ(batch[0].u, 9u);
  EXPECT_EQ(batch[0].v, 10u);
  EXPECT_EQ(batch[0].id, 1u);
}

TEST_P(EdgeStreamFollowTest, ConstructorWaitsForCompleteHeader) {
  const fs::path staging =
      TempDir() / ("follow_hdr_staging_" + io::ToString(GetParam()));
  const fs::path path =
      TempDir() / ("follow_hdr_" + io::ToString(GetParam()));
  {
    io::EdgeStreamWriter writer(staging.string(), TwoLabels(), 100,
                                GetParam());
    writer.Append(MakeEdge(1, 2));
    writer.Close();
  }
  const std::string bytes = FileBytes(staging);
  ASSERT_GT(bytes.size(), 10u);
  {
    // Seed the target with a torn header prefix.
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << bytes.substr(0, 10);
  }
  std::thread producer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    std::ofstream app(path, std::ios::binary | std::ios::app);
    app << bytes.substr(10);
  });
  io::FollowOptions follow;
  follow.follow = true;
  follow.poll_interval_ms = 1;
  io::FileEdgeSource reader(path.string(), follow);  // must not throw
  producer.join();
  std::vector<stream::StreamEdge> batch(4);
  ASSERT_EQ(reader.NextBatch(batch), 1u);
  EXPECT_EQ(batch[0].u, 1u);
}

TEST_P(EdgeStreamFollowTest, SkipToPositionsAtCursorOnLiveFile) {
  const fs::path path =
      TempDir() / ("follow_skip_" + io::ToString(GetParam()));
  io::EdgeStreamWriter writer(path.string(), TwoLabels(), 100, GetParam());
  for (uint32_t i = 0; i < 5; ++i) writer.Append(MakeEdge(i, i + 1));
  writer.Flush();  // never closed: counts stay stale

  io::FollowOptions follow;
  follow.follow = true;
  follow.poll_interval_ms = 1;
  io::FileEdgeSource reader(path.string(), follow);
  reader.SkipTo(3);  // beyond the (stale) declared count of 0
  std::vector<stream::StreamEdge> batch(8);
  ASSERT_EQ(reader.NextBatch(batch), 2u);
  EXPECT_EQ(batch[0].u, 3u);
  EXPECT_EQ(batch[0].id, 3u);
  EXPECT_EQ(batch[1].id, 4u);
}

TEST(EdgeStreamFollowErrorTest, StopDuringHeaderWaitThrows) {
  const fs::path path = TempDir() / "follow_stop_empty";
  { std::ofstream touch(path, std::ios::trunc); }
  std::atomic<bool> stop{true};
  io::FollowOptions follow;
  follow.follow = true;
  follow.poll_interval_ms = 1;
  follow.stop = &stop;
  try {
    io::FileEdgeSource reader(path.string(), follow);
    FAIL() << "expected a throw: empty file, stop already signalled";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("stopped"), std::string::npos);
  }
}

TEST(EdgeStreamFollowErrorTest, BadMagicStillThrowsImmediately) {
  const fs::path path = TempDir() / "follow_bad_magic";
  {
    std::ofstream out(path, std::ios::trunc);
    out << "definitely not an edge stream\n";
  }
  io::FollowOptions follow;
  follow.follow = true;
  follow.poll_interval_ms = 1;
  EXPECT_THROW(io::FileEdgeSource(path.string(), follow), std::runtime_error);
}

INSTANTIATE_TEST_SUITE_P(Formats, EdgeStreamFollowTest,
                         testing::Values(io::StreamFormat::kBinary,
                                         io::StreamFormat::kText),
                         [](const auto& info) {
                           return io::ToString(info.param);
                         });

TEST(AssignmentSinkTest, MemorySinkRecordsInArrivalOrder) {
  io::MemoryAssignmentSink sink;
  sink.Append(3, 1);
  sink.Append(0, 2);
  sink.Append(7, 1);
  ASSERT_EQ(sink.assignments().size(), 3u);
  EXPECT_EQ(sink.assignments()[0], (std::pair<graph::VertexId,
                                              graph::PartitionId>{3, 1}));
  EXPECT_EQ(sink.assignments()[1].first, 0u);
  EXPECT_EQ(sink.assignments()[2].second, 1u);
}

TEST(AssignmentSinkTest, FileSinkWritesTsvLines) {
  const fs::path path = TempDir() / "assignments.tsv";
  {
    io::FileAssignmentSink sink(path.string());
    sink.Append(5, 2);
    sink.Append(6, 0);
    sink.Flush();
    EXPECT_EQ(sink.assignments_written(), 2u);
  }
  EXPECT_EQ(FileBytes(path), "5\t2\n6\t0\n");
}

TEST(AssignmentSinkTest, FileSinkUnwritablePathThrows) {
  EXPECT_THROW(io::FileAssignmentSink("/nonexistent_dir_xyz/a.tsv"),
               std::runtime_error);
}

TEST(AssignmentSinkTest, ObserverAdapterForwardsOnAssign) {
  io::MemoryAssignmentSink sink;
  io::AssignmentSinkObserver observer(&sink);
  engine::AssignEvent e;
  e.vertex = 11;
  e.partition = 3;
  observer.OnAssign(e);
  ASSERT_EQ(sink.assignments().size(), 1u);
  EXPECT_EQ(sink.assignments()[0].first, 11u);
  EXPECT_EQ(sink.assignments()[0].second, 3u);
}

}  // namespace
}  // namespace loom
