// serve::Server — loom as a long-lived partitioning service.
//
// One process owns one engine::Session for the lifetime of a stream that
// never has to end. Edges arrive over a unix-domain socket (many concurrent
// writers) and/or by tail-following a growing LOOMES file; assignment
// lookups, stats, checkpoints and quality snapshots are answered while
// ingest continues.
//
// Threading model (the part that keeps served output bit-identical to
// offline loom_partition):
//
//   conn threads ──┐                       ┌── conn threads (GET/STATS:
//   tail thread  ──┼─> bounded MPSC queue ─┤    wait-free reads, never
//                  │      (backpressure)   │    enter the queue)
//                  └──────> decision thread┘
//
//   * Every INGEST (from any connection, or the tail source) goes through
//     ONE bounded queue; a full queue blocks the producing connection —
//     backpressure reaches the client as a stalled write, never as a drop.
//   * A single decision thread drains the queue, stamps stream ids in
//     queue-accept order and feeds the session. Stream position = decision
//     order, so the same edge sequence produces the same partitioning as
//     loom_partition over the same file — that is the service's core
//     equivalence invariant, proven by tests/serve_server_test.cc.
//   * GET and STATS never touch the session: placements fan out through the
//     sink path into a wait-free AssignmentTable, counters are published
//     atomics. A lookup can never block ingest, and vice versa.
//   * CHECKPOINT / FINALIZE / SNAPSHOT-QUALITY must observe a consistent
//     stream prefix, so they ride the same queue as edges and execute on
//     the decision thread, in order, replying through a promise.
//
// Durability: rotating LOOMCK checkpoints (periodic and on demand) carry
// the session plus the cut tracker's parked state (SessionExtension). An
// INGEST is durable once a checkpoint at-or-after it commits; after a
// crash, clients query STATS for the resume cursor (edges=) and re-send
// from there. Graceful Shutdown() drains the queue first, so it loses
// nothing. Destruction WITHOUT Shutdown() is deliberately crash-like: no
// final checkpoint (tests use it as an in-process kill -9).

#ifndef LOOM_SERVE_SERVER_H_
#define LOOM_SERVE_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "engine/latency_observer.h"
#include "engine/session.h"
#include "graph/label_registry.h"
#include "io/edge_stream_io.h"
#include "serve/assignment_table.h"
#include "serve/cut_tracker.h"
#include "serve/protocol.h"

namespace loom {
namespace serve {

struct ServerConfig {
  /// Unix-domain socket path to listen on (created at Start, unlinked on
  /// Shutdown). Empty = no socket (tail-only service).
  std::string socket_path;
  /// The session this server hosts: backend spec, engine options, batching.
  /// options.expected_vertices doubles as the INGEST vertex-id bound and
  /// the SNAPSHOT-QUALITY hash width.
  engine::SessionConfig session;
  /// Rotating LOOMCK path; empty disables checkpointing (CHECKPOINT then
  /// answers ERR).
  std::string checkpoint_path;
  /// Checkpoint every N ingested edges (0 = only explicit CHECKPOINT and
  /// the final one on graceful shutdown).
  uint64_t checkpoint_every = 0;
  /// Resume from this LOOMCK (with .prev fallback) before serving.
  std::string resume_path;
  /// Append every accepted edge, in decision order, to this LOOMES file —
  /// the replayable ingest history. With --resume the log holds only the
  /// post-resume suffix (its positions restart at 0).
  std::string ingest_log_path;
  /// Tail-follow this LOOMES/text stream as a producer (in addition to any
  /// socket writers). On resume the tail skips to the session cursor first.
  std::string tail_path;
  int tail_poll_ms = 20;
  /// Ingest queue capacity (edges); producers block when full.
  size_t queue_capacity = 1 << 16;
  /// Label table for validation and the ingest log header. Not owned; must
  /// outlive the server.
  const graph::LabelRegistry* registry = nullptr;
};

class Server {
 public:
  /// Builds the session (resuming per config), wires table/tracker/latency
  /// observer and the ingest log. Returns nullptr + actionable `*error` on
  /// any failure. No threads yet — callers may AddSink on session() first.
  static std::unique_ptr<Server> Create(const ServerConfig& config,
                                        const engine::BuildContext& context,
                                        std::string* error);

  /// Crash-like teardown when Shutdown() was not called first: no drain, no
  /// final checkpoint; queued-but-undecided edges are lost (exactly what a
  /// SIGKILL loses).
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Spawns the decision thread, the socket listener (if configured) and
  /// the tail reader (if configured). Throws std::runtime_error if the
  /// socket cannot be bound.
  void Start();

  /// Graceful drain: stop accepting, unblock and join every producer, let
  /// the decision thread finish EVERYTHING already queued, write a final
  /// rotating checkpoint (when configured), close the ingest log, join.
  /// Idempotent. Safe to call from the hosting thread only (never from a
  /// connection handler — that is what SHUTDOWN/shutdown_requested() is
  /// for).
  void Shutdown();

  /// True once a client sent SHUTDOWN; the hosting loop should then call
  /// Shutdown() and exit.
  bool shutdown_requested() const {
    return shutdown_requested_.load(std::memory_order_acquire);
  }

  /// The hosted session, for pre-Start wiring (extra sinks) and post-
  /// Shutdown inspection. The decision thread owns it between Start and
  /// Shutdown — do not touch it while the server runs.
  engine::Session& session() { return *session_; }
  const AssignmentTable& table() const { return table_; }
  const CutTracker& tracker() const { return tracker_; }
  /// Edges decided so far (the resume cursor clients re-send from).
  uint64_t edges_ingested() const {
    return edges_published_.load(std::memory_order_acquire);
  }

  /// One protocol command line -> one reply line. Public so the protocol
  /// surface is testable without sockets; connection handlers call exactly
  /// this. Thread-safe.
  std::string HandleLine(const std::string& line);

 private:
  struct QueueItem {
    enum class Kind : uint8_t { kEdge, kControl } kind = Kind::kEdge;
    stream::StreamEdge edge{};
    CommandType control = CommandType::kStats;
    std::promise<std::string>* reply = nullptr;  // kControl only
  };

  Server(const ServerConfig& config, const engine::BuildContext& context);

  enum class EnqueueResult : uint8_t {
    kAccepted,   // queued; the accept cursor advanced
    kDuplicate,  // seq below the cursor: already applied, dropped
    kGap,        // seq ahead of the cursor: rejected, client must back-fill
    kStopping,   // server shutting down
  };

  /// Queues one edge (blocking while the queue is full). `seq` is the
  /// client-declared accept-order position from an idempotent INGEST, or
  /// nullptr for the at-least-once path (tail source, seq-less INGEST).
  /// `*cursor` is set to the accept cursor observed under the queue lock —
  /// the position the NEXT edge will take (for kDuplicate/kGap replies).
  EnqueueResult EnqueueEdge(const stream::StreamEdge& e, const uint64_t* seq,
                            uint64_t* cursor);
  std::string RoundtripControl(CommandType type);
  std::string StatsReply();

  void DecisionLoop();
  void ListenLoop();
  void ConnLoop(int fd);
  void TailLoop();

  void IngestRun(std::vector<stream::StreamEdge>* run);
  std::string ControlOnDecisionThread(CommandType type);
  void PublishProgress();
  bool RotateCheckpoint(std::string* error);

  ServerConfig config_;
  size_t num_labels_ = 0;
  std::unique_ptr<engine::Session> session_;
  AssignmentTable table_;
  CutTracker tracker_{&table_};
  engine::LatencyObserver latency_;
  std::unique_ptr<io::EdgeStreamWriter> ingest_log_;

  // Queue (mutex + condvars; capacity applies to edges — control items are
  // rare and bounded by the connection count, so they bypass it).
  std::mutex queue_mutex_;
  std::condition_variable queue_not_empty_;
  std::condition_variable queue_not_full_;
  std::deque<QueueItem> queue_;
  size_t queued_edges_ = 0;
  /// Edges ACCEPTED into the queue since stream position 0 (resume seeds it
  /// from the session cursor). This — not edges_published_ — is the dedup
  /// authority for idempotent INGEST: an edge is "already applied" the
  /// moment it is accepted in order, even if the decision thread has not
  /// drained it yet. Guarded by queue_mutex_.
  uint64_t ingest_accepted_ = 0;

  // Lifecycle.
  std::atomic<bool> stopping_{false};
  std::atomic<bool> abort_{false};
  std::atomic<bool> shutdown_requested_{false};
  bool started_ = false;
  bool shut_down_ = false;

  // Published by the decision thread, read by any STATS/GET handler.
  std::atomic<uint64_t> edges_published_{0};
  std::atomic<uint64_t> window_population_{0};

  int listen_fd_ = -1;
  std::mutex conns_mutex_;
  std::vector<int> conn_fds_;
  std::vector<std::thread> conn_threads_;
  std::thread decision_thread_;
  std::thread listen_thread_;
  std::thread tail_thread_;
  uint64_t edges_since_checkpoint_ = 0;  // decision thread only
};

}  // namespace serve
}  // namespace loom

#endif  // LOOM_SERVE_SERVER_H_
