#include <gtest/gtest.h>

#include <algorithm>

#include "graph/dynamic_graph.h"
#include "graph/label_registry.h"
#include "graph/labeled_graph.h"

namespace loom {
namespace graph {
namespace {

// ---------------------------------------------------------- label registry

TEST(LabelRegistryTest, InternAssignsDenseIdsInOrder) {
  LabelRegistry reg;
  EXPECT_EQ(reg.Intern("a"), 0);
  EXPECT_EQ(reg.Intern("b"), 1);
  EXPECT_EQ(reg.Intern("a"), 0);  // idempotent
  EXPECT_EQ(reg.size(), 2u);
  EXPECT_EQ(reg.Name(0), "a");
  EXPECT_EQ(reg.Name(1), "b");
}

TEST(LabelRegistryTest, FindMissingReturnsInvalid) {
  LabelRegistry reg;
  reg.Intern("x");
  EXPECT_EQ(reg.Find("x"), 0);
  EXPECT_EQ(reg.Find("nope"), kInvalidLabel);
}

// -------------------------------------------------------------------- edge

TEST(EdgeTest, NormalizedAndEquality) {
  Edge a(3, 1), b(1, 3);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.Normalized().u, 1u);
  EXPECT_EQ(a.Normalized().v, 3u);
  EXPECT_EQ(EdgeHash{}(a), EdgeHash{}(b));
}

TEST(EdgeTest, OtherAndIncident) {
  Edge e(4, 9);
  EXPECT_EQ(e.Other(4), 9u);
  EXPECT_EQ(e.Other(9), 4u);
  EXPECT_TRUE(e.Incident(4));
  EXPECT_FALSE(e.Incident(5));
}

// ----------------------------------------------------------- labeled graph

LabeledGraph TriangleWithTail() {
  LabeledGraph::Builder b;
  VertexId v0 = b.AddVertex(0);
  VertexId v1 = b.AddVertex(1);
  VertexId v2 = b.AddVertex(0);
  VertexId v3 = b.AddVertex(2);
  b.AddEdge(v0, v1);
  b.AddEdge(v1, v2);
  b.AddEdge(v2, v0);
  b.AddEdge(v2, v3);
  return b.Build();
}

TEST(LabeledGraphTest, BasicCounts) {
  LabeledGraph g = TriangleWithTail();
  EXPECT_EQ(g.NumVertices(), 4u);
  EXPECT_EQ(g.NumEdges(), 4u);
  EXPECT_EQ(g.label(0), 0);
  EXPECT_EQ(g.label(3), 2);
}

TEST(LabeledGraphTest, AdjacencyIsSymmetric) {
  LabeledGraph g = TriangleWithTail();
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    for (VertexId w : g.Neighbors(v)) {
      auto nbrs = g.Neighbors(w);
      EXPECT_NE(std::find(nbrs.begin(), nbrs.end(), v), nbrs.end())
          << v << " <-> " << w;
    }
  }
}

TEST(LabeledGraphTest, DegreesMatchAdjacency) {
  LabeledGraph g = TriangleWithTail();
  EXPECT_EQ(g.Degree(0), 2u);
  EXPECT_EQ(g.Degree(2), 3u);
  EXPECT_EQ(g.Degree(3), 1u);
  size_t total = 0;
  for (VertexId v = 0; v < g.NumVertices(); ++v) total += g.Degree(v);
  EXPECT_EQ(total, 2 * g.NumEdges());  // handshaking lemma
}

TEST(LabeledGraphTest, BuilderDropsSelfLoopsAndDuplicates) {
  LabeledGraph::Builder b;
  VertexId v0 = b.AddVertex(0);
  VertexId v1 = b.AddVertex(0);
  b.AddEdge(v0, v1);
  b.AddEdge(v1, v0);  // duplicate (reversed)
  b.AddEdge(v0, v1);  // duplicate
  b.AddEdge(v0, v0);  // self loop
  LabeledGraph g = b.Build();
  EXPECT_EQ(g.NumEdges(), 1u);
}

TEST(LabeledGraphTest, HasEdge) {
  LabeledGraph g = TriangleWithTail();
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(1, 0));
  EXPECT_TRUE(g.HasEdge(2, 3));
  EXPECT_FALSE(g.HasEdge(0, 3));
}

TEST(LabeledGraphTest, IncidentEdgesAlignWithNeighbors) {
  LabeledGraph g = TriangleWithTail();
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    auto nbrs = g.Neighbors(v);
    auto eids = g.IncidentEdges(v);
    ASSERT_EQ(nbrs.size(), eids.size());
    for (size_t i = 0; i < nbrs.size(); ++i) {
      const Edge& e = g.edge(eids[i]);
      EXPECT_TRUE(e.Incident(v));
      EXPECT_EQ(e.Other(v), nbrs[i]);
    }
  }
}

TEST(LabeledGraphTest, LabelHistogram) {
  LabeledGraph g = TriangleWithTail();
  auto hist = g.LabelHistogram();
  ASSERT_EQ(hist.size(), 3u);
  EXPECT_EQ(hist[0], 2u);
  EXPECT_EQ(hist[1], 1u);
  EXPECT_EQ(hist[2], 1u);
}

TEST(LabeledGraphTest, EmptyGraph) {
  LabeledGraph::Builder b;
  LabeledGraph g = b.Build();
  EXPECT_EQ(g.NumVertices(), 0u);
  EXPECT_EQ(g.NumEdges(), 0u);
  EXPECT_TRUE(g.LabelHistogram().empty());
}

// ----------------------------------------------------------- dynamic graph

TEST(DynamicGraphTest, TouchAndAddEdge) {
  DynamicGraph g;
  g.TouchVertex(0, 5);
  g.TouchVertex(2, 7);
  EXPECT_TRUE(g.Known(0));
  EXPECT_FALSE(g.Known(1));
  EXPECT_TRUE(g.Known(2));
  EXPECT_EQ(g.NumVertices(), 2u);
  EXPECT_EQ(g.label(0), 5);

  g.AddEdge(0, 2);
  EXPECT_EQ(g.NumEdges(), 1u);
  EXPECT_EQ(g.Degree(0), 1u);
  ASSERT_EQ(g.Neighbors(2).size(), 1u);
  EXPECT_EQ(*g.Neighbors(2).begin(), 0u);
}

TEST(DynamicGraphTest, TouchIsIdempotent) {
  DynamicGraph g;
  g.TouchVertex(3, 1);
  g.TouchVertex(3, 1);
  EXPECT_EQ(g.NumVertices(), 1u);
}

TEST(DynamicGraphTest, GrowsToLargestId) {
  DynamicGraph g;
  g.TouchVertex(100, 0);
  EXPECT_EQ(g.NumSlots(), 101u);
  EXPECT_EQ(g.NumVertices(), 1u);
  EXPECT_TRUE(g.Neighbors(50).empty());
  EXPECT_EQ(g.Degree(999), 0u);  // out of range is degree 0
}

TEST(DynamicGraphTest, ParallelEdgesCounted) {
  DynamicGraph g;
  g.TouchVertex(0, 0);
  g.TouchVertex(1, 0);
  g.AddEdge(0, 1);
  g.AddEdge(0, 1);
  EXPECT_EQ(g.NumEdges(), 2u);
  EXPECT_EQ(g.Degree(0), 2u);
}

TEST(DynamicGraphTest, SelfLoopCanonicalisesToSingleEntry) {
  DynamicGraph g;
  g.TouchVertex(0, 0);
  g.TouchVertex(1, 0);
  g.AddEdge(0, 0);  // the old layout pushed 0 into its own list twice
  g.AddEdge(0, 1);
  EXPECT_EQ(g.NumEdges(), 2u);
  EXPECT_EQ(g.Degree(0), 2u);  // one self entry + one real neighbour
  const std::vector<VertexId> nbrs = g.Neighbors(0).ToVector();
  ASSERT_EQ(nbrs.size(), 2u);
  EXPECT_EQ(nbrs[0], 0u);
  EXPECT_EQ(nbrs[1], 1u);
}

TEST(DynamicGraphTest, NeighborOrderIsInsertionOrderAcrossPages) {
  // Page capacity 2 forces chain hops every two entries; the walk must
  // still read back the exact insertion order.
  DynamicGraph g(/*n=*/8, /*page_entries=*/2);
  for (VertexId v = 0; v < 8; ++v) g.TouchVertex(v, 0);
  for (VertexId w = 1; w < 8; ++w) g.AddEdge(0, w);
  EXPECT_EQ(g.Degree(0), 7u);
  const std::vector<VertexId> nbrs = g.Neighbors(0).ToVector();
  ASSERT_EQ(nbrs.size(), 7u);
  for (VertexId w = 1; w < 8; ++w) EXPECT_EQ(nbrs[w - 1], w);
}

TEST(DynamicGraphTest, CheckpointRoundTripsAcrossPageCapacities) {
  // The chain encoding is capacity-independent (U64 count + raw entries),
  // so a graph saved under one page size restores under another.
  DynamicGraph g(/*n=*/6, /*page_entries=*/3);
  for (VertexId v = 0; v < 6; ++v) g.TouchVertex(v, static_cast<LabelId>(v));
  g.AddEdge(0, 1);
  g.AddEdge(0, 0);
  for (VertexId w = 1; w < 6; ++w) g.AddEdge(0, w);

  io::CheckpointWriter w;
  g.SaveTo(&w, "g");
  const std::string path = testing::TempDir() + "/dyngraph_roundtrip.loomck";
  w.Commit(path);

  io::CheckpointReader r(path);
  DynamicGraph h(/*n=*/0, /*page_entries=*/64);
  h.LoadFrom(&r, "g");
  EXPECT_EQ(h.NumVertices(), g.NumVertices());
  EXPECT_EQ(h.NumEdges(), g.NumEdges());
  for (VertexId v = 0; v < 6; ++v) {
    EXPECT_EQ(h.label(v), g.label(v));
    EXPECT_EQ(h.Neighbors(v).ToVector(), g.Neighbors(v).ToVector());
  }
}

// LoadFrom recomputes the counters from the loaded tables; a checkpoint
// whose counters disagree (hand-edited with fixed checksums) is rejected.
TEST(DynamicGraphTest, LoadFromRejectsVertexCounterDesync) {
  io::CheckpointWriter w;
  w.BeginSection("g");
  w.U64(5);  // claims 5 vertices; the label table below holds 2
  w.U64(1);  // num_edges
  w.PodVec(std::vector<LabelId>{0, 0});
  w.U64(2);  // adjacency slots
  w.PodVec(std::vector<VertexId>{1});  // adj(0)
  w.PodVec(std::vector<VertexId>{0});  // adj(1)
  w.EndSection();
  const std::string path = testing::TempDir() + "/dyngraph_badvcount.loomck";
  w.Commit(path);

  io::CheckpointReader r(path);
  DynamicGraph g;
  EXPECT_THROW(
      {
        try {
          g.LoadFrom(&r, "g");
        } catch (const std::runtime_error& e) {
          EXPECT_NE(std::string(e.what()).find("counter desync"),
                    std::string::npos)
              << e.what();
          throw;
        }
      },
      std::runtime_error);
}

TEST(DynamicGraphTest, LoadFromRejectsEdgeCounterDesync) {
  io::CheckpointWriter w;
  w.BeginSection("g");
  w.U64(2);  // num_vertices
  w.U64(7);  // claims 7 edges; the adjacency holds one
  w.PodVec(std::vector<LabelId>{0, 0});
  w.U64(2);
  w.PodVec(std::vector<VertexId>{1});
  w.PodVec(std::vector<VertexId>{0});
  w.EndSection();
  const std::string path = testing::TempDir() + "/dyngraph_badecount.loomck";
  w.Commit(path);

  io::CheckpointReader r(path);
  DynamicGraph g;
  EXPECT_THROW(g.LoadFrom(&r, "g"), std::runtime_error);
}

TEST(DynamicGraphTest, LoadFromRejectsOutOfSetNeighbour) {
  io::CheckpointWriter w;
  w.BeginSection("g");
  w.U64(2);
  w.U64(1);
  w.PodVec(std::vector<LabelId>{0, 0});
  w.U64(2);
  w.PodVec(std::vector<VertexId>{9});  // adj(0) points outside the table
  w.PodVec(std::vector<VertexId>{0});
  w.EndSection();
  const std::string path = testing::TempDir() + "/dyngraph_badnbr.loomck";
  w.Commit(path);

  io::CheckpointReader r(path);
  DynamicGraph g;
  EXPECT_THROW(
      {
        try {
          g.LoadFrom(&r, "g");
        } catch (const std::runtime_error& e) {
          EXPECT_NE(std::string(e.what()).find("corrupt adjacency"),
                    std::string::npos)
              << e.what();
          throw;
        }
      },
      std::runtime_error);
}

// A pre-canonicalisation checkpoint stored a self-loop as TWO entries; the
// edge-counter identity (entries + self_entries == 2·edges) flags it.
TEST(DynamicGraphTest, LoadFromRejectsDoubleInsertedSelfLoop) {
  io::CheckpointWriter w;
  w.BeginSection("g");
  w.U64(1);
  w.U64(1);  // one edge: the self-loop
  w.PodVec(std::vector<LabelId>{0});
  w.U64(1);
  w.PodVec(std::vector<VertexId>{0, 0});  // legacy double insert
  w.EndSection();
  const std::string path = testing::TempDir() + "/dyngraph_legacyself.loomck";
  w.Commit(path);

  io::CheckpointReader r(path);
  DynamicGraph g;
  EXPECT_THROW(g.LoadFrom(&r, "g"), std::runtime_error);
}

}  // namespace
}  // namespace graph
}  // namespace loom
