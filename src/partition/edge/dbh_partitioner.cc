#include "partition/edge/dbh_partitioner.h"

#include <algorithm>

namespace loom {
namespace partition {
namespace edge {

namespace {

// SplitMix64 finaliser — identical to the "hash" vertex backend's
// MixVertex (partition/hash_partitioner.cc), so the two hashing baselines
// scatter vertices the same way and differ only in WHAT they hash.
uint64_t MixVertex(uint64_t x) {
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

graph::PartitionId DbhPartitioner::PlaceEdge(const stream::StreamEdge& e) {
  const uint32_t du = PartialDegree(e.u);
  const uint32_t dv = PartialDegree(e.v);
  graph::VertexId anchor;
  if (du != dv) {
    anchor = du < dv ? e.u : e.v;
  } else {
    anchor = std::min(e.u, e.v);
  }
  return static_cast<graph::PartitionId>(MixVertex(anchor) % k());
}

}  // namespace edge
}  // namespace partition
}  // namespace loom
