// Shared checkpoint codec for the Loom decision pipeline ("loom" and
// "loom-sharded" serialise the same core state; keeping one codec makes
// layout drift between the two backends impossible).
//
// Sections written (on top of whatever seen-graph section the backend adds):
//   "loom"      — options fingerprint (every knob that steers a decision,
//                 doubles as bit patterns), label-space ctor/current counts,
//                 and a TPSTry++ support fingerprint (workload drift check)
//   "loom_stats"— LoomStats + MatcherStats counters + compaction phase
//   "partition" — the partition table (Partitioning::SaveTo)
//   "window"    — live sliding-window edges (SlidingWindow::SaveTo)
//   "matches"   — match pool + postings (MatchList::SaveTo)
//
// Restore verifies the fingerprint field-by-field (first differing knob is
// named in the error), rejects label-space mismatches, then loads the
// component sections and reports how many labels the checkpointed run had
// grown to, so the backend can re-fit its open-alphabet tables.

#ifndef LOOM_CORE_LOOM_CHECKPOINT_H_
#define LOOM_CORE_LOOM_CHECKPOINT_H_

#include <cstdint>

#include "core/loom_partitioner.h"
#include "io/checkpoint.h"
#include "motif/match_list.h"
#include "motif/motif_matcher.h"
#include "partition/partitioning.h"
#include "signature/label_values.h"
#include "stream/sliding_window.h"
#include "tpstry/tpstry.h"

namespace loom {
namespace core {

/// Everything the two Loom backends share for checkpointing, as borrowed
/// pointers (const for save; the restore overloads need mutables).
struct LoomCoreState {
  const LoomOptions* options = nullptr;
  size_t ctor_num_labels = 0;  // label count the backend was built with
  signature::LabelValues* label_values = nullptr;
  const tpstry::Tpstry* trie = nullptr;
  partition::Partitioning* partitioning = nullptr;
  stream::SlidingWindow* window = nullptr;
  motif::MatchList* match_list = nullptr;
  motif::MotifMatcher* matcher = nullptr;
  LoomStats* stats = nullptr;
  uint64_t* edges_since_compact = nullptr;
};

/// Writes the shared core sections listed above.
void SaveLoomCore(io::CheckpointWriter* w, const LoomCoreState& state);

/// Verifies the fingerprint and restores the shared core sections into a
/// fresh backend. Throws (via r->Fail) on any mismatch. Returns the label
/// count the checkpointed run had grown to (>= ctor count); the caller must
/// re-fit its label-dependent tables when it exceeds the ctor count.
size_t RestoreLoomCore(io::CheckpointReader* r, const LoomCoreState& state);

}  // namespace core
}  // namespace loom

#endif  // LOOM_CORE_LOOM_CHECKPOINT_H_
