#include "partition/partitioning.h"

#include <gtest/gtest.h>

#include "partition/partition_metrics.h"

namespace loom {
namespace partition {
namespace {

TEST(PartitioningTest, CapacityFormula) {
  Partitioning p(4, 100, 1.1);
  EXPECT_EQ(p.Capacity(), 28u);  // ceil(1.1 * 100 / 4)
  Partitioning q(4, 100, 1.0);
  EXPECT_EQ(q.Capacity(), 25u);
}

TEST(PartitioningTest, AssignIsFirstWriterWins) {
  Partitioning p(2, 10);
  EXPECT_EQ(p.Assign(3, 1), 1u);
  EXPECT_EQ(p.Assign(3, 0), 1u);  // no-op, returns existing
  EXPECT_EQ(p.PartitionOf(3), 1u);
  EXPECT_EQ(p.Size(1), 1u);
  EXPECT_EQ(p.Size(0), 0u);
  EXPECT_EQ(p.NumAssigned(), 1u);
}

TEST(PartitioningTest, UnassignedIsNoPartition) {
  Partitioning p(2, 10);
  EXPECT_EQ(p.PartitionOf(5), graph::kNoPartition);
  EXPECT_FALSE(p.IsAssigned(5));
  EXPECT_EQ(p.PartitionOf(9999), graph::kNoPartition);  // out of range
}

TEST(PartitioningTest, CapacityOverflowDivertsToLeastLoaded) {
  Partitioning p(2, 4, 1.0);  // capacity 2 each
  p.Assign(0, 0);
  p.Assign(1, 0);
  EXPECT_TRUE(p.AtCapacity(0));
  EXPECT_EQ(p.Assign(2, 0), 1u);  // diverted
  EXPECT_EQ(p.Size(1), 1u);
}

TEST(PartitioningTest, MinMaxAndLeastLoaded) {
  Partitioning p(3, 30);
  p.Assign(0, 2);
  p.Assign(1, 2);
  p.Assign(2, 1);
  EXPECT_EQ(p.MinSize(), 0u);
  EXPECT_EQ(p.MaxSize(), 2u);
  EXPECT_EQ(p.LeastLoaded(), 0u);
}

TEST(PartitioningTest, GrowsBeyondExpectedVertices) {
  Partitioning p(2, 4);
  EXPECT_EQ(p.Assign(1000, 1), 1u);
  EXPECT_EQ(p.PartitionOf(1000), 1u);
}

// ----------------------------------------------------------------- metrics

graph::LabeledGraph Path4() {
  graph::LabeledGraph::Builder b;
  for (int i = 0; i < 4; ++i) b.AddVertex(0);
  b.AddEdge(0, 1);
  b.AddEdge(1, 2);
  b.AddEdge(2, 3);
  return b.Build();
}

TEST(PartitionMetricsTest, EdgeCutCounts) {
  graph::LabeledGraph g = Path4();
  Partitioning p(2, 4);
  p.Assign(0, 0);
  p.Assign(1, 0);
  p.Assign(2, 1);
  p.Assign(3, 1);
  EXPECT_EQ(EdgeCut(g, p), 1u);  // only edge (1,2) crosses
  EXPECT_NEAR(EdgeCutRatio(g, p), 1.0 / 3.0, 1e-12);
  EXPECT_TRUE(FullyAssigned(g, p));
}

TEST(PartitionMetricsTest, WorstCaseCut) {
  graph::LabeledGraph g = Path4();
  Partitioning p(2, 4);
  p.Assign(0, 0);
  p.Assign(1, 1);
  p.Assign(2, 0);
  p.Assign(3, 1);
  EXPECT_EQ(EdgeCut(g, p), 3u);
}

TEST(PartitionMetricsTest, ImbalanceZeroWhenEven) {
  Partitioning p(2, 4);
  p.Assign(0, 0);
  p.Assign(1, 0);
  p.Assign(2, 1);
  p.Assign(3, 1);
  EXPECT_NEAR(Imbalance(p), 0.0, 1e-12);
}

TEST(PartitionMetricsTest, ImbalanceMeasuresMaxOverIdeal) {
  Partitioning p(2, 4);
  p.Assign(0, 0);
  p.Assign(1, 0);
  p.Assign(2, 0);
  p.Assign(3, 1);
  // max = 3, ideal = 2 -> imbalance 0.5.
  EXPECT_NEAR(Imbalance(p), 0.5, 1e-12);
}

TEST(PartitionMetricsTest, NotFullyAssignedDetected) {
  graph::LabeledGraph g = Path4();
  Partitioning p(2, 4);
  p.Assign(0, 0);
  EXPECT_FALSE(FullyAssigned(g, p));
}

TEST(PartitionMetricsTest, EmptyGraphEdgeCases) {
  graph::LabeledGraph g;
  Partitioning p(2, 0);
  EXPECT_EQ(EdgeCut(g, p), 0u);
  EXPECT_EQ(EdgeCutRatio(g, p), 0.0);
  EXPECT_EQ(Imbalance(p), 0.0);
  EXPECT_TRUE(FullyAssigned(g, p));
}

}  // namespace
}  // namespace partition
}  // namespace loom
