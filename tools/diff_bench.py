#!/usr/bin/env python3
"""Diff a fresh BENCH_throughput.json against the committed baseline.

Partition-quality fields (edge_cut, imbalance, assignment_hash, and for
edge partitioners replication_factor, edge_balance, edge_assignment_hash)
are deterministic on fixed seeds and must match EXACTLY — a mismatch means
a "perf" change altered partitioning behaviour and the script exits
non-zero. Timing fields (ms, eps) are machine/load dependent: they are
reported as ratios, with a warning (not a failure) on large throughput
regressions.

Sections are checked bidirectionally: a section present in one file but
missing from the other is a FAILURE with an actionable message, never a
silent skip — so adding a new bench section cannot mask drift in an
existing one, and a baseline predating a section tells you to re-golden.

Usage: diff_bench.py BASELINE.json NEW.json [--max-regression 0.7]
"""

import argparse
import json
import sys

# Every section this script knows how to index. A section name appearing
# in a bench file but NOT listed here is also a failure: it means the
# bench grew a section this guard doesn't cover yet.
KNOWN_SECTIONS = (
    "datasets",
    "loom_paper_window",
    "loom_sharded_sweep",
    "file_stream",
    "edge_partitioners",
)

# Timing-only sections: present in the files, deliberately not diffed.
IGNORED_SECTIONS = ("window_ops", "simd_kernels")

# Deterministic quality fields, exact-compared when present in EITHER
# record (so a field disappearing is drift too).
QUALITY_FIELDS = (
    "edge_cut",
    "imbalance",
    "assignment_hash",
    "replication_factor",
    "edge_balance",
    "edge_assignment_hash",
)

# Top-level scalar keys that are part of the run config, not sections.
CONFIG_KEYS = ("bench", "scale", "window", "k", "order")


def section_names(doc):
    return {k for k, v in doc.items()
            if k not in CONFIG_KEYS and isinstance(v, (dict, list))}


def index_section(doc, name, out):
    """Indexes one section's records as (section:dataset, system) -> record."""
    if name == "datasets":
        for d in doc.get("datasets", []):
            for s in d.get("systems", []):
                out[(d["dataset"], s["system"])] = s
    elif name == "loom_paper_window":
        for d in doc["loom_paper_window"].get("datasets", []):
            out[(d["dataset"], "loom@t10k")] = d["loom"]
    elif name == "loom_sharded_sweep":
        for d in doc["loom_sharded_sweep"].get("datasets", []):
            for s in d.get("sweep", []):
                out[(d["dataset"], f"sharded@S{s['shards']}")] = s
    elif name == "file_stream":
        for d in doc["file_stream"].get("datasets", []):
            out[(d["dataset"], "loom@file")] = d
    elif name == "edge_partitioners":
        for d in doc["edge_partitioners"].get("datasets", []):
            for s in d.get("systems", []):
                out[(d["dataset"], f"edge:{s['system']}")] = s


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("baseline")
    ap.add_argument("new")
    ap.add_argument("--max-regression", type=float, default=0.7,
                    help="warn when new eps falls below this fraction "
                         "of baseline")
    args = ap.parse_args()

    with open(args.baseline) as f:
        base = json.load(f)
    with open(args.new) as f:
        new = json.load(f)

    failures, warnings = [], []

    # Section accounting first: every section must exist on both sides and
    # be one this script covers. Actionable, never a KeyError or a skip.
    base_sections = section_names(base) - set(IGNORED_SECTIONS)
    new_sections = section_names(new) - set(IGNORED_SECTIONS)
    for name in sorted(base_sections - new_sections):
        failures.append(
            f"section '{name}' is in the baseline but missing from the new "
            f"results — the bench no longer emits it (or emitted under a "
            f"different name)")
    for name in sorted(new_sections - base_sections):
        failures.append(
            f"section '{name}' is in the new results but missing from the "
            f"baseline — re-golden the baseline (tools/run_bench.sh) if this "
            f"bench section is newly added")
    for name in sorted((base_sections | new_sections) - set(KNOWN_SECTIONS)):
        failures.append(
            f"section '{name}' is not covered by diff_bench.py — add it to "
            f"KNOWN_SECTIONS and index_section so its quality is guarded")

    base_idx, new_idx = {}, {}
    for name in KNOWN_SECTIONS:
        if name in base_sections:
            index_section(base, name, base_idx)
        if name in new_sections:
            index_section(new, name, new_idx)

    print(f"{'dataset':<14} {'system':<16} {'base eps':>12} {'new eps':>12} "
          f"{'ratio':>7}  quality")
    for key in sorted(base_idx):
        if key not in new_idx:
            failures.append(f"{key}: missing from new results")
            continue
        b, n = base_idx[key], new_idx[key]
        quality_ok = True
        for field in QUALITY_FIELDS:
            if field not in b and field not in n:
                continue
            if b.get(field) != n.get(field):
                quality_ok = False
                failures.append(
                    f"{key}: {field} changed {b.get(field)} -> {n.get(field)}")
        b_eps, n_eps = b.get("eps"), n.get("eps")
        ratio = (n_eps / b_eps) if b_eps and n_eps is not None \
            else float("nan")
        if b_eps and ratio < args.max_regression:
            warnings.append(f"{key}: throughput regressed to {ratio:.2f}x")
        print(f"{key[0]:<14} {key[1]:<16} {b_eps or 0:>12.0f} "
              f"{n_eps or 0:>12.0f} {ratio:>6.2f}x  "
              f"{'ok' if quality_ok else 'CHANGED'}")
    for key in sorted(set(new_idx) - set(base_idx)):
        failures.append(
            f"{key}: in the new results but not the baseline — re-golden if "
            f"this system/dataset cell is newly added")

    for w in warnings:
        print(f"WARNING: {w}", file=sys.stderr)
    if failures:
        for f_ in failures:
            print(f"FAIL: {f_}", file=sys.stderr)
        print("\npartition quality drifted — a perf change must not alter "
              "assignments on fixed seeds", file=sys.stderr)
        return 1
    print("\npartition quality identical to baseline"
          + (f"; {len(warnings)} throughput warning(s)" if warnings else ""))
    return 0


if __name__ == "__main__":
    sys.exit(main())
