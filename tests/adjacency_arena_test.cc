#include "graph/adjacency_arena.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "io/checkpoint.h"
#include "util/rng.h"

namespace loom {
namespace graph {
namespace {

// ------------------------------------------------------------ chain walks

// Every page capacity must read back the exact append order; capacity 1
// degenerates to a linked list of single slots, 3 leaves ragged tails,
// 64 is the production default (most chains fit one page).
TEST(AdjacencyArenaTest, WalkMatchesReferenceAcrossPageCapacities) {
  for (const uint32_t cap : {1u, 2u, 3u, 4u, 64u}) {
    AdjacencyArena arena(cap);
    arena.Reserve(4);
    std::vector<std::vector<VertexId>> ref(4);
    util::SplitMix64 rng(0x9E3779B97F4A7C15ull ^ cap);
    for (int i = 0; i < 500; ++i) {
      const VertexId v = static_cast<VertexId>(rng.Next() % 4);
      const VertexId w = static_cast<VertexId>(rng.Next() % 1000);
      arena.Append(v, w);
      ref[v].push_back(w);
    }
    for (VertexId v = 0; v < 4; ++v) {
      ASSERT_EQ(arena.Degree(v), ref[v].size()) << "cap=" << cap;
      EXPECT_EQ(arena.Neighbors(v).ToVector(), ref[v]) << "cap=" << cap;
    }
  }
}

// Iterator walk, chunk walk, and size() must agree — the three ways the
// scoring cores consume a range.
TEST(AdjacencyArenaTest, IteratorAndChunkWalksAgree) {
  AdjacencyArena arena(3);
  arena.Reserve(1);
  std::vector<VertexId> ref;
  for (VertexId w = 0; w < 11; ++w) {  // 3 full pages + 2-slot tail
    arena.Append(0, w);
    ref.push_back(w);
  }
  const NeighborRange range = arena.Neighbors(0);
  EXPECT_EQ(range.size(), ref.size());

  std::vector<VertexId> via_iter;
  for (const VertexId w : range) via_iter.push_back(w);
  EXPECT_EQ(via_iter, ref);

  std::vector<VertexId> via_chunks;
  size_t chunks = 0;
  range.ForEachChunk([&](const VertexId* data, size_t n) {
    via_chunks.insert(via_chunks.end(), data, data + n);
    EXPECT_LE(n, 3u);
    ++chunks;
  });
  EXPECT_EQ(via_chunks, ref);
  EXPECT_EQ(chunks, 4u);  // ceil(11 / 3)
}

TEST(AdjacencyArenaTest, EmptyAndOutOfRangeChainsAreEmptyRanges) {
  AdjacencyArena arena(4);
  arena.Reserve(2);
  EXPECT_EQ(arena.Degree(0), 0u);
  EXPECT_TRUE(arena.Neighbors(0).empty());
  EXPECT_EQ(arena.Neighbors(0).begin(), arena.Neighbors(0).end());
  // Out-of-range ids are degree 0, not UB — Degree/Neighbors bound-check.
  EXPECT_EQ(arena.Degree(999), 0u);
  EXPECT_TRUE(arena.Neighbors(999).empty());
}

TEST(AdjacencyArenaTest, PrefixExposesExactlyTheCursor) {
  AdjacencyArena arena(2);
  arena.Reserve(1);
  for (VertexId w = 10; w < 15; ++w) arena.Append(0, w);
  EXPECT_TRUE(arena.Prefix(0, 0).empty());
  for (uint32_t visible = 1; visible <= 5; ++visible) {
    const std::vector<VertexId> got = arena.Prefix(0, visible).ToVector();
    ASSERT_EQ(got.size(), visible);
    for (uint32_t i = 0; i < visible; ++i) EXPECT_EQ(got[i], 10u + i);
  }
}

// A NeighborRange snapshot taken before further appends must keep seeing
// exactly the entries that were published at snapshot time — the property
// the sequencer's cursor reads rely on.
TEST(AdjacencyArenaTest, SnapshotIsStableAcrossLaterAppends) {
  AdjacencyArena arena(2);
  arena.Reserve(1);
  for (VertexId w = 0; w < 3; ++w) arena.Append(0, w);
  const NeighborRange snap = arena.Neighbors(0);
  for (VertexId w = 3; w < 40; ++w) arena.Append(0, w);  // grows the chain
  EXPECT_EQ(snap.size(), 3u);
  EXPECT_EQ(snap.ToVector(), (std::vector<VertexId>{0, 1, 2}));
}

// ReserveEntries is an allocation hint only: chain contents, degrees and
// page-chain geometry must be identical with and without pre-sizing, for
// accurate hints, wild over-estimates and zero alike.
TEST(AdjacencyArenaTest, ReserveEntriesNeverChangesContentOrGeometry) {
  constexpr size_t kSlots = 64;
  constexpr int kAppends = 5000;
  for (const uint64_t hint : {uint64_t{0}, uint64_t{kAppends},
                              uint64_t{10} * kAppends, uint64_t{1}}) {
    AdjacencyArena plain(4), hinted(4);
    plain.Reserve(kSlots);
    hinted.Reserve(kSlots);
    hinted.ReserveEntries(hint);
    // Re-hinting mid-life must also be harmless (loom_sharded re-hints
    // per shard after construction).
    hinted.ReserveEntries(hint / 2);
    util::SplitMix64 rng(0xfeedface);
    for (int i = 0; i < kAppends; ++i) {
      const VertexId v = static_cast<VertexId>(rng.Next() % kSlots);
      const VertexId w = static_cast<VertexId>(rng.Next() % 100000);
      plain.Append(v, w);
      hinted.Append(v, w);
    }
    ASSERT_EQ(plain.TotalEntries(), hinted.TotalEntries()) << hint;
    for (VertexId v = 0; v < kSlots; ++v) {
      ASSERT_EQ(plain.Degree(v), hinted.Degree(v)) << hint;
      EXPECT_EQ(plain.Neighbors(v).ToVector(), hinted.Neighbors(v).ToVector())
          << "hint=" << hint << " v=" << v;
      // Same page-chain geometry: chunk sizes must line up exactly.
      std::vector<size_t> chunks_plain, chunks_hinted;
      plain.Neighbors(v).ForEachChunk(
          [&](const VertexId*, size_t n) { chunks_plain.push_back(n); });
      hinted.Neighbors(v).ForEachChunk(
          [&](const VertexId*, size_t n) { chunks_hinted.push_back(n); });
      EXPECT_EQ(chunks_plain, chunks_hinted) << "hint=" << hint << " v=" << v;
    }
  }
}

// ------------------------------------------------------------- checkpoints

// SaveChain's bytes must equal PodVec of the equivalent vector — that
// identity is what lets pre-arena DynamicGraph checkpoints load
// transparently and equal states hash identically.
TEST(AdjacencyArenaTest, SaveChainBytesMatchPodVecEncoding) {
  AdjacencyArena arena(3);
  arena.Reserve(2);
  std::vector<VertexId> ref;
  for (VertexId w = 100; w < 108; ++w) {
    arena.Append(0, w);
    ref.push_back(w);
  }
  // Chain 1 stays empty: the empty encoding (a lone zero count) matters too.

  io::CheckpointWriter via_arena;
  via_arena.BeginSection("a");
  arena.SaveChain(&via_arena, 0);
  arena.SaveChain(&via_arena, 1);
  via_arena.EndSection();

  io::CheckpointWriter via_podvec;
  via_podvec.BeginSection("a");
  via_podvec.PodVec(ref);
  via_podvec.PodVec(std::vector<VertexId>{});
  via_podvec.EndSection();

  const std::string pa = testing::TempDir() + "/arena_enc_a.loomck";
  const std::string pb = testing::TempDir() + "/arena_enc_b.loomck";
  via_arena.Commit(pa);
  via_podvec.Commit(pb);

  const auto slurp = [](const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
  };
  const std::string bytes_a = slurp(pa);
  ASSERT_FALSE(bytes_a.empty());
  EXPECT_EQ(bytes_a, slurp(pb));
}

// Round-trip through a DIFFERENT page capacity: the encoding carries no
// page structure, so a cap-3 arena's chains restore into a cap-64 arena.
TEST(AdjacencyArenaTest, LoadChainRoundTripsAcrossCapacities) {
  AdjacencyArena src(3);
  src.Reserve(2);
  for (VertexId w = 0; w < 10; ++w) src.Append(0, w * 7);
  src.Append(1, 42);

  io::CheckpointWriter w;
  w.BeginSection("a");
  src.SaveChain(&w, 0);
  src.SaveChain(&w, 1);
  w.EndSection();
  const std::string path = testing::TempDir() + "/arena_roundtrip.loomck";
  w.Commit(path);

  io::CheckpointReader r(path);
  r.Open("a");
  AdjacencyArena dst(64);
  dst.Reserve(2);
  dst.LoadChain(&r, 0);
  dst.LoadChain(&r, 1);
  r.Close();

  EXPECT_EQ(dst.Neighbors(0).ToVector(), src.Neighbors(0).ToVector());
  EXPECT_EQ(dst.Neighbors(1).ToVector(), src.Neighbors(1).ToVector());
  EXPECT_EQ(dst.TotalEntries(), src.TotalEntries());
}

// ------------------------------------------------- concurrent publication

// The TSan witness for the publication protocol: one writer appends into
// pre-reserved chains while readers walk whatever count they acquire. Any
// missing happens-before edge (a slot or page link not ordered before the
// count's release store) is a TSan report; the value checks catch torn or
// reordered publication even in a plain build.
TEST(AdjacencyArenaTest, SingleWriterConcurrentReadersStress) {
  constexpr uint32_t kVertices = 8;
  constexpr uint32_t kAppendsPerVertex = 2000;
  AdjacencyArena arena(4);  // small pages → frequent page-link publication
  arena.Reserve(kVertices);  // readers must never overlap table growth

  std::atomic<bool> done{false};
  std::atomic<uint64_t> mismatches{0};

  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&] {
      while (!done.load(std::memory_order_acquire)) {
        for (VertexId v = 0; v < kVertices; ++v) {
          const NeighborRange range = arena.Neighbors(v);
          // Entry i of chain v is always v*kAppendsPerVertex + i — a
          // reader acquiring count n must see exactly the first n values.
          uint64_t expect = uint64_t{v} * kAppendsPerVertex;
          for (const VertexId w : range) {
            if (w != expect) mismatches.fetch_add(1, std::memory_order_relaxed);
            ++expect;
          }
        }
      }
    });
  }

  for (uint32_t i = 0; i < kAppendsPerVertex; ++i) {
    for (VertexId v = 0; v < kVertices; ++v) {
      arena.Append(v, static_cast<VertexId>(v * kAppendsPerVertex + i));
    }
  }
  done.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();

  EXPECT_EQ(mismatches.load(), 0u);
  for (VertexId v = 0; v < kVertices; ++v) {
    ASSERT_EQ(arena.Degree(v), kAppendsPerVertex);
  }
}

}  // namespace
}  // namespace graph
}  // namespace loom
