// Network-security scenario: ring / relay pattern detection on a stream
// (the paper's Sec. 1 cites network security [3] as a core application of
// continuous pattern matching on graph streams).
//
// We build a custom payment-network schema (Account / Merchant / Device /
// Session), define a workload dominated by a "relay ring" motif
// (Account-Session-Account triangle-ish chains typical of layered fraud),
// and show (a) Loom's matcher finding the motif instances online and (b) the
// resulting partitioning keeping rings intact within partitions.
//
// This example brings its own schema + workload (no dataset registry) and
// builds the partitioner through the engine facade — the template for
// plugging a custom domain into loom::engine.
//
// Run:  ./example_fraud_ring [num_accounts]

#include <cstdlib>
#include <iostream>

#include "core/loom_partitioner.h"
#include "engine/session.h"
#include "graph/labeled_graph.h"
#include "partition/partition_metrics.h"
#include "query/workload_runner.h"
#include "util/rng.h"
#include "util/table_writer.h"

int main(int argc, char** argv) {
  using namespace loom;
  const size_t num_accounts =
      argc > 1 ? static_cast<size_t>(std::strtoul(argv[1], nullptr, 10)) : 4000;

  // --- 1. Schema and synthetic payment graph --------------------------
  graph::LabelRegistry reg;
  const graph::LabelId account = reg.Intern("Account");
  const graph::LabelId merchant = reg.Intern("Merchant");
  const graph::LabelId device = reg.Intern("Device");
  const graph::LabelId session = reg.Intern("Session");

  util::Rng rng(0xF4A1D);
  graph::LabeledGraph::Builder b;
  std::vector<graph::VertexId> accounts, merchants, devices;
  for (size_t i = 0; i < num_accounts; ++i) accounts.push_back(b.AddVertex(account));
  for (size_t i = 0; i < num_accounts / 40; ++i) merchants.push_back(b.AddVertex(merchant));
  for (size_t i = 0; i < num_accounts / 4; ++i) devices.push_back(b.AddVertex(device));

  // Normal traffic: account -> session -> merchant, account -> device.
  for (graph::VertexId a : accounts) {
    const size_t sessions = 1 + rng.Uniform(3);
    for (size_t s = 0; s < sessions; ++s) {
      graph::VertexId sess = b.AddVertex(session);
      b.AddEdge(a, sess);
      b.AddEdge(sess, merchants[rng.Zipf(merchants.size(), 1.0)]);
    }
    if (rng.Bernoulli(0.7)) b.AddEdge(a, devices[rng.Uniform(devices.size())]);
  }
  // Fraud rings: chains of accounts relaying through shared sessions
  // (account - session - account), ~2% of accounts involved.
  const size_t num_rings = num_accounts / 100;
  for (size_t r = 0; r < num_rings; ++r) {
    const size_t ring_size = 3 + rng.Uniform(4);
    graph::VertexId prev = accounts[rng.Uniform(accounts.size())];
    for (size_t i = 0; i < ring_size; ++i) {
      graph::VertexId relay = b.AddVertex(session);
      graph::VertexId next = accounts[rng.Uniform(accounts.size())];
      b.AddEdge(prev, relay);
      b.AddEdge(relay, next);
      prev = next;
    }
  }
  graph::LabeledGraph g = b.Build();
  std::cout << "Payment network: " << g.NumVertices() << " vertices, "
            << g.NumEdges() << " edges\n";

  // --- 2. Security workload ------------------------------------------
  query::Workload workload;
  // The dominant query: relay step (account-session-account).
  workload.Add("relay-step",
               graph::PatternGraph::Path({account, session, account}), 0.55);
  // Two-hop relay chain.
  workload.Add(
      "relay-chain",
      graph::PatternGraph::Path({account, session, account, session, account}),
      0.25);
  // Device sharing (collusion signal).
  workload.Add("shared-device",
               graph::PatternGraph::Path({account, device, account}), 0.20);

  // --- 3. Partition the stream with Loom (one engine::Session) --------
  engine::SessionConfig config;
  config.spec = "loom:window_size=4000";
  config.options.k = 8;
  config.options.expected_vertices = g.NumVertices();
  config.options.expected_edges = g.NumEdges();
  std::string error;
  auto run =
      engine::Session::Create(config, {&workload, reg.size()}, &error);
  if (run == nullptr) {
    std::cerr << "engine: " << error << "\n";
    return 1;
  }
  // The trie itself is backend internals — backend() is the documented
  // escape hatch; the match counts below come from the RunReport.
  core::LoomPartitioner& loom =
      *dynamic_cast<core::LoomPartitioner*>(&run->backend());

  auto source =
      engine::MakeEdgeSource(g, stream::StreamOrder::kRandom, /*seed=*/0xF4A1D);
  const engine::RunReport report = run->Run(*source);

  std::cout << "\nMotifs derived from the workload (T = 40%): "
            << loom.trie().MotifIds().size() << " of "
            << loom.trie().NumNodes() - 1 << " trie nodes\n"
            << "Relay motif instances matched online: "
            << report.Stat("matcher_extension_matches") +
                   report.Stat("matcher_join_matches")
            << "\n";

  // --- 4. Evaluate: would the security workload stay local? -----------
  query::WorkloadResult wr =
      query::RunWorkload(g, run->partitioning(), workload);
  std::cout << "\nSecurity workload over Loom's partitioning:\n";
  util::TableWriter t({"query", "matches", "traversals", "ipt", "ipt ratio"});
  for (const auto& q : wr.per_query) {
    t.AddRow({q.name, std::to_string(q.result.matches),
              std::to_string(q.result.traversals),
              std::to_string(q.result.ipt),
              util::TableWriter::Pct(
                  q.result.traversals > 0
                      ? static_cast<double>(q.result.ipt) /
                            static_cast<double>(q.result.traversals)
                      : 0.0)});
  }
  t.Print(std::cout);
  std::cout << "\nPartition imbalance: "
            << util::TableWriter::Pct(partition::Imbalance(run->partitioning()))
            << " across " << config.options.k << " partitions.\n";
  return 0;
}
