// Table 1: graph datasets, incl. size & heterogeneity.
//
// Prints |V|, |E|, |LV| and a description for every dataset at reproduction
// scale, mirroring the paper's Table 1 (whose absolute sizes refer to the
// full original datasets; our generators preserve the relative ordering and
// the label alphabets — see DESIGN.md).

#include <iostream>

#include "bench_common.h"
#include "datasets/dataset_registry.h"
#include "graph/graph_algos.h"
#include "util/string_util.h"
#include "util/table_writer.h"
#include "util/timer.h"

int main() {
  using namespace loom;
  bench::Banner("Table 1 — graph datasets, incl. size & heterogeneity",
                "Table 1");

  util::TableWriter t({"Dataset", "|V|", "|E|", "|LV|", "Real", "mean deg",
                       "gen (ms)", "Description"});
  for (auto id : datasets::AllDatasets()) {
    util::Timer timer;
    datasets::Dataset ds = datasets::MakeDataset(id, bench::BenchScale());
    const double gen_ms = timer.ElapsedMs();
    auto deg = graph::ComputeDegreeStats(ds.graph);
    t.AddRow({ds.meta.name, util::HumanCount(ds.NumVertices()),
              util::HumanCount(ds.NumEdges()), std::to_string(ds.NumLabels()),
              ds.meta.real_world_analog ? "Y" : "N",
              util::TableWriter::Fmt(deg.mean, 2),
              util::TableWriter::Fmt(gen_ms, 0), ds.meta.description});
  }
  t.Print(std::cout);
  std::cout << "\nPaper's Table 1 (full-scale originals): dblp 1.2M/2.5M/8, "
               "provgen 0.5M/0.9M/3,\nmusicbrainz 31M/100M/12, lubm-100 "
               "2.6M/11M/15, lubm-4000 131M/534M/15.\nExpected shape: same "
               "|LV| per dataset and the same |E| ordering.\n";
  return 0;
}
