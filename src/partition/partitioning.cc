#include "partition/partitioning.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace loom {
namespace partition {

Partitioning::Partitioning(uint32_t k, size_t expected_vertices, double nu)
    : k_(k) {
  assert(k >= 1);
  assert(nu >= 1.0);
  capacity_ = static_cast<size_t>(
      std::ceil(nu * static_cast<double>(expected_vertices) / k));
  if (capacity_ == 0) capacity_ = 1;
  assignment_.assign(expected_vertices, graph::kNoPartition);
  sizes_.assign(k, 0);
}

graph::PartitionId Partitioning::Assign(graph::VertexId v,
                                        graph::PartitionId p) {
  assert(p < k_);
  if (v >= assignment_.size()) {
    assignment_.resize(v + 1, graph::kNoPartition);
  }
  if (assignment_[v] != graph::kNoPartition) return assignment_[v];
  if (AtCapacity(p)) p = LeastLoaded();
  assignment_[v] = p;
  ++sizes_[p];
  ++num_assigned_;
  return p;
}

size_t Partitioning::MinSize() const {
  return *std::min_element(sizes_.begin(), sizes_.end());
}

size_t Partitioning::MaxSize() const {
  return *std::max_element(sizes_.begin(), sizes_.end());
}

graph::PartitionId Partitioning::LeastLoaded() const {
  graph::PartitionId best = 0;
  for (graph::PartitionId p = 1; p < k_; ++p) {
    if (sizes_[p] < sizes_[best]) best = p;
  }
  return best;
}

void Partitioning::SaveTo(io::CheckpointWriter* w) const {
  w->BeginSection("partition");
  w->U32(k_);
  w->U64(capacity_);
  w->U64(num_assigned_);
  w->PodVec(assignment_);
  w->PodVec(sizes_);
  w->EndSection();
}

void Partitioning::LoadFrom(io::CheckpointReader* r) {
  r->Open("partition");
  const uint32_t k = r->U32();
  const uint64_t capacity = r->U64();
  if (k != k_) {
    r->Fail("partition count mismatch: checkpoint has k=" + std::to_string(k) +
            ", this run was configured with k=" + std::to_string(k_));
  }
  if (capacity != capacity_) {
    r->Fail("partition capacity mismatch: checkpoint has C=" +
            std::to_string(capacity) + ", this run computed C=" +
            std::to_string(capacity_) +
            " (expected-vertices or max-imbalance drifted)");
  }
  num_assigned_ = r->U64();
  r->PodVec(&assignment_);
  r->PodVec(&sizes_);
  if (sizes_.size() != k_) r->Fail("partition sizes table has wrong arity");
  r->Close();
}

}  // namespace partition
}  // namespace loom
