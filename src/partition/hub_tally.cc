#include "partition/hub_tally.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "util/simd.h"

namespace loom {
namespace partition {

uint32_t HubTallyCache::ResolveThreshold(uint32_t requested) {
  if (requested != 0) return requested;
  // Per-process env default, parsed once (same pattern as LOOM_SIMD and
  // LOOM_ADJ_PAGE): LOOM_HUB_THRESHOLD=0 disables the cache entirely.
  static const uint32_t env_default = [] {
    const char* s = std::getenv("LOOM_HUB_THRESHOLD");
    if (s == nullptr || *s == '\0') return kDefaultThreshold;
    char* end = nullptr;
    const unsigned long long parsed = std::strtoull(s, &end, 10);
    if (end == s || *end != '\0') {
      std::fprintf(stderr,
                   "loom: ignoring invalid LOOM_HUB_THRESHOLD='%s' "
                   "(want a non-negative integer; 0 disables)\n",
                   s);
      return kDefaultThreshold;
    }
    if (parsed == 0) return kDisabled;
    if (parsed >= kDisabled) return kDisabled;
    return static_cast<uint32_t>(parsed);
  }();
  return env_default;
}

void HubTallyCache::Clear() {
  hub_row_.clear();
  rows_.clear();
  num_hubs_ = 0;
}

void HubTallyCache::Materialize(graph::VertexId h, const graph::NeighborView& g,
                                const Partitioning& p) {
  if (h >= hub_row_.size()) hub_row_.resize(h + 1, kNoRow);
  const uint32_t row = static_cast<uint32_t>(num_hubs_++);
  hub_row_[h] = row;
  rows_.resize(static_cast<size_t>(num_hubs_) * k_, 0);
  uint32_t* counts = &rows_[static_cast<size_t>(row) * k_];
  // One full tally at crossing time; unassigned entries (kNoPartition >= k)
  // are skipped here and arrive later through OnAssign, so the row equals a
  // fresh tally at every subsequent stream position.
  const std::span<const graph::PartitionId> table = p.assignments();
  g.Neighbors(h).ForEachChunk([&](const graph::VertexId* ids, size_t n) {
    util::simd::TallyGatherU32(table.data(), table.size(), ids, n, k_, counts);
  });
}

void HubTallyCache::Rebuild(const graph::NeighborView& g, size_t num_slots,
                            const Partitioning& p) {
  Clear();
  if (!enabled()) return;
  for (size_t v = 0; v < num_slots; ++v) {
    const graph::VertexId id = static_cast<graph::VertexId>(v);
    if (g.Degree(id) >= threshold_) Materialize(id, g, p);
  }
}

}  // namespace partition
}  // namespace loom
