// Stream-side incremental edge cut for a live partitioning run.
//
// Offline, edge cut is a scan over the materialised graph. A service never
// holds the graph — edges arrive, get ingested, and are gone — so the cut
// must be maintained as the stream flows: an edge whose endpoints are both
// placed resolves immediately; an edge with an unplaced endpoint parks on
// that endpoint and resolves when its OnAssign placement arrives (window
// backends defer decisions, so "edge ingested" and "endpoints placed" are
// separated by up to a window's worth of stream).
//
// The tracker reads placements from the server's AssignmentTable, which is
// populated by the SAME sink fanout that notifies the tracker — register
// the table BEFORE the tracker and every Append here can trust the table.
//
// All mutation happens on the decision thread; `cut()` and `edges_seen()`
// are relaxed atomics readable from any STATS connection. As a
// SessionExtension the parked state rides inside the session's LOOMCK
// checkpoint (sorted, so identical prefixes produce identical bytes) — a
// resumed server continues the count exactly where the crashed one stood.

#ifndef LOOM_SERVE_CUT_TRACKER_H_
#define LOOM_SERVE_CUT_TRACKER_H_

#include <atomic>
#include <cstdint>
#include <unordered_map>

#include "engine/session.h"
#include "graph/types.h"
#include "io/assignment_sink.h"
#include "io/checkpoint.h"
#include "serve/assignment_table.h"
#include "stream/stream_edge.h"

namespace loom {
namespace serve {

class CutTracker : public io::AssignmentSink, public engine::SessionExtension {
 public:
  /// `table` must outlive the tracker and must be registered as a session
  /// sink ahead of it (sinks fan out in registration order).
  explicit CutTracker(const AssignmentTable* table) : table_(table) {}

  /// Decision thread, BEFORE the edge is handed to the session: resolves it
  /// now if both endpoints are placed, else parks it on an unplaced one.
  void AddEdge(const stream::StreamEdge& e);

  /// io::AssignmentSink — placement notifications from the session fanout.
  void Append(graph::VertexId v, graph::PartitionId p) override;
  void Flush() override {}

  /// Edges counted as cut so far (both endpoints placed, apart).
  uint64_t cut() const { return cut_.load(std::memory_order_relaxed); }
  /// Edges handed to AddEdge so far.
  uint64_t edges_seen() const {
    return edges_seen_.load(std::memory_order_relaxed);
  }
  /// Edges still parked on an unplaced endpoint.
  uint64_t pending() const { return pending_count_; }

  /// engine::SessionExtension — the tracker's state inside the session's
  /// checkpoint (section "serve.cut"). Restore fails actionably when the
  /// checkpoint lacks the section (it was written by a non-serve run, whose
  /// cut state is unrecoverable).
  void Save(io::CheckpointWriter* w) const override;
  void Restore(io::CheckpointReader* r) override;

 private:
  const AssignmentTable* table_;
  /// Parked edges, keyed by the unplaced endpoint they wait on; the value
  /// is the other endpoint.
  std::unordered_multimap<graph::VertexId, graph::VertexId> parked_;
  uint64_t pending_count_ = 0;
  std::atomic<uint64_t> cut_{0};
  std::atomic<uint64_t> edges_seen_{0};
};

}  // namespace serve
}  // namespace loom

#endif  // LOOM_SERVE_CUT_TRACKER_H_
