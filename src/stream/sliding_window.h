// The paper's Ptemp (Sec. 3): a fixed-capacity FIFO window over the edge
// stream that also supports out-of-order removal (edges that are assigned
// early as part of a motif-match cluster leave the window before they age
// out).
//
// Implementation: a thin capacity policy over util::MonotoneRing, which owns
// the ring mechanics (stream edge ids are unique and monotonically
// increasing, so an edge with id `i` lives in slot `i & mask` of a
// power-of-two slot array; Find/Contains/Remove are a single indexed load;
// growth is x4-stepped and capped at ~16x the window capacity, with
// long-lingering stragglers spilling into a bounded ordered overflow map;
// PopOldest/PeekOldest chase a lazy head cursor past tombstones). No
// per-edge heap allocation anywhere. See util/monotone_ring.h for the
// invariants; they are shared with motif::MatchList's edge ring.

#ifndef LOOM_STREAM_SLIDING_WINDOW_H_
#define LOOM_STREAM_SLIDING_WINDOW_H_

#include <optional>

#include "io/checkpoint.h"
#include "stream/stream_edge.h"
#include "util/monotone_ring.h"

namespace loom {
namespace stream {

/// FIFO buffer of the most recent motif-relevant edges. Capacity is the
/// paper's window size t; callers Push then drain with PopOldest while
/// OverCapacity().
class SlidingWindow {
 public:
  explicit SlidingWindow(size_t capacity);

  size_t capacity() const { return capacity_; }

  /// Number of live (non-removed) edges.
  size_t size() const { return ring_.size(); }
  bool empty() const { return ring_.empty(); }

  /// True once size() exceeds capacity — time to evict.
  bool OverCapacity() const { return ring_.size() > capacity_; }

  /// Adds an edge. Ids must be unique and increasing (stream positions);
  /// gaps are fine (bypassed edges consume stream ids without entering).
  void Push(const StreamEdge& e);

  /// True if edge `id` is live in the window.
  bool Contains(graph::EdgeId id) const { return ring_.Contains(id); }

  /// Looks up a live edge by id; nullptr if absent/removed. The pointer is
  /// invalidated by the next Push (the buffer may grow).
  const StreamEdge* Find(graph::EdgeId id) const { return ring_.Find(id); }

  /// Removes and returns the oldest live edge; nullopt when empty.
  std::optional<StreamEdge> PopOldest() { return ring_.PopOldest(); }

  /// Returns the oldest live edge without removing it; nullptr when empty.
  /// Same invalidation rule as Find.
  const StreamEdge* PeekOldest() const { return ring_.PeekOldest(); }

  /// Removes an arbitrary live edge. Returns false if not present.
  bool Remove(graph::EdgeId id) { return ring_.Erase(id); }

  /// Applies `fn` to every live edge, oldest first.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    ring_.ForEach([&fn](graph::EdgeId, const StreamEdge& e) { fn(e); });
  }

  /// Current slot-array size (for tests and capacity-growth stats).
  size_t NumSlots() const { return ring_.NumSlots(); }

  /// Writes the live edges (oldest first) as checkpoint section "window".
  /// The ring's physical layout (slot array size, overflow placement) is
  /// deliberately NOT saved: it is unobservable through this interface, and
  /// re-Pushing live edges in ascending id order rebuilds an equivalent ring.
  void SaveTo(io::CheckpointWriter* w) const;

  /// Restores a SaveTo snapshot; requires an empty window with the same
  /// configured capacity (mismatch throws via r->Fail).
  void LoadFrom(io::CheckpointReader* r);

 private:
  size_t capacity_;
  util::MonotoneRing<StreamEdge, graph::EdgeId> ring_;
};

}  // namespace stream
}  // namespace loom

#endif  // LOOM_STREAM_SLIDING_WINDOW_H_
