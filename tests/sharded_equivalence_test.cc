// Differential proof obligation for "loom-sharded" (core/loom_sharded.h):
// for every shard count S, every stream order and every batch split, the
// sharded backend's finished partitioning must be BIT-IDENTICAL to
// single-threaded "loom" — assignment hash, edge-cut and imbalance all
// equal. Concurrency bugs here are silent quality bugs (a racy adjacency
// read or an out-of-order eviction just moves vertices, it does not
// crash), so this suite is the backend's real acceptance gate; the
// ThreadSanitizer CI leg runs it too.
//
// All legs drive through engine::Drive over the lazy pull source, so the
// facade's batched ingest path is the thing being proven, not a
// test-private loop. Scales are small (a few thousand edges per dataset)
// with a small window so eviction/cluster traffic dominates.

#include <gtest/gtest.h>

#include <string>
#include <tuple>
#include <vector>

#include "datasets/dataset_registry.h"
#include "engine/engine.h"
#include "stream/stream_order.h"
#include "test_util.h"

namespace loom {
namespace core {
namespace {

/// Small-but-eviction-heavy scale per dataset (edges in the low thousands).
double ScaleFor(datasets::DatasetId id) {
  switch (id) {
    case datasets::DatasetId::kLubm100:
      return 0.04;
    case datasets::DatasetId::kMusicBrainz:
      return 0.05;
    case datasets::DatasetId::kDblp:
      return 0.04;
    case datasets::DatasetId::kProvGen:
    default:
      return 0.06;
  }
}

using EquivalenceParam = std::tuple<datasets::DatasetId, stream::StreamOrder>;

class ShardedEquivalenceTest
    : public ::testing::TestWithParam<EquivalenceParam> {};

TEST_P(ShardedEquivalenceTest, BitIdenticalToLoomAcrossShardsAndBatches) {
  const auto [dataset, order] = GetParam();
  const datasets::Dataset ds =
      datasets::MakeDataset(dataset, ScaleFor(dataset));
  const engine::EngineOptions options = test_util::OptionsFor(ds);
  const uint64_t seed = 0x5eed;

  // Reference: single-threaded loom over the same pull path. The reference
  // batch size is deliberately different from every sharded leg's so the
  // comparison can never hold "by shared batching accident".
  const test_util::Quality reference =
      test_util::DriveSpec("loom", ds, options, order, seed,
                           /*batch_size=*/97);

  for (const uint32_t shards : {1u, 2u, 4u, 7u}) {
    for (const size_t batch : {size_t{1}, size_t{64}, size_t{4096}}) {
      const std::string spec =
          "loom-sharded:shards=" + std::to_string(shards);
      const test_util::Quality sharded =
          test_util::DriveSpec(spec, ds, options, order, seed, batch);
      EXPECT_EQ(sharded, reference)
          << spec << " batch_size=" << batch << " on "
          << datasets::ToString(dataset) << "/" << stream::ToString(order);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllDatasetsAllOrders, ShardedEquivalenceTest,
    ::testing::Combine(
        ::testing::Values(datasets::DatasetId::kProvGen,
                          datasets::DatasetId::kMusicBrainz,
                          datasets::DatasetId::kLubm100,
                          datasets::DatasetId::kDblp),
        ::testing::Values(stream::StreamOrder::kBreadthFirst,
                          stream::StreamOrder::kDepthFirst,
                          stream::StreamOrder::kRandom)),
    [](const auto& info) {
      std::string name =
          std::string(datasets::ToString(std::get<0>(info.param))) + "_" +
          stream::ToString(std::get<1>(info.param));
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

// The per-edge Ingest entry point must match the batch path too (it routes
// through the same fan-out with batch size 1).
TEST(ShardedEquivalenceTest, PerEdgeIngestMatchesLoomPerEdgeIngest) {
  const datasets::Dataset ds =
      datasets::MakeDataset(datasets::DatasetId::kProvGen, 0.05);
  const stream::EdgeStream es =
      stream::MakeStream(ds.graph, stream::StreamOrder::kBreadthFirst);
  const engine::EngineOptions options = test_util::OptionsFor(ds);

  auto loom = test_util::MakeBackend("loom", options, ds);
  auto sharded = test_util::MakeBackend("loom-sharded:shards=3", options, ds);
  ASSERT_NE(loom, nullptr);
  ASSERT_NE(sharded, nullptr);
  test_util::RunAll(loom.get(), es);
  test_util::RunAll(sharded.get(), es);
  EXPECT_EQ(test_util::QualityOf(*sharded, ds),
            test_util::QualityOf(*loom, ds));
}

// The observer event stream is part of the contract: the sequencer fires
// the same decision events, in the same order, as single-threaded loom.
// (Totals comparison; the full ordering is implied by the assignment hash.)
TEST(ShardedEquivalenceTest, ObserverTotalsMatchLoom) {
  const datasets::Dataset ds =
      datasets::MakeDataset(datasets::DatasetId::kMusicBrainz, 0.05);
  const engine::EngineOptions options = test_util::OptionsFor(ds);

  engine::StatsObserver loom_stats;
  engine::StatsObserver sharded_stats;
  auto loom = test_util::MakeBackend("loom", options, ds);
  auto sharded = test_util::MakeBackend("loom-sharded:shards=4", options, ds);
  ASSERT_NE(loom, nullptr);
  ASSERT_NE(sharded, nullptr);

  auto source =
      engine::MakeEdgeSource(ds, stream::StreamOrder::kBreadthFirst, 0x5eed);
  engine::Drive(loom.get(), source.get(), &loom_stats);
  source->Reset();
  engine::Drive(sharded.get(), source.get(), &sharded_stats);

  const auto& a = loom_stats.totals();
  const auto& b = sharded_stats.totals();
  EXPECT_EQ(b.vertices_assigned, a.vertices_assigned);
  EXPECT_EQ(b.evictions, a.evictions);
  EXPECT_EQ(b.empty_cluster_evictions, a.empty_cluster_evictions);
  EXPECT_EQ(b.cluster_decisions, a.cluster_decisions);
  EXPECT_EQ(b.fallback_decisions, a.fallback_decisions);
  EXPECT_EQ(b.cluster_edges_assigned, a.cluster_edges_assigned);
  // The loom-only progress fields agree; the sharded backend additionally
  // reports its sequencing stats through the same event.
  EXPECT_EQ(b.last_progress.edges_ingested, a.last_progress.edges_ingested);
  EXPECT_EQ(b.last_progress.edges_bypassed, a.last_progress.edges_bypassed);
  EXPECT_EQ(b.last_progress.shards, 4u);
  EXPECT_GT(b.last_progress.shard_slices, 0u);
  EXPECT_EQ(a.last_progress.shards, 0u);
}

// Queue depth is a pure backpressure knob: cranking it up or down must not
// change the output (it only changes how far the fan-out runs ahead).
TEST(ShardedEquivalenceTest, QueueDepthDoesNotAffectOutput) {
  const datasets::Dataset ds =
      datasets::MakeDataset(datasets::DatasetId::kDblp, 0.04);
  const engine::EngineOptions options = test_util::OptionsFor(ds);
  const test_util::Quality reference = test_util::DriveSpec(
      "loom", ds, options, stream::StreamOrder::kRandom, 0xabc, 512);
  for (const char* spec :
       {"loom-sharded:shards=4,shard_queue_depth=1",
        "loom-sharded:shards=4,shard_queue_depth=2",
        "loom-sharded:shards=4,shard_queue_depth=64"}) {
    EXPECT_EQ(test_util::DriveSpec(spec, ds, options,
                                   stream::StreamOrder::kRandom, 0xabc, 512),
              reference)
        << spec;
  }
}

}  // namespace
}  // namespace core
}  // namespace loom
