// The matchList map of Sec. 3: vertex -> motif-matching sub-graphs in the
// window that contain that vertex, plus an edge index so matches can be
// retired when their edges are assigned.
//
// Representation: matches live in a MatchPool (32-bit generational handles);
// the per-vertex index is a flat array of posting lists indexed by vertex id
// (vertex ids are dense), and the per-edge index is a util::MonotoneRing of
// posting lists keyed by edge id — edge ids are monotonically increasing and
// an edge's list can only be appended to while the edge is in the sliding
// window, so the ring's live key span tracks the window's and slots are
// recycled as edges are assigned (the ring mechanics — capped x4 growth,
// overflow-map spill, head-chasing — are shared with stream::SlidingWindow).
// Posting lists hold 4-byte handles (not 16-byte shared_ptrs) and handles of
// dead matches are skipped via the pool's generation check.
//
// Dead handles are pruned opportunistically: each posting list counts its
// dead entries and compacts itself in place the next time it is iterated
// past a 50% dead ratio, so memory stays bounded between the matcher's
// periodic full Compact() calls. Duplicate (same edges, same motif) matches
// are rejected at Commit via a content-hash set.

#ifndef LOOM_MOTIF_MATCH_LIST_H_
#define LOOM_MOTIF_MATCH_LIST_H_

#include <vector>

#include "motif/match.h"
#include "motif/match_pool.h"
#include "util/flat_set64.h"
#include "util/monotone_ring.h"

namespace loom {
namespace motif {

class MatchList {
 public:
  MatchList() = default;

  // ----------------------------------------------------------- match access

  Match& match(MatchHandle h) { return pool_.Get(h); }
  const Match& match(MatchHandle h) const { return pool_.Get(h); }
  bool IsLive(MatchHandle h) const { return pool_.IsLive(h); }
  const MatchPool& pool() const { return pool_; }

  // ----------------------------------------------------- building matches

  /// Allocates a blank pooled record for the caller to fill via match(h).
  MatchHandle Acquire() { return pool_.Allocate(); }

  /// Registers a filled record. Returns false — and recycles the record,
  /// invalidating `h` — if an identical live match already exists.
  bool Commit(MatchHandle h);

  /// Discards a record acquired but not committed.
  void Abort(MatchHandle h) { pool_.Release(h); }

  // ------------------------------------------------------------- iteration

  /// Appends every live match containing vertex `v` to `out` (insertion
  /// order preserved; `out` is not cleared). Prunes the posting list first
  /// when it is at least half dead. Safe to Commit/Remove while walking the
  /// collected handles.
  void CollectLiveAt(graph::VertexId v, std::vector<MatchHandle>* out);

  /// Same for matches containing window edge `e`.
  void CollectLiveWithEdge(graph::EdgeId e, std::vector<MatchHandle>* out);

  /// Convenience snapshot (allocates; tests and cold paths only).
  std::vector<MatchHandle> LiveAt(graph::VertexId v) const;
  std::vector<MatchHandle> LiveWithEdge(graph::EdgeId e) const;

  /// True if any live match contains vertex v (cheaper than LiveAt). The
  /// non-const overload prunes a mostly-dead list before scanning — hub
  /// vertices are probed per bypassed edge and would otherwise rescan their
  /// dead handles until the next Compact.
  bool HasLiveAt(graph::VertexId v) const;
  bool HasLiveAt(graph::VertexId v);

  /// Kills every match containing edge `e` (called when `e` is assigned to a
  /// permanent partition and leaves Ptemp). The edge's ring slot is freed:
  /// `e` can never re-enter the window.
  void RemoveMatchesWithEdge(graph::EdgeId e);

  /// Pre-sizes the edge ring for an expected live id span (e.g. the sliding
  /// window's capacity) to skip early growth re-placements, and raises the
  /// ring's growth cap to ~16x that span (lingering keys beyond the cap
  /// spill into an ordered overflow map, mirroring SlidingWindow).
  void ReserveEdgeSpan(size_t span);

  /// Number of currently live matches.
  size_t NumLive() const { return live_count_; }

  /// Total matches ever committed (monotone; for stats).
  size_t TotalAdded() const { return total_added_; }

  /// Drops dead handles from every posting list. Called periodically by the
  /// matcher to bound memory (opportunistic pruning covers hot lists in
  /// between).
  void Compact();

  /// Total (live + not-yet-pruned dead) entries in v's posting list; for
  /// tests asserting the opportunistic-pruning memory bound.
  size_t IndexEntriesAt(graph::VertexId v) const {
    return v < by_vertex_.size() ? by_vertex_[v].items.size() : 0;
  }

  /// Writes the pool + both indexes as checkpoint section "matches". Dead
  /// posting entries are dropped (the restored state looks freshly pruned —
  /// observationally identical, since every read path filters dead handles),
  /// but the pool itself (free-list order, generations) travels verbatim so
  /// future handles and fresh/reused counters match the uninterrupted run.
  void SaveTo(io::CheckpointWriter* w) const;

  /// Restores a SaveTo snapshot; requires a fresh MatchList.
  void LoadFrom(io::CheckpointReader* r);

 private:
  struct PostingList {
    std::vector<MatchHandle> items;
    uint32_t dead = 0;  // dead handles still in `items`
  };

  /// Compacts `pl` in place when at least half its entries are dead.
  void PruneIfStale(PostingList* pl);
  void Prune(PostingList* pl);

  /// Kills a live match: erases its dedup key, bumps the dead counters of
  /// every posting list that holds it, and releases the pooled record.
  void Kill(MatchHandle h);

  /// Extends the edge ring to cover edge id `e` (growing / recycling slots,
  /// spilling keys that fall behind the capped coverage) and returns its
  /// (activated) posting list.
  PostingList* EnsureEdgeSlot(graph::EdgeId e);

  MatchPool pool_;
  std::vector<PostingList> by_vertex_;  // flat, indexed by vertex id
  /// Vertices/edges whose posting list gained its first dead handle since
  /// the last Compact — so Compact visits only dirty lists instead of
  /// sweeping the whole vertex space / edge ring.
  std::vector<graph::VertexId> dirty_vertices_;
  std::vector<graph::EdgeId> dirty_edges_;
  /// Per-edge posting lists, keyed by edge id (capped ring + overflow spill;
  /// mechanics shared with the sliding window via util::MonotoneRing).
  util::MonotoneRing<PostingList, graph::EdgeId> by_edge_;
  util::FlatSet64 live_keys_;
  size_t live_count_ = 0;
  size_t total_added_ = 0;
};

}  // namespace motif
}  // namespace loom

#endif  // LOOM_MOTIF_MATCH_LIST_H_
