// The experiment harness behind every paper figure/table: stream a dataset
// in a chosen order through each partitioner, then execute the dataset's
// workload over the finished partitioning and count ipt.

#ifndef LOOM_EVAL_EXPERIMENT_H_
#define LOOM_EVAL_EXPERIMENT_H_

#include <memory>
#include <string>
#include <vector>

#include "core/loom_partitioner.h"
#include "datasets/schema.h"
#include "partition/partitioner.h"
#include "query/query_executor.h"
#include "stream/stream_order.h"

namespace loom {
namespace eval {

/// The four compared systems (Sec. 5.1).
enum class System { kHash, kLdg, kFennel, kLoom };

std::string ToString(System s);
std::vector<System> AllSystems();

/// Everything one comparison run needs.
struct ExperimentConfig {
  uint32_t k = 8;
  stream::StreamOrder order = stream::StreamOrder::kBreadthFirst;
  uint64_t stream_seed = 0x10c5;

  /// Loom knobs (base.k / expected sizes are filled from the dataset).
  size_t window_size = 10000;
  double support_threshold = 0.4;
  core::EqualOpportunismConfig equal_opportunism;

  /// Query-executor caps (identical across systems: fair relative ipt).
  query::ExecutorConfig executor{.max_seeds = 4000,
                                 .max_matches_per_seed = 256};
};

/// Outcome of one (dataset, order, k, system) cell.
struct SystemResult {
  System system = System::kHash;
  double weighted_ipt = 0.0;
  double ipt_vs_hash = 1.0;  // filled by RunComparison (1.0 for hash itself)
  uint64_t matches = 0;
  size_t edge_cut = 0;
  double imbalance = 0.0;
  double partition_ms = 0.0;      // wall time to consume the whole stream
  double ms_per_10k_edges = 0.0;  // Table 2's measure
  double edges_per_sec = 0.0;     // ingest throughput (stream edges / wall s)
  /// FNV-1a over the per-vertex assignment — lets perf regressions prove
  /// they changed nothing about partition quality on fixed seeds.
  uint64_t assignment_hash = 0;
  /// Loom-only pooled-match stats (0 for other systems): slab slots created
  /// from scratch vs recycled (each recycle is a shared_ptr-era allocation
  /// avoided).
  uint64_t match_allocs_fresh = 0;
  uint64_t match_allocs_reused = 0;
};

/// FNV-1a over the first `num_vertices` assignments.
uint64_t HashAssignment(const partition::Partitioning& p, size_t num_vertices);

struct ComparisonResult {
  std::string dataset;
  stream::StreamOrder order = stream::StreamOrder::kBreadthFirst;
  uint32_t k = 8;
  size_t stream_edges = 0;
  std::vector<SystemResult> systems;

  const SystemResult* Find(System s) const;
};

/// Instantiates a partitioner for `system`, sized for `ds`.
std::unique_ptr<partition::Partitioner> MakePartitioner(
    System system, const datasets::Dataset& ds, const ExperimentConfig& config);

/// Streams `es` through `system`'s partitioner (timed), finalizes, measures
/// edge-cut/imbalance and executes the dataset workload for ipt.
SystemResult RunSystem(System system, const datasets::Dataset& ds,
                       const stream::EdgeStream& es,
                       const ExperimentConfig& config);

/// Runs all four systems over the same stream and fills ipt_vs_hash.
ComparisonResult RunComparison(const datasets::Dataset& ds,
                               const ExperimentConfig& config);

/// Variant measuring only partitioning throughput (no query execution);
/// used by Table 2 where LUBM-4000 is partitioned but never queried.
SystemResult RunSystemTimingOnly(System system, const datasets::Dataset& ds,
                                 const stream::EdgeStream& es,
                                 const ExperimentConfig& config);

}  // namespace eval
}  // namespace loom

#endif  // LOOM_EVAL_EXPERIMENT_H_
