#include "engine/session.h"

#include <algorithm>

#include "util/timer.h"

namespace loom {
namespace engine {

uint64_t RunReport::Stat(std::string_view name, uint64_t fallback) const {
  return FindCounter(backend_stats, name, fallback);
}

void Session::Fanout::OnAssign(const AssignEvent& e) {
  stats.OnAssign(e);
  for (io::AssignmentSink* sink : sinks) sink->Append(e.vertex, e.partition);
  for (EngineObserver* o : observers) o->OnAssign(e);
}

void Session::Fanout::OnEviction(const EvictionEvent& e) {
  stats.OnEviction(e);
  for (EngineObserver* o : observers) o->OnEviction(e);
}

void Session::Fanout::OnClusterDecision(const ClusterDecisionEvent& e) {
  stats.OnClusterDecision(e);
  for (EngineObserver* o : observers) o->OnClusterDecision(e);
}

void Session::Fanout::OnProgress(const ProgressEvent& e) {
  stats.OnProgress(e);
  for (EngineObserver* o : observers) o->OnProgress(e);
}

void Session::Fanout::OnFinalStats(const FinalStatsEvent& e) {
  stats.OnFinalStats(e);
  for (EngineObserver* o : observers) o->OnFinalStats(e);
}

std::unique_ptr<Session> Session::Create(const SessionConfig& config,
                                         const BuildContext& context,
                                         std::string* error) {
  std::unique_ptr<partition::Partitioner> partitioner =
      BuildPartitioner(config.spec, config.options, context, error);
  if (partitioner == nullptr) return nullptr;
  return std::unique_ptr<Session>(
      new Session(config, std::move(partitioner)));
}

Session::Session(const SessionConfig& config,
                 std::unique_ptr<partition::Partitioner> partitioner)
    : config_(config), partitioner_(std::move(partitioner)) {
  partitioner_->SetObserver(&fanout_);
}

Session::~Session() {
  if (partitioner_ != nullptr) partitioner_->SetObserver(nullptr);
}

void Session::AddObserver(EngineObserver* observer) {
  fanout_.observers.push_back(observer);
}

void Session::AddSink(io::AssignmentSink* sink) {
  fanout_.sinks.push_back(sink);
}

RunReport Session::Run(EdgeSource& source) {
  // Drive with no drive-local observer: the session's fanout is already
  // subscribed, so events (including the final progress + final stats)
  // reach it through the standing subscription.
  const DriveResult driven =
      Drive(partitioner_.get(), &source, nullptr, config_.drive);
  edges_ += driven.edges;
  ms_ += driven.ms;
  FlushSinks();
  return MakeReport();
}

size_t Session::IngestSome(EdgeSource& source, size_t max_edges) {
  const size_t batch_cap = std::max<size_t>(config_.drive.batch_size, 1);
  std::vector<stream::StreamEdge> batch(std::min(batch_cap, max_edges));
  size_t done = 0;
  util::Timer timer;
  while (done < max_edges) {
    const size_t want = std::min(batch_cap, max_edges - done);
    const size_t n =
        source.NextBatch(std::span<stream::StreamEdge>(batch.data(), want));
    if (n == 0) break;
    partitioner_->IngestBatch(
        std::span<const stream::StreamEdge>(batch.data(), n));
    done += n;
  }
  ms_ += timer.ElapsedMs();
  edges_ += done;
  return done;
}

RunReport Session::Finish() {
  util::Timer timer;
  partitioner_->Finalize();
  ms_ += timer.ElapsedMs();

  // Mirror Drive's end-of-run tail for step-driven streams: a finalizing
  // progress event with lifetime totals, then the final stats.
  ProgressEvent progress;
  progress.edges_ingested = edges_;
  progress.finalizing = true;
  partitioner_->FillProgress(&progress);
  fanout_.OnProgress(progress);
  FinalStatsEvent final_stats;
  partitioner_->FillFinalStats(&final_stats);
  fanout_.OnFinalStats(final_stats);

  FlushSinks();
  return MakeReport();
}

const partition::Partitioning& Session::partitioning() const {
  return partitioner_->partitioning();
}

void Session::FlushSinks() {
  for (io::AssignmentSink* sink : fanout_.sinks) sink->Flush();
}

RunReport Session::MakeReport() const {
  RunReport report;
  report.backend = partitioner_->name();
  report.edges = edges_;
  report.ms = ms_;
  report.edges_per_sec =
      ms_ > 0.0 ? 1000.0 * static_cast<double>(edges_) / ms_ : 0.0;
  report.events = fanout_.stats.totals();
  report.backend_stats = fanout_.stats.final_stats().counters;
  return report;
}

}  // namespace engine
}  // namespace loom
