// Fennel (Tsourakakis et al. [31]), edge-stream variant.
//
// Fennel assigns each unassigned vertex v to
//   argmax_Si  |N(v) ∩ Si| - α·γ·|V(Si)|^(γ-1)
// subject to |V(Si)| < ν·n/k, with γ = 1.5 (as the paper's evaluation uses),
// α = √k · m / n^1.5, ν = 1.1. The first term rewards locality, the second
// is the marginal cost of the interpolated objective α·Σ|Si|^γ.

#ifndef LOOM_PARTITION_FENNEL_PARTITIONER_H_
#define LOOM_PARTITION_FENNEL_PARTITIONER_H_

#include "graph/dynamic_graph.h"
#include "partition/partitioner.h"

namespace loom {
namespace partition {

class FennelPartitioner : public Partitioner {
 public:
  /// `gamma` defaults to the paper's 1.5.
  explicit FennelPartitioner(const PartitionerConfig& config,
                             double gamma = 1.5);

  void Ingest(const stream::StreamEdge& e) override;
  const Partitioning& partitioning() const override { return partitioning_; }
  std::string name() const override { return "fennel"; }

  double alpha() const { return alpha_; }
  double gamma() const { return gamma_; }

  /// Table + seen-graph, as for LDG (gamma/alpha are ctor-derived constants
  /// and need no serialisation).
  bool SaveState(io::CheckpointWriter* w, std::string* error) const override;
  bool RestoreState(io::CheckpointReader* r, std::string* error) override;

 protected:
  Partitioning* MutablePartitioning() override { return &partitioning_; }

 private:
  /// Greedy placement of a single vertex.
  graph::PartitionId ChooseFor(graph::VertexId v) const;

  Partitioning partitioning_;
  graph::DynamicGraph seen_;
  double gamma_;
  double alpha_;
};

}  // namespace partition
}  // namespace loom

#endif  // LOOM_PARTITION_FENNEL_PARTITIONER_H_
