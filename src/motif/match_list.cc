#include "motif/match_list.h"

#include <algorithm>
#include <cassert>

#include "util/bits.h"

namespace loom {
namespace motif {

using util::NextPow2;

// ----------------------------------------------------------- edge ring

void MatchList::ReserveEdgeSpan(size_t span) {
  max_edge_slots_ = std::max(
      max_edge_slots_,
      NextPow2(std::min<size_t>(std::max<size_t>(span * 16, size_t{1024}),
                                size_t{1} << 22)));
  const size_t target = NextPow2(std::min(span, max_edge_slots_));
  if (target > by_edge_.size()) ResizeEdgeRing(target);
}

void MatchList::ResizeEdgeRing(size_t new_size) {
  std::vector<PostingList> grown(new_size);
  const size_t new_mask = new_size - 1;
  // Each slot knows its owning key, so growth re-places by scanning the old
  // slot array — not the (gap-riddled) live id span.
  for (PostingList& pl : by_edge_) {
    if (pl.key == graph::kInvalidEdge) continue;
    grown[pl.key & new_mask] = std::move(pl);
  }
  by_edge_ = std::move(grown);
  edge_mask_ = new_mask;
}

MatchList::PostingList* MatchList::EnsureEdgeSlot(graph::EdgeId e) {
  if (!edge_overflow_.empty()) {
    // A spilled key keeps its overflow list for life — checked before any
    // ring-span restart so a drained ring can't shadow it with a duplicate
    // ring slot.
    auto it = edge_overflow_.find(e);
    if (it != edge_overflow_.end()) return &it->second;
  }
  if (!edge_any_ || edge_head_ == edge_tail_) {
    // Empty ring (fresh, or every key freed): restart the span at e.
    edge_any_ = true;
    edge_head_ = edge_tail_ = e;
  }
  if (e < edge_head_) {
    // A key that fell behind the ring's coverage (its window edge lingered
    // long enough that the span was capped): file it in the overflow map.
    return &edge_overflow_[e];
  }
  if (e >= edge_tail_) {
    const size_t need = static_cast<size_t>(e - edge_head_) + 1;
    if (need > by_edge_.size()) {
      // Factor 4, same reasoning as SlidingWindow::Grow: the ring's key
      // span is the window's id span, a large multiple of its live
      // population when most stream ids bypass the window.
      size_t target = NextPow2(std::max({need, by_edge_.size() * 4}));
      if (target > max_edge_slots_) {
        target = max_edge_slots_;
        if (need > max_edge_slots_) {
          // The key span itself exceeds the cap: spill keys that fall out
          // of [e + 1 - cap, e] and advance. need > cap guarantees
          // e + 1 > cap, so no underflow.
          const graph::EdgeId new_head =
              e + 1 - static_cast<graph::EdgeId>(max_edge_slots_);
          const graph::EdgeId spill_end = std::min(edge_tail_, new_head);
          for (graph::EdgeId id = edge_head_; id < spill_end; ++id) {
            PostingList& pl = by_edge_[EdgeSlotOf(id)];
            if (pl.key != id) continue;
            edge_overflow_.emplace(id, std::move(pl));
            pl.items.clear();
            pl.dead = 0;
            pl.key = graph::kInvalidEdge;
          }
          edge_head_ = std::max(edge_head_, new_head);
          if (edge_tail_ < edge_head_) edge_tail_ = edge_head_;
        }
      }
      if (target > by_edge_.size()) ResizeEdgeRing(target);
    }
    edge_tail_ = e + 1;
  }
  PostingList& pl = by_edge_[EdgeSlotOf(e)];
  if (pl.key != e) {
    // Recycle the previous tenant's slot (a freed key from a full ring-length
    // ago, or a never-activated slot); the items vector keeps its capacity.
    pl.items.clear();
    pl.dead = 0;
    pl.key = e;
  }
  return &pl;
}

MatchList::PostingList* MatchList::FindEdgeList(graph::EdgeId e) {
  if (edge_any_ && e >= edge_head_ && e < edge_tail_) {
    PostingList* pl = &by_edge_[EdgeSlotOf(e)];
    if (pl->key == e) return pl;
    // fall through: a spilled key can sit inside a restarted ring's span
  }
  if (!edge_overflow_.empty()) {
    auto it = edge_overflow_.find(e);
    if (it != edge_overflow_.end()) return &it->second;
  }
  return nullptr;
}

const MatchList::PostingList* MatchList::FindEdgeList(graph::EdgeId e) const {
  if (edge_any_ && e >= edge_head_ && e < edge_tail_) {
    const PostingList* pl = &by_edge_[EdgeSlotOf(e)];
    if (pl->key == e) return pl;
    // fall through: a spilled key can sit inside a restarted ring's span
  }
  if (!edge_overflow_.empty()) {
    auto it = edge_overflow_.find(e);
    if (it != edge_overflow_.end()) return &it->second;
  }
  return nullptr;
}

// -------------------------------------------------------------- pruning

void MatchList::Prune(PostingList* pl) {
  auto& items = pl->items;
  items.erase(std::remove_if(items.begin(), items.end(),
                             [this](MatchHandle h) { return !pool_.IsLive(h); }),
              items.end());
  pl->dead = 0;
}

void MatchList::PruneIfStale(PostingList* pl) {
  if (pl->dead > 0 && static_cast<size_t>(pl->dead) * 2 >= pl->items.size()) {
    Prune(pl);
  }
}

// ------------------------------------------------------------- mutation

bool MatchList::Commit(MatchHandle h) {
  Match& m = pool_.Get(h);
  assert(std::is_sorted(m.edges.begin(), m.edges.end()));
  assert(std::is_sorted(m.vertices.begin(), m.vertices.end()));
  const uint64_t key = m.Key();
  if (!live_keys_.Insert(key)) {
    pool_.Release(h);
    return false;
  }
  for (graph::VertexId v : m.vertices) {
    if (v >= by_vertex_.size()) by_vertex_.resize(v + 1);
    by_vertex_[v].items.push_back(h);
  }
  for (graph::EdgeId e : m.edges) {
    EnsureEdgeSlot(e)->items.push_back(h);
  }
  ++live_count_;
  ++total_added_;
  return true;
}

void MatchList::Kill(MatchHandle h) {
  const Match& m = pool_.Get(h);
  live_keys_.Erase(m.Key());
  --live_count_;
  for (graph::VertexId v : m.vertices) {
    if (++by_vertex_[v].dead == 1) dirty_vertices_.push_back(v);
  }
  for (graph::EdgeId e : m.edges) {
    PostingList* pl = FindEdgeList(e);
    if (pl != nullptr && ++pl->dead == 1) dirty_edges_.push_back(e);
  }
  pool_.Release(h);
}

void MatchList::RemoveMatchesWithEdge(graph::EdgeId e) {
  if (!edge_overflow_.empty()) {
    auto it = edge_overflow_.find(e);
    if (it != edge_overflow_.end()) {
      for (MatchHandle h : it->second.items) {
        if (pool_.IsLive(h)) Kill(h);
      }
      edge_overflow_.erase(it);
      return;
    }
  }
  PostingList* pl = FindEdgeList(e);
  if (pl == nullptr) return;
  for (MatchHandle h : pl->items) {
    if (pool_.IsLive(h)) Kill(h);
  }
  pl->items.clear();
  pl->dead = 0;
  pl->key = graph::kInvalidEdge;
  // The ring's head chases the oldest still-active key (bypassed id gaps
  // and freed keys are stepped over exactly once each).
  while (edge_head_ < edge_tail_ &&
         by_edge_[EdgeSlotOf(edge_head_)].key != edge_head_) {
    ++edge_head_;
  }
}

// -------------------------------------------------------------- queries

void MatchList::CollectLiveAt(graph::VertexId v,
                              std::vector<MatchHandle>* out) {
  if (v >= by_vertex_.size()) return;
  PostingList& pl = by_vertex_[v];
  PruneIfStale(&pl);
  const size_t bound = pl.items.size();  // appends during iteration excluded
  for (size_t i = 0; i < bound; ++i) {
    if (pool_.IsLive(pl.items[i])) out->push_back(pl.items[i]);
  }
}

void MatchList::CollectLiveWithEdge(graph::EdgeId e,
                                    std::vector<MatchHandle>* out) {
  PostingList* pl = FindEdgeList(e);
  if (pl == nullptr) return;
  PruneIfStale(pl);
  const size_t bound = pl->items.size();
  for (size_t i = 0; i < bound; ++i) {
    if (pool_.IsLive(pl->items[i])) out->push_back(pl->items[i]);
  }
}

std::vector<MatchHandle> MatchList::LiveAt(graph::VertexId v) const {
  std::vector<MatchHandle> out;
  if (v >= by_vertex_.size()) return out;
  for (MatchHandle h : by_vertex_[v].items) {
    if (pool_.IsLive(h)) out.push_back(h);
  }
  return out;
}

std::vector<MatchHandle> MatchList::LiveWithEdge(graph::EdgeId e) const {
  std::vector<MatchHandle> out;
  const PostingList* pl = FindEdgeList(e);
  if (pl == nullptr) return out;
  for (MatchHandle h : pl->items) {
    if (pool_.IsLive(h)) out.push_back(h);
  }
  return out;
}

bool MatchList::HasLiveAt(graph::VertexId v) const {
  if (v >= by_vertex_.size()) return false;
  for (MatchHandle h : by_vertex_[v].items) {
    if (pool_.IsLive(h)) return true;
  }
  return false;
}

bool MatchList::HasLiveAt(graph::VertexId v) {
  if (v >= by_vertex_.size()) return false;
  PostingList& pl = by_vertex_[v];
  PruneIfStale(&pl);
  for (MatchHandle h : pl.items) {
    if (pool_.IsLive(h)) return true;
  }
  return false;
}

void MatchList::Compact() {
  // Dirty list instead of a full sweep; opportunistic pruning may have
  // already cleaned an entry (Prune is idempotent) and a vertex may appear
  // twice (re-dirtied after a prune) — both are harmless.
  for (graph::VertexId v : dirty_vertices_) {
    PostingList& pl = by_vertex_[v];
    if (pl.dead > 0) Prune(&pl);
  }
  dirty_vertices_.clear();
  for (graph::EdgeId e : dirty_edges_) {
    PostingList* pl = FindEdgeList(e);
    if (pl != nullptr && pl->dead > 0) Prune(pl);
  }
  dirty_edges_.clear();
}

}  // namespace motif
}  // namespace loom
