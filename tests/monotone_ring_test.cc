// Direct coverage for the shared capped monotone-id ring template — the
// invariants that used to live (twice) in SlidingWindow and MatchList's
// edge ring: x4 capped growth, overflow-map spill, span restart, lazy
// head-chasing, and payload-capacity reuse on slot recycling.
// SlidingWindow-level behaviour is additionally pinned in stream_test.cc
// and MatchList-level behaviour in match_list_test.cc.

#include "util/monotone_ring.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace loom {
namespace util {
namespace {

using Ring = MonotoneRing<int, uint32_t>;

TEST(MonotoneRingTest, AppendFindEraseRoundTrip) {
  Ring r;
  *r.Append(3) = 30;
  *r.Append(5) = 50;
  *r.Append(9) = 90;
  EXPECT_EQ(r.size(), 3u);
  ASSERT_NE(r.Find(5), nullptr);
  EXPECT_EQ(*r.Find(5), 50);
  EXPECT_EQ(r.Find(4), nullptr);
  EXPECT_TRUE(r.Erase(5));
  EXPECT_FALSE(r.Erase(5));
  EXPECT_EQ(r.Find(5), nullptr);
  EXPECT_EQ(r.size(), 2u);
}

TEST(MonotoneRingTest, PopAndPeekOldestChaseTombstones) {
  Ring r;
  for (uint32_t id : {1u, 4u, 7u, 9u}) *r.Append(id) = static_cast<int>(id);
  EXPECT_TRUE(r.Erase(1));
  EXPECT_TRUE(r.Erase(7));
  uint32_t id = 0;
  ASSERT_NE(r.PeekOldest(&id), nullptr);
  EXPECT_EQ(id, 4u);
  EXPECT_EQ(*r.PopOldest(&id), 4);
  EXPECT_EQ(*r.PopOldest(&id), 9);
  EXPECT_EQ(id, 9u);
  EXPECT_FALSE(r.PopOldest().has_value());
}

TEST(MonotoneRingTest, SpanRestartAfterDrainAvoidsGrowth) {
  Ring r;
  r.Presize(8);
  const size_t slots = r.NumSlots();
  for (uint32_t id = 0; id < 4; ++id) *r.Append(id) = 1;
  for (uint32_t id = 0; id < 4; ++id) EXPECT_TRUE(r.Erase(id));
  EXPECT_TRUE(r.empty());
  *r.Append(1000000) = 2;  // must restart the span, not grow to cover it
  EXPECT_EQ(r.NumSlots(), slots);
  EXPECT_TRUE(r.Contains(1000000));
}

TEST(MonotoneRingTest, GrowsByFactorFourUpToCapThenSpills) {
  Ring r;
  r.SetGrowthCap(64);
  r.Presize(4);
  *r.Append(0) = 0;
  *r.Append(40) = 40;  // span 41 <= cap: grows, no spill
  EXPECT_LE(r.NumSlots(), 64u);
  EXPECT_EQ(r.OverflowSize(), 0u);
  *r.Append(200) = 200;  // span 201 > cap: old ids spill
  EXPECT_EQ(r.NumSlots(), 64u);
  EXPECT_EQ(r.OverflowSize(), 2u);
  EXPECT_EQ(r.size(), 3u);
  // Spilled entries stay fully functional.
  ASSERT_NE(r.Find(0), nullptr);
  EXPECT_EQ(*r.Find(0), 0);
  ASSERT_NE(r.Find(40), nullptr);
  uint32_t id = 0;
  EXPECT_EQ(*r.PopOldest(&id), 0);
  EXPECT_EQ(id, 0u);
  EXPECT_EQ(*r.PopOldest(&id), 40);
  EXPECT_EQ(*r.PopOldest(&id), 200);
}

TEST(MonotoneRingTest, GetOrCreateBehindHeadUsesOverflowForLife) {
  Ring r;
  r.SetGrowthCap(64);
  bool created = false;
  *r.GetOrCreate(0, &created) = 10;
  EXPECT_TRUE(created);
  *r.GetOrCreate(500, &created) = 11;  // spills key 0
  EXPECT_GT(r.OverflowSize(), 0u);
  // Re-requesting the spilled key returns the same overflow entry.
  int* v = r.GetOrCreate(0, &created);
  EXPECT_FALSE(created);
  EXPECT_EQ(*v, 10);
  // Draining the ring and re-requesting key 0 must still find the overflow
  // entry, not shadow it with a fresh ring slot.
  EXPECT_TRUE(r.Erase(500));
  v = r.GetOrCreate(0, &created);
  EXPECT_FALSE(created);
  EXPECT_EQ(*v, 10);
}

TEST(MonotoneRingTest, ForEachVisitsOldestFirstAcrossOverflowAndRing) {
  Ring r;
  r.SetGrowthCap(64);
  *r.Append(0) = 0;
  *r.Append(1) = 1;
  *r.Append(300) = 300;  // 0 and 1 spill
  std::vector<uint32_t> ids;
  r.ForEach([&](uint32_t id, const int&) { ids.push_back(id); });
  EXPECT_EQ(ids, (std::vector<uint32_t>{0, 1, 300}));
}

TEST(MonotoneRingTest, RecycledSlotKeepsPayloadAllocation) {
  MonotoneRing<std::vector<int>, uint32_t> r;
  r.Presize(4);
  bool created = false;
  std::vector<int>* v = r.GetOrCreate(2, &created);
  v->assign(100, 7);
  const size_t cap = v->capacity();
  EXPECT_TRUE(r.Erase(2));
  // A later id mapping to the same slot recycles the vector's buffer; the
  // caller sees created=true and clears it (MatchList's contract).
  std::vector<int>* w = r.GetOrCreate(2 + static_cast<uint32_t>(r.NumSlots()),
                                      &created);
  EXPECT_TRUE(created);
  EXPECT_EQ(w->capacity(), cap);
}

TEST(MonotoneRingTest, WrapsManyTimesAtSteadyState) {
  Ring r;
  r.Presize(8);
  const size_t slots = r.NumSlots();
  for (uint32_t id = 0; id < 10000; ++id) {
    *r.Append(id) = static_cast<int>(id);
    if (r.size() > 4) r.PopOldest();
  }
  EXPECT_EQ(r.NumSlots(), slots);
  EXPECT_EQ(r.size(), 4u);
  EXPECT_TRUE(r.Contains(9999));
  EXPECT_FALSE(r.Contains(9995));
}

}  // namespace
}  // namespace util
}  // namespace loom
