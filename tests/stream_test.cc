#include <gtest/gtest.h>

#include <set>

#include "datasets/dataset_registry.h"
#include "stream/edge_stream.h"
#include "stream/sliding_window.h"
#include "stream/stream_order.h"

namespace loom {
namespace stream {
namespace {

graph::LabeledGraph SmallGraph() {
  graph::LabeledGraph::Builder b;
  for (int i = 0; i < 4; ++i) b.AddVertex(static_cast<graph::LabelId>(i % 2));
  b.AddEdge(0, 1);
  b.AddEdge(1, 2);
  b.AddEdge(2, 3);
  return b.Build();
}

// ------------------------------------------------------------- edge stream

TEST(EdgeStreamTest, CarriesLabelsAndPositions) {
  graph::LabeledGraph g = SmallGraph();
  EdgeStream es(g, {0, 1, 2});
  ASSERT_EQ(es.size(), 3u);
  for (size_t i = 0; i < es.size(); ++i) {
    EXPECT_EQ(es[i].id, i);
    EXPECT_EQ(es[i].label_u, g.label(es[i].u));
    EXPECT_EQ(es[i].label_v, g.label(es[i].v));
  }
}

TEST(EdgeStreamTest, RespectsPermutation) {
  graph::LabeledGraph g = SmallGraph();
  EdgeStream es(g, {2, 0, 1});
  EXPECT_EQ(es[0].u, g.edge(2).u);
  EXPECT_EQ(es[0].v, g.edge(2).v);
}

TEST(StreamEdgeTest, Accessors) {
  StreamEdge e{0, 5, 9, 1, 2};
  EXPECT_EQ(e.Other(5), 9u);
  EXPECT_EQ(e.Other(9), 5u);
  EXPECT_EQ(e.LabelOf(5), 1);
  EXPECT_EQ(e.LabelOf(9), 2);
  EXPECT_TRUE(e.Incident(5));
  EXPECT_FALSE(e.Incident(6));
}

// ------------------------------------------------------------ stream order

TEST(StreamOrderTest, AllOrdersCoverAllEdges) {
  auto ds = datasets::MakeFigure1Dataset();
  for (auto order : {StreamOrder::kBreadthFirst, StreamOrder::kDepthFirst,
                     StreamOrder::kRandom, StreamOrder::kCanonical}) {
    EdgeStream es = MakeStream(ds.graph, order);
    EXPECT_EQ(es.size(), ds.graph.NumEdges()) << ToString(order);
    std::set<graph::Edge, bool (*)(const graph::Edge&, const graph::Edge&)> seen(
        +[](const graph::Edge& a, const graph::Edge& b) {
          graph::Edge na = a.Normalized(), nb = b.Normalized();
          return na.u != nb.u ? na.u < nb.u : na.v < nb.v;
        });
    for (const StreamEdge& e : es) seen.insert(graph::Edge(e.u, e.v));
    EXPECT_EQ(seen.size(), ds.graph.NumEdges());
  }
}

TEST(StreamOrderTest, RandomSeedChangesOrder) {
  auto ds = datasets::MakeDataset(datasets::DatasetId::kProvGen, 0.05);
  EdgeStream a = MakeStream(ds.graph, StreamOrder::kRandom, 1);
  EdgeStream b = MakeStream(ds.graph, StreamOrder::kRandom, 2);
  bool differs = false;
  for (size_t i = 0; i < a.size() && !differs; ++i) {
    differs = a[i].u != b[i].u || a[i].v != b[i].v;
  }
  EXPECT_TRUE(differs);
}

TEST(StreamOrderTest, Names) {
  EXPECT_EQ(ToString(StreamOrder::kBreadthFirst), "bfs");
  EXPECT_EQ(ToString(StreamOrder::kDepthFirst), "dfs");
  EXPECT_EQ(ToString(StreamOrder::kRandom), "random");
  EXPECT_EQ(ToString(StreamOrder::kCanonical), "canonical");
  for (auto order : {StreamOrder::kBreadthFirst, StreamOrder::kDepthFirst,
                     StreamOrder::kRandom, StreamOrder::kCanonical}) {
    StreamOrder parsed;
    ASSERT_TRUE(ParseStreamOrder(ToString(order), &parsed));
    EXPECT_EQ(parsed, order);
  }
  StreamOrder ignored;
  EXPECT_FALSE(ParseStreamOrder("sideways", &ignored));
}

TEST(StreamOrderTest, CanonicalIsTheBuilderEdgeIdOrder) {
  auto ds = datasets::MakeFigure1Dataset();
  EdgeStream es = MakeStream(ds.graph, StreamOrder::kCanonical);
  ASSERT_EQ(es.size(), ds.graph.NumEdges());
  for (size_t i = 0; i < es.size(); ++i) {
    const graph::Edge& e = ds.graph.edge(static_cast<graph::EdgeId>(i));
    EXPECT_EQ(es[i].u, e.u);
    EXPECT_EQ(es[i].v, e.v);
  }
}

// ---------------------------------------------------------- sliding window

StreamEdge MakeEdge(graph::EdgeId id) {
  StreamEdge e;
  e.id = id;
  e.u = id * 2;
  e.v = id * 2 + 1;
  e.label_u = 0;
  e.label_v = 0;
  return e;
}

TEST(SlidingWindowTest, FifoSemantics) {
  SlidingWindow w(2);
  w.Push(MakeEdge(0));
  w.Push(MakeEdge(1));
  EXPECT_FALSE(w.OverCapacity());
  w.Push(MakeEdge(2));
  EXPECT_TRUE(w.OverCapacity());
  auto oldest = w.PopOldest();
  ASSERT_TRUE(oldest.has_value());
  EXPECT_EQ(oldest->id, 0u);
  EXPECT_FALSE(w.OverCapacity());
  EXPECT_EQ(w.size(), 2u);
}

TEST(SlidingWindowTest, FindAndContains) {
  SlidingWindow w(4);
  w.Push(MakeEdge(7));
  EXPECT_TRUE(w.Contains(7));
  EXPECT_FALSE(w.Contains(8));
  const StreamEdge* e = w.Find(7);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->u, 14u);
  EXPECT_EQ(w.Find(8), nullptr);
}

TEST(SlidingWindowTest, RemoveArbitrary) {
  SlidingWindow w(4);
  for (graph::EdgeId i = 0; i < 4; ++i) w.Push(MakeEdge(i));
  EXPECT_TRUE(w.Remove(1));
  EXPECT_FALSE(w.Remove(1));  // already gone
  EXPECT_EQ(w.size(), 3u);
  // Removal of a middle element must not disturb FIFO order of the rest.
  EXPECT_EQ(w.PopOldest()->id, 0u);
  EXPECT_EQ(w.PopOldest()->id, 2u);
  EXPECT_EQ(w.PopOldest()->id, 3u);
  EXPECT_FALSE(w.PopOldest().has_value());
}

TEST(SlidingWindowTest, RemoveHeadThenPop) {
  SlidingWindow w(4);
  w.Push(MakeEdge(0));
  w.Push(MakeEdge(1));
  w.Remove(0);
  auto e = w.PopOldest();
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e->id, 1u);
}

TEST(SlidingWindowTest, PeekOldestSkipsRemoved) {
  SlidingWindow w(4);
  w.Push(MakeEdge(0));
  w.Push(MakeEdge(1));
  w.Remove(0);
  const StreamEdge* e = w.PeekOldest();
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->id, 1u);
  EXPECT_EQ(w.size(), 2u - 1u);
}

TEST(SlidingWindowTest, ForEachVisitsLiveInOrder) {
  SlidingWindow w(8);
  for (graph::EdgeId i = 0; i < 5; ++i) w.Push(MakeEdge(i));
  w.Remove(2);
  std::vector<graph::EdgeId> ids;
  w.ForEach([&](const StreamEdge& e) { ids.push_back(e.id); });
  EXPECT_EQ(ids, (std::vector<graph::EdgeId>{0, 1, 3, 4}));
}

TEST(SlidingWindowTest, EmptyWindow) {
  SlidingWindow w(3);
  EXPECT_TRUE(w.empty());
  EXPECT_FALSE(w.PopOldest().has_value());
  EXPECT_EQ(w.PeekOldest(), nullptr);
}

// ------------------------------------------------- ring-buffer internals

TEST(SlidingWindowTest, RingWrapsAroundManyTimes) {
  // Far more pushes than slots: ids must wrap the ring repeatedly without
  // the buffer growing (steady-state eviction keeps the span bounded).
  SlidingWindow w(4);
  const size_t slots = w.NumSlots();
  for (graph::EdgeId i = 0; i < 1000; ++i) {
    w.Push(MakeEdge(i));
    while (w.OverCapacity()) w.PopOldest();
  }
  EXPECT_EQ(w.NumSlots(), slots);
  EXPECT_EQ(w.size(), 4u);
  for (graph::EdgeId i = 996; i < 1000; ++i) {
    ASSERT_TRUE(w.Contains(i));
    EXPECT_EQ(w.Find(i)->u, i * 2);
  }
  EXPECT_FALSE(w.Contains(995));
  EXPECT_EQ(w.PeekOldest()->id, 996u);
}

TEST(SlidingWindowTest, GrowsWhenIdSpanOutrunsSlots) {
  // Sparse ids (bypassed edges consume stream positions): the live id span
  // outgrows the initial allocation and the ring must re-place live edges.
  SlidingWindow w(1000);
  const size_t slots0 = w.NumSlots();
  for (graph::EdgeId i = 0; i < 100; ++i) w.Push(MakeEdge(i * 37));
  EXPECT_GT(w.NumSlots(), slots0);
  EXPECT_EQ(w.size(), 100u);
  for (graph::EdgeId i = 0; i < 100; ++i) {
    ASSERT_TRUE(w.Contains(i * 37)) << i;
    EXPECT_EQ(w.Find(i * 37)->v, i * 37 * 2 + 1);
  }
  EXPECT_FALSE(w.Contains(38));
  EXPECT_EQ(w.PeekOldest()->id, 0u);
}

TEST(SlidingWindowTest, TombstonedSlotsAreReused) {
  // Remove edges out of order, then push enough new ids that the ring wraps
  // onto the tombstoned slots.
  SlidingWindow w(8);
  const size_t slots = w.NumSlots();
  for (graph::EdgeId i = 0; i < 8; ++i) w.Push(MakeEdge(i));
  w.Remove(3);
  w.Remove(6);
  w.Remove(1);
  EXPECT_EQ(w.size(), 5u);
  for (graph::EdgeId i = 8; i < 8 + 64; ++i) {
    w.Push(MakeEdge(i));
    while (w.OverCapacity()) w.PopOldest();
  }
  EXPECT_EQ(w.NumSlots(), slots);  // tombstones recycled, no growth
  EXPECT_FALSE(w.Contains(3));
  EXPECT_TRUE(w.Contains(71));
}

TEST(SlidingWindowTest, DrainViaRemoveThenPushResetsSpan) {
  // Emptying the window entirely through out-of-order removal must reset
  // the id span: a much later id then fits without growing the ring.
  SlidingWindow w(4);
  const size_t slots = w.NumSlots();
  for (graph::EdgeId i = 0; i < 4; ++i) w.Push(MakeEdge(i));
  for (graph::EdgeId i : {2u, 0u, 3u, 1u}) EXPECT_TRUE(w.Remove(i));
  EXPECT_TRUE(w.empty());
  w.Push(MakeEdge(1000000));
  EXPECT_EQ(w.NumSlots(), slots);
  EXPECT_TRUE(w.Contains(1000000));
  EXPECT_EQ(w.PopOldest()->id, 1000000u);
}

TEST(SlidingWindowTest, LingeringEdgeSpillsToOverflowAtBoundedRingSize) {
  // A tiny window whose oldest edge lingers while stream ids race far ahead:
  // the ring must stop growing at its cap and keep the straggler reachable
  // (spilled to the overflow map) with identical external behaviour.
  SlidingWindow w(4);  // ring growth cap: NextPow2(max(16*5, 1024)) = 1024
  w.Push(MakeEdge(0));
  w.Push(MakeEdge(500000));  // id span 500001 >> cap
  EXPECT_LE(w.NumSlots(), 1024u);
  EXPECT_EQ(w.size(), 2u);
  ASSERT_TRUE(w.Contains(0));
  ASSERT_TRUE(w.Contains(500000));
  EXPECT_EQ(w.Find(0)->u, 0u);
  EXPECT_EQ(w.Find(500000)->u, 1000000u);
  EXPECT_EQ(w.PeekOldest()->id, 0u);
  std::vector<graph::EdgeId> ids;
  w.ForEach([&](const StreamEdge& e) { ids.push_back(e.id); });
  EXPECT_EQ(ids, (std::vector<graph::EdgeId>{0, 500000}));
  EXPECT_EQ(w.PopOldest()->id, 0u);  // overflow drains oldest-first
  EXPECT_EQ(w.PopOldest()->id, 500000u);
  EXPECT_TRUE(w.empty());
}

TEST(SlidingWindowTest, GrowthStepAboveCapWithSpanBelowCapDoesNotSpill) {
  // Regression: the x4 growth step can overshoot the ring cap while the id
  // span still fits it; that must clamp the growth, not trigger the spill
  // path (whose new-head arithmetic would underflow).
  SlidingWindow w(4);  // initial 8 slots, cap 1024
  w.Push(MakeEdge(0));
  w.Push(MakeEdge(300));  // grows to 512
  w.Push(MakeEdge(600));  // x4 target 2048 > cap, but span 601 fits
  EXPECT_EQ(w.size(), 3u);
  EXPECT_TRUE(w.Contains(0));
  EXPECT_TRUE(w.Contains(300));
  EXPECT_TRUE(w.Contains(600));
  ASSERT_NE(w.Find(600), nullptr);
  EXPECT_EQ(w.Find(600)->u, 1200u);
  EXPECT_EQ(w.PopOldest()->id, 0u);
  EXPECT_EQ(w.PopOldest()->id, 300u);
  EXPECT_EQ(w.PopOldest()->id, 600u);
}

TEST(SlidingWindowTest, SpilledEdgeSupportsOutOfOrderRemove) {
  SlidingWindow w(4);
  w.Push(MakeEdge(1));
  w.Push(MakeEdge(2));
  w.Push(MakeEdge(800000));
  EXPECT_LE(w.NumSlots(), 1024u);
  EXPECT_TRUE(w.Remove(1));   // spilled
  EXPECT_FALSE(w.Remove(1));  // already gone
  EXPECT_EQ(w.size(), 2u);
  EXPECT_EQ(w.PopOldest()->id, 2u);
  EXPECT_EQ(w.PopOldest()->id, 800000u);
}

TEST(SlidingWindowTest, InterleavedRemoveAndPopKeepFifoOrder) {
  SlidingWindow w(16);
  for (graph::EdgeId i = 0; i < 10; ++i) w.Push(MakeEdge(i));
  w.Remove(0);
  w.Remove(4);
  w.Remove(9);
  std::vector<graph::EdgeId> popped;
  while (auto e = w.PopOldest()) popped.push_back(e->id);
  EXPECT_EQ(popped, (std::vector<graph::EdgeId>{1, 2, 3, 5, 6, 7, 8}));
}

}  // namespace
}  // namespace stream
}  // namespace loom
