#include "test_util.h"

#include <gtest/gtest.h>

#include "eval/experiment.h"
#include "partition/partition_metrics.h"
#include "stream/stream_order.h"

namespace loom {
namespace test_util {

engine::EngineOptions OptionsFor(const datasets::Dataset& ds, uint32_t k,
                                 uint64_t window_size) {
  engine::EngineOptions options;
  options.k = k;
  options.expected_vertices = ds.NumVertices();
  options.expected_edges = ds.NumEdges();
  options.window_size = window_size;
  return options;
}

engine::BuildContext ContextFor(const datasets::Dataset& ds) {
  return engine::BuildContext{&ds.workload, ds.registry.size()};
}

std::unique_ptr<partition::Partitioner> MakeBackend(
    std::string_view spec, const engine::EngineOptions& options,
    const datasets::Dataset& ds) {
  std::string error;
  auto p = engine::BuildPartitioner(spec, options, ContextFor(ds), &error);
  if (p == nullptr) {
    ADD_FAILURE() << "building backend '" << spec << "' failed: " << error;
  }
  return p;
}

void RunAll(partition::Partitioner* p, const stream::EdgeStream& es) {
  for (const stream::StreamEdge& e : es) p->Ingest(e);
  p->Finalize();
}

std::ostream& operator<<(std::ostream& os, const Quality& q) {
  return os << "{hash=" << std::hex << q.assignment_hash << std::dec
            << ", edge_cut=" << q.edge_cut << ", imbalance=" << q.imbalance
            << "}";
}

Quality QualityOf(const partition::Partitioner& p,
                  const datasets::Dataset& ds) {
  Quality q;
  q.assignment_hash = eval::HashAssignment(p.partitioning(), ds.NumVertices());
  q.edge_cut = partition::EdgeCut(ds.graph, p.partitioning());
  q.imbalance = partition::Imbalance(p.partitioning());
  return q;
}

void ForEachSimdLevel(const std::function<void(util::simd::Level)>& fn) {
  const util::simd::Level saved = util::simd::ActiveLevel();
  for (util::simd::Level level : util::simd::SupportedLevels()) {
    util::simd::SetActiveLevel(level);
    fn(level);
  }
  util::simd::SetActiveLevel(saved);
}

Quality DriveSpec(std::string_view spec, const datasets::Dataset& ds,
                  const engine::EngineOptions& options,
                  stream::StreamOrder order, uint64_t stream_seed,
                  size_t batch_size) {
  auto p = MakeBackend(spec, options, ds);
  if (p == nullptr) return Quality{};
  auto source = engine::MakeEdgeSource(ds, order, stream_seed);
  engine::DriveConfig config;
  config.batch_size = batch_size;
  engine::Drive(p.get(), source.get(), nullptr, config);
  return QualityOf(*p, ds);
}

}  // namespace test_util
}  // namespace loom
