// Cross-validation of the streaming matcher (Alg. 2) against brute force.
//
// The paper proves signatures admit no false negatives; the matcher built on
// them must therefore find EVERY motif-matching sub-graph whose edges are
// simultaneously inside the window. We verify that exhaustively: stream a
// random labelled graph with an unbounded window, enumerate every connected
// edge subset of the final window (brute force), test each for signature
// equality with a motif, and require the matchList to contain it.
//
// Two alphabets run the same leg: the Fig. 1 workload (4 labels, the
// original coverage) and a 40-label schema whose motifs live at the high
// end of the label space — the admission memo and any label-indexed
// residue staging are sized from num_labels at construction, and this leg
// is what catches a table sized for a small alphabet being probed with
// wide label ids (the memoised admission path never saw ids > 3 before).

#include <gtest/gtest.h>

#include <bit>
#include <functional>
#include <map>
#include <set>

#include "datasets/workloads.h"
#include "motif/motif_matcher.h"
#include "tpstry/subgraph_enumerator.h"
#include "util/rng.h"

namespace loom {
namespace motif {
namespace {

/// Streams a random graph labelled from `label_pool` through a matcher
/// built on (registry, workload, threshold) with an unbounded window, then
/// brute-force checks that every window-resident motif match was found.
void RunExhaustiveLeg(uint64_t seed, const graph::LabelRegistry& registry,
                      const query::Workload& workload, double threshold,
                      const std::vector<graph::LabelId>& label_pool) {
  util::Rng rng(seed);

  signature::LabelValues values(registry.size(), 251, 0xC0FFEE);
  signature::SignatureCalculator calc(&values);
  tpstry::Tpstry trie(&calc, threshold);
  for (const auto& q : workload.queries()) {
    trie.AddQuery(q.pattern, q.frequency);
  }
  MotifMatcher matcher(&trie, &calc);

  // Random small labelled graph, streamed in random order.
  const size_t n = 6 + rng.Uniform(4);
  std::vector<graph::LabelId> labels(n);
  for (auto& l : labels) l = label_pool[rng.Uniform(label_pool.size())];
  std::vector<std::pair<graph::VertexId, graph::VertexId>> edges;
  for (graph::VertexId v = 1; v < n; ++v) {
    edges.emplace_back(v, static_cast<graph::VertexId>(rng.Uniform(v)));
  }
  for (size_t i = 0; i < n / 2; ++i) {
    graph::VertexId a = static_cast<graph::VertexId>(rng.Uniform(n));
    graph::VertexId b = static_cast<graph::VertexId>(rng.Uniform(n));
    if (a == b) continue;
    bool dup = false;
    for (auto [x, y] : edges) {
      if ((x == a && y == b) || (x == b && y == a)) dup = true;
    }
    if (!dup) edges.emplace_back(a, b);
  }

  // Stream with an unbounded window.
  stream::SlidingWindow window(1000);
  MatchList ml;
  std::vector<stream::StreamEdge> admitted;
  graph::EdgeId next_id = 0;
  for (auto [u, v] : edges) {
    stream::StreamEdge e;
    e.id = next_id++;
    e.u = u;
    e.v = v;
    e.label_u = labels[u];
    e.label_v = labels[v];
    if (matcher.SingleEdgeMotif(e) == nullptr) continue;
    window.Push(e);
    matcher.OnEdgeAdded(e, window, &ml);
    admitted.push_back(e);
  }
  if (admitted.empty()) return;  // nothing admissible under this seed
  ASSERT_LE(admitted.size(), 25u) << "keep brute force tractable";

  // Brute force: every connected subset of admitted edges whose signature
  // equals some motif's signature must be in the matchList.
  const size_t m = admitted.size();
  const uint32_t max_motif_edges = trie.MaxMotifEdges();
  size_t expected = 0, found = 0;
  for (uint64_t mask = 1; mask < (uint64_t{1} << m); ++mask) {
    const int bits = std::popcount(mask);
    if (bits < 1 || static_cast<uint32_t>(bits) > max_motif_edges) continue;
    std::vector<stream::StreamEdge> subset;
    for (size_t i = 0; i < m; ++i) {
      if (mask & (uint64_t{1} << i)) subset.push_back(admitted[i]);
    }
    // Connectivity check via union-find on vertex ids.
    std::set<graph::VertexId> verts;
    for (const auto& e : subset) {
      verts.insert(e.u);
      verts.insert(e.v);
    }
    std::map<graph::VertexId, graph::VertexId> parent;
    for (graph::VertexId v : verts) parent[v] = v;
    std::function<graph::VertexId(graph::VertexId)> find =
        [&](graph::VertexId x) {
          while (parent[x] != x) x = parent[x] = parent[parent[x]];
          return x;
        };
    for (const auto& e : subset) parent[find(e.u)] = find(e.v);
    bool connected = true;
    for (graph::VertexId v : verts) {
      if (find(v) != find(*verts.begin())) connected = false;
    }
    if (!connected) continue;

    signature::Signature sig = calc.ComputeSignature(subset);
    const tpstry::TpsNode* node = trie.FindBySignature(sig);
    if (node == nullptr || !trie.IsMotif(node->id)) continue;
    ++expected;

    // The matchList must contain exactly this edge set with this motif.
    bool present = false;
    for (MatchHandle h : ml.LiveWithEdge(subset[0].id)) {
      const Match& match = ml.match(h);
      if (match.node_id != node->id) continue;
      if (match.edges.size() != subset.size()) continue;
      bool same = true;
      for (const auto& e : subset) {
        if (!match.ContainsEdge(e.id)) same = false;
      }
      if (same) present = true;
    }
    if (present) ++found;
    EXPECT_TRUE(present) << "seed " << seed << ": motif match of "
                         << subset.size() << " edges missed by Alg. 2";
  }
  EXPECT_EQ(found, expected);
}

class ExhaustiveMatchTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ExhaustiveMatchTest, MatcherFindsEveryWindowResidentMotifMatch) {
  // Fig. 1 workload at a low threshold so multi-edge motifs (up to the
  // 4-edge square) are in play.
  graph::LabelRegistry registry;
  query::Workload workload = datasets::Figure1Workload(&registry);
  std::vector<graph::LabelId> pool;
  for (size_t l = 0; l < registry.size(); ++l) {
    pool.push_back(static_cast<graph::LabelId>(l));
  }
  RunExhaustiveLeg(GetParam(), registry, workload, 0.05, pool);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExhaustiveMatchTest,
                         ::testing::Range<uint64_t>(0, 40));

class WideAlphabetExhaustiveTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(WideAlphabetExhaustiveTest, MemoisedAdmissionSurvivesWideLabelIds) {
  // 40 interned labels; the motifs use only the top of the id range, so
  // every admission probe indexes far beyond anything the Fig. 1 leg
  // reaches, and bypassed labels exercise the negative memo rows.
  graph::LabelRegistry registry;
  for (int i = 0; i < 40; ++i) {
    std::string name = "L";  // two-step append dodges a libstdc++ -Wrestrict
    name += std::to_string(i);
    registry.Intern(name);
  }
  auto L = [](int i) { return static_cast<graph::LabelId>(i); };
  query::Workload workload;
  workload.Add("hi-path2", graph::PatternGraph::Path({L(30), L(35)}), 0.30);
  workload.Add("hi-path3", graph::PatternGraph::Path({L(35), L(38), L(39)}),
               0.25);
  workload.Add("hi-star", graph::PatternGraph::Star(L(37), {L(31), L(33)}),
               0.25);
  workload.Add("hi-cycle", graph::PatternGraph::Cycle({L(30), L(36), L(39)}),
               0.20);
  // Stream labels: the motif labels plus low-id labels that can never match
  // (admission must reject them through the same memo).
  std::vector<graph::LabelId> pool;
  for (int i : {30, 31, 33, 35, 36, 37, 38, 39, 0, 1, 2, 7}) {
    pool.push_back(L(i));
  }
  RunExhaustiveLeg(0xA1FA00 + GetParam(), registry, workload, 0.02, pool);
}

INSTANTIATE_TEST_SUITE_P(Seeds, WideAlphabetExhaustiveTest,
                         ::testing::Range<uint64_t>(0, 25));

}  // namespace
}  // namespace motif
}  // namespace loom
