// loom_partition — partition a labelled graph file for a workload file.
//
// Usage:
//   loom_partition --graph G.lg --workload Q.lw [--system loom] [--k 8]
//                  [--order bfs|dfs|random] [--window 10000] [--threshold 0.4]
//                  [--shards N] [--opt key=value]... [--seed N]
//                  [--out assignment.tsv] [--evaluate]
//
// Backends are resolved through engine::PartitionerRegistry, so --system
// accepts any registered name — including inline option specs like
//   --system "loom:window_size=4000,alpha=0.5"
// or the shard-per-thread backend (bit-identical output to loom):
//   --system loom-sharded --shards 8
// and --opt exposes every EngineOptions key (see --help-opts). Reads the
// graph (graph/graph_io.h format) and workload (query/workload_io.h
// format), streams the graph through the chosen partitioner via the
// engine's pull-based EdgeSource and writes one "<vertex>\t<partition>"
// line per vertex. With --evaluate it also executes the workload over the
// result and prints ipt / edge-cut / imbalance.

#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "engine/engine.h"
#include "graph/graph_io.h"
#include "partition/partition_metrics.h"
#include "query/workload_io.h"
#include "query/workload_runner.h"
#include "util/table_writer.h"

namespace {

struct Args {
  std::string graph_path;
  std::string workload_path;
  std::string out_path;
  std::string system = "loom";
  std::string order = "bfs";
  std::vector<std::string> opts;  // raw key=value overrides
  uint32_t k = 8;
  size_t window = 10000;
  double threshold = 0.4;
  uint32_t shards = 0;  // 0 = leave the EngineOptions default
  uint64_t seed = 0x10c5;
  bool evaluate = false;
};

void Usage() {
  std::cerr << "usage: loom_partition --graph G.lg --workload Q.lw\n"
               "         [--system NAME | NAME:key=value,...] [--k N]\n"
               "         [--order bfs|dfs|random] [--window N]\n"
               "         [--threshold F] [--shards N] [--opt key=value]...\n"
               "         [--seed N] [--out FILE] [--evaluate] [--help-opts]\n"
               "backends: ";
  bool first = true;
  for (const std::string& name :
       loom::engine::PartitionerRegistry::Global().Names()) {
    std::cerr << (first ? "" : ", ") << name;
    first = false;
  }
  std::cerr << "\n";
}

void UsageOpts() {
  loom::engine::EngineOptions defaults;
  std::cerr << "EngineOptions keys (current defaults):\n";
  for (const auto& [key, value] : defaults.ToFlat()) {
    std::cerr << "  " << key << "=" << value << "\n";
  }
}

bool Parse(int argc, char** argv, Args* args) {
  for (int i = 1; i < argc; ++i) {
    auto need_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::cerr << flag << " requires a value\n";
        return nullptr;
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--graph") == 0) {
      const char* v = need_value("--graph");
      if (!v) return false;
      args->graph_path = v;
    } else if (std::strcmp(argv[i], "--workload") == 0) {
      const char* v = need_value("--workload");
      if (!v) return false;
      args->workload_path = v;
    } else if (std::strcmp(argv[i], "--out") == 0) {
      const char* v = need_value("--out");
      if (!v) return false;
      args->out_path = v;
    } else if (std::strcmp(argv[i], "--system") == 0) {
      const char* v = need_value("--system");
      if (!v) return false;
      args->system = v;
    } else if (std::strcmp(argv[i], "--order") == 0) {
      const char* v = need_value("--order");
      if (!v) return false;
      args->order = v;
    } else if (std::strcmp(argv[i], "--opt") == 0) {
      const char* v = need_value("--opt");
      if (!v) return false;
      args->opts.emplace_back(v);
    } else if (std::strcmp(argv[i], "--k") == 0) {
      const char* v = need_value("--k");
      if (!v) return false;
      args->k = static_cast<uint32_t>(std::stoul(v));
    } else if (std::strcmp(argv[i], "--window") == 0) {
      const char* v = need_value("--window");
      if (!v) return false;
      args->window = std::stoul(v);
    } else if (std::strcmp(argv[i], "--threshold") == 0) {
      const char* v = need_value("--threshold");
      if (!v) return false;
      args->threshold = std::stod(v);
    } else if (std::strcmp(argv[i], "--shards") == 0) {
      const char* v = need_value("--shards");
      if (!v) return false;
      args->shards = static_cast<uint32_t>(std::stoul(v));
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      const char* v = need_value("--seed");
      if (!v) return false;
      args->seed = std::stoull(v);
    } else if (std::strcmp(argv[i], "--evaluate") == 0) {
      args->evaluate = true;
    } else if (std::strcmp(argv[i], "--help-opts") == 0) {
      UsageOpts();
      std::exit(0);
    } else if (std::strcmp(argv[i], "--help") == 0) {
      Usage();
      std::exit(0);
    } else {
      std::cerr << "unknown flag: " << argv[i] << "\n";
      return false;
    }
  }
  if (args->graph_path.empty() || args->workload_path.empty()) {
    std::cerr << "--graph and --workload are required\n";
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace loom;
  Args args;
  if (!Parse(argc, argv, &args)) {
    Usage();
    return 2;
  }

  try {
    datasets::Dataset ds;
    ds.meta.name = args.graph_path;
    ds.graph = graph::ReadGraphFile(args.graph_path, &ds.registry);
    ds.workload = query::ReadWorkloadFile(args.workload_path, &ds.registry);
    std::cerr << "graph: " << ds.NumVertices() << " vertices, "
              << ds.NumEdges() << " edges, " << ds.NumLabels()
              << " labels; workload: " << ds.workload.size() << " queries\n";

    stream::StreamOrder order;
    if (args.order == "bfs") order = stream::StreamOrder::kBreadthFirst;
    else if (args.order == "dfs") order = stream::StreamOrder::kDepthFirst;
    else if (args.order == "random") order = stream::StreamOrder::kRandom;
    else {
      std::cerr << "unknown order: " << args.order << "\n";
      return 2;
    }

    // Dedicated flags are sugar over EngineOptions keys; --opt overrides
    // (and the --system spec's inline overrides) win in that order.
    engine::EngineOptions options;
    options.k = args.k;
    options.expected_vertices = ds.NumVertices();
    options.expected_edges = ds.NumEdges();
    options.window_size = args.window;
    options.support_threshold = args.threshold;
    if (args.shards > 0) options.shards = args.shards;
    std::string error;
    if (!options.ApplyOverrides(args.opts, &error)) {
      std::cerr << "error: " << error << "\n";
      return 2;
    }

    engine::BuildContext context{&ds.workload, ds.registry.size()};
    auto partitioner =
        engine::BuildPartitioner(args.system, options, context, &error);
    if (partitioner == nullptr) {
      std::cerr << "error: " << error << "\n";
      return 2;
    }

    auto source = engine::MakeEdgeSource(ds, order, args.seed);
    const engine::DriveResult driven =
        engine::Drive(partitioner.get(), source.get());
    std::cerr << "partitioned " << driven.edges << " edges in "
              << util::TableWriter::Fmt(driven.ms, 0) << " ms ("
              << partitioner->name()
              << ", k=" << partitioner->partitioning().k() << ")\n";

    const partition::Partitioning& p = partitioner->partitioning();
    std::ostream* out = &std::cout;
    std::ofstream file;
    if (!args.out_path.empty()) {
      file.open(args.out_path);
      if (!file) {
        std::cerr << "cannot write " << args.out_path << "\n";
        return 1;
      }
      out = &file;
    }
    for (graph::VertexId v = 0; v < ds.NumVertices(); ++v) {
      *out << v << "\t" << p.PartitionOf(v) << "\n";
    }

    if (args.evaluate) {
      query::ExecutorConfig executor{.max_seeds = 4000,
                                     .max_matches_per_seed = 256};
      query::WorkloadResult wr =
          query::RunWorkload(ds.graph, p, ds.workload, executor);
      std::cerr << "weighted ipt: " << wr.weighted_ipt << " over "
                << wr.weighted_traversals << " weighted traversals (ratio "
                << util::TableWriter::Pct(wr.IptRatio()) << ")\n"
                << "edge cut: " << partition::EdgeCut(ds.graph, p) << " / "
                << ds.NumEdges() << ", imbalance "
                << util::TableWriter::Pct(partition::Imbalance(p)) << "\n";
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
