#include "core/equal_opportunism.h"

#include <algorithm>
#include <cmath>

namespace loom {
namespace core {

EqualOpportunism::EqualOpportunism(const tpstry::Tpstry* trie,
                                   const graph::DynamicGraph* neighborhood,
                                   EqualOpportunismConfig config)
    : trie_(trie), neighborhood_(neighborhood), config_(config) {}

double EqualOpportunism::Ration(graph::PartitionId si,
                                const partition::Partitioning& p) const {
  if (config_.disable_rationing) return 1.0;
  const double size = static_cast<double>(p.Size(si));
  // Smin = 0 while partitions are still empty; clamp to 1 so the ratio stays
  // meaningful during cold start.
  const double smin = static_cast<double>(std::max<size_t>(p.MinSize(), 1));
  // The b cutoff "emulates Fennel" (Sec. 4), whose ν bound is relative to
  // the *average* partition size — a Smin-relative bound would mute almost
  // every partition whenever one partition briefly lags. (The paper's own
  // worked example exceeds b·Smin yet still bids, so the strict reading of
  // Eq. 2's piecewise α is inconsistent with its use; see DESIGN.md.)
  const double avg = std::max(
      static_cast<double>(p.NumAssigned()) / static_cast<double>(p.k()), 1.0);
  if (size > config_.balance_b * avg) return 0.0;  // α_eff = 0
  if (size <= smin) return 1.0;                    // α_eff = 1, ratio >= 1
  return (smin / size) * config_.alpha;            // α_eff = α
}

double EqualOpportunism::Bid(graph::PartitionId si, const motif::Match& match,
                             const partition::Partitioning& p) const {
  // N(Si, Ek): match vertices already resident in Si...
  double overlap = 0.0;
  for (graph::VertexId v : match.vertices) {
    if (p.PartitionOf(v) == si) overlap += 1.0;
  }
  // ...generalised (as the paper notes of LDG's N) with a discounted count
  // of the match vertices' already-assigned neighbours in Si, so a cluster
  // is also drawn toward its satellite structure (recordings, venues, ...).
  if (neighborhood_ != nullptr && config_.neighbor_bid_weight > 0.0) {
    uint32_t nbrs = 0;
    for (graph::VertexId v : match.vertices) {
      for (graph::VertexId w : neighborhood_->Neighbors(v)) {
        if (p.PartitionOf(w) == si) ++nbrs;
      }
    }
    overlap += config_.neighbor_bid_weight * static_cast<double>(nbrs);
  }
  if (overlap <= 0.0) return 0.0;
  const double residual =
      1.0 - static_cast<double>(p.Size(si)) / static_cast<double>(p.Capacity());
  const double support = trie_->NormalizedSupport(match.node_id);
  return overlap * residual * support;
}

AllocationDecision EqualOpportunism::Decide(std::vector<motif::MatchPtr> me,
                                            const partition::Partitioning& p,
                                            graph::PartitionId fallback) const {
  AllocationDecision decision;
  if (me.empty()) {
    decision.partition = fallback;
    return decision;
  }

  // Support-descending order; smaller matches first on ties (the paper
  // prioritises "smaller, higher support" matches), then content key so the
  // order is fully deterministic.
  std::sort(me.begin(), me.end(),
            [&](const motif::MatchPtr& a, const motif::MatchPtr& b) {
              const double sa = trie_->NormalizedSupport(a->node_id);
              const double sb = trie_->NormalizedSupport(b->node_id);
              if (sa != sb) return sa > sb;
              if (a->edges.size() != b->edges.size()) {
                return a->edges.size() < b->edges.size();
              }
              return a->Key() < b->Key();
            });

  graph::PartitionId best = graph::kNoPartition;
  double best_total = 0.0;
  size_t best_count = 0;
  for (graph::PartitionId si = 0; si < p.k(); ++si) {
    if (p.AtCapacity(si)) continue;
    const double l = Ration(si, p);
    if (l <= 0.0) continue;
    const size_t count = static_cast<size_t>(
        std::min<double>(std::ceil(l * static_cast<double>(me.size())),
                         static_cast<double>(me.size())));
    double total = 0.0;
    for (size_t i = 0; i < count; ++i) total += Bid(si, *me[i], p);
    total *= l;  // Eq. 3 leading l(Si) -- see sweep note in EXPERIMENTS.md
    if (total > best_total ||
        (total == best_total && total > 0.0 && best != graph::kNoPartition &&
         p.Size(si) < p.Size(best))) {
      best = si;
      best_total = total;
      best_count = count;
    }
  }

  if (best == graph::kNoPartition || best_total <= 0.0) {
    // Cold start / no overlap anywhere: seed the cluster where the caller's
    // neighbourhood heuristic points (falling back to least-loaded if that
    // partition is full). The whole cluster is seeded together — rationing
    // exists to stop *bid-winning* partitions hoarding matches, not to break
    // up a cluster that nobody bid on (doing so would orphan the evictee's
    // match partners and void their co-location).
    best = p.AtCapacity(fallback) ? p.LeastLoaded() : fallback;
    best_count = me.size();
  }

  decision.partition = best;
  decision.matches.assign(me.begin(), me.begin() + static_cast<ptrdiff_t>(best_count));
  return decision;
}

}  // namespace core
}  // namespace loom
