// serve::Client — a line-protocol connection to a running loom_serve.
//
// Two usage shapes:
//   * Roundtrip(): one command, one reply — lock-step, simplest correct.
//   * SendLine()/ReadReply(): split halves for windowed pipelining. The
//     server answers strictly in order, so a driver can keep N commands in
//     flight and match replies positionally — tools/loom_ctl ingest-file
//     uses this to cover the socket round-trip latency.
//
// Blocking I/O; not thread-safe (one Client per thread).

#ifndef LOOM_SERVE_CLIENT_H_
#define LOOM_SERVE_CLIENT_H_

#include <string>
#include <string_view>

#include "serve/protocol.h"

namespace loom {
namespace serve {

class Client {
 public:
  Client() = default;
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Connects to the server's unix-domain socket. False + `*error` on
  /// failure (server not up, path too long, ...).
  bool Connect(const std::string& socket_path, std::string* error);

  bool connected() const { return fd_ >= 0; }
  void Close();

  /// Writes one command line (newline appended here — pass the bare line).
  bool SendLine(std::string_view line, std::string* error);

  /// Blocks for the next reply line, in send order.
  bool ReadReply(std::string* reply, std::string* error);

  /// SendLine + ReadReply.
  bool Roundtrip(std::string_view line, std::string* reply,
                 std::string* error);

 private:
  int fd_ = -1;
  LineFramer framer_;
};

}  // namespace serve
}  // namespace loom

#endif  // LOOM_SERVE_CLIENT_H_
