#include "stream/sliding_window.h"

#include <cassert>

#include "util/bits.h"

namespace loom {
namespace stream {

using util::NextPow2;

SlidingWindow::SlidingWindow(size_t capacity) : capacity_(capacity) {
  // Pre-size for the configured capacity (bounded): bypass-heavy streams
  // leave id gaps that make the live span a multiple of the live count, and
  // every Grow re-places all live edges — start at the window size rather
  // than paying several early doublings per run.
  const size_t slots = NextPow2(std::min<size_t>(capacity + 1, size_t{1} << 20));
  slots_.resize(slots);
  live_.resize((slots + 63) / 64, 0);
  mask_ = slots - 1;
  // Growth cap: ~16x the capacity's id span (see class comment); beyond it
  // lingering edges spill into overflow_ instead of inflating the ring.
  max_slots_ = NextPow2(std::min<size_t>(
      std::max<size_t>((capacity + 1) * 16, 1024), size_t{1} << 22));
}

void SlidingWindow::Grow(graph::EdgeId upto) {
  // Factor 4: growth re-places every live edge and zero-fills the new
  // arrays, so fewer, larger steps beat doubling on bypass-heavy streams
  // whose id span is a large multiple of the window size.
  const size_t need = static_cast<size_t>(upto - head_) + 1;
  size_t new_size = NextPow2(std::max(need, slots_.size() * 4));
  if (new_size > max_slots_) {
    new_size = max_slots_;
    if (need > max_slots_) {
      // The id span itself exceeds the cap (not just the x4 growth step):
      // spill the lingering old live edges so the ring keeps covering the
      // hot tail [upto + 1 - max_slots_, upto] at bounded size. need >
      // max_slots_ guarantees upto + 1 > max_slots_, so no underflow.
      const graph::EdgeId new_head =
          upto + 1 - static_cast<graph::EdgeId>(max_slots_);
      const graph::EdgeId spill_end = std::min(tail_, new_head);
      for (graph::EdgeId id = head_; id < spill_end; ++id) {
        const size_t slot = SlotOf(id);
        if (!LiveBit(slot)) continue;
        overflow_.emplace(id, slots_[slot]);
        ClearLiveBit(slot);
      }
      head_ = std::max(head_, new_head);
      if (tail_ < head_) tail_ = head_;
    }
  }
  if (new_size <= slots_.size()) return;  // span now fits after the spill
  std::vector<StreamEdge> new_slots(new_size);
  std::vector<uint64_t> new_live((new_size + 63) / 64, 0);
  const size_t new_mask = new_size - 1;
  for (graph::EdgeId id = head_; id < tail_; ++id) {
    const size_t old_slot = SlotOf(id);
    if (!LiveBit(old_slot)) continue;
    const size_t new_slot = id & new_mask;
    new_slots[new_slot] = slots_[old_slot];
    new_live[new_slot >> 6] |= uint64_t{1} << (new_slot & 63);
  }
  slots_ = std::move(new_slots);
  live_ = std::move(new_live);
  mask_ = new_mask;
}

void SlidingWindow::Push(const StreamEdge& e) {
  assert(e.id != graph::kInvalidEdge);
  assert((empty() && tail_ == 0 && head_ == 0) || e.id >= tail_);
  if (size_ == 0) {
    // Reset the span so tombstone gaps from a drained window don't count.
    head_ = tail_ = e.id;
  }
  if (static_cast<size_t>(e.id - head_) >= slots_.size()) Grow(e.id);
  const size_t slot = SlotOf(e.id);
  assert(!LiveBit(slot));
  slots_[slot] = e;
  SetLiveBit(slot);
  tail_ = e.id + 1;
  ++size_;
}

void SlidingWindow::AdvanceHead() const {
  assert(size_ > overflow_.size());
  while (!LiveBit(SlotOf(head_))) ++head_;
}

std::optional<StreamEdge> SlidingWindow::PopOldest() {
  if (size_ == 0) return std::nullopt;
  if (!overflow_.empty()) {  // overflow ids predate every ring id
    auto it = overflow_.begin();
    StreamEdge e = it->second;
    overflow_.erase(it);
    --size_;
    return e;
  }
  AdvanceHead();
  const size_t slot = SlotOf(head_);
  StreamEdge e = slots_[slot];
  ClearLiveBit(slot);
  ++head_;
  --size_;
  return e;
}

const StreamEdge* SlidingWindow::PeekOldest() const {
  if (size_ == 0) return nullptr;
  if (!overflow_.empty()) return &overflow_.begin()->second;
  AdvanceHead();
  return &slots_[SlotOf(head_)];
}

bool SlidingWindow::Remove(graph::EdgeId id) {
  if (InSpan(id)) {
    if (!LiveBit(SlotOf(id))) return false;
    ClearLiveBit(SlotOf(id));
    --size_;
    return true;
  }
  if (!overflow_.empty() && overflow_.erase(id) > 0) {
    --size_;
    return true;
  }
  return false;
}

}  // namespace stream
}  // namespace loom
