#include "motif/motif_matcher.h"

#include <algorithm>
#include <cassert>

namespace loom {
namespace motif {

namespace {

// Sorted-insert preserving uniqueness.
void InsertSorted(std::vector<graph::EdgeId>* v, graph::EdgeId x) {
  auto it = std::lower_bound(v->begin(), v->end(), x);
  if (it == v->end() || *it != x) v->insert(it, x);
}

void InsertSortedVertex(std::vector<graph::VertexId>* v, graph::VertexId x) {
  auto it = std::lower_bound(v->begin(), v->end(), x);
  if (it == v->end() || *it != x) v->insert(it, x);
}

// Vertex set spanned by a window edge set.
std::vector<graph::VertexId> VerticesOf(const std::vector<graph::EdgeId>& edges,
                                        const stream::SlidingWindow& window) {
  std::vector<graph::VertexId> out;
  for (graph::EdgeId eid : edges) {
    const stream::StreamEdge* se = window.Find(eid);
    if (se == nullptr) continue;
    InsertSortedVertex(&out, se->u);
    InsertSortedVertex(&out, se->v);
  }
  return out;
}

}  // namespace

MotifMatcher::MotifMatcher(const tpstry::Tpstry* trie,
                           const signature::SignatureCalculator* calc,
                           MatcherConfig config)
    : trie_(trie), calc_(calc), config_(config) {}

const tpstry::TpsNode* MotifMatcher::SingleEdgeMotif(
    const stream::StreamEdge& e) const {
  return trie_->FindSingleEdgeMotif(
      calc_->SingleEdgeSignature(e.label_u, e.label_v));
}

uint32_t MotifMatcher::DegreeWithin(const std::vector<graph::EdgeId>& edges,
                                    graph::VertexId v,
                                    const stream::SlidingWindow& window) const {
  uint32_t d = 0;
  for (graph::EdgeId eid : edges) {
    const stream::StreamEdge* se = window.Find(eid);
    if (se != nullptr && se->Incident(v)) ++d;
  }
  return d;
}

MatchPtr MotifMatcher::TryExtend(const MatchPtr& m, const stream::StreamEdge& e,
                                 const stream::SlidingWindow& window,
                                 MatchList* ml) {
  if (m->ContainsEdge(e.id)) return nullptr;
  // Degrees of the new edge's endpoints inside m; +1 for the addition.
  const uint32_t deg_u = DegreeWithin(m->edges, e.u, window);
  const uint32_t deg_v = DegreeWithin(m->edges, e.v, window);
  const signature::FactorDelta delta = calc_->FactorsForEdgeAddition(
      e.label_u, deg_u + 1, e.label_v, deg_v + 1);
  const tpstry::TpsNode* c = trie_->FindMotifChild(m->node_id, delta);
  if (c == nullptr) return nullptr;

  auto grown = std::make_shared<Match>();
  grown->edges = m->edges;
  InsertSorted(&grown->edges, e.id);
  grown->vertices = m->vertices;
  InsertSortedVertex(&grown->vertices, e.u);
  InsertSortedVertex(&grown->vertices, e.v);
  grown->node_id = c->id;
  if (!ml->Add(grown)) return nullptr;  // duplicate
  ++stats_.extension_matches;
  return grown;
}

bool MotifMatcher::JoinRecurse(std::vector<graph::EdgeId>& edges,
                               uint32_t node_id,
                               std::vector<graph::EdgeId>& remaining,
                               const stream::SlidingWindow& window,
                               MatchList* ml) {
  if (remaining.empty()) {
    auto joined = std::make_shared<Match>();
    joined->edges = edges;
    joined->vertices = VerticesOf(edges, window);
    joined->node_id = node_id;
    if (ml->Add(joined)) ++stats_.join_matches;
    // Either way the join succeeded structurally.
    return true;
  }
  for (size_t i = 0; i < remaining.size(); ++i) {
    const graph::EdgeId eid = remaining[i];
    const stream::StreamEdge* se = window.Find(eid);
    if (se == nullptr) return false;  // constituent edge left the window
    const uint32_t deg_u = DegreeWithin(edges, se->u, window);
    const uint32_t deg_v = DegreeWithin(edges, se->v, window);
    if (deg_u == 0 && deg_v == 0) continue;  // not incident yet; defer
    const signature::FactorDelta delta = calc_->FactorsForEdgeAddition(
        se->label_u, deg_u + 1, se->label_v, deg_v + 1);
    const tpstry::TpsNode* c = trie_->FindMotifChild(node_id, delta);
    if (c == nullptr) continue;
    // Tentatively absorb eid, recurse, undo on failure.
    InsertSorted(&edges, eid);
    remaining.erase(remaining.begin() + static_cast<ptrdiff_t>(i));
    if (JoinRecurse(edges, c->id, remaining, window, ml)) return true;
    remaining.insert(remaining.begin() + static_cast<ptrdiff_t>(i), eid);
    edges.erase(std::lower_bound(edges.begin(), edges.end(), eid));
  }
  return false;
}

void MotifMatcher::TryJoin(const MatchPtr& base, const MatchPtr& smaller,
                           const stream::SlidingWindow& window, MatchList* ml) {
  std::vector<graph::EdgeId> remaining;
  for (graph::EdgeId eid : smaller->edges) {
    if (!base->ContainsEdge(eid)) remaining.push_back(eid);
  }
  if (remaining.empty()) return;  // smaller ⊆ base: nothing new
  ++stats_.join_attempts;
  std::vector<graph::EdgeId> edges = base->edges;
  JoinRecurse(edges, base->node_id, remaining, window, ml);
}

void MotifMatcher::OnEdgeAdded(const stream::StreamEdge& e,
                               const stream::SlidingWindow& window,
                               MatchList* ml) {
  const tpstry::TpsNode* single = SingleEdgeMotif(e);
  assert(single != nullptr &&
         "OnEdgeAdded requires an edge admitted by SingleEdgeMotif");
  assert(window.Contains(e.id) && "push the edge into the window first");
  ++stats_.edges_admitted;

  // Step 0 — the single-edge match (Sec. 3: "we treat e as a sub-graph of a
  // single edge, then add it to the matchList entries for both v1 and v2").
  {
    auto m0 = std::make_shared<Match>();
    m0->edges = {e.id};
    m0->vertices = {e.u, e.v};
    std::sort(m0->vertices.begin(), m0->vertices.end());
    m0->node_id = single->id;
    if (ml->Add(m0)) ++stats_.single_edge_matches;
  }

  // Step 1 — extend existing matches connected to e (Alg. 2 lines 4-8).
  {
    std::vector<MatchPtr> snapshot = ml->LiveAt(e.u);
    for (MatchPtr& m : ml->LiveAt(e.v)) {
      bool dup = false;
      for (const MatchPtr& s : snapshot) {
        if (s.get() == m.get()) {
          dup = true;
          break;
        }
      }
      if (!dup) snapshot.push_back(std::move(m));
    }
    if (snapshot.size() > config_.max_matches_per_vertex * 2) {
      snapshot.resize(config_.max_matches_per_vertex * 2);
    }
    for (const MatchPtr& m : snapshot) TryExtend(m, e, window, ml);
  }

  // Step 2 — pairwise joins across the two endpoints (Alg. 2 lines 9-18),
  // over the refreshed lists (they now include e's own new matches).
  {
    std::vector<MatchPtr> ms1 = ml->LiveAt(e.u);
    std::vector<MatchPtr> ms2 = ml->LiveAt(e.v);
    if (ms1.size() > config_.max_matches_per_vertex) {
      ms1.resize(config_.max_matches_per_vertex);
    }
    if (ms2.size() > config_.max_matches_per_vertex) {
      ms2.resize(config_.max_matches_per_vertex);
    }
    for (const MatchPtr& m1 : ms1) {
      for (const MatchPtr& m2 : ms2) {
        if (m1.get() == m2.get()) continue;
        // Absorb the smaller match into the larger (Sec. 3).
        const MatchPtr& base = m1->edges.size() >= m2->edges.size() ? m1 : m2;
        const MatchPtr& small = m1->edges.size() >= m2->edges.size() ? m2 : m1;
        if (!base->alive || !small->alive) continue;
        TryJoin(base, small, window, ml);
      }
    }
  }
}

}  // namespace motif
}  // namespace loom
