#include "stream/sliding_window.h"

#include <algorithm>
#include <cassert>

namespace loom {
namespace stream {

SlidingWindow::SlidingWindow(size_t capacity) : capacity_(capacity) {
  // Pre-size for the configured capacity (bounded): bypass-heavy streams
  // leave id gaps that make the live span a multiple of the live count, and
  // every growth step re-places all live edges — start at the window size
  // rather than paying several early doublings per run.
  ring_.SetGrowthCap(util::RingGrowthCap(capacity + 1));
  ring_.Presize(std::min<size_t>(capacity + 1, size_t{1} << 20));
}

void SlidingWindow::SaveTo(io::CheckpointWriter* w) const {
  w->BeginSection("window");
  w->U64(capacity_);
  std::vector<StreamEdge> live;
  live.reserve(ring_.size());
  ForEach([&live](const StreamEdge& e) { live.push_back(e); });
  w->PodVec(live);
  w->EndSection();
}

void SlidingWindow::LoadFrom(io::CheckpointReader* r) {
  assert(ring_.empty());
  r->Open("window");
  const uint64_t capacity = r->U64();
  if (capacity != capacity_) {
    r->Fail("window capacity mismatch: checkpoint has t=" +
            std::to_string(capacity) + ", this run was configured with t=" +
            std::to_string(capacity_));
  }
  std::vector<StreamEdge> live;
  r->PodVec(&live);
  r->Close();
  for (const StreamEdge& e : live) Push(e);  // ForEach saved ascending ids
}

void SlidingWindow::Push(const StreamEdge& e) {
  assert(e.id != graph::kInvalidEdge);
  // Stream positions are unique and increasing (a drained window may
  // restart its span anywhere).
  assert(ring_.empty() || e.id >= ring_.tail());
  *ring_.Append(e.id) = e;
}

}  // namespace stream
}  // namespace loom
