// Linear Deterministic Greedy (Stanton & Kliot [30]), edge-stream variant.
//
// LDG places a vertex in the partition holding the most of its neighbours,
// discounted by how full that partition is:
//   argmax_Si  |N(v) ∩ Si| · (1 - |V(Si)|/C)
// with C the strict capacity n/k (hence the 1-3% imbalance the paper
// reports). In the edge-stream variant each arriving edge places its
// still-unassigned endpoints one at a time, each seeing the other through
// the edge itself. Loom reuses this heuristic for edges that can never
// match a motif (Sec. 4).

#ifndef LOOM_PARTITION_LDG_PARTITIONER_H_
#define LOOM_PARTITION_LDG_PARTITIONER_H_

#include "graph/dynamic_graph.h"
#include "partition/hub_tally.h"
#include "partition/partitioner.h"

namespace loom {
namespace partition {

/// Stateless scoring core, shared between the standalone LDG partitioner,
/// Loom's immediate-assignment path and the sharded backend's sequencer
/// (which passes a prefix-filtered NeighborView instead of a DynamicGraph).
///
/// When the caller maintains a HubTallyCache it passes it as `hub`: vertices
/// with a materialised counter row skip the adjacency walk entirely (the row
/// holds the same integers the walk would tally, so the choice is
/// bit-identical either way — pinned by the hub differential tests).
class LdgHeuristic {
 public:
  /// Picks the partition for a single vertex `v` given the streamed-so-far
  /// adjacency. Ties break toward the smaller partition, then the lower id;
  /// when every score is zero the least-loaded partition wins (keeps growth
  /// balanced on cold starts).
  static graph::PartitionId ChooseForVertex(graph::VertexId v,
                                            const graph::NeighborView& neighborhood,
                                            const Partitioning& partitioning,
                                            const HubTallyCache* hub = nullptr);

  /// Edge-level convenience used by Loom's immediate path: scores the union
  /// of both endpoints' neighbourhoods (the edge is placed as one unit).
  /// If `had_signal` is non-null it is set to false when every partition
  /// scored zero (the choice degenerated to least-loaded).
  static graph::PartitionId Choose(const stream::StreamEdge& e,
                                   const graph::NeighborView& neighborhood,
                                   const Partitioning& partitioning,
                                   bool* had_signal = nullptr,
                                   const HubTallyCache* hub = nullptr);
};

class LdgPartitioner : public Partitioner {
 public:
  explicit LdgPartitioner(const PartitionerConfig& config);

  void Ingest(const stream::StreamEdge& e) override;
  const Partitioning& partitioning() const override { return partitioning_; }
  std::string name() const override { return "ldg"; }

  /// Table + streamed-so-far adjacency: LDG's score reads the seen-graph,
  /// so a table-only snapshot would not resume bit-identically.
  bool SaveState(io::CheckpointWriter* w, std::string* error) const override;
  bool RestoreState(io::CheckpointReader* r, std::string* error) override;

 protected:
  Partitioning* MutablePartitioning() override { return &partitioning_; }

 private:
  void AssignVertex(graph::VertexId v, graph::PartitionId target);

  Partitioning partitioning_;
  graph::DynamicGraph seen_;  // streamed-so-far adjacency
  HubTallyCache hub_;         // derived from seen_; rebuilt on restore
};

}  // namespace partition
}  // namespace loom

#endif  // LOOM_PARTITION_LDG_PARTITIONER_H_
