// The loom_serve wire protocol is pure parse/format/frame code — these
// tests pin the grammar without a socket in sight: every command
// round-trips through FormatCommand/ParseCommand, every malformed shape
// produces an error (never a crash, never a half-parsed command), and the
// LineFramer reassembles lines out of adversarial chunkings.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "graph/types.h"
#include "serve/protocol.h"

namespace loom {
namespace serve {
namespace {

Command ParseOk(const std::string& line) {
  Command c;
  std::string error;
  EXPECT_TRUE(ParseCommand(line, &c, &error)) << line << ": " << error;
  return c;
}

std::string ParseErr(const std::string& line) {
  Command c;
  std::string error;
  EXPECT_FALSE(ParseCommand(line, &c, &error)) << line << " parsed";
  EXPECT_FALSE(error.empty()) << line << " failed without a message";
  return error;
}

TEST(ServeProtocolTest, IngestRoundTrips) {
  const Command c = ParseOk("INGEST 17 4242 3 0");
  EXPECT_EQ(c.type, CommandType::kIngest);
  EXPECT_EQ(c.edge.u, 17u);
  EXPECT_EQ(c.edge.v, 4242u);
  EXPECT_EQ(c.edge.label_u, 3u);
  EXPECT_EQ(c.edge.label_v, 0u);
  EXPECT_EQ(FormatCommand(c), "INGEST 17 4242 3 0");
  const Command again = ParseOk(FormatCommand(c));
  EXPECT_EQ(again.edge.u, c.edge.u);
  EXPECT_EQ(again.edge.v, c.edge.v);
  EXPECT_EQ(again.edge.label_u, c.edge.label_u);
  EXPECT_EQ(again.edge.label_v, c.edge.label_v);
  // No 5th field -> no sequence number.
  EXPECT_FALSE(c.has_seq);
}

TEST(ServeProtocolTest, IngestWithSequenceNumberRoundTrips) {
  const Command c = ParseOk("INGEST 17 4242 3 0 90071");
  EXPECT_EQ(c.type, CommandType::kIngest);
  EXPECT_TRUE(c.has_seq);
  EXPECT_EQ(c.seq, 90071u);
  EXPECT_EQ(FormatCommand(c), "INGEST 17 4242 3 0 90071");
  const Command again = ParseOk(FormatCommand(c));
  EXPECT_TRUE(again.has_seq);
  EXPECT_EQ(again.seq, c.seq);
  // seq 0 is a valid sequence number, distinct from "absent".
  EXPECT_TRUE(ParseOk("INGEST 1 2 0 0 0").has_seq);

  ParseErr("INGEST 1 2 0 0 -1");      // negative seq
  ParseErr("INGEST 1 2 0 0 x");       // non-numeric seq
  ParseErr("INGEST 1 2 0 0 1 2");     // two fields past the labels
}

TEST(ServeProtocolTest, GetRoundTrips) {
  const Command c = ParseOk("GET 98765");
  EXPECT_EQ(c.type, CommandType::kGet);
  EXPECT_EQ(c.vertex, 98765u);
  EXPECT_EQ(FormatCommand(c), "GET 98765");
  EXPECT_EQ(ParseOk(FormatCommand(c)).vertex, 98765u);
}

TEST(ServeProtocolTest, BareVerbsRoundTrip) {
  const struct {
    const char* line;
    CommandType type;
  } kVerbs[] = {
      {"STATS", CommandType::kStats},
      {"CHECKPOINT", CommandType::kCheckpoint},
      {"FINALIZE", CommandType::kFinalize},
      {"SNAPSHOT-QUALITY", CommandType::kSnapshotQuality},
      {"SHUTDOWN", CommandType::kShutdown},
  };
  for (const auto& v : kVerbs) {
    const Command c = ParseOk(v.line);
    EXPECT_EQ(c.type, v.type) << v.line;
    EXPECT_EQ(FormatCommand(c), v.line);
  }
}

TEST(ServeProtocolTest, VertexAndLabelBoundsAreEnforced) {
  // kInvalidVertex / kInvalidLabel are sentinels — the wire must not be
  // able to smuggle them into the engine.
  const std::string bad_v = std::to_string(graph::kInvalidVertex);
  const std::string bad_l = std::to_string(graph::kInvalidLabel);
  ParseErr("INGEST " + bad_v + " 1 0 0");
  ParseErr("INGEST 1 " + bad_v + " 0 0");
  ParseErr("INGEST 1 2 " + bad_l + " 0");
  ParseErr("INGEST 1 2 0 " + bad_l);
  ParseErr("GET " + bad_v);
  // One past uint32 also fails (overflow is detected, not wrapped).
  ParseErr("INGEST 4294967296 1 0 0");
  ParseErr("GET 99999999999999999999");
}

TEST(ServeProtocolTest, MalformedIngestVariants) {
  ParseErr("INGEST");                 // no payload
  ParseErr("INGEST 1 2 0");           // short one field
  ParseErr("INGEST 1 2 0 0 9 9");     // one field past the optional seq
  ParseErr("INGEST 1 2 0 zero");      // non-numeric label
  ParseErr("INGEST -1 2 0 0");        // negative id
  ParseErr("INGEST 1.5 2 0 0");       // trailing garbage on a number
  ParseErr("INGEST 7 7 0 0");         // self-loop
  ParseErr("INGEST  1 2 0 0");        // double space = empty token
  ParseErr("INGEST 1 2 0 0 ");        // trailing space = empty token
  ParseErr("ingest 1 2 0 0");         // verbs are case-sensitive
  ParseErr("");                       // empty line
  ParseErr("BOGUS 1 2");              // unknown verb
  ParseErr("STATS now");              // bare verbs take no arguments
  ParseErr("GET");                    // missing vertex
  ParseErr("GET 1 2");                // too many
}

TEST(ServeProtocolTest, ErrAndOkReplies) {
  EXPECT_EQ(ErrReply("boom"), "ERR boom");
  EXPECT_TRUE(IsOk("OK queued"));
  EXPECT_TRUE(IsOk("OK"));
  EXPECT_FALSE(IsOk("ERR boom"));
  EXPECT_FALSE(IsOk("OKAY"));  // prefix must end at a token boundary
  EXPECT_FALSE(IsOk(""));
}

TEST(ServeLineFramerTest, SplitsChunksAtNewlines) {
  LineFramer framer;
  std::string line;
  framer.Feed("GET 1\nGET 2\nGET");
  ASSERT_EQ(framer.Next(&line), LineFramer::Result::kLine);
  EXPECT_EQ(line, "GET 1");
  ASSERT_EQ(framer.Next(&line), LineFramer::Result::kLine);
  EXPECT_EQ(line, "GET 2");
  EXPECT_EQ(framer.Next(&line), LineFramer::Result::kNeedMore);
  framer.Feed(" 3\n");
  ASSERT_EQ(framer.Next(&line), LineFramer::Result::kLine);
  EXPECT_EQ(line, "GET 3");
}

TEST(ServeLineFramerTest, ReassemblesBytewiseWrites) {
  // The worst interleaving a client can produce: one byte per read.
  LineFramer framer;
  const std::string wire = "INGEST 1 2 0 1\nSTATS\n";
  std::vector<std::string> lines;
  std::string line;
  for (char ch : wire) {
    framer.Feed(std::string_view(&ch, 1));
    while (framer.Next(&line) == LineFramer::Result::kLine) {
      lines.push_back(line);
    }
  }
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0], "INGEST 1 2 0 1");
  EXPECT_EQ(lines[1], "STATS");
}

TEST(ServeLineFramerTest, StripsCarriageReturn) {
  LineFramer framer;
  std::string line;
  framer.Feed("STATS\r\n");
  ASSERT_EQ(framer.Next(&line), LineFramer::Result::kLine);
  EXPECT_EQ(line, "STATS");
}

TEST(ServeLineFramerTest, OversizeLineIsDiscardedNotFatal) {
  LineFramer framer(16);
  std::string line;
  // Feed an over-long line in pieces: the framer must not buffer it all.
  framer.Feed(std::string(40, 'x'));
  EXPECT_EQ(framer.Next(&line), LineFramer::Result::kNeedMore);
  framer.Feed(std::string(40, 'y'));
  framer.Feed("\nGET 5\n");
  // Exactly one kOversize for the discarded line...
  ASSERT_EQ(framer.Next(&line), LineFramer::Result::kOversize);
  // ...and the connection keeps decoding the next command.
  ASSERT_EQ(framer.Next(&line), LineFramer::Result::kLine);
  EXPECT_EQ(line, "GET 5");
  EXPECT_EQ(framer.Next(&line), LineFramer::Result::kNeedMore);
}

TEST(ServeLineFramerTest, OversizeDetectedWithinSingleFeed) {
  LineFramer framer(8);
  std::string line;
  framer.Feed("0123456789abcdef\nSTATS\n");
  ASSERT_EQ(framer.Next(&line), LineFramer::Result::kOversize);
  ASSERT_EQ(framer.Next(&line), LineFramer::Result::kLine);
  EXPECT_EQ(line, "STATS");
}

TEST(ServeLineFramerTest, MaxSizeLineStillPasses) {
  LineFramer framer(8);
  std::string line;
  framer.Feed("12345678\n");  // exactly the cap
  ASSERT_EQ(framer.Next(&line), LineFramer::Result::kLine);
  EXPECT_EQ(line, "12345678");
}

}  // namespace
}  // namespace serve
}  // namespace loom
