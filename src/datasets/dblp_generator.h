// Synthetic DBLP-like bibliographic graph (8 labels: Table 1's DBLP row).
//
// Schema: Authors write Papers; Papers cite Papers (preferential to popular
// targets); Papers appear at Venues inside Proceedings; Papers carry a Year
// and Topics; Authors belong to Organizations and some act as Editors of
// proceedings. Degree skew comes from Zipf author productivity and
// preferential citation.

#ifndef LOOM_DATASETS_DBLP_GENERATOR_H_
#define LOOM_DATASETS_DBLP_GENERATOR_H_

#include <cstdint>

#include "datasets/graph_sink.h"
#include "datasets/schema.h"

namespace loom {
namespace datasets {

struct DblpConfig {
  /// Number of papers; every other entity count derives from it.
  size_t num_papers = 12000;
  uint64_t seed = 0xDB17;
};

/// Generates the graph only (workloads are attached by the registry).
Dataset GenerateDblp(const DblpConfig& config);

/// The generator walk itself: interns labels into `registry` and emits
/// vertices/edges into `sink` without materialising anything. GenerateDblp
/// is exactly this walk into a BuilderSink.
void EmitDblp(const DblpConfig& config, graph::LabelRegistry* registry,
              GraphSink* sink);

}  // namespace datasets
}  // namespace loom

#endif  // LOOM_DATASETS_DBLP_GENERATOR_H_
