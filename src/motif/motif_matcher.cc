#include "motif/motif_matcher.h"

#include <algorithm>
#include <cassert>

#include "util/simd.h"

namespace loom {
namespace motif {

MotifMatcher::MotifMatcher(const tpstry::Tpstry* trie,
                           const signature::SignatureCalculator* calc,
                           MatcherConfig config)
    : trie_(trie), calc_(calc), config_(config) {
  admission_side_ = calc_->num_labels();
  admission_.assign(admission_side_ * admission_side_, nullptr);
  admission_known_.assign(admission_side_ * admission_side_, 0);
  max_motif_edges_ = trie_->MaxMotifEdges();
  RefreshExtendability();
}

void MotifMatcher::RefreshExtendability() {
  node_extendable_.assign(trie_->NumNodes(), 0);
  for (uint32_t id = 0; id < trie_->NumNodes(); ++id) {
    for (uint32_t cid : trie_->node(id).children) {
      if (trie_->IsMotif(cid)) {
        node_extendable_[id] = 1;
        break;
      }
    }
  }
}

void MotifMatcher::InvalidateMotifCache() {
  admission_side_ = calc_->num_labels();  // re-fit to a grown alphabet
  admission_.assign(admission_side_ * admission_side_, nullptr);
  admission_known_.assign(admission_side_ * admission_side_, 0);
  child_memo_.Clear();
  max_motif_edges_ = trie_->MaxMotifEdges();
  RefreshExtendability();
}

const tpstry::TpsNode* MotifMatcher::SingleEdgeMotif(
    const stream::StreamEdge& e) const {
  assert(e.label_u < admission_side_ && e.label_v < admission_side_);
  const size_t idx =
      static_cast<size_t>(e.label_u) * admission_side_ + e.label_v;
  if (!admission_known_[idx]) {
    admission_[idx] = trie_->FindSingleEdgeMotif(
        calc_->SingleEdgeSignature(e.label_u, e.label_v));
    admission_known_[idx] = 1;
  }
  return admission_[idx];
}

const tpstry::TpsNode* MotifMatcher::FindMotifChildMemo(uint32_t node_id) {
  // Canonicalise the delta (ExtendsBy treats it as a multiset) and pack it
  // with the node id into one 64-bit key.
  uint32_t f0 = delta_[0], f1 = delta_[1], f2 = delta_[2];
  if (f0 > f1) std::swap(f0, f1);
  if (f1 > f2) std::swap(f1, f2);
  if (f0 > f1) std::swap(f0, f1);
  if ((node_id | f0 | f1 | f2) >> 16 != 0) {
    return trie_->FindMotifChild(node_id, delta_);  // doesn't fit: no memo
  }
  const uint64_t key = (uint64_t{node_id} << 48) | (uint64_t{f0} << 32) |
                       (uint64_t{f1} << 16) | f2;
  if (const tpstry::TpsNode* const* hit = child_memo_.Find(key)) return *hit;
  const tpstry::TpsNode* c = trie_->FindMotifChild(node_id, delta_);
  child_memo_.Insert(key, c);
  return c;
}

MatchHandle MotifMatcher::TryExtend(MatchHandle mh, const stream::StreamEdge& e,
                                    MatchList* ml) {
  const Match& m = ml->match(mh);
  if (m.edges.size() >= max_motif_edges_) return kNullMatch;  // can't grow
  if (!node_extendable_[m.node_id]) return kNullMatch;  // no motif children
  if (m.ContainsEdge(e.id)) return kNullMatch;
  // Degrees of the new edge's endpoints inside m (tracked in the record);
  // +1 for the addition.
  const uint32_t deg_u = m.DegreeOf(e.u);
  const uint32_t deg_v = m.DegreeOf(e.v);
  calc_->FactorsForEdgeAddition(e.label_u, deg_u + 1, e.label_v, deg_v + 1,
                                &delta_);
  const tpstry::TpsNode* c = FindMotifChildMemo(m.node_id);
  if (c == nullptr) return kNullMatch;

  const MatchHandle gh = ml->Acquire();
  Match& grown = ml->match(gh);  // `m` stays valid: pool slabs never move
  grown.CopyFrom(m);
  grown.AddEdge(e.id, e.u, e.v);
  grown.node_id = c->id;
  if (!ml->Commit(gh)) return kNullMatch;  // duplicate
  ++stats_.extension_matches;
  return gh;
}

bool MotifMatcher::JoinRecurse(uint32_t node_id,
                               std::vector<graph::EdgeId>& remaining,
                               const stream::SlidingWindow& window,
                               MatchList* ml) {
  if (remaining.empty()) {
    const MatchHandle jh = ml->Acquire();
    Match& joined = ml->match(jh);
    joined.CopyFrom(cand_);
    joined.node_id = node_id;
    if (ml->Commit(jh)) ++stats_.join_matches;
    // Either way the join succeeded structurally.
    return true;
  }
  if (!node_extendable_[node_id]) return false;  // no motif children at all
  for (size_t i = 0; i < remaining.size(); ++i) {
    const graph::EdgeId eid = remaining[i];
    const stream::StreamEdge* se = window.Find(eid);
    if (se == nullptr) return false;  // constituent edge left the window
    const uint32_t deg_u = cand_.DegreeOf(se->u);
    const uint32_t deg_v = cand_.DegreeOf(se->v);
    if (deg_u == 0 && deg_v == 0) continue;  // not incident yet; defer
    calc_->FactorsForEdgeAddition(se->label_u, deg_u + 1, se->label_v,
                                  deg_v + 1, &delta_);
    const tpstry::TpsNode* c = FindMotifChildMemo(node_id);
    if (c == nullptr) continue;
    // Tentatively absorb eid, recurse, undo on failure.
    cand_.AddEdge(eid, se->u, se->v);
    remaining.erase(remaining.begin() + static_cast<ptrdiff_t>(i));
    if (JoinRecurse(c->id, remaining, window, ml)) return true;
    remaining.insert(remaining.begin() + static_cast<ptrdiff_t>(i), eid);
    cand_.RemoveEdge(eid, se->u, se->v);
  }
  return false;
}

void MotifMatcher::TryJoin(MatchHandle base_h, MatchHandle small_h,
                           const stream::SlidingWindow& window, MatchList* ml) {
  const Match& base = ml->match(base_h);
  const Match& smaller = ml->match(small_h);
  // remaining = smaller.edges \ base.edges — the per-attempt membership
  // tests, batched through the kernel layer (every needle against the
  // whole base edge set in 8-lane chunks).
  remaining_.resize(smaller.edges.size());
  remaining_.resize(util::simd::SortedDifferenceU32(
      smaller.edges.data(), smaller.edges.size(), base.edges.data(),
      base.edges.size(), remaining_.data()));
  if (remaining_.empty()) return;  // smaller ⊆ base: nothing new
  // A successful join absorbs ALL of `remaining` via motif children, ending
  // at base+|remaining| edges; if that exceeds the largest motif, some step
  // of the chain would need an over-sized motif — impossible. Prune before
  // copying the candidate or touching signatures.
  if (base.edges.size() + remaining_.size() > max_motif_edges_) return;
  ++stats_.join_attempts;
  cand_.CopyFrom(base);
  JoinRecurse(base.node_id, remaining_, window, ml);
}

void MotifMatcher::OnEdgeAdded(const stream::StreamEdge& e,
                               const stream::SlidingWindow& window,
                               MatchList* ml) {
  const tpstry::TpsNode* single = SingleEdgeMotif(e);
  assert(single != nullptr &&
         "OnEdgeAdded requires an edge admitted by SingleEdgeMotif");
  assert(window.Contains(e.id) && "push the edge into the window first");
  (void)window;
  ++stats_.edges_admitted;

  // Step 0 — the single-edge match (Sec. 3: "we treat e as a sub-graph of a
  // single edge, then add it to the matchList entries for both v1 and v2").
  {
    const MatchHandle h = ml->Acquire();
    Match& m0 = ml->match(h);
    m0.edges.push_back(e.id);
    m0.BumpDegree(e.u);
    m0.BumpDegree(e.v);
    m0.node_id = single->id;
    if (ml->Commit(h)) ++stats_.single_edge_matches;
  }

  // Step 1 — extend existing matches connected to e (Alg. 2 lines 4-8).
  // The endpoint lists are merged u-first with duplicates (matches touching
  // both endpoints) dropped via a sorted membership probe.
  {
    snap_u_.clear();
    ml->CollectLiveAt(e.u, &snap_u_);
    snap_sorted_.assign(snap_u_.begin(), snap_u_.end());
    std::sort(snap_sorted_.begin(), snap_sorted_.end());
    snap_v_.clear();
    ml->CollectLiveAt(e.v, &snap_v_);
    for (MatchHandle h : snap_v_) {
      if (!std::binary_search(snap_sorted_.begin(), snap_sorted_.end(), h)) {
        snap_u_.push_back(h);
      }
    }
    if (snap_u_.size() > config_.max_matches_per_vertex * 2) {
      snap_u_.resize(config_.max_matches_per_vertex * 2);
    }
    for (MatchHandle h : snap_u_) TryExtend(h, e, ml);
  }

  // Step 2 — pairwise joins across the two endpoints (Alg. 2 lines 9-18),
  // over the refreshed lists (they now include e's own new matches).
  {
    snap_u_.clear();
    ml->CollectLiveAt(e.u, &snap_u_);
    snap_v_.clear();
    ml->CollectLiveAt(e.v, &snap_v_);
    if (snap_u_.size() > config_.max_matches_per_vertex) {
      snap_u_.resize(config_.max_matches_per_vertex);
    }
    if (snap_v_.size() > config_.max_matches_per_vertex) {
      snap_v_.resize(config_.max_matches_per_vertex);
    }
    // Sizes are loop-invariant (registered matches are immutable and the
    // snapshots are fixed): resolve each handle once, not once per pair.
    snap_u_sizes_.resize(snap_u_.size());
    for (size_t i = 0; i < snap_u_.size(); ++i) {
      snap_u_sizes_[i] = ml->match(snap_u_[i]).edges.size();
    }
    snap_v_sizes_.resize(snap_v_.size());
    for (size_t i = 0; i < snap_v_.size(); ++i) {
      snap_v_sizes_[i] = ml->match(snap_v_[i]).edges.size();
    }
    for (size_t i1 = 0; i1 < snap_u_.size(); ++i1) {
      const MatchHandle h1 = snap_u_[i1];
      const size_t n1 = snap_u_sizes_[i1];
      for (size_t i2 = 0; i2 < snap_v_.size(); ++i2) {
        const MatchHandle h2 = snap_v_[i2];
        if (h1 == h2) continue;
        const size_t n2 = snap_v_sizes_[i2];
        // A base already at the largest motif size cannot absorb anything:
        // TryJoin would return before any side effect (either the smaller
        // match is a subset, or the size prune fires pre-attempt) — skip
        // the call entirely. Most live matches sit at maximal motifs.
        if ((n1 >= n2 ? n1 : n2) >= max_motif_edges_) continue;
        // Absorb the smaller match into the larger (Sec. 3). Matches cannot
        // die inside OnEdgeAdded, so both handles are live.
        const MatchHandle base = n1 >= n2 ? h1 : h2;
        const MatchHandle small = n1 >= n2 ? h2 : h1;
        TryJoin(base, small, window, ml);
      }
    }
  }
}

}  // namespace motif
}  // namespace loom
