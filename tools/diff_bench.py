#!/usr/bin/env python3
"""Diff a fresh BENCH_throughput.json against the committed baseline.

Partition-quality fields (edge_cut, imbalance, assignment_hash) are
deterministic on fixed seeds and must match EXACTLY — a mismatch means a
"perf" change altered partitioning behaviour and the script exits non-zero.
Timing fields (ms, eps) are machine/load dependent: they are reported as
ratios, with a warning (not a failure) on large throughput regressions.

Usage: diff_bench.py BASELINE.json NEW.json [--max-regression 0.7]
"""

import argparse
import json
import sys


def index_systems(doc):
    """(dataset, system) -> record, over the main table, the paper-window
    loom section, the loom-sharded shard sweep and the file-streamed
    replay section."""
    out = {}
    for d in doc.get("datasets", []):
        for s in d.get("systems", []):
            out[(d["dataset"], s["system"])] = s
    for d in doc.get("loom_paper_window", {}).get("datasets", []):
        out[(d["dataset"], "loom@t10k")] = d["loom"]
    for d in doc.get("loom_sharded_sweep", {}).get("datasets", []):
        for s in d.get("sweep", []):
            out[(d["dataset"], f"sharded@S{s['shards']}")] = s
    for d in doc.get("file_stream", {}).get("datasets", []):
        out[(d["dataset"], "loom@file")] = d
    return out


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("baseline")
    ap.add_argument("new")
    ap.add_argument("--max-regression", type=float, default=0.7,
                    help="warn when new eps falls below this fraction "
                         "of baseline")
    args = ap.parse_args()

    with open(args.baseline) as f:
        base = json.load(f)
    with open(args.new) as f:
        new = json.load(f)

    base_idx = index_systems(base)
    new_idx = index_systems(new)

    failures, warnings = [], []
    print(f"{'dataset':<14} {'system':<10} {'base eps':>12} {'new eps':>12} "
          f"{'ratio':>7}  quality")
    for key in sorted(base_idx):
        if key not in new_idx:
            failures.append(f"{key}: missing from new results")
            continue
        b, n = base_idx[key], new_idx[key]
        quality_ok = True
        for field in ("edge_cut", "imbalance", "assignment_hash"):
            if b.get(field) != n.get(field):
                quality_ok = False
                failures.append(
                    f"{key}: {field} changed {b.get(field)} -> {n.get(field)}")
        ratio = (n["eps"] / b["eps"]) if b.get("eps") else float("nan")
        if b.get("eps") and ratio < args.max_regression:
            warnings.append(f"{key}: throughput regressed to {ratio:.2f}x")
        print(f"{key[0]:<14} {key[1]:<10} {b.get('eps', 0):>12.0f} "
              f"{n.get('eps', 0):>12.0f} {ratio:>6.2f}x  "
              f"{'ok' if quality_ok else 'CHANGED'}")

    for w in warnings:
        print(f"WARNING: {w}", file=sys.stderr)
    if failures:
        for f_ in failures:
            print(f"FAIL: {f_}", file=sys.stderr)
        print("\npartition quality drifted — a perf change must not alter "
              "assignments on fixed seeds", file=sys.stderr)
        return 1
    print("\npartition quality identical to baseline"
          + (f"; {len(warnings)} throughput warning(s)" if warnings else ""))
    return 0


if __name__ == "__main__":
    sys.exit(main())
