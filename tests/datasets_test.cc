#include "datasets/dataset_registry.h"

#include <gtest/gtest.h>

#include "graph/graph_algos.h"
#include "query/query_executor.h"

namespace loom {
namespace datasets {
namespace {

class DatasetTest : public ::testing::TestWithParam<DatasetId> {};

TEST_P(DatasetTest, GeneratesNonTrivialGraph) {
  Dataset ds = MakeDataset(GetParam(), 0.05);
  EXPECT_GT(ds.NumVertices(), 100u);
  EXPECT_GT(ds.NumEdges(), 100u);
  EXPECT_FALSE(ds.meta.name.empty());
}

TEST_P(DatasetTest, LabelAlphabetMatchesTable1) {
  Dataset ds = MakeDataset(GetParam(), 0.05);
  switch (GetParam()) {
    case DatasetId::kDblp:
      EXPECT_EQ(ds.NumLabels(), 8u);
      break;
    case DatasetId::kProvGen:
      EXPECT_EQ(ds.NumLabels(), 3u);
      break;
    case DatasetId::kMusicBrainz:
      EXPECT_EQ(ds.NumLabels(), 12u);
      break;
    case DatasetId::kLubm100:
    case DatasetId::kLubm4000:
      EXPECT_EQ(ds.NumLabels(), 15u);
      break;
  }
}

TEST_P(DatasetTest, EveryLabelIsUsed) {
  Dataset ds = MakeDataset(GetParam(), 0.05);
  auto hist = ds.graph.LabelHistogram();
  ASSERT_EQ(hist.size(), ds.NumLabels());
  for (size_t l = 0; l < hist.size(); ++l) {
    EXPECT_GT(hist[l], 0u) << "label " << ds.registry.Name(
        static_cast<graph::LabelId>(l)) << " unused";
  }
}

TEST_P(DatasetTest, DeterministicGeneration) {
  Dataset a = MakeDataset(GetParam(), 0.03);
  Dataset b = MakeDataset(GetParam(), 0.03);
  ASSERT_EQ(a.NumVertices(), b.NumVertices());
  ASSERT_EQ(a.NumEdges(), b.NumEdges());
  for (size_t i = 0; i < a.graph.edges().size(); ++i) {
    ASSERT_EQ(a.graph.edges()[i].u, b.graph.edges()[i].u);
    ASSERT_EQ(a.graph.edges()[i].v, b.graph.edges()[i].v);
  }
}

TEST_P(DatasetTest, ScaleGrowsTheGraph) {
  Dataset small = MakeDataset(GetParam(), 0.02);
  Dataset large = MakeDataset(GetParam(), 0.08);
  EXPECT_GT(large.NumEdges(), small.NumEdges());
}

INSTANTIATE_TEST_SUITE_P(
    AllDatasets, DatasetTest,
    ::testing::ValuesIn(AllDatasets()),
    [](const ::testing::TestParamInfo<DatasetId>& info) {
      std::string name = ToString(info.param);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

class QueryableDatasetTest : public ::testing::TestWithParam<DatasetId> {};

TEST_P(QueryableDatasetTest, WorkloadQueriesAreWellFormed) {
  Dataset ds = MakeDataset(GetParam(), 0.05);
  EXPECT_GE(ds.workload.size(), 3u);
  EXPECT_NEAR(ds.workload.TotalFrequency(), 1.0, 1e-9);
  for (const auto& q : ds.workload.queries()) {
    EXPECT_TRUE(q.pattern.IsConnected()) << q.name;
    EXPECT_GE(q.pattern.NumEdges(), 1u) << q.name;
    EXPECT_GT(q.frequency, 0.0) << q.name;
    // All query labels exist in the dataset's registry and graph.
    auto hist = ds.graph.LabelHistogram();
    for (graph::LabelId l : q.pattern.labels()) {
      ASSERT_LT(l, ds.NumLabels()) << q.name;
      EXPECT_GT(hist[l], 0u) << q.name << " uses unused label";
    }
  }
}

TEST_P(QueryableDatasetTest, EveryQueryHasMatches) {
  Dataset ds = MakeDataset(GetParam(), 0.05);
  partition::Partitioning p(1, ds.NumVertices());
  for (graph::VertexId v = 0; v < ds.NumVertices(); ++v) p.Assign(v, 0);
  query::ExecutorConfig cfg;
  cfg.max_seeds = 500;
  query::QueryExecutor ex(&ds.graph, cfg);
  for (const auto& q : ds.workload.queries()) {
    auto r = ex.Execute(q.pattern, p);
    EXPECT_GT(r.matches, 0u) << ToString(GetParam()) << "/" << q.name
                             << ": workload query matches nothing";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Queryable, QueryableDatasetTest, ::testing::ValuesIn(QueryableDatasets()),
    [](const ::testing::TestParamInfo<DatasetId>& info) {
      std::string name = ToString(info.param);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(Figure1DatasetTest, MatchesThePaperFigure) {
  Dataset ds = MakeFigure1Dataset();
  EXPECT_EQ(ds.NumVertices(), 8u);
  EXPECT_EQ(ds.NumEdges(), 10u);
  EXPECT_EQ(ds.NumLabels(), 4u);
  EXPECT_EQ(ds.workload.size(), 3u);
  // One connected component (the lattice).
  size_t components = 0;
  graph::ConnectedComponents(ds.graph, &components);
  EXPECT_EQ(components, 1u);
}

TEST(DatasetRegistryTest, NamesAreStable) {
  EXPECT_EQ(ToString(DatasetId::kDblp), "dblp");
  EXPECT_EQ(ToString(DatasetId::kProvGen), "provgen");
  EXPECT_EQ(ToString(DatasetId::kMusicBrainz), "musicbrainz");
  EXPECT_EQ(ToString(DatasetId::kLubm100), "lubm-100");
  EXPECT_EQ(ToString(DatasetId::kLubm4000), "lubm-4000");
}

TEST(DatasetRegistryTest, InvalidScaleThrows) {
  EXPECT_THROW(MakeDataset(DatasetId::kDblp, 0.0), std::invalid_argument);
  EXPECT_THROW(MakeDataset(DatasetId::kDblp, -1.0), std::invalid_argument);
}

TEST(DatasetRegistryTest, SizeOrderingMirrorsTable1) {
  // Paper's Table 1 edge-count ordering: provgen < dblp < lubm-100 <
  // musicbrainz < lubm-4000 (at matched scale).
  auto provgen = MakeDataset(DatasetId::kProvGen, 0.1);
  auto dblp = MakeDataset(DatasetId::kDblp, 0.1);
  auto lubm = MakeDataset(DatasetId::kLubm100, 0.1);
  auto mb = MakeDataset(DatasetId::kMusicBrainz, 0.1);
  auto lubm4k = MakeDataset(DatasetId::kLubm4000, 0.1);
  EXPECT_LT(provgen.NumEdges(), dblp.NumEdges());
  EXPECT_LT(dblp.NumEdges(), lubm.NumEdges());
  EXPECT_LT(lubm.NumEdges(), mb.NumEdges());
  EXPECT_LT(mb.NumEdges(), lubm4k.NumEdges());
}

}  // namespace
}  // namespace datasets
}  // namespace loom
