#include "signature/collision_model.h"

#include <cmath>

#include "util/binomial.h"
#include "util/rng.h"

namespace loom {
namespace signature {

double ProbAcceptableCollisions(uint32_t num_factors, double tolerance,
                                uint32_t p) {
  const double q = 2.0 / static_cast<double>(p);  // per-factor collision prob
  const uint64_t c_max =
      static_cast<uint64_t>(std::floor(tolerance * num_factors));
  return util::BinomialCdf(num_factors, c_max, q > 1.0 ? 1.0 : q);
}

std::vector<double> CollisionCurve(uint32_t num_factors, double tolerance,
                                   const std::vector<uint32_t>& primes) {
  std::vector<double> out;
  out.reserve(primes.size());
  for (uint32_t p : primes) {
    out.push_back(ProbAcceptableCollisions(num_factors, tolerance, p));
  }
  return out;
}

std::vector<uint32_t> PrimesUpTo(uint32_t limit) {
  std::vector<uint32_t> primes;
  if (limit < 2) return primes;
  std::vector<bool> sieve(limit + 1, true);
  for (uint32_t i = 2; i <= limit; ++i) {
    if (!sieve[i]) continue;
    primes.push_back(i);
    for (uint64_t j = static_cast<uint64_t>(i) * i; j <= limit; j += i) {
      sieve[j] = false;
    }
  }
  return primes;
}

double EmpiricalFactorCollisionRate(uint32_t p, uint32_t trials, uint64_t seed) {
  if (p < 3 || trials == 0) return 1.0;
  util::Rng rng(seed);
  uint32_t collisions = 0;
  for (uint32_t t = 0; t < trials; ++t) {
    uint32_t a = static_cast<uint32_t>(1 + rng.Uniform(p - 1));
    uint32_t b = static_cast<uint32_t>(1 + rng.Uniform(p - 1));
    if (a == b) ++collisions;
  }
  // The model's 2/p counts two scenarios; a direct draw-pair equality is
  // 1/(p-1), so scale to the two-scenario rate for comparability.
  return 2.0 * static_cast<double>(collisions) / static_cast<double>(trials);
}

}  // namespace signature
}  // namespace loom
