// The matchList map of Sec. 3: vertex -> set of motif-matching sub-graphs in
// the window that contain that vertex, plus an edge index so matches can be
// retired when their edges are assigned.
//
// Liveness is a flag on Match; vertex lists are compacted lazily, the edge
// index eagerly. Duplicate (same edges, same motif) matches are rejected via
// a content-hash set.

#ifndef LOOM_MOTIF_MATCH_LIST_H_
#define LOOM_MOTIF_MATCH_LIST_H_

#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "motif/match.h"

namespace loom {
namespace motif {

class MatchList {
 public:
  MatchList() = default;

  /// Registers a match. Returns false (and drops it) if an identical live
  /// match already exists.
  bool Add(const MatchPtr& m);

  /// Live matches containing vertex v (snapshot copy; safe to Add/Remove
  /// while iterating it).
  std::vector<MatchPtr> LiveAt(graph::VertexId v) const;

  /// True if any live match contains vertex v (cheaper than LiveAt).
  bool HasLiveAt(graph::VertexId v) const;

  /// Live matches containing the window edge `e` (snapshot copy).
  std::vector<MatchPtr> LiveWithEdge(graph::EdgeId e) const;

  /// Kills every match containing edge `e` (called when `e` is assigned to a
  /// permanent partition and leaves Ptemp).
  void RemoveMatchesWithEdge(graph::EdgeId e);

  /// Number of currently live matches.
  size_t NumLive() const { return live_count_; }

  /// Total matches ever added (monotone; for stats).
  size_t TotalAdded() const { return total_added_; }

  /// Drops dead entries from all vertex lists (the edge index is already
  /// eager). Called periodically by the matcher to bound memory.
  void Compact();

 private:
  std::unordered_map<graph::VertexId, std::vector<MatchPtr>> by_vertex_;
  std::unordered_map<graph::EdgeId, std::vector<MatchPtr>> by_edge_;
  std::unordered_set<uint64_t> live_keys_;
  size_t live_count_ = 0;
  size_t total_added_ = 0;
};

}  // namespace motif
}  // namespace loom

#endif  // LOOM_MOTIF_MATCH_LIST_H_
