// Randomized stress / property tests for the sharded backend's concurrency
// machinery (core/shard_sequencer.h, core/loom_sharded.h).
//
// The equivalence suite proves bit-identity on clean end-to-end streams;
// this suite fuzzes the *lifecycle*: seeded random interleavings of
// IngestBatch (including empty and single-edge batches), per-edge Ingest,
// mid-stream Finalize checkpoints with resumption, observer subscriptions
// flipping mid-stream, and workload drift — each schedule replayed against
// single-threaded loom for bit-identity, under shard counts and queue
// depths chosen to force queue wraparound and producer backpressure. The
// ShardTeam itself gets direct stress (thousands of slices through
// depth-1 queues). Everything here is a first-class TSan target: the CI
// sanitizer matrix runs this suite under ThreadSanitizer.

#include <gtest/gtest.h>

#include <atomic>
#include <random>
#include <span>
#include <vector>

#include "core/loom_sharded.h"
#include "core/shard_sequencer.h"
#include "datasets/dataset_registry.h"
#include "engine/engine.h"
#include "partition/partition_metrics.h"
#include "stream/stream_order.h"
#include "test_util.h"

namespace loom {
namespace core {
namespace {

// ------------------------------------------------------------ ShardTeam

TEST(ShardTeamTest, ProcessesEverySliceExactlyOncePerShard) {
  constexpr uint32_t kShards = 5;
  std::vector<uint64_t> edges_seen(kShards, 0);  // worker-owned cells
  std::vector<uint64_t> slices_seen(kShards, 0);
  ShardTeam team(kShards, /*queue_depth=*/2, /*slice_edges=*/16,
                 [&](uint32_t shard, const ShardTeam::Slice& slice) {
                   edges_seen[shard] += slice.edges.size();
                   ++slices_seen[shard];
                 });

  std::vector<stream::StreamEdge> batch(1000);
  for (size_t i = 0; i < batch.size(); ++i) batch[i].id = i;
  team.Dispatch(batch);
  team.Dispatch(std::span<const stream::StreamEdge>(batch.data(), 17));
  team.Dispatch({});  // empty dispatch is a no-op barrier

  // 1000/16 -> 63 slices, + 17/16 -> 2 slices; every shard sees each once.
  for (uint32_t s = 0; s < kShards; ++s) {
    EXPECT_EQ(edges_seen[s], 1017u) << s;
    EXPECT_EQ(slices_seen[s], 65u) << s;
  }
  const ShardSequencerStats& stats = team.stats();
  EXPECT_EQ(stats.batches_dispatched, 3u);
  EXPECT_EQ(stats.slices_posted, 65u * kShards);
  EXPECT_LE(stats.max_queue_depth, 2u);
}

TEST(ShardTeamTest, DepthOneQueueBackpressuresWithoutLossOrDeadlock) {
  // Tiny queue + tiny slices: the producer must repeatedly block on full
  // queues and every slice must still arrive, in order, exactly once.
  constexpr uint32_t kShards = 3;
  std::vector<uint64_t> next_base(kShards, 0);
  std::atomic<uint64_t> total{0};
  ShardTeam team(kShards, /*queue_depth=*/1, /*slice_edges=*/1,
                 [&](uint32_t shard, const ShardTeam::Slice& slice) {
                   // Slices of one batch arrive in stream order.
                   EXPECT_EQ(slice.base, next_base[shard]);
                   next_base[shard] = slice.base + slice.edges.size();
                   total.fetch_add(slice.edges.size(),
                                   std::memory_order_relaxed);
                 });
  std::vector<stream::StreamEdge> batch(512);
  for (int round = 0; round < 4; ++round) {
    std::fill(next_base.begin(), next_base.end(), 0);
    team.Dispatch(batch);
  }
  EXPECT_EQ(total.load(), 4u * 512u * kShards);
  EXPECT_GT(team.stats().queue_full_stalls, 0u);
}

TEST(ShardTeamTest, ConstructDestructWithoutDispatchIsClean) {
  for (int i = 0; i < 16; ++i) {
    ShardTeam team(4, 2, 64, [](uint32_t, const ShardTeam::Slice&) {});
  }
}

// ------------------------------------------- randomized schedule fuzzing

/// One seeded lifecycle schedule: random batch sizes (occasionally empty,
/// occasionally per-edge Ingest), random Finalize checkpoints, observer
/// flipping on/off. Applies the identical schedule to any backend.
template <typename Step>
void PlaySchedule(uint64_t seed, const std::vector<stream::StreamEdge>& all,
                  partition::Partitioner* p, engine::EngineObserver* observer,
                  Step&& between_steps) {
  std::mt19937_64 rng(seed);
  size_t i = 0;
  bool observed = false;
  while (i < all.size()) {
    const uint64_t roll = rng() % 100;
    if (roll < 4) {
      p->IngestBatch({});  // empty batch is legal and a no-op
    } else if (roll < 14) {
      p->Ingest(all[i]);
      ++i;
    } else {
      const size_t n = std::min<size_t>(1 + rng() % 300, all.size() - i);
      p->IngestBatch(std::span<const stream::StreamEdge>(all.data() + i, n));
      i += n;
    }
    if (rng() % 10 == 0) p->Finalize();  // checkpoint + resume
    if (rng() % 7 == 0) {
      observed = !observed;
      p->SetObserver(observed ? observer : nullptr);
    }
    between_steps(rng());
  }
  p->SetObserver(nullptr);
  p->Finalize();
}

class ShardedStressTest : public ::testing::TestWithParam<const char*> {};

TEST_P(ShardedStressTest, SeededLifecycleFuzzMatchesLoomBitForBit) {
  const datasets::Dataset ds =
      datasets::MakeDataset(datasets::DatasetId::kMusicBrainz, 0.05);
  const stream::EdgeStream es =
      stream::MakeStream(ds.graph, stream::StreamOrder::kRandom, 0x57e55);
  const std::vector<stream::StreamEdge> all(es.begin(), es.end());
  const engine::EngineOptions options = test_util::OptionsFor(ds);

  for (const uint64_t seed : {uint64_t{1}, uint64_t{0xdead}, uint64_t{77}}) {
    // Reference: single-threaded loom under the exact same schedule.
    engine::StatsObserver loom_stats;
    auto loom = test_util::MakeBackend("loom", options, ds);
    ASSERT_NE(loom, nullptr);
    PlaySchedule(seed, all, loom.get(), &loom_stats, [](uint64_t) {});

    engine::StatsObserver sharded_stats;
    auto sharded = test_util::MakeBackend(GetParam(), options, ds);
    ASSERT_NE(sharded, nullptr);
    PlaySchedule(seed, all, sharded.get(), &sharded_stats, [](uint64_t) {});

    EXPECT_EQ(test_util::QualityOf(*sharded, ds),
              test_util::QualityOf(*loom, ds))
        << GetParam() << " seed=" << seed;
    EXPECT_TRUE(partition::FullyAssigned(ds.graph, sharded->partitioning()));
    // The observer saw identical decision traffic while subscribed (the
    // schedule flips subscriptions at identical points).
    EXPECT_EQ(sharded_stats.totals().vertices_assigned,
              loom_stats.totals().vertices_assigned);
    EXPECT_EQ(sharded_stats.totals().evictions,
              loom_stats.totals().evictions);
    EXPECT_EQ(sharded_stats.totals().cluster_decisions,
              loom_stats.totals().cluster_decisions);
  }
}

INSTANTIATE_TEST_SUITE_P(
    ShardAndQueueSweep, ShardedStressTest,
    ::testing::Values("loom-sharded:shards=2,shard_queue_depth=1",
                      "loom-sharded:shards=5,shard_queue_depth=2",
                      "loom-sharded:shards=8"));

TEST(ShardedStressTest, WorkloadDriftMidStreamMatchesLoom) {
  // UpdateWorkload between ingests must shift both backends identically —
  // including every shard's private admission memo.
  const datasets::Dataset ds =
      datasets::MakeDataset(datasets::DatasetId::kProvGen, 0.05);
  const stream::EdgeStream es =
      stream::MakeStream(ds.graph, stream::StreamOrder::kBreadthFirst);
  const std::vector<stream::StreamEdge> all(es.begin(), es.end());
  const engine::EngineOptions options = test_util::OptionsFor(ds);

  // Drifted workload: the same queries reweighted hard toward the tail.
  query::Workload drifted;
  {
    const std::vector<query::Query>& qs = ds.workload.queries();
    for (size_t i = 0; i < qs.size(); ++i) {
      drifted.Add(qs[i].name, qs[i].pattern,
                  1.0 + static_cast<double>(i * i));
    }
  }

  auto loom = test_util::MakeBackend("loom", options, ds);
  auto sharded = test_util::MakeBackend("loom-sharded:shards=3", options, ds);
  ASSERT_NE(loom, nullptr);
  ASSERT_NE(sharded, nullptr);
  auto* loom_core = dynamic_cast<LoomPartitioner*>(loom.get());
  auto* sharded_core = dynamic_cast<LoomShardedPartitioner*>(sharded.get());
  ASSERT_NE(loom_core, nullptr);
  ASSERT_NE(sharded_core, nullptr);

  const size_t half = all.size() / 2;
  for (partition::Partitioner* p : {loom.get(), sharded.get()}) {
    p->IngestBatch(std::span<const stream::StreamEdge>(all.data(), half));
  }
  loom_core->UpdateWorkload(drifted, 0.3);
  sharded_core->UpdateWorkload(drifted, 0.3);
  for (partition::Partitioner* p : {loom.get(), sharded.get()}) {
    p->IngestBatch(
        std::span<const stream::StreamEdge>(all.data() + half,
                                            all.size() - half));
    p->Finalize();
  }
  EXPECT_EQ(test_util::QualityOf(*sharded, ds),
            test_util::QualityOf(*loom, ds));
}

TEST(ShardedStressTest, ManyShortLivedBackendsStartAndStopCleanly) {
  // Thread lifecycle churn: construct, optionally feed a few edges, destroy
  // — including destruction with no Finalize (workers must join cleanly
  // whatever state the stream was left in).
  const datasets::Dataset ds =
      datasets::MakeDataset(datasets::DatasetId::kDblp, 0.02);
  const stream::EdgeStream es =
      stream::MakeStream(ds.graph, stream::StreamOrder::kBreadthFirst);
  const std::vector<stream::StreamEdge> all(es.begin(), es.end());
  const engine::EngineOptions options = test_util::OptionsFor(ds, 4, 64);

  std::mt19937_64 rng(99);
  for (int round = 0; round < 12; ++round) {
    auto p = test_util::MakeBackend("loom-sharded:shards=4", options, ds);
    ASSERT_NE(p, nullptr);
    const size_t n = rng() % std::min<size_t>(all.size(), 500);
    p->IngestBatch(std::span<const stream::StreamEdge>(all.data(), n));
    if (rng() % 2 == 0) p->Finalize();
    // p destroyed here, possibly with a part-full window.
  }
}

}  // namespace
}  // namespace core
}  // namespace loom
