// Sub-graph pattern matching over a partitioned graph, counting
// inter-partition traversals (ipt) — the paper's quality measure (Sec. 5).
//
// The executor performs label-and-adjacency-guided backtracking search (a
// lightweight VF2-style matcher). Every time the search expands along a
// graph edge, that counts as one traversal; if the edge's endpoints live in
// different partitions it additionally counts as one ipt — exactly the
// "expensive inter-partition traversals which occur while executing Q" the
// paper counts. Crucially, the exploration order is independent of the
// partitioning, so two partitionings are compared over the identical set of
// traversals and differ only in how many of them cross partitions.

#ifndef LOOM_QUERY_QUERY_EXECUTOR_H_
#define LOOM_QUERY_QUERY_EXECUTOR_H_

#include <cstdint>
#include <vector>

#include "graph/labeled_graph.h"
#include "graph/pattern_graph.h"
#include "partition/partitioning.h"

namespace loom {
namespace query {

/// Enumeration bounds. Both caps are applied identically across compared
/// partitionings, so relative ipt stays a fair comparison while worst-case
/// work stays polynomial.
struct ExecutorConfig {
  /// Max seed (anchor candidate) vertices per query; seeds beyond the cap
  /// are skipped with a deterministic stride so coverage stays spread out.
  size_t max_seeds = SIZE_MAX;
  /// Max complete matches enumerated from a single seed before the search
  /// moves to the next seed.
  size_t max_matches_per_seed = 256;
};

/// Result of one query execution.
struct ExecutionResult {
  uint64_t matches = 0;      // complete embeddings found
  uint64_t traversals = 0;   // graph-edge expansions + closure confirmations
  uint64_t ipt = 0;          // traversals that crossed a partition boundary

  ExecutionResult& operator+=(const ExecutionResult& o) {
    matches += o.matches;
    traversals += o.traversals;
    ipt += o.ipt;
    return *this;
  }
};

class QueryExecutor {
 public:
  /// `g` must outlive the executor.
  explicit QueryExecutor(const graph::LabeledGraph* g,
                         ExecutorConfig config = {});

  /// Executes pattern `q` over the graph, charging crossings against `p`.
  /// Requires q connected with >= 1 edge.
  ExecutionResult Execute(const graph::PatternGraph& q,
                          const partition::Partitioning& p) const;

 private:
  struct PlanStep {
    graph::VertexId pattern_vertex = graph::kInvalidVertex;
    graph::VertexId parent = graph::kInvalidVertex;   // earlier pattern vertex
    std::vector<graph::VertexId> closures;            // other earlier nbrs
  };

  /// Search plan: anchor = rarest-label pattern vertex, then BFS order; each
  /// later vertex records the parent it is reached from plus closure edges.
  std::vector<PlanStep> BuildPlan(const graph::PatternGraph& q) const;

  void Backtrack(const graph::PatternGraph& q,
                 const std::vector<PlanStep>& plan, size_t depth,
                 std::vector<graph::VertexId>& mapping,
                 const partition::Partitioning& p, uint64_t& budget,
                 ExecutionResult* result) const;

  const graph::LabeledGraph* g_;
  ExecutorConfig config_;
  std::vector<size_t> label_counts_;  // histogram of labels in g
};

}  // namespace query
}  // namespace loom

#endif  // LOOM_QUERY_QUERY_EXECUTOR_H_
