// The common interface every streaming partitioner implements: consume a
// stream of labelled edges (one at a time or in batches), finalize, expose
// the resulting vertex partitioning, and report decisions to an optional
// engine::EngineObserver.
//
// Construction goes through engine::PartitionerRegistry ("hash", "ldg",
// "fennel", "loom" + any user-registered backend) for everything outside
// src/ internals and unit tests; see engine/engine.h.

#ifndef LOOM_PARTITION_PARTITIONER_H_
#define LOOM_PARTITION_PARTITIONER_H_

#include <span>
#include <string>

#include "engine/observer.h"
#include "io/checkpoint.h"
#include "partition/partitioning.h"
#include "stream/stream_edge.h"

namespace loom {
namespace partition {

/// Shared configuration. Streaming partitioners (LDG, Fennel and the paper's
/// Loom evaluation) are parameterised by the expected totals n and m — a
/// standard assumption for this family of algorithms. (Callers normally
/// express this through engine::EngineOptions, whose BaseConfig() produces
/// one of these.)
struct PartitionerConfig {
  uint32_t k = 8;                    // number of partitions
  size_t expected_vertices = 0;      // n
  size_t expected_edges = 0;         // m
  double max_imbalance = 1.1;        // ν: capacity = ν·n/k

  // Storage/caching knobs. Both are LAYOUT/SPEED only — assignments are
  // bit-identical for every value (pinned by differential tests).
  // 0 = default: LOOM_ADJ_PAGE / LOOM_HUB_THRESHOLD env, else 64 / 128.
  uint32_t adj_page_entries = 0;     // adjacency arena page capacity
  uint32_t hub_degree_threshold = 0; // hub tally cache threshold (env 0 = off)
};

class Partitioner {
 public:
  virtual ~Partitioner() = default;

  /// Consumes the next stream element.
  virtual void Ingest(const stream::StreamEdge& e) = 0;

  /// Consumes a batch of consecutive stream elements. Semantically identical
  /// to calling Ingest per edge (the default does exactly that); backends
  /// override to hoist batch-wide work — Loom probes the admission mask for
  /// the whole batch up front, and future SIMD / sharded backends get a wide
  /// entry point.
  virtual void IngestBatch(std::span<const stream::StreamEdge> batch) {
    for (const stream::StreamEdge& e : batch) Ingest(e);
  }

  /// Flushes buffered state (e.g. Loom's window) so partitioning() covers
  /// every vertex seen so far.
  ///
  /// Contract (all backends): Finalize is IDEMPOTENT — calling it again
  /// with no intervening Ingest leaves the partitioning bit-identical and
  /// fires no further observer events. It is also not terminal: Ingest may
  /// be called after Finalize (an online stream has no real end; finalize
  /// is a checkpoint), after which the backend resumes buffering and a
  /// later Finalize drains again. Pinned by PartitionerContractTest.
  virtual void Finalize() {}

  /// The (possibly still partial, before Finalize) partitioning.
  virtual const Partitioning& partitioning() const = 0;

  /// Short name for reports ("hash", "ldg", "fennel", "loom").
  virtual std::string name() const = 0;

  /// Subscribes `observer` to this partitioner's decision events (nullptr
  /// to unsubscribe). Not owned; must outlive the partitioner or be reset.
  void SetObserver(engine::EngineObserver* observer) { observer_ = observer; }
  engine::EngineObserver* observer() const { return observer_; }

  /// Fills backend-specific ProgressEvent fields (bypassed edges, window
  /// population); engine::Drive stamps edges_ingested and fires the event.
  /// Baselines track nothing extra and keep the zeros.
  virtual void FillProgress(engine::ProgressEvent*) const {}

  /// Appends this backend's deterministic end-of-run counters (name ->
  /// value, stable order) to `stats`; engine::Drive fires the event after
  /// Finalize. Only values that are identical across reruns on fixed seeds
  /// belong here — reports and bench baselines diff them. Baselines have
  /// nothing to report.
  virtual void FillFinalStats(engine::FinalStatsEvent*) const {}

  /// Writes everything this backend needs to resume the stream from the
  /// current position into `w` (one or more backend-owned sections).
  ///
  /// Contract: restoring the snapshot into a FRESH instance constructed
  /// with the same options/context, then ingesting the remaining stream
  /// suffix, must produce assignments, observer events and final stats
  /// BIT-IDENTICAL to the uninterrupted run (pinned by
  /// tests/crash_recovery_test.cc). The default covers backends whose only
  /// resume-relevant state is the partition table (hash; the stateless
  /// placement rule needs nothing else). Returns false + `*error` for
  /// backends that cannot snapshot.
  virtual bool SaveState(io::CheckpointWriter* w, std::string* error) const;

  /// Restores a SaveState snapshot. Must be called on a fresh instance
  /// (nothing ingested); returns false + an actionable `*error` on any
  /// mismatch (backend, options fingerprint, label space) — the instance
  /// may not be used after a failed restore. Structural corruption throws
  /// from the reader before this is reached.
  virtual bool RestoreState(io::CheckpointReader* r, std::string* error);

 protected:
  /// Hook for the default SaveState/RestoreState: the backend's mutable
  /// partition table, or nullptr when the backend cannot be checkpointed
  /// through the table-only path (it must then override both virtuals or
  /// report "unsupported").
  virtual Partitioning* MutablePartitioning() { return nullptr; }

  /// First-writer-wins assignment that reports the placement actually used
  /// (after capacity diversion) to the observer. All backends route their
  /// vertex placements through this so OnAssign fires exactly once per
  /// vertex, uniformly.
  graph::PartitionId AssignAndNotify(Partitioning* p, graph::VertexId v,
                                     graph::PartitionId target) {
    if (p->IsAssigned(v)) return p->PartitionOf(v);
    const graph::PartitionId actual = p->Assign(v, target);
    if (observer_ != nullptr) observer_->OnAssign({v, actual});
    return actual;
  }

 private:
  engine::EngineObserver* observer_ = nullptr;
};

}  // namespace partition
}  // namespace loom

#endif  // LOOM_PARTITION_PARTITIONER_H_
