// Plain-text aligned table output, used by the benchmark harness to print
// paper tables/figures as rows and series on stdout.

#ifndef LOOM_UTIL_TABLE_WRITER_H_
#define LOOM_UTIL_TABLE_WRITER_H_

#include <ostream>
#include <string>
#include <vector>

namespace loom {
namespace util {

/// Accumulates rows of string cells and renders them column-aligned.
///
/// Usage:
///   TableWriter t({"Dataset", "ipt", "vs Hash"});
///   t.AddRow({"dblp", "12345", "43%"});
///   t.Print(std::cout);
class TableWriter {
 public:
  explicit TableWriter(std::vector<std::string> header);

  /// Appends one row. Rows shorter than the header are padded with "".
  void AddRow(std::vector<std::string> cells);

  /// Renders the table with a header underline and 2-space column gaps.
  void Print(std::ostream& os) const;

  /// Formats a double with `digits` decimal places.
  static std::string Fmt(double v, int digits = 2);

  /// Formats a percentage (v is a ratio; 0.42 -> "42.0%").
  static std::string Pct(double v, int digits = 1);

  size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace util
}  // namespace loom

#endif  // LOOM_UTIL_TABLE_WRITER_H_
