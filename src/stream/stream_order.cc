#include "stream/stream_order.h"

#include <numeric>

#include "graph/graph_algos.h"
#include "util/rng.h"

namespace loom {
namespace stream {

std::string ToString(StreamOrder order) {
  switch (order) {
    case StreamOrder::kBreadthFirst: return "bfs";
    case StreamOrder::kDepthFirst: return "dfs";
    case StreamOrder::kRandom: return "random";
    case StreamOrder::kCanonical: return "canonical";
  }
  return "?";
}

bool ParseStreamOrder(std::string_view name, StreamOrder* out) {
  if (name == "bfs") *out = StreamOrder::kBreadthFirst;
  else if (name == "dfs") *out = StreamOrder::kDepthFirst;
  else if (name == "random") *out = StreamOrder::kRandom;
  else if (name == "canonical") *out = StreamOrder::kCanonical;
  else return false;
  return true;
}

std::vector<graph::EdgeId> EdgeOrderFor(const graph::LabeledGraph& g,
                                        StreamOrder order, uint64_t seed) {
  switch (order) {
    case StreamOrder::kBreadthFirst:
      return graph::BfsEdgeOrder(g);
    case StreamOrder::kDepthFirst:
      return graph::DfsEdgeOrder(g);
    case StreamOrder::kRandom: {
      util::Rng rng(seed);
      return graph::RandomEdgeOrder(g, &rng);
    }
    case StreamOrder::kCanonical: {
      std::vector<graph::EdgeId> order_ids(g.NumEdges());
      std::iota(order_ids.begin(), order_ids.end(), 0);
      return order_ids;
    }
  }
  return {};
}

EdgeStream MakeStream(const graph::LabeledGraph& g, StreamOrder order,
                      uint64_t seed) {
  return EdgeStream(g, EdgeOrderFor(g, order, seed));
}

}  // namespace stream
}  // namespace loom
