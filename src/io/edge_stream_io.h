// File-backed edge streams: the paper's "possibly-infinite edge sequence"
// (Sec. 1.3) as an on-disk artifact.
//
// Two interchangeable formats carry the same logical content — a label
// table plus a sequence of labelled edges in arrival order:
//
//   * Binary ("LOOMES", versioned): fixed 36-byte header (magic, version,
//     edge/vertex counts, label-table size, FNV-1a payload checksum), a
//     length-prefixed label-name table, then 12-byte edge records
//     {u:u32, v:u32, label_u:u16, label_v:u16}. Stream ids are positions
//     and are not stored. The writer back-patches counts and checksum on
//     Close(), so streams can be appended without knowing their length up
//     front. Truncation, magic/version mismatches and checksum drift all
//     produce actionable std::runtime_errors on read.
//
//   * Text ("# loom-edge-stream v1", line oriented, '#' comments): a
//     counts line "N <vertices> <edges>", one "L <name>" line per label in
//     LabelId order (graph_io.h's convention), then "E <u> <v> <lu> <lv>"
//     lines. Inspectable with standard tools; no checksum.
//
// io::FileEdgeSource reads either format (sniffed from the first bytes)
// through the engine's pull interface in caller-sized batches — memory is
// bounded by the batch span, never by the stream length, which is what
// lets experiments replay datasets larger than RAM.

#ifndef LOOM_IO_EDGE_STREAM_IO_H_
#define LOOM_IO_EDGE_STREAM_IO_H_

#include <atomic>
#include <cstdint>
#include <fstream>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "engine/edge_source.h"
#include "graph/label_registry.h"
#include "stream/stream_edge.h"

namespace loom {
namespace io {

enum class StreamFormat {
  kBinary,  // "LOOMES" header, 12-byte records, checksummed
  kText,    // "# loom-edge-stream v1", L/E lines
};

/// Parses "binary"/"text"; false on anything else.
bool ParseStreamFormat(std::string_view name, StreamFormat* out);
std::string ToString(StreamFormat format);

/// Everything a stream file's header declares.
struct EdgeStreamInfo {
  StreamFormat format = StreamFormat::kBinary;
  uint64_t edge_count = 0;
  /// Number of distinct vertex ids the stream may mention (dense [0, n));
  /// what EngineOptions::expected_vertices should be sized with.
  uint64_t vertex_count = 0;
  /// Label names in LabelId order (the stream's label table).
  std::vector<std::string> labels;
};

/// Streams edges to a file. Append in arrival order, then Close() — the
/// binary writer back-patches the header's counts and checksum, so the
/// total edge count need not be known up front. Throws std::runtime_error
/// on I/O failure.
class EdgeStreamWriter {
 public:
  /// Creates/truncates `path`. The label table is captured from `registry`
  /// at construction; `vertex_count` is the dense vertex-id bound persisted
  /// for readers to size partitioners with.
  EdgeStreamWriter(const std::string& path,
                   const graph::LabelRegistry& registry, uint64_t vertex_count,
                   StreamFormat format = StreamFormat::kBinary);
  ~EdgeStreamWriter();  // closes (best effort) if Close() was not called

  EdgeStreamWriter(const EdgeStreamWriter&) = delete;
  EdgeStreamWriter& operator=(const EdgeStreamWriter&) = delete;

  void Append(const stream::StreamEdge& e);
  void AppendBatch(std::span<const stream::StreamEdge> batch);

  /// Pushes everything appended so far to the OS so a tailing reader (a
  /// follow-mode FileEdgeSource) can see it. Counts and checksum are NOT
  /// patched — that stays Close()'s job; tailing readers ignore them.
  /// No-op after Close. Throws on I/O failure.
  void Flush();

  /// Finalises the file (binary: seeks back and patches edge count +
  /// checksum). Idempotent. Throws on I/O failure.
  void Close();

  uint64_t edges_written() const { return edges_written_; }

 private:
  std::string path_;
  std::ofstream out_;
  StreamFormat format_;
  uint64_t edges_written_ = 0;
  uint64_t checksum_;
  std::streampos count_offset_;  // text: where the padded edge count lives
  bool closed_ = false;
};

/// Drains `source` (from its current position) into a new stream file at
/// `path`; returns the number of edges written.
uint64_t WriteEdgeStream(const std::string& path,
                         const graph::LabelRegistry& registry,
                         uint64_t vertex_count, engine::EdgeSource* source,
                         StreamFormat format = StreamFormat::kBinary);

/// How a FileEdgeSource behaves when it reaches the end of the data
/// currently on disk. The default is the classic offline contract: the
/// header's declared edge count is the stream length and reading past it is
/// a truncation error.
struct FollowOptions {
  /// Tail the file as it grows ("tail -f" for edge streams): NextBatch
  /// ignores the header's edge count and checksum (both are back-patched on
  /// Close, so they are stale on a live file), consumes only COMPLETE
  /// records (a partially flushed record/line is re-read once its tail
  /// lands), and polls at end-of-data instead of reporting exhaustion. The
  /// label table and vertex bound are still validated — the writer emits
  /// them whole before the first edge, so they are never stale.
  bool follow = false;
  /// How long to sleep between polls at end-of-data.
  int poll_interval_ms = 20;
  /// Optional stop signal. When it reads true, a polling NextBatch (or a
  /// constructor / SkipTo still waiting for data) gives up: NextBatch
  /// returns 0 and the source reports exhausted from then on.
  const std::atomic<bool>* stop = nullptr;
};

/// Pull-based source over a stream file (either format, sniffed). Reads
/// batches of at most the caller's span size; holds no per-stream state
/// besides the file handle, so memory stays bounded for streams larger
/// than RAM. Construction validates the header (bad magic, unsupported
/// version, malformed counts) and every NextBatch validates what it reads
/// (truncation, malformed records, and — once the binary stream is fully
/// consumed — the payload checksum), throwing std::runtime_error with the
/// offending path and detail.
class FileEdgeSource : public engine::EdgeSource {
 public:
  explicit FileEdgeSource(const std::string& path);

  /// Follow-mode construction waits (polling) for the file to exist and for
  /// its header to be completely written — text streams additionally wait
  /// for the first edge line, the only unambiguous end-of-header marker.
  /// Definitive errors (bad magic, unsupported version, malformed header
  /// lines) still throw immediately; a stop signal while waiting throws
  /// std::runtime_error too, since no valid source can be built.
  FileEdgeSource(const std::string& path, const FollowOptions& follow);

  size_t NextBatch(std::span<stream::StreamEdge> out) override;
  size_t SizeHint() const override { return info_.edge_count; }
  void Reset() override;

  /// Positions the source so the next edge read has id `stream_id` — the
  /// checkpoint-resume cursor (Session::edges_ingested()). Binary streams
  /// seek directly; text streams rewind and skip forward. Skipping past 0
  /// disables the end-of-stream payload checksum (it covers the full
  /// payload, which a resumed reader never sees); Reset() re-arms it.
  /// Throws if `stream_id` exceeds the declared edge count.
  void SkipTo(uint64_t stream_id);

  const EdgeStreamInfo& info() const { return info_; }

  /// Interns the file's label table into `registry` (in table order).
  /// Returns false and fills `*error` if `registry` already maps one of the
  /// names to a different id — mixing incompatible label spaces is the
  /// classic silent-corruption path for assignment files.
  bool InternLabels(graph::LabelRegistry* registry, std::string* error) const;

 private:
  void ReadHeader();  // positions the file at the first edge record
  /// Follow-mode batch fill: blocks (polling) until at least one complete
  /// record is available or the stop signal fires (then returns 0).
  size_t ReadFollow(std::span<stream::StreamEdge> out);
  bool Stopped() const;
  void Poll() const;

  std::string path_;
  std::ifstream in_;
  FollowOptions follow_;
  EdgeStreamInfo info_;
  std::streampos data_start_;
  std::vector<char> buffer_;       // binary read buffer, batch-bounded
  uint64_t pos_ = 0;               // edges consumed
  uint64_t checksum_;              // running FNV-1a (binary only)
  uint64_t expected_checksum_ = 0; // header's claim (binary only)
  bool verify_checksum_ = true;    // false after a mid-stream SkipTo
  bool exhausted_ = false;
};

}  // namespace io
}  // namespace loom

#endif  // LOOM_IO_EDGE_STREAM_IO_H_
