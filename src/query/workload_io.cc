#include "query/workload_io.h"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/string_util.h"

namespace loom {
namespace query {

namespace {

[[noreturn]] void Fail(size_t line_no, const std::string& why) {
  throw std::runtime_error("workload parse error at line " +
                           std::to_string(line_no) + ": " + why);
}

std::vector<graph::LabelId> ParseLabels(const std::string& spec,
                                        graph::LabelRegistry* registry,
                                        char delim) {
  std::vector<graph::LabelId> labels;
  for (const std::string& part : util::Split(spec, delim)) {
    const std::string name = util::Trim(part);
    if (name.empty()) continue;
    labels.push_back(registry->Intern(name));
  }
  return labels;
}

// Generic form: edges:<label0>,<label1>,...:<u>-<v>;<u>-<v>;...
graph::PatternGraph ParseEdgesForm(const std::string& body, size_t line_no,
                                   graph::LabelRegistry* registry) {
  const std::vector<std::string> parts = util::Split(body, ':');
  if (parts.size() != 2) Fail(line_no, "edges form needs <labels>:<edges>");
  graph::PatternGraph p;
  for (graph::LabelId l : ParseLabels(parts[0], registry, ',')) p.AddVertex(l);
  for (const std::string& edge_spec : util::Split(parts[1], ';')) {
    const std::string trimmed = util::Trim(edge_spec);
    if (trimmed.empty()) continue;
    const std::vector<std::string> uv = util::Split(trimmed, '-');
    if (uv.size() != 2) Fail(line_no, "edge must be <u>-<v>: " + trimmed);
    const unsigned long u = std::stoul(uv[0]);
    const unsigned long v = std::stoul(uv[1]);
    if (u >= p.NumVertices() || v >= p.NumVertices()) {
      Fail(line_no, "edge endpoint out of range: " + trimmed);
    }
    if (!p.AddEdge(static_cast<graph::VertexId>(u),
                   static_cast<graph::VertexId>(v))) {
      Fail(line_no, "self loop or duplicate edge: " + trimmed);
    }
  }
  return p;
}

}  // namespace

Workload ReadWorkload(std::istream& is, graph::LabelRegistry* registry) {
  Workload w;
  std::string line;
  size_t line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    line = util::Trim(line);
    if (line.empty() || line[0] == '#') continue;

    std::istringstream ls(line);
    std::string name, freq_str, shape;
    if (!(ls >> name >> freq_str >> shape)) {
      Fail(line_no, "expected '<name> <frequency> <shape-spec>'");
    }
    // Finite-only parse: std::stod would accept "nan", and NaN slips past
    // the positivity check below (NaN <= 0.0 is false) into every weighted
    // ipt computation.
    double frequency = 0.0;
    if (!util::ParseFiniteDouble(freq_str, &frequency)) {
      Fail(line_no, "bad frequency: " + freq_str);
    }
    if (frequency <= 0.0) Fail(line_no, "frequency must be positive");

    const size_t colon = shape.find(':');
    if (colon == std::string::npos) {
      Fail(line_no, "shape must be path:/cycle:/star:/edges:");
    }
    const std::string kind = shape.substr(0, colon);
    const std::string body = shape.substr(colon + 1);

    graph::PatternGraph pattern;
    if (kind == "path") {
      auto labels = ParseLabels(body, registry, '-');
      if (labels.size() < 2) Fail(line_no, "path needs >= 2 labels");
      pattern = graph::PatternGraph::Path(labels);
    } else if (kind == "cycle") {
      auto labels = ParseLabels(body, registry, '-');
      if (labels.size() < 3) Fail(line_no, "cycle needs >= 3 labels");
      pattern = graph::PatternGraph::Cycle(labels);
    } else if (kind == "star") {
      const std::vector<std::string> parts = util::Split(body, ':');
      if (parts.size() != 2) Fail(line_no, "star needs <center>:<leaves>");
      auto center = registry->Intern(util::Trim(parts[0]));
      auto leaves = ParseLabels(parts[1], registry, ',');
      if (leaves.empty()) Fail(line_no, "star needs >= 1 leaf");
      pattern = graph::PatternGraph::Star(center, leaves);
    } else if (kind == "edges") {
      pattern = ParseEdgesForm(body, line_no, registry);
    } else {
      Fail(line_no, "unknown shape kind '" + kind + "'");
    }
    if (!pattern.IsConnected() || pattern.NumEdges() == 0) {
      Fail(line_no, "pattern must be connected with >= 1 edge");
    }
    w.Add(name, std::move(pattern), frequency);
  }
  return w;
}

void WriteWorkload(const Workload& w, const graph::LabelRegistry& registry,
                   std::ostream& os) {
  os << "# loom workload: " << w.size() << " queries\n";
  for (const Query& q : w.queries()) {
    os << q.name << " " << q.frequency << " edges:";
    for (size_t i = 0; i < q.pattern.NumVertices(); ++i) {
      if (i) os << ",";
      os << registry.Name(q.pattern.label(static_cast<graph::VertexId>(i)));
    }
    os << ":";
    for (size_t i = 0; i < q.pattern.NumEdges(); ++i) {
      if (i) os << ";";
      const graph::Edge& e = q.pattern.edge(static_cast<graph::EdgeId>(i));
      os << e.u << "-" << e.v;
    }
    os << "\n";
  }
}

Workload ReadWorkloadFile(const std::string& path,
                          graph::LabelRegistry* registry) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("cannot open for read: " + path);
  return ReadWorkload(is, registry);
}

void WriteWorkloadFile(const Workload& w, const graph::LabelRegistry& registry,
                       const std::string& path) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("cannot open for write: " + path);
  WriteWorkload(w, registry, os);
}

}  // namespace query
}  // namespace loom
