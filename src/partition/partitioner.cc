#include "partition/partitioner.h"

namespace loom {
namespace partition {

bool Partitioner::SaveState(io::CheckpointWriter* w, std::string* error) const {
  (void)error;
  // Table-only snapshot: correct for backends whose placement decisions
  // depend only on already-made assignments (hash reads nothing else).
  // Backends with auxiliary streaming state (ldg/fennel's seen-graph, loom's
  // window + matchList) override and write more sections.
  partitioning().SaveTo(w);
  return true;
}

bool Partitioner::RestoreState(io::CheckpointReader* r, std::string* error) {
  Partitioning* p = MutablePartitioning();
  if (p == nullptr) {
    if (error != nullptr) {
      *error = "backend '" + name() + "' does not support checkpoint restore";
    }
    return false;
  }
  p->LoadFrom(r);
  return true;
}

}  // namespace partition
}  // namespace loom
