// Chunk-stable paged adjacency storage.
//
// DynamicGraph's original layout — one std::vector<VertexId> per vertex —
// pays a small heap allocation per vertex and, worse, reallocates a
// vertex's neighbour array as it grows, which is exactly what forbids the
// sharded backend from letting workers append batch N+1 while the
// sequencer still reads batch N's adjacency (ROADMAP item 1). The arena
// replaces that layout with pages carved from large slabs and chained per
// vertex. Page capacities grow geometrically along a chain — first page
// kFirstPageCapacity entries, doubling up to the configured maximum — so
// the low-degree majority of vertices stays as cache-dense as the small
// vectors it replaced (a degree-3 vertex occupies one 32-byte page, not a
// maximum-size one) while hubs still converge to large contiguous spans
// for the SIMD tally kernels:
//
//   chain(v):  [4 slots] -> [8 slots] -> ... -> [64] -> [64 tail]
//
// Chunk-stability is the load-bearing property: a page pointer, once
// published, is never reallocated or freed until the arena dies, so a
// reader can walk a chain lock-free while the single writer appends.
// Publication protocol (the only synchronisation in the structure):
//
//   writer:  write slot / link page (plain stores), then
//            count.store(n + 1, release)
//   reader:  n = count.load(acquire), then walk at most n entries
//
// The acquire/release pair on `count` orders every prior plain store
// (head, page links, page capacities, slot values) before the reader's
// plain loads, so the reader never touches a byte the writer might still
// be writing; entries beyond the acquired count — including a tail slot
// being filled right now — are simply outside the reader's range. One
// writer per arena; readers must not overlap chain-table *growth*
// (Reserve/EnsureSlot), the same contract the vector-of-vectors layout
// had. Pinned under TSan by tests/adjacency_arena_test.cc's
// writer-appends/reader-walks stress.
//
// Checkpoint layout per chain is U64 count + raw entries — byte-identical
// to the PodVec(std::vector) encoding the pre-arena DynamicGraph wrote, so
// old checkpoints load transparently and new files hash identically.

#ifndef LOOM_GRAPH_ADJACENCY_ARENA_H_
#define LOOM_GRAPH_ADJACENCY_ARENA_H_

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <iterator>
#include <memory>
#include <vector>

#include "graph/types.h"
#include "io/checkpoint.h"

namespace loom {
namespace graph {

/// One link of a vertex's neighbour chain. The slot array lives
/// immediately after the header in the slab (the arena carves both with
/// one bump-pointer step). `next`, `capacity` and the slots are plain
/// fields on purpose: every write to them happens-before the release store
/// of the owning chain's count that makes them reachable, so readers that
/// bound their walk by an acquired count need no further atomics.
struct AdjacencyPage {
  AdjacencyPage* next = nullptr;
  uint32_t capacity = 0;

  VertexId* slots() { return reinterpret_cast<VertexId*>(this + 1); }
  const VertexId* slots() const {
    return reinterpret_cast<const VertexId*>(this + 1);
  }
};

/// A bounded view over a vertex's neighbours: either a page chain (the
/// arena's native form) or a flat array (empty ranges, tests). Value
/// semantics — copying is two pointers and a counter. The view stays
/// valid while the arena lives and the chain only grows, i.e. for as long
/// as the span it replaced would have.
///
/// Element iteration covers range-for consumers (Fennel, equal
/// opportunism's Bid); ForEachChunk hands each page's contiguous slot span
/// to SIMD kernels, whose accumulate-into-counts contract composes across
/// chunks.
class NeighborRange {
 public:
  NeighborRange() = default;

  static NeighborRange OfChain(const AdjacencyPage* head, size_t count) {
    NeighborRange r;
    r.head_ = head;
    r.count_ = count;
    return r;
  }

  static NeighborRange Flat(const VertexId* data, size_t count) {
    NeighborRange r;
    r.flat_ = data;
    r.count_ = count;
    return r;
  }

  size_t size() const { return count_; }
  bool empty() const { return count_ == 0; }

  class const_iterator {
   public:
    using iterator_category = std::forward_iterator_tag;
    using value_type = VertexId;
    using difference_type = std::ptrdiff_t;
    using pointer = const VertexId*;
    using reference = const VertexId&;

    const_iterator() = default;

    reference operator*() const { return *cur_; }

    const_iterator& operator++() {
      ++cur_;
      --remaining_;
      if (cur_ == chunk_end_ && remaining_ > 0) {
        page_ = page_->next;
        cur_ = page_->slots();
        const size_t cap = page_->capacity;
        chunk_end_ = cur_ + (remaining_ < cap ? remaining_ : cap);
      }
      return *this;
    }

    const_iterator operator++(int) {
      const_iterator t = *this;
      ++*this;
      return t;
    }

    /// Iterators from the same range compare by how many entries remain —
    /// the only state that differs between a mid-walk iterator and end().
    friend bool operator==(const const_iterator& a, const const_iterator& b) {
      return a.remaining_ == b.remaining_;
    }
    friend bool operator!=(const const_iterator& a, const const_iterator& b) {
      return a.remaining_ != b.remaining_;
    }

   private:
    friend class NeighborRange;
    const AdjacencyPage* page_ = nullptr;
    const VertexId* cur_ = nullptr;
    const VertexId* chunk_end_ = nullptr;
    size_t remaining_ = 0;
  };

  const_iterator begin() const {
    const_iterator it;
    if (count_ == 0) return it;
    it.remaining_ = count_;
    if (head_ != nullptr) {
      const size_t cap = head_->capacity;
      it.page_ = head_;
      it.cur_ = head_->slots();
      it.chunk_end_ = it.cur_ + (count_ < cap ? count_ : cap);
    } else {
      it.cur_ = flat_;
      it.chunk_end_ = flat_ + count_;
    }
    return it;
  }

  const_iterator end() const { return {}; }

  /// Invokes fn(const VertexId* data, size_t n) once per contiguous chunk,
  /// in order. The SIMD seam: per-page spans go to TallyGatherU32, whose
  /// scalar small-span path absorbs the per-page tails.
  template <typename Fn>
  void ForEachChunk(Fn&& fn) const {
    if (count_ == 0) return;
    if (head_ == nullptr) {
      fn(flat_, count_);
      return;
    }
    const AdjacencyPage* p = head_;
    size_t left = count_;
    while (true) {
      const size_t cap = p->capacity;
      const size_t n = left < cap ? left : cap;
      fn(p->slots(), n);
      left -= n;
      if (left == 0) return;
      p = p->next;
    }
  }

  /// Materialises the range (tests and diagnostics; O(n) with allocation —
  /// not for hot paths).
  std::vector<VertexId> ToVector() const {
    std::vector<VertexId> out;
    out.reserve(count_);
    for (const VertexId v : *this) out.push_back(v);
    return out;
  }

 private:
  const AdjacencyPage* head_ = nullptr;  // chain mode when non-null
  const VertexId* flat_ = nullptr;       // flat mode (or empty)
  size_t count_ = 0;
};

/// The arena: per-vertex page chains over slab storage, single writer,
/// lock-free bounded readers. The configured capacity is the MAXIMUM
/// entries per page (default 64; override with the LOOM_ADJ_PAGE
/// environment variable or an explicit constructor value — CI runs a
/// page=4 leg so chain-walking edge cases stay exercised). Chains start at
/// min(kFirstPageCapacity, max) and double per page up to the max, so the
/// layout stays dense for low-degree vertices without capping hub spans.
class AdjacencyArena {
 public:
  static constexpr uint32_t kDefaultPageCapacity = 64;
  static constexpr uint32_t kFirstPageCapacity = 4;
  static constexpr uint32_t kMaxPageCapacity = 65536;

  /// 0 → LOOM_ADJ_PAGE if set and valid, else kDefaultPageCapacity;
  /// anything else is clamped to [1, kMaxPageCapacity].
  static uint32_t ResolvePageCapacity(uint32_t requested);

  explicit AdjacencyArena(uint32_t page_capacity = 0)
      : cap_(ResolvePageCapacity(page_capacity)) {}

  AdjacencyArena(AdjacencyArena&&) = default;
  AdjacencyArena& operator=(AdjacencyArena&&) = default;
  AdjacencyArena(const AdjacencyArena&) = delete;
  AdjacencyArena& operator=(const AdjacencyArena&) = delete;

  /// Re-resolves the page capacity; only legal before any append (the
  /// sharded backend configures default-constructed shard parts).
  void ConfigurePageCapacity(uint32_t requested) {
    assert(slabs_.empty() && "page capacity is fixed once pages exist");
    cap_ = ResolvePageCapacity(requested);
  }

  uint32_t page_capacity() const { return cap_; }

  /// Grows the chain table to at least n slots. NOT safe under concurrent
  /// readers (the table may reallocate) — same contract as the
  /// vector-of-vectors layout this replaced.
  void Reserve(size_t n) {
    if (chains_.size() < n) chains_.resize(n);
  }

  void EnsureSlot(VertexId v) {
    if (v >= chains_.size()) chains_.resize(static_cast<size_t>(v) + 1);
  }

  /// Pre-carves slab storage for ~`expected_entries` adjacency entries
  /// (2m for an undirected graph of m edges), hoisting the slab
  /// allocations ROADMAP item 1 flags as a barrier point off the append
  /// hot path. Purely an allocation hint: page layout, neighbour order and
  /// the checkpoint encoding are identical with or without it, and
  /// underestimates simply fall back to on-demand slabs. Same
  /// writer-private contract as Reserve.
  void ReserveEntries(uint64_t expected_entries);

  size_t NumSlots() const { return chains_.size(); }

  /// Appends w to v's chain and publishes it (release). Single writer; v's
  /// slot must exist (EnsureSlot/Reserve).
  void Append(VertexId v, VertexId w);

  /// Published length of v's chain (acquire; 0 for out-of-range v).
  uint32_t Degree(VertexId v) const {
    if (v >= chains_.size()) return 0;
    return chains_[v].count.load(std::memory_order_acquire);
  }

  /// View over the published entries of v's chain.
  NeighborRange Neighbors(VertexId v) const {
    if (v >= chains_.size()) return {};
    const Chain& c = chains_[v];
    const uint32_t n = c.count.load(std::memory_order_acquire);
    if (n == 0) return {};
    return NeighborRange::OfChain(c.head, n);
  }

  /// View over the first `visible` published entries (the sharded
  /// sequencer's cursor reads). visible must not exceed the published
  /// count — a cursor outrunning the appends is a sequencing bug.
  NeighborRange Prefix(VertexId v, uint32_t visible) const {
    if (visible == 0 || v >= chains_.size()) return {};
    const Chain& c = chains_[v];
    assert(visible <= c.count.load(std::memory_order_acquire));
    return NeighborRange::OfChain(c.head, visible);
  }

  /// Sum of all chain lengths (load-time validation, stats).
  uint64_t TotalEntries() const { return total_entries_; }

  /// Writes v's chain into the open section as U64 count + raw entries —
  /// byte-identical to CheckpointWriter::PodVec of the equivalent vector.
  void SaveChain(io::CheckpointWriter* w, VertexId v) const;

  /// Reads one SaveChain/PodVec-encoded chain into v (which must be
  /// empty), building pages directly.
  void LoadChain(io::CheckpointReader* r, VertexId v);

 private:
  struct Chain {
    AdjacencyPage* head = nullptr;
    AdjacencyPage* tail = nullptr;
    std::atomic<uint32_t> count{0};
    // Writer-private fill level of the tail page; readers derive chunk
    // bounds from the acquired count and per-page capacities instead.
    uint32_t tail_used = 0;

    Chain() = default;
    // Moves exist for chain-table growth and arena moves only — never
    // under concurrent readers (see Reserve).
    Chain(Chain&& o) noexcept
        : head(o.head),
          tail(o.tail),
          count(o.count.load(std::memory_order_relaxed)),
          tail_used(o.tail_used) {}
    Chain& operator=(Chain&& o) noexcept {
      head = o.head;
      tail = o.tail;
      count.store(o.count.load(std::memory_order_relaxed),
                  std::memory_order_relaxed);
      tail_used = o.tail_used;
      return *this;
    }
    Chain(const Chain&) = delete;
    Chain& operator=(const Chain&) = delete;
  };

  /// First-page capacity under the configured maximum.
  uint32_t FirstCapacity() const {
    return cap_ < kFirstPageCapacity ? cap_ : kFirstPageCapacity;
  }

  /// Capacity of the page following one of capacity `prev` (doubling,
  /// saturating at the configured maximum).
  uint32_t NextCapacity(uint32_t prev) const {
    const uint32_t doubled = prev * 2;
    return doubled > cap_ ? cap_ : doubled;
  }

  AdjacencyPage* NewPage(uint32_t capacity);

  std::vector<Chain> chains_;
  std::vector<std::unique_ptr<std::byte[]>> slabs_;
  std::byte* slab_cursor_ = nullptr;
  size_t slab_bytes_left_ = 0;
  uint32_t cap_;
  uint64_t total_entries_ = 0;
};

}  // namespace graph
}  // namespace loom

#endif  // LOOM_GRAPH_ADJACENCY_ARENA_H_
