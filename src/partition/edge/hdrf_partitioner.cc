#include "partition/edge/hdrf_partitioner.h"

#include <cmath>
#include <stdexcept>

namespace loom {
namespace partition {
namespace edge {

HdrfPartitioner::HdrfPartitioner(const PartitionerConfig& config,
                                 double lambda, double epsilon)
    : EdgePartitioner(config), lambda_(lambda), epsilon_(epsilon) {
  // NaN fails every ordered comparison, so "lambda_ < 0.0" alone would let
  // hdrf:lambda=nan through — every score would be NaN, "score > best"
  // would never fire and all edges would silently land in partition 0.
  // Reject non-finite values explicitly.
  if (!std::isfinite(lambda_) || lambda_ < 0.0) {
    throw std::invalid_argument("hdrf: lambda must be finite and >= 0");
  }
  if (!std::isfinite(epsilon_) || epsilon_ <= 0.0) {
    throw std::invalid_argument("hdrf: epsilon must be finite and > 0");
  }
}

graph::PartitionId HdrfPartitioner::PlaceEdge(const stream::StreamEdge& e) {
  return HdrfGreedyPick(e, lambda_, epsilon_);
}

void HdrfPartitioner::SaveExtra(io::CheckpointWriter* w) const {
  w->F64(lambda_);
  w->F64(epsilon_);
}

bool HdrfPartitioner::RestoreExtra(io::CheckpointReader* r,
                                   std::string* error) {
  // Bit-exact F64 comparison: the session's options fingerprint already
  // catches spec drift, but a checkpoint can also be restored through the
  // partitioner API directly — defence in depth.
  const double saved_lambda = r->F64();
  const double saved_epsilon = r->F64();
  if (saved_lambda != lambda_ || saved_epsilon != epsilon_) {
    *error = "hdrf parameter mismatch: checkpoint has lambda=" +
             std::to_string(saved_lambda) + " epsilon=" +
             std::to_string(saved_epsilon) + ", this instance has lambda=" +
             std::to_string(lambda_) + " epsilon=" + std::to_string(epsilon_);
    return false;
  }
  return true;
}

}  // namespace edge
}  // namespace partition
}  // namespace loom
