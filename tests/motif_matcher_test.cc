#include "motif/motif_matcher.h"

#include <gtest/gtest.h>

#include "datasets/workloads.h"
#include "graph/label_registry.h"

namespace loom {
namespace motif {
namespace {

using stream::SlidingWindow;
using stream::StreamEdge;

// Fixture around the Fig. 1 workload: motifs at T=40% are a-b, b-c, a-b-c;
// at T=5% every sub-graph (up to the 4-edge square) is a motif.
class MatcherTest : public ::testing::Test {
 protected:
  explicit MatcherTest(double threshold = 0.4)
      : values_(4, 251, 0xC0FFEE),
        calc_(&values_),
        trie_(&calc_, threshold),
        window_(100) {
    workload_ = datasets::Figure1Workload(&registry_);
    for (const auto& q : workload_.queries()) {
      trie_.AddQuery(q.pattern, q.frequency);
    }
    matcher_ = std::make_unique<MotifMatcher>(&trie_, &calc_);
    a_ = registry_.Find("a");
    b_ = registry_.Find("b");
    c_ = registry_.Find("c");
    d_ = registry_.Find("d");
  }

  StreamEdge E(graph::EdgeId id, graph::VertexId u, graph::LabelId lu,
               graph::VertexId v, graph::LabelId lv) {
    StreamEdge e;
    e.id = id;
    e.u = u;
    e.v = v;
    e.label_u = lu;
    e.label_v = lv;
    return e;
  }

  // Pushes into the window and runs the matcher.
  void Feed(const StreamEdge& e) {
    window_.Push(e);
    matcher_->OnEdgeAdded(e, window_, &ml_);
  }

  graph::LabelRegistry registry_;
  query::Workload workload_;
  signature::LabelValues values_;
  signature::SignatureCalculator calc_;
  tpstry::Tpstry trie_;
  SlidingWindow window_;
  MatchList ml_;
  std::unique_ptr<MotifMatcher> matcher_;
  graph::LabelId a_, b_, c_, d_;
};

TEST_F(MatcherTest, AdmissionTest) {
  EXPECT_NE(matcher_->SingleEdgeMotif(E(0, 1, a_, 2, b_)), nullptr);
  EXPECT_NE(matcher_->SingleEdgeMotif(E(0, 1, b_, 2, c_)), nullptr);
  // c-d occurs in q3 only (10% support): in the trie but not a motif.
  EXPECT_EQ(matcher_->SingleEdgeMotif(E(0, 1, c_, 2, d_)), nullptr);
  // a-d occurs in no query at all.
  EXPECT_EQ(matcher_->SingleEdgeMotif(E(0, 1, a_, 2, d_)), nullptr);
}

TEST_F(MatcherTest, SingleEdgeMatchRegistered) {
  Feed(E(0, 1, a_, 2, b_));
  EXPECT_EQ(ml_.NumLive(), 1u);
  auto at1 = ml_.LiveAt(1);
  ASSERT_EQ(at1.size(), 1u);
  EXPECT_EQ(ml_.match(at1[0]).edges, (std::vector<graph::EdgeId>{0}));
  EXPECT_EQ(matcher_->stats().single_edge_matches, 1u);
}

TEST_F(MatcherTest, ExtensionFormsTwoEdgeMotif) {
  Feed(E(0, 1, a_, 2, b_));
  Feed(E(1, 2, b_, 3, c_));
  // Matches: {e0} (a-b), {e1} (b-c), {e0,e1} (a-b-c).
  EXPECT_EQ(ml_.NumLive(), 3u);
  EXPECT_EQ(matcher_->stats().extension_matches, 1u);
  auto at3 = ml_.LiveAt(3);
  bool found_abc = false;
  for (MatchHandle h : at3) {
    if (ml_.match(h).edges.size() == 2) found_abc = true;
  }
  EXPECT_TRUE(found_abc);
}

TEST_F(MatcherTest, NonAdjacentEdgesDoNotCombine) {
  Feed(E(0, 1, a_, 2, b_));
  Feed(E(1, 5, a_, 6, b_));
  EXPECT_EQ(ml_.NumLive(), 2u);  // just the two singles
  EXPECT_EQ(matcher_->stats().extension_matches, 0u);
}

TEST_F(MatcherTest, AbaPathNotAMotifAtFortyPercent) {
  // a-b plus another a-b sharing the b vertex = a-b-a: support 30% < T.
  Feed(E(0, 1, a_, 2, b_));
  Feed(E(1, 3, a_, 2, b_));
  EXPECT_EQ(ml_.NumLive(), 2u);  // extensions rejected by motif filter
}

TEST_F(MatcherTest, DuplicateDiscoveryIsDeduped) {
  // Triangle-ish feeding order that could find a-b-c twice.
  Feed(E(0, 1, a_, 2, b_));
  Feed(E(1, 2, b_, 3, c_));
  size_t live_before = ml_.NumLive();
  // Re-feeding the same structural edge with a NEW id forms new matches (it
  // is a distinct stream element), but the existing pairs stay deduped.
  Feed(E(2, 4, a_, 2, b_));
  EXPECT_GE(ml_.NumLive(), live_before + 1);
}

// Lower threshold: every Fig. 1 sub-graph is a motif, enabling joins.
class JoinMatcherTest : public MatcherTest {
 protected:
  JoinMatcherTest() : MatcherTest(0.05) {}
};

TEST_F(JoinMatcherTest, BridgingEdgeJoinsTwoMatches) {
  // Two disjoint a-b edges, then a bridge making the 3-edge path b-a-b-a:
  // vertices 1(a)-2(b) and 3(a)-4(b); bridge (2,3).
  Feed(E(0, 1, a_, 2, b_));
  Feed(E(1, 3, a_, 4, b_));
  ASSERT_EQ(ml_.NumLive(), 2u);
  Feed(E(2, 2, b_, 3, a_));
  // Expect at least: 3 singles, two 2-edge extensions ({e0,e2}, {e1,e2}) and
  // the 3-edge join {e0,e1,e2}.
  EXPECT_GE(matcher_->stats().extension_matches, 2u);
  EXPECT_GE(matcher_->stats().join_matches, 1u);
  bool found_three = false;
  for (MatchHandle h : ml_.LiveAt(2)) {
    if (ml_.match(h).edges.size() == 3) found_three = true;
  }
  EXPECT_TRUE(found_three);
}

TEST_F(JoinMatcherTest, SquareCompletesViaAllFourEdges) {
  // Fig. 1's q1: the a-b-a-b square 1(a)-2(b)-3(a)-4(b)-1.
  Feed(E(0, 1, a_, 2, b_));
  Feed(E(1, 2, b_, 3, a_));
  Feed(E(2, 3, a_, 4, b_));
  Feed(E(3, 4, b_, 1, a_));
  bool found_square = false;
  for (MatchHandle h : ml_.LiveAt(1)) {
    if (ml_.match(h).edges.size() == 4) found_square = true;
  }
  EXPECT_TRUE(found_square) << "the 4-edge square motif must be matched";
}

TEST_F(JoinMatcherTest, MatchesNeverExceedLargestMotif) {
  // Feed a long a-b-a-b-... path; no match may exceed the largest motif (4
  // edges, the square — but a 5-vertex path is not a sub-graph of any query,
  // so 4-edge *path* matches must not appear either).
  const uint32_t max_edges = trie_.MaxMotifEdges();
  for (graph::EdgeId i = 0; i < 12; ++i) {
    graph::LabelId lu = (i % 2 == 0) ? a_ : b_;
    graph::LabelId lv = (i % 2 == 0) ? b_ : a_;
    Feed(E(i, i, lu, i + 1, lv));
  }
  for (graph::VertexId v = 0; v <= 12; ++v) {
    for (MatchHandle h : ml_.LiveAt(v)) {
      const Match& m = ml_.match(h);
      EXPECT_LE(m.edges.size(), max_edges);
      // Paths of length 4 are not sub-graphs of q1/q2/q3.
      if (m.edges.size() == 4) {
        // Must be the square (4 vertices), not a path (5 vertices).
        EXPECT_EQ(m.vertices.size(), 4u);
      }
    }
  }
}

TEST_F(MatcherTest, StatsAccumulate) {
  Feed(E(0, 1, a_, 2, b_));
  Feed(E(1, 2, b_, 3, c_));
  const MatcherStats& s = matcher_->stats();
  EXPECT_EQ(s.edges_admitted, 2u);
  EXPECT_EQ(s.single_edge_matches, 2u);
  EXPECT_EQ(s.extension_matches, 1u);
}

}  // namespace
}  // namespace motif
}  // namespace loom
