// Table 2: time (ms) to partition 10k edges, for every dataset (including
// LUBM-4000, which is partitioned but never queried — exactly as in the
// paper) and every system.
//
// Besides the human-readable table this binary emits BENCH_throughput.json
// (path overridable via LOOM_BENCH_JSON): per dataset/system ingest
// throughput, partition quality (edge-cut, imbalance, assignment hash on
// fixed seeds), Loom's match-pool allocation-reuse counters, a Loom-only
// ingest section at the paper-default window t = 10000 (EngineOptions'
// default; the acceptance metric for perf PRs), sliding-window
// micro-latencies, and a "simd_kernels" section (ns/op of the util::simd
// hot-loop kernels, scalar vs the active dispatch level). tools/run_bench.sh
// diffs it against the committed baseline so partition quality can never
// silently drift while chasing throughput.
//
// Backend selection: set LOOM_BENCH_SYSTEMS to a ';'-separated list of
// registry specs (e.g. "fennel;loom:window_size=2000,alpha=0.5") to time
// arbitrary engine backends/configurations instead of the default four
// paper systems. Custom selections skip the paper-window section and are
// not comparable to the committed baseline (run_bench.sh skips the diff).
// NOTE: a spec that forces a simd level ("loom:simd=scalar") forces it
// process-wide and it STAYS forced for later specs in the list (simd=auto
// means keep-current, by design) — when comparing dispatch levels, force
// the level on every spec or use LOOM_SIMD for the whole run. Quality is
// unaffected either way (levels are bit-identical).
//
// Smoke mode: `table2_throughput --smoke [baseline.json]` runs a fixed
// tiny configuration (scale 0.05, window 1000, BFS, k=8) over every
// backend including "loom-sharded", asserts loom == loom-sharded
// bit-for-bit, and compares the deterministic quality triples
// (assignment hash, edge-cut, imbalance — no timings) against the
// committed baseline, exiting non-zero on drift. Registered with ctest as
// `bench_smoke`, so quality drift fails tier-1 — not only
// tools/run_bench.sh. A missing baseline is seeded from the current run
// (delete BENCH_smoke.json and rerun to re-golden intentionally).

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "datasets/dataset_registry.h"
#include "engine/engine.h"
#include "eval/experiment.h"
#include "eval/report.h"
#include "io/edge_stream_io.h"
#include "partition/partition_metrics.h"
#include "stream/sliding_window.h"
#include "util/rng.h"
#include "util/simd.h"
#include "util/string_util.h"
#include "util/table_writer.h"
#include "util/timer.h"

namespace {

using namespace loom;

/// LOOM_BENCH_SYSTEMS split on ';' (empty = the default four systems).
std::vector<std::string> BackendSpecs() {
  std::vector<std::string> specs;
  const char* env = std::getenv("LOOM_BENCH_SYSTEMS");
  if (env == nullptr) return specs;
  for (std::string& spec : util::Split(env, ';')) {
    if (!spec.empty()) specs.push_back(std::move(spec));
  }
  return specs;
}

void WriteSystemJson(bench::JsonWriter& jw, const eval::SystemResult& r) {
  jw.BeginObject();
  jw.Key("system").Value(r.label.empty() ? eval::ToString(r.system)
                                         : r.label);
  jw.Key("ms").Value(r.partition_ms);
  jw.Key("ms_per_10k_edges").Value(r.ms_per_10k_edges);
  jw.Key("eps").Value(r.edges_per_sec);
  jw.Key("edge_cut").Value(static_cast<uint64_t>(r.edge_cut));
  jw.Key("imbalance").Value(r.imbalance);
  jw.Key("assignment_hash").HexValue(r.assignment_hash);
  // Edge-partitioning quality triple (hdrf/dbh only; vertex backends
  // never set edge_balance). diff_bench.py exact-compares all three.
  if (r.edge_balance > 0.0) {
    jw.Key("replication_factor").Value(r.replication_factor);
    jw.Key("edge_balance").Value(r.edge_balance);
    jw.Key("edge_assignment_hash").HexValue(r.edge_assignment_hash);
  }
  // Whatever the backend reported through the final-stats observer event
  // (match-pool reuse and matcher totals for loom; deterministic, so safe
  // to keep in a diffed baseline). No backend-specific fields here —
  // except edge_assignment_hash, already emitted above in hex form (a
  // second decimal copy would be a duplicate JSON key).
  for (const auto& [name, value] : r.backend_stats) {
    if (name == "edge_assignment_hash") continue;
    jw.Key(name).Value(value);
  }
  jw.EndObject();
}

/// Ring-buffer micro-latencies: steady-state Push/Find/PopOldest cycle and
/// out-of-order Remove, ns per op.
void WriteWindowOpsJson(bench::JsonWriter& jw) {
  constexpr size_t kWindow = 10000;
  constexpr graph::EdgeId kOps = 2000000;
  stream::SlidingWindow w(kWindow);
  stream::StreamEdge e;
  e.label_u = e.label_v = 0;

  util::Timer t;
  uint64_t sink = 0;
  for (graph::EdgeId i = 0; i < kOps; ++i) {
    e.id = i;
    e.u = i * 2;
    e.v = i * 2 + 1;
    w.Push(e);
    const stream::StreamEdge* f = w.Find(i / 2 + i % (i / 2 + 1));
    if (f != nullptr) sink += f->u;
    if (w.OverCapacity()) sink += w.PopOldest()->id;
  }
  const double cycle_ns = 1e6 * t.ElapsedMs() / static_cast<double>(kOps);

  std::vector<graph::EdgeId> live;
  live.reserve(w.size());
  w.ForEach([&](const stream::StreamEdge& se) { live.push_back(se.id); });
  std::reverse(live.begin(), live.end());  // newest-first = out of order
  t.Start();
  for (graph::EdgeId id : live) sink += w.Remove(id) ? 1 : 0;
  const double remove_ns =
      live.empty() ? 0.0
                   : 1e6 * t.ElapsedMs() / static_cast<double>(live.size());

  jw.Key("window_ops").BeginObject();
  jw.Key("window").Value(static_cast<uint64_t>(kWindow));
  jw.Key("push_find_pop_cycle_ns").Value(cycle_ns);
  jw.Key("out_of_order_remove_ns").Value(remove_ns);
  jw.Key("checksum").Value(sink % 1000);
  jw.EndObject();
}

/// util::simd kernel micro-latencies, scalar vs the active dispatch level:
/// ns/op for the three ported hot loops at the shapes the streaming path
/// sees. Timing-only (diff_bench.py ignores this section); the committed
/// numbers document what the dispatch buys on the baseline machine, and
/// bench/micro_kernels.cc is the per-level interactive view.
void WriteSimdKernelsJson(bench::JsonWriter& jw) {
  using util::simd::Level;
  const bench::SimdKernelFixture fx;  // same shapes as bench/micro_kernels
  double totals[bench::SimdKernelFixture::kK];
  uint64_t sink = 0;
  auto time_ns = [&](auto&& body, size_t iters) {
    util::Timer t;
    for (size_t i = 0; i < iters; ++i) body(i);
    return 1e6 * t.ElapsedMs() / static_cast<double>(iters);
  };
  auto measure = [&](Level level, bench::JsonWriter& w) {
    w.BeginObject();
    w.Key("level").Value(util::simd::LevelName(level));
    w.Key("tally_gather_512_ns").Value(time_ns(
        [&](size_t it) {
          uint32_t counts[bench::SimdKernelFixture::kK] = {0};
          util::simd::TallyGatherU32(level, fx.table.data(), fx.table.size(),
                                     fx.idx.data() + (it * 512) % 2048, 512,
                                     bench::SimdKernelFixture::kK, counts);
          sink += counts[3];
        },
        20000));
    w.Key("bid_totals_24x8_ns").Value(time_ns(
        [&](size_t) {
          util::simd::BidTotals(level, fx.overlap.data(),
                                bench::SimdKernelFixture::kRows,
                                bench::SimdKernelFixture::kK, fx.residual,
                                fx.support, fx.count, totals);
          sink += static_cast<uint64_t>(totals[2]);
        },
        100000));
    uint32_t out[3];
    w.Key("edge_factors_ns").Value(time_ns(
        [&](size_t it) {
          util::simd::EdgeAdditionFactors(
              level, static_cast<uint32_t>(it % 249 + 1), 17, 33,
              static_cast<uint32_t>(it % 7 + 1), 91, 2, 251, out);
          sink += out[0];
        },
        500000));
    w.EndObject();
  };

  jw.Key("simd_kernels").BeginObject();
  jw.Key("active_level")
      .Value(util::simd::LevelName(util::simd::ActiveLevel()));
  jw.Key("levels").BeginArray();
  measure(util::simd::Level::kScalar, jw);
  if (util::simd::ActiveLevel() != util::simd::Level::kScalar) {
    measure(util::simd::ActiveLevel(), jw);
  }
  jw.EndArray();
  jw.Key("checksum").Value(sink % 1000);
  jw.EndObject();
}

// ---------------------------------------------------------------- smoke

/// Deterministic quality triple of `spec` on `ds` (tiny fixed config; no
/// timing fields, so the emitted JSON is byte-stable across runs).
struct SmokeQuality {
  uint64_t assignment_hash = 0;
  size_t edge_cut = 0;
  double imbalance = 0.0;
  // Edge-backend triple (0 for vertex partitioners; see partition/edge/).
  double replication_factor = 0.0;
  double edge_balance = 0.0;
  uint64_t edge_assignment_hash = 0;

  bool operator==(const SmokeQuality&) const = default;
};

bool RunSmokeSpec(const std::string& spec, const datasets::Dataset& ds,
                  SmokeQuality* out) {
  engine::EngineOptions options;
  options.k = 8;
  options.expected_vertices = ds.NumVertices();
  options.expected_edges = ds.NumEdges();
  options.window_size = 1000;
  std::string error;
  auto p = engine::BuildPartitioner(
      spec, options, {&ds.workload, ds.registry.size()}, &error);
  if (p == nullptr) {
    std::cerr << "smoke: building '" << spec << "' failed: " << error << "\n";
    return false;
  }
  auto source =
      engine::MakeEdgeSource(ds, stream::StreamOrder::kBreadthFirst, 0x10c5);
  engine::Drive(p.get(), source.get());
  out->assignment_hash =
      eval::HashAssignment(p->partitioning(), ds.NumVertices());
  out->edge_cut = partition::EdgeCut(ds.graph, p->partitioning());
  out->imbalance = partition::Imbalance(p->partitioning());
  engine::FinalStatsEvent stats;
  p->FillFinalStats(&stats);
  const uint64_t edge_assignments = stats.Get("edge_assignments");
  if (edge_assignments > 0) {
    const uint64_t vertices_seen = stats.Get("vertices_seen");
    out->replication_factor =
        vertices_seen > 0 ? static_cast<double>(stats.Get("replica_total")) /
                                static_cast<double>(vertices_seen)
                          : 0.0;
    out->edge_balance = static_cast<double>(stats.Get("max_part_edges")) *
                        p->partitioning().k() /
                        static_cast<double>(edge_assignments);
    out->edge_assignment_hash = stats.Get("edge_assignment_hash");
  }
  return true;
}

/// Fixed tiny-config quality sweep -> JSON string; compared byte-for-byte
/// against the committed baseline (every field is deterministic).
int RunSmoke(const std::string& baseline_path) {
  using namespace loom;
  constexpr double kScale = 0.05;
  const std::vector<std::string> specs = {
      "hash", "ldg",  "fennel",
      "loom", "loom-sharded:shards=3",
      // Edge partitioners: their triple is (replication factor, edge
      // balance, edge hash); the vertex-derived fields ride along too.
      "hdrf:lambda=1.1", "dbh", "hep:threshold_factor=4"};

  std::ostringstream json;
  bench::JsonWriter jw(json);
  jw.BeginObject();
  jw.Key("bench").Value("table2_smoke");
  jw.Key("scale").Value(kScale);
  jw.Key("window").Value(uint64_t{1000});
  jw.Key("k").Value(8);
  jw.Key("order").Value("bfs");
  jw.Key("datasets").BeginArray();
  for (auto id : datasets::AllDatasets()) {
    datasets::Dataset ds = datasets::MakeDataset(id, kScale);
    jw.BeginObject();
    jw.Key("dataset").Value(ds.meta.name);
    jw.Key("edges").Value(static_cast<uint64_t>(ds.NumEdges()));
    jw.Key("systems").BeginArray();
    SmokeQuality loom_q, sharded_q;
    for (const std::string& spec : specs) {
      SmokeQuality q;
      if (!RunSmokeSpec(spec, ds, &q)) return 2;
      if (spec == "loom") loom_q = q;
      if (spec.rfind("loom-sharded", 0) == 0) sharded_q = q;
      jw.BeginObject();
      jw.Key("system").Value(spec);
      jw.Key("assignment_hash").HexValue(q.assignment_hash);
      jw.Key("edge_cut").Value(static_cast<uint64_t>(q.edge_cut));
      jw.Key("imbalance").Value(q.imbalance);
      // Conditional, so the vertex-system records stay byte-identical to
      // pre-edge-backend baselines.
      if (q.edge_balance > 0.0) {
        jw.Key("replication_factor").Value(q.replication_factor);
        jw.Key("edge_balance").Value(q.edge_balance);
        jw.Key("edge_assignment_hash").HexValue(q.edge_assignment_hash);
      }
      jw.EndObject();
    }
    jw.EndArray();
    jw.EndObject();
    // The sharded backend's differential gate rides the smoke too.
    if (!(loom_q == sharded_q)) {
      std::cerr << "smoke: loom-sharded diverged from loom on "
                << ds.meta.name << " (hash " << std::hex
                << sharded_q.assignment_hash << " vs " << loom_q.assignment_hash
                << std::dec << ")\n";
      return 1;
    }
  }
  jw.EndArray();
  jw.EndObject();
  const std::string current = json.str();

  std::ifstream baseline_file(baseline_path);
  if (!baseline_file) {
    std::ofstream seed(baseline_path);
    if (!seed) {
      std::cerr << "smoke: cannot seed baseline " << baseline_path << "\n";
      return 2;
    }
    seed << current << "\n";
    std::cout << "smoke: no baseline at " << baseline_path
              << "; seeded it from this run\n";
    return 0;
  }
  std::stringstream buf;
  buf << baseline_file.rdbuf();
  std::string baseline = buf.str();
  while (!baseline.empty() &&
         (baseline.back() == '\n' || baseline.back() == '\r')) {
    baseline.pop_back();
  }
  if (baseline != current) {
    std::cerr << "smoke: quality drift vs " << baseline_path << "\n"
              << "  baseline: " << baseline << "\n"
              << "  current:  " << current << "\n"
              << "If the change is intentional, delete the baseline and "
                 "rerun to re-golden.\n";
    return 1;
  }
  std::cout << "smoke: quality matches " << baseline_path << " ("
            << specs.size() << " systems x "
            << datasets::AllDatasets().size() << " datasets)\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace loom;
  if (argc > 1 && std::strcmp(argv[1], "--smoke") == 0) {
    return RunSmoke(argc > 2 ? argv[2] : "BENCH_smoke.json");
  }
  bench::Banner("Table 2 — time to partition 10k edges", "Table 2");

  const std::vector<std::string> specs = BackendSpecs();

  std::vector<eval::ComparisonResult> results;
  for (auto id : datasets::AllDatasets()) {
    datasets::Dataset ds = datasets::MakeDataset(id, bench::BenchScale());
    eval::ExperimentConfig cfg;
    cfg.order = stream::StreamOrder::kBreadthFirst;
    cfg.window_size = bench::BenchWindow();
    auto source = engine::MakeEdgeSource(ds, cfg.order, cfg.stream_seed);

    eval::ComparisonResult cmp;
    cmp.dataset = ds.meta.name;
    cmp.k = cfg.k;
    cmp.stream_edges = source->SizeHint();
    if (specs.empty()) {
      for (auto s : eval::AllSystems()) {
        cmp.systems.push_back(eval::RunSystemTimingOnly(s, ds, *source, cfg));
      }
    } else {
      for (const std::string& spec : specs) {
        std::string error;
        auto r = eval::RunBackendTimingOnly(spec, ds, *source, cfg, &error);
        if (!r.has_value()) {
          std::cerr << "LOOM_BENCH_SYSTEMS: " << error << "\n";
          return 2;
        }
        cmp.systems.push_back(std::move(*r));
      }
    }
    results.push_back(std::move(cmp));
  }

  if (!specs.empty()) {
    // Custom backend selection: generic per-spec table, then the JSON dump.
    util::TableWriter t({"dataset", "backend", "ms / 10k edges", "eps",
                         "edge cut", "imbalance"});
    for (const auto& r : results) {
      for (const auto& s : r.systems) {
        t.AddRow({r.dataset, s.label,
                  util::TableWriter::Fmt(s.ms_per_10k_edges, 1),
                  util::TableWriter::Fmt(s.edges_per_sec, 0),
                  std::to_string(s.edge_cut),
                  util::TableWriter::Pct(s.imbalance)});
      }
    }
    t.Print(std::cout);
  } else {
    eval::PrintTimingTable(results, std::cout);

    // Loom's slowdown factor vs Fennel (paper: avg 2-3x, range 1.5-7.1).
    std::cout << "\nLoom / Fennel slowdown factors: ";
    for (const auto& r : results) {
      const auto* loom = r.Find(eval::System::kLoom);
      const auto* fennel = r.Find(eval::System::kFennel);
      std::cout << r.dataset << "="
                << util::TableWriter::Fmt(
                       loom->ms_per_10k_edges /
                           std::max(fennel->ms_per_10k_edges, 1e-9),
                       1)
                << "x ";
    }
    std::cout << "\n\nExpected shape (paper): Hash fastest; LDG ~ Fennel; Loom "
                 "2-3x slower on average\n(the paper reports 129-240 ms per "
                 "10k on 2016 hardware; absolute numbers differ).\n";
  }

  // ------------------------------------------------------------- JSON dump
  // Custom backend selections are not baseline-comparable: never let them
  // default onto the committed BENCH_throughput.json.
  const std::string json_path = bench::BenchJsonPath(
      specs.empty() ? "BENCH_throughput.json" : "BENCH_throughput.custom.json");
  std::ofstream jf(json_path);
  if (!jf) {
    std::cerr << "cannot write " << json_path << "\n";
    return 1;
  }
  bench::JsonWriter jw(jf);
  jw.BeginObject();
  jw.Key("bench").Value("table2_throughput");
  jw.Key("scale").Value(bench::BenchScale());
  jw.Key("window").Value(static_cast<uint64_t>(bench::BenchWindow()));
  jw.Key("k").Value(8);
  jw.Key("order").Value("bfs");

  jw.Key("datasets").BeginArray();
  for (const auto& r : results) {
    jw.BeginObject();
    jw.Key("dataset").Value(r.dataset);
    jw.Key("edges").Value(static_cast<uint64_t>(r.stream_edges));
    jw.Key("systems").BeginArray();
    for (const auto& s : r.systems) WriteSystemJson(jw, s);
    jw.EndArray();
    jw.EndObject();
  }
  jw.EndArray();

  // Loom-only ingest throughput at the paper-default window (t = 10000):
  // the acceptance metric for perf PRs. Best of 3 to damp scheduler noise.
  // Skipped for custom LOOM_BENCH_SYSTEMS selections (not baseline-diffable).
  std::vector<std::pair<std::string, eval::SystemResult>> loom_at_t10k;
  if (specs.empty()) {
    jw.Key("loom_paper_window").BeginObject();
    jw.Key("window").Value(uint64_t{10000});
    jw.Key("runs").Value(3);
    jw.Key("datasets").BeginArray();
    for (auto id :
         {datasets::DatasetId::kLubm100, datasets::DatasetId::kMusicBrainz,
          datasets::DatasetId::kProvGen, datasets::DatasetId::kDblp}) {
      datasets::Dataset ds = datasets::MakeDataset(id, bench::BenchScale());
      eval::ExperimentConfig cfg;
      cfg.order = stream::StreamOrder::kBreadthFirst;
      cfg.window_size = 10000;
      auto source = engine::MakeEdgeSource(ds, cfg.order, cfg.stream_seed);
      eval::SystemResult best;
      for (int run = 0; run < 3; ++run) {
        eval::SystemResult r =
            eval::RunSystemTimingOnly(eval::System::kLoom, ds, *source, cfg);
        if (run == 0 || r.partition_ms < best.partition_ms) best = r;
      }
      jw.BeginObject();
      jw.Key("dataset").Value(ds.meta.name);
      jw.Key("edges").Value(static_cast<uint64_t>(source->SizeHint()));
      jw.Key("loom");
      WriteSystemJson(jw, best);
      jw.EndObject();
      loom_at_t10k.emplace_back(ds.meta.name, best);
    }
    jw.EndArray();
    jw.EndObject();
  }

  // loom-sharded shard sweep at the same paper window: ingest eps per
  // shard count, speedup vs the single-threaded loom result above, and the
  // quality triple (diff_bench.py guards it — the sweep must stay
  // bit-identical to loom at every S). `host_cpus` records how many cores
  // the numbers were taken on: the sequencer pipeline is the serial stage,
  // so on a single-core host the fan-out cannot overlap and the sweep
  // measures pure sharding overhead (see README "loom-sharded").
  if (specs.empty()) {
    jw.Key("loom_sharded_sweep").BeginObject();
    jw.Key("window").Value(uint64_t{10000});
    jw.Key("runs").Value(2);
    jw.Key("host_cpus").Value(
        static_cast<uint64_t>(std::thread::hardware_concurrency()));
    jw.Key("datasets").BeginArray();
    size_t di = 0;
    for (auto id :
         {datasets::DatasetId::kLubm100, datasets::DatasetId::kMusicBrainz,
          datasets::DatasetId::kProvGen, datasets::DatasetId::kDblp}) {
      datasets::Dataset ds = datasets::MakeDataset(id, bench::BenchScale());
      eval::ExperimentConfig cfg;
      cfg.order = stream::StreamOrder::kBreadthFirst;
      cfg.window_size = 10000;
      auto source = engine::MakeEdgeSource(ds, cfg.order, cfg.stream_seed);
      // Positional pairing with the paper-window loop above; keep the two
      // dataset lists in lockstep or the speedup baselines are crossed.
      if (loom_at_t10k[di].first != ds.meta.name) {
        std::cerr << "shard sweep: dataset list out of sync with "
                     "loom_paper_window ("
                  << loom_at_t10k[di].first << " vs " << ds.meta.name << ")\n";
        return 2;
      }
      const eval::SystemResult& loom_ref = loom_at_t10k[di++].second;
      jw.BeginObject();
      jw.Key("dataset").Value(ds.meta.name);
      jw.Key("edges").Value(static_cast<uint64_t>(source->SizeHint()));
      jw.Key("sweep").BeginArray();
      for (const uint32_t shards : {1u, 2u, 4u}) {
        const std::string spec =
            "loom-sharded:shards=" + std::to_string(shards);
        std::string error;
        eval::SystemResult best;
        for (int run = 0; run < 2; ++run) {
          auto r = eval::RunBackendTimingOnly(spec, ds, *source, cfg, &error);
          if (!r.has_value()) {
            std::cerr << "shard sweep: " << error << "\n";
            return 2;
          }
          if (run == 0 || r->partition_ms < best.partition_ms) {
            best = std::move(*r);
          }
        }
        if (best.assignment_hash != loom_ref.assignment_hash) {
          std::cerr << "shard sweep: " << spec << " diverged from loom on "
                    << ds.meta.name << "\n";
          return 2;
        }
        jw.BeginObject();
        jw.Key("shards").Value(static_cast<uint64_t>(shards));
        jw.Key("eps").Value(best.edges_per_sec);
        jw.Key("speedup_vs_loom")
            .Value(loom_ref.edges_per_sec > 0
                       ? best.edges_per_sec / loom_ref.edges_per_sec
                       : 0.0);
        jw.Key("edge_cut").Value(static_cast<uint64_t>(best.edge_cut));
        jw.Key("imbalance").Value(best.imbalance);
        jw.Key("assignment_hash").HexValue(best.assignment_hash);
        jw.EndObject();
      }
      jw.EndArray();
      jw.EndObject();
    }
    jw.EndArray();
    jw.EndObject();
  }

  // File-streamed ingest: the same paper-window loom run, but replayed
  // through io::FileEdgeSource over a freshly written binary stream file.
  // Quality must stay bit-identical to the in-memory source (the bench
  // aborts otherwise) and diff_bench.py guards the recorded triple + eps,
  // so the file path can neither corrupt streams nor silently slow down.
  if (specs.empty()) {
    jw.Key("file_stream").BeginObject();
    jw.Key("window").Value(uint64_t{10000});
    jw.Key("format").Value("binary");
    jw.Key("runs").Value(2);
    jw.Key("datasets").BeginArray();
    for (auto id :
         {datasets::DatasetId::kLubm100, datasets::DatasetId::kProvGen}) {
      datasets::Dataset ds = datasets::MakeDataset(id, bench::BenchScale());
      eval::ExperimentConfig cfg;
      cfg.order = stream::StreamOrder::kBreadthFirst;
      cfg.window_size = 10000;
      const eval::SystemResult* loom_ref = nullptr;
      for (const auto& [name, r] : loom_at_t10k) {
        if (name == ds.meta.name) loom_ref = &r;
      }
      const std::string stream_path = "BENCH_file_stream.tmp.les";
      {
        auto mem_source = engine::MakeEdgeSource(ds, cfg.order, cfg.stream_seed);
        io::WriteEdgeStream(stream_path, ds.registry, ds.NumVertices(),
                            mem_source.get(), io::StreamFormat::kBinary);
      }
      io::FileEdgeSource file_source(stream_path);
      eval::SystemResult best;
      std::string error;
      for (int run = 0; run < 2; ++run) {
        auto r = eval::RunBackendTimingOnly("loom", ds, file_source, cfg,
                                            &error);
        if (!r.has_value()) {
          std::cerr << "file stream: " << error << "\n";
          return 2;
        }
        if (run == 0 || r->partition_ms < best.partition_ms) {
          best = std::move(*r);
        }
      }
      std::remove(stream_path.c_str());
      if (loom_ref != nullptr &&
          best.assignment_hash != loom_ref->assignment_hash) {
        std::cerr << "file stream: loom over " << stream_path
                  << " diverged from the in-memory source on " << ds.meta.name
                  << "\n";
        return 2;
      }
      jw.BeginObject();
      jw.Key("dataset").Value(ds.meta.name);
      jw.Key("edges").Value(static_cast<uint64_t>(file_source.SizeHint()));
      jw.Key("eps").Value(best.edges_per_sec);
      jw.Key("eps_vs_inmemory")
          .Value(loom_ref != nullptr && loom_ref->edges_per_sec > 0
                     ? best.edges_per_sec / loom_ref->edges_per_sec
                     : 0.0);
      jw.Key("edge_cut").Value(static_cast<uint64_t>(best.edge_cut));
      jw.Key("imbalance").Value(best.imbalance);
      jw.Key("assignment_hash").HexValue(best.assignment_hash);
      jw.EndObject();
    }
    jw.EndArray();
    jw.EndObject();
  }

  // The streaming edge-partitioning gauntlet (ROADMAP item 2): HDRF and
  // DBH over the four Table 1 datasets, via engine::Session like every
  // other cell. Their quality triple is (replication factor, edge balance,
  // edge assignment hash) — WriteSystemJson emits it alongside the
  // vertex-derived fields, and diff_bench.py exact-compares all of them.
  if (specs.empty()) {
    jw.Key("edge_partitioners").BeginObject();
    jw.Key("runs").Value(2);
    jw.Key("datasets").BeginArray();
    for (auto id :
         {datasets::DatasetId::kLubm100, datasets::DatasetId::kMusicBrainz,
          datasets::DatasetId::kProvGen, datasets::DatasetId::kDblp}) {
      datasets::Dataset ds = datasets::MakeDataset(id, bench::BenchScale());
      eval::ExperimentConfig cfg;
      cfg.order = stream::StreamOrder::kBreadthFirst;
      auto source = engine::MakeEdgeSource(ds, cfg.order, cfg.stream_seed);
      jw.BeginObject();
      jw.Key("dataset").Value(ds.meta.name);
      jw.Key("edges").Value(static_cast<uint64_t>(source->SizeHint()));
      jw.Key("systems").BeginArray();
      for (const std::string& spec :
           {std::string("hdrf:lambda=1.1"), std::string("dbh"),
            std::string("hep:threshold_factor=4")}) {
        std::string error;
        eval::SystemResult best;
        for (int run = 0; run < 2; ++run) {
          auto r = eval::RunBackendTimingOnly(spec, ds, *source, cfg, &error);
          if (!r.has_value()) {
            std::cerr << "edge partitioners: " << error << "\n";
            return 2;
          }
          if (run == 0 || r->partition_ms < best.partition_ms) {
            best = std::move(*r);
          }
        }
        WriteSystemJson(jw, best);
      }
      jw.EndArray();
      jw.EndObject();
    }
    jw.EndArray();
    jw.EndObject();
  }

  WriteWindowOpsJson(jw);
  WriteSimdKernelsJson(jw);
  jw.EndObject();
  jf << "\n";
  std::cout << "\nwrote " << json_path << "\n";
  return 0;
}
