#include "serve/cut_tracker.h"

#include <algorithm>
#include <utility>
#include <vector>

namespace loom {
namespace serve {

void CutTracker::AddEdge(const stream::StreamEdge& e) {
  edges_seen_.fetch_add(1, std::memory_order_relaxed);
  const graph::PartitionId pu = table_->Get(e.u);
  const graph::PartitionId pv = table_->Get(e.v);
  if (pu != graph::kNoPartition && pv != graph::kNoPartition) {
    if (pu != pv) cut_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  // Park on one unplaced endpoint; if the other is also unplaced the edge
  // re-parks there when this one resolves.
  if (pu == graph::kNoPartition) {
    parked_.emplace(e.u, e.v);
  } else {
    parked_.emplace(e.v, e.u);
  }
  ++pending_count_;
}

void CutTracker::Append(graph::VertexId v, graph::PartitionId p) {
  const auto range = parked_.equal_range(v);
  if (range.first == range.second) return;
  // Drain the key before re-parking: an emplace can rehash, which would
  // invalidate the range being walked.
  std::vector<graph::VertexId> others;
  for (auto it = range.first; it != range.second; ++it) {
    others.push_back(it->second);
  }
  parked_.erase(v);
  for (const graph::VertexId other : others) {
    const graph::PartitionId po = table_->Get(other);
    if (po != graph::kNoPartition) {
      if (po != p) cut_.fetch_add(1, std::memory_order_relaxed);
      --pending_count_;
    } else {
      // Still half-placed: wait on the other endpoint now.
      parked_.emplace(other, v);
    }
  }
}

void CutTracker::Save(io::CheckpointWriter* w) const {
  std::vector<std::pair<graph::VertexId, graph::VertexId>> entries(
      parked_.begin(), parked_.end());
  // Hash-map order is run-dependent; sorted bytes keep equal states
  // producing equal checkpoints.
  std::sort(entries.begin(), entries.end());
  w->BeginSection("serve.cut");
  w->U64(cut_.load(std::memory_order_relaxed));
  w->U64(edges_seen_.load(std::memory_order_relaxed));
  w->U64(pending_count_);
  w->U64(entries.size());
  for (const auto& [waiting_on, other] : entries) {
    w->U32(waiting_on);
    w->U32(other);
  }
  w->EndSection();
}

void CutTracker::Restore(io::CheckpointReader* r) {
  if (!r->Has("serve.cut")) {
    r->Fail(
        "checkpoint has no 'serve.cut' section — it was written by a "
        "non-serve run (loom_partition); a served stream's cut state cannot "
        "be reconstructed, start the service from the stream's beginning "
        "instead");
  }
  r->Open("serve.cut");
  cut_.store(r->U64(), std::memory_order_relaxed);
  edges_seen_.store(r->U64(), std::memory_order_relaxed);
  pending_count_ = r->U64();
  const uint64_t n = r->U64();
  // Invariant maintained by AddEdge/Append: every pending edge is parked on
  // exactly one endpoint, so pending_count_ == parked_.size() at all times.
  // The counter travels separately in the file; trusting a desynced one
  // would mis-report the cut forever after resume.
  if (pending_count_ != n) {
    r->Fail("serve.cut: pending counter " + std::to_string(pending_count_) +
            " does not match the " + std::to_string(n) +
            " parked entries (corrupt or hand-edited checkpoint)");
  }
  parked_.clear();
  parked_.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    const graph::VertexId waiting_on = r->U32();
    const graph::VertexId other = r->U32();
    parked_.emplace(waiting_on, other);
  }
  r->Close();
}

}  // namespace serve
}  // namespace loom
