#include "core/loom_partitioner.h"

#include <algorithm>
#include <cassert>

namespace loom {
namespace core {

LoomPartitioner::LoomPartitioner(const LoomOptions& options,
                                 const query::Workload& workload,
                                 size_t num_labels)
    : options_(options),
      partitioning_(options.base.k, options.base.expected_vertices,
                    options.base.max_imbalance),
      seen_(options.base.expected_vertices),
      window_(options.window_size) {
  label_values_ = std::make_unique<signature::LabelValues>(
      num_labels, options.prime, options.signature_seed);
  calc_ = std::make_unique<signature::SignatureCalculator>(label_values_.get());
  trie_ = std::make_unique<tpstry::Tpstry>(calc_.get(),
                                           options.support_threshold);
  query::Workload normalised = workload;
  normalised.Normalize();
  for (const query::Query& q : normalised.queries()) {
    trie_->AddQuery(q.pattern, q.frequency);
  }
  matcher_ = std::make_unique<motif::MotifMatcher>(trie_.get(), calc_.get(),
                                                   options.matcher);
  allocator_ = std::make_unique<EqualOpportunism>(trie_.get(), &seen_,
                                                  options.equal_opportunism);
  motif_label_ = trie_->MotifLabelMask(num_labels);
}

bool LoomPartitioner::IsDeferred(graph::VertexId v, graph::LabelId label) const {
  if (partitioning_.IsAssigned(v)) return false;
  // Vertices that participate in live motif matches — or whose label means
  // they *could*, once their motif edges arrive — are deferred: their
  // placement belongs to a match cluster's equal-opportunism allocation.
  // Pinning them early (e.g. when a hub edge like Activity-Agent bypasses
  // the window before the Activity's entity edges arrive) would silently
  // void the later cluster co-location, since vertex assignment is
  // first-writer-wins. Deferred vertices that never join a cluster are swept
  // up by Finalize with full neighbourhood information.
  if (label < motif_label_.size() && motif_label_[label]) return true;
  if (satellites_.count(v) > 0) return true;
  return match_list_.HasLiveAt(v);
}

void LoomPartitioner::AssignVertex(graph::VertexId v, graph::PartitionId p) {
  partitioning_.Assign(v, p);
  satellites_.erase(v);
  // Cascade: satellites registered against v follow it into its partition
  // (transitively — a Work waiting on a Recording waiting on an Album).
  auto it = pending_satellites_.find(v);
  if (it == pending_satellites_.end()) return;
  std::vector<graph::VertexId> todo = std::move(it->second);
  pending_satellites_.erase(it);
  for (graph::VertexId w : todo) {
    if (partitioning_.IsAssigned(w)) continue;
    // Re-score the satellite now that its anchor (and possibly more of its
    // neighbourhood) has landed — better than blindly copying the anchor's
    // partition when the satellite is shared between several anchors.
    AssignVertex(
        w, partition::LdgHeuristic::ChooseForVertex(w, seen_, partitioning_));
  }
}

void LoomPartitioner::AssignImmediately(const stream::StreamEdge& e) {
  const bool u_deferred = IsDeferred(e.u, e.label_u);
  const bool v_deferred = IsDeferred(e.v, e.label_v);
  const bool place_u = !partitioning_.IsAssigned(e.u) && !u_deferred;
  const bool place_v = !partitioning_.IsAssigned(e.v) && !v_deferred;

  // Design note: we also tried registering a placeable endpoint whose
  // partner is deferred as a "satellite" that waits for the partner's
  // cluster before being (re-)scored — both unconditionally and only when
  // LDG had zero placement signal. Both variants degrade quality on 3 of 4
  // datasets (mass deferral starves the streaming heuristics of placed
  // neighbours); immediate LDG placement wins. See EXPERIMENTS.md.
  (void)u_deferred;
  (void)v_deferred;
  if (!place_u && !place_v) return;
  const graph::PartitionId p =
      partition::LdgHeuristic::Choose(e, seen_, partitioning_);
  if (place_u) AssignVertex(e.u, p);
  if (place_v) AssignVertex(e.v, p);
}

void LoomPartitioner::Ingest(const stream::StreamEdge& e) {
  ++stats_.edges_ingested;
  seen_.TouchVertex(e.u, e.label_u);
  seen_.TouchVertex(e.v, e.label_v);
  seen_.AddEdge(e.u, e.v);  // before any placement: endpoints see each other

  if (matcher_->SingleEdgeMotif(e) == nullptr) {
    // Sec. 3: e can never participate in a motif match — place it now and
    // "behave as if the edge was never added to the window".
    ++stats_.edges_bypassed;
    AssignImmediately(e);
    return;
  }

  window_.Push(e);
  matcher_->OnEdgeAdded(e, window_, &match_list_);

  while (window_.OverCapacity()) EvictOldest();

  if (++edges_since_compact_ >= options_.compact_interval) {
    match_list_.Compact();
    edges_since_compact_ = 0;
  }
}

void LoomPartitioner::EvictOldest() {
  std::optional<stream::StreamEdge> evictee = window_.PopOldest();
  if (!evictee.has_value()) return;
  ++stats_.edges_via_window;

  // Me: live matches containing the evictee.
  std::vector<motif::MatchPtr> me = match_list_.LiveWithEdge(evictee->id);
  if (me.empty()) {
    // Every match the edge belonged to already lost some other edge.
    AssignImmediately(*evictee);
    match_list_.RemoveMatchesWithEdge(evictee->id);
    return;
  }

  // Fallback for zero-bid clusters: LDG's neighbourhood choice for the
  // evictee, so cold-start clusters still land near their assigned
  // neighbours instead of scattering round-robin.
  const graph::PartitionId fallback =
      partition::LdgHeuristic::Choose(*evictee, seen_, partitioning_);
  const AllocationDecision decision =
      allocator_->Decide(std::move(me), partitioning_, fallback);
  ++stats_.clusters_allocated;

  // Gather the union of edges across the matches the winner takes. The
  // evictee is in every match of Me, so it is always included.
  std::vector<graph::EdgeId> to_assign;
  for (const motif::MatchPtr& m : decision.matches) {
    for (graph::EdgeId eid : m->edges) {
      auto it = std::lower_bound(to_assign.begin(), to_assign.end(), eid);
      if (it == to_assign.end() || *it != eid) to_assign.insert(it, eid);
    }
  }
  assert(!to_assign.empty());

  for (graph::EdgeId eid : to_assign) {
    const stream::StreamEdge* se =
        eid == evictee->id ? &*evictee : window_.Find(eid);
    if (se == nullptr) continue;  // already left the window
    AssignVertex(se->u, decision.partition);
    AssignVertex(se->v, decision.partition);
    window_.Remove(eid);
    ++stats_.cluster_edges_assigned;
  }
  // Retire every match that lost a constituent edge — including the losing
  // bids in Me (they all contained the evictee).
  for (graph::EdgeId eid : to_assign) match_list_.RemoveMatchesWithEdge(eid);
}

void LoomPartitioner::UpdateWorkload(const query::Workload& workload,
                                     double decay) {
  assert(decay >= 0.0 && decay < 1.0);
  if (decay > 0.0) {
    trie_->DecaySupports(decay);
  } else {
    // Full replacement: decay to (almost) nothing.
    trie_->DecaySupports(1e-12);
  }
  query::Workload normalised = workload;
  normalised.Normalize();
  const double new_mass = 1.0 - decay;
  for (const query::Query& q : normalised.queries()) {
    trie_->AddQuery(q.pattern, q.frequency * new_mass);
  }
  motif_label_ = trie_->MotifLabelMask(motif_label_.size());
}

void LoomPartitioner::Finalize() {
  while (!window_.empty()) EvictOldest();
  match_list_.Compact();
  // Sweep vertices whose placement was deferred (motif-labelled endpoints of
  // bypassed edges that never joined an allocated cluster). At this point the
  // full streamed adjacency is available, so LDG's per-vertex choice is
  // maximally informed.
  for (graph::VertexId v = 0; v < seen_.NumSlots(); ++v) {
    if (!seen_.Known(v) || partitioning_.IsAssigned(v)) continue;
    AssignVertex(
        v, partition::LdgHeuristic::ChooseForVertex(v, seen_, partitioning_));
  }
}

}  // namespace core
}  // namespace loom
