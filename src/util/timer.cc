#include "util/timer.h"

namespace loom {
namespace util {

void Timer::Start() { start_ = std::chrono::steady_clock::now(); }

int64_t Timer::ElapsedUs() const {
  auto d = std::chrono::steady_clock::now() - start_;
  return std::chrono::duration_cast<std::chrono::microseconds>(d).count();
}

double Timer::ElapsedMs() const { return static_cast<double>(ElapsedUs()) / 1e3; }

double Timer::ElapsedSeconds() const {
  return static_cast<double>(ElapsedUs()) / 1e6;
}

}  // namespace util
}  // namespace loom
