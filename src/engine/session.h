// engine::Session — one object that owns a run's lifecycle.
//
// A "run" in this codebase used to be assembled by hand at every call
// site: build a partitioner from a registry spec, wire an observer, pull
// an EdgeSource dry through Drive, then reach into the backend for its
// counters. Session binds all of it — a spec string, typed options, any
// number of observers and assignment sinks — and hands back a RunReport
// assembled PURELY from observer events: there is no backend-specific
// getter anywhere in the report path (the FDB lesson: evaluate over the
// engine's own event stream, not over privileged peeks into its
// internals). The eval harness, tools and examples are all clients.
//
//   engine::SessionConfig cfg;
//   cfg.spec = "loom:window_size=4000";
//   cfg.options.expected_vertices = n;  cfg.options.expected_edges = m;
//   auto session = engine::Session::Create(cfg, {&workload, num_labels},
//                                          &error);
//   io::FileAssignmentSink sink("assignments.tsv");
//   session->AddSink(&sink);
//   engine::RunReport report = session->Run(*source);   // any EdgeSource
//
// Streams need not end: IngestSome() drives a bounded number of edges (the
// midstream checkpoint harness steps a stream this way) and Finish()
// checkpoints whenever the caller chooses.

#ifndef LOOM_ENGINE_SESSION_H_
#define LOOM_ENGINE_SESSION_H_

#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "engine/engine.h"
#include "io/assignment_sink.h"
#include "partition/partitioner.h"

namespace loom {
namespace engine {

/// Everything a run needs besides the stream itself.
struct SessionConfig {
  /// Registry spec: "name" or "name:key=value,..." (see ParseBackendSpec).
  std::string spec = "loom";
  /// Base options; the spec's inline overrides win on top.
  EngineOptions options;
  /// Batch size / progress cadence for Run and IngestSome.
  DriveConfig drive;
};

/// What a finished (or checkpointed) run looked like — event-sourced only.
struct RunReport {
  /// The backend's registry name ("loom", "fennel", ...).
  std::string backend;
  /// Stream elements ingested across the session's lifetime.
  uint64_t edges = 0;
  /// Wall time spent inside ingest + finalize, ms.
  double ms = 0.0;
  /// edges / ms, scaled to per-second (0 when nothing was timed).
  double edges_per_sec = 0.0;
  /// Accumulated event totals (assignments, evictions, cluster decisions,
  /// last progress snapshot).
  StatsObserver::Totals events;
  /// The backend's deterministic end-of-run counters (FinalStatsEvent);
  /// empty for backends that report none.
  StatCounters backend_stats;

  /// The named backend counter, or `fallback` if absent.
  uint64_t Stat(std::string_view name, uint64_t fallback = 0) const;
};

/// Extra state a long-lived owner of a Session (e.g. serve::Server's
/// stream-side edge-cut tracker) wants carried inside the session's LOOMCK
/// checkpoint, atomically with the backend state it derives from. Save
/// writes one or more uniquely named sections; Restore reads them back and
/// throws (via the reader's Fail) on any mismatch. A checkpoint written
/// with an extension still resumes in a session without one — the extra
/// sections are simply never opened.
class SessionExtension {
 public:
  virtual ~SessionExtension() = default;
  virtual void Save(io::CheckpointWriter* w) const = 0;
  virtual void Restore(io::CheckpointReader* r) = 0;
};

class Session {
 public:
  /// Builds the backend named by `config.spec` through the global registry.
  /// Returns nullptr and an actionable `*error` on unknown backends, bad
  /// overrides or missing context.
  static std::unique_ptr<Session> Create(const SessionConfig& config,
                                         const BuildContext& context,
                                         std::string* error);

  ~Session();

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// Subscribes an external observer for the session's lifetime (events
  /// fan out to every subscriber in registration order). Not owned.
  void AddObserver(EngineObserver* observer);

  /// Binds an assignment sink: every OnAssign placement is appended, and
  /// Run/Finish flush it. Not owned.
  void AddSink(io::AssignmentSink* sink);

  /// Binds an EDGE assignment sink: every OnEdgeAssign placement (edge
  /// backends only — hdrf/dbh; vertex backends never fire it) is appended,
  /// and Run/Finish flush it. Not owned.
  void AddEdgeSink(io::EdgeAssignmentSink* sink);

  /// Attaches checkpoint-extension state (not owned; nullptr detaches):
  /// Checkpoint() appends its sections after the backend's, Resume()
  /// restores them after the backend restores. Attach before Resume.
  void SetExtension(SessionExtension* extension) { extension_ = extension; }

  /// Pulls `source` dry (batched), finalizes, flushes sinks and reports.
  /// The source is consumed from its current position — Reset() it first
  /// to replay from the top.
  RunReport Run(EdgeSource& source);

  /// Ingests up to `max_edges` from `source` without finalizing; returns
  /// how many were consumed (less only if the source ran dry). This is the
  /// checkpoint seam: inspect partitioning() between calls, then keep
  /// going — Finalize is never implied.
  size_t IngestSome(EdgeSource& source, size_t max_edges);

  /// Checkpoints an IngestSome-driven stream: finalizes, fires the final
  /// progress + final-stats events (with session-lifetime edge totals),
  /// flushes sinks and reports. Run() does NOT route through here — its
  /// end-of-run tail is engine::Drive's (which stamps drive-local counts
  /// for backends without lifetime totals); both fire the same event kinds
  /// in the same order.
  RunReport Finish();

  /// Snapshots the whole run — session envelope (backend id, stream cursor,
  /// resolved options fingerprint, event totals) plus the backend's
  /// SaveState sections — into a LOOMCK file at `path`, committed atomically
  /// (tmp + fsync + rename), flushing sinks first so everything already
  /// assigned is durable alongside the checkpoint. Returns false + an
  /// actionable `*error` on failure; the previous file at `path` (if any) is
  /// only replaced by a complete new checkpoint, never by a torn one.
  bool Checkpoint(const std::string& path, std::string* error);

  /// Restores a Checkpoint file into this freshly created session (nothing
  /// ingested). On success the session's stream cursor is edges_ingested();
  /// skip the source to that position and keep driving — assignments,
  /// events and final stats will be bit-identical to the uninterrupted run.
  /// On failure (corruption, version skew, backend/options/label mismatch)
  /// returns false with an actionable `*error` and the session must be
  /// discarded.
  bool Resume(const std::string& path, std::string* error);

  /// Stream elements ingested over the session's lifetime (the resume
  /// cursor: the next edge to read has this stream id).
  uint64_t edges_ingested() const { return edges_; }

  /// The (possibly partial) partitioning — placement state, not a
  /// backend-specific getter.
  const partition::Partitioning& partitioning() const;

  /// Escape hatch to the underlying backend, for callers that knowingly
  /// step outside the facade (examples poking at Loom's trie, workload
  /// drift via UpdateWorkload). The report path never uses this.
  partition::Partitioner& backend() { return *partitioner_; }

 private:
  /// Fans every event out to the session's stats accumulator, sinks
  /// (OnAssign) and external observers.
  class Fanout : public EngineObserver {
   public:
    void OnAssign(const AssignEvent& e) override;
    void OnEdgeAssign(const EdgeAssignEvent& e) override;
    void OnEviction(const EvictionEvent& e) override;
    void OnClusterDecision(const ClusterDecisionEvent& e) override;
    void OnProgress(const ProgressEvent& e) override;
    void OnBatch(const BatchEvent& e) override;
    void OnFinalStats(const FinalStatsEvent& e) override;

    StatsObserver stats;
    std::vector<io::AssignmentSink*> sinks;
    std::vector<io::EdgeAssignmentSink*> edge_sinks;
    std::vector<EngineObserver*> observers;
  };

  Session(const SessionConfig& config,
          std::unique_ptr<partition::Partitioner> partitioner);

  RunReport MakeReport() const;
  void FlushSinks();

  SessionConfig config_;
  /// config_.options with the spec's inline overrides applied — what the
  /// backend was actually built with; the checkpoint fingerprint uses this,
  /// never the raw base options.
  EngineOptions resolved_options_;
  std::unique_ptr<partition::Partitioner> partitioner_;
  Fanout fanout_;
  SessionExtension* extension_ = nullptr;
  uint64_t edges_ = 0;
  double ms_ = 0.0;
};

/// Two-slot rotation on top of Session::Checkpoint: the current good file at
/// `path` is first renamed to `path + ".prev"`, then the new checkpoint is
/// committed at `path` — so one good checkpoint always survives a crash (or
/// a corruption) of the newest one.
bool CheckpointSessionRotating(Session* session, const std::string& path,
                               std::string* error);

/// Resume with fallback across the rotation's two slots: builds a session
/// via `make` and resumes it from `path`; if that checkpoint is missing or
/// rejected, builds a FRESH session (a failed restore may have partially
/// mutated the first one) and retries from `path + ".prev"`. Returns the
/// resumed session, or nullptr with both slots' errors joined in `*error`.
/// `*used_fallback` (optional) reports whether the ".prev" slot restored.
std::unique_ptr<Session> ResumeSessionWithFallback(
    const std::function<std::unique_ptr<Session>(std::string*)>& make,
    const std::string& path, std::string* error,
    bool* used_fallback = nullptr);

}  // namespace engine
}  // namespace loom

#endif  // LOOM_ENGINE_SESSION_H_
