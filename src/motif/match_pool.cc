#include "motif/match_pool.h"

namespace loom {
namespace motif {

MatchHandle MatchPool::Allocate() {
  uint32_t idx;
  if (!free_.empty()) {
    idx = free_.back();
    free_.pop_back();
    ++reused_;
  } else {
    idx = next_index_++;
    assert(idx <= kMatchIndexMask && "match pool exhausted");
    if ((idx >> kChunkBits) >= chunks_.size()) {
      chunks_.push_back(std::make_unique<Slot[]>(kChunkSize));
    }
    ++fresh_;
  }
  Slot& s = slot(idx);
  s.live = true;
  s.match.Reset();
  ++live_;
  return (s.generation << kMatchIndexBits) | idx;
}

void MatchPool::SaveTo(io::CheckpointWriter* w) const {
  w->U32(next_index_);
  w->U64(live_);
  w->U64(fresh_);
  w->U64(reused_);
  w->PodVec(free_);
  for (uint32_t idx = 0; idx < next_index_; ++idx) {
    const Slot& s = slot(idx);
    w->U32(s.generation);
    w->U8(s.live ? 1 : 0);
    if (s.live) {
      // Only live slots carry content: a recycled slot's Match is Reset on
      // the next Allocate, so its old payload is unobservable.
      w->PodVec(s.match.edges);
      w->PodVec(s.match.vertices);
      w->PodVec(s.match.degrees);
      w->U32(s.match.node_id);
    }
  }
}

void MatchPool::LoadFrom(io::CheckpointReader* r) {
  assert(next_index_ == 0 && free_.empty() && "restore into a fresh pool");
  next_index_ = r->U32();
  live_ = r->U64();
  fresh_ = r->U64();
  reused_ = r->U64();
  r->PodVec(&free_);
  const size_t chunks = (next_index_ + kChunkSize - 1) >> kChunkBits;
  for (size_t c = 0; c < chunks; ++c) {
    chunks_.push_back(std::make_unique<Slot[]>(kChunkSize));
  }
  for (uint32_t idx = 0; idx < next_index_; ++idx) {
    Slot& s = slot(idx);
    s.generation = r->U32();
    s.live = r->U8() != 0;
    if (s.live) {
      r->PodVec(&s.match.edges);
      r->PodVec(&s.match.vertices);
      r->PodVec(&s.match.degrees);
      s.match.node_id = r->U32();
    }
  }
}

void MatchPool::Release(MatchHandle h) {
  assert(IsLive(h));
  const uint32_t idx = MatchIndexOf(h);
  Slot& s = slot(idx);
  s.live = false;
  --live_;
  // Bump the generation so retained copies of `h` read as stale. A slot that
  // exhausts its generation space is retired instead of recycled (ABA-proof;
  // needs 1024 reuses of one slot to ever happen).
  if (++s.generation < kMatchGenerationLimit) free_.push_back(idx);
}

}  // namespace motif
}  // namespace loom
