// Rendering helpers: turn ComparisonResults into the tables/series the paper
// prints (ipt relative to Hash, timing rows, balance notes).

#ifndef LOOM_EVAL_REPORT_H_
#define LOOM_EVAL_REPORT_H_

#include <ostream>
#include <vector>

#include "eval/experiment.h"

namespace loom {
namespace eval {

/// Prints one Fig. 7/8-style block: rows = datasets, columns = systems,
/// cells = ipt as % of Hash's ipt (lower is better).
void PrintRelativeIptTable(const std::vector<ComparisonResult>& results,
                           std::ostream& os);

/// Prints a Table 2-style block: ms to partition 10k edges per system.
void PrintTimingTable(const std::vector<ComparisonResult>& results,
                      std::ostream& os);

/// Prints imbalance per system (the §5.2 prose numbers).
void PrintImbalanceTable(const std::vector<ComparisonResult>& results,
                         std::ostream& os);

}  // namespace eval
}  // namespace loom

#endif  // LOOM_EVAL_REPORT_H_
