// Fundamental identifier types shared by every graph-handling module.
//
// Loom's paper model (Sec. 1.3): a labelled graph G = (V, E, LV, fl) with a
// surjective vertex->label map. All graphs in this library are undirected;
// the signature module notes inline how each technique extends to directed
// edges, mirroring the paper.

#ifndef LOOM_GRAPH_TYPES_H_
#define LOOM_GRAPH_TYPES_H_

#include <cstdint>
#include <functional>
#include <limits>

namespace loom {
namespace graph {

/// Dense vertex identifier. Vertices are numbered 0..n-1 per graph.
using VertexId = uint32_t;

/// Dense edge identifier: index into a graph's (or stream's) edge list.
using EdgeId = uint32_t;

/// Dense label identifier managed by LabelRegistry. The paper's |LV| is
/// small (3-15 across its datasets), so 16 bits is generous.
using LabelId = uint16_t;

/// Partition index in a k-way partitioning.
using PartitionId = uint32_t;

inline constexpr VertexId kInvalidVertex = std::numeric_limits<VertexId>::max();
inline constexpr EdgeId kInvalidEdge = std::numeric_limits<EdgeId>::max();
inline constexpr LabelId kInvalidLabel = std::numeric_limits<LabelId>::max();
inline constexpr PartitionId kNoPartition = std::numeric_limits<PartitionId>::max();

/// An undirected edge between two vertices. Never a self-loop in built
/// graphs (builders reject/drop them). Stored un-normalised; use Normalized()
/// when a canonical (min,max) orientation is needed for identity.
struct Edge {
  VertexId u = kInvalidVertex;
  VertexId v = kInvalidVertex;

  Edge() = default;
  Edge(VertexId a, VertexId b) : u(a), v(b) {}

  /// Canonical orientation with u <= v; undirected identity.
  Edge Normalized() const { return u <= v ? Edge(u, v) : Edge(v, u); }

  /// The endpoint that is not `w`. Requires w to be an endpoint.
  VertexId Other(VertexId w) const { return w == u ? v : u; }

  /// True if `w` is an endpoint.
  bool Incident(VertexId w) const { return w == u || w == v; }

  friend bool operator==(const Edge& a, const Edge& b) {
    Edge na = a.Normalized(), nb = b.Normalized();
    return na.u == nb.u && na.v == nb.v;
  }
};

/// Hash over the normalised endpoint pair, so (u,v) and (v,u) collide.
struct EdgeHash {
  size_t operator()(const Edge& e) const {
    Edge n = e.Normalized();
    uint64_t key = (static_cast<uint64_t>(n.u) << 32) | n.v;
    // SplitMix64 finaliser: cheap, well distributed.
    key = (key ^ (key >> 30)) * 0xbf58476d1ce4e5b9ULL;
    key = (key ^ (key >> 27)) * 0x94d049bb133111ebULL;
    return static_cast<size_t>(key ^ (key >> 31));
  }
};

}  // namespace graph
}  // namespace loom

#endif  // LOOM_GRAPH_TYPES_H_
