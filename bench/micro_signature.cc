// Micro-benchmarks for the number-theoretic signature machinery (Sec. 2):
// single-edge signatures, full pattern signatures, incremental factor
// deltas, multiset difference and TPSTry++ construction.

#include <benchmark/benchmark.h>

#include "datasets/workloads.h"
#include "graph/pattern_graph.h"
#include "signature/signature_calculator.h"
#include "tpstry/tpstry.h"

namespace {

using namespace loom;

const signature::LabelValues& Values() {
  static signature::LabelValues values(16, 251, 0xC0FFEE);
  return values;
}

void BM_SingleEdgeSignature(benchmark::State& state) {
  signature::SignatureCalculator calc(&Values());
  graph::LabelId a = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(calc.SingleEdgeSignature(a, 1));
    a = static_cast<graph::LabelId>((a + 1) % 16);
  }
}
BENCHMARK(BM_SingleEdgeSignature);

void BM_PatternSignature(benchmark::State& state) {
  signature::SignatureCalculator calc(&Values());
  std::vector<graph::LabelId> labels;
  for (int64_t i = 0; i <= state.range(0); ++i) {
    labels.push_back(static_cast<graph::LabelId>(i % 5));
  }
  graph::PatternGraph p = graph::PatternGraph::Path(labels);
  for (auto _ : state) {
    benchmark::DoNotOptimize(calc.ComputeSignature(p));
  }
  state.SetLabel(std::to_string(state.range(0)) + " edges");
}
BENCHMARK(BM_PatternSignature)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

void BM_FactorDelta(benchmark::State& state) {
  signature::SignatureCalculator calc(&Values());
  uint32_t d = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(calc.FactorsForEdgeAddition(1, d, 2, d + 1));
    d = d % 8 + 1;
  }
}
BENCHMARK(BM_FactorDelta);

void BM_SignatureExtendsBy(benchmark::State& state) {
  signature::SignatureCalculator calc(&Values());
  graph::PatternGraph ab = graph::PatternGraph::Path({0, 1});
  graph::PatternGraph abc = graph::PatternGraph::Path({0, 1, 2});
  signature::Signature parent = calc.ComputeSignature(ab);
  signature::Signature child = calc.ComputeSignature(abc);
  signature::FactorDelta delta = calc.FactorsForEdgeAddition(1, 2, 2, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(parent.ExtendsBy(delta, child));
  }
}
BENCHMARK(BM_SignatureExtendsBy);

void BM_TpstryConstruction(benchmark::State& state) {
  graph::LabelRegistry reg;
  query::Workload w = datasets::Figure1Workload(&reg);
  signature::SignatureCalculator calc(&Values());
  for (auto _ : state) {
    tpstry::Tpstry trie(&calc, 0.4);
    for (const auto& q : w.queries()) trie.AddQuery(q.pattern, q.frequency);
    benchmark::DoNotOptimize(trie.NumNodes());
  }
}
BENCHMARK(BM_TpstryConstruction);

}  // namespace
