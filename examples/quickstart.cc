// Quickstart: the paper's Fig. 1 example, end to end.
//
// Builds the 8-vertex graph G with labels a/b/c/d, declares the workload
// Q = {q1: a-b square 30%, q2: a-b-c path 60%, q3: a-b-c-d path 10%},
// inspects the TPSTry++ and its motifs, partitions the stream with Loom and
// with the baselines, and compares workload ipt.
//
// Run:  ./example_quickstart

#include <iostream>

#include "core/loom_partitioner.h"
#include "datasets/dataset_registry.h"
#include "eval/experiment.h"
#include "eval/report.h"
#include "query/workload_runner.h"
#include "stream/stream_order.h"

int main() {
  using namespace loom;

  // 1. The Fig. 1 graph and workload.
  datasets::Dataset ds = datasets::MakeFigure1Dataset();
  std::cout << "Graph G: " << ds.NumVertices() << " vertices, "
            << ds.NumEdges() << " edges, labels {a, b, c, d}\n";
  std::cout << "Workload Q:\n";
  for (const auto& q : ds.workload.queries()) {
    std::cout << "  " << q.name << " " << q.pattern.ToString(ds.registry)
              << " @ " << q.frequency * 100 << "%\n";
  }

  // 2. Build Loom and inspect the trie it derives from Q (Sec. 2).
  core::LoomOptions options;
  options.base.k = 2;
  options.base.expected_vertices = ds.NumVertices();
  options.base.expected_edges = ds.NumEdges();
  options.window_size = 6;
  core::LoomPartitioner loom(options, ds.workload, ds.registry.size());
  std::cout << "\nTPSTry++ built from Q (T = 40%):\n"
            << loom.trie().Dump(ds.registry);

  // 3. Stream G breadth-first through Loom (Sec. 3-4).
  stream::EdgeStream es =
      stream::MakeStream(ds.graph, stream::StreamOrder::kBreadthFirst);
  for (const stream::StreamEdge& e : es) loom.Ingest(e);
  loom.Finalize();

  std::cout << "\nLoom's 2-way partitioning of G:\n";
  for (graph::VertexId v = 0; v < ds.NumVertices(); ++v) {
    std::cout << "  vertex " << v + 1 << " (" /* 1-based like the paper */
              << ds.registry.Name(ds.graph.label(v)) << ") -> partition "
              << loom.partitioning().PartitionOf(v) << "\n";
  }

  // 4. Execute the workload and count inter-partition traversals.
  query::WorkloadResult loom_result =
      query::RunWorkload(ds.graph, loom.partitioning(), ds.workload);
  std::cout << "\nLoom: weighted ipt = " << loom_result.weighted_ipt
            << " over " << loom_result.weighted_traversals
            << " weighted traversals\n";

  // 5. Compare against Hash / LDG / Fennel on the same stream.
  eval::ExperimentConfig cfg;
  cfg.k = 2;
  cfg.window_size = 6;
  eval::ComparisonResult cmp = eval::RunComparison(ds, cfg);
  std::cout << "\nAll systems (ipt as % of Hash):\n";
  eval::PrintRelativeIptTable({cmp}, std::cout);
  return 0;
}
