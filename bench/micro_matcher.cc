// Micro-benchmarks for streaming ingestion: edges/second through each
// partitioner on a pre-materialised provgen stream (Table 2's measure
// expressed as throughput, suitable for regression tracking), plus isolated
// hot-path benches for the Alg. 2 matcher (window + matchList only, no
// partitioner) and the sliding-window ring buffer.

#include <benchmark/benchmark.h>

#include "datasets/dataset_registry.h"
#include "datasets/workloads.h"
#include "eval/experiment.h"
#include "motif/match_list.h"
#include "motif/motif_matcher.h"
#include "signature/label_values.h"
#include "signature/signature_calculator.h"
#include "stream/sliding_window.h"
#include "stream/stream_order.h"
#include "tpstry/tpstry.h"

namespace {

using namespace loom;

struct Fixture {
  datasets::Dataset ds;
  stream::EdgeStream es;
  Fixture()
      : ds(datasets::MakeDataset(datasets::DatasetId::kProvGen, 0.2)),
        es(stream::MakeStream(ds.graph, stream::StreamOrder::kBreadthFirst)) {}
};

Fixture& GetFixture() {
  static Fixture f;
  return f;
}

void RunSystemBench(benchmark::State& state, eval::System system) {
  Fixture& f = GetFixture();
  eval::ExperimentConfig cfg;
  cfg.window_size = 2000;
  for (auto _ : state) {
    auto p = eval::MakePartitioner(system, f.ds, cfg);
    for (const auto& e : f.es) p->Ingest(e);
    p->Finalize();
    benchmark::DoNotOptimize(p->partitioning().NumAssigned());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(f.es.size()));
}

void BM_IngestHash(benchmark::State& state) {
  RunSystemBench(state, eval::System::kHash);
}
void BM_IngestLdg(benchmark::State& state) {
  RunSystemBench(state, eval::System::kLdg);
}
void BM_IngestFennel(benchmark::State& state) {
  RunSystemBench(state, eval::System::kFennel);
}
void BM_IngestLoom(benchmark::State& state) {
  RunSystemBench(state, eval::System::kLoom);
}

BENCHMARK(BM_IngestHash)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_IngestLdg)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_IngestFennel)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_IngestLoom)->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------- matcher only
// Window + matchList + Alg. 2, without partitioning/assignment: the exact
// paths the ring buffer, MatchPool and incremental degrees rebuilt.
void BM_MatcherOnly(benchmark::State& state) {
  Fixture& f = GetFixture();
  const size_t window_size = static_cast<size_t>(state.range(0));
  signature::LabelValues values(f.ds.registry.size(),
                                signature::kDefaultPrime, 0xC0FFEE);
  signature::SignatureCalculator calc(&values);
  tpstry::Tpstry trie(&calc, 0.4);
  for (const auto& q : f.ds.workload.queries()) {
    trie.AddQuery(q.pattern, q.frequency);
  }
  uint64_t admitted = 0, fresh = 0, reused = 0;
  for (auto _ : state) {
    motif::MotifMatcher matcher(&trie, &calc);
    stream::SlidingWindow window(window_size);
    motif::MatchList ml;
    ml.ReserveEdgeSpan(window_size + 1);
    uint64_t edges_since_compact = 0;
    for (const auto& e : f.es) {
      if (matcher.SingleEdgeMotif(e) == nullptr) continue;
      window.Push(e);
      matcher.OnEdgeAdded(e, window, &ml);
      while (window.OverCapacity()) {
        auto oldest = window.PopOldest();
        ml.RemoveMatchesWithEdge(oldest->id);
      }
      if (++edges_since_compact >= 1024) {
        ml.Compact();
        edges_since_compact = 0;
      }
    }
    admitted = matcher.stats().edges_admitted;
    fresh = ml.pool().fresh_allocations();
    reused = ml.pool().reused_allocations();
    benchmark::DoNotOptimize(ml.NumLive());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(admitted));
  state.counters["allocs_fresh"] = static_cast<double>(fresh);
  state.counters["allocs_reused"] = static_cast<double>(reused);
}

BENCHMARK(BM_MatcherOnly)->Arg(2000)->Arg(10000)->Unit(benchmark::kMillisecond);

// ------------------------------------------------------- window ring ops
// Steady-state Push / Find / PopOldest cycle at the paper window.
void BM_WindowOps(benchmark::State& state) {
  const size_t window_size = static_cast<size_t>(state.range(0));
  stream::SlidingWindow w(window_size);
  stream::StreamEdge e;
  e.label_u = e.label_v = 0;
  graph::EdgeId next = 0;
  uint64_t sink = 0;
  for (auto _ : state) {
    e.id = next;
    e.u = next * 2;
    e.v = next * 2 + 1;
    w.Push(e);
    const stream::StreamEdge* f = w.Find(next - next % (window_size / 2));
    if (f != nullptr) sink += f->u;
    if (w.OverCapacity()) sink += w.PopOldest()->id;
    ++next;
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}

BENCHMARK(BM_WindowOps)->Arg(10000);

}  // namespace
