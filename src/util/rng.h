// Deterministic pseudo-random number generation for reproducible experiments.
//
// All randomness in the library flows through these generators so that a
// fixed seed reproduces every dataset, stream ordering and partitioning
// bit-for-bit. We deliberately avoid std::mt19937 + std::uniform_*
// distributions because their outputs are not guaranteed identical across
// standard library implementations.

#ifndef LOOM_UTIL_RNG_H_
#define LOOM_UTIL_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace loom {
namespace util {

/// SplitMix64: tiny, fast seeding/stateless mixer (Steele et al.).
/// Primarily used to expand a single user seed into generator state.
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  /// Returns the next 64-bit value in the sequence.
  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  uint64_t state_;
};

/// Xoshiro256**: high-quality general purpose generator (Blackman & Vigna).
/// Deterministic across platforms; used for all dataset generation, stream
/// shuffling and randomised property tests.
class Rng {
 public:
  /// Seeds the generator. Equal seeds yield equal sequences.
  explicit Rng(uint64_t seed = 0x1005u);

  /// Next raw 64-bit value.
  uint64_t Next64();

  /// Uniform integer in [0, bound). Requires bound > 0.
  /// Uses Lemire's nearly-divisionless unbiased bounded generation.
  uint64_t Uniform(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double UniformDouble();

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Samples an index in [0, weights.size()) proportionally to weights.
  /// Zero-weight entries are never selected; requires a positive total.
  size_t WeightedIndex(const std::vector<double>& weights);

  /// Approximately Zipf-distributed rank in [0, n): probability of rank i
  /// proportional to 1/(i+1)^s. Uses rejection-inversion (Hörmann's method
  /// simplified); deterministic given the generator state.
  uint64_t Zipf(uint64_t n, double s);

  /// Fisher-Yates shuffle, deterministic under this generator.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    if (v->size() < 2) return;
    for (size_t i = v->size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(Uniform(i + 1));
      std::swap((*v)[i], (*v)[j]);
    }
  }

 private:
  uint64_t s_[4];
};

}  // namespace util
}  // namespace loom

#endif  // LOOM_UTIL_RNG_H_
