#include "eval/report.h"

#include <cstdio>

#include "util/table_writer.h"

namespace loom {
namespace eval {

void PrintRelativeIptTable(const std::vector<ComparisonResult>& results,
                           std::ostream& os) {
  util::TableWriter t(
      {"dataset", "order", "k", "hash", "ldg", "fennel", "loom",
       "loom vs fennel"});
  for (const ComparisonResult& r : results) {
    const SystemResult* fennel = r.Find(System::kFennel);
    const SystemResult* loom = r.Find(System::kLoom);
    const double loom_vs_fennel =
        (fennel != nullptr && loom != nullptr && fennel->weighted_ipt > 0)
            ? 1.0 - loom->weighted_ipt / fennel->weighted_ipt
            : 0.0;
    std::vector<std::string> row = {r.dataset, stream::ToString(r.order),
                                    std::to_string(r.k)};
    for (System s : AllSystems()) {
      const SystemResult* sr = r.Find(s);
      row.push_back(sr != nullptr ? util::TableWriter::Pct(sr->ipt_vs_hash)
                                  : "-");
    }
    // Positive = Loom suffered fewer ipt than Fennel (an improvement).
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%+.1f%%", loom_vs_fennel * 100.0);
    row.push_back(buf);
    t.AddRow(std::move(row));
  }
  t.Print(os);
}

void PrintTimingTable(const std::vector<ComparisonResult>& results,
                      std::ostream& os) {
  util::TableWriter t({"dataset", "ldg (ms)", "fennel (ms)", "loom (ms)",
                       "hash (ms)"});
  for (const ComparisonResult& r : results) {
    auto cell = [&](System s) {
      const SystemResult* sr = r.Find(s);
      return sr != nullptr ? util::TableWriter::Fmt(sr->ms_per_10k_edges, 1)
                           : std::string("-");
    };
    t.AddRow({r.dataset, cell(System::kLdg), cell(System::kFennel),
              cell(System::kLoom), cell(System::kHash)});
  }
  t.Print(os);
}

void PrintImbalanceTable(const std::vector<ComparisonResult>& results,
                         std::ostream& os) {
  util::TableWriter t({"dataset", "hash", "ldg", "fennel", "loom"});
  for (const ComparisonResult& r : results) {
    auto cell = [&](System s) {
      const SystemResult* sr = r.Find(s);
      return sr != nullptr ? util::TableWriter::Pct(sr->imbalance)
                           : std::string("-");
    };
    t.AddRow({r.dataset, cell(System::kHash), cell(System::kLdg),
              cell(System::kFennel), cell(System::kLoom)});
  }
  t.Print(os);
}

}  // namespace eval
}  // namespace loom
