#include "signature/label_values.h"

#include <cassert>

#include "util/rng.h"

namespace loom {
namespace signature {

LabelValues::LabelValues(size_t num_labels, uint32_t p, uint64_t seed) : p_(p) {
  assert(p >= 3);
  util::Rng rng(seed ^ (static_cast<uint64_t>(p) << 32));
  values_.reserve(num_labels);
  for (size_t i = 0; i < num_labels; ++i) {
    // r(l) uniform in [1, p).
    values_.push_back(static_cast<uint32_t>(1 + rng.Uniform(p - 1)));
  }
}

}  // namespace signature
}  // namespace loom
