#include "graph/pattern_graph.h"

#include <gtest/gtest.h>

namespace loom {
namespace graph {
namespace {

TEST(PatternGraphTest, PathConstruction) {
  PatternGraph p = PatternGraph::Path({0, 1, 2});
  EXPECT_EQ(p.NumVertices(), 3u);
  EXPECT_EQ(p.NumEdges(), 2u);
  EXPECT_TRUE(p.HasEdge(0, 1));
  EXPECT_TRUE(p.HasEdge(1, 2));
  EXPECT_FALSE(p.HasEdge(0, 2));
  EXPECT_TRUE(p.IsConnected());
}

TEST(PatternGraphTest, CycleConstruction) {
  PatternGraph c = PatternGraph::Cycle({0, 1, 0, 1});
  EXPECT_EQ(c.NumVertices(), 4u);
  EXPECT_EQ(c.NumEdges(), 4u);
  for (VertexId v = 0; v < 4; ++v) EXPECT_EQ(c.Degree(v), 2u);
  EXPECT_TRUE(c.IsConnected());
}

TEST(PatternGraphTest, StarConstruction) {
  PatternGraph s = PatternGraph::Star(5, {1, 2, 3});
  EXPECT_EQ(s.NumVertices(), 4u);
  EXPECT_EQ(s.NumEdges(), 3u);
  EXPECT_EQ(s.Degree(0), 3u);
  EXPECT_EQ(s.label(0), 5);
  EXPECT_TRUE(s.IsConnected());
}

TEST(PatternGraphTest, RejectsSelfLoopsAndDuplicates) {
  PatternGraph p;
  VertexId a = p.AddVertex(0);
  VertexId b = p.AddVertex(1);
  EXPECT_TRUE(p.AddEdge(a, b));
  EXPECT_FALSE(p.AddEdge(a, b));  // duplicate
  EXPECT_FALSE(p.AddEdge(b, a));  // reversed duplicate
  EXPECT_FALSE(p.AddEdge(a, a));  // self loop
  EXPECT_EQ(p.NumEdges(), 1u);
}

TEST(PatternGraphTest, DisconnectedDetected) {
  PatternGraph p;
  p.AddVertex(0);
  p.AddVertex(1);
  p.AddVertex(2);
  p.AddEdge(0, 1);
  EXPECT_FALSE(p.IsConnected());
  p.AddEdge(1, 2);
  EXPECT_TRUE(p.IsConnected());
}

TEST(PatternGraphTest, EmptyAndSingletonAreConnected) {
  PatternGraph p;
  EXPECT_TRUE(p.IsConnected());
  p.AddVertex(0);
  EXPECT_TRUE(p.IsConnected());
}

TEST(PatternGraphTest, ParsePathInternsLabels) {
  LabelRegistry reg;
  PatternGraph p = PatternGraph::ParsePath("Author-Paper-Author", &reg);
  EXPECT_EQ(reg.size(), 2u);
  EXPECT_EQ(p.NumVertices(), 3u);
  EXPECT_EQ(p.NumEdges(), 2u);
  EXPECT_EQ(p.label(0), p.label(2));
  EXPECT_NE(p.label(0), p.label(1));
}

TEST(PatternGraphTest, ToStringListsEdges) {
  LabelRegistry reg;
  PatternGraph p = PatternGraph::ParsePath("a-b", &reg);
  EXPECT_EQ(p.ToString(reg), "[a-b]");
}

TEST(PatternGraphTest, NeighborsAreMutual) {
  PatternGraph p = PatternGraph::Cycle({0, 1, 2});
  for (VertexId v = 0; v < p.NumVertices(); ++v) {
    for (VertexId w : p.Neighbors(v)) {
      const auto& back = p.Neighbors(w);
      EXPECT_NE(std::find(back.begin(), back.end(), v), back.end());
    }
  }
}

}  // namespace
}  // namespace graph
}  // namespace loom
