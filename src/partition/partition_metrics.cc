#include "partition/partition_metrics.h"

namespace loom {
namespace partition {

size_t EdgeCut(const graph::LabeledGraph& g, const Partitioning& p) {
  size_t cut = 0;
  for (const graph::Edge& e : g.edges()) {
    if (p.PartitionOf(e.u) != p.PartitionOf(e.v)) ++cut;
  }
  return cut;
}

double EdgeCutRatio(const graph::LabeledGraph& g, const Partitioning& p) {
  if (g.NumEdges() == 0) return 0.0;
  return static_cast<double>(EdgeCut(g, p)) /
         static_cast<double>(g.NumEdges());
}

double Imbalance(const Partitioning& p) {
  const size_t n = p.NumAssigned();
  if (n == 0) return 0.0;
  const double ideal = static_cast<double>(n) / p.k();
  return static_cast<double>(p.MaxSize()) / ideal - 1.0;
}

uint64_t AssignmentHash(const Partitioning& p, size_t num_vertices) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (graph::VertexId v = 0; v < num_vertices; ++v) {
    h ^= static_cast<uint64_t>(p.PartitionOf(v)) + 0x9e37 + v;
    h *= 0x100000001b3ULL;
  }
  return h;
}

bool FullyAssigned(const graph::LabeledGraph& g, const Partitioning& p) {
  for (graph::VertexId v = 0; v < g.NumVertices(); ++v) {
    if (!p.IsAssigned(v)) return false;
  }
  return true;
}

}  // namespace partition
}  // namespace loom
