// Shared helpers for the figure/table reproduction binaries.
//
// Scale note: every harness runs the synthetic datasets at LOOM_BENCH_SCALE
// (default 0.5) so the full suite finishes in minutes on a laptop; set the
// environment variable LOOM_BENCH_SCALE to run larger. Relative results
// (everything the paper reports) are stable across scales.

#ifndef LOOM_BENCH_BENCH_COMMON_H_
#define LOOM_BENCH_BENCH_COMMON_H_

#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "util/rng.h"
#include "util/string_util.h"

namespace loom {
namespace bench {

/// Shared input shapes for the util::simd kernel micro-measurements, so
/// the `simd_kernels` section of BENCH_throughput.json (table2_throughput)
/// and the interactive bench/micro_kernels.cc view measure the SAME
/// workload: an assignment table with kNoPartition holes, neighbour-span
/// index windows, and a paper-k bid table. Deterministic (fixed seed).
struct SimdKernelFixture {
  static constexpr size_t kTableN = 1 << 17;
  static constexpr uint32_t kK = 8;
  static constexpr size_t kRows = 24;

  std::vector<uint32_t> table;   // kTableN entries, 1-in-5 kNoPartition
  std::vector<uint32_t> idx;     // 4096 random table indices (span windows)
  std::vector<double> overlap;   // kRows x kK, ~1/3 positive
  double residual[kK];
  double support[kRows];
  uint32_t count[kK];

  SimdKernelFixture() : table(kTableN), idx(4096), overlap(kRows * kK) {
    util::Rng rng(0x51D0);
    for (auto& t : table) {
      t = rng.Uniform(5) == 0 ? 0xFFFFFFFFu
                              : static_cast<uint32_t>(rng.Uniform(kK));
    }
    for (auto& i : idx) i = static_cast<uint32_t>(rng.Uniform(kTableN));
    for (auto& o : overlap) {
      o = rng.Uniform(3) == 0 ? static_cast<double>(rng.Uniform(5)) : 0.0;
    }
    for (uint32_t si = 0; si < kK; ++si) {
      residual[si] = 0.5;
      count[si] = static_cast<uint32_t>(kRows) - si;
    }
    for (size_t i = 0; i < kRows; ++i) support[i] = 0.25;
  }
};

inline double BenchScale(double fallback = 0.5) {
  const char* env = std::getenv("LOOM_BENCH_SCALE");
  if (env == nullptr) return fallback;
  // Finite-only parse: atof would hand back inf (inf > 0 passes the guard)
  // and the generators would spin forever sizing an infinite dataset.
  double v = 0.0;
  if (!util::ParseFiniteDouble(env, &v) || v <= 0) return fallback;
  return v;
}

inline size_t BenchWindow(size_t fallback = 4000) {
  const char* env = std::getenv("LOOM_BENCH_WINDOW");
  if (env == nullptr) return fallback;
  long v = std::atol(env);
  return v > 0 ? static_cast<size_t>(v) : fallback;
}

/// Output path for machine-readable benchmark results (run_bench.sh diffs
/// this against the committed baseline).
inline std::string BenchJsonPath(const std::string& fallback) {
  const char* env = std::getenv("LOOM_BENCH_JSON");
  return env != nullptr ? env : fallback;
}

inline void Banner(const std::string& title, const std::string& paper_ref) {
  std::cout << "\n=== " << title << " ===\n"
            << "(reproduces " << paper_ref
            << "; scale=" << BenchScale() << ", set LOOM_BENCH_SCALE to change)\n\n";
}

/// Minimal JSON emitter for BENCH_*.json files: objects/arrays with
/// automatic comma placement. Values are written pre-formatted; strings are
/// escaped minimally (keys/values here are identifiers and numbers).
class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& os) : os_(os) {}

  JsonWriter& BeginObject() { return Open('{'); }
  JsonWriter& EndObject() { return Close('}'); }
  JsonWriter& BeginArray() { return Open('['); }
  JsonWriter& EndArray() { return Close(']'); }

  JsonWriter& Key(const std::string& k) {
    Comma();
    os_ << '"' << k << "\":";
    just_keyed_ = true;
    return *this;
  }

  JsonWriter& Value(const std::string& s) { return Raw('"' + s + '"'); }
  JsonWriter& Value(const char* s) { return Value(std::string(s)); }
  JsonWriter& Value(double v) {
    std::ostringstream tmp;
    tmp << v;
    return Raw(tmp.str());
  }
  JsonWriter& Value(uint64_t v) { return Raw(std::to_string(v)); }
  JsonWriter& Value(int v) { return Raw(std::to_string(v)); }

  /// Hex string for hashes (stable, diff-friendly).
  JsonWriter& HexValue(uint64_t v) {
    std::ostringstream tmp;
    tmp << std::hex << v;
    return Value(tmp.str());
  }

 private:
  JsonWriter& Open(char c) {
    Comma();
    os_ << c;
    need_comma_.push_back(false);
    just_keyed_ = false;
    return *this;
  }
  JsonWriter& Close(char c) {
    os_ << c;
    need_comma_.pop_back();
    if (!need_comma_.empty()) need_comma_.back() = true;
    return *this;
  }
  JsonWriter& Raw(const std::string& s) {
    Comma();
    os_ << s;
    if (!need_comma_.empty()) need_comma_.back() = true;
    just_keyed_ = false;
    return *this;
  }
  void Comma() {
    if (just_keyed_) {
      just_keyed_ = false;
      return;
    }
    if (!need_comma_.empty() && need_comma_.back()) os_ << ',';
    if (!need_comma_.empty()) need_comma_.back() = false;
  }

  std::ostream& os_;
  std::vector<bool> need_comma_;
  bool just_keyed_ = false;
};

}  // namespace bench
}  // namespace loom

#endif  // LOOM_BENCH_BENCH_COMMON_H_
