// Open-addressing hash set of uint64 keys.
//
// std::unordered_set allocates a node per insert and chases a pointer per
// probe; on Loom's match-dedup path (one insert per committed match, one
// erase per retired match) that is a heap allocation at stream rate. This
// set stores keys inline in a power-of-two table with linear probing and a
// parallel state byte (empty/full/tombstone), so inserts are amortised
// store-only. Grows at 70% load (counting tombstones).

#ifndef LOOM_UTIL_FLAT_SET64_H_
#define LOOM_UTIL_FLAT_SET64_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/bits.h"

namespace loom {
namespace util {

class FlatSet64 {
 public:
  FlatSet64() { Rehash(kMinSlots); }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Inserts `key`; false if already present.
  bool Insert(uint64_t key) {
    if ((used_ + 1) * 10 >= slots_.size() * 7) {
      // Rebuild at the size that fits the LIVE set (×4 headroom): a churny
      // table (inserts balanced by erases) stays bounded instead of doubling
      // forever on tombstone pressure.
      Rehash(std::max(kMinSlots, NextPow2((size_ + 1) * 4)));
    }
    size_t i = Mix(key) & mask_;
    size_t first_tomb = kNone;
    while (true) {
      if (state_[i] == kEmpty) {
        const size_t dst = first_tomb != kNone ? first_tomb : i;
        slots_[dst] = key;
        state_[dst] = kFull;
        ++size_;
        if (dst == i) ++used_;  // tombstone reuse doesn't raise load
        return true;
      }
      if (state_[i] == kFull && slots_[i] == key) return false;
      if (state_[i] == kTombstone && first_tomb == kNone) first_tomb = i;
      i = (i + 1) & mask_;
    }
  }

  bool Contains(uint64_t key) const {
    size_t i = Mix(key) & mask_;
    while (state_[i] != kEmpty) {
      if (state_[i] == kFull && slots_[i] == key) return true;
      i = (i + 1) & mask_;
    }
    return false;
  }

  /// Erases `key`; false if absent.
  bool Erase(uint64_t key) {
    size_t i = Mix(key) & mask_;
    while (state_[i] != kEmpty) {
      if (state_[i] == kFull && slots_[i] == key) {
        state_[i] = kTombstone;
        --size_;
        return true;
      }
      i = (i + 1) & mask_;
    }
    return false;
  }

  void Clear() {
    std::fill(state_.begin(), state_.end(), kEmpty);
    size_ = 0;
    used_ = 0;
  }

 private:
  static constexpr size_t kMinSlots = 16;
  static constexpr size_t kNone = ~size_t{0};
  static constexpr uint8_t kEmpty = 0, kFull = 1, kTombstone = 2;

  static uint64_t Mix(uint64_t key) { return Mix64(key); }

  void Rehash(size_t new_slots) {
    std::vector<uint64_t> old_slots = std::move(slots_);
    std::vector<uint8_t> old_state = std::move(state_);
    slots_.assign(new_slots, 0);
    state_.assign(new_slots, kEmpty);
    mask_ = new_slots - 1;
    used_ = size_;
    for (size_t j = 0; j < old_slots.size(); ++j) {
      if (old_state[j] != kFull) continue;
      size_t i = Mix(old_slots[j]) & mask_;
      while (state_[i] != kEmpty) i = (i + 1) & mask_;
      slots_[i] = old_slots[j];
      state_[i] = kFull;
    }
  }

  std::vector<uint64_t> slots_;
  std::vector<uint8_t> state_;
  size_t mask_ = 0;
  size_t size_ = 0;  // full slots
  size_t used_ = 0;  // full + freshly consumed empty slots since rehash
};

}  // namespace util
}  // namespace loom

#endif  // LOOM_UTIL_FLAT_SET64_H_
