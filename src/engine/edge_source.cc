#include "engine/edge_source.h"

#include <cassert>

namespace loom {
namespace engine {

GraphEdgeSource::GraphEdgeSource(const graph::LabeledGraph& graph,
                                 std::vector<graph::EdgeId> edge_order)
    : graph_(graph), order_(std::move(edge_order)) {
  assert(order_.size() == graph_.NumEdges());
}

size_t GraphEdgeSource::NextBatch(std::span<stream::StreamEdge> out) {
  size_t produced = 0;
  while (produced < out.size() && pos_ < order_.size()) {
    const graph::Edge& e = graph_.edge(order_[pos_]);
    stream::StreamEdge& se = out[produced++];
    se.id = static_cast<graph::EdgeId>(pos_++);
    se.u = e.u;
    se.v = e.v;
    se.label_u = graph_.label(e.u);
    se.label_v = graph_.label(e.v);
  }
  return produced;
}

size_t EdgeStreamSource::NextBatch(std::span<stream::StreamEdge> out) {
  size_t produced = 0;
  while (produced < out.size() && pos_ < es_.size()) {
    out[produced++] = es_[pos_++];
  }
  return produced;
}

std::unique_ptr<EdgeSource> MakeEdgeSource(const graph::LabeledGraph& graph,
                                           stream::StreamOrder order,
                                           uint64_t seed) {
  return std::make_unique<GraphEdgeSource>(
      graph, stream::EdgeOrderFor(graph, order, seed));
}

std::unique_ptr<EdgeSource> MakeEdgeSource(const datasets::Dataset& ds,
                                           stream::StreamOrder order,
                                           uint64_t seed) {
  return MakeEdgeSource(ds.graph, order, seed);
}

}  // namespace engine
}  // namespace loom
