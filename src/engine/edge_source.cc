#include "engine/edge_source.h"

#include <stdexcept>
#include <string>

namespace loom {
namespace engine {

GraphEdgeSource::GraphEdgeSource(const graph::LabeledGraph& graph,
                                 std::vector<graph::EdgeId> edge_order)
    : graph_(graph), order_(std::move(edge_order)) {
  // A malformed permutation silently streams the wrong graph (skipped or
  // doubled edges), which corrupts every downstream quality number — so
  // it is a real error in Release builds too, not a debug assert.
  if (order_.size() != graph_.NumEdges()) {
    throw std::invalid_argument(
        "GraphEdgeSource: edge_order has " + std::to_string(order_.size()) +
        " entries but the graph has " + std::to_string(graph_.NumEdges()) +
        " edges (expected a permutation of its edge ids)");
  }
  std::vector<bool> seen(order_.size(), false);
  for (size_t i = 0; i < order_.size(); ++i) {
    const graph::EdgeId e = order_[i];
    if (e >= order_.size()) {
      throw std::invalid_argument(
          "GraphEdgeSource: edge_order[" + std::to_string(i) + "] = " +
          std::to_string(e) + " is out of range (graph has " +
          std::to_string(order_.size()) +
          " edges; expected a permutation of [0, m))");
    }
    if (seen[e]) {
      throw std::invalid_argument(
          "GraphEdgeSource: edge_order repeats edge id " + std::to_string(e) +
          " (position " + std::to_string(i) +
          "); expected a permutation of [0, m)");
    }
    seen[e] = true;
  }
}

size_t GraphEdgeSource::NextBatch(std::span<stream::StreamEdge> out) {
  size_t produced = 0;
  while (produced < out.size() && pos_ < order_.size()) {
    const graph::Edge& e = graph_.edge(order_[pos_]);
    stream::StreamEdge& se = out[produced++];
    se.id = static_cast<graph::EdgeId>(pos_++);
    se.u = e.u;
    se.v = e.v;
    se.label_u = graph_.label(e.u);
    se.label_v = graph_.label(e.v);
  }
  return produced;
}

size_t EdgeStreamSource::NextBatch(std::span<stream::StreamEdge> out) {
  size_t produced = 0;
  while (produced < out.size() && pos_ < es_.size()) {
    out[produced++] = es_[pos_++];
  }
  return produced;
}

std::unique_ptr<EdgeSource> MakeEdgeSource(const graph::LabeledGraph& graph,
                                           stream::StreamOrder order,
                                           uint64_t seed) {
  return std::make_unique<GraphEdgeSource>(
      graph, stream::EdgeOrderFor(graph, order, seed));
}

std::unique_ptr<EdgeSource> MakeEdgeSource(const datasets::Dataset& ds,
                                           stream::StreamOrder order,
                                           uint64_t seed) {
  return MakeEdgeSource(ds.graph, order, seed);
}

}  // namespace engine
}  // namespace loom
