#include "stream/sliding_window.h"

#include <cassert>

namespace loom {
namespace stream {

void SlidingWindow::Push(const StreamEdge& e) {
  assert(e.id != graph::kInvalidEdge);
  assert(edges_.find(e.id) == edges_.end());
  fifo_.push_back(e.id);
  edges_.emplace(e.id, e);
}

const StreamEdge* SlidingWindow::Find(graph::EdgeId id) const {
  auto it = edges_.find(id);
  return it == edges_.end() ? nullptr : &it->second;
}

void SlidingWindow::SkimFrontMutable() {
  while (!fifo_.empty() && edges_.find(fifo_.front()) == edges_.end()) {
    fifo_.pop_front();
  }
}

std::optional<StreamEdge> SlidingWindow::PopOldest() {
  SkimFrontMutable();
  if (fifo_.empty()) return std::nullopt;
  graph::EdgeId id = fifo_.front();
  fifo_.pop_front();
  auto it = edges_.find(id);
  StreamEdge e = it->second;
  edges_.erase(it);
  return e;
}

const StreamEdge* SlidingWindow::PeekOldest() const {
  // const_cast-free skim: scan past dead ids without mutating.
  for (graph::EdgeId id : fifo_) {
    auto it = edges_.find(id);
    if (it != edges_.end()) return &it->second;
  }
  return nullptr;
}

bool SlidingWindow::Remove(graph::EdgeId id) {
  return edges_.erase(id) > 0;  // fifo entry is skimmed lazily
}

}  // namespace stream
}  // namespace loom
