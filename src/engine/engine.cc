#include "engine/engine.h"

#include <algorithm>

#include "core/loom_partitioner.h"
#include "core/loom_sharded.h"
#include "partition/edge/dbh_partitioner.h"
#include "partition/edge/hdrf_partitioner.h"
#include "partition/edge/hep_partitioner.h"
#include "partition/fennel_partitioner.h"
#include "partition/hash_partitioner.h"
#include "partition/ldg_partitioner.h"
#include "util/simd.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace loom {
namespace engine {

namespace {

core::LoomOptions ToLoomOptions(const EngineOptions& o) {
  core::LoomOptions lo;
  lo.base = o.BaseConfig();
  lo.window_size = static_cast<size_t>(o.window_size);
  lo.support_threshold = o.support_threshold;
  lo.prime = o.prime;
  lo.signature_seed = o.signature_seed;
  lo.equal_opportunism.alpha = o.alpha;
  lo.equal_opportunism.balance_b = o.balance_b;
  lo.equal_opportunism.neighbor_bid_weight = o.neighbor_bid_weight;
  lo.equal_opportunism.disable_rationing = o.disable_rationing;
  lo.matcher.max_matches_per_vertex =
      static_cast<size_t>(o.max_matches_per_vertex);
  lo.compact_interval = static_cast<size_t>(o.compact_interval);
  return lo;
}

void RegisterBuiltins(PartitionerRegistry* r) {
  r->Register("hash", [](const EngineOptions& o, const BuildContext&,
                         std::string*) -> std::unique_ptr<partition::Partitioner> {
    return std::make_unique<partition::HashPartitioner>(o.BaseConfig());
  });
  r->Register("ldg", [](const EngineOptions& o, const BuildContext&,
                        std::string*) -> std::unique_ptr<partition::Partitioner> {
    return std::make_unique<partition::LdgPartitioner>(o.BaseConfig());
  });
  r->Register("fennel", [](const EngineOptions& o, const BuildContext&,
                           std::string*) -> std::unique_ptr<partition::Partitioner> {
    return std::make_unique<partition::FennelPartitioner>(o.BaseConfig(),
                                                          o.fennel_gamma);
  });
  r->Register("loom", [](const EngineOptions& o, const BuildContext& ctx,
                         std::string* error) -> std::unique_ptr<partition::Partitioner> {
    if (ctx.workload == nullptr) {
      if (error != nullptr) {
        *error = "backend 'loom' needs a workload: pass a BuildContext with "
                 "context.workload set (the TPSTry++ is derived from it)";
      }
      return nullptr;
    }
    return std::make_unique<core::LoomPartitioner>(
        ToLoomOptions(o), *ctx.workload, ctx.num_labels);
  });
  r->Register("loom-sharded", [](const EngineOptions& o,
                                 const BuildContext& ctx, std::string* error)
                  -> std::unique_ptr<partition::Partitioner> {
    if (ctx.workload == nullptr) {
      if (error != nullptr) {
        *error = "backend 'loom-sharded' needs a workload: pass a "
                 "BuildContext with context.workload set (the TPSTry++ is "
                 "derived from it)";
      }
      return nullptr;
    }
    core::LoomShardedOptions so;
    so.loom = ToLoomOptions(o);
    so.shards = o.shards;
    so.shard_queue_depth = static_cast<size_t>(o.shard_queue_depth);
    return std::make_unique<core::LoomShardedPartitioner>(so, *ctx.workload,
                                                          ctx.num_labels);
  });
  // Streaming EDGE partitioners (partition/edge/): they place edges, not
  // vertices, and report the (replication factor, edge balance, edge hash)
  // quality triple through FillFinalStats.
  r->Register("hdrf", [](const EngineOptions& o, const BuildContext&,
                         std::string*) -> std::unique_ptr<partition::Partitioner> {
    return std::make_unique<partition::edge::HdrfPartitioner>(
        o.BaseConfig(), o.lambda, o.epsilon);
  });
  r->Register("dbh", [](const EngineOptions& o, const BuildContext&,
                        std::string*) -> std::unique_ptr<partition::Partitioner> {
    return std::make_unique<partition::edge::DbhPartitioner>(o.BaseConfig());
  });
  r->Register("hep", [](const EngineOptions& o, const BuildContext&,
                        std::string*) -> std::unique_ptr<partition::Partitioner> {
    return std::make_unique<partition::edge::HepPartitioner>(
        o.BaseConfig(), o.threshold_factor, o.lambda, o.epsilon);
  });
}

}  // namespace

PartitionerRegistry& PartitionerRegistry::Global() {
  static PartitionerRegistry* registry = [] {
    auto* r = new PartitionerRegistry();
    RegisterBuiltins(r);
    return r;
  }();
  return *registry;
}

bool PartitionerRegistry::Register(const std::string& name, Factory factory) {
  if (Contains(name)) return false;
  factories_.emplace_back(name, std::move(factory));
  return true;
}

bool PartitionerRegistry::Contains(std::string_view name) const {
  for (const auto& [n, f] : factories_) {
    if (n == name) return true;
  }
  return false;
}

std::vector<std::string> PartitionerRegistry::Names() const {
  std::vector<std::string> out;
  out.reserve(factories_.size());
  for (const auto& [n, f] : factories_) out.push_back(n);
  return out;
}

std::unique_ptr<partition::Partitioner> PartitionerRegistry::Create(
    std::string_view name, const EngineOptions& options,
    const BuildContext& context, std::string* error) const {
  for (const auto& [n, factory] : factories_) {
    if (n != name) continue;
    // Install the requested kernel dispatch level ("auto" = leave it
    // alone). The option parser validates the spelling, but options built
    // programmatically can hold anything — a harness that believes it
    // pinned a level must hear about a typo, not silently run at the
    // previous level. Process-wide; harmless either way, since every
    // level is bit-identical.
    if (!util::simd::Configure(options.simd)) {
      if (error != nullptr) {
        *error = "invalid EngineOptions::simd value '" + options.simd +
                 "' (expected auto|scalar|sse2|avx2)";
      }
      return nullptr;
    }
    return factory(options, context, error);
  }
  if (error != nullptr) {
    std::string known;
    for (const auto& [n, f] : factories_) {
      if (!known.empty()) known += ", ";
      known += n;
    }
    *error = "unknown partitioner backend '" + std::string(name) +
             "'; registered backends: " + known;
  }
  return nullptr;
}

bool ParseBackendSpec(std::string_view spec, BackendSpec* out,
                      std::string* error) {
  out->name.clear();
  out->overrides.clear();
  const size_t colon = spec.find(':');
  out->name = std::string(spec.substr(0, colon));
  if (out->name.empty()) {
    if (error != nullptr) {
      *error = "empty backend name in spec '" + std::string(spec) +
               "' (expected name or name:key=value,...)";
    }
    return false;
  }
  if (colon == std::string_view::npos) return true;
  for (std::string& kv :
       util::Split(std::string(spec.substr(colon + 1)), ',')) {
    if (!kv.empty()) out->overrides.push_back(std::move(kv));
  }
  return true;
}

std::unique_ptr<partition::Partitioner> BuildPartitioner(
    std::string_view spec, EngineOptions base, const BuildContext& context,
    std::string* error) {
  BackendSpec parsed;
  if (!ParseBackendSpec(spec, &parsed, error)) return nullptr;
  if (!base.ApplyOverrides(parsed.overrides, error)) return nullptr;
  return PartitionerRegistry::Global().Create(parsed.name, base, context,
                                              error);
}

DriveResult Drive(partition::Partitioner* partitioner, EdgeSource* source,
                  EngineObserver* observer, const DriveConfig& config) {
  DriveResult result;
  EngineObserver* previous = partitioner->observer();
  if (observer != nullptr) partitioner->SetObserver(observer);
  // Progress goes to whoever is subscribed: the drive's own observer, or
  // one the caller attached via SetObserver beforehand.
  EngineObserver* progress_to =
      observer != nullptr ? observer : previous;

  std::vector<stream::StreamEdge> batch(std::max<size_t>(config.batch_size, 1));
  size_t next_progress =
      config.progress_interval > 0 ? config.progress_interval : 0;

  auto emit_progress = [&](bool finalizing) {
    ProgressEvent p;
    // Default to this drive's count; backends that track lifetime totals
    // (Loom) override it in FillProgress so the event stays internally
    // consistent across resumed drives (Finalize is a checkpoint).
    p.edges_ingested = result.edges;
    p.finalizing = finalizing;
    partitioner->FillProgress(&p);
    progress_to->OnProgress(p);
  };

  util::Timer timer;
  for (;;) {
    const size_t n = source->NextBatch(batch);
    if (n == 0) break;
    util::Timer batch_timer;
    partitioner->IngestBatch(std::span<const stream::StreamEdge>(
        batch.data(), n));
    if (progress_to != nullptr) {
      progress_to->OnBatch(
          {n, static_cast<uint64_t>(batch_timer.ElapsedMs() * 1e6)});
    }
    result.edges += n;
    if (next_progress != 0 && result.edges >= next_progress &&
        progress_to != nullptr) {
      next_progress += config.progress_interval;
      emit_progress(/*finalizing=*/false);
    }
  }
  if (config.finalize) partitioner->Finalize();
  result.ms = timer.ElapsedMs();

  if (progress_to != nullptr) {
    emit_progress(/*finalizing=*/true);
    if (config.finalize) {
      // The run is complete: hand subscribers the backend's deterministic
      // end-of-run counters (empty for backends that report none).
      FinalStatsEvent final_stats;
      partitioner->FillFinalStats(&final_stats);
      progress_to->OnFinalStats(final_stats);
    }
  }
  if (observer != nullptr) partitioner->SetObserver(previous);
  return result;
}

}  // namespace engine
}  // namespace loom
