#include "partition/fennel_partitioner.h"

#include <cmath>
#include <vector>

namespace loom {
namespace partition {

FennelPartitioner::FennelPartitioner(const PartitionerConfig& config,
                                     double gamma)
    : partitioning_(config.k, config.expected_vertices, config.max_imbalance),
      seen_(config.expected_vertices, config.adj_page_entries,
            /*expected_entries=*/2 * config.expected_edges),
      gamma_(gamma) {
  const double n = static_cast<double>(
      config.expected_vertices > 0 ? config.expected_vertices : 1);
  const double m = static_cast<double>(
      config.expected_edges > 0 ? config.expected_edges : 1);
  // α = m · k^(γ-1) / n^γ  (for γ=1.5 this is the paper's √k·m/n^1.5).
  alpha_ = m * std::pow(static_cast<double>(config.k), gamma_ - 1.0) /
           std::pow(n, gamma_);
}

graph::PartitionId FennelPartitioner::ChooseFor(graph::VertexId v) const {
  const uint32_t k = partitioning_.k();
  std::vector<uint32_t> counts(k, 0);
  for (graph::VertexId w : seen_.Neighbors(v)) {
    graph::PartitionId p = partitioning_.PartitionOf(w);
    if (p != graph::kNoPartition) ++counts[p];
  }
  graph::PartitionId best = graph::kNoPartition;
  double best_score = 0.0;
  for (graph::PartitionId p = 0; p < k; ++p) {
    if (partitioning_.AtCapacity(p)) continue;
    const double load = static_cast<double>(partitioning_.Size(p));
    const double score = static_cast<double>(counts[p]) -
                         alpha_ * gamma_ * std::pow(load, gamma_ - 1.0);
    if (best == graph::kNoPartition || score > best_score ||
        (score == best_score &&
         partitioning_.Size(p) < partitioning_.Size(best))) {
      best = p;
      best_score = score;
    }
  }
  return best == graph::kNoPartition ? partitioning_.LeastLoaded() : best;
}

void FennelPartitioner::Ingest(const stream::StreamEdge& e) {
  seen_.TouchVertex(e.u, e.label_u);
  seen_.TouchVertex(e.v, e.label_v);
  // Place endpoints one at a time so the second sees the first (interpolated
  // greedy handles both-new edges by clustering them together).
  if (!partitioning_.IsAssigned(e.u)) {
    // Let u "see" v through this edge when v is already placed.
    seen_.AddEdge(e.u, e.v);
    AssignAndNotify(&partitioning_, e.u, ChooseFor(e.u));
    if (!partitioning_.IsAssigned(e.v)) {
      AssignAndNotify(&partitioning_, e.v, ChooseFor(e.v));
    }
    return;
  }
  seen_.AddEdge(e.u, e.v);
  if (!partitioning_.IsAssigned(e.v)) {
    AssignAndNotify(&partitioning_, e.v, ChooseFor(e.v));
  }
}

bool FennelPartitioner::SaveState(io::CheckpointWriter* w, std::string* error) const {
  (void)error;
  partitioning_.SaveTo(w);
  seen_.SaveTo(w, "seen_graph");
  return true;
}

bool FennelPartitioner::RestoreState(io::CheckpointReader* r, std::string* error) {
  (void)error;
  partitioning_.LoadFrom(r);
  seen_.LoadFrom(r, "seen_graph");
  return true;
}

}  // namespace partition
}  // namespace loom
