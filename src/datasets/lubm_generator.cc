#include "datasets/lubm_generator.h"

#include <algorithm>
#include <vector>

#include "util/rng.h"

namespace loom {
namespace datasets {

void EmitLubm(const LubmConfig& config, graph::LabelRegistry* registry,
              GraphSink* sink) {
  auto& reg = *registry;
  GraphSink& b = *sink;
  const graph::LabelId kUniversity = reg.Intern("University");
  const graph::LabelId kDepartment = reg.Intern("Department");
  const graph::LabelId kFullProfessor = reg.Intern("FullProfessor");
  const graph::LabelId kAssociateProfessor = reg.Intern("AssociateProfessor");
  const graph::LabelId kAssistantProfessor = reg.Intern("AssistantProfessor");
  const graph::LabelId kLecturer = reg.Intern("Lecturer");
  const graph::LabelId kGraduateStudent = reg.Intern("GraduateStudent");
  const graph::LabelId kUndergraduateStudent = reg.Intern("UndergraduateStudent");
  const graph::LabelId kCourse = reg.Intern("Course");
  const graph::LabelId kGraduateCourse = reg.Intern("GraduateCourse");
  const graph::LabelId kPublication = reg.Intern("Publication");
  const graph::LabelId kResearchGroup = reg.Intern("ResearchGroup");
  const graph::LabelId kTeachingAssistant = reg.Intern("TeachingAssistant");
  const graph::LabelId kResearchAssistant = reg.Intern("ResearchAssistant");
  const graph::LabelId kChair = reg.Intern("Chair");

  util::Rng rng(config.seed);

  // Faculty across all universities, for cross-institution co-authorship —
  // without it each university is an isolated component and any balanced
  // partitioner trivially achieves zero cut.
  std::vector<graph::VertexId> global_faculty;

  for (size_t uni_i = 0; uni_i < std::max<size_t>(config.universities, 1);
       ++uni_i) {
    const graph::VertexId uni = b.AddVertex(kUniversity);
    const size_t n_depts = static_cast<size_t>(rng.UniformInt(
        static_cast<int64_t>(config.min_departments),
        static_cast<int64_t>(std::max(config.max_departments,
                                      config.min_departments))));
    for (size_t d = 0; d < n_depts; ++d) {
      const graph::VertexId dept = b.AddVertex(kDepartment);
      b.AddEdge(dept, uni);
      // Chair heads the department.
      const graph::VertexId chair = b.AddVertex(kChair);
      b.AddEdge(chair, dept);

      // Faculty (scaled-down LUBM profile counts).
      std::vector<graph::VertexId> faculty;
      auto add_faculty = [&](graph::LabelId l, size_t lo, size_t hi) {
        const size_t n = lo + rng.Uniform(hi - lo + 1);
        for (size_t i = 0; i < n; ++i) {
          graph::VertexId f = b.AddVertex(l);
          b.AddEdge(f, dept);
          faculty.push_back(f);
        }
      };
      add_faculty(kFullProfessor, 2, 4);
      add_faculty(kAssociateProfessor, 3, 5);
      add_faculty(kAssistantProfessor, 2, 4);
      add_faculty(kLecturer, 1, 3);

      // Research groups, each led by a faculty member.
      const size_t n_groups = 1 + rng.Uniform(3);
      for (size_t gi = 0; gi < n_groups; ++gi) {
        graph::VertexId group = b.AddVertex(kResearchGroup);
        b.AddEdge(group, dept);
        b.AddEdge(group, faculty[rng.Uniform(faculty.size())]);
      }

      // Courses taught by faculty.
      std::vector<graph::VertexId> courses, grad_courses;
      const size_t n_courses = 6 + rng.Uniform(6);
      for (size_t ci = 0; ci < n_courses; ++ci) {
        graph::VertexId c = b.AddVertex(kCourse);
        b.AddEdge(c, faculty[rng.Uniform(faculty.size())]);  // teacherOf
        courses.push_back(c);
      }
      const size_t n_gcourses = 3 + rng.Uniform(4);
      for (size_t ci = 0; ci < n_gcourses; ++ci) {
        graph::VertexId c = b.AddVertex(kGraduateCourse);
        b.AddEdge(c, faculty[rng.Uniform(faculty.size())]);
        grad_courses.push_back(c);
      }

      // Graduate students: advisor, 1-3 graduate courses, assistantships.
      std::vector<graph::VertexId> grads;
      const size_t n_grads = 8 + rng.Uniform(8);
      for (size_t si = 0; si < n_grads; ++si) {
        graph::VertexId s = b.AddVertex(kGraduateStudent);
        b.AddEdge(s, dept);  // memberOf
        b.AddEdge(s, faculty[rng.Uniform(faculty.size())]);  // advisor
        const size_t n_take = 1 + rng.Uniform(3);
        for (size_t t = 0; t < n_take; ++t) {
          b.AddEdge(s, grad_courses[rng.Uniform(grad_courses.size())]);
        }
        if (rng.Bernoulli(0.25)) {
          graph::VertexId ta = b.AddVertex(kTeachingAssistant);
          b.AddEdge(ta, s);
          b.AddEdge(ta, courses[rng.Uniform(courses.size())]);
        }
        if (rng.Bernoulli(0.25)) {
          graph::VertexId ra = b.AddVertex(kResearchAssistant);
          b.AddEdge(ra, s);
        }
        grads.push_back(s);
      }

      // Undergraduates: 2-4 courses each.
      const size_t n_under = 20 + rng.Uniform(16);
      for (size_t si = 0; si < n_under; ++si) {
        graph::VertexId s = b.AddVertex(kUndergraduateStudent);
        b.AddEdge(s, dept);
        const size_t n_take = 2 + rng.Uniform(3);
        for (size_t t = 0; t < n_take; ++t) {
          b.AddEdge(s, courses[rng.Uniform(courses.size())]);
        }
      }

      // Publications: faculty-led, often with a graduate co-author, and
      // sometimes (~12%) with an external collaborator from another
      // department or university.
      for (graph::VertexId f : faculty) {
        const size_t n_pubs = rng.Uniform(4);  // 0-3
        for (size_t pi = 0; pi < n_pubs; ++pi) {
          graph::VertexId pub = b.AddVertex(kPublication);
          b.AddEdge(pub, f);
          if (!grads.empty() && rng.Bernoulli(0.7)) {
            b.AddEdge(pub, grads[rng.Uniform(grads.size())]);
          }
          if (!global_faculty.empty() && rng.Bernoulli(0.12)) {
            b.AddEdge(pub,
                      global_faculty[rng.Uniform(global_faculty.size())]);
          }
        }
      }
      global_faculty.insert(global_faculty.end(), faculty.begin(),
                            faculty.end());
    }
  }
}

Dataset GenerateLubm(const LubmConfig& config) {
  Dataset ds;
  ds.meta.name = config.name;
  ds.meta.real_world_analog = false;
  ds.meta.description = "University records (synthetic LUBM analog)";

  BuilderSink sink;
  EmitLubm(config, &ds.registry, &sink);
  ds.graph = sink.Build();
  return ds;
}

}  // namespace datasets
}  // namespace loom
