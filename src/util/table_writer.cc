#include "util/table_writer.h"

#include <algorithm>
#include <cstdio>
#include <iomanip>

namespace loom {
namespace util {

TableWriter::TableWriter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TableWriter::AddRow(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

void TableWriter::Print(std::ostream& os) const {
  std::vector<size_t> width(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto emit = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(width[c])) << row[c];
      if (c + 1 < row.size()) os << "  ";
    }
    os << "\n";
  };
  emit(header_);
  std::string rule;
  for (size_t c = 0; c < header_.size(); ++c) {
    rule.append(width[c], '-');
    if (c + 1 < header_.size()) rule.append("  ");
  }
  os << rule << "\n";
  for (const auto& row : rows_) emit(row);
}

std::string TableWriter::Fmt(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  return buf;
}

std::string TableWriter::Pct(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", digits, v * 100.0);
  return buf;
}

}  // namespace util
}  // namespace loom
