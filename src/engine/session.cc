#include "engine/session.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <stdexcept>

#include "io/checkpoint.h"
#include "util/timer.h"

namespace loom {
namespace engine {

uint64_t RunReport::Stat(std::string_view name, uint64_t fallback) const {
  return FindCounter(backend_stats, name, fallback);
}

void Session::Fanout::OnAssign(const AssignEvent& e) {
  stats.OnAssign(e);
  for (io::AssignmentSink* sink : sinks) sink->Append(e.vertex, e.partition);
  for (EngineObserver* o : observers) o->OnAssign(e);
}

void Session::Fanout::OnEdgeAssign(const EdgeAssignEvent& e) {
  for (io::EdgeAssignmentSink* sink : edge_sinks) {
    sink->Append(e.edge, e.u, e.v, e.partition);
  }
  for (EngineObserver* o : observers) o->OnEdgeAssign(e);
}

void Session::Fanout::OnEviction(const EvictionEvent& e) {
  stats.OnEviction(e);
  for (EngineObserver* o : observers) o->OnEviction(e);
}

void Session::Fanout::OnClusterDecision(const ClusterDecisionEvent& e) {
  stats.OnClusterDecision(e);
  for (EngineObserver* o : observers) o->OnClusterDecision(e);
}

void Session::Fanout::OnProgress(const ProgressEvent& e) {
  stats.OnProgress(e);
  for (EngineObserver* o : observers) o->OnProgress(e);
}

void Session::Fanout::OnBatch(const BatchEvent& e) {
  for (EngineObserver* o : observers) o->OnBatch(e);
}

void Session::Fanout::OnFinalStats(const FinalStatsEvent& e) {
  stats.OnFinalStats(e);
  for (EngineObserver* o : observers) o->OnFinalStats(e);
}

std::unique_ptr<Session> Session::Create(const SessionConfig& config,
                                         const BuildContext& context,
                                         std::string* error) {
  std::unique_ptr<partition::Partitioner> partitioner =
      BuildPartitioner(config.spec, config.options, context, error);
  if (partitioner == nullptr) return nullptr;
  auto session =
      std::unique_ptr<Session>(new Session(config, std::move(partitioner)));
  // Re-apply the spec's inline overrides onto a copy of the base options so
  // the checkpoint fingerprint records what the backend was actually built
  // with. BuildPartitioner already validated both steps, so neither can fail.
  BackendSpec parsed;
  std::string ignored;
  const bool ok = ParseBackendSpec(config.spec, &parsed, &ignored) &&
                  session->resolved_options_.ApplyOverrides(parsed.overrides,
                                                            &ignored);
  assert(ok && "spec re-parse after successful build");
  (void)ok;
  return session;
}

Session::Session(const SessionConfig& config,
                 std::unique_ptr<partition::Partitioner> partitioner)
    : config_(config),
      resolved_options_(config.options),
      partitioner_(std::move(partitioner)) {
  partitioner_->SetObserver(&fanout_);
}

Session::~Session() {
  if (partitioner_ != nullptr) partitioner_->SetObserver(nullptr);
}

void Session::AddObserver(EngineObserver* observer) {
  fanout_.observers.push_back(observer);
}

void Session::AddSink(io::AssignmentSink* sink) {
  fanout_.sinks.push_back(sink);
}

void Session::AddEdgeSink(io::EdgeAssignmentSink* sink) {
  fanout_.edge_sinks.push_back(sink);
}

RunReport Session::Run(EdgeSource& source) {
  // Drive with no drive-local observer: the session's fanout is already
  // subscribed, so events (including the final progress + final stats)
  // reach it through the standing subscription.
  const DriveResult driven =
      Drive(partitioner_.get(), &source, nullptr, config_.drive);
  edges_ += driven.edges;
  ms_ += driven.ms;
  FlushSinks();
  return MakeReport();
}

size_t Session::IngestSome(EdgeSource& source, size_t max_edges) {
  const size_t batch_cap = std::max<size_t>(config_.drive.batch_size, 1);
  std::vector<stream::StreamEdge> batch(std::min(batch_cap, max_edges));
  size_t done = 0;
  util::Timer timer;
  while (done < max_edges) {
    const size_t want = std::min(batch_cap, max_edges - done);
    const size_t n =
        source.NextBatch(std::span<stream::StreamEdge>(batch.data(), want));
    if (n == 0) break;
    util::Timer batch_timer;
    partitioner_->IngestBatch(
        std::span<const stream::StreamEdge>(batch.data(), n));
    fanout_.OnBatch({n, static_cast<uint64_t>(batch_timer.ElapsedMs() * 1e6)});
    done += n;
  }
  ms_ += timer.ElapsedMs();
  edges_ += done;
  return done;
}

RunReport Session::Finish() {
  util::Timer timer;
  partitioner_->Finalize();
  ms_ += timer.ElapsedMs();

  // Mirror Drive's end-of-run tail for step-driven streams: a finalizing
  // progress event with lifetime totals, then the final stats.
  ProgressEvent progress;
  progress.edges_ingested = edges_;
  progress.finalizing = true;
  partitioner_->FillProgress(&progress);
  fanout_.OnProgress(progress);
  FinalStatsEvent final_stats;
  partitioner_->FillFinalStats(&final_stats);
  fanout_.OnFinalStats(final_stats);

  FlushSinks();
  return MakeReport();
}

bool Session::Checkpoint(const std::string& path, std::string* error) {
  // Flush first: every assignment the checkpoint claims as done must be
  // durable in the sinks before the snapshot that claims it is published.
  FlushSinks();
  try {
    io::CheckpointWriter w;
    w.BeginSection("session");
    w.Str(partitioner_->name());
    w.U64(edges_);
    const StatsObserver::Totals& t = fanout_.stats.totals();
    w.U64(t.vertices_assigned);
    w.U64(t.evictions);
    w.U64(t.empty_cluster_evictions);
    w.U64(t.cluster_decisions);
    w.U64(t.fallback_decisions);
    w.U64(t.cluster_edges_assigned);
    const ProgressEvent& p = t.last_progress;
    w.U64(p.edges_ingested);
    w.U64(p.edges_bypassed);
    w.U64(p.window_population);
    w.U64(p.shards);
    w.U64(p.shard_slices);
    w.U64(p.shard_queue_stalls);
    w.U8(p.finalizing ? 1 : 0);
    const auto flat = resolved_options_.ToFlat();
    w.U32(static_cast<uint32_t>(flat.size()));
    for (const auto& [key, value] : flat) {
      w.Str(key);
      w.Str(value);
    }
    w.EndSection();
    if (!partitioner_->SaveState(&w, error)) return false;
    if (extension_ != nullptr) extension_->Save(&w);
    w.Commit(path);
  } catch (const std::exception& e) {
    if (error != nullptr) *error = e.what();
    return false;
  }
  return true;
}

bool Session::Resume(const std::string& path, std::string* error) {
  if (edges_ != 0) {
    if (error != nullptr) {
      *error = "resume requires a fresh session (this one already ingested " +
               std::to_string(edges_) + " edges)";
    }
    return false;
  }
  try {
    io::CheckpointReader r(path);
    r.Open("session");
    const std::string backend = r.Str();
    if (backend != partitioner_->name()) {
      r.Fail("backend mismatch: checkpoint was written by '" + backend +
             "', this session runs '" + std::string(partitioner_->name()) +
             "'");
    }
    const uint64_t edges = r.U64();
    StatsObserver::Totals t;
    t.vertices_assigned = r.U64();
    t.evictions = r.U64();
    t.empty_cluster_evictions = r.U64();
    t.cluster_decisions = r.U64();
    t.fallback_decisions = r.U64();
    t.cluster_edges_assigned = r.U64();
    ProgressEvent& p = t.last_progress;
    p.edges_ingested = r.U64();
    p.edges_bypassed = r.U64();
    p.window_population = r.U64();
    p.shards = r.U64();
    p.shard_slices = r.U64();
    p.shard_queue_stalls = r.U64();
    p.finalizing = r.U8() != 0;
    const auto flat = resolved_options_.ToFlat();
    const uint32_t n_options = r.U32();
    if (n_options != flat.size()) {
      r.Fail("engine options arity mismatch (checkpoint from a build with a "
             "different option set)");
    }
    for (const auto& [key, value] : flat) {
      const std::string ck = r.Str();
      const std::string cv = r.Str();
      if (ck != key) {
        r.Fail("engine options key order mismatch: expected '" + key +
               "', checkpoint has '" + ck + "'");
      }
      if (cv != value) {
        r.Fail("options mismatch on '" + key + "': checkpoint has " + cv +
               ", this run is configured with " + value +
               " (resume must use the checkpointed run's configuration)");
      }
    }
    r.Close();
    if (!partitioner_->RestoreState(&r, error)) return false;
    if (extension_ != nullptr) extension_->Restore(&r);
    edges_ = edges;
    fanout_.stats.RestoreTotals(t);
  } catch (const std::exception& e) {
    if (error != nullptr) *error = e.what();
    return false;
  }
  return true;
}

const partition::Partitioning& Session::partitioning() const {
  return partitioner_->partitioning();
}

void Session::FlushSinks() {
  for (io::AssignmentSink* sink : fanout_.sinks) sink->Flush();
  for (io::EdgeAssignmentSink* sink : fanout_.edge_sinks) sink->Flush();
}

RunReport Session::MakeReport() const {
  RunReport report;
  report.backend = partitioner_->name();
  report.edges = edges_;
  report.ms = ms_;
  report.edges_per_sec =
      ms_ > 0.0 ? 1000.0 * static_cast<double>(edges_) / ms_ : 0.0;
  report.events = fanout_.stats.totals();
  report.backend_stats = fanout_.stats.final_stats().counters;
  return report;
}

bool CheckpointSessionRotating(Session* session, const std::string& path,
                               std::string* error) {
  // Rotate the current good checkpoint aside before committing the new one.
  // Commit() itself publishes atomically, so at every instant either `path`
  // or `path + ".prev"` holds a complete, verifiable checkpoint. The rename
  // is a deliberate no-op when `path` does not exist yet.
  std::rename(path.c_str(), (path + ".prev").c_str());
  return session->Checkpoint(path, error);
}

std::unique_ptr<Session> ResumeSessionWithFallback(
    const std::function<std::unique_ptr<Session>(std::string*)>& make,
    const std::string& path, std::string* error, bool* used_fallback) {
  if (used_fallback != nullptr) *used_fallback = false;
  std::string primary_error = "session construction failed";
  if (std::unique_ptr<Session> session = make(&primary_error)) {
    if (session->Resume(path, &primary_error)) return session;
  }
  // A rejected restore may have half-mutated the backend — retry the ".prev"
  // slot on a session built from scratch.
  std::string fallback_error = "session construction failed";
  if (std::unique_ptr<Session> session = make(&fallback_error)) {
    if (session->Resume(path + ".prev", &fallback_error)) {
      if (used_fallback != nullptr) *used_fallback = true;
      return session;
    }
  }
  if (error != nullptr) {
    *error = "resume failed on both slots: [" + path + "] " + primary_error +
             "; [" + path + ".prev] " + fallback_error;
  }
  return nullptr;
}

}  // namespace engine
}  // namespace loom
