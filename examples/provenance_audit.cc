// Provenance-audit scenario: PROV lineage queries over wiki-page revision
// provenance (the paper's ProvGen dataset [6], with the common PROV queries
// of Dey et al. [5]: derivation, attribution, multi-step lineage).
//
// Demonstrates the per-query view: which query patterns benefit most from
// Loom's motif-aware placement, and how the motif machinery behaved
// (admissions, matches, cluster allocations).
//
// Run:  ./example_provenance_audit [scale]

#include <cstdlib>
#include <iostream>

#include "core/loom_partitioner.h"
#include "datasets/dataset_registry.h"
#include "eval/experiment.h"
#include "query/workload_runner.h"
#include "util/table_writer.h"

int main(int argc, char** argv) {
  using namespace loom;
  const double scale = argc > 1 ? std::atof(argv[1]) : 0.5;

  datasets::Dataset ds =
      datasets::MakeDataset(datasets::DatasetId::kProvGen, scale);
  std::cout << "PROV provenance graph: " << ds.NumVertices() << " vertices, "
            << ds.NumEdges() << " edges (Entity / Activity / Agent)\n\n";

  eval::ExperimentConfig cfg;
  cfg.k = 8;
  cfg.window_size = 4000;
  stream::EdgeStream es =
      stream::MakeStream(ds.graph, cfg.order, cfg.stream_seed);

  // Loom, with access to its internals for reporting.
  auto loom_p = eval::MakePartitioner(eval::System::kLoom, ds, cfg);
  for (const auto& e : es) loom_p->Ingest(e);
  loom_p->Finalize();
  auto* loom = static_cast<core::LoomPartitioner*>(loom_p.get());

  auto fennel_p = eval::MakePartitioner(eval::System::kFennel, ds, cfg);
  for (const auto& e : es) fennel_p->Ingest(e);
  fennel_p->Finalize();

  std::cout << "Loom's motif machinery:\n"
            << "  edges bypassing the window (never motif-matchable): "
            << loom->stats().edges_bypassed << "\n"
            << "  edges admitted to Ptemp: "
            << loom->matcher_stats().edges_admitted << "\n"
            << "  multi-edge motif matches found: "
            << loom->matcher_stats().extension_matches +
                   loom->matcher_stats().join_matches
            << "\n"
            << "  match clusters allocated: "
            << loom->stats().clusters_allocated << "\n\n";

  query::WorkloadResult lw =
      query::RunWorkload(ds.graph, loom_p->partitioning(), ds.workload);
  query::WorkloadResult fw =
      query::RunWorkload(ds.graph, fennel_p->partitioning(), ds.workload);

  util::TableWriter t({"query", "freq", "loom ipt", "fennel ipt", "loom wins by"});
  for (size_t i = 0; i < lw.per_query.size(); ++i) {
    const auto& lq = lw.per_query[i];
    const auto& fq = fw.per_query[i];
    const double gain =
        fq.result.ipt > 0
            ? 1.0 - static_cast<double>(lq.result.ipt) /
                        static_cast<double>(fq.result.ipt)
            : 0.0;
    t.AddRow({lq.name, util::TableWriter::Pct(lq.frequency, 0),
              std::to_string(lq.result.ipt), std::to_string(fq.result.ipt),
              util::TableWriter::Pct(gain)});
  }
  t.Print(std::cout);

  std::cout << "\nWorkload-weighted: loom "
            << util::TableWriter::Fmt(lw.weighted_ipt, 0) << " ipt vs fennel "
            << util::TableWriter::Fmt(fw.weighted_ipt, 0) << " ("
            << util::TableWriter::Pct(1.0 - lw.weighted_ipt / fw.weighted_ipt)
            << " fewer).\n";
  return 0;
}
