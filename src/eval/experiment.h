// The experiment harness behind every paper figure/table: stream a dataset
// in a chosen order through each partitioner, then execute the dataset's
// workload over the finished partitioning and count ipt.
//
// Every run goes through engine::Session — construction by registry spec,
// ingest over a pull-based EdgeSource, and behavioural counters consumed
// exclusively from the session's RunReport (observer events). This layer
// holds no backend headers and never downcasts to a concrete backend:
// what a backend wants reported, it reports through the event stream.

#ifndef LOOM_EVAL_EXPERIMENT_H_
#define LOOM_EVAL_EXPERIMENT_H_

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "datasets/schema.h"
#include "engine/session.h"
#include "partition/partitioner.h"
#include "query/query_executor.h"
#include "stream/stream_order.h"

namespace loom {
namespace eval {

/// The four compared systems (Sec. 5.1).
enum class System { kHash, kLdg, kFennel, kLoom };

std::string ToString(System s);
std::vector<System> AllSystems();

/// Everything one comparison run needs.
struct ExperimentConfig {
  uint32_t k = 8;
  stream::StreamOrder order = stream::StreamOrder::kBreadthFirst;
  uint64_t stream_seed = 0x10c5;

  /// Loom knobs (base.k / expected sizes are filled from the dataset).
  size_t window_size = 10000;
  double support_threshold = 0.4;

  /// Equal-opportunism knobs, mirroring the engine's flat option fields
  /// (defaults match EngineOptions; see engine_options.h for semantics).
  double alpha = 2.0 / 3.0;
  double balance_b = 1.1;
  double neighbor_bid_weight = 0.25;
  bool disable_rationing = false;

  /// Query-executor caps (identical across systems: fair relative ipt).
  query::ExecutorConfig executor{.max_seeds = 4000,
                                 .max_matches_per_seed = 256};
};

/// Outcome of one (dataset, order, k, system) cell.
struct SystemResult {
  System system = System::kHash;
  /// Backend label: the partitioner's name() for the four paper systems, or
  /// the full registry spec for RunBackendTimingOnly cells.
  std::string label;
  double weighted_ipt = 0.0;
  double ipt_vs_hash = 1.0;  // filled by RunComparison (1.0 for hash itself)
  uint64_t matches = 0;
  size_t edge_cut = 0;
  double imbalance = 0.0;
  double partition_ms = 0.0;      // wall time to consume the whole stream
  double ms_per_10k_edges = 0.0;  // Table 2's measure
  double edges_per_sec = 0.0;     // ingest throughput (stream edges / wall s)
  /// FNV-1a over the per-vertex assignment — lets perf regressions prove
  /// they changed nothing about partition quality on fixed seeds.
  uint64_t assignment_hash = 0;
  /// Edge-partitioning quality triple (hdrf/dbh only; 0 for vertex
  /// partitioners, which never report edge counters). Derived from the
  /// backend's final-stats counters: RF = replica_total / vertices_seen,
  /// edge balance = max_part_edges * k / edge_assignments, plus the FNV-1a
  /// hash over the per-edge placements.
  double replication_factor = 0.0;
  double edge_balance = 0.0;
  uint64_t edge_assignment_hash = 0;
  /// The backend's deterministic end-of-run counters, verbatim from the
  /// session's final-stats observer event: Loom reports match-pool
  /// fresh/reused and matcher totals under "match_allocs_*"/"matcher_*";
  /// backends that report nothing leave it empty. No more per-backend
  /// magic-zero fields.
  engine::StatCounters backend_stats;

  /// The named backend counter, or 0 when the backend did not report it.
  uint64_t BackendStat(std::string_view name) const;
};

/// FNV-1a over the first `num_vertices` assignments.
uint64_t HashAssignment(const partition::Partitioning& p, size_t num_vertices);

struct ComparisonResult {
  std::string dataset;
  stream::StreamOrder order = stream::StreamOrder::kBreadthFirst;
  uint32_t k = 8;
  size_t stream_edges = 0;
  std::vector<SystemResult> systems;

  const SystemResult* Find(System s) const;
};

/// Maps an ExperimentConfig + dataset sizing onto the engine's unified
/// option set (the single source for every backend's knobs).
engine::EngineOptions ToEngineOptions(const ExperimentConfig& config,
                                      const datasets::Dataset& ds);

/// Instantiates a partitioner for `system`, sized for `ds`, through the
/// global PartitionerRegistry.
std::unique_ptr<partition::Partitioner> MakePartitioner(
    System system, const datasets::Dataset& ds, const ExperimentConfig& config);

/// Pulls `source` dry through `system`'s partitioner (timed, batched),
/// finalizes, measures edge-cut/imbalance and executes the dataset workload
/// for ipt. Resets the source first, so one source serves all systems.
SystemResult RunSystem(System system, const datasets::Dataset& ds,
                       engine::EdgeSource& source,
                       const ExperimentConfig& config);

/// Bridge overload for call sites holding a materialised EdgeStream.
SystemResult RunSystem(System system, const datasets::Dataset& ds,
                       const stream::EdgeStream& es,
                       const ExperimentConfig& config);

/// Runs all four systems over the same (replayed) stream and fills
/// ipt_vs_hash. Streams lazily via engine::MakeEdgeSource — the edge
/// sequence is never materialised.
ComparisonResult RunComparison(const datasets::Dataset& ds,
                               const ExperimentConfig& config);

/// Variants measuring only partitioning throughput (no query execution);
/// used by Table 2 where LUBM-4000 is partitioned but never queried.
SystemResult RunSystemTimingOnly(System system, const datasets::Dataset& ds,
                                 engine::EdgeSource& source,
                                 const ExperimentConfig& config);
SystemResult RunSystemTimingOnly(System system, const datasets::Dataset& ds,
                                 const stream::EdgeStream& es,
                                 const ExperimentConfig& config);

/// Registry-spec variant: times any registered backend, e.g.
/// "loom:window_size=2000,alpha=0.5" (how run_bench.sh selects backends).
/// The result's `system` is the matching enum when the spec names a paper
/// system, else kHash; `label` always carries the spec. Returns nullopt and
/// fills `*error` for unknown backends / bad overrides.
std::optional<SystemResult> RunBackendTimingOnly(const std::string& spec,
                                                 const datasets::Dataset& ds,
                                                 engine::EdgeSource& source,
                                                 const ExperimentConfig& config,
                                                 std::string* error);

}  // namespace eval
}  // namespace loom

#endif  // LOOM_EVAL_EXPERIMENT_H_
