// Bidirectional mapping between human-readable label names ("Artist",
// "Paper", ...) and dense LabelId values. One registry per dataset/schema.

#ifndef LOOM_GRAPH_LABEL_REGISTRY_H_
#define LOOM_GRAPH_LABEL_REGISTRY_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "graph/types.h"

namespace loom {
namespace graph {

/// Interns label names. Dense ids are assigned in insertion order, which
/// makes label ids (and hence signature random values) deterministic when a
/// schema registers its labels in a fixed order.
class LabelRegistry {
 public:
  LabelRegistry() = default;

  /// Returns the id for `name`, interning it if previously unseen.
  LabelId Intern(const std::string& name);

  /// Returns the id for `name`, or kInvalidLabel if never interned.
  LabelId Find(const std::string& name) const;

  /// Returns the name for `id`. Requires a valid, interned id.
  const std::string& Name(LabelId id) const;

  /// Number of distinct labels (the paper's |LV|).
  size_t size() const { return names_.size(); }

  /// All names in id order.
  const std::vector<std::string>& names() const { return names_; }

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, LabelId> ids_;
};

}  // namespace graph
}  // namespace loom

#endif  // LOOM_GRAPH_LABEL_REGISTRY_H_
