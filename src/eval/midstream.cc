#include "eval/midstream.h"

#include <algorithm>
#include <stdexcept>

#include "engine/session.h"
#include "query/workload_runner.h"

namespace loom {
namespace eval {

namespace {

// Prefix graph over the first `count` stream edges, preserving vertex ids
// and labels of the full graph (untouched vertices are isolated).
graph::LabeledGraph PrefixGraph(const datasets::Dataset& ds,
                                const stream::EdgeStream& es, size_t count) {
  graph::LabeledGraph::Builder b;
  for (graph::VertexId v = 0; v < ds.NumVertices(); ++v) {
    b.AddVertex(ds.graph.label(v));
  }
  for (size_t i = 0; i < count && i < es.size(); ++i) {
    b.AddEdge(es[i].u, es[i].v);
  }
  return b.Build();
}

// Partitioning view with k+1 partitions where every touched-but-unassigned
// vertex lives in partition k (Ptemp).
partition::Partitioning WithPtemp(const partition::Partitioning& p,
                                  const graph::LabeledGraph& prefix,
                                  size_t* in_ptemp, size_t* touched) {
  partition::Partitioning view(p.k() + 1, prefix.NumVertices(), /*nu=*/2.0);
  *in_ptemp = 0;
  *touched = 0;
  for (graph::VertexId v = 0; v < prefix.NumVertices(); ++v) {
    if (prefix.Degree(v) == 0) continue;  // not streamed yet
    ++*touched;
    graph::PartitionId pid = p.PartitionOf(v);
    if (pid == graph::kNoPartition) {
      pid = p.k();  // Ptemp
      ++*in_ptemp;
    }
    view.Assign(v, pid);
  }
  return view;
}

}  // namespace

MidstreamResult RunLoomMidstream(const datasets::Dataset& ds,
                                 const stream::EdgeStream& es,
                                 const engine::EngineOptions& options,
                                 const MidstreamConfig& config) {
  MidstreamResult result;
  if (es.empty() || config.num_checkpoints == 0) return result;

  // Step a Session up to each checkpoint (IngestSome never finalizes — the
  // window must stay populated, that is the point of this harness) and
  // evaluate the prefix graph with Ptemp as an extra partition.
  std::string error;
  engine::SessionConfig session_config;
  session_config.spec = "loom";
  session_config.options = options;
  std::unique_ptr<engine::Session> session = engine::Session::Create(
      session_config, {&ds.workload, ds.registry.size()}, &error);
  if (session == nullptr) {
    // A zero-checkpoint result would read as "ipt = 0", i.e. a perfect
    // partitioning — surface the configuration failure instead.
    throw std::runtime_error("midstream: building 'loom' failed: " + error);
  }
  engine::EdgeStreamSource source(es);

  const size_t stride =
      std::max<size_t>(es.size() / config.num_checkpoints, 1);

  size_t streamed = 0;
  while (streamed < es.size()) {
    const size_t want = std::min(stride, es.size() - streamed);
    const size_t got = session->IngestSome(source, want);
    streamed += got;
    if (got == 0) break;  // source dry before the arithmetic says so
    const bool at_end = streamed == es.size();
    const bool checkpoint_here = got == want || at_end;
    if (!checkpoint_here) continue;
    graph::LabeledGraph prefix = PrefixGraph(ds, es, streamed);
    size_t in_ptemp = 0, touched = 0;
    partition::Partitioning view =
        WithPtemp(session->partitioning(), prefix, &in_ptemp, &touched);
    query::WorkloadResult wr =
        query::RunWorkload(prefix, view, ds.workload, config.executor);
    CheckpointResult cp;
    cp.edges_streamed = streamed;
    cp.weighted_ipt = wr.weighted_ipt;
    cp.ptemp_share =
        touched > 0 ? static_cast<double>(in_ptemp) / touched : 0.0;
    result.checkpoints.push_back(cp);
  }

  double total = 0.0;
  for (const CheckpointResult& cp : result.checkpoints) {
    total += cp.weighted_ipt;
  }
  result.mean_weighted_ipt =
      result.checkpoints.empty()
          ? 0.0
          : total / static_cast<double>(result.checkpoints.size());
  return result;
}

}  // namespace eval
}  // namespace loom
