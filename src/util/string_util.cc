#include "util/string_util.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace loom {
namespace util {

std::vector<std::string> Split(const std::string& s, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(delim, start);
    if (pos == std::string::npos) {
      out.push_back(s.substr(start));
      break;
    }
    out.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string Trim(const std::string& s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() && s.compare(0, prefix.size(), prefix) == 0;
}

std::string Join(const std::vector<std::string>& parts, const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

std::string HumanCount(uint64_t n) {
  char buf[32];
  if (n >= 1000000000ULL) {
    std::snprintf(buf, sizeof(buf), "%.1fB", static_cast<double>(n) / 1e9);
  } else if (n >= 1000000ULL) {
    std::snprintf(buf, sizeof(buf), "%.1fM", static_cast<double>(n) / 1e6);
  } else if (n >= 1000ULL) {
    std::snprintf(buf, sizeof(buf), "%.1fk", static_cast<double>(n) / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(n));
  }
  return buf;
}

bool ParseFiniteDouble(const std::string& s, double* out) {
  double v = 0.0;
  const char* begin = s.data();
  const char* end = begin + s.size();
  auto [ptr, ec] = std::from_chars(begin, end, v);
  if (ec != std::errc{} || ptr != end) return false;
  // from_chars still accepts "nan" and "inf" spellings; reject them here.
  if (!std::isfinite(v)) return false;
  *out = v;
  return true;
}

}  // namespace util
}  // namespace loom
