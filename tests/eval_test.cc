#include "eval/experiment.h"

#include <gtest/gtest.h>

#include <sstream>

#include "datasets/dataset_registry.h"
#include "eval/report.h"

namespace loom {
namespace eval {
namespace {

ExperimentConfig FastConfig() {
  ExperimentConfig cfg;
  cfg.window_size = 256;
  cfg.executor.max_seeds = 300;
  return cfg;
}

TEST(ExperimentTest, SystemNames) {
  EXPECT_EQ(ToString(System::kHash), "hash");
  EXPECT_EQ(ToString(System::kLdg), "ldg");
  EXPECT_EQ(ToString(System::kFennel), "fennel");
  EXPECT_EQ(ToString(System::kLoom), "loom");
  EXPECT_EQ(AllSystems().size(), 4u);
}

TEST(ExperimentTest, MakePartitionerProducesEverySystem) {
  auto ds = datasets::MakeDataset(datasets::DatasetId::kProvGen, 0.02);
  for (System s : AllSystems()) {
    auto p = MakePartitioner(s, ds, FastConfig());
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(p->name(), ToString(s));
    EXPECT_EQ(p->partitioning().k(), 8u);
  }
}

TEST(ExperimentTest, RunSystemProducesCompleteResult) {
  auto ds = datasets::MakeDataset(datasets::DatasetId::kProvGen, 0.02);
  auto es = stream::MakeStream(ds.graph, stream::StreamOrder::kBreadthFirst);
  SystemResult r = RunSystem(System::kLdg, ds, es, FastConfig());
  EXPECT_EQ(r.system, System::kLdg);
  EXPECT_GT(r.weighted_ipt, 0.0);
  EXPECT_GT(r.edge_cut, 0u);
  EXPECT_GE(r.partition_ms, 0.0);
  EXPECT_GT(r.ms_per_10k_edges, 0.0);
}

TEST(ExperimentTest, TimingOnlySkipsQueries) {
  auto ds = datasets::MakeDataset(datasets::DatasetId::kProvGen, 0.02);
  auto es = stream::MakeStream(ds.graph, stream::StreamOrder::kBreadthFirst);
  SystemResult r = RunSystemTimingOnly(System::kHash, ds, es, FastConfig());
  EXPECT_EQ(r.weighted_ipt, 0.0);
  EXPECT_EQ(r.matches, 0u);
  EXPECT_GT(r.ms_per_10k_edges, 0.0);
}

TEST(ExperimentTest, ComparisonNormalisesAgainstHash) {
  auto ds = datasets::MakeDataset(datasets::DatasetId::kProvGen, 0.03);
  ComparisonResult cmp = RunComparison(ds, FastConfig());
  EXPECT_EQ(cmp.systems.size(), 4u);
  EXPECT_EQ(cmp.stream_edges, ds.NumEdges());
  const SystemResult* hash = cmp.Find(System::kHash);
  ASSERT_NE(hash, nullptr);
  EXPECT_DOUBLE_EQ(hash->ipt_vs_hash, 1.0);
  for (const SystemResult& r : cmp.systems) {
    EXPECT_GT(r.weighted_ipt, 0.0) << ToString(r.system);
    EXPECT_NEAR(r.ipt_vs_hash, r.weighted_ipt / hash->weighted_ipt, 1e-9);
  }
  EXPECT_EQ(cmp.Find(System::kLoom)->system, System::kLoom);
}

TEST(ReportTest, RelativeIptTableRenders) {
  auto ds = datasets::MakeDataset(datasets::DatasetId::kProvGen, 0.02);
  ComparisonResult cmp = RunComparison(ds, FastConfig());
  std::ostringstream os;
  PrintRelativeIptTable({cmp}, os);
  const std::string out = os.str();
  EXPECT_NE(out.find("provgen"), std::string::npos);
  EXPECT_NE(out.find("loom"), std::string::npos);
  EXPECT_NE(out.find("100.0%"), std::string::npos);  // hash baseline
}

TEST(ReportTest, TimingTableRenders) {
  auto ds = datasets::MakeDataset(datasets::DatasetId::kProvGen, 0.02);
  ComparisonResult cmp = RunComparison(ds, FastConfig());
  std::ostringstream os;
  PrintTimingTable({cmp}, os);
  EXPECT_NE(os.str().find("loom (ms)"), std::string::npos);
}

TEST(ReportTest, ImbalanceTableRenders) {
  auto ds = datasets::MakeDataset(datasets::DatasetId::kProvGen, 0.02);
  ComparisonResult cmp = RunComparison(ds, FastConfig());
  std::ostringstream os;
  PrintImbalanceTable({cmp}, os);
  EXPECT_NE(os.str().find("provgen"), std::string::npos);
}

}  // namespace
}  // namespace eval
}  // namespace loom
