#include "query/workload_runner.h"

namespace loom {
namespace query {

WorkloadResult RunWorkload(const graph::LabeledGraph& g,
                           const partition::Partitioning& p, const Workload& w,
                           ExecutorConfig config) {
  Workload normalised = w;
  normalised.Normalize();
  QueryExecutor executor(&g, config);
  WorkloadResult out;
  for (const Query& q : normalised.queries()) {
    ExecutionResult r = executor.Execute(q.pattern, p);
    out.weighted_ipt += q.frequency * static_cast<double>(r.ipt);
    out.weighted_traversals += q.frequency * static_cast<double>(r.traversals);
    out.total_matches += r.matches;
    out.per_query.push_back({q.name, q.frequency, r});
  }
  return out;
}

}  // namespace query
}  // namespace loom
