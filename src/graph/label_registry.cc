#include "graph/label_registry.h"

#include <cassert>
#include <stdexcept>

namespace loom {
namespace graph {

LabelId LabelRegistry::Intern(const std::string& name) {
  auto it = ids_.find(name);
  if (it != ids_.end()) return it->second;
  if (names_.size() >= kInvalidLabel) {
    throw std::length_error("LabelRegistry: label space exhausted");
  }
  LabelId id = static_cast<LabelId>(names_.size());
  names_.push_back(name);
  ids_.emplace(name, id);
  return id;
}

LabelId LabelRegistry::Find(const std::string& name) const {
  auto it = ids_.find(name);
  return it == ids_.end() ? kInvalidLabel : it->second;
}

const std::string& LabelRegistry::Name(LabelId id) const {
  assert(id < names_.size());
  return names_[id];
}

}  // namespace graph
}  // namespace loom
