#include "signature/signature_calculator.h"

#include <algorithm>
#include <unordered_map>

#include "util/simd.h"

namespace loom {
namespace signature {

namespace {
// Residue in [1, p]: the paper replaces 0 with p so factors are never zero.
inline Factor NonZeroMod(int64_t x, uint32_t p) {
  int64_t r = x % static_cast<int64_t>(p);
  if (r < 0) r += p;
  return r == 0 ? p : static_cast<Factor>(r);
}

/// The SIMD residue kernels work in uint16 lanes and require p <= 255 (the
/// paper's regime: p = 251 packs into uint8 residues). Larger primes take
/// the scalar path everywhere — same residues, just without the batching.
inline bool SimdPrime(uint32_t p) { return p >= 2 && p <= 255; }
}  // namespace

Factor SignatureCalculator::EdgeFactor(graph::LabelId a, graph::LabelId b) const {
  if (a > b) std::swap(a, b);  // consistent subtraction order
  int64_t diff = static_cast<int64_t>(values_->Value(a)) -
                 static_cast<int64_t>(values_->Value(b));
  return NonZeroMod(diff, values_->prime());
}

Factor SignatureCalculator::DirectedEdgeFactor(graph::LabelId source,
                                               graph::LabelId target) const {
  int64_t diff = static_cast<int64_t>(values_->Value(source)) -
                 static_cast<int64_t>(values_->Value(target));
  return NonZeroMod(diff, values_->prime());
}

Factor SignatureCalculator::DegreeFactor(graph::LabelId l, uint32_t degree) const {
  return NonZeroMod(static_cast<int64_t>(values_->Value(l)) + degree,
                    values_->prime());
}

FactorDelta SignatureCalculator::FactorsForEdgeAddition(
    graph::LabelId lu, uint32_t new_deg_u, graph::LabelId lv,
    uint32_t new_deg_v) const {
  FactorDelta out;
  FactorsForEdgeAddition(lu, new_deg_u, lv, new_deg_v, &out);
  return out;
}

void SignatureCalculator::FactorsForEdgeAddition(graph::LabelId lu,
                                                 uint32_t new_deg_u,
                                                 graph::LabelId lv,
                                                 uint32_t new_deg_v,
                                                 FactorDelta* out) const {
  // One kernel call computes all three residues of the delta (edge factor
  // in the canonical LabelId subtraction order + both degree factors);
  // util::simd handles the big-prime / big-degree fallback internally.
  const graph::LabelId a = lu <= lv ? lu : lv;
  const graph::LabelId b = lu <= lv ? lv : lu;
  out->resize(3);
  util::simd::EdgeAdditionFactors(values_->Value(a), values_->Value(b),
                                  values_->Value(lu), new_deg_u,
                                  values_->Value(lv), new_deg_v,
                                  values_->prime(), out->data());
}

Signature SignatureCalculator::ComputeSignature(
    const graph::PatternGraph& g) const {
  const uint32_t p = values_->prime();
  std::vector<Factor> factors;
  factors.reserve(3 * g.NumEdges());
  if (SimdPrime(p) && g.NumEdges() > 0) {
    // Batch the edge residues: stage both endpoint values (canonical order)
    // in uint16 lanes and run one ResidueDiff pass over all edges.
    std::vector<uint16_t> va(g.NumEdges()), vb(g.NumEdges()),
        res(g.NumEdges());
    size_t i = 0;
    for (const graph::Edge& e : g.edges()) {
      graph::LabelId a = g.label(e.u), b = g.label(e.v);
      if (a > b) std::swap(a, b);
      va[i] = static_cast<uint16_t>(values_->Value(a));
      vb[i] = static_cast<uint16_t>(values_->Value(b));
      ++i;
    }
    util::simd::ResidueDiffU16(va.data(), vb.data(), i, p, res.data());
    for (size_t j = 0; j < i; ++j) factors.push_back(res[j]);
  } else {
    for (const graph::Edge& e : g.edges()) {
      factors.push_back(EdgeFactor(g.label(e.u), g.label(e.v)));
    }
  }
  for (graph::VertexId v = 0; v < g.NumVertices(); ++v) {
    AppendDegreeRun(g.label(v), static_cast<uint32_t>(g.Degree(v)), &factors);
  }
  return Signature(std::move(factors));
}

void SignatureCalculator::AppendDegreeRun(graph::LabelId l, uint32_t degree,
                                          std::vector<Factor>* out) const {
  const uint32_t p = values_->prime();
  const uint32_t r = values_->Value(l);
  // Degree runs of pattern-sized graphs fit uint16 sums comfortably; the
  // batched residue kernel handles them in 16 lanes per vector.
  if (SimdPrime(p) && degree > 0 && degree <= 32768u) {
    uint16_t sums[64];
    uint16_t res[64];
    uint32_t d = 1;
    while (d <= degree) {
      const uint32_t c = std::min(degree - d + 1, 64u);
      for (uint32_t i = 0; i < c; ++i) {
        sums[i] = static_cast<uint16_t>(r + d + i);
      }
      util::simd::ResidueU16(sums, c, p, res);
      for (uint32_t i = 0; i < c; ++i) out->push_back(res[i]);
      d += c;
    }
    return;
  }
  for (uint32_t i = 1; i <= degree; ++i) out->push_back(DegreeFactor(l, i));
}

Signature SignatureCalculator::ComputeSignature(
    std::span<const stream::StreamEdge> edges) const {
  std::vector<Factor> factors;
  factors.reserve(3 * edges.size());
  std::unordered_map<graph::VertexId, std::pair<graph::LabelId, uint32_t>> deg;
  for (const stream::StreamEdge& e : edges) {
    factors.push_back(EdgeFactor(e.label_u, e.label_v));
    ++deg[e.u].second;
    deg[e.u].first = e.label_u;
    ++deg[e.v].second;
    deg[e.v].first = e.label_v;
  }
  for (const auto& [v, info] : deg) {
    (void)v;
    AppendDegreeRun(info.first, info.second, &factors);
  }
  return Signature(std::move(factors));
}

Signature SignatureCalculator::SingleEdgeSignature(graph::LabelId a,
                                                   graph::LabelId b) const {
  return Signature({EdgeFactor(a, b), DegreeFactor(a, 1), DegreeFactor(b, 1)});
}

}  // namespace signature
}  // namespace loom
