#include "core/loom_partitioner.h"

#include <algorithm>
#include <cassert>

#include "core/loom_checkpoint.h"

namespace loom {
namespace core {

LoomPartitioner::LoomPartitioner(const LoomOptions& options,
                                 const query::Workload& workload,
                                 size_t num_labels)
    : options_(options),
      ctor_num_labels_(num_labels),
      partitioning_(options.base.k, options.base.expected_vertices,
                    options.base.max_imbalance),
      seen_(options.base.expected_vertices, options.base.adj_page_entries,
            /*expected_entries=*/2 * options.base.expected_edges),
      hub_(options.base.k, options.base.hub_degree_threshold),
      window_(options.window_size) {
  label_values_ = std::make_unique<signature::LabelValues>(
      num_labels, options.prime, options.signature_seed);
  calc_ = std::make_unique<signature::SignatureCalculator>(label_values_.get());
  trie_ = std::make_unique<tpstry::Tpstry>(calc_.get(),
                                           options.support_threshold);
  query::Workload normalised = workload;
  normalised.Normalize();
  for (const query::Query& q : normalised.queries()) {
    trie_->AddQuery(q.pattern, q.frequency);
  }
  matcher_ = std::make_unique<motif::MotifMatcher>(trie_.get(), calc_.get(),
                                                   options.matcher);
  allocator_ = std::make_unique<EqualOpportunism>(trie_.get(), &seen_,
                                                  options.equal_opportunism);
  const std::vector<bool> mask = trie_->MotifLabelMask(num_labels);
  motif_label_.assign(mask.begin(), mask.end());
  match_list_.ReserveEdgeSpan(options.window_size + 1);
}

bool LoomPartitioner::IsDeferred(graph::VertexId v, graph::LabelId label) {
  if (partitioning_.IsAssigned(v)) return false;
  // Vertices that participate in live motif matches — or whose label means
  // they *could*, once their motif edges arrive — are deferred: their
  // placement belongs to a match cluster's equal-opportunism allocation.
  // Pinning them early (e.g. when a hub edge like Activity-Agent bypasses
  // the window before the Activity's entity edges arrive) would silently
  // void the later cluster co-location, since vertex assignment is
  // first-writer-wins. Deferred vertices that never join a cluster are swept
  // up by Finalize with full neighbourhood information.
  if (label < motif_label_.size() && motif_label_[label] != 0) return true;
  return match_list_.HasLiveAt(v);
}

void LoomPartitioner::AssignVertex(graph::VertexId v, graph::PartitionId p) {
  // Cluster assignment hits already-placed vertices routinely
  // (first-writer-wins); the hub hook must fire only on the first placement.
  if (partitioning_.IsAssigned(v)) return;
  const graph::PartitionId actual = AssignAndNotify(&partitioning_, v, p);
  hub_.OnAssign(v, actual, seen_);
}

void LoomPartitioner::AssignImmediately(const stream::StreamEdge& e) {
  // Design note: we also tried registering a placeable endpoint whose
  // partner is deferred as a "satellite" that waits for the partner's
  // cluster before being (re-)scored — both unconditionally and only when
  // LDG had zero placement signal. Both variants degrade quality on 3 of 4
  // datasets (mass deferral starves the streaming heuristics of placed
  // neighbours); immediate LDG placement wins. See EXPERIMENTS.md.
  const bool place_u = !partitioning_.IsAssigned(e.u) && !IsDeferred(e.u, e.label_u);
  const bool place_v = !partitioning_.IsAssigned(e.v) && !IsDeferred(e.v, e.label_v);
  if (!place_u && !place_v) return;
  const graph::PartitionId p = partition::LdgHeuristic::Choose(
      e, seen_, partitioning_, /*had_signal=*/nullptr, &hub_);
  if (place_u) AssignVertex(e.u, p);
  if (place_v) AssignVertex(e.v, p);
}

void LoomPartitioner::EnsureLabelSpace(graph::LabelId max_label) {
  if (max_label < calc_->num_labels()) return;
  // A label this run has never seen: extend the value table (existing labels
  // keep their values — the retained RNG draws new ones sequentially), then
  // re-fit everything sized by the label count. The admission memo restarts
  // cold, which costs one trie probe per distinct label pair — not
  // correctness: memoised answers for old pairs recompute identically.
  label_values_->EnsureLabels(static_cast<size_t>(max_label) + 1);
  matcher_->InvalidateMotifCache();
  const std::vector<bool> mask =
      trie_->MotifLabelMask(label_values_->num_labels());
  motif_label_.assign(mask.begin(), mask.end());
}

void LoomPartitioner::Ingest(const stream::StreamEdge& e) {
  EnsureLabelSpace(std::max(e.label_u, e.label_v));
  IngestWithAdmission(e, matcher_->SingleEdgeMotif(e) != nullptr);
}

void LoomPartitioner::IngestBatch(std::span<const stream::StreamEdge> batch) {
  graph::LabelId max_label = 0;
  for (const stream::StreamEdge& e : batch) {
    max_label = std::max({max_label, e.label_u, e.label_v});
  }
  EnsureLabelSpace(max_label);
  // Hoisted admission probes: the test is a pure function of the label pair
  // (memoised per pair) and the trie, which cannot change mid-batch, so one
  // tight pass over the memo table decides the whole batch before any
  // window/matcher work touches the caches.
  admit_scratch_.resize(batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    admit_scratch_[i] = matcher_->SingleEdgeMotif(batch[i]) != nullptr;
  }
  for (size_t i = 0; i < batch.size(); ++i) {
    IngestWithAdmission(batch[i], admit_scratch_[i] != 0);
  }
}

void LoomPartitioner::IngestWithAdmission(const stream::StreamEdge& e,
                                          bool admitted) {
  ++stats_.edges_ingested;
  seen_.TouchVertex(e.u, e.label_u);
  seen_.TouchVertex(e.v, e.label_v);
  seen_.AddEdge(e.u, e.v);  // before any placement: endpoints see each other
  hub_.OnEdgeVisible(e.u, e.v, seen_, partitioning_);

  if (!admitted) {
    // Sec. 3: e can never participate in a motif match — place it now and
    // "behave as if the edge was never added to the window".
    ++stats_.edges_bypassed;
    AssignImmediately(e);
    return;
  }

  window_.Push(e);
  matcher_->OnEdgeAdded(e, window_, &match_list_);

  while (window_.OverCapacity()) EvictOldest();

  if (++edges_since_compact_ >= options_.compact_interval) {
    match_list_.Compact();
    edges_since_compact_ = 0;
  }
}

void LoomPartitioner::FillProgress(engine::ProgressEvent* progress) const {
  // Lifetime totals, so edges_ingested and edges_bypassed stay mutually
  // consistent even when the stream resumes after a Finalize checkpoint.
  progress->edges_ingested = stats_.edges_ingested;
  progress->edges_bypassed = stats_.edges_bypassed;
  progress->window_population = window_.size();
}

void FillLoomFinalStats(const motif::MatchPool& pool,
                        const motif::MatcherStats& m,
                        engine::FinalStatsEvent* stats) {
  stats->counters.emplace_back("match_allocs_fresh", pool.fresh_allocations());
  stats->counters.emplace_back("match_allocs_reused",
                               pool.reused_allocations());
  stats->counters.emplace_back("matcher_edges_admitted", m.edges_admitted);
  stats->counters.emplace_back("matcher_single_edge_matches",
                               m.single_edge_matches);
  stats->counters.emplace_back("matcher_extension_matches",
                               m.extension_matches);
  stats->counters.emplace_back("matcher_join_matches", m.join_matches);
  stats->counters.emplace_back("matcher_join_attempts", m.join_attempts);
}

void LoomPartitioner::FillFinalStats(engine::FinalStatsEvent* stats) const {
  FillLoomFinalStats(match_list_.pool(), matcher_->stats(), stats);
}

void LoomPartitioner::EvictOldest() {
  std::optional<stream::StreamEdge> evictee = window_.PopOldest();
  if (!evictee.has_value()) return;
  ++stats_.edges_via_window;

  // Me: live matches containing the evictee.
  me_scratch_.clear();
  match_list_.CollectLiveWithEdge(evictee->id, &me_scratch_);
  if (observer() != nullptr) {
    observer()->OnEviction({evictee->id, me_scratch_.size()});
  }
  if (me_scratch_.empty()) {
    // Every match the edge belonged to already lost some other edge.
    AssignImmediately(*evictee);
    match_list_.RemoveMatchesWithEdge(evictee->id);
    return;
  }

  AllocationDecision decision =
      allocator_->DecideBids(match_list_, me_scratch_, partitioning_);
  const bool used_fallback = decision.partition == graph::kNoPartition;
  if (used_fallback) {
    // Zero-bid cluster: fall back to LDG's neighbourhood choice for the
    // evictee, so cold-start clusters still land near their assigned
    // neighbours instead of scattering round-robin. Computed lazily — the
    // LDG scan walks both endpoints' full adjacency (hubs are expensive)
    // and is wasted whenever a positive bid wins.
    const graph::PartitionId fallback = partition::LdgHeuristic::Choose(
        *evictee, seen_, partitioning_, /*had_signal=*/nullptr, &hub_);
    decision.partition = partitioning_.AtCapacity(fallback)
                             ? partitioning_.LeastLoaded()
                             : fallback;
    decision.take = me_scratch_.size();
  }
  ++stats_.clusters_allocated;

  // Gather the union of edges across the matches the winner takes — concat
  // then sort+unique, not a per-edge sorted insert (which was quadratic in
  // the cluster's edge count). The evictee is in every match of Me, so it is
  // always included.
  std::vector<graph::EdgeId>& to_assign = assign_scratch_;
  to_assign.clear();
  for (size_t i = 0; i < decision.take; ++i) {
    const motif::Match& m = match_list_.match(me_scratch_[i]);
    to_assign.insert(to_assign.end(), m.edges.begin(), m.edges.end());
  }
  std::sort(to_assign.begin(), to_assign.end());
  to_assign.erase(std::unique(to_assign.begin(), to_assign.end()),
                  to_assign.end());
  assert(!to_assign.empty());

  uint64_t edges_assigned = 0;
  for (graph::EdgeId eid : to_assign) {
    const stream::StreamEdge* se =
        eid == evictee->id ? &*evictee : window_.Find(eid);
    if (se == nullptr) continue;  // already left the window
    AssignVertex(se->u, decision.partition);
    AssignVertex(se->v, decision.partition);
    window_.Remove(eid);
    ++edges_assigned;
  }
  stats_.cluster_edges_assigned += edges_assigned;
  // Retire every match that lost a constituent edge — including the losing
  // bids in Me (they all contained the evictee).
  for (graph::EdgeId eid : to_assign) match_list_.RemoveMatchesWithEdge(eid);

  if (observer() != nullptr) {
    observer()->OnClusterDecision({decision.partition, me_scratch_.size(),
                                   decision.take, edges_assigned,
                                   used_fallback});
  }
}

namespace {
/// Builds the shared-codec view over a (logically const for save) backend.
LoomCoreState CoreState(const LoomOptions* options, size_t ctor_num_labels,
                        signature::LabelValues* values,
                        const tpstry::Tpstry* trie,
                        partition::Partitioning* partitioning,
                        stream::SlidingWindow* window,
                        motif::MatchList* match_list,
                        motif::MotifMatcher* matcher, LoomStats* stats,
                        uint64_t* edges_since_compact) {
  LoomCoreState st;
  st.options = options;
  st.ctor_num_labels = ctor_num_labels;
  st.label_values = values;
  st.trie = trie;
  st.partitioning = partitioning;
  st.window = window;
  st.match_list = match_list;
  st.matcher = matcher;
  st.stats = stats;
  st.edges_since_compact = edges_since_compact;
  return st;
}
}  // namespace

bool LoomPartitioner::SaveState(io::CheckpointWriter* w,
                                std::string* error) const {
  (void)error;
  // The codec only reads through the view on the save path; the const_cast
  // exists because one LoomCoreState serves both directions.
  auto* self = const_cast<LoomPartitioner*>(this);
  SaveLoomCore(w, CoreState(&options_, ctor_num_labels_,
                            self->label_values_.get(), trie_.get(),
                            &self->partitioning_, &self->window_,
                            &self->match_list_, self->matcher_.get(),
                            &self->stats_, &self->edges_since_compact_));
  seen_.SaveTo(w, "seen_graph");
  return true;
}

bool LoomPartitioner::RestoreState(io::CheckpointReader* r,
                                   std::string* error) {
  (void)error;
  const size_t grown = RestoreLoomCore(
      r, CoreState(&options_, ctor_num_labels_, label_values_.get(),
                   trie_.get(), &partitioning_, &window_, &match_list_,
                   matcher_.get(), &stats_, &edges_since_compact_));
  seen_.LoadFrom(r, "seen_graph");
  // Hub rows are derived state — never checkpointed, always re-derived from
  // the restored graph + table (same rows a fresh run here would hold).
  hub_.Rebuild(seen_, seen_.NumSlots(), partitioning_);
  if (grown != ctor_num_labels_) {
    // The checkpointed run had grown its alphabet: re-fit the label-sized
    // tables exactly as EnsureLabelSpace did there.
    matcher_->InvalidateMotifCache();
    const std::vector<bool> mask = trie_->MotifLabelMask(grown);
    motif_label_.assign(mask.begin(), mask.end());
  }
  return true;
}

void LoomPartitioner::UpdateWorkload(const query::Workload& workload,
                                     double decay) {
  assert(decay >= 0.0 && decay < 1.0);
  if (decay > 0.0) {
    trie_->DecaySupports(decay);
  } else {
    // Full replacement: decay to (almost) nothing.
    trie_->DecaySupports(1e-12);
  }
  query::Workload normalised = workload;
  normalised.Normalize();
  const double new_mass = 1.0 - decay;
  for (const query::Query& q : normalised.queries()) {
    trie_->AddQuery(q.pattern, q.frequency * new_mass);
  }
  const std::vector<bool> mask = trie_->MotifLabelMask(motif_label_.size());
  motif_label_.assign(mask.begin(), mask.end());
  // The admission memo caches motif status per label pair; the drifted
  // supports may have promoted or demoted single-edge motifs.
  matcher_->InvalidateMotifCache();
}

void LoomPartitioner::Finalize() {
  while (!window_.empty()) EvictOldest();
  match_list_.Compact();
  // Sweep vertices whose placement was deferred (motif-labelled endpoints of
  // bypassed edges that never joined an allocated cluster). At this point the
  // full streamed adjacency is available, so LDG's per-vertex choice is
  // maximally informed.
  for (graph::VertexId v = 0; v < seen_.NumSlots(); ++v) {
    if (!seen_.Known(v) || partitioning_.IsAssigned(v)) continue;
    AssignVertex(v, partition::LdgHeuristic::ChooseForVertex(
                        v, seen_, partitioning_, &hub_));
  }
}

}  // namespace core
}  // namespace loom
