#include "motif/match_list.h"

#include <algorithm>
#include <cassert>

namespace loom {
namespace motif {

// ----------------------------------------------------------- edge ring

void MatchList::ReserveEdgeSpan(size_t span) {
  by_edge_.SetGrowthCap(
      std::max(by_edge_.GrowthCap(), util::RingGrowthCap(span)));
  by_edge_.Presize(span);
}

MatchList::PostingList* MatchList::EnsureEdgeSlot(graph::EdgeId e) {
  bool created = false;
  PostingList* pl = by_edge_.GetOrCreate(e, &created);
  if (created) {
    // Recycled slot (a freed key from a full ring-length ago, or a
    // never-activated one): the items vector keeps its capacity.
    pl->items.clear();
    pl->dead = 0;
  }
  return pl;
}

// -------------------------------------------------------------- pruning

void MatchList::Prune(PostingList* pl) {
  auto& items = pl->items;
  items.erase(std::remove_if(items.begin(), items.end(),
                             [this](MatchHandle h) { return !pool_.IsLive(h); }),
              items.end());
  pl->dead = 0;
}

void MatchList::PruneIfStale(PostingList* pl) {
  if (pl->dead > 0 && static_cast<size_t>(pl->dead) * 2 >= pl->items.size()) {
    Prune(pl);
  }
}

// ------------------------------------------------------------- mutation

bool MatchList::Commit(MatchHandle h) {
  Match& m = pool_.Get(h);
  assert(std::is_sorted(m.edges.begin(), m.edges.end()));
  assert(std::is_sorted(m.vertices.begin(), m.vertices.end()));
  const uint64_t key = m.Key();
  if (!live_keys_.Insert(key)) {
    pool_.Release(h);
    return false;
  }
  for (graph::VertexId v : m.vertices) {
    if (v >= by_vertex_.size()) by_vertex_.resize(v + 1);
    by_vertex_[v].items.push_back(h);
  }
  for (graph::EdgeId e : m.edges) {
    EnsureEdgeSlot(e)->items.push_back(h);
  }
  ++live_count_;
  ++total_added_;
  return true;
}

void MatchList::Kill(MatchHandle h) {
  const Match& m = pool_.Get(h);
  live_keys_.Erase(m.Key());
  --live_count_;
  for (graph::VertexId v : m.vertices) {
    if (++by_vertex_[v].dead == 1) dirty_vertices_.push_back(v);
  }
  for (graph::EdgeId e : m.edges) {
    PostingList* pl = by_edge_.Find(e);
    if (pl != nullptr && ++pl->dead == 1) dirty_edges_.push_back(e);
  }
  pool_.Release(h);
}

void MatchList::RemoveMatchesWithEdge(graph::EdgeId e) {
  PostingList* pl = by_edge_.Find(e);
  if (pl == nullptr) return;
  for (MatchHandle h : pl->items) {
    if (pool_.IsLive(h)) Kill(h);
  }
  pl->items.clear();
  pl->dead = 0;
  // Frees the key (ring slots keep the cleared vector's capacity for the
  // next tenant; overflow entries are destroyed outright).
  by_edge_.Erase(e);
}

// -------------------------------------------------------------- queries

void MatchList::CollectLiveAt(graph::VertexId v,
                              std::vector<MatchHandle>* out) {
  if (v >= by_vertex_.size()) return;
  PostingList& pl = by_vertex_[v];
  PruneIfStale(&pl);
  const size_t bound = pl.items.size();  // appends during iteration excluded
  for (size_t i = 0; i < bound; ++i) {
    if (pool_.IsLive(pl.items[i])) out->push_back(pl.items[i]);
  }
}

void MatchList::CollectLiveWithEdge(graph::EdgeId e,
                                    std::vector<MatchHandle>* out) {
  PostingList* pl = by_edge_.Find(e);
  if (pl == nullptr) return;
  PruneIfStale(pl);
  const size_t bound = pl->items.size();
  for (size_t i = 0; i < bound; ++i) {
    if (pool_.IsLive(pl->items[i])) out->push_back(pl->items[i]);
  }
}

std::vector<MatchHandle> MatchList::LiveAt(graph::VertexId v) const {
  std::vector<MatchHandle> out;
  if (v >= by_vertex_.size()) return out;
  for (MatchHandle h : by_vertex_[v].items) {
    if (pool_.IsLive(h)) out.push_back(h);
  }
  return out;
}

std::vector<MatchHandle> MatchList::LiveWithEdge(graph::EdgeId e) const {
  std::vector<MatchHandle> out;
  const PostingList* pl = by_edge_.Find(e);
  if (pl == nullptr) return out;
  for (MatchHandle h : pl->items) {
    if (pool_.IsLive(h)) out.push_back(h);
  }
  return out;
}

bool MatchList::HasLiveAt(graph::VertexId v) const {
  if (v >= by_vertex_.size()) return false;
  for (MatchHandle h : by_vertex_[v].items) {
    if (pool_.IsLive(h)) return true;
  }
  return false;
}

bool MatchList::HasLiveAt(graph::VertexId v) {
  if (v >= by_vertex_.size()) return false;
  PostingList& pl = by_vertex_[v];
  PruneIfStale(&pl);
  for (MatchHandle h : pl.items) {
    if (pool_.IsLive(h)) return true;
  }
  return false;
}

void MatchList::SaveTo(io::CheckpointWriter* w) const {
  w->BeginSection("matches");
  pool_.SaveTo(w);
  w->U64(live_count_);
  w->U64(total_added_);
  std::vector<MatchHandle> live;
  auto live_items = [&](const PostingList& pl) -> const std::vector<MatchHandle>& {
    live.clear();
    for (MatchHandle h : pl.items) {
      if (pool_.IsLive(h)) live.push_back(h);
    }
    return live;
  };
  w->U64(by_vertex_.size());
  for (const PostingList& pl : by_vertex_) w->PodVec(live_items(pl));
  // Every claimed edge-ring key is saved, even when its list is all-dead:
  // the claimed-key set is state (EnsureEdgeSlot blanks re-created keys), so
  // preserving it keeps the restored run's slot recycling exactly in step.
  uint64_t num_edge_keys = 0;
  by_edge_.ForEach(
      [&num_edge_keys](graph::EdgeId, const PostingList&) { ++num_edge_keys; });
  w->U64(num_edge_keys);
  by_edge_.ForEach([&](graph::EdgeId e, const PostingList& pl) {
    w->U32(e);
    w->PodVec(live_items(pl));
  });
  w->EndSection();
}

void MatchList::LoadFrom(io::CheckpointReader* r) {
  assert(total_added_ == 0 && by_vertex_.empty() && "restore into fresh list");
  r->Open("matches");
  pool_.LoadFrom(r);
  live_count_ = r->U64();
  total_added_ = r->U64();
  by_vertex_.assign(r->U64(), {});
  for (PostingList& pl : by_vertex_) r->PodVec(&pl.items);
  const uint64_t num_edge_keys = r->U64();  // saved ascending (ring ForEach)
  for (uint64_t i = 0; i < num_edge_keys; ++i) {
    const graph::EdgeId e = r->U32();
    r->PodVec(&EnsureEdgeSlot(e)->items);
  }
  r->Close();
  // The dedup key set is derived state: rebuild it from the live matches.
  pool_.ForEachLive(
      [this](MatchHandle, const Match& m) { live_keys_.Insert(m.Key()); });
}

void MatchList::Compact() {
  // Dirty list instead of a full sweep; opportunistic pruning may have
  // already cleaned an entry (Prune is idempotent) and a vertex may appear
  // twice (re-dirtied after a prune) — both are harmless.
  for (graph::VertexId v : dirty_vertices_) {
    PostingList& pl = by_vertex_[v];
    if (pl.dead > 0) Prune(&pl);
  }
  dirty_vertices_.clear();
  for (graph::EdgeId e : dirty_edges_) {
    PostingList* pl = by_edge_.Find(e);
    if (pl != nullptr && pl->dead > 0) Prune(pl);
  }
  dirty_edges_.clear();
}

}  // namespace motif
}  // namespace loom
