#include "signature/signature_calculator.h"

#include <unordered_map>

namespace loom {
namespace signature {

namespace {
// Residue in [1, p]: the paper replaces 0 with p so factors are never zero.
inline Factor NonZeroMod(int64_t x, uint32_t p) {
  int64_t r = x % static_cast<int64_t>(p);
  if (r < 0) r += p;
  return r == 0 ? p : static_cast<Factor>(r);
}
}  // namespace

Factor SignatureCalculator::EdgeFactor(graph::LabelId a, graph::LabelId b) const {
  if (a > b) std::swap(a, b);  // consistent subtraction order
  int64_t diff = static_cast<int64_t>(values_->Value(a)) -
                 static_cast<int64_t>(values_->Value(b));
  return NonZeroMod(diff, values_->prime());
}

Factor SignatureCalculator::DirectedEdgeFactor(graph::LabelId source,
                                               graph::LabelId target) const {
  int64_t diff = static_cast<int64_t>(values_->Value(source)) -
                 static_cast<int64_t>(values_->Value(target));
  return NonZeroMod(diff, values_->prime());
}

Factor SignatureCalculator::DegreeFactor(graph::LabelId l, uint32_t degree) const {
  return NonZeroMod(static_cast<int64_t>(values_->Value(l)) + degree,
                    values_->prime());
}

FactorDelta SignatureCalculator::FactorsForEdgeAddition(
    graph::LabelId lu, uint32_t new_deg_u, graph::LabelId lv,
    uint32_t new_deg_v) const {
  return {EdgeFactor(lu, lv), DegreeFactor(lu, new_deg_u),
          DegreeFactor(lv, new_deg_v)};
}

void SignatureCalculator::FactorsForEdgeAddition(graph::LabelId lu,
                                                 uint32_t new_deg_u,
                                                 graph::LabelId lv,
                                                 uint32_t new_deg_v,
                                                 FactorDelta* out) const {
  out->clear();
  out->push_back(EdgeFactor(lu, lv));
  out->push_back(DegreeFactor(lu, new_deg_u));
  out->push_back(DegreeFactor(lv, new_deg_v));
}

Signature SignatureCalculator::ComputeSignature(
    const graph::PatternGraph& g) const {
  std::vector<Factor> factors;
  factors.reserve(3 * g.NumEdges());
  for (const graph::Edge& e : g.edges()) {
    factors.push_back(EdgeFactor(g.label(e.u), g.label(e.v)));
  }
  for (graph::VertexId v = 0; v < g.NumVertices(); ++v) {
    const uint32_t deg = static_cast<uint32_t>(g.Degree(v));
    for (uint32_t i = 1; i <= deg; ++i) {
      factors.push_back(DegreeFactor(g.label(v), i));
    }
  }
  return Signature(std::move(factors));
}

Signature SignatureCalculator::ComputeSignature(
    std::span<const stream::StreamEdge> edges) const {
  std::vector<Factor> factors;
  factors.reserve(3 * edges.size());
  std::unordered_map<graph::VertexId, std::pair<graph::LabelId, uint32_t>> deg;
  for (const stream::StreamEdge& e : edges) {
    factors.push_back(EdgeFactor(e.label_u, e.label_v));
    ++deg[e.u].second;
    deg[e.u].first = e.label_u;
    ++deg[e.v].second;
    deg[e.v].first = e.label_v;
  }
  for (const auto& [v, info] : deg) {
    (void)v;
    for (uint32_t i = 1; i <= info.second; ++i) {
      factors.push_back(DegreeFactor(info.first, i));
    }
  }
  return Signature(std::move(factors));
}

Signature SignatureCalculator::SingleEdgeSignature(graph::LabelId a,
                                                   graph::LabelId b) const {
  return Signature({EdgeFactor(a, b), DegreeFactor(a, 1), DegreeFactor(b, 1)});
}

}  // namespace signature
}  // namespace loom
