// Fig. 8: ipt %, vs. Hash, when executing Q over multiple k-way
// partitionings (k = 2, 8, 32) of breadth-first graph streams.

#include <iostream>

#include "bench_common.h"
#include "datasets/dataset_registry.h"
#include "eval/experiment.h"
#include "eval/report.h"

int main() {
  using namespace loom;
  bench::Banner("Fig. 8 — ipt vs Hash across partition counts (BFS streams)",
                "Fig. 8(a-c)");

  for (uint32_t k : {2u, 8u, 32u}) {
    std::cout << "--- k = " << k << " ---\n";
    std::vector<eval::ComparisonResult> results;
    for (auto id : datasets::QueryableDatasets()) {
      datasets::Dataset ds = datasets::MakeDataset(id, bench::BenchScale());
      eval::ExperimentConfig cfg;
      cfg.order = stream::StreamOrder::kBreadthFirst;
      cfg.k = k;
      cfg.window_size = bench::BenchWindow();
      results.push_back(eval::RunComparison(ds, cfg));
    }
    eval::PrintRelativeIptTable(results, std::cout);
    std::cout << "\n";
  }

  std::cout << "Expected shape (paper): absolute ipt grows with k for every "
               "system, but the relative\nstandings (Hash > LDG > Fennel > "
               "Loom) are largely consistent across k = 2, 8, 32.\n";
  return 0;
}
