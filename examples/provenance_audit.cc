// Provenance-audit scenario: PROV lineage queries over wiki-page revision
// provenance (the paper's ProvGen dataset [6], with the common PROV queries
// of Dey et al. [5]: derivation, attribution, multi-step lineage).
//
// Demonstrates the per-query view: which query patterns benefit most from
// Loom's motif-aware placement, and how the motif machinery behaved
// (admissions, matches, cluster allocations) — the latter observed through
// the engine's EngineObserver events rather than backend-specific getters.
//
// Run:  ./example_provenance_audit [scale]

#include <cstdlib>
#include <iostream>

#include "core/loom_partitioner.h"
#include "datasets/dataset_registry.h"
#include "engine/engine.h"
#include "eval/experiment.h"
#include "query/workload_runner.h"
#include "util/table_writer.h"

int main(int argc, char** argv) {
  using namespace loom;
  const double scale = argc > 1 ? std::atof(argv[1]) : 0.5;

  datasets::Dataset ds =
      datasets::MakeDataset(datasets::DatasetId::kProvGen, scale);
  std::cout << "PROV provenance graph: " << ds.NumVertices() << " vertices, "
            << ds.NumEdges() << " edges (Entity / Activity / Agent)\n\n";

  eval::ExperimentConfig cfg;
  cfg.k = 8;
  cfg.window_size = 4000;

  // Both backends come out of the registry; the stream is pulled lazily
  // from an EdgeSource and replayed for the second system.
  engine::EngineOptions options = eval::ToEngineOptions(cfg, ds);
  engine::BuildContext context{&ds.workload, ds.registry.size()};
  auto source = engine::MakeEdgeSource(ds, cfg.order, cfg.stream_seed);
  std::string error;

  auto loom_p = engine::PartitionerRegistry::Global().Create("loom", options,
                                                             context, &error);
  auto fennel_p = engine::PartitionerRegistry::Global().Create(
      "fennel", options, context, &error);
  if (loom_p == nullptr || fennel_p == nullptr) {
    std::cerr << "engine: " << error << "\n";
    return 1;
  }

  engine::StatsObserver events;  // structured decision events, not getters
  engine::Drive(loom_p.get(), source.get(), &events);
  auto* loom = dynamic_cast<core::LoomPartitioner*>(loom_p.get());

  source->Reset();
  engine::Drive(fennel_p.get(), source.get());

  const engine::StatsObserver::Totals& t_ev = events.totals();
  const engine::ProgressEvent& final_progress = t_ev.last_progress;
  std::cout << "Loom's motif machinery (via EngineObserver):\n"
            << "  edges bypassing the window (never motif-matchable): "
            << final_progress.edges_bypassed << "\n"
            << "  edges admitted to Ptemp: "
            << final_progress.edges_ingested - final_progress.edges_bypassed
            << "\n"
            << "  multi-edge motif matches found: "
            << loom->matcher_stats().extension_matches +
                   loom->matcher_stats().join_matches
            << "\n"
            << "  match clusters allocated: " << t_ev.cluster_decisions
            << " (" << t_ev.fallback_decisions << " via LDG fallback, "
            << t_ev.cluster_edges_assigned << " edges co-located)\n\n";

  query::WorkloadResult lw =
      query::RunWorkload(ds.graph, loom_p->partitioning(), ds.workload);
  query::WorkloadResult fw =
      query::RunWorkload(ds.graph, fennel_p->partitioning(), ds.workload);

  util::TableWriter t({"query", "freq", "loom ipt", "fennel ipt", "loom wins by"});
  for (size_t i = 0; i < lw.per_query.size(); ++i) {
    const auto& lq = lw.per_query[i];
    const auto& fq = fw.per_query[i];
    const double gain =
        fq.result.ipt > 0
            ? 1.0 - static_cast<double>(lq.result.ipt) /
                        static_cast<double>(fq.result.ipt)
            : 0.0;
    t.AddRow({lq.name, util::TableWriter::Pct(lq.frequency, 0),
              std::to_string(lq.result.ipt), std::to_string(fq.result.ipt),
              util::TableWriter::Pct(gain)});
  }
  t.Print(std::cout);

  std::cout << "\nWorkload-weighted: loom "
            << util::TableWriter::Fmt(lw.weighted_ipt, 0) << " ipt vs fennel "
            << util::TableWriter::Fmt(fw.weighted_ipt, 0) << " ("
            << util::TableWriter::Pct(1.0 - lw.weighted_ipt / fw.weighted_ipt)
            << " fewer).\n";
  return 0;
}
