#include "query/query_executor.h"

#include <gtest/gtest.h>

#include "datasets/dataset_registry.h"
#include "graph/pattern_graph.h"

namespace loom {
namespace query {
namespace {

using graph::PatternGraph;

// The Fig. 1 graph: vertices 0..7, labels a b c d / b a d c, lattice edges.
class Fig1ExecutorTest : public ::testing::Test {
 protected:
  Fig1ExecutorTest() : ds_(datasets::MakeFigure1Dataset()) {
    a_ = ds_.registry.Find("a");
    b_ = ds_.registry.Find("b");
    c_ = ds_.registry.Find("c");
    d_ = ds_.registry.Find("d");
  }

  // The paper's partitioning {A, B}: rows {0,1,4,5} and {2,3,6,7}
  // (1-based {1,2,5,6} / {3,4,7,8}).
  partition::Partitioning PaperPartitioningAB() {
    partition::Partitioning p(2, 8);
    for (graph::VertexId v : {0u, 1u, 4u, 5u}) p.Assign(v, 0);
    for (graph::VertexId v : {2u, 3u, 6u, 7u}) p.Assign(v, 1);
    return p;
  }

  // The paper's alternative A' = {1,2,3,6} (0-based {0,1,2,5}).
  partition::Partitioning PaperPartitioningAPrime() {
    partition::Partitioning p(2, 8);
    for (graph::VertexId v : {0u, 1u, 2u, 5u}) p.Assign(v, 0);
    for (graph::VertexId v : {3u, 4u, 6u, 7u}) p.Assign(v, 1);
    return p;
  }

  datasets::Dataset ds_;
  graph::LabelId a_, b_, c_, d_;
};

TEST_F(Fig1ExecutorTest, Q2MatchesAreExactlyTwo) {
  // Sec. 1: q2 (a-b-c) matches {(1,2),(2,3)} and {(6,2),(2,3)} — two
  // embeddings.
  QueryExecutor ex(&ds_.graph);
  auto r = ex.Execute(PatternGraph::Path({a_, b_, c_}),
                      PaperPartitioningAB());
  EXPECT_EQ(r.matches, 2u);
}

TEST_F(Fig1ExecutorTest, Q2CrossesUnderMinCutButNotUnderAPrime) {
  // The paper's motivating observation: every q2 match crosses the min-cut
  // partitioning {A,B}, while A' = {1,2,3,6} keeps all q2 *matches* local.
  // (Our executor also charges failed exploration branches — e.g. probing
  // the a-neighbours of the other b vertex — so A' scores a small nonzero
  // ipt rather than the paper's idealised 0; the improvement is what the
  // paper claims and what we assert.)
  // On this 8-vertex toy both counts land at 2 (A/B crosses inside both
  // matches; A' crosses only on dead-end probes), so we assert the ordering
  // is not *worse* and that every A/B match-completing step crossed.
  QueryExecutor ex(&ds_.graph);
  PatternGraph q2 = PatternGraph::Path({a_, b_, c_});
  auto ab = ex.Execute(q2, PaperPartitioningAB());
  auto aprime = ex.Execute(q2, PaperPartitioningAPrime());
  EXPECT_GT(ab.ipt, 0u);
  EXPECT_GE(ab.ipt, ab.matches);  // every match crossed under min edge-cut
  EXPECT_LE(aprime.ipt, ab.ipt);
  // Traversals are partitioning-independent (fair comparison property).
  EXPECT_EQ(ab.traversals, aprime.traversals);
  EXPECT_EQ(ab.matches, aprime.matches);
}

TEST_F(Fig1ExecutorTest, SinglePartitionMeansZeroIpt) {
  partition::Partitioning p(1, 8);
  for (graph::VertexId v = 0; v < 8; ++v) p.Assign(v, 0);
  QueryExecutor ex(&ds_.graph);
  for (const auto& q : ds_.workload.queries()) {
    auto r = ex.Execute(q.pattern, p);
    EXPECT_EQ(r.ipt, 0u) << q.name;
    EXPECT_GT(r.traversals, 0u) << q.name;
  }
}

TEST_F(Fig1ExecutorTest, IptNeverExceedsTraversals) {
  QueryExecutor ex(&ds_.graph);
  for (const auto& q : ds_.workload.queries()) {
    auto r = ex.Execute(q.pattern, PaperPartitioningAB());
    EXPECT_LE(r.ipt, r.traversals) << q.name;
  }
}

TEST_F(Fig1ExecutorTest, SquareQueryFindsTheSquare) {
  // q1 is the a-b-a-b square: in G, vertices {1,2,5,6} (0-based 0,1,4,5)
  // form one. Each embedding is counted once per automorphism-anchored
  // start, so matches > 0 suffices plus symmetry count divisibility.
  QueryExecutor ex(&ds_.graph);
  auto r = ex.Execute(PatternGraph::Cycle({a_, b_, a_, b_}),
                      PaperPartitioningAB());
  EXPECT_GT(r.matches, 0u);
  // The square has an automorphism group of size 8 restricted to labelled
  // rotations/reflections: matches must be a multiple of embeddings.
  EXPECT_EQ(r.matches % 2, 0u);
}

TEST_F(Fig1ExecutorTest, NoMatchesForAbsentPattern) {
  QueryExecutor ex(&ds_.graph);
  // d-d edges don't exist in G.
  auto r = ex.Execute(PatternGraph::Path({d_, d_}), PaperPartitioningAB());
  EXPECT_EQ(r.matches, 0u);
}

TEST_F(Fig1ExecutorTest, DeterministicResults) {
  QueryExecutor ex(&ds_.graph);
  PatternGraph q = PatternGraph::Path({a_, b_, c_});
  auto r1 = ex.Execute(q, PaperPartitioningAB());
  auto r2 = ex.Execute(q, PaperPartitioningAB());
  EXPECT_EQ(r1.matches, r2.matches);
  EXPECT_EQ(r1.traversals, r2.traversals);
  EXPECT_EQ(r1.ipt, r2.ipt);
}

TEST(QueryExecutorTest, SeedCapBoundsWork) {
  auto ds = datasets::MakeDataset(datasets::DatasetId::kProvGen, 0.05);
  partition::Partitioning p(4, ds.NumVertices());
  for (graph::VertexId v = 0; v < ds.NumVertices(); ++v) p.Assign(v, v % 4);

  ExecutorConfig capped;
  capped.max_seeds = 50;
  QueryExecutor ex_capped(&ds.graph, capped);
  QueryExecutor ex_full(&ds.graph);
  const auto& q = ds.workload.queries()[0].pattern;
  auto r_capped = ex_capped.Execute(q, p);
  auto r_full = ex_full.Execute(q, p);
  EXPECT_LT(r_capped.traversals, r_full.traversals);
  EXPECT_GT(r_capped.matches, 0u);
}

TEST(QueryExecutorTest, MatchBudgetPerSeedBounds) {
  auto ds = datasets::MakeDataset(datasets::DatasetId::kProvGen, 0.05);
  partition::Partitioning p(1, ds.NumVertices());
  for (graph::VertexId v = 0; v < ds.NumVertices(); ++v) p.Assign(v, 0);
  ExecutorConfig tight;
  tight.max_matches_per_seed = 1;
  QueryExecutor ex(&ds.graph, tight);
  const auto& q = ds.workload.queries()[0].pattern;
  auto r = ex.Execute(q, p);
  // With agents as rare anchors and budget 1, matches <= number of seeds.
  EXPECT_GT(r.matches, 0u);
  EXPECT_LE(r.matches, ds.NumVertices());
}

TEST(QueryExecutorTest, InjectiveMatching) {
  // Pattern a-b-a must not map both a's to the same data vertex: on a single
  // a-b edge graph there is no valid embedding.
  graph::LabeledGraph::Builder b;
  graph::VertexId v0 = b.AddVertex(0);
  graph::VertexId v1 = b.AddVertex(1);
  b.AddEdge(v0, v1);
  graph::LabeledGraph g = b.Build();
  partition::Partitioning p(1, 2);
  p.Assign(0, 0);
  p.Assign(1, 0);
  QueryExecutor ex(&g);
  auto r = ex.Execute(PatternGraph::Path({0, 1, 0}), p);
  EXPECT_EQ(r.matches, 0u);
}

TEST(QueryExecutorTest, ClosureEdgesChecked) {
  // Triangle query on a path graph: no matches (the closing edge is absent).
  graph::LabeledGraph::Builder b;
  for (int i = 0; i < 3; ++i) b.AddVertex(0);
  b.AddEdge(0, 1);
  b.AddEdge(1, 2);
  graph::LabeledGraph path = b.Build();
  partition::Partitioning p(1, 3);
  for (graph::VertexId v = 0; v < 3; ++v) p.Assign(v, 0);
  QueryExecutor ex(&path);
  auto r = ex.Execute(PatternGraph::Cycle({0, 0, 0}), p);
  EXPECT_EQ(r.matches, 0u);

  // Same query on an actual triangle: matches exist.
  graph::LabeledGraph::Builder b2;
  for (int i = 0; i < 3; ++i) b2.AddVertex(0);
  b2.AddEdge(0, 1);
  b2.AddEdge(1, 2);
  b2.AddEdge(2, 0);
  graph::LabeledGraph tri = b2.Build();
  QueryExecutor ex2(&tri);
  auto r2 = ex2.Execute(PatternGraph::Cycle({0, 0, 0}), p);
  EXPECT_GT(r2.matches, 0u);
}

}  // namespace
}  // namespace query
}  // namespace loom
