// DBH — Degree-Based Hashing streaming edge partitioner (Xie et al.,
// NIPS'14): hash the edge to the part of its LOWER-degree endpoint.
//
// The insight mirrors HDRF's but costs nothing: cutting (replicating) the
// high-degree endpoint is cheaper per future edge, so the low-degree
// endpoint should anchor the edge's placement. With partial degrees
// (streamed-so-far, this edge included) the rule is fully streaming and
// stateless beyond the degree counters the base class already keeps —
// the cheap baseline of the family, the floor every smarter scorer must
// beat on replication factor.
//
// Determinism: the anchor is the endpoint with the strictly smaller
// partial degree, ties going to min(u,v); the hash is the same SplitMix64
// finaliser the "hash" vertex backend uses, so placements depend only on
// the edge sequence.

#ifndef LOOM_PARTITION_EDGE_DBH_PARTITIONER_H_
#define LOOM_PARTITION_EDGE_DBH_PARTITIONER_H_

#include "partition/edge/edge_partitioner.h"

namespace loom {
namespace partition {
namespace edge {

class DbhPartitioner final : public EdgePartitioner {
 public:
  explicit DbhPartitioner(const PartitionerConfig& config)
      : EdgePartitioner(config) {}

  std::string name() const override { return "dbh"; }

 protected:
  graph::PartitionId PlaceEdge(const stream::StreamEdge& e) override;
};

}  // namespace edge
}  // namespace partition
}  // namespace loom

#endif  // LOOM_PARTITION_EDGE_DBH_PARTITIONER_H_
