// Pull-based edge sources: the engine's ingest abstraction.
//
// The paper views an online graph as a possibly-infinite sequence of edge
// additions (Sec. 1.3); materialising that sequence as a std::vector (the
// old stream::EdgeStream-everywhere idiom) caps every experiment at
// streams that fit in RAM and bakes "replay a vector" into every caller.
// EdgeSource inverts the dependency: the engine *pulls* batches of
// StreamEdges from a source, so a source can synthesise edges lazily
// (generator-backed datasets), walk an in-memory graph in a chosen arrival
// order without copying it, or — later — read from a socket or file tail.
//
// Adapters provided here:
//   * GraphEdgeSource      — lazily streams a LabeledGraph in a given edge
//                            order (BFS/DFS/random shuffles included); only
//                            the order permutation is materialised, not the
//                            labelled StreamEdge records.
//   * EdgeStreamSource     — wraps an already-materialised EdgeStream
//                            (bridge for the existing eval/bench plumbing).
//   * MakeEdgeSource       — convenience: dataset or graph + StreamOrder.
//
// Sources are replayable via Reset() so one source can feed the four
// compared systems identical streams.

#ifndef LOOM_ENGINE_EDGE_SOURCE_H_
#define LOOM_ENGINE_EDGE_SOURCE_H_

#include <memory>
#include <span>
#include <vector>

#include "datasets/schema.h"
#include "graph/labeled_graph.h"
#include "stream/edge_stream.h"
#include "stream/stream_order.h"

namespace loom {
namespace engine {

class EdgeSource {
 public:
  virtual ~EdgeSource() = default;

  /// Fills up to out.size() consecutive stream elements; returns how many
  /// were written. 0 means the source is exhausted (it stays exhausted
  /// until Reset). StreamEdge ids are stream positions: unique, dense per
  /// source, monotonically increasing.
  virtual size_t NextBatch(std::span<stream::StreamEdge> out) = 0;

  /// Total elements this source will produce, if known (0 = unknown); used
  /// to size expected_edges and progress reporting.
  virtual size_t SizeHint() const { return 0; }

  /// Rewinds to the first element.
  virtual void Reset() = 0;
};

/// Lazily streams the edges of a LabeledGraph in the order given by a
/// permutation of its edge ids. Only the permutation (4 bytes/edge) is
/// held; labels are attached per batch from the graph.
class GraphEdgeSource : public EdgeSource {
 public:
  /// `graph` must outlive the source. `edge_order` must be a permutation of
  /// the graph's edge ids; wrong length, out-of-range ids and duplicates
  /// throw std::invalid_argument (in Release builds too — a bad permutation
  /// silently streams the wrong graph).
  GraphEdgeSource(const graph::LabeledGraph& graph,
                  std::vector<graph::EdgeId> edge_order);

  size_t NextBatch(std::span<stream::StreamEdge> out) override;
  size_t SizeHint() const override { return order_.size(); }
  void Reset() override { pos_ = 0; }

 private:
  const graph::LabeledGraph& graph_;
  std::vector<graph::EdgeId> order_;
  size_t pos_ = 0;
};

/// Bridges an already-materialised EdgeStream (which many tests and the
/// replay-heavy benches still build) into the pull interface. The stream
/// must outlive the source.
class EdgeStreamSource : public EdgeSource {
 public:
  explicit EdgeStreamSource(const stream::EdgeStream& es) : es_(es) {}

  size_t NextBatch(std::span<stream::StreamEdge> out) override;
  size_t SizeHint() const override { return es_.size(); }
  void Reset() override { pos_ = 0; }

 private:
  const stream::EdgeStream& es_;
  size_t pos_ = 0;
};

/// Stream-order shuffler adapter: builds the BFS/DFS/random arrival
/// permutation for `graph` and wraps it in a GraphEdgeSource. `seed` only
/// matters for StreamOrder::kRandom.
std::unique_ptr<EdgeSource> MakeEdgeSource(const graph::LabeledGraph& graph,
                                           stream::StreamOrder order,
                                           uint64_t seed = 0x10c5);

/// Dataset-generator adapter: streams `ds.graph` (the four Table 1
/// generators all produce Datasets) under `order`. The dataset must outlive
/// the source.
std::unique_ptr<EdgeSource> MakeEdgeSource(const datasets::Dataset& ds,
                                           stream::StreamOrder order,
                                           uint64_t seed = 0x10c5);

}  // namespace engine
}  // namespace loom

#endif  // LOOM_ENGINE_EDGE_SOURCE_H_
