// Differential proof obligations for the paged-adjacency arena and the hub
// tally cache (ROADMAP item 5): both are SPEED/LAYOUT knobs, so for every
// backend, every page capacity and every hub threshold must produce a
// partitioning bit-identical to the defaults. A page-boundary walk bug or a
// stale hub row does not crash — it silently moves vertices — so these
// differentials are the features' real acceptance gate, alongside the
// page=4 ctest leg that re-runs the core suites with LOOM_ADJ_PAGE=4.
//
// The suite also pins the self-loop policy end to end: backends ingesting a
// self-loop through the DIRECT API (below the io layer, which rejects them)
// must canonicalise identically — serial loom and sharded loom stay
// bit-identical on a stream containing self-loops, and every knob remains
// behaviour-neutral on such a stream. The pre-sweep code double-inserted
// self-loops in the serial graph but could split them across shard branches,
// which is exactly the divergence this would catch.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "datasets/dataset_registry.h"
#include "engine/engine.h"
#include "graph/types.h"
#include "partition/partitioner.h"
#include "stream/stream_order.h"
#include "test_util.h"

namespace loom {
namespace core {
namespace {

engine::EngineOptions WithKnobs(const engine::EngineOptions& base,
                                const std::string& adj_page,
                                const std::string& hub_threshold) {
  engine::EngineOptions o = base;
  std::string error;
  EXPECT_TRUE(o.Set("adj_page", adj_page, &error)) << error;
  EXPECT_TRUE(o.Set("hub_threshold", hub_threshold, &error)) << error;
  return o;
}

constexpr const char* kAllBackends[] = {"hash", "ldg", "fennel", "loom",
                                        "loom-sharded:shards=3"};

TEST(AdjacencyEquivalenceTest, PageCapacityIsLayoutOnlyForEveryBackend) {
  const datasets::Dataset ds =
      datasets::MakeDataset(datasets::DatasetId::kProvGen, 0.05);
  const engine::EngineOptions base = test_util::OptionsFor(ds);
  for (const char* spec : kAllBackends) {
    // Explicit hub_threshold so the reference/variant pair differs ONLY in
    // page capacity (and stays immune to the CI leg's env overrides).
    const test_util::Quality reference = test_util::DriveSpec(
        spec, ds, WithKnobs(base, "64", "128"),
        stream::StreamOrder::kBreadthFirst, 0x5eed, 97);
    for (const char* page : {"1", "3", "4", "1024"}) {
      EXPECT_EQ(test_util::DriveSpec(spec, ds, WithKnobs(base, page, "128"),
                                     stream::StreamOrder::kBreadthFirst,
                                     0x5eed, 97),
                reference)
          << spec << " adj_page=" << page;
    }
  }
}

TEST(AdjacencyEquivalenceTest, HubThresholdIsSpeedOnlyForEveryBackend) {
  const datasets::Dataset ds =
      datasets::MakeDataset(datasets::DatasetId::kMusicBrainz, 0.05);
  const engine::EngineOptions base = test_util::OptionsFor(ds);
  for (const char* spec : kAllBackends) {
    // Reference: hub cache disabled outright (threshold UINT32_MAX — no
    // vertex ever qualifies), i.e. the plain tally-every-decision path.
    const test_util::Quality reference = test_util::DriveSpec(
        spec, ds, WithKnobs(base, "64", "4294967295"),
        stream::StreamOrder::kRandom, 0xabc, 256);
    // threshold 1 makes EVERY touched vertex a hub (maximum cache traffic),
    // 8 mixes hub and walked tallies, 128 is the production default.
    for (const char* thr : {"1", "8", "128"}) {
      EXPECT_EQ(test_util::DriveSpec(spec, ds, WithKnobs(base, "64", thr),
                                     stream::StreamOrder::kRandom, 0xabc, 256),
                reference)
          << spec << " hub_threshold=" << thr;
    }
  }
}

// The knobs compose: tiny pages force chunked hub materialisation while
// every decision alternates between hub rows and chain walks.
TEST(AdjacencyEquivalenceTest, TinyPagesAndAggressiveHubCompose) {
  const datasets::Dataset ds =
      datasets::MakeDataset(datasets::DatasetId::kDblp, 0.04);
  const engine::EngineOptions base = test_util::OptionsFor(ds);
  for (const char* spec : {"ldg", "loom", "loom-sharded:shards=4"}) {
    const test_util::Quality reference = test_util::DriveSpec(
        spec, ds, WithKnobs(base, "64", "4294967295"),
        stream::StreamOrder::kDepthFirst, 0x5eed, 512);
    EXPECT_EQ(test_util::DriveSpec(spec, ds, WithKnobs(base, "1", "1"),
                                   stream::StreamOrder::kDepthFirst, 0x5eed,
                                   512),
              reference)
        << spec;
  }
}

// --------------------------------------------------------------- self-loops

/// A real dataset stream with a self-loop injected every `stride` edges
/// (endpoint and label copied from the preceding edge, ids renumbered to
/// stay dense stream positions).
std::vector<stream::StreamEdge> StreamWithSelfLoops(
    const datasets::Dataset& ds, size_t stride) {
  const stream::EdgeStream es =
      stream::MakeStream(ds.graph, stream::StreamOrder::kBreadthFirst);
  std::vector<stream::StreamEdge> edges;
  edges.reserve(es.size() + es.size() / stride + 1);
  for (size_t i = 0; i < es.size(); ++i) {
    edges.push_back(es[i]);
    if (i % stride == stride - 1) {
      stream::StreamEdge loop = es[i];
      loop.v = loop.u;
      loop.label_v = loop.label_u;
      edges.push_back(loop);
    }
  }
  for (size_t i = 0; i < edges.size(); ++i) {
    edges[i].id = static_cast<graph::EdgeId>(i);
  }
  return edges;
}

std::vector<graph::PartitionId> IngestAndCollect(
    partition::Partitioner* p, const std::vector<stream::StreamEdge>& edges,
    size_t num_vertices) {
  for (const stream::StreamEdge& e : edges) p->Ingest(e);
  p->Finalize();
  std::vector<graph::PartitionId> out(num_vertices);
  for (graph::VertexId v = 0; v < num_vertices; ++v) {
    out[v] = p->partitioning().PartitionOf(v);
  }
  return out;
}

// All five backends must digest a self-loop-bearing stream without
// divergence: deterministic (two runs bit-equal), layout-independent
// (page 1 == page 64), and — the historical bug — serial loom and sharded
// loom identical. Before canonicalisation the serial graph double-inserted
// self-loops while the sharded slice builder could append them once or
// twice depending on shard ownership branches.
TEST(SelfLoopPolicyTest, AllBackendsAgreeOnSelfLoopStreams) {
  const datasets::Dataset ds =
      datasets::MakeDataset(datasets::DatasetId::kProvGen, 0.05);
  const engine::EngineOptions base = test_util::OptionsFor(ds);
  const std::vector<stream::StreamEdge> edges = StreamWithSelfLoops(ds, 37);
  const size_t n = ds.graph.NumVertices();

  for (const char* spec : kAllBackends) {
    auto first = test_util::MakeBackend(spec, WithKnobs(base, "64", "128"), ds);
    auto again = test_util::MakeBackend(spec, WithKnobs(base, "64", "128"), ds);
    auto page1 = test_util::MakeBackend(spec, WithKnobs(base, "1", "128"), ds);
    auto nohub =
        test_util::MakeBackend(spec, WithKnobs(base, "64", "4294967295"), ds);
    ASSERT_NE(first, nullptr) << spec;
    ASSERT_NE(again, nullptr) << spec;
    ASSERT_NE(page1, nullptr) << spec;
    ASSERT_NE(nohub, nullptr) << spec;

    const auto reference = IngestAndCollect(first.get(), edges, n);
    EXPECT_EQ(IngestAndCollect(again.get(), edges, n), reference)
        << spec << ": nondeterministic on a self-loop stream";
    EXPECT_EQ(IngestAndCollect(page1.get(), edges, n), reference)
        << spec << ": page capacity changed self-loop handling";
    EXPECT_EQ(IngestAndCollect(nohub.get(), edges, n), reference)
        << spec << ": hub cache changed self-loop handling";
  }
}

TEST(SelfLoopPolicyTest, ShardedStaysBitIdenticalToSerialWithSelfLoops) {
  const datasets::Dataset ds =
      datasets::MakeDataset(datasets::DatasetId::kMusicBrainz, 0.05);
  const engine::EngineOptions base = test_util::OptionsFor(ds);
  const std::vector<stream::StreamEdge> edges = StreamWithSelfLoops(ds, 23);
  const size_t n = ds.graph.NumVertices();

  auto serial = test_util::MakeBackend("loom", base, ds);
  ASSERT_NE(serial, nullptr);
  const auto reference = IngestAndCollect(serial.get(), edges, n);

  for (const char* spec :
       {"loom-sharded:shards=1", "loom-sharded:shards=2",
        "loom-sharded:shards=5"}) {
    auto sharded = test_util::MakeBackend(spec, base, ds);
    ASSERT_NE(sharded, nullptr) << spec;
    EXPECT_EQ(IngestAndCollect(sharded.get(), edges, n), reference) << spec;
  }
}

}  // namespace
}  // namespace core
}  // namespace loom
