#include "datasets/musicbrainz_generator.h"

#include <algorithm>
#include <vector>

#include "util/rng.h"

namespace loom {
namespace datasets {

void EmitMusicBrainz(const MusicBrainzConfig& config,
                     graph::LabelRegistry* registry, GraphSink* sink) {
  auto& reg = *registry;
  GraphSink& b = *sink;
  const graph::LabelId kArtist = reg.Intern("Artist");
  const graph::LabelId kAlbum = reg.Intern("Album");
  const graph::LabelId kRecording = reg.Intern("Recording");
  const graph::LabelId kWork = reg.Intern("Work");
  const graph::LabelId kLabel = reg.Intern("Label");
  const graph::LabelId kArea = reg.Intern("Area");
  const graph::LabelId kGenre = reg.Intern("Genre");
  const graph::LabelId kRelease = reg.Intern("Release");
  const graph::LabelId kEvent = reg.Intern("Event");
  const graph::LabelId kPlace = reg.Intern("Place");
  const graph::LabelId kSeries = reg.Intern("Series");
  const graph::LabelId kInstrument = reg.Intern("Instrument");

  util::Rng rng(config.seed);

  const size_t num_albums = std::max<size_t>(config.num_albums, 50);
  const size_t num_artists = std::max<size_t>(num_albums * 2 / 5, 10);
  const size_t num_labels = std::max<size_t>(num_albums / 80, 4);
  const size_t num_areas = std::max<size_t>(num_albums / 300, 4);
  const size_t num_genres = 24;
  const size_t num_works = std::max<size_t>(num_albums / 2, 10);
  const size_t num_places = std::max<size_t>(num_albums / 150, 4);
  const size_t num_series = std::max<size_t>(num_albums / 200, 3);
  const size_t num_instruments = 16;

  std::vector<graph::VertexId> artists, albums, labels, areas, genres, works,
      places, series, instruments;
  for (size_t i = 0; i < num_artists; ++i) artists.push_back(b.AddVertex(kArtist));
  for (size_t i = 0; i < num_albums; ++i) albums.push_back(b.AddVertex(kAlbum));
  for (size_t i = 0; i < num_labels; ++i) labels.push_back(b.AddVertex(kLabel));
  for (size_t i = 0; i < num_areas; ++i) areas.push_back(b.AddVertex(kArea));
  for (size_t i = 0; i < num_genres; ++i) genres.push_back(b.AddVertex(kGenre));
  for (size_t i = 0; i < num_works; ++i) works.push_back(b.AddVertex(kWork));
  for (size_t i = 0; i < num_places; ++i) places.push_back(b.AddVertex(kPlace));
  for (size_t i = 0; i < num_series; ++i) series.push_back(b.AddVertex(kSeries));
  for (size_t i = 0; i < num_instruments; ++i) {
    instruments.push_back(b.AddVertex(kInstrument));
  }

  // Static geography: artists and labels live in areas.
  for (graph::VertexId a : artists) {
    b.AddEdge(a, areas[rng.Zipf(num_areas, 0.9)]);
    if (rng.Bernoulli(0.3)) {
      b.AddEdge(a, instruments[rng.Zipf(num_instruments, 1.0)]);
    }
  }
  for (graph::VertexId l : labels) b.AddEdge(l, areas[rng.Zipf(num_areas, 0.9)]);

  for (size_t i = 0; i < num_albums; ++i) {
    const graph::VertexId album = albums[i];
    // Primary artist, Zipf popularity; ~25% are collaborations (features,
    // splits and compilations are common in music metadata).
    const graph::VertexId primary = artists[rng.Zipf(num_artists, 0.7)];
    b.AddEdge(album, primary);
    if (rng.Bernoulli(0.25)) {
      b.AddEdge(album, artists[rng.Zipf(num_artists, 0.7)]);
    }
    b.AddEdge(album, labels[rng.Zipf(num_labels, 1.0)]);
    b.AddEdge(album, genres[rng.Zipf(num_genres, 1.1)]);
    if (rng.Bernoulli(0.25)) b.AddEdge(album, genres[rng.Zipf(num_genres, 1.1)]);
    // 1-3 recordings per album, each of some work and credited to the
    // album's primary artist; ~20% carry a guest credit (featurings are how
    // MusicBrainz expresses most artist collaboration).
    const size_t n_rec = 1 + rng.Uniform(3);
    for (size_t r = 0; r < n_rec; ++r) {
      const graph::VertexId rec = b.AddVertex(kRecording);
      b.AddEdge(album, rec);
      b.AddEdge(rec, works[rng.Zipf(num_works, 0.8)]);
      b.AddEdge(rec, primary);
      if (rng.Bernoulli(0.20)) {
        b.AddEdge(rec, artists[rng.Zipf(num_artists, 0.7)]);
      }
    }
    // ~40% of albums have an explicit release; releases happen at events.
    if (rng.Bernoulli(0.4)) {
      const graph::VertexId rel = b.AddVertex(kRelease);
      b.AddEdge(album, rel);
      if (rng.Bernoulli(0.3)) {
        const graph::VertexId ev = b.AddVertex(kEvent);
        b.AddEdge(rel, ev);
        b.AddEdge(ev, places[rng.Zipf(num_places, 0.9)]);
      }
    }
    if (rng.Bernoulli(0.05)) b.AddEdge(album, series[rng.Zipf(num_series, 1.0)]);
  }
}

Dataset GenerateMusicBrainz(const MusicBrainzConfig& config) {
  Dataset ds;
  ds.meta.name = "musicbrainz";
  ds.meta.real_world_analog = true;
  ds.meta.description = "Music records metadata (synthetic MusicBrainz analog)";

  BuilderSink sink;
  EmitMusicBrainz(config, &ds.registry, &sink);
  ds.graph = sink.Build();
  return ds;
}

}  // namespace datasets
}  // namespace loom
