// Coverage for the loom::engine facade: EngineOptions key round-tripping
// and error reporting, registry construction (bit-identical to direct
// construction), backend spec parsing, pull-based edge sources, Drive, and
// the observer event stream.

#include "engine/engine.h"

#include <gtest/gtest.h>

#include "core/loom_partitioner.h"
#include "core/loom_sharded.h"
#include "datasets/dataset_registry.h"
#include "eval/experiment.h"
#include "partition/fennel_partitioner.h"
#include "partition/hash_partitioner.h"
#include "partition/ldg_partitioner.h"
#include "stream/stream_order.h"
#include "test_util.h"

namespace loom {
namespace engine {
namespace {

// ------------------------------------------------------- EngineOptions

TEST(EngineOptionsTest, EveryKeyRoundTripsFromItsStringForm) {
  // Non-default value for every key, exercising each parser (uint, float,
  // bool, hex) — Get must return a string Set parses back to equality.
  EngineOptions original;
  std::string error;
  const std::vector<std::pair<std::string, std::string>> overrides = {
      {"k", "16"},
      {"expected_vertices", "123456"},
      {"expected_edges", "654321"},
      {"max_imbalance", "1.25"},
      {"adj_page", "16"},
      {"hub_threshold", "32"},
      {"window_size", "4000"},
      {"support_threshold", "0.35"},
      {"prime", "509"},
      {"signature_seed", "0xDEADBEEF"},
      {"alpha", "0.5"},
      {"balance_b", "1.3"},
      {"neighbor_bid_weight", "0.125"},
      {"disable_rationing", "true"},
      {"max_matches_per_vertex", "32"},
      {"compact_interval", "2048"},
      {"fennel_gamma", "1.7"},
      {"lambda", "2.5"},
      {"epsilon", "0.25"},
      {"threshold_factor", "6.5"},
      {"simd", "scalar"},
      {"shards", "3"},
      {"shard_queue_depth", "2"},
  };
  ASSERT_EQ(overrides.size(), EngineOptions::KeyNames().size())
      << "new EngineOptions key without round-trip coverage";
  for (const auto& [key, value] : overrides) {
    ASSERT_TRUE(original.Set(key, value, &error)) << key << ": " << error;
  }

  EngineOptions reparsed;
  for (const auto& [key, value] : original.ToFlat()) {
    ASSERT_TRUE(reparsed.Set(key, value, &error))
        << key << "='" << value << "': " << error;
  }
  EXPECT_EQ(original, reparsed);
}

TEST(EngineOptionsTest, DefaultsRoundTripToo) {
  const EngineOptions defaults;
  EngineOptions reparsed;
  std::string error;
  for (const auto& [key, value] : defaults.ToFlat()) {
    ASSERT_TRUE(reparsed.Set(key, value, &error)) << key << ": " << error;
  }
  EXPECT_EQ(defaults, reparsed);
}

TEST(EngineOptionsTest, UnknownKeyErrorIsActionable) {
  EngineOptions o;
  std::string error;
  EXPECT_FALSE(o.Set("windw_size", "100", &error));
  // The message names the offending key and lists the known ones.
  EXPECT_NE(error.find("windw_size"), std::string::npos) << error;
  EXPECT_NE(error.find("window_size"), std::string::npos) << error;
  EXPECT_NE(error.find("known keys"), std::string::npos) << error;
}

TEST(EngineOptionsTest, BadValueErrorNamesKeyValueAndExpectedType) {
  EngineOptions o;
  std::string error;
  EXPECT_FALSE(o.Set("window_size", "lots", &error));
  EXPECT_NE(error.find("window_size"), std::string::npos) << error;
  EXPECT_NE(error.find("lots"), std::string::npos) << error;
  EXPECT_NE(error.find("uint"), std::string::npos) << error;
}

TEST(EngineOptionsTest, OutOfRangeValuesRejected) {
  EngineOptions o;
  std::string error;
  EXPECT_FALSE(o.Set("k", "0", &error));
  EXPECT_FALSE(o.Set("support_threshold", "1.5", &error));
  EXPECT_FALSE(o.Set("alpha", "0", &error));
  EXPECT_FALSE(o.Set("max_imbalance", "0.9", &error));
  EXPECT_FALSE(o.Set("fennel_gamma", "1.0", &error));
  EXPECT_FALSE(o.Set("disable_rationing", "maybe", &error));
  EXPECT_FALSE(o.Set("shards", "0", &error));
  EXPECT_FALSE(o.Set("shards", "257", &error));
  EXPECT_FALSE(o.Set("shard_queue_depth", "0", &error));
  // A failed Set leaves the options untouched.
  EXPECT_EQ(o, EngineOptions());
}

TEST(EngineOptionsTest, ApplyOverridesStopsAtFirstError) {
  EngineOptions o;
  std::string error;
  EXPECT_TRUE(o.ApplyOverrides({"k=4", "window_size=100"}, &error));
  EXPECT_EQ(o.k, 4u);
  EXPECT_EQ(o.window_size, 100u);
  EXPECT_FALSE(o.ApplyOverrides({"k=8", "bogus"}, &error));
  EXPECT_NE(error.find("bogus"), std::string::npos) << error;
  EXPECT_NE(error.find("key=value"), std::string::npos) << error;
}

// ------------------------------------------------------------ registry

TEST(PartitionerRegistryTest, BuiltinsAreRegistered) {
  auto names = PartitionerRegistry::Global().Names();
  ASSERT_GE(names.size(), 8u);
  EXPECT_EQ(names[0], "hash");
  EXPECT_EQ(names[1], "ldg");
  EXPECT_EQ(names[2], "fennel");
  EXPECT_EQ(names[3], "loom");
  EXPECT_EQ(names[4], "loom-sharded");
  // The edge-partitioning family (PR 9, hep in PR 10) registers after the
  // vertex family.
  EXPECT_EQ(names[5], "hdrf");
  EXPECT_EQ(names[6], "dbh");
  EXPECT_EQ(names[7], "hep");
}

TEST(PartitionerRegistryTest, UnknownBackendErrorListsRegisteredOnes) {
  std::string error;
  auto p = PartitionerRegistry::Global().Create("metis", EngineOptions(), {},
                                                &error);
  EXPECT_EQ(p, nullptr);
  EXPECT_NE(error.find("metis"), std::string::npos) << error;
  EXPECT_NE(error.find("loom"), std::string::npos) << error;
}

TEST(PartitionerRegistryTest, ProgrammaticBadSimdValueFailsWithActionableError) {
  // The option parser validates "simd", but options built by hand can hold
  // anything — Create must refuse rather than silently keep the previous
  // dispatch level (a harness that thinks it pinned scalar must hear this).
  EngineOptions options;
  options.simd = "avx512";
  std::string error;
  auto p = PartitionerRegistry::Global().Create("hash", options, {}, &error);
  EXPECT_EQ(p, nullptr);
  EXPECT_NE(error.find("avx512"), std::string::npos) << error;
  EXPECT_NE(error.find("simd"), std::string::npos) << error;
}

TEST(PartitionerRegistryTest, LoomWithoutWorkloadFailsWithActionableError) {
  for (const char* backend : {"loom", "loom-sharded"}) {
    std::string error;
    auto p = PartitionerRegistry::Global().Create(backend, EngineOptions(), {},
                                                  &error);
    EXPECT_EQ(p, nullptr) << backend;
    EXPECT_NE(error.find("workload"), std::string::npos) << error;
  }
}

TEST(PartitionerRegistryTest, RegisterRejectsDuplicatesAcceptsNew) {
  PartitionerRegistry registry;  // fresh, no builtins
  auto factory = [](const EngineOptions& o, const BuildContext&,
                    std::string*) -> std::unique_ptr<partition::Partitioner> {
    return std::make_unique<partition::HashPartitioner>(o.BaseConfig());
  };
  EXPECT_TRUE(registry.Register("mine", factory));
  EXPECT_FALSE(registry.Register("mine", factory));
  EXPECT_TRUE(registry.Contains("mine"));
  std::string error;
  auto p = registry.Create("mine", EngineOptions(), {}, &error);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->name(), "hash");
}

TEST(PartitionerRegistryTest,
     RegistryBuiltPartitionersMatchDirectConstructionBitForBit) {
  // The Fig. 1 dataset, streamed BFS through (a) directly-constructed
  // partitioners and (b) registry-built ones with equivalent options: the
  // assignment hashes must be identical.
  datasets::Dataset ds = datasets::MakeFigure1Dataset();
  const stream::EdgeStream es =
      stream::MakeStream(ds.graph, stream::StreamOrder::kBreadthFirst);

  const EngineOptions options =
      test_util::OptionsFor(ds, /*k=*/2, /*window_size=*/6);

  const partition::PartitionerConfig base = options.BaseConfig();
  core::LoomOptions loom_options;
  loom_options.base = base;
  loom_options.window_size = 6;
  core::LoomShardedOptions sharded_options;
  sharded_options.loom = loom_options;

  std::vector<std::unique_ptr<partition::Partitioner>> direct;
  direct.push_back(std::make_unique<partition::HashPartitioner>(base));
  direct.push_back(std::make_unique<partition::LdgPartitioner>(base));
  direct.push_back(std::make_unique<partition::FennelPartitioner>(base));
  direct.push_back(std::make_unique<core::LoomPartitioner>(
      loom_options, ds.workload, ds.registry.size()));
  direct.push_back(std::make_unique<core::LoomShardedPartitioner>(
      sharded_options, ds.workload, ds.registry.size()));

  for (auto& d : direct) {
    auto r = test_util::MakeBackend(d->name(), options, ds);
    ASSERT_NE(r, nullptr);
    for (const stream::StreamEdge& e : es) {
      d->Ingest(e);
      r->Ingest(e);
    }
    d->Finalize();
    r->Finalize();
    EXPECT_EQ(eval::HashAssignment(d->partitioning(), ds.NumVertices()),
              eval::HashAssignment(r->partitioning(), ds.NumVertices()))
        << d->name();
  }
}

// ---------------------------------------------------------- spec parse

TEST(BackendSpecTest, ParsesNameAndOverrides) {
  BackendSpec spec;
  std::string error;
  ASSERT_TRUE(ParseBackendSpec("loom:window_size=4000,alpha=0.5", &spec,
                               &error));
  EXPECT_EQ(spec.name, "loom");
  ASSERT_EQ(spec.overrides.size(), 2u);
  EXPECT_EQ(spec.overrides[0], "window_size=4000");
  EXPECT_EQ(spec.overrides[1], "alpha=0.5");

  ASSERT_TRUE(ParseBackendSpec("hash", &spec, &error));
  EXPECT_EQ(spec.name, "hash");
  EXPECT_TRUE(spec.overrides.empty());

  EXPECT_FALSE(ParseBackendSpec(":k=2", &spec, &error));
  EXPECT_NE(error.find("name"), std::string::npos) << error;
}

TEST(BackendSpecTest, BuildPartitionerAppliesSpecOverrides) {
  datasets::Dataset ds = datasets::MakeFigure1Dataset();
  EngineOptions base;
  base.expected_vertices = ds.NumVertices();
  base.expected_edges = ds.NumEdges();
  std::string error;
  auto p = BuildPartitioner("loom:k=2,window_size=6", base,
                            {&ds.workload, ds.registry.size()}, &error);
  ASSERT_NE(p, nullptr) << error;
  EXPECT_EQ(p->partitioning().k(), 2u);

  EXPECT_EQ(BuildPartitioner("loom:frobnicate=1", base,
                             {&ds.workload, ds.registry.size()}, &error),
            nullptr);
  EXPECT_NE(error.find("frobnicate"), std::string::npos) << error;
}

// --------------------------------------------------------- edge source

TEST(EdgeSourceTest, GraphSourceMatchesMaterializedStream) {
  datasets::Dataset ds =
      datasets::MakeDataset(datasets::DatasetId::kProvGen, 0.02);
  for (auto order : {stream::StreamOrder::kBreadthFirst,
                     stream::StreamOrder::kDepthFirst,
                     stream::StreamOrder::kRandom}) {
    const stream::EdgeStream es = stream::MakeStream(ds.graph, order, 0x10c5);
    auto source = MakeEdgeSource(ds, order, 0x10c5);
    EXPECT_EQ(source->SizeHint(), es.size());

    std::vector<stream::StreamEdge> batch(64);
    size_t pos = 0;
    for (;;) {
      const size_t n = source->NextBatch(batch);
      if (n == 0) break;
      for (size_t i = 0; i < n; ++i, ++pos) {
        ASSERT_LT(pos, es.size());
        EXPECT_EQ(batch[i].id, es[pos].id);
        EXPECT_EQ(batch[i].u, es[pos].u);
        EXPECT_EQ(batch[i].v, es[pos].v);
        EXPECT_EQ(batch[i].label_u, es[pos].label_u);
        EXPECT_EQ(batch[i].label_v, es[pos].label_v);
      }
    }
    EXPECT_EQ(pos, es.size());
    // Exhausted stays exhausted; Reset replays from the top.
    EXPECT_EQ(source->NextBatch(batch), 0u);
    source->Reset();
    ASSERT_GT(source->NextBatch(batch), 0u);
    EXPECT_EQ(batch[0].id, es[0].id);
  }
}

// ------------------------------------------------- drive and observers

TEST(DriveTest, BatchedDriveMatchesPerEdgeIngest) {
  datasets::Dataset ds =
      datasets::MakeDataset(datasets::DatasetId::kProvGen, 0.05);
  const stream::EdgeStream es =
      stream::MakeStream(ds.graph, stream::StreamOrder::kBreadthFirst);

  eval::ExperimentConfig cfg;
  cfg.window_size = 256;
  const EngineOptions options = eval::ToEngineOptions(cfg, ds);

  // Per-edge reference.
  auto reference = test_util::MakeBackend("loom", options, ds);
  for (const stream::StreamEdge& e : es) reference->Ingest(e);
  reference->Finalize();

  // Batched drive with an awkward batch size.
  auto driven = test_util::MakeBackend("loom", options, ds);
  EdgeStreamSource source(es);
  DriveConfig drive_config;
  drive_config.batch_size = 37;
  const DriveResult result = Drive(driven.get(), &source, nullptr,
                                   drive_config);
  EXPECT_EQ(result.edges, es.size());
  EXPECT_EQ(eval::HashAssignment(reference->partitioning(), ds.NumVertices()),
            eval::HashAssignment(driven->partitioning(), ds.NumVertices()));
}

TEST(DriveTest, ObserverSeesAssignmentsEvictionsAndProgress) {
  datasets::Dataset ds =
      datasets::MakeDataset(datasets::DatasetId::kProvGen, 0.05);
  eval::ExperimentConfig cfg;
  cfg.window_size = 64;  // small window forces evictions
  const EngineOptions options = eval::ToEngineOptions(cfg, ds);
  auto p = test_util::MakeBackend("loom", options, ds);

  StatsObserver stats;
  auto source = MakeEdgeSource(ds, stream::StreamOrder::kBreadthFirst);
  Drive(p.get(), source.get(), &stats);

  const StatsObserver::Totals& t = stats.totals();
  // Every streamed vertex got exactly one OnAssign.
  EXPECT_EQ(t.vertices_assigned, p->partitioning().NumAssigned());
  EXPECT_GT(t.evictions, 0u);
  EXPECT_GT(t.cluster_decisions, 0u);
  EXPECT_GE(t.evictions, t.cluster_decisions);
  EXPECT_TRUE(t.last_progress.finalizing);
  EXPECT_EQ(t.last_progress.edges_ingested, source->SizeHint());
  EXPECT_GT(t.last_progress.edges_bypassed, 0u);
  EXPECT_EQ(t.last_progress.window_population, 0u);  // drained by Finalize
  // The drive unhooked the observer afterwards.
  EXPECT_EQ(p->observer(), nullptr);

  // Baselines emit assigns through the same channel.
  auto hash = test_util::MakeBackend("hash", options, ds);
  StatsObserver hash_stats;
  source->Reset();
  Drive(hash.get(), source.get(), &hash_stats);
  EXPECT_EQ(hash_stats.totals().vertices_assigned,
            hash->partitioning().NumAssigned());
  EXPECT_EQ(hash_stats.totals().evictions, 0u);
}

TEST(DriveTest, PreAttachedObserverReceivesProgressToo) {
  // An observer subscribed via SetObserver (not the Drive parameter) must
  // still see the final finalizing=true progress event.
  datasets::Dataset ds =
      datasets::MakeDataset(datasets::DatasetId::kProvGen, 0.02);
  eval::ExperimentConfig cfg;
  cfg.window_size = 64;
  const EngineOptions options = eval::ToEngineOptions(cfg, ds);
  auto p = test_util::MakeBackend("loom", options, ds);

  StatsObserver stats;
  p->SetObserver(&stats);
  auto source = MakeEdgeSource(ds, stream::StreamOrder::kBreadthFirst);
  Drive(p.get(), source.get());  // no drive-local observer
  EXPECT_TRUE(stats.totals().last_progress.finalizing);
  EXPECT_EQ(stats.totals().last_progress.edges_ingested, source->SizeHint());
  EXPECT_EQ(p->observer(), &stats);  // pre-attached subscription survives
}

}  // namespace
}  // namespace engine
}  // namespace loom
