// Graph signatures as factor multisets (Sec. 2.1, 2.3).
//
// Song et al. [29] identify a graph by the *product* of its factors; Loom
// instead "represents signatures as sets of their constituent factors, which
// eliminates a source of collisions, e.g. we can now distinguish between
// graphs with factors {6,2}, {4,3} and {12}". We therefore never materialise
// the (potentially thousands of bits) integer product: a Signature is a
// sorted multiset of uint32 factors with an order-independent hash.

#ifndef LOOM_SIGNATURE_SIGNATURE_H_
#define LOOM_SIGNATURE_SIGNATURE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace loom {
namespace signature {

/// One factor: a value in [1, p] (the paper replaces 0 with p, so factors
/// are never zero).
using Factor = uint32_t;

/// The (at most 3) factors contributed by adding a single edge to a graph:
/// one edge factor plus one new degree factor per endpoint.
using FactorDelta = std::vector<Factor>;

/// A multiset of factors, kept sorted ascending. Two graphs are "signature
/// equal" iff their factor multisets are equal; isomorphic graphs always
/// are (no false negatives), non-isomorphic collisions have the small
/// probability analysed in collision_model.h.
class Signature {
 public:
  Signature() = default;

  /// Takes ownership of `factors` and sorts them.
  explicit Signature(std::vector<Factor> factors);

  /// Number of factors; a graph with |E| edges has exactly 3|E| (the
  /// Handshaking lemma: one per edge + one per unit of total degree 2|E|).
  size_t size() const { return factors_.size(); }
  bool empty() const { return factors_.empty(); }

  const std::vector<Factor>& factors() const { return factors_; }

  /// Inserts one factor, keeping order.
  void Add(Factor f);

  /// Inserts several factors.
  void AddAll(const FactorDelta& delta);

  /// Returns this ∪ delta as a new signature (this is the incremental
  /// signature of a graph grown by one edge).
  Signature Extended(const FactorDelta& delta) const;

  /// Multiset difference other \ this, or nullopt if this is not a
  /// sub-multiset of other. Used by Alg. 2's child test: the delta on a
  /// TPSTry++ edge n -> c is c.signature().DifferenceFrom(n.signature()).
  std::optional<FactorDelta> DifferenceTo(const Signature& other) const;

  /// True if `delta` equals other \ this exactly (i.e. this + delta == other),
  /// without allocating. The hot path of Alg. 2 line 7/15.
  bool ExtendsBy(const FactorDelta& delta, const Signature& other) const;

  /// ExtendsBy for a delta the caller has already sorted ascending — the
  /// TPSTry++ child scan sorts once and probes every motif child with it
  /// (the comparison itself runs on the util::simd kernels).
  bool ExtendsBySorted(const FactorDelta& sorted_delta,
                       const Signature& other) const;

  /// Order-independent (content) hash.
  uint64_t Hash() const;

  friend bool operator==(const Signature& a, const Signature& b) {
    return a.factors_ == b.factors_;
  }

  std::string ToString() const;

 private:
  std::vector<Factor> factors_;  // sorted ascending
};

/// Hash functor for unordered containers keyed by Signature.
struct SignatureHash {
  size_t operator()(const Signature& s) const {
    return static_cast<size_t>(s.Hash());
  }
};

}  // namespace signature
}  // namespace loom

#endif  // LOOM_SIGNATURE_SIGNATURE_H_
