// Immutable labelled undirected graph in CSR form.
//
// This is the "data graph" G of the paper: built once by a dataset generator
// (or loaded from disk), then streamed in some order to the partitioners and
// queried by the executor. CSR adjacency gives cache-friendly neighbour
// scans for both.

#ifndef LOOM_GRAPH_LABELED_GRAPH_H_
#define LOOM_GRAPH_LABELED_GRAPH_H_

#include <cstdint>
#include <span>
#include <vector>

#include "graph/types.h"

namespace loom {
namespace graph {

/// CSR-backed labelled graph. Vertices are dense [0, n); each has exactly one
/// label (the paper's surjective fl: V -> LV). Edges are undirected, stored
/// once in `edges()` and twice in the adjacency (both directions).
class LabeledGraph {
 public:
  /// Incremental builder. Duplicate edges and self-loops are dropped at
  /// Build() time so generators can be sloppy.
  class Builder {
   public:
    Builder() = default;

    /// Adds a vertex with the given label; returns its dense id.
    VertexId AddVertex(LabelId label);

    /// Adds an undirected edge. Both endpoints must already exist.
    void AddEdge(VertexId u, VertexId v);

    /// Number of vertices added so far.
    size_t NumVertices() const { return labels_.size(); }

    /// Finalises into an immutable graph. The builder is left empty.
    LabeledGraph Build();

   private:
    std::vector<LabelId> labels_;
    std::vector<Edge> edges_;
  };

  LabeledGraph() = default;

  size_t NumVertices() const { return labels_.size(); }
  size_t NumEdges() const { return edges_.size(); }

  /// Label of vertex v.
  LabelId label(VertexId v) const { return labels_[v]; }

  /// All vertex labels, indexed by VertexId.
  const std::vector<LabelId>& labels() const { return labels_; }

  /// Neighbours of v (each undirected edge appears in both endpoints' lists).
  std::span<const VertexId> Neighbors(VertexId v) const {
    return {adj_.data() + offsets_[v], offsets_[v + 1] - offsets_[v]};
  }

  /// Edge ids incident to v, aligned with Neighbors(v).
  std::span<const EdgeId> IncidentEdges(VertexId v) const {
    return {adj_eids_.data() + offsets_[v], offsets_[v + 1] - offsets_[v]};
  }

  size_t Degree(VertexId v) const { return offsets_[v + 1] - offsets_[v]; }

  /// Unique undirected edges; EdgeId indexes into this vector.
  const std::vector<Edge>& edges() const { return edges_; }
  const Edge& edge(EdgeId e) const { return edges_[e]; }

  /// True if (u,v) is an edge. O(min degree) scan.
  bool HasEdge(VertexId u, VertexId v) const;

  /// Count of vertices per label id (size == max label id + 1).
  std::vector<size_t> LabelHistogram() const;

 private:
  friend class Builder;

  std::vector<LabelId> labels_;
  std::vector<Edge> edges_;         // unique undirected edges
  std::vector<size_t> offsets_;     // CSR offsets, size n+1
  std::vector<VertexId> adj_;       // CSR neighbour array, size 2m
  std::vector<EdgeId> adj_eids_;    // edge id per adjacency slot
};

}  // namespace graph
}  // namespace loom

#endif  // LOOM_GRAPH_LABELED_GRAPH_H_
