#include "graph/graph_io.h"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/string_util.h"

namespace loom {
namespace graph {

void WriteGraph(const LabeledGraph& g, const LabelRegistry& registry,
                std::ostream& os) {
  os << "# loom graph: " << g.NumVertices() << " vertices, " << g.NumEdges()
     << " edges, " << registry.size() << " labels\n";
  for (const std::string& name : registry.names()) os << "L " << name << "\n";
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    os << "V " << v << " " << g.label(v) << "\n";
  }
  for (const Edge& e : g.edges()) os << "E " << e.u << " " << e.v << "\n";
}

LabeledGraph ReadGraph(std::istream& is, LabelRegistry* registry) {
  LabeledGraph::Builder builder;
  std::string line;
  size_t line_no = 0;
  std::vector<std::pair<VertexId, VertexId>> edges;
  std::vector<std::pair<VertexId, LabelId>> vertices;
  VertexId max_vertex = 0;
  bool any_vertex = false;

  while (std::getline(is, line)) {
    ++line_no;
    line = util::Trim(line);
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    char kind;
    ls >> kind;
    auto fail = [&](const std::string& why) {
      throw std::runtime_error("graph parse error at line " +
                               std::to_string(line_no) + ": " + why);
    };
    if (kind == 'L') {
      std::string name;
      ls >> name;
      if (name.empty()) fail("label name missing");
      registry->Intern(name);
    } else if (kind == 'V') {
      uint64_t v, l;
      if (!(ls >> v >> l)) fail("expected 'V <id> <label-id>'");
      if (l >= registry->size()) fail("label id out of range");
      vertices.emplace_back(static_cast<VertexId>(v), static_cast<LabelId>(l));
      max_vertex = std::max(max_vertex, static_cast<VertexId>(v));
      any_vertex = true;
    } else if (kind == 'E') {
      uint64_t u, v;
      if (!(ls >> u >> v)) fail("expected 'E <u> <v>'");
      edges.emplace_back(static_cast<VertexId>(u), static_cast<VertexId>(v));
    } else {
      fail(std::string("unknown record kind '") + kind + "'");
    }
  }

  const size_t n = any_vertex ? static_cast<size_t>(max_vertex) + 1 : 0;
  std::vector<LabelId> labels(n, kInvalidLabel);
  for (auto [v, l] : vertices) labels[v] = l;
  for (size_t v = 0; v < n; ++v) {
    if (labels[v] == kInvalidLabel) {
      throw std::runtime_error("graph parse error: vertex " + std::to_string(v) +
                               " missing (ids must be dense)");
    }
    builder.AddVertex(labels[v]);
  }
  for (auto [u, v] : edges) {
    if (u >= n || v >= n) {
      throw std::runtime_error("graph parse error: edge endpoint out of range");
    }
    builder.AddEdge(u, v);
  }
  return builder.Build();
}

void WriteGraphFile(const LabeledGraph& g, const LabelRegistry& registry,
                    const std::string& path) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("cannot open for write: " + path);
  WriteGraph(g, registry, os);
}

LabeledGraph ReadGraphFile(const std::string& path, LabelRegistry* registry) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("cannot open for read: " + path);
  return ReadGraph(is, registry);
}

}  // namespace graph
}  // namespace loom
