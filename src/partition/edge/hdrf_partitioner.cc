#include "partition/edge/hdrf_partitioner.h"

#include <algorithm>
#include <stdexcept>

namespace loom {
namespace partition {
namespace edge {

HdrfPartitioner::HdrfPartitioner(const PartitionerConfig& config,
                                 double lambda, double epsilon)
    : EdgePartitioner(config), lambda_(lambda), epsilon_(epsilon) {
  if (lambda_ < 0.0) {
    throw std::invalid_argument("hdrf: lambda must be >= 0");
  }
  if (epsilon_ <= 0.0) {
    throw std::invalid_argument("hdrf: epsilon must be > 0");
  }
}

graph::PartitionId HdrfPartitioner::PlaceEdge(const stream::StreamEdge& e) {
  // Partial degrees already include this edge (see EdgePartitioner::Ingest).
  const double theta_u = PartialDegree(e.u);
  const double theta_v = PartialDegree(e.v);
  const double delta_u = theta_u / (theta_u + theta_v);
  const double delta_v = 1.0 - delta_u;

  const auto& load = loads();
  const uint64_t max_load = *std::max_element(load.begin(), load.end());
  const uint64_t min_load = *std::min_element(load.begin(), load.end());
  const double spread = epsilon_ + static_cast<double>(max_load - min_load);

  graph::PartitionId best = 0;
  double best_score = -1.0;  // every real score is >= 0
  for (graph::PartitionId p = 0; p < k(); ++p) {
    double rep = 0.0;
    if (IsReplicaOf(e.u, p)) rep += 1.0 + (1.0 - delta_u);
    if (e.v != e.u && IsReplicaOf(e.v, p)) rep += 1.0 + (1.0 - delta_v);
    const double bal = static_cast<double>(max_load - load[p]) / spread;
    const double score = rep + lambda_ * bal;
    // Pinned tie-break: strictly-greater wins; equal score -> smaller load
    // wins; equal load -> keep the lower id.
    if (score > best_score ||
        (score == best_score && load[p] < load[best])) {
      best = p;
      best_score = score;
    }
  }
  return best;
}

void HdrfPartitioner::SaveExtra(io::CheckpointWriter* w) const {
  w->F64(lambda_);
  w->F64(epsilon_);
}

bool HdrfPartitioner::RestoreExtra(io::CheckpointReader* r,
                                   std::string* error) {
  // Bit-exact F64 comparison: the session's options fingerprint already
  // catches spec drift, but a checkpoint can also be restored through the
  // partitioner API directly — defence in depth.
  const double saved_lambda = r->F64();
  const double saved_epsilon = r->F64();
  if (saved_lambda != lambda_ || saved_epsilon != epsilon_) {
    *error = "hdrf parameter mismatch: checkpoint has lambda=" +
             std::to_string(saved_lambda) + " epsilon=" +
             std::to_string(saved_epsilon) + ", this instance has lambda=" +
             std::to_string(lambda_) + " epsilon=" + std::to_string(epsilon_);
    return false;
  }
  return true;
}

}  // namespace edge
}  // namespace partition
}  // namespace loom
