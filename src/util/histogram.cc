#include "util/histogram.h"

#include <cmath>
#include <cstdio>

namespace loom {
namespace util {

namespace {

/// Inclusive value range of bucket b: b == 0 holds only the value 0;
/// bucket b >= 1 holds [2^(b-1), 2^b - 1].
uint64_t BucketLo(size_t b) { return b == 0 ? 0 : uint64_t{1} << (b - 1); }

uint64_t BucketHi(size_t b) {
  if (b == 0) return 0;
  if (b >= 64) return ~uint64_t{0};
  return (uint64_t{1} << b) - 1;
}

}  // namespace

uint64_t HistogramSnapshot::Quantile(double q) const {
  const uint64_t n = Count();
  if (n == 0) return 0;
  if (q < 0.0) q = 0.0;
  // p100 is the tracked maximum, exactly — never a bucket midpoint (the
  // cast-to-integer rank used to floor q·n, so p100 could land one bucket
  // short AND p90 of small samples rounded down a whole rank).
  if (q >= 1.0) return max;
  // Nearest-rank with ceil (1-based): the smallest bucket whose cumulative
  // count reaches rank ⌈q·n⌉.
  uint64_t rank = static_cast<uint64_t>(std::ceil(q * static_cast<double>(n)));
  if (rank == 0) rank = 1;
  if (rank > n) rank = n;
  uint64_t seen = 0;
  for (size_t b = 0; b < kBuckets; ++b) {
    seen += buckets[b];
    if (seen >= rank) {
      const uint64_t mid = BucketLo(b) + (BucketHi(b) - BucketLo(b)) / 2;
      // The bucket midpoint can overshoot the true maximum (power-of-two
      // buckets are coarse); the real max is always a tighter upper bound.
      return mid > max ? max : mid;
    }
  }
  return max;
}

std::string HistogramSnapshot::FormatNs(uint64_t ns) {
  char buf[32];
  if (ns < 1000) {
    std::snprintf(buf, sizeof(buf), "%lluns", (unsigned long long)ns);
  } else if (ns < 1000 * 1000) {
    std::snprintf(buf, sizeof(buf), "%.1fus", static_cast<double>(ns) / 1e3);
  } else if (ns < 1000ull * 1000 * 1000) {
    std::snprintf(buf, sizeof(buf), "%.1fms", static_cast<double>(ns) / 1e6);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2fs", static_cast<double>(ns) / 1e9);
  }
  return buf;
}

std::string HistogramSnapshot::Summary() const {
  const uint64_t n = Count();
  if (n == 0) return "n=0";
  return "n=" + std::to_string(n) + " p50=" + FormatNs(Quantile(0.50)) +
         " p90=" + FormatNs(Quantile(0.90)) + " p99=" + FormatNs(Quantile(0.99)) +
         " max=" + FormatNs(max);
}

}  // namespace util
}  // namespace loom
