// The EdgeSource contract, pinned over every implementation: in-memory
// graph walks (GraphEdgeSource), materialised-stream bridges
// (EdgeStreamSource), file replay in both formats (io::FileEdgeSource)
// and the lazy generator path (engine::GeneratorEdgeSource).
//
// Contract legs (the engine's assumptions in Drive/Session):
//   * Drain -> Reset -> drain replays the identical element sequence.
//   * An exhausted source stays exhausted (NextBatch keeps returning 0)
//     until Reset.
//   * SizeHint is exact when nonzero (all sources here know their size).
//   * The element sequence is invariant under batch-boundary choice.
// Plus the construction-time validation satellites: malformed edge-order
// permutations are real errors in Release builds, and lazy generator
// sources reject orders that need adjacency.

#include <filesystem>
#include <functional>
#include <memory>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "datasets/dataset_registry.h"
#include "engine/edge_source.h"
#include "engine/generator_source.h"
#include "io/edge_stream_io.h"
#include "stream/stream_order.h"

namespace loom {
namespace {

constexpr double kScale = 0.03;

struct Env {
  datasets::Dataset ds;
  stream::EdgeStream es;                 // materialised BFS stream
  std::string binary_path, text_path;    // the same stream, on disk

  Env()
      : ds(datasets::MakeDataset(datasets::DatasetId::kProvGen, kScale)),
        es(stream::MakeStream(ds.graph, stream::StreamOrder::kBreadthFirst)) {
    namespace fs = std::filesystem;
    const fs::path dir = fs::path(testing::TempDir()) / "loom_source_contract";
    fs::create_directories(dir);
    binary_path = (dir / "stream.les").string();
    text_path = (dir / "stream.lest").string();
    for (auto [path, format] :
         {std::pair{&binary_path, io::StreamFormat::kBinary},
          std::pair{&text_path, io::StreamFormat::kText}}) {
      auto src = engine::MakeEdgeSource(ds, stream::StreamOrder::kBreadthFirst);
      io::WriteEdgeStream(*path, ds.registry, ds.NumVertices(), src.get(),
                          format);
    }
  }
};

Env& GetEnv() {
  static Env* env = new Env();
  return *env;
}

struct SourceCase {
  std::string name;
  std::function<std::unique_ptr<engine::EdgeSource>()> make;
};

std::vector<SourceCase> AllSources() {
  return {
      {"graph_bfs",
       [] {
         return engine::MakeEdgeSource(GetEnv().ds,
                                       stream::StreamOrder::kBreadthFirst);
       }},
      {"graph_random",
       [] {
         return engine::MakeEdgeSource(GetEnv().ds,
                                       stream::StreamOrder::kRandom, 42);
       }},
      {"graph_canonical",
       [] {
         return engine::MakeEdgeSource(GetEnv().ds,
                                       stream::StreamOrder::kCanonical);
       }},
      {"edge_stream",
       [] { return std::make_unique<engine::EdgeStreamSource>(GetEnv().es); }},
      {"file_binary",
       [] {
         return std::make_unique<io::FileEdgeSource>(GetEnv().binary_path);
       }},
      {"file_text",
       [] { return std::make_unique<io::FileEdgeSource>(GetEnv().text_path); }},
      {"generator_canonical",
       [] {
         return std::make_unique<engine::GeneratorEdgeSource>(
             datasets::DatasetId::kProvGen, kScale,
             stream::StreamOrder::kCanonical);
       }},
      {"generator_random",
       [] {
         return std::make_unique<engine::GeneratorEdgeSource>(
             datasets::DatasetId::kProvGen, kScale,
             stream::StreamOrder::kRandom, 42);
       }},
  };
}

std::vector<stream::StreamEdge> Drain(engine::EdgeSource& source,
                                      size_t batch_size) {
  std::vector<stream::StreamEdge> out;
  std::vector<stream::StreamEdge> batch(batch_size);
  for (;;) {
    const size_t n = source.NextBatch(batch);
    if (n == 0) break;
    out.insert(out.end(), batch.begin(), batch.begin() + n);
  }
  return out;
}

bool SameElement(const stream::StreamEdge& a, const stream::StreamEdge& b) {
  return a.id == b.id && a.u == b.u && a.v == b.v && a.label_u == b.label_u &&
         a.label_v == b.label_v;
}

void ExpectSameSequence(const std::vector<stream::StreamEdge>& a,
                        const std::vector<stream::StreamEdge>& b,
                        const std::string& label) {
  ASSERT_EQ(a.size(), b.size()) << label;
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_TRUE(SameElement(a[i], b[i])) << label << " diverges at " << i;
  }
}

class EdgeSourceContractTest : public testing::TestWithParam<SourceCase> {};

TEST_P(EdgeSourceContractTest, ResetReplaysIdenticalSequence) {
  auto source = GetParam().make();
  const std::vector<stream::StreamEdge> first = Drain(*source, 64);
  ASSERT_GT(first.size(), 0u);
  source->Reset();
  const std::vector<stream::StreamEdge> second = Drain(*source, 64);
  ExpectSameSequence(first, second, GetParam().name);
}

TEST_P(EdgeSourceContractTest, ExhaustionStaysExhaustedUntilReset) {
  auto source = GetParam().make();
  Drain(*source, 64);
  std::vector<stream::StreamEdge> batch(16);
  for (int attempt = 0; attempt < 3; ++attempt) {
    EXPECT_EQ(source->NextBatch(batch), 0u) << GetParam().name;
  }
  source->Reset();
  EXPECT_GT(source->NextBatch(batch), 0u) << GetParam().name;
}

TEST_P(EdgeSourceContractTest, SizeHintIsExact) {
  auto source = GetParam().make();
  const size_t hint = source->SizeHint();
  const std::vector<stream::StreamEdge> all = Drain(*source, 64);
  EXPECT_EQ(hint, all.size()) << GetParam().name;
  // Stream ids are dense positions.
  for (size_t i = 0; i < all.size(); ++i) {
    ASSERT_EQ(all[i].id, static_cast<graph::EdgeId>(i)) << GetParam().name;
  }
}

TEST_P(EdgeSourceContractTest, SequenceInvariantUnderBatchBoundaries) {
  auto source = GetParam().make();
  const std::vector<stream::StreamEdge> reference = Drain(*source, 64);
  for (size_t batch_size : {1u, 3u, 97u, 4096u}) {
    source->Reset();
    ExpectSameSequence(reference, Drain(*source, batch_size),
                       GetParam().name + " @batch " +
                           std::to_string(batch_size));
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllSources, EdgeSourceContractTest, testing::ValuesIn(AllSources()),
    [](const testing::TestParamInfo<SourceCase>& info) {
      return info.param.name;
    });

// ---------------------------------------------- SkipTo (resume cursor)

// The checkpoint-resume contract: SkipTo(b) followed by a drain must equal
// the fresh replay's suffix from b — at EVERY batch boundary, both formats.
// A resumed run replays nothing and re-reads nothing, so any off-by-one
// here would silently shift the whole tail of the stream.
TEST(EdgeSourceSkipToTest, ResumeAtEveryBatchBoundaryEqualsFreshReplay) {
  Env& env = GetEnv();
  constexpr size_t kBatch = 64;
  for (const std::string& path : {env.binary_path, env.text_path}) {
    io::FileEdgeSource source(path);
    const std::vector<stream::StreamEdge> reference = Drain(source, kBatch);
    ASSERT_GT(reference.size(), kBatch);  // several boundaries to resume at
    for (size_t boundary = 0; boundary <= reference.size();
         boundary += kBatch) {
      source.SkipTo(boundary);
      const std::vector<stream::StreamEdge> tail = Drain(source, kBatch);
      const std::vector<stream::StreamEdge> expected(
          reference.begin() + static_cast<ptrdiff_t>(boundary),
          reference.end());
      ExpectSameSequence(expected, tail,
                         path + " @skip " + std::to_string(boundary));
    }
    // The exact end is a legal cursor (resume after the last pre-Finish
    // checkpoint): already exhausted, nothing to read.
    source.SkipTo(reference.size());
    std::vector<stream::StreamEdge> batch(8);
    EXPECT_EQ(source.NextBatch(batch), 0u) << path;
  }
}

TEST(EdgeSourceSkipToTest, SkipPastTheDeclaredCountThrows) {
  Env& env = GetEnv();
  for (const std::string& path : {env.binary_path, env.text_path}) {
    io::FileEdgeSource source(path);
    try {
      source.SkipTo(source.info().edge_count + 1);
      FAIL() << path << ": skip past the end should throw";
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find("cannot skip"), std::string::npos)
          << e.what();
    }
  }
}

TEST(EdgeSourceSkipToTest, ResetAfterSkipRearmsTheFullStreamChecksum) {
  Env& env = GetEnv();
  // Binary streams verify the payload checksum only over full reads; a
  // mid-stream skip waives it (the prefix was never read), but a Reset must
  // restore the waiver — and a full drain must still verify clean.
  io::FileEdgeSource source(env.binary_path);
  source.SkipTo(env.es.size() / 2);
  Drain(source, 64);  // partial read: checksum deliberately not checked
  source.Reset();
  const std::vector<stream::StreamEdge> full = Drain(source, 64);
  EXPECT_EQ(full.size(), env.es.size());  // full read: checksum verified
}

// ------------------------------------------- cross-source equivalences

TEST(EdgeSourceEquivalenceTest, FileSourcesReplayTheWrittenStream) {
  Env& env = GetEnv();
  auto reference =
      engine::MakeEdgeSource(env.ds, stream::StreamOrder::kBreadthFirst);
  const std::vector<stream::StreamEdge> expected = Drain(*reference, 64);
  for (const std::string& path : {env.binary_path, env.text_path}) {
    io::FileEdgeSource source(path);
    ExpectSameSequence(expected, Drain(source, 64), path);
  }
}

TEST(EdgeSourceEquivalenceTest, GeneratorSourceMatchesMaterialisedDataset) {
  // The lazy generator path must emit exactly what streaming the built
  // (normalised, isolated-vertex-compacted) graph would — both orders.
  Env& env = GetEnv();
  for (auto order :
       {stream::StreamOrder::kCanonical, stream::StreamOrder::kRandom}) {
    auto in_memory = engine::MakeEdgeSource(env.ds, order, /*seed=*/0x10c5);
    engine::GeneratorEdgeSource lazy(datasets::DatasetId::kProvGen, kScale,
                                     order, /*seed=*/0x10c5);
    EXPECT_EQ(lazy.NumVertices(), env.ds.NumVertices());
    EXPECT_EQ(lazy.NumEdges(), env.ds.NumEdges());
    ExpectSameSequence(Drain(*in_memory, 64), Drain(lazy, 64),
                       "generator/" + stream::ToString(order));
  }
  // Same label table, same ids.
  engine::GeneratorEdgeSource lazy(datasets::DatasetId::kProvGen, kScale);
  ASSERT_EQ(lazy.registry().size(), env.ds.registry.size());
  for (graph::LabelId l = 0; l < env.ds.registry.size(); ++l) {
    EXPECT_EQ(lazy.registry().Name(l), env.ds.registry.Name(l));
  }
}

TEST(EdgeSourceValidationTest, GeneratorSourceRejectsAdjacencyOrders) {
  for (auto order : {stream::StreamOrder::kBreadthFirst,
                     stream::StreamOrder::kDepthFirst}) {
    try {
      engine::GeneratorEdgeSource source(datasets::DatasetId::kProvGen, 0.01,
                                         order);
      FAIL() << "order " << stream::ToString(order) << " should throw";
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find(stream::ToString(order)),
                std::string::npos)
          << e.what();
    }
  }
}

// The satellite fix: a malformed permutation must be an actionable error
// in Release builds too (it used to be a debug-only assert).
TEST(EdgeSourceValidationTest, MalformedPermutationIsARealError) {
  datasets::Dataset ds = datasets::MakeFigure1Dataset();
  const size_t m = ds.NumEdges();

  // Wrong length.
  try {
    engine::GraphEdgeSource source(ds.graph, std::vector<graph::EdgeId>(m - 1));
    FAIL() << "short permutation should throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("permutation"), std::string::npos);
  }

  // Out-of-range id.
  std::vector<graph::EdgeId> out_of_range(m);
  std::iota(out_of_range.begin(), out_of_range.end(), 0);
  out_of_range[2] = static_cast<graph::EdgeId>(m + 7);
  try {
    engine::GraphEdgeSource source(ds.graph, out_of_range);
    FAIL() << "out-of-range id should throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("out of range"), std::string::npos);
  }

  // Duplicate id.
  std::vector<graph::EdgeId> duplicated(m);
  std::iota(duplicated.begin(), duplicated.end(), 0);
  duplicated[1] = duplicated[0];
  try {
    engine::GraphEdgeSource source(ds.graph, duplicated);
    FAIL() << "duplicate id should throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("repeats"), std::string::npos);
  }

  // A valid permutation still constructs.
  std::vector<graph::EdgeId> ok(m);
  std::iota(ok.begin(), ok.end(), 0);
  EXPECT_NO_THROW(engine::GraphEdgeSource(ds.graph, ok));
}

}  // namespace
}  // namespace loom
