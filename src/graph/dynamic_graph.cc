#include "graph/dynamic_graph.h"

#include <cassert>

namespace loom {
namespace graph {

void DynamicGraph::Reserve(size_t n) {
  if (labels_.size() < n) {
    labels_.resize(n, kInvalidLabel);
    adj_.resize(n);
  }
}

void DynamicGraph::TouchVertex(VertexId v, LabelId label) {
  assert(label != kInvalidLabel);
  if (v >= labels_.size()) {
    labels_.resize(v + 1, kInvalidLabel);
    adj_.resize(v + 1);
  }
  if (labels_[v] == kInvalidLabel) {
    labels_[v] = label;
    ++num_vertices_;
  } else {
    assert(labels_[v] == label && "vertex relabelled with a different label");
  }
}

void DynamicGraph::AddEdge(VertexId u, VertexId v) {
  assert(Known(u) && Known(v));
  // First insert jumps straight to a capacity that covers typical degrees;
  // growing 1->2->4->8 costs several tiny reallocations per vertex, paid at
  // stream rate across every partitioner.
  if (adj_[u].capacity() == 0) adj_[u].reserve(8);
  if (adj_[v].capacity() == 0) adj_[v].reserve(8);
  adj_[u].push_back(v);
  adj_[v].push_back(u);
  ++num_edges_;
}

}  // namespace graph
}  // namespace loom
