// Open-addressing uint64 -> T map (no erase), companion to FlatSet64.
//
// Used for memo tables probed millions of times per second on the matcher's
// hot path, where std::unordered_map's node allocation and pointer chase per
// find dominate. Keys are stored inline with linear probing; the whole table
// supports only Insert/Find/Clear, which is exactly what a memo needs.

#ifndef LOOM_UTIL_FLAT_MAP64_H_
#define LOOM_UTIL_FLAT_MAP64_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/bits.h"

namespace loom {
namespace util {

template <typename T>
class FlatMap64 {
 public:
  FlatMap64() { Rehash(kMinSlots); }

  size_t size() const { return size_; }

  /// Pointer to the value for `key`, or nullptr if absent.
  const T* Find(uint64_t key) const {
    size_t i = Mix(key) & mask_;
    while (full_[i]) {
      if (keys_[i] == key) return &values_[i];
      i = (i + 1) & mask_;
    }
    return nullptr;
  }

  /// Inserts (or overwrites) key -> value.
  void Insert(uint64_t key, T value) {
    if ((size_ + 1) * 10 >= keys_.size() * 7) Rehash(keys_.size() * 2);
    size_t i = Mix(key) & mask_;
    while (full_[i]) {
      if (keys_[i] == key) {
        values_[i] = value;
        return;
      }
      i = (i + 1) & mask_;
    }
    keys_[i] = key;
    values_[i] = value;
    full_[i] = 1;
    ++size_;
  }

  void Clear() {
    std::fill(full_.begin(), full_.end(), uint8_t{0});
    size_ = 0;
  }

 private:
  static constexpr size_t kMinSlots = 64;

  static uint64_t Mix(uint64_t key) { return Mix64(key); }

  void Rehash(size_t new_slots) {
    std::vector<uint64_t> old_keys = std::move(keys_);
    std::vector<T> old_values = std::move(values_);
    std::vector<uint8_t> old_full = std::move(full_);
    keys_.assign(new_slots, 0);
    values_.assign(new_slots, T{});
    full_.assign(new_slots, 0);
    mask_ = new_slots - 1;
    for (size_t j = 0; j < old_keys.size(); ++j) {
      if (!old_full[j]) continue;
      size_t i = Mix(old_keys[j]) & mask_;
      while (full_[i]) i = (i + 1) & mask_;
      keys_[i] = old_keys[j];
      values_[i] = old_values[j];
      full_[i] = 1;
    }
  }

  std::vector<uint64_t> keys_;
  std::vector<T> values_;
  std::vector<uint8_t> full_;
  size_t mask_ = 0;
  size_t size_ = 0;
};

}  // namespace util
}  // namespace loom

#endif  // LOOM_UTIL_FLAT_MAP64_H_
