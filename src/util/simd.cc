#include "util/simd.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#if defined(__x86_64__)
#define LOOM_SIMD_X86 1
#include <immintrin.h>
#else
#define LOOM_SIMD_X86 0
#endif

namespace loom {
namespace util {
namespace simd {

// ===========================================================================
// Scalar reference implementations. Every other level must be bit-identical
// to these on every legal input (the differential suites enforce it).
// ===========================================================================

namespace {

using detail::kTallyCompareMaxK;

size_t CountLessEqScalar(const uint32_t* a, size_t n, uint32_t v) {
  size_t count = 0;
  for (size_t i = 0; i < n; ++i) count += (a[i] <= v) ? 1 : 0;
  return count;
}

bool RangeEqualScalar(const uint32_t* a, const uint32_t* b, size_t n) {
  return n == 0 || std::memcmp(a, b, n * sizeof(uint32_t)) == 0;
}

/// The original Signature::ExtendsBy merge walk — deliberately a different
/// algorithm from the SIMD levels' insertion-point formulation, so the
/// differential tests compare two independent derivations of "grown equals
/// base ∪ delta".
bool MultisetExtendsScalar(const uint32_t* base, size_t n,
                           const uint32_t* delta, size_t d,
                           const uint32_t* grown, size_t m) {
  if (m != n + d) return false;
  size_t i = 0, j = 0;
  for (size_t g = 0; g < m; ++g) {
    const uint32_t f = grown[g];
    if (i < n && base[i] == f) {
      ++i;
    } else if (j < d && delta[j] == f) {
      ++j;
    } else {
      return false;
    }
  }
  return i == n && j == d;
}

size_t SortedDifferenceScalar(const uint32_t* needles, size_t m,
                              const uint32_t* haystack, size_t n,
                              uint32_t* out) {
  size_t written = 0;
  for (size_t i = 0; i < m; ++i) {
    if (!std::binary_search(haystack, haystack + n, needles[i])) {
      out[written++] = needles[i];
    }
  }
  return written;
}

/// Residue in [1, p]: the paper replaces 0 with p so factors are never zero.
inline uint32_t NonZeroModI64(int64_t x, uint32_t p) {
  int64_t r = x % static_cast<int64_t>(p);
  if (r < 0) r += p;
  return r == 0 ? p : static_cast<uint32_t>(r);
}

void ResidueDiffScalar(const uint16_t* a, const uint16_t* b, size_t n,
                       uint32_t p, uint16_t* out) {
  for (size_t i = 0; i < n; ++i) {
    // a, b < p, so a - b is already the residue up to one wrap.
    const uint32_t t = a[i] + p - b[i];  // in (0, 2p)
    uint32_t r = t >= p ? t - p : t;
    out[i] = static_cast<uint16_t>(r == 0 ? p : r);
  }
}

void ResidueScalar(const uint16_t* v, size_t n, uint32_t p, uint16_t* out) {
  for (size_t i = 0; i < n; ++i) {
    const uint32_t r = v[i] % p;
    out[i] = static_cast<uint16_t>(r == 0 ? p : r);
  }
}

void EdgeAdditionFactorsScalar(uint32_t va, uint32_t vb, uint32_t vu,
                               uint32_t deg_u, uint32_t vv, uint32_t deg_v,
                               uint32_t p, uint32_t out[3]) {
  out[0] =
      NonZeroModI64(static_cast<int64_t>(va) - static_cast<int64_t>(vb), p);
  out[1] = NonZeroModI64(static_cast<int64_t>(vu) + deg_u, p);
  out[2] = NonZeroModI64(static_cast<int64_t>(vv) + deg_v, p);
}


void GatherScalar(const uint32_t* table, size_t table_n, const uint32_t* idx,
                  size_t n, uint32_t oob, uint32_t* out) {
  for (size_t i = 0; i < n; ++i) {
    out[i] = idx[i] < table_n ? table[idx[i]] : oob;
  }
}

void TallyScalar(const uint32_t* vals, size_t n, uint32_t k,
                 uint32_t* counts) {
  for (size_t i = 0; i < n; ++i) {
    if (vals[i] < k) ++counts[vals[i]];
  }
}

void TallyGatherScalar(const uint32_t* table, size_t table_n,
                       const uint32_t* idx, size_t n, uint32_t k,
                       uint32_t* counts) {
  for (size_t i = 0; i < n; ++i) {
    if (idx[i] >= table_n) continue;
    const uint32_t v = table[idx[i]];
    if (v < k) ++counts[v];
  }
}

void AddScalar(uint32_t* dst, const uint32_t* src, size_t n) {
  for (size_t i = 0; i < n; ++i) dst[i] += src[i];
}

void AccumulateScaledScalar(double* dst, const uint32_t* src, double weight,
                            size_t n) {
  for (size_t i = 0; i < n; ++i) {
    dst[i] += weight * static_cast<double>(src[i]);
  }
}

void BidTotalsScalar(const double* overlap, size_t rows, uint32_t k,
                     const double* residual, const double* support,
                     const uint32_t* count, double* totals) {
  (void)rows;
  for (uint32_t si = 0; si < k; ++si) {
    double total = 0.0;
    const size_t c = count[si];
    assert(c <= rows);
    for (size_t i = 0; i < c; ++i) {
      const double ov = overlap[i * k + si];
      if (ov <= 0.0) continue;  // contributes exactly +0.0
      total += (ov * residual[si]) * support[i];
    }
    totals[si] = total;
  }
}

}  // namespace

// ===========================================================================
// x86 SIMD implementations.
// ===========================================================================

#if LOOM_SIMD_X86

namespace {

// ----------------------------------------------------------------- SSE2

size_t CountLessEqSSE2(const uint32_t* a, size_t n, uint32_t v) {
  const __m128i bias = _mm_set1_epi32(static_cast<int>(0x80000000u));
  const __m128i vq = _mm_xor_si128(_mm_set1_epi32(static_cast<int>(v)), bias);
  size_t i = 0;
  size_t gt = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128i va = _mm_xor_si128(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i)), bias);
    const int mask = _mm_movemask_ps(_mm_castsi128_ps(_mm_cmpgt_epi32(va, vq)));
    gt += static_cast<size_t>(__builtin_popcount(static_cast<unsigned>(mask)));
  }
  size_t count = i - gt;
  for (; i < n; ++i) count += (a[i] <= v) ? 1 : 0;
  return count;
}

bool RangeEqualSSE2(const uint32_t* a, const uint32_t* b, size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128i va = _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i));
    const __m128i vb = _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + i));
    if (_mm_movemask_epi8(_mm_cmpeq_epi32(va, vb)) != 0xFFFF) return false;
  }
  for (; i < n; ++i) {
    if (a[i] != b[i]) return false;
  }
  return true;
}

/// r >= p via saturating subtraction (SSE2 has no unsigned u16 compare):
/// subs_epu16(r, p - 1) is nonzero exactly when r >= p.
inline __m128i LtMaskU16SSE2(__m128i r, __m128i pm1, __m128i zero) {
  return _mm_cmpeq_epi16(_mm_subs_epu16(r, pm1), zero);  // r < p
}

void ResidueDiffSSE2(const uint16_t* a, const uint16_t* b, size_t n,
                     uint32_t p, uint16_t* out) {
  const __m128i vp = _mm_set1_epi16(static_cast<short>(p));
  const __m128i pm1 = _mm_set1_epi16(static_cast<short>(p - 1));
  const __m128i zero = _mm_setzero_si128();
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m128i va = _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i));
    const __m128i vb = _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + i));
    // t = a + (p - b) in (0, 2p); reduce by one conditional subtract.
    const __m128i t = _mm_add_epi16(va, _mm_sub_epi16(vp, vb));
    const __m128i lt = LtMaskU16SSE2(t, pm1, zero);
    __m128i r = _mm_sub_epi16(t, _mm_andnot_si128(lt, vp));
    // 0 -> p.
    const __m128i z = _mm_cmpeq_epi16(r, zero);
    r = _mm_or_si128(r, _mm_and_si128(z, vp));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i), r);
  }
  if (i < n) ResidueDiffScalar(a + i, b + i, n - i, p, out + i);
}

void ResidueSSE2(const uint16_t* v, size_t n, uint32_t p, uint16_t* out) {
  // q = mulhi(v, floor(2^16 / p)) underestimates floor(v / p) by at most 2;
  // two conditional subtracts land the exact residue.
  const uint16_t magic = static_cast<uint16_t>(65536u / p);
  const __m128i vm = _mm_set1_epi16(static_cast<short>(magic));
  const __m128i vp = _mm_set1_epi16(static_cast<short>(p));
  const __m128i pm1 = _mm_set1_epi16(static_cast<short>(p - 1));
  const __m128i zero = _mm_setzero_si128();
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m128i x = _mm_loadu_si128(reinterpret_cast<const __m128i*>(v + i));
    const __m128i q = _mm_mulhi_epu16(x, vm);
    __m128i r = _mm_sub_epi16(x, _mm_mullo_epi16(q, vp));
    for (int round = 0; round < 2; ++round) {
      const __m128i lt = LtMaskU16SSE2(r, pm1, zero);
      r = _mm_sub_epi16(r, _mm_andnot_si128(lt, vp));
    }
    const __m128i z = _mm_cmpeq_epi16(r, zero);
    r = _mm_or_si128(r, _mm_and_si128(z, vp));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i), r);
  }
  if (i < n) ResidueScalar(v + i, n - i, p, out + i);
}

void AddSSE2(uint32_t* dst, const uint32_t* src, size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128i d = _mm_loadu_si128(reinterpret_cast<const __m128i*>(dst + i));
    const __m128i s = _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i), _mm_add_epi32(d, s));
  }
  for (; i < n; ++i) dst[i] += src[i];
}

void AccumulateScaledSSE2(double* dst, const uint32_t* src, double weight,
                          size_t n) {
  const __m128d w = _mm_set1_pd(weight);
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    // src < 2^31 (kernel contract), so the signed epi32 conversion is exact.
    const __m128i s32 = _mm_set_epi32(0, 0, static_cast<int>(src[i + 1]),
                                      static_cast<int>(src[i]));
    const __m128d s = _mm_cvtepi32_pd(s32);
    const __m128d d = _mm_loadu_pd(dst + i);
    _mm_storeu_pd(dst + i, _mm_add_pd(d, _mm_mul_pd(w, s)));
  }
  for (; i < n; ++i) dst[i] += weight * static_cast<double>(src[i]);
}

void BidTotalsSSE2(const double* overlap, size_t rows, uint32_t k,
                   const double* residual, const double* support,
                   const uint32_t* count, double* totals) {
  const __m128d zero = _mm_setzero_pd();
  uint32_t si = 0;
  for (; si + 2 <= k; si += 2) {
    const __m128d resid = _mm_loadu_pd(residual + si);
    // count compared in double lanes (exact: count <= rows < 2^31).
    const __m128d cnt = _mm_set_pd(static_cast<double>(count[si + 1]),
                                   static_cast<double>(count[si]));
    const size_t maxc =
        count[si] > count[si + 1] ? count[si] : count[si + 1];
    assert(maxc <= rows);
    (void)rows;
    __m128d tot = zero;
    for (size_t i = 0; i < maxc; ++i) {
      const __m128d ov = _mm_loadu_pd(overlap + i * k + si);
      const __m128d live = _mm_and_pd(
          _mm_cmpgt_pd(cnt, _mm_set1_pd(static_cast<double>(i))),
          _mm_cmpgt_pd(ov, zero));
      const __m128d term = _mm_mul_pd(_mm_mul_pd(ov, resid),
                                      _mm_set1_pd(support[i]));
      tot = _mm_add_pd(tot, _mm_and_pd(term, live));
    }
    _mm_storeu_pd(totals + si, tot);
  }
  if (si < k) {
    // Odd trailing partition: scalar twin on the remaining columns.
    for (; si < k; ++si) {
      double total = 0.0;
      for (size_t i = 0; i < count[si]; ++i) {
        const double ov = overlap[i * k + si];
        if (ov <= 0.0) continue;
        total += (ov * residual[si]) * support[i];
      }
      totals[si] = total;
    }
  }
}

// ----------------------------------------------------------------- AVX2

__attribute__((target("avx2"))) size_t CountLessEqAVX2(const uint32_t* a,
                                                       size_t n, uint32_t v) {
  const __m256i bias = _mm256_set1_epi32(static_cast<int>(0x80000000u));
  const __m256i vq =
      _mm256_xor_si256(_mm256_set1_epi32(static_cast<int>(v)), bias);
  size_t i = 0;
  size_t gt = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i va = _mm256_xor_si256(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i)), bias);
    const int mask =
        _mm256_movemask_ps(_mm256_castsi256_ps(_mm256_cmpgt_epi32(va, vq)));
    gt += static_cast<size_t>(__builtin_popcount(static_cast<unsigned>(mask)));
  }
  size_t count = i - gt;
  for (; i < n; ++i) count += (a[i] <= v) ? 1 : 0;
  return count;
}

__attribute__((target("avx2"))) bool RangeEqualAVX2(const uint32_t* a,
                                                    const uint32_t* b,
                                                    size_t n) {
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    if (_mm256_movemask_epi8(_mm256_cmpeq_epi32(va, vb)) != -1) return false;
  }
  for (; i < n; ++i) {
    if (a[i] != b[i]) return false;
  }
  return true;
}

__attribute__((target("avx2"))) inline __m256i LtMaskU16AVX2(__m256i r,
                                                             __m256i pm1,
                                                             __m256i zero) {
  return _mm256_cmpeq_epi16(_mm256_subs_epu16(r, pm1), zero);  // r < p
}

__attribute__((target("avx2"))) void ResidueDiffAVX2(const uint16_t* a,
                                                     const uint16_t* b,
                                                     size_t n, uint32_t p,
                                                     uint16_t* out) {
  const __m256i vp = _mm256_set1_epi16(static_cast<short>(p));
  const __m256i pm1 = _mm256_set1_epi16(static_cast<short>(p - 1));
  const __m256i zero = _mm256_setzero_si256();
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    const __m256i t = _mm256_add_epi16(va, _mm256_sub_epi16(vp, vb));
    const __m256i lt = LtMaskU16AVX2(t, pm1, zero);
    __m256i r = _mm256_sub_epi16(t, _mm256_andnot_si256(lt, vp));
    const __m256i z = _mm256_cmpeq_epi16(r, zero);
    r = _mm256_or_si256(r, _mm256_and_si256(z, vp));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), r);
  }
  for (; i < n; ++i) {  // inline tail: no cross-target call from AVX2 code
    const uint32_t t = a[i] + p - b[i];
    const uint32_t r = t >= p ? t - p : t;
    out[i] = static_cast<uint16_t>(r == 0 ? p : r);
  }
}

__attribute__((target("avx2"))) void ResidueAVX2(const uint16_t* v, size_t n,
                                                 uint32_t p, uint16_t* out) {
  const uint16_t magic = static_cast<uint16_t>(65536u / p);
  const __m256i vm = _mm256_set1_epi16(static_cast<short>(magic));
  const __m256i vp = _mm256_set1_epi16(static_cast<short>(p));
  const __m256i pm1 = _mm256_set1_epi16(static_cast<short>(p - 1));
  const __m256i zero = _mm256_setzero_si256();
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m256i x =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(v + i));
    const __m256i q = _mm256_mulhi_epu16(x, vm);
    __m256i r = _mm256_sub_epi16(x, _mm256_mullo_epi16(q, vp));
    for (int round = 0; round < 2; ++round) {
      const __m256i lt = LtMaskU16AVX2(r, pm1, zero);
      r = _mm256_sub_epi16(r, _mm256_andnot_si256(lt, vp));
    }
    const __m256i z = _mm256_cmpeq_epi16(r, zero);
    r = _mm256_or_si256(r, _mm256_and_si256(z, vp));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), r);
  }
  for (; i < n; ++i) {  // inline tail: no cross-target call from AVX2 code
    const uint32_t r = v[i] % p;
    out[i] = static_cast<uint16_t>(r == 0 ? p : r);
  }
}

__attribute__((target("avx2"))) void GatherAVX2(const uint32_t* table,
                                                size_t table_n,
                                                const uint32_t* idx, size_t n,
                                                uint32_t oob, uint32_t* out) {
  assert(table_n <= static_cast<size_t>(INT32_MAX));
  const __m256i bias = _mm256_set1_epi32(static_cast<int>(0x80000000u));
  const __m256i vn = _mm256_xor_si256(
      _mm256_set1_epi32(static_cast<int>(static_cast<uint32_t>(table_n))),
      bias);
  const __m256i voob = _mm256_set1_epi32(static_cast<int>(oob));
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i vidx =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(idx + i));
    // idx < table_n, unsigned (masked-off lanes never touch memory).
    const __m256i inb =
        _mm256_cmpgt_epi32(vn, _mm256_xor_si256(vidx, bias));
    const __m256i got = _mm256_mask_i32gather_epi32(
        voob, reinterpret_cast<const int*>(table), vidx, inb, 4);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), got);
  }
  for (; i < n; ++i) out[i] = idx[i] < table_n ? table[idx[i]] : oob;
}

/// Haystacks at or under kMaxQueryEdges-many match edges fit three 8-lane
/// chunks; each needle compares against all of them branch-free. Masked
/// maskload lanes read as 0, so every compare is ANDed with its chunk's
/// lane bits (EdgeId 0 is a legal needle).
__attribute__((target("avx2"))) size_t SortedDifferenceAVX2(
    const uint32_t* needles, size_t m, const uint32_t* haystack, size_t n,
    uint32_t* out) {
  assert(n <= 24 && n > 0);
  __m256i chunk[3];
  int lane_bits[3];
  const size_t chunks = (n + 7) / 8;
  for (size_t c = 0; c < chunks; ++c) {
    const size_t lanes = n - c * 8 < 8 ? n - c * 8 : 8;
    alignas(32) int32_t sel[8] = {0, 0, 0, 0, 0, 0, 0, 0};
    for (size_t l = 0; l < lanes; ++l) sel[l] = -1;
    const __m256i mask =
        _mm256_load_si256(reinterpret_cast<const __m256i*>(sel));
    chunk[c] = _mm256_maskload_epi32(
        reinterpret_cast<const int*>(haystack + c * 8), mask);
    lane_bits[c] = (1 << lanes) - 1;
  }
  size_t written = 0;
  for (size_t i = 0; i < m; ++i) {
    const __m256i needle = _mm256_set1_epi32(static_cast<int>(needles[i]));
    int found = 0;
    for (size_t c = 0; c < chunks; ++c) {
      found |= _mm256_movemask_ps(_mm256_castsi256_ps(
                   _mm256_cmpeq_epi32(chunk[c], needle))) &
               lane_bits[c];
    }
    if (found == 0) out[written++] = needles[i];
  }
  return written;
}

__attribute__((target("avx2"))) void TallyAVX2(const uint32_t* vals, size_t n,
                                               uint32_t k, uint32_t* counts) {
  // Below ~one pack-chunk per partition sweep — or for wide k — the plain
  // histogram wins (and most neighbour spans are tiny); the compare sweep
  // only pays off on hub-sized spans. Thresholds shared with the inline
  // wrapper gate in simd.h.
  if (k > kTallyCompareMaxK || n < detail::kSmallTally) {
    for (size_t j = 0; j < n; ++j) {
      if (vals[j] < k) ++counts[vals[j]];
    }
    return;
  }
  const __m256i m255 = _mm256_set1_epi32(255);
  size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    // Pack 32 values into uint8 lanes. min-with-255 first: ignored values
    // (>= k, incl. kNoPartition) stay >= k under unsigned saturation, and
    // packus sees only non-negative inputs. Lane order is permuted by the
    // in-lane packs — irrelevant for counting.
    const __m256i a =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(vals + i));
    const __m256i b =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(vals + i + 8));
    const __m256i c =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(vals + i + 16));
    const __m256i d =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(vals + i + 24));
    const __m256i p01 = _mm256_packus_epi32(_mm256_min_epu32(a, m255),
                                            _mm256_min_epu32(b, m255));
    const __m256i p23 = _mm256_packus_epi32(_mm256_min_epu32(c, m255),
                                            _mm256_min_epu32(d, m255));
    const __m256i pk = _mm256_packus_epi16(p01, p23);
    for (uint32_t si = 0; si < k; ++si) {
      const __m256i eq =
          _mm256_cmpeq_epi8(pk, _mm256_set1_epi8(static_cast<char>(si)));
      counts[si] += static_cast<uint32_t>(__builtin_popcount(
          static_cast<unsigned>(_mm256_movemask_epi8(eq))));
    }
  }
  for (; i < n; ++i) {  // inline tail: no cross-target call from AVX2 code
    if (vals[i] < k) ++counts[vals[i]];
  }
}

__attribute__((target("avx2"))) void TallyGatherAVX2(const uint32_t* table,
                                                     size_t table_n,
                                                     const uint32_t* idx,
                                                     size_t n, uint32_t k,
                                                     uint32_t* counts) {
  // Most neighbour spans are a handful of vertices — the compare sweep
  // can't amortise there, so take the plain gather-histogram path and
  // reserve the vector machinery for hub-sized spans (thresholds shared
  // with the inline wrapper gate in simd.h).
  if (n < detail::kSmallTally || k > kTallyCompareMaxK) {
    for (size_t i = 0; i < n; ++i) {
      if (idx[i] >= table_n) continue;
      const uint32_t v = table[idx[i]];
      if (v < k) ++counts[v];
    }
    return;
  }
  // Chunked gather-then-tally keeps the staging buffer in L1.
  uint32_t buf[256];
  size_t i = 0;
  while (i < n) {
    const size_t c = n - i < 256 ? n - i : 256;
    GatherAVX2(table, table_n, idx + i, c, 0xFFFFFFFFu, buf);
    TallyAVX2(buf, c, k, counts);
    i += c;
  }
}

__attribute__((target("avx2"))) void AddAVX2(uint32_t* dst,
                                             const uint32_t* src, size_t n) {
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i d =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    const __m256i s =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_add_epi32(d, s));
  }
  for (; i < n; ++i) dst[i] += src[i];
}

__attribute__((target("avx2"))) void AccumulateScaledAVX2(double* dst,
                                                          const uint32_t* src,
                                                          double weight,
                                                          size_t n) {
  const __m256d w = _mm256_set1_pd(weight);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128i s32 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    const __m256d s = _mm256_cvtepi32_pd(s32);  // exact: src < 2^31
    const __m256d d = _mm256_loadu_pd(dst + i);
    // Explicit mul + add (never fused): bit-identical to the scalar twin.
    _mm256_storeu_pd(dst + i, _mm256_add_pd(d, _mm256_mul_pd(w, s)));
  }
  for (; i < n; ++i) dst[i] += weight * static_cast<double>(src[i]);
}

__attribute__((target("avx2"))) void BidTotalsAVX2(
    const double* overlap, size_t rows, uint32_t k, const double* residual,
    const double* support, const uint32_t* count, double* totals) {
  const __m256d zero = _mm256_setzero_pd();
  uint32_t si = 0;
  for (; si + 4 <= k; si += 4) {
    const __m256d resid = _mm256_loadu_pd(residual + si);
    const __m256d cnt = _mm256_set_pd(
        static_cast<double>(count[si + 3]), static_cast<double>(count[si + 2]),
        static_cast<double>(count[si + 1]), static_cast<double>(count[si]));
    size_t maxc = 0;
    for (int lane = 0; lane < 4; ++lane) {
      if (count[si + lane] > maxc) maxc = count[si + lane];
    }
    assert(maxc <= rows);
    (void)rows;
    __m256d tot = zero;
    for (size_t i = 0; i < maxc; ++i) {
      const __m256d ov = _mm256_loadu_pd(overlap + i * k + si);
      // A lane is live while i < count[si] and its overlap is positive;
      // dead lanes contribute exactly +0.0 (same as the scalar skip).
      const __m256d live = _mm256_and_pd(
          _mm256_cmp_pd(cnt, _mm256_set1_pd(static_cast<double>(i)),
                        _CMP_GT_OQ),
          _mm256_cmp_pd(ov, zero, _CMP_GT_OQ));
      const __m256d term = _mm256_mul_pd(_mm256_mul_pd(ov, resid),
                                         _mm256_set1_pd(support[i]));
      tot = _mm256_add_pd(tot, _mm256_and_pd(term, live));
    }
    _mm256_storeu_pd(totals + si, tot);
  }
  for (; si < k; ++si) {
    double total = 0.0;
    for (size_t i = 0; i < count[si]; ++i) {
      const double ov = overlap[i * k + si];
      if (ov <= 0.0) continue;
      total += (ov * residual[si]) * support[i];
    }
    totals[si] = total;
  }
}

}  // namespace

#endif  // LOOM_SIMD_X86

// ===========================================================================
// Dispatch plumbing.
// ===========================================================================

namespace detail {
std::atomic<uint8_t> g_active_level{0xFF};
}  // namespace detail

namespace {

constexpr uint8_t kUnresolved = 0xFF;

Level ClampToCpu(Level requested) {
  const Level best = DetectCpuLevel();
  if (static_cast<uint8_t>(requested) <= static_cast<uint8_t>(best)) {
    return requested;
  }
  static std::atomic<bool> warned{false};
  if (!warned.exchange(true)) {
    std::fprintf(stderr,
                 "loom: LOOM_SIMD level '%s' unsupported on this CPU; "
                 "using '%s'\n",
                 LevelName(requested), LevelName(best));
  }
  return best;
}

Level EnvDefaultLevel() {
  const char* env = std::getenv("LOOM_SIMD");
  Level level;
  if (env != nullptr && ParseLevel(env, &level)) return ClampToCpu(level);
  if (env != nullptr && *env != '\0') {
    static std::atomic<bool> warned{false};
    if (!warned.exchange(true)) {
      std::fprintf(stderr,
                   "loom: ignoring unknown LOOM_SIMD value '%s' "
                   "(expected scalar|sse2|avx2|auto)\n",
                   env);
    }
  }
  return DetectCpuLevel();
}

}  // namespace

const char* LevelName(Level level) {
  switch (level) {
    case Level::kScalar:
      return "scalar";
    case Level::kSSE2:
      return "sse2";
    case Level::kAVX2:
      return "avx2";
  }
  return "scalar";
}

bool ParseLevel(std::string_view text, Level* out) {
  if (text == "scalar") {
    *out = Level::kScalar;
  } else if (text == "sse2") {
    *out = Level::kSSE2;
  } else if (text == "avx2") {
    *out = Level::kAVX2;
  } else if (text == "auto") {
    *out = DetectCpuLevel();
  } else {
    return false;
  }
  return true;
}

Level DetectCpuLevel() {
#if LOOM_SIMD_X86
  __builtin_cpu_init();
  if (__builtin_cpu_supports("avx2")) return Level::kAVX2;
  return Level::kSSE2;  // x86-64 baseline
#else
  return Level::kScalar;
#endif
}

std::vector<Level> SupportedLevels() {
  std::vector<Level> out = {Level::kScalar};
  const Level best = DetectCpuLevel();
  if (static_cast<uint8_t>(best) >= static_cast<uint8_t>(Level::kSSE2)) {
    out.push_back(Level::kSSE2);
  }
  if (static_cast<uint8_t>(best) >= static_cast<uint8_t>(Level::kAVX2)) {
    out.push_back(Level::kAVX2);
  }
  return out;
}

Level detail::ResolveActiveLevel() {
  const Level resolved = EnvDefaultLevel();
  uint8_t expected = kUnresolved;
  detail::g_active_level.compare_exchange_strong(
      expected, static_cast<uint8_t>(resolved), std::memory_order_relaxed);
  return static_cast<Level>(
      detail::g_active_level.load(std::memory_order_relaxed));
}

Level SetActiveLevel(Level level) {
  const Level installed = ClampToCpu(level);
  detail::g_active_level.store(static_cast<uint8_t>(installed),
                               std::memory_order_relaxed);
  return installed;
}

bool Configure(std::string_view spec) {
  if (spec == "auto") {
    // No override: keep whatever is active (the environment default
    // resolves lazily on first kernel use). This is what lets a test
    // harness pin a level with SetActiveLevel and then build backends
    // with default options without being silently reset.
    return true;
  }
  Level level;
  if (!ParseLevel(spec, &level)) return false;
  SetActiveLevel(level);
  return true;
}

// ===========================================================================
// Kernel entry points: explicit-level switch + ActiveLevel wrappers. On
// non-x86 builds every level resolves to scalar.
// ===========================================================================

#if LOOM_SIMD_X86
#define LOOM_SIMD_DISPATCH(level, scalar_call, sse2_call, avx2_call) \
  switch (level) {                                                   \
    case Level::kScalar:                                             \
      return scalar_call;                                            \
    case Level::kSSE2:                                               \
      return sse2_call;                                              \
    case Level::kAVX2:                                               \
      return avx2_call;                                              \
  }                                                                  \
  return scalar_call
#else
#define LOOM_SIMD_DISPATCH(level, scalar_call, sse2_call, avx2_call) \
  (void)level;                                                       \
  return scalar_call
#endif

size_t CountLessEqU32(Level level, const uint32_t* a, size_t n, uint32_t v) {
  LOOM_SIMD_DISPATCH(level, CountLessEqScalar(a, n, v),
                     CountLessEqSSE2(a, n, v), CountLessEqAVX2(a, n, v));
}
size_t CountLessEqU32(const uint32_t* a, size_t n, uint32_t v) {
  return CountLessEqU32(ActiveLevel(), a, n, v);
}

bool RangeEqualU32(Level level, const uint32_t* a, const uint32_t* b,
                   size_t n) {
  LOOM_SIMD_DISPATCH(level, RangeEqualScalar(a, b, n), RangeEqualSSE2(a, b, n),
                     RangeEqualAVX2(a, b, n));
}
bool RangeEqualU32(const uint32_t* a, const uint32_t* b, size_t n) {
  return RangeEqualU32(ActiveLevel(), a, b, n);
}

bool MultisetExtendsU32(Level level, const uint32_t* base, size_t n,
                        const uint32_t* delta, size_t d, const uint32_t* grown,
                        size_t m) {
  // Below a couple of AVX2 widths the merge walk beats the segmented
  // formulation (measured ~1.6x the other way at m = 48), and at SSE2's
  // 4-lane width the segmented pass never pays at all — those cases run
  // the scalar definition, which is trivially bit-identical.
  if (level != Level::kAVX2 || m < 32) {
    return MultisetExtendsScalar(base, n, delta, d, grown, m);
  }
  if (m != n + d) return false;
  // grown must be base with each (ascending) delta element inserted after
  // its insertion point: check the segments between insertion points and
  // the inserted elements themselves.
  size_t bpos = 0, gpos = 0;
  for (size_t j = 0; j < d; ++j) {
    assert(j == 0 || delta[j - 1] <= delta[j]);
    const size_t c = CountLessEqU32(level, base, n, delta[j]);
    if (!RangeEqualU32(level, base + bpos, grown + gpos, c - bpos)) {
      return false;
    }
    gpos += c - bpos;
    bpos = c;
    if (grown[gpos] != delta[j]) return false;
    ++gpos;
  }
  return RangeEqualU32(level, base + bpos, grown + gpos, n - bpos);
}
bool MultisetExtendsU32(const uint32_t* base, size_t n, const uint32_t* delta,
                        size_t d, const uint32_t* grown, size_t m) {
  return MultisetExtendsU32(ActiveLevel(), base, n, delta, d, grown, m);
}

size_t SortedDifferenceU32(Level level, const uint32_t* needles, size_t m,
                           const uint32_t* haystack, size_t n, uint32_t* out) {
  if (n == 0) {
    for (size_t i = 0; i < m; ++i) out[i] = needles[i];
    return m;
  }
  if (n > 24) {  // beyond kMaxQueryEdges-sized matches: binary search wins
    return SortedDifferenceScalar(needles, m, haystack, n, out);
  }
  LOOM_SIMD_DISPATCH(level, SortedDifferenceScalar(needles, m, haystack, n, out),
                     SortedDifferenceScalar(needles, m, haystack, n, out),
                     SortedDifferenceAVX2(needles, m, haystack, n, out));
}
size_t SortedDifferenceU32(const uint32_t* needles, size_t m,
                           const uint32_t* haystack, size_t n, uint32_t* out) {
  return SortedDifferenceU32(ActiveLevel(), needles, m, haystack, n, out);
}

void ResidueDiffU16(Level level, const uint16_t* a, const uint16_t* b,
                    size_t n, uint32_t p, uint16_t* out) {
  assert(p >= 2 && p <= 255);
  LOOM_SIMD_DISPATCH(level, ResidueDiffScalar(a, b, n, p, out),
                     ResidueDiffSSE2(a, b, n, p, out),
                     ResidueDiffAVX2(a, b, n, p, out));
}
void ResidueDiffU16(const uint16_t* a, const uint16_t* b, size_t n, uint32_t p,
                    uint16_t* out) {
  ResidueDiffU16(ActiveLevel(), a, b, n, p, out);
}

void ResidueU16(Level level, const uint16_t* v, size_t n, uint32_t p,
                uint16_t* out) {
  assert(p >= 2 && p <= 255);
  LOOM_SIMD_DISPATCH(level, ResidueScalar(v, n, p, out),
                     ResidueSSE2(v, n, p, out), ResidueAVX2(v, n, p, out));
}
void ResidueU16(const uint16_t* v, size_t n, uint32_t p, uint16_t* out) {
  ResidueU16(ActiveLevel(), v, n, p, out);
}

void EdgeAdditionFactors(Level level, uint32_t va, uint32_t vb, uint32_t vu,
                         uint32_t deg_u, uint32_t vv, uint32_t deg_v,
                         uint32_t p, uint32_t out[3]) {
  if (level != Level::kScalar) {
    detail::EdgeAdditionFactorsFast(va, vb, vu, deg_u, vv, deg_v, p, out);
    return;
  }
  EdgeAdditionFactorsScalar(va, vb, vu, deg_u, vv, deg_v, p, out);
}

void GatherU32(Level level, const uint32_t* table, size_t table_n,
               const uint32_t* idx, size_t n, uint32_t oob, uint32_t* out) {
  // vpgatherdd indexes are signed 32-bit: tables beyond INT32_MAX entries
  // (possible — VertexId is uint32) must take the scalar path at every
  // level or the AVX2 bounds mask would wrap and break bit-identity.
  if (table_n > static_cast<size_t>(INT32_MAX)) {
    GatherScalar(table, table_n, idx, n, oob, out);
    return;
  }
  LOOM_SIMD_DISPATCH(level, GatherScalar(table, table_n, idx, n, oob, out),
                     GatherScalar(table, table_n, idx, n, oob, out),
                     GatherAVX2(table, table_n, idx, n, oob, out));
}
void GatherU32(const uint32_t* table, size_t table_n, const uint32_t* idx,
               size_t n, uint32_t oob, uint32_t* out) {
  GatherU32(ActiveLevel(), table, table_n, idx, n, oob, out);
}

void TallyU32(Level level, const uint32_t* vals, size_t n, uint32_t k,
              uint32_t* counts) {
  LOOM_SIMD_DISPATCH(level, TallyScalar(vals, n, k, counts),
                     TallyScalar(vals, n, k, counts),
                     TallyAVX2(vals, n, k, counts));
}
void TallyU32(const uint32_t* vals, size_t n, uint32_t k, uint32_t* counts) {
  TallyU32(ActiveLevel(), vals, n, k, counts);
}

void TallyGatherU32(Level level, const uint32_t* table, size_t table_n,
                    const uint32_t* idx, size_t n, uint32_t k,
                    uint32_t* counts) {
  if (table_n > static_cast<size_t>(INT32_MAX)) {  // see GatherU32
    TallyGatherScalar(table, table_n, idx, n, k, counts);
    return;
  }
  LOOM_SIMD_DISPATCH(level, TallyGatherScalar(table, table_n, idx, n, k, counts),
                     TallyGatherScalar(table, table_n, idx, n, k, counts),
                     TallyGatherAVX2(table, table_n, idx, n, k, counts));
}

void AddU32(Level level, uint32_t* dst, const uint32_t* src, size_t n) {
  LOOM_SIMD_DISPATCH(level, AddScalar(dst, src, n), AddSSE2(dst, src, n),
                     AddAVX2(dst, src, n));
}

void AccumulateScaledU32(Level level, double* dst, const uint32_t* src,
                         double weight, size_t n) {
  LOOM_SIMD_DISPATCH(level, AccumulateScaledScalar(dst, src, weight, n),
                     AccumulateScaledSSE2(dst, src, weight, n),
                     AccumulateScaledAVX2(dst, src, weight, n));
}

void BidTotals(Level level, const double* overlap, size_t rows, uint32_t k,
               const double* residual, const double* support,
               const uint32_t* count, double* totals) {
  LOOM_SIMD_DISPATCH(
      level, BidTotalsScalar(overlap, rows, k, residual, support, count, totals),
      BidTotalsSSE2(overlap, rows, k, residual, support, count, totals),
      BidTotalsAVX2(overlap, rows, k, residual, support, count, totals));
}

#undef LOOM_SIMD_DISPATCH

}  // namespace simd
}  // namespace util
}  // namespace loom
