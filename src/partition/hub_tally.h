// Incremental per-partition neighbour counters for high-degree vertices.
//
// LDG's score for a vertex v is argmax over partitions of
// |N(v) ∩ Si| · residual(Si); the tally |N(v) ∩ Si| is recomputed from
// scratch — a full adjacency walk — every time v is scored. For hubs that
// walk is long and happens repeatedly (every bypassed edge touching the
// hub re-scores it until it is finally placed), which is HEP's observation
// about high-degree vertices applied to scoring (ROADMAP item 5, second
// rung). This cache keeps the tally INCREMENTALLY for every vertex whose
// visible degree has crossed a threshold:
//
//   invariant: counts[h][p] == #{ entries w in visible-adj(h) :
//                                 partition(w) == p }
//
// maintained by two hooks, each O(1)-amortised against work the stream
// already does:
//   * OnEdgeVisible(u, v) — an adjacency entry became readable (AddEdge in
//     the serial backends, the sequencer's cursor Advance in the sharded
//     one). If the entry's owner is a materialised hub and the other
//     endpoint is already assigned, bump one counter; if the owner just
//     crossed the threshold, materialise it with one full TallyGather.
//   * OnAssign(v, actual) — v was placed (first-writer-wins, post
//     capacity-diversion partition). Walk v's visible adjacency once and
//     bump counts[h][actual] for every materialised hub entry h. Summed
//     over the stream this is one extra adjacency pass total (O(m)),
//     traded against O(deg(hub)) per re-score.
//
// Exactness: every entry w in a hub's adjacency is counted exactly once —
// at visibility time if w was already assigned, at w's assignment
// otherwise (adjacency entries are symmetric: h appears in adj(w) as many
// times as w appears in adj(h), and a canonical self-loop is a single
// entry walked once). The counters therefore equal the from-scratch
// TallyGather integers at every stream position, for ANY threshold — so
// the partitioning is bit-identical whether the cache is on, off, or set
// to a different threshold (pinned by the hub differential tests).
//
// The cache is derived state: it is never checkpointed; restore paths call
// Rebuild() after the graph and partition table are back.

#ifndef LOOM_PARTITION_HUB_TALLY_H_
#define LOOM_PARTITION_HUB_TALLY_H_

#include <cstdint>
#include <vector>

#include "graph/neighbor_view.h"
#include "graph/types.h"
#include "partition/partitioning.h"

namespace loom {
namespace partition {

class HubTallyCache {
 public:
  static constexpr uint32_t kDefaultThreshold = 128;
  /// Threshold value meaning "never materialise" (env LOOM_HUB_THRESHOLD=0
  /// also spells this).
  static constexpr uint32_t kDisabled = UINT32_MAX;

  /// 0 → LOOM_HUB_THRESHOLD if set (where 0 disables), else
  /// kDefaultThreshold; anything else is taken as-is.
  static uint32_t ResolveThreshold(uint32_t requested);

  HubTallyCache(uint32_t k, uint32_t degree_threshold)
      : k_(k), threshold_(ResolveThreshold(degree_threshold)) {}

  bool enabled() const { return threshold_ != kDisabled; }
  uint32_t threshold() const { return threshold_; }
  size_t num_hubs() const { return num_hubs_; }

  /// The k per-partition counters for v, or nullptr when v is not a
  /// materialised hub (caller falls back to TallyGather). The row holds
  /// exactly the integers a fresh tally of v's visible adjacency would
  /// produce.
  const uint32_t* Counts(graph::VertexId v) const {
    if (v >= hub_row_.size()) return nullptr;
    const uint32_t row = hub_row_[v];
    if (row == kNoRow) return nullptr;
    return &rows_[static_cast<size_t>(row) * k_];
  }

  /// Hook: edge (u,v)'s adjacency entries just became visible in `g`.
  /// Call AFTER the entries are readable (post-AddEdge / post-Advance) and
  /// BEFORE any decision for this edge. Handles u == v (single entry).
  /// Templated on the concrete graph type: this runs twice per ingested
  /// edge, and both DynamicGraph and ShardedSeenGraph are `final`, so the
  /// degree probe devirtualises to a counter load instead of a virtual
  /// range construction.
  template <typename Graph>
  void OnEdgeVisible(graph::VertexId u, graph::VertexId v, const Graph& g,
                     const Partitioning& p) {
    if (!enabled()) return;
    NoteEntry(u, v, g, p);
    // A canonical self-loop is a single entry in u's own chain.
    if (u != v) NoteEntry(v, u, g, p);
  }

  /// Hook: v was just assigned to `actual` (the post-diversion partition,
  /// first assignment only). Call after the partition table is updated.
  template <typename Graph>
  void OnAssign(graph::VertexId v, graph::PartitionId actual, const Graph& g) {
    // Cheap even when enabled: until a hub materialises this is one branch.
    if (num_hubs_ == 0) return;
    // v occurs in adj(w) exactly as many times as w occurs in adj(v), so
    // bumping once per occurrence here keeps hub rows multiplicity-exact
    // for duplicate edges; a self-loop is one entry, walked once.
    const size_t known = hub_row_.size();
    g.Neighbors(v).ForEachChunk([&](const graph::VertexId* ids, size_t n) {
      for (size_t i = 0; i < n; ++i) {
        const graph::VertexId w = ids[i];
        if (w < known && hub_row_[w] != kNoRow) {
          rows_[static_cast<size_t>(hub_row_[w]) * k_ + actual] += 1;
        }
      }
    });
  }

  /// Drops all materialised rows (threshold kept).
  void Clear();

  /// Re-derives the cache from a restored graph + partition table:
  /// materialises every vertex in [0, num_slots) whose visible degree has
  /// reached the threshold. Produces the same rows a fresh run at this
  /// stream position would hold.
  void Rebuild(const graph::NeighborView& g, size_t num_slots,
               const Partitioning& p);

 private:
  static constexpr uint32_t kNoRow = UINT32_MAX;

  /// One new entry `w` appended to `h`'s visible adjacency.
  template <typename Graph>
  void NoteEntry(graph::VertexId h, graph::VertexId w, const Graph& g,
                 const Partitioning& p) {
    if (h < hub_row_.size() && hub_row_[h] != kNoRow) {
      const graph::PartitionId pw = p.PartitionOf(w);
      if (pw < k_) rows_[static_cast<size_t>(hub_row_[h]) * k_ + pw] += 1;
      return;
    }
    // The tally in Materialize already covers the entry that triggered the
    // crossing, so no separate bump on this path.
    if (g.Degree(h) >= threshold_) Materialize(h, g, p);
  }

  void Materialize(graph::VertexId h, const graph::NeighborView& g,
                   const Partitioning& p);

  uint32_t k_;
  uint32_t threshold_;
  /// Per-vertex row index into rows_, kNoRow when not materialised.
  std::vector<uint32_t> hub_row_;
  /// Row-major [num_hubs_ x k_] counters.
  std::vector<uint32_t> rows_;
  size_t num_hubs_ = 0;
};

}  // namespace partition
}  // namespace loom

#endif  // LOOM_PARTITION_HUB_TALLY_H_
