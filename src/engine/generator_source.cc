#include "engine/generator_source.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "util/rng.h"

namespace loom {
namespace engine {

namespace {

/// GraphSink that records labels and raw edges — nothing else.
class CollectorSink : public datasets::GraphSink {
 public:
  graph::VertexId AddVertex(graph::LabelId label) override {
    labels_.push_back(label);
    return static_cast<graph::VertexId>(labels_.size() - 1);
  }

  void AddEdge(graph::VertexId u, graph::VertexId v) override {
    edges_.emplace_back(u, v);
  }

  std::vector<graph::LabelId>& labels() { return labels_; }
  std::vector<graph::Edge>& edges() { return edges_; }

 private:
  std::vector<graph::LabelId> labels_;
  std::vector<graph::Edge> edges_;
};

}  // namespace

GeneratorEdgeSource::GeneratorEdgeSource(datasets::DatasetId id, double scale,
                                         stream::StreamOrder order,
                                         uint64_t seed) {
  if (order == stream::StreamOrder::kBreadthFirst ||
      order == stream::StreamOrder::kDepthFirst) {
    throw std::invalid_argument(
        "GeneratorEdgeSource: order '" + stream::ToString(order) +
        "' needs the materialised graph's adjacency; use "
        "engine::MakeEdgeSource(MakeDataset(...), order) for bfs/dfs, or "
        "stream canonical/random lazily");
  }

  CollectorSink sink;
  datasets::EmitDatasetEdges(id, scale, &registry_, &sink);

  // Replicate LabeledGraph::Builder::Build's normalisation: drop self
  // loops, orient (min,max), sort, dedupe. Identical comparator, so the
  // surviving sequence matches the built graph's edge-id order exactly.
  std::vector<graph::Edge>& edges = sink.edges();
  std::vector<graph::Edge> uniq;
  uniq.reserve(edges.size());
  for (const graph::Edge& e : edges) {
    if (e.u == e.v) continue;
    uniq.push_back(e.Normalized());
  }
  edges.clear();
  edges.shrink_to_fit();
  std::sort(uniq.begin(), uniq.end(), [](const graph::Edge& a,
                                         const graph::Edge& b) {
    return a.u != b.u ? a.u < b.u : a.v < b.v;
  });
  uniq.erase(std::unique(uniq.begin(), uniq.end(),
                         [](const graph::Edge& a, const graph::Edge& b) {
                           return a.u == b.u && a.v == b.v;
                         }),
             uniq.end());

  // Replicate MakeDataset's DropIsolatedVertices: compact away vertices no
  // surviving edge touches, preserving id order (the remap is monotone, so
  // both the (min,max) orientation and the sort order carry over).
  const std::vector<graph::LabelId>& raw_labels = sink.labels();
  std::vector<graph::VertexId> remap(raw_labels.size(), graph::kInvalidVertex);
  for (const graph::Edge& e : uniq) {
    remap[e.u] = 0;
    remap[e.v] = 0;
  }
  labels_.reserve(raw_labels.size());
  graph::VertexId next = 0;
  for (graph::VertexId v = 0; v < remap.size(); ++v) {
    if (remap[v] == graph::kInvalidVertex) continue;
    remap[v] = next++;
    labels_.push_back(raw_labels[v]);
  }
  edges_.reserve(uniq.size());
  for (const graph::Edge& e : uniq) {
    edges_.emplace_back(remap[e.u], remap[e.v]);
  }

  if (order == stream::StreamOrder::kRandom) {
    // Same permutation construction as EdgeOrderFor(kRandom): iota over
    // edge ids, Fisher-Yates under Rng(seed).
    std::vector<graph::EdgeId> perm(edges_.size());
    std::iota(perm.begin(), perm.end(), 0);
    util::Rng rng(seed);
    rng.Shuffle(&perm);
    std::vector<graph::Edge> shuffled;
    shuffled.reserve(edges_.size());
    for (graph::EdgeId eid : perm) shuffled.push_back(edges_[eid]);
    edges_ = std::move(shuffled);
  }
}

size_t GeneratorEdgeSource::NextBatch(std::span<stream::StreamEdge> out) {
  size_t produced = 0;
  while (produced < out.size() && pos_ < edges_.size()) {
    const graph::Edge& e = edges_[pos_];
    stream::StreamEdge& se = out[produced++];
    se.id = static_cast<graph::EdgeId>(pos_++);
    se.u = e.u;
    se.v = e.v;
    se.label_u = labels_[e.u];
    se.label_v = labels_[e.v];
  }
  return produced;
}

}  // namespace engine
}  // namespace loom
