// Differential + brute-force suite for the streaming EDGE partitioners
// (partition/edge/): HDRF, DBH and HEP, plus the offline split-merge
// rebalancer.
//
// The determinism contract under test (edge_partitioner.h): placements
// depend only on the edge sequence — identical across batch splits,
// EdgeSource kinds and checkpoint/resume — and the deterministic final
// stats (replication factor, edge balance, edge assignment hash) are
// exactly recomputable from the per-edge placement log a sink records.

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <limits>
#include <memory>
#include <set>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include <gtest/gtest.h>

#include "datasets/dataset_registry.h"
#include "engine/engine.h"
#include "engine/generator_source.h"
#include "io/assignment_sink.h"
#include "io/checkpoint.h"
#include "io/edge_stream_io.h"
#include "partition/edge/dbh_partitioner.h"
#include "partition/edge/hdrf_partitioner.h"
#include "partition/edge/hep_partitioner.h"
#include "partition/edge/split_merge.h"
#include "partition/partition_metrics.h"
#include "stream/edge_stream.h"
#include "test_util.h"

namespace loom {
namespace partition {
namespace edge {
namespace {

namespace fs = std::filesystem;

constexpr double kScale = 0.05;

PartitionerConfig ConfigFor(const datasets::Dataset& ds, uint32_t k = 8) {
  PartitionerConfig config;
  config.k = k;
  config.expected_vertices = ds.NumVertices();
  config.expected_edges = ds.NumEdges();
  return config;
}

engine::StatCounters FinalStatsOf(const Partitioner& p) {
  engine::FinalStatsEvent stats;
  p.FillFinalStats(&stats);
  return stats.counters;
}

std::string TempPath(const std::string& name) {
  const fs::path dir = fs::path(testing::TempDir()) / "loom_edge_partition";
  fs::create_directories(dir);
  return (dir / name).string();
}

// ------------------------------------------------------- registry plumbing

TEST(EdgePartitionRegistryTest, SpecStringsBuildConfiguredBackends) {
  const datasets::Dataset ds =
      datasets::MakeDataset(datasets::DatasetId::kProvGen, kScale);
  const engine::EngineOptions options = test_util::OptionsFor(ds);

  for (const char* spec :
       {"hdrf", "hdrf:lambda=1.1", "hdrf:lambda=0,epsilon=2.5", "dbh", "hep",
        "hep:threshold_factor=4", "hep:threshold_factor=2,lambda=1.5"}) {
    SCOPED_TRACE(spec);
    auto p = test_util::MakeBackend(spec, options, ds);
    ASSERT_NE(p, nullptr);
    const std::string want(std::string_view(spec).substr(
        0, std::string_view(spec).find(':')));
    EXPECT_EQ(std::string(p->name()), want);
  }
}

TEST(EdgePartitionRegistryTest, BadKnobValuesFailActionably) {
  const datasets::Dataset ds =
      datasets::MakeDataset(datasets::DatasetId::kProvGen, kScale);
  const engine::BuildContext context = test_util::ContextFor(ds);

  struct BadSpec {
    const char* spec;
    const char* expect_in_error;
  };
  for (const BadSpec& bad :
       {BadSpec{"hdrf:lambda=-1", "lambda"},
        BadSpec{"hdrf:epsilon=0", "epsilon"},
        BadSpec{"hdrf:lambda=banana", "lambda"},
        // The NaN regressions: NaN fails every ordered comparison, so a
        // plain "x < 0" range check silently ACCEPTS it — every HDRF score
        // becomes NaN and all edges land in partition 0. The option parser
        // must reject non-finite spellings outright.
        BadSpec{"hdrf:lambda=nan", "lambda"},
        BadSpec{"hdrf:epsilon=nan", "epsilon"},
        BadSpec{"hdrf:lambda=inf", "lambda"},
        BadSpec{"hep:threshold_factor=nan", "threshold_factor"},
        BadSpec{"hep:threshold_factor=0", "threshold_factor"},
        BadSpec{"hep:threshold_factor=-2", "threshold_factor"},
        BadSpec{"hep:lambda=nan", "lambda"}}) {
    SCOPED_TRACE(bad.spec);
    std::string error;
    auto p = engine::BuildPartitioner(bad.spec, test_util::OptionsFor(ds),
                                      context, &error);
    EXPECT_EQ(p, nullptr);
    EXPECT_NE(error.find(bad.expect_in_error), std::string::npos) << error;
  }
}

// Non-finite knobs must also fail at DIRECT construction (defence in depth
// for programmatic callers that never go through the option parser).
TEST(EdgePartitionRegistryTest, NonFiniteKnobsThrowOnDirectConstruction) {
  PartitionerConfig config;
  config.k = 8;
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_THROW(HdrfPartitioner(config, nan, 1.0), std::invalid_argument);
  EXPECT_THROW(HdrfPartitioner(config, 1.1, nan), std::invalid_argument);
  EXPECT_THROW(HdrfPartitioner(config, inf, 1.0), std::invalid_argument);
  EXPECT_THROW(HepPartitioner(config, nan, 1.1, 1.0), std::invalid_argument);
  EXPECT_THROW(HepPartitioner(config, 4.0, nan, 1.0), std::invalid_argument);
  EXPECT_THROW(HepPartitioner(config, 4.0, 1.1, nan), std::invalid_argument);
  EXPECT_THROW(HepPartitioner(config, 0.0, 1.1, 1.0), std::invalid_argument);
}

// Every float-typed EngineOptions key shares the same NaN hole if parsed
// carelessly; sweep the whole key table rather than enumerating by hand so
// a future knob cannot regress silently.
TEST(EdgePartitionRegistryTest, EveryFloatOptionKeyRejectsNonFinite) {
  for (const engine::EngineOptions::KeyInfo& info :
       engine::EngineOptions::KeyTable()) {
    if (info.spec.substr(0, 5) != "float") continue;
    for (const char* bad : {"nan", "inf", "-inf", "NaN"}) {
      SCOPED_TRACE(std::string(info.name) + "=" + bad);
      engine::EngineOptions options;
      std::string error;
      EXPECT_FALSE(options.Set(info.name, bad, &error));
      EXPECT_NE(error.find(info.name), std::string::npos) << error;
    }
  }
}

// --------------------------------------------- brute-force stats recompute
//
// Everything FillFinalStats reports must be exactly recomputable from the
// per-edge placement log: replica sets, part loads, replication factor,
// max/min loads and the FNV-1a placement hash. A MemoryEdgeAssignmentSink
// (fed through the OnEdgeAssign observer event, the same path loom_partition
// --edge-out uses) records the log.

void CheckBruteForce(EdgePartitioner* p, const stream::EdgeStream& es,
                     uint32_t k) {
  io::MemoryEdgeAssignmentSink sink;
  io::EdgeAssignmentSinkObserver observer(&sink);
  p->SetObserver(&observer);
  for (const stream::StreamEdge& e : es) p->Ingest(e);
  p->Finalize();
  p->SetObserver(nullptr);

  ASSERT_EQ(sink.records().size(), es.size());

  std::vector<uint64_t> loads(k, 0);
  std::vector<std::set<graph::PartitionId>> replicas;
  uint64_t hash = 0xcbf29ce484222325ULL;
  for (size_t i = 0; i < sink.records().size(); ++i) {
    const io::MemoryEdgeAssignmentSink::Record& r = sink.records()[i];
    ASSERT_EQ(r.edge, es[i].id);
    ASSERT_EQ(r.u, es[i].u);
    ASSERT_EQ(r.v, es[i].v);
    ASSERT_LT(r.partition, k);
    ++loads[r.partition];
    const size_t top = std::max(r.u, r.v);
    if (top >= replicas.size()) replicas.resize(top + 1);
    replicas[r.u].insert(r.partition);
    replicas[r.v].insert(r.partition);
    hash = (hash ^ r.partition) * 0x100000001b3ULL;
  }

  uint64_t replica_total = 0, vertices_seen = 0;
  for (size_t v = 0; v < replicas.size(); ++v) {
    replica_total += replicas[v].size();
    if (!replicas[v].empty()) ++vertices_seen;
    EXPECT_EQ(p->ReplicaCount(static_cast<graph::VertexId>(v)),
              replicas[v].size());
    for (graph::PartitionId part = 0; part < k; ++part) {
      EXPECT_EQ(p->IsReplicaOf(static_cast<graph::VertexId>(v), part),
                replicas[v].count(part) > 0);
    }
  }
  const uint64_t max_load = *std::max_element(loads.begin(), loads.end());
  const uint64_t min_load = *std::min_element(loads.begin(), loads.end());

  const engine::StatCounters counters = FinalStatsOf(*p);
  EXPECT_EQ(engine::FindCounter(counters, "edge_assignments", 1), es.size());
  EXPECT_EQ(engine::FindCounter(counters, "vertices_seen", 1), vertices_seen);
  EXPECT_EQ(engine::FindCounter(counters, "replica_total", 1), replica_total);
  EXPECT_EQ(engine::FindCounter(counters, "max_part_edges", 1), max_load);
  EXPECT_EQ(engine::FindCounter(counters, "min_part_edges", 1), min_load);
  EXPECT_EQ(engine::FindCounter(counters, "edge_assignment_hash", 1), hash);

  EXPECT_EQ(p->EdgesAssigned(), es.size());
  EXPECT_EQ(p->EdgeAssignmentHash(), hash);
  EXPECT_DOUBLE_EQ(p->ReplicationFactor(),
                   static_cast<double>(replica_total) / vertices_seen);
  EXPECT_DOUBLE_EQ(p->EdgeBalance(),
                   static_cast<double>(max_load) * k / es.size());
  for (graph::PartitionId part = 0; part < k; ++part) {
    EXPECT_EQ(p->EdgeLoad(part), loads[part]);
  }

  // The primary vertex placement is each vertex's FIRST replica part, so
  // every streamed vertex must be assigned to one of its replica parts.
  const Partitioning& vp = p->partitioning();
  for (size_t v = 0; v < replicas.size(); ++v) {
    if (replicas[v].empty()) continue;
    ASSERT_TRUE(vp.IsAssigned(static_cast<graph::VertexId>(v)));
    EXPECT_TRUE(replicas[v].count(
        vp.PartitionOf(static_cast<graph::VertexId>(v))) > 0);
  }
}

TEST(EdgePartitionBruteForceTest, HdrfStatsMatchPlacementLogReplay) {
  const datasets::Dataset ds =
      datasets::MakeDataset(datasets::DatasetId::kProvGen, kScale);
  const stream::EdgeStream es =
      stream::MakeStream(ds.graph, stream::StreamOrder::kBreadthFirst);
  HdrfPartitioner p(ConfigFor(ds), /*lambda=*/1.1, /*epsilon=*/1.0);
  CheckBruteForce(&p, es, /*k=*/8);
}

TEST(EdgePartitionBruteForceTest, DbhStatsMatchPlacementLogReplay) {
  const datasets::Dataset ds =
      datasets::MakeDataset(datasets::DatasetId::kMusicBrainz, kScale);
  const stream::EdgeStream es =
      stream::MakeStream(ds.graph, stream::StreamOrder::kDepthFirst);
  DbhPartitioner p(ConfigFor(ds));
  CheckBruteForce(&p, es, /*k=*/8);
}

TEST(EdgePartitionBruteForceTest, HepStatsMatchPlacementLogReplay) {
  const datasets::Dataset ds =
      datasets::MakeDataset(datasets::DatasetId::kProvGen, kScale);
  const stream::EdgeStream es =
      stream::MakeStream(ds.graph, stream::StreamOrder::kBreadthFirst);
  HepPartitioner p(ConfigFor(ds), /*threshold_factor=*/4.0, /*lambda=*/1.1,
                   /*epsilon=*/1.0);
  CheckBruteForce(&p, es, /*k=*/8);
  // The stream is skewed, so the split must actually engage: both the core
  // path and the high-degree fallback should have placed edges.
  const engine::StatCounters counters = FinalStatsOf(p);
  EXPECT_GT(engine::FindCounter(counters, "hep_high_degree_vertices", 0), 0u);
  EXPECT_GT(engine::FindCounter(counters, "hep_core_edges", 0), 0u);
  EXPECT_GT(engine::FindCounter(counters, "hep_fallback_edges", 0), 0u);
  EXPECT_EQ(engine::FindCounter(counters, "hep_core_edges", 0) +
                engine::FindCounter(counters, "hep_fallback_edges", 0),
            es.size());
}

// ----------------------------------------------------- scoring properties

TEST(HdrfPropertyTest, LargeLambdaForcesNearPerfectEdgeBalance) {
  // λ → ∞ reduces HDRF to pure load balancing: part loads may never drift
  // apart by more than one edge.
  const datasets::Dataset ds =
      datasets::MakeDataset(datasets::DatasetId::kDblp, kScale);
  const stream::EdgeStream es =
      stream::MakeStream(ds.graph, stream::StreamOrder::kBreadthFirst);
  HdrfPartitioner p(ConfigFor(ds), /*lambda=*/1000.0, /*epsilon=*/1.0);
  for (const stream::StreamEdge& e : es) p.Ingest(e);
  uint64_t max_load = 0, min_load = UINT64_MAX;
  for (graph::PartitionId part = 0; part < 8; ++part) {
    max_load = std::max(max_load, p.EdgeLoad(part));
    min_load = std::min(min_load, p.EdgeLoad(part));
  }
  EXPECT_LE(max_load - min_load, 1u);
}

TEST(HdrfPropertyTest, GreedyBeatsHashingOnReplicationFactor) {
  // HDRF's whole point: degree-aware greedy placement replicates less
  // than degree-based hashing on skewed graphs.
  const datasets::Dataset ds =
      datasets::MakeDataset(datasets::DatasetId::kProvGen, kScale);
  const stream::EdgeStream es =
      stream::MakeStream(ds.graph, stream::StreamOrder::kBreadthFirst);
  HdrfPartitioner hdrf(ConfigFor(ds), /*lambda=*/1.1, /*epsilon=*/1.0);
  DbhPartitioner dbh(ConfigFor(ds));
  for (const stream::StreamEdge& e : es) {
    hdrf.Ingest(e);
    dbh.Ingest(e);
  }
  EXPECT_LT(hdrf.ReplicationFactor(), dbh.ReplicationFactor());
  EXPECT_GE(hdrf.ReplicationFactor(), 1.0);
  EXPECT_GE(dbh.ReplicationFactor(), 1.0);
}

TEST(HepPropertyTest, ExtremeThresholdsDegenerateCleanly) {
  const datasets::Dataset ds =
      datasets::MakeDataset(datasets::DatasetId::kProvGen, kScale);
  const stream::EdgeStream es =
      stream::MakeStream(ds.graph, stream::StreamOrder::kBreadthFirst);

  // threshold_factor so large nothing ever crosses it: every vertex stays
  // in the core, every edge goes through neighborhood expansion.
  HepPartitioner all_low(ConfigFor(ds), /*threshold_factor=*/1e9,
                         /*lambda=*/1.1, /*epsilon=*/1.0);
  for (const stream::StreamEdge& e : es) all_low.Ingest(e);
  EXPECT_EQ(all_low.HighDegreeCount(), 0u);
  EXPECT_EQ(engine::FindCounter(FinalStatsOf(all_low), "hep_fallback_edges",
                                1),
            0u);

  // threshold_factor so small every vertex is promoted on first sight:
  // everything falls back to the streamed HDRF rule.
  HepPartitioner all_high(ConfigFor(ds), /*threshold_factor=*/1e-9,
                          /*lambda=*/1.1, /*epsilon=*/1.0);
  for (const stream::StreamEdge& e : es) all_high.Ingest(e);
  EXPECT_GT(all_high.HighDegreeCount(), 0u);
  EXPECT_EQ(engine::FindCounter(FinalStatsOf(all_high), "hep_core_edges", 1),
            0u);
  // Both degenerate settings still satisfy every base-class invariant.
  EXPECT_EQ(all_low.EdgesAssigned(), es.size());
  EXPECT_EQ(all_high.EdgesAssigned(), es.size());
}

TEST(HepPropertyTest, HardCapacityKeepsEdgeBalanceBounded) {
  // The capacity filter admits at most max_imbalance x perfect share + 1
  // edge per part, whatever the neighborhood scores say.
  const datasets::Dataset ds =
      datasets::MakeDataset(datasets::DatasetId::kProvGen, kScale);
  const stream::EdgeStream es =
      stream::MakeStream(ds.graph, stream::StreamOrder::kBreadthFirst);
  PartitionerConfig config = ConfigFor(ds);
  config.max_imbalance = 1.05;
  HepPartitioner p(config, /*threshold_factor=*/4.0, /*lambda=*/1.1,
                   /*epsilon=*/1.0);
  for (const stream::StreamEdge& e : es) p.Ingest(e);
  EXPECT_LE(p.EdgeBalance(),
            1.05 + 8.0 / static_cast<double>(es.size()) + 1e-9);
}

TEST(HepPropertyTest, HepBeatsHdrfOnReplicationFactor) {
  // The tentpole claim (ISSUE acceptance): splitting out the hubs and
  // placing core edges by neighborhood expansion replicates less than
  // degree-blind HDRF on at least one Table 1 dataset at k=8 —
  // MusicBrainz here; on DBLP hep instead trades ~6% RF for a much
  // tighter edge balance (the hard capacity at work).
  const datasets::Dataset ds =
      datasets::MakeDataset(datasets::DatasetId::kMusicBrainz, kScale);
  const stream::EdgeStream es =
      stream::MakeStream(ds.graph, stream::StreamOrder::kBreadthFirst);
  HdrfPartitioner hdrf(ConfigFor(ds), /*lambda=*/1.1, /*epsilon=*/1.0);
  HepPartitioner hep(ConfigFor(ds), /*threshold_factor=*/4.0, /*lambda=*/1.1,
                     /*epsilon=*/1.0);
  for (const stream::StreamEdge& e : es) {
    hdrf.Ingest(e);
    hep.Ingest(e);
  }
  EXPECT_LT(hep.ReplicationFactor(), hdrf.ReplicationFactor());
  // ...without giving the balance away past the hard cap.
  EXPECT_LE(hep.EdgeBalance(),
            1.1 + 8.0 / static_cast<double>(es.size()) + 1e-9);
}

// ----------------------------------------------------- readout hardening
//
// These readouts are the public quality surface — serve handlers and tools
// pass through ids straight from clients, so out-of-range input must read
// as "not there", never as an out-of-bounds index (ASan pins the latter).

TEST(EdgePartitionReadoutTest, OutOfRangeReadoutsReturnEmptyNotUB) {
  const datasets::Dataset ds =
      datasets::MakeDataset(datasets::DatasetId::kProvGen, kScale);
  const stream::EdgeStream es =
      stream::MakeStream(ds.graph, stream::StreamOrder::kBreadthFirst);
  HdrfPartitioner p(ConfigFor(ds), /*lambda=*/1.1, /*epsilon=*/1.0);
  for (size_t i = 0; i < 64 && i < es.size(); ++i) p.Ingest(es[i]);

  // Part id past k: load 0, no replica — not loads_[p] on a vector of 8.
  EXPECT_EQ(p.EdgeLoad(8), 0u);
  EXPECT_EQ(p.EdgeLoad(0xFFFFFFFFu), 0u);
  EXPECT_FALSE(p.IsReplicaOf(es[0].u, 8));
  EXPECT_FALSE(p.IsReplicaOf(es[0].u, 0xFFFFFFFFu));
  // Vertex the stream never produced: false/0, not a table walk off the end.
  const graph::VertexId never = 0x7FFFFFF0u;
  EXPECT_FALSE(p.IsReplicaOf(never, 0));
  EXPECT_EQ(p.ReplicaCount(never), 0u);
}

// ------------------------------------------------- batch-split determinism

TEST(EdgePartitionDeterminismTest, BatchSplitsNeverChangePlacements) {
  const datasets::Dataset ds =
      datasets::MakeDataset(datasets::DatasetId::kLubm100, kScale);
  const stream::EdgeStream es =
      stream::MakeStream(ds.graph, stream::StreamOrder::kBreadthFirst);
  const std::vector<stream::StreamEdge> all(es.begin(), es.end());
  const engine::EngineOptions options = test_util::OptionsFor(ds);

  for (const char* spec : {"hdrf:lambda=1.1", "dbh", "hep:threshold_factor=4"}) {
    SCOPED_TRACE(spec);
    auto run = [&](size_t batch) {
      auto p = test_util::MakeBackend(spec, options, ds);
      EXPECT_NE(p, nullptr);
      for (size_t i = 0; i < all.size(); i += batch) {
        p->IngestBatch(std::span<const stream::StreamEdge>(
            all.data() + i, std::min(batch, all.size() - i)));
      }
      p->Finalize();
      return std::pair{FinalStatsOf(*p), test_util::QualityOf(*p, ds)};
    };
    const auto reference = run(1);
    for (const size_t batch : {size_t{3}, size_t{64}, size_t{1024}}) {
      EXPECT_EQ(run(batch), reference) << "batch=" << batch;
    }
  }
}

// --------------------------------------------------- source-kind diffs
//
// file_stream_smoke_test already proves the VERTEX quality triple is
// source-independent for every registered backend (including hdrf/dbh);
// this leg pins the EDGE triple — replica counters and placement hash —
// across RAM, binary file, text file and lazy generator sources.

TEST(EdgePartitionDeterminismTest, EdgeTripleIdenticalAcrossAllSourceKinds) {
  const datasets::Dataset ds =
      datasets::MakeDataset(datasets::DatasetId::kProvGen, kScale);
  const engine::EngineOptions options = test_util::OptionsFor(ds);

  const std::string binary_path = TempPath("provgen.les");
  const std::string text_path = TempPath("provgen_text.les");
  for (auto [path, format] :
       {std::pair{binary_path, io::StreamFormat::kBinary},
        std::pair{text_path, io::StreamFormat::kText}}) {
    auto source = engine::MakeEdgeSource(ds, stream::StreamOrder::kCanonical);
    io::WriteEdgeStream(path, ds.registry, ds.NumVertices(), source.get(),
                        format);
  }

  for (const char* spec : {"hdrf:lambda=1.1", "dbh", "hep:threshold_factor=4"}) {
    SCOPED_TRACE(spec);
    auto drive = [&](engine::EdgeSource& source) {
      auto p = test_util::MakeBackend(spec, options, ds);
      EXPECT_NE(p, nullptr);
      source.Reset();
      engine::Drive(p.get(), &source);
      return FinalStatsOf(*p);
    };

    auto ram = engine::MakeEdgeSource(ds, stream::StreamOrder::kCanonical);
    const engine::StatCounters reference = drive(*ram);
    EXPECT_GT(engine::FindCounter(reference, "edge_assignments", 0), 0u);

    io::FileEdgeSource binary(binary_path);
    EXPECT_EQ(drive(binary), reference) << "binary file stream diverged";

    io::FileEdgeSource text(text_path);
    EXPECT_EQ(drive(text), reference) << "text file stream diverged";

    engine::GeneratorEdgeSource lazy(datasets::DatasetId::kProvGen, kScale,
                                     stream::StreamOrder::kCanonical);
    EXPECT_EQ(drive(lazy), reference) << "lazy generator stream diverged";
  }
}

// ------------------------------------------------------------ checkpoints

TEST(EdgePartitionCheckpointTest, MidStreamRoundTripFinishesBitIdentically) {
  const datasets::Dataset ds =
      datasets::MakeDataset(datasets::DatasetId::kProvGen, kScale);
  const stream::EdgeStream es =
      stream::MakeStream(ds.graph, stream::StreamOrder::kBreadthFirst);
  const size_t half = es.size() / 2;

  for (const char* which : {"hdrf", "dbh", "hep"}) {
    SCOPED_TRACE(which);
    auto make = [&]() -> std::unique_ptr<EdgePartitioner> {
      if (std::string(which) == "hdrf") {
        return std::make_unique<HdrfPartitioner>(ConfigFor(ds), 1.1, 1.0);
      }
      if (std::string(which) == "hep") {
        return std::make_unique<HepPartitioner>(ConfigFor(ds), 4.0, 1.1, 1.0);
      }
      return std::make_unique<DbhPartitioner>(ConfigFor(ds));
    };

    auto baseline = make();
    for (const stream::StreamEdge& e : es) baseline->Ingest(e);
    baseline->Finalize();

    const std::string path = TempPath(std::string(which) + "_half.loomck");
    {
      auto doomed = make();
      for (size_t i = 0; i < half; ++i) doomed->Ingest(es[i]);
      io::CheckpointWriter w;
      std::string error;
      ASSERT_TRUE(doomed->SaveState(&w, &error)) << error;
      w.Commit(path);
    }

    auto resumed = make();
    io::CheckpointReader r(path);
    std::string error;
    ASSERT_TRUE(resumed->RestoreState(&r, &error)) << error;
    for (size_t i = half; i < es.size(); ++i) resumed->Ingest(es[i]);
    resumed->Finalize();

    EXPECT_EQ(FinalStatsOf(*resumed), FinalStatsOf(*baseline));
    EXPECT_EQ(test_util::QualityOf(*resumed, ds),
              test_util::QualityOf(*baseline, ds));
  }
}

TEST(EdgePartitionCheckpointTest, HdrfParameterMismatchIsRejected) {
  const datasets::Dataset ds =
      datasets::MakeDataset(datasets::DatasetId::kProvGen, kScale);
  const stream::EdgeStream es =
      stream::MakeStream(ds.graph, stream::StreamOrder::kBreadthFirst);

  const std::string path = TempPath("hdrf_lambda.loomck");
  {
    HdrfPartitioner p(ConfigFor(ds), /*lambda=*/1.1, /*epsilon=*/1.0);
    for (size_t i = 0; i < 64 && i < es.size(); ++i) p.Ingest(es[i]);
    io::CheckpointWriter w;
    std::string error;
    ASSERT_TRUE(p.SaveState(&w, &error)) << error;
    w.Commit(path);
  }

  HdrfPartitioner other(ConfigFor(ds), /*lambda=*/2.0, /*epsilon=*/1.0);
  io::CheckpointReader r(path);
  std::string error;
  EXPECT_FALSE(other.RestoreState(&r, &error));
  EXPECT_NE(error.find("lambda"), std::string::npos) << error;
}

TEST(EdgePartitionCheckpointTest, HepParameterMismatchIsRejected) {
  const datasets::Dataset ds =
      datasets::MakeDataset(datasets::DatasetId::kProvGen, kScale);
  const stream::EdgeStream es =
      stream::MakeStream(ds.graph, stream::StreamOrder::kBreadthFirst);

  const std::string path = TempPath("hep_threshold.loomck");
  {
    HepPartitioner p(ConfigFor(ds), /*threshold_factor=*/4.0, /*lambda=*/1.1,
                     /*epsilon=*/1.0);
    for (size_t i = 0; i < 64 && i < es.size(); ++i) p.Ingest(es[i]);
    io::CheckpointWriter w;
    std::string error;
    ASSERT_TRUE(p.SaveState(&w, &error)) << error;
    w.Commit(path);
  }

  HepPartitioner other(ConfigFor(ds), /*threshold_factor=*/2.0,
                       /*lambda=*/1.1, /*epsilon=*/1.0);
  io::CheckpointReader r(path);
  std::string error;
  EXPECT_FALSE(other.RestoreState(&r, &error));
  EXPECT_NE(error.find("threshold_factor"), std::string::npos) << error;
}

TEST(EdgePartitionCheckpointTest, RestoreIntoUsedInstanceIsRejected) {
  const datasets::Dataset ds =
      datasets::MakeDataset(datasets::DatasetId::kProvGen, kScale);
  const stream::EdgeStream es =
      stream::MakeStream(ds.graph, stream::StreamOrder::kBreadthFirst);

  const std::string path = TempPath("dbh_used.loomck");
  {
    DbhPartitioner p(ConfigFor(ds));
    p.Ingest(es[0]);
    io::CheckpointWriter w;
    std::string error;
    ASSERT_TRUE(p.SaveState(&w, &error)) << error;
    w.Commit(path);
  }

  DbhPartitioner used(ConfigFor(ds));
  used.Ingest(es[1]);
  io::CheckpointReader r(path);
  std::string error;
  EXPECT_FALSE(used.RestoreState(&r, &error));
  EXPECT_NE(error.find("fresh"), std::string::npos) << error;
}

// A checkpoint whose scalar counters disagree with its tables must be
// rejected with a "counter desync" error, not silently adopted — same
// discipline as DynamicGraph::LoadFrom. The desynced files are crafted
// with the public writer against the documented edge_state layout.
TEST(EdgePartitionCheckpointTest, CounterDesyncIsRejected) {
  struct Craft {
    const char* name;
    uint64_t edges_assigned;
    uint64_t replica_total;
    uint64_t vertices_seen;
  };
  // loads sum to 3; masks hold 4 bits over 2 vertices.
  for (const Craft& c : {Craft{"bad_loads", 7, 4, 2},
                         Craft{"bad_replicas", 3, 9, 2},
                         Craft{"bad_vertices", 3, 4, 1}}) {
    SCOPED_TRACE(c.name);
    const std::string path = TempPath(std::string(c.name) + ".loomck");
    io::CheckpointWriter w;
    w.BeginSection("edge_state");
    w.U32(8);                   // k
    w.U32(1);                   // words per vertex
    w.U64(c.edges_assigned);
    w.U64(0x12345678u);         // hash (not validated semantically)
    w.U64(c.replica_total);
    w.U64(c.vertices_seen);
    w.PodVec(std::vector<uint64_t>{2, 1, 0, 0, 0, 0, 0, 0});  // loads
    w.PodVec(std::vector<uint32_t>{2, 1});                    // degrees
    w.PodVec(std::vector<uint64_t>{0b11, 0b100});             // replica masks
    w.EndSection();
    w.Commit(path);

    PartitionerConfig config;
    config.k = 8;
    DbhPartitioner p(config);
    io::CheckpointReader r(path);
    std::string error;
    EXPECT_FALSE(p.RestoreState(&r, &error));
    EXPECT_NE(error.find("counter desync"), std::string::npos) << error;
  }
}

// ------------------------------------------------------------ split-merge

// Records a live run's per-edge placements through the same observer path
// Session uses, so the offline rebalancer is tested against exactly what
// `--edge-out` would have written.
std::vector<EdgeAssignmentRecord> RecordRun(EdgePartitioner* p,
                                            const stream::EdgeStream& es) {
  io::MemoryEdgeAssignmentSink sink;
  io::EdgeAssignmentSinkObserver observer(&sink);
  p->SetObserver(&observer);
  for (const stream::StreamEdge& e : es) p->Ingest(e);
  p->Finalize();
  std::vector<EdgeAssignmentRecord> records;
  records.reserve(sink.records().size());
  for (const auto& r : sink.records()) {
    records.push_back({r.u, r.v, r.partition});
  }
  return records;
}

TEST(SplitMergeTest, RecordedTripleMatchesLiveRunExactly) {
  const datasets::Dataset ds =
      datasets::MakeDataset(datasets::DatasetId::kProvGen, kScale);
  const stream::EdgeStream es =
      stream::MakeStream(ds.graph, stream::StreamOrder::kBreadthFirst);
  HdrfPartitioner p(ConfigFor(ds, 16), /*lambda=*/1.1, /*epsilon=*/1.0);
  const std::vector<EdgeAssignmentRecord> records = RecordRun(&p, es);
  ASSERT_EQ(records.size(), es.size());

  // EvaluateMerged over the identity mapping must reproduce the live
  // backend's triple bit-for-bit — same FNV-1a, same RF, same balance.
  std::vector<graph::PartitionId> identity(16);
  for (uint32_t i = 0; i < 16; ++i) identity[i] = i;
  const EdgeQuality q = EvaluateMerged(records, identity, 16);
  EXPECT_EQ(q.edge_assignment_hash, p.EdgeAssignmentHash());
  EXPECT_DOUBLE_EQ(q.replication_factor, p.ReplicationFactor());
  EXPECT_DOUBLE_EQ(q.edge_balance, p.EdgeBalance());
}

TEST(SplitMergeTest, MergeRespectsCapAndBeatsNaiveModulo) {
  const datasets::Dataset ds =
      datasets::MakeDataset(datasets::DatasetId::kProvGen, kScale);
  const stream::EdgeStream es =
      stream::MakeStream(ds.graph, stream::StreamOrder::kBreadthFirst);
  HdrfPartitioner p(ConfigFor(ds, 16), /*lambda=*/1.1, /*epsilon=*/1.0);
  const std::vector<EdgeAssignmentRecord> records = RecordRun(&p, es);

  // HDRF at k=16 on this tiny BFS stream is visibly skewed (edge balance
  // ~1.37), so cap 1.1 is provably infeasible for ANY pairing of the 16
  // atoms; 1.3 is tight but satisfiable — and still tighter than the
  // input's own balance, so the merge IMPROVES balance while merging.
  SplitMergeOptions options;
  options.target_k = 8;
  options.balance_cap = 1.3;
  SplitMergeResult result;
  std::string error;
  ASSERT_TRUE(SplitMerge(records, options, &result, &error)) << error;

  EXPECT_EQ(result.input_parts, 16u);
  EXPECT_EQ(result.input_quality.edge_assignment_hash,
            p.EdgeAssignmentHash());

  // Every atom maps into [0, target_k) and every final part is non-empty.
  ASSERT_EQ(result.atom_to_part.size(), 16u);
  std::set<graph::PartitionId> used(result.atom_to_part.begin(),
                                    result.atom_to_part.end());
  EXPECT_EQ(used.size(), 8u);
  for (graph::PartitionId part : used) EXPECT_LT(part, 8u);

  // The hard cap held: balance_cap x m / target_k per part.
  EXPECT_LE(result.quality.edge_balance, options.balance_cap + 1e-9);

  // Overlap-greedy merging never replicates more than degree-blind
  // modulo-folding of the same atoms (the ISSUE acceptance criterion).
  const EdgeQuality naive =
      EvaluateMerged(records, NaiveModuloMerge(16, 8), 8);
  EXPECT_LE(result.quality.replication_factor, naive.replication_factor);
  // And never more than the unmerged input (merging can only co-locate).
  EXPECT_LE(result.quality.replication_factor,
            result.input_quality.replication_factor + 1e-12);
}

TEST(SplitMergeTest, TargetEqualToInputIsIdentity) {
  const datasets::Dataset ds =
      datasets::MakeDataset(datasets::DatasetId::kProvGen, kScale);
  const stream::EdgeStream es =
      stream::MakeStream(ds.graph, stream::StreamOrder::kBreadthFirst);
  HdrfPartitioner p(ConfigFor(ds, 8), /*lambda=*/1.1, /*epsilon=*/1.0);
  const std::vector<EdgeAssignmentRecord> records = RecordRun(&p, es);

  SplitMergeOptions options;
  options.target_k = 8;
  SplitMergeResult result;
  std::string error;
  ASSERT_TRUE(SplitMerge(records, options, &result, &error)) << error;
  EXPECT_EQ(result.quality.edge_assignment_hash,
            result.input_quality.edge_assignment_hash);
  EXPECT_DOUBLE_EQ(result.quality.replication_factor,
                   result.input_quality.replication_factor);
}

TEST(SplitMergeTest, InvalidTargetsAndInfeasibleCapsFailActionably) {
  // Three atoms of 10 edges each over disjoint vertices.
  std::vector<EdgeAssignmentRecord> records;
  for (uint32_t atom = 0; atom < 3; ++atom) {
    for (uint32_t i = 0; i < 10; ++i) {
      const graph::VertexId base = atom * 100 + 2 * i;
      records.push_back({base, base + 1, atom});
    }
  }

  SplitMergeOptions options;
  SplitMergeResult result;
  std::string error;

  // target_k = 0 and target_k > k' are input errors, not crashes.
  options.target_k = 0;
  EXPECT_FALSE(SplitMerge(records, options, &result, &error));
  EXPECT_NE(error.find("--rebalance-to"), std::string::npos) << error;
  options.target_k = 4;
  EXPECT_FALSE(SplitMerge(records, options, &result, &error));
  EXPECT_NE(error.find("--rebalance-to"), std::string::npos) << error;

  // 3 -> 2 under cap 1.0: the cap is 15 edges/part but any merged pair
  // holds 20, so no feasible merge exists. The error says which knob to
  // raise instead of looping forever or asserting.
  options.target_k = 2;
  options.balance_cap = 1.0;
  EXPECT_FALSE(SplitMerge(records, options, &result, &error));
  EXPECT_NE(error.find("balance"), std::string::npos) << error;

  // The same merge goes through once the cap allows 20-edge parts.
  options.balance_cap = 1.5;
  EXPECT_TRUE(SplitMerge(records, options, &result, &error)) << error;
  std::set<graph::PartitionId> used(result.atom_to_part.begin(),
                                    result.atom_to_part.end());
  EXPECT_EQ(used.size(), 2u);
}

TEST(SplitMergeTest, OverlapGreedyPrefersSharedVertices) {
  // Atoms 0 and 2 share every vertex; atom 1 is disjoint. The greedy must
  // fold 0 and 2 together (removing all their replicas) rather than any
  // overlap-free pair.
  std::vector<EdgeAssignmentRecord> records;
  for (uint32_t i = 0; i < 8; ++i) {
    records.push_back({2 * i, 2 * i + 1, 0});
    records.push_back({2 * i, 2 * i + 1, 2});
    records.push_back({1000 + 2 * i, 1000 + 2 * i + 1, 1});
  }
  SplitMergeOptions options;
  options.target_k = 2;
  options.balance_cap = 2.0;
  SplitMergeResult result;
  std::string error;
  ASSERT_TRUE(SplitMerge(records, options, &result, &error)) << error;
  EXPECT_EQ(result.atom_to_part[0], result.atom_to_part[2]);
  EXPECT_NE(result.atom_to_part[0], result.atom_to_part[1]);
  // Folding the duplicated atoms halves their replica contribution.
  EXPECT_LT(result.quality.replication_factor,
            result.input_quality.replication_factor);
}

TEST(SplitMergeTest, LoadRejectsMalformedLinesWithLineNumbers) {
  const std::string good = TempPath("assign_good.tsv");
  {
    std::ofstream out(good);
    out << "10\t20\t3\n20\t30\t0\n";
  }
  std::vector<EdgeAssignmentRecord> records;
  std::string error;
  ASSERT_TRUE(LoadEdgeAssignments(good, &records, &error)) << error;
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].u, 10u);
  EXPECT_EQ(records[0].v, 20u);
  EXPECT_EQ(records[0].partition, 3u);

  struct BadFile {
    const char* name;
    const char* contents;
    const char* expect_in_error;
  };
  for (const BadFile& bad :
       {BadFile{"assign_short.tsv", "10\t20\t3\n10\t20\n", ":2:"},
        BadFile{"assign_text.tsv", "10\tbanana\t3\n", ":1:"},
        BadFile{"assign_empty.tsv", "", "empty"}}) {
    SCOPED_TRACE(bad.name);
    const std::string path = TempPath(bad.name);
    std::ofstream(path) << bad.contents;
    records.clear();
    error.clear();
    EXPECT_FALSE(LoadEdgeAssignments(path, &records, &error));
    EXPECT_NE(error.find(bad.expect_in_error), std::string::npos) << error;
  }

  EXPECT_FALSE(LoadEdgeAssignments(TempPath("nonexistent.tsv"), &records,
                                   &error));
}

// ------------------------------------------------------------- file sink

TEST(EdgeAssignmentSinkTest, FileSinkWritesOneLinePerEdgeInStreamOrder) {
  const std::string path = TempPath("edges.tsv");
  {
    io::FileEdgeAssignmentSink sink(path);
    sink.Append(0, 10, 20, 3);
    sink.Append(1, 20, 30, 0);
    sink.Flush();
    EXPECT_EQ(sink.edges_written(), 2u);
  }
  std::ifstream in(path);
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line, "10\t20\t3");
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line, "20\t30\t0");
  EXPECT_FALSE(std::getline(in, line));
}

}  // namespace
}  // namespace edge
}  // namespace partition
}  // namespace loom
