#!/usr/bin/env bash
# Build Release, run the throughput benches, and diff the fresh
# BENCH_throughput.json against the committed baseline.
#
#   tools/run_bench.sh            # full: table2 + micro_matcher + diff
#   tools/run_bench.sh --fast     # skip the google-benchmark micro suite
#
# Env knobs (see bench/bench_common.h): LOOM_BENCH_SCALE, LOOM_BENCH_WINDOW.
#
# Backend selection goes through engine::PartitionerRegistry specs: set
# LOOM_BENCH_SYSTEMS to a ';'-separated list of "name" or
# "name:key=value,..." strings, e.g.
#
#   LOOM_BENCH_SYSTEMS="fennel;loom:window_size=2000,alpha=0.5" \
#       tools/run_bench.sh --fast
#
# Any key accepted by engine::EngineOptions works (loom_partition
# --help-opts lists them). Custom selections are exploratory: they are not
# comparable to the committed baseline, so the quality diff is skipped.
#
# In default mode the diff FAILS if partition quality (edge-cut / imbalance
# / assignment hash) differs from the baseline; throughput changes only
# warn. The default run also records the loom-sharded shard sweep
# (S = 1/2/4 at the paper window, eps + speedup vs single-threaded loom +
# quality triple) into the same JSON, plus a file_stream section (loom
# replayed from a freshly written io::FileEdgeSource binary stream at the
# paper window — eps, eps_vs_inmemory and the quality triple, which
# diff_bench.py guards as "loom@file"); the bench itself aborts if the
# shard sweep or the file replay diverges from loom's assignment hash.
# ctest additionally guards the quality triples at tiny scale via the
# `bench_smoke` test (table2_throughput --smoke vs the committed
# BENCH_smoke.json) and the multi-source differential via
# `file_stream_smoke_test` (all 5 backends, RAM vs binary file vs text
# file vs lazy generator source). The JSON also carries a timing-only
# `simd_kernels` section (util::simd ns/op, scalar vs active dispatch
# level); force a level for the whole run with LOOM_SIMD=scalar|sse2|avx2
# (quality must not move — the SIMD differential suites enforce it).

set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=${LOOM_BENCH_BUILD_DIR:-build-bench}
FAST=0
[[ "${1:-}" == "--fast" ]] && FAST=1

cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release > /dev/null
cmake --build "$BUILD_DIR" -j --target table2_throughput micro_matcher

NEW_JSON=$BUILD_DIR/BENCH_throughput.new.json
LOOM_BENCH_JSON="$NEW_JSON" "./$BUILD_DIR/table2_throughput"

if [[ $FAST -eq 0 ]]; then
  echo
  "./$BUILD_DIR/micro_matcher" --benchmark_min_time=0.1
fi

echo
if [[ -n "${LOOM_BENCH_SYSTEMS:-}" ]]; then
  echo "LOOM_BENCH_SYSTEMS is set (custom backend selection); skipping the"
  echo "baseline quality diff. Results: $NEW_JSON"
elif [[ -f BENCH_throughput.json ]]; then
  python3 tools/diff_bench.py BENCH_throughput.json "$NEW_JSON"
else
  echo "no committed BENCH_throughput.json baseline; seeding it from this run"
  cp "$NEW_JSON" BENCH_throughput.json
fi
