#include "util/csv_writer.h"

namespace loom {
namespace util {

std::string CsvWriter::Escape(const std::string& cell) {
  bool needs_quote = cell.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quote) return cell;
  std::string out = "\"";
  for (char ch : cell) {
    if (ch == '"') out += "\"\"";
    else out += ch;
  }
  out += '"';
  return out;
}

void CsvWriter::WriteRow(const std::vector<std::string>& cells) {
  for (size_t i = 0; i < cells.size(); ++i) {
    if (i) os_ << ',';
    os_ << Escape(cells[i]);
  }
  os_ << '\n';
}

}  // namespace util
}  // namespace loom
