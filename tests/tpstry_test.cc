#include "tpstry/tpstry.h"

#include <gtest/gtest.h>

#include <bit>
#include <set>

#include "datasets/dataset_registry.h"
#include "datasets/workloads.h"
#include "tpstry/subgraph_enumerator.h"

namespace loom {
namespace tpstry {
namespace {

using graph::LabelRegistry;
using graph::PatternGraph;

// ---------------------------------------------------- subgraph enumeration

TEST(SubgraphEnumeratorTest, PathSubsets) {
  // a-b-c path: connected subsets = {e0}, {e1}, {e0,e1}.
  PatternGraph p = PatternGraph::Path({0, 1, 2});
  auto masks = ConnectedEdgeSubsets(p);
  EXPECT_EQ(masks, (std::vector<EdgeMask>{1, 2, 3}));
}

TEST(SubgraphEnumeratorTest, TriangleSubsets) {
  PatternGraph t = PatternGraph::Cycle({0, 1, 2});
  auto masks = ConnectedEdgeSubsets(t);
  // All 7 non-empty subsets of a triangle are connected.
  EXPECT_EQ(masks.size(), 7u);
}

TEST(SubgraphEnumeratorTest, DisconnectedSubsetsExcluded) {
  // Path a-b-c-d: {e0, e2} (the two end edges) is disconnected.
  PatternGraph p = PatternGraph::Path({0, 1, 2, 3});
  auto masks = ConnectedEdgeSubsets(p);
  EXPECT_EQ(std::count(masks.begin(), masks.end(), EdgeMask{0b101}), 0);
  // 1,2,4 (singles), 3,6 (pairs), 7 (all) = 6 connected subsets.
  EXPECT_EQ(masks.size(), 6u);
}

TEST(SubgraphEnumeratorTest, SortedByPopcount) {
  PatternGraph p = PatternGraph::Cycle({0, 1, 2, 3});
  auto masks = ConnectedEdgeSubsets(p);
  for (size_t i = 0; i + 1 < masks.size(); ++i) {
    EXPECT_LE(std::popcount(masks[i]), std::popcount(masks[i + 1]));
  }
}

TEST(SubgraphEnumeratorTest, IsConnectedSubsetBasics) {
  PatternGraph p = PatternGraph::Path({0, 1, 2, 3});
  EXPECT_FALSE(IsConnectedSubset(p, 0));
  EXPECT_TRUE(IsConnectedSubset(p, 0b001));
  EXPECT_TRUE(IsConnectedSubset(p, 0b011));
  EXPECT_FALSE(IsConnectedSubset(p, 0b101));
  EXPECT_TRUE(IsConnectedSubset(p, 0b111));
}

TEST(SubgraphEnumeratorTest, SubgraphFromMaskRenumbersDensely) {
  PatternGraph p = PatternGraph::Path({7, 8, 9});
  PatternGraph sub = SubgraphFromMask(p, 0b10);  // edge (1,2) only
  EXPECT_EQ(sub.NumVertices(), 2u);
  EXPECT_EQ(sub.NumEdges(), 1u);
  EXPECT_EQ(sub.label(0), 8);
  EXPECT_EQ(sub.label(1), 9);
  EXPECT_TRUE(sub.HasEdge(0, 1));
}

// ------------------------------------------------------------------- trie

class Fig1TrieTest : public ::testing::Test {
 protected:
  Fig1TrieTest()
      : values_(4, 251, 0xC0FFEE), calc_(&values_), trie_(&calc_, 0.4) {
    workload_ = datasets::Figure1Workload(&registry_);
    for (const auto& q : workload_.queries()) {
      trie_.AddQuery(q.pattern, q.frequency);
    }
  }

  LabelRegistry registry_;
  query::Workload workload_;
  signature::LabelValues values_;
  signature::SignatureCalculator calc_;
  Tpstry trie_;
};

TEST_F(Fig1TrieTest, NodeCountMatchesFig2) {
  // Fig. 2 structure: root + {a-b, b-c, c-d} + {a-b-a, b-a-b, a-b-c, b-c-d}
  // + {aba-b path, a-b-c-d} + {abab square} = 11 nodes.
  EXPECT_EQ(trie_.NumNodes(), 11u);
}

TEST_F(Fig1TrieTest, MotifsAtFortyPercentMatchFig2) {
  // T = 40%: motifs are a-b (100%), b-c (70%), a-b-c (70%).
  auto motifs = trie_.MotifIds();
  EXPECT_EQ(motifs.size(), 3u);
  std::multiset<uint32_t> edge_counts;
  for (uint32_t id : motifs) edge_counts.insert(trie_.node(id).num_edges);
  EXPECT_EQ(edge_counts, (std::multiset<uint32_t>{1, 1, 2}));
  EXPECT_EQ(trie_.MaxMotifEdges(), 2u);
}

TEST_F(Fig1TrieTest, SupportsAreAntiMonotone) {
  for (uint32_t id = 1; id < trie_.NumNodes(); ++id) {
    const TpsNode& n = trie_.node(id);
    for (uint32_t cid : n.children) {
      EXPECT_LE(trie_.NormalizedSupport(cid) - 1e-9,
                trie_.NormalizedSupport(id))
          << "child " << cid << " of " << id;
    }
  }
}

TEST_F(Fig1TrieTest, RootChildrenAreSingleEdges) {
  for (uint32_t cid : trie_.node(kRootId).children) {
    EXPECT_EQ(trie_.node(cid).num_edges, 1u);
  }
  EXPECT_EQ(trie_.node(kRootId).children.size(), 3u);  // a-b, b-c, c-d
}

TEST_F(Fig1TrieTest, DagNodeHasTwoParents) {
  // The 3-edge path a-b-a-b can be formed from both 2-edge paths; its trie
  // node therefore has two parents (the DAG property of TPSTry++).
  bool found = false;
  for (uint32_t id = 1; id < trie_.NumNodes(); ++id) {
    const TpsNode& n = trie_.node(id);
    if (n.num_edges == 3 && n.parents.size() >= 2) found = true;
  }
  EXPECT_TRUE(found);
}

TEST_F(Fig1TrieTest, FindSingleEdgeMotif) {
  const graph::LabelId a = registry_.Find("a");
  const graph::LabelId b = registry_.Find("b");
  const graph::LabelId c = registry_.Find("c");
  const graph::LabelId d = registry_.Find("d");
  EXPECT_NE(trie_.FindSingleEdgeMotif(calc_.SingleEdgeSignature(a, b)), nullptr);
  EXPECT_NE(trie_.FindSingleEdgeMotif(calc_.SingleEdgeSignature(b, c)), nullptr);
  // c-d exists in the trie but has support 10% < 40% -> not a motif.
  EXPECT_EQ(trie_.FindSingleEdgeMotif(calc_.SingleEdgeSignature(c, d)), nullptr);
  // a-d never occurs at all.
  EXPECT_EQ(trie_.FindSingleEdgeMotif(calc_.SingleEdgeSignature(a, d)), nullptr);
}

TEST_F(Fig1TrieTest, FindMotifChildFollowsFactorDelta) {
  const graph::LabelId a = registry_.Find("a");
  const graph::LabelId b = registry_.Find("b");
  const graph::LabelId c = registry_.Find("c");
  const TpsNode* ab =
      trie_.FindSingleEdgeMotif(calc_.SingleEdgeSignature(a, b));
  ASSERT_NE(ab, nullptr);
  // Adding a b-c edge to a-b: b reaches degree 2, c degree 1 -> a-b-c motif.
  auto delta = calc_.FactorsForEdgeAddition(b, 2, c, 1);
  const TpsNode* abc = trie_.FindMotifChild(ab->id, delta);
  ASSERT_NE(abc, nullptr);
  EXPECT_EQ(abc->num_edges, 2u);
  // Adding an a-b edge to a-b yields a-b-a or b-a-b: support 30% -> not a
  // motif, so FindMotifChild must reject it.
  auto delta2 = calc_.FactorsForEdgeAddition(a, 1, b, 2);
  EXPECT_EQ(trie_.FindMotifChild(ab->id, delta2), nullptr);
}

TEST_F(Fig1TrieTest, MotifLabelMask) {
  auto mask = trie_.MotifLabelMask(4);
  // Motifs {a-b, b-c, a-b-c} touch labels a, b, c but never d.
  EXPECT_TRUE(mask[registry_.Find("a")]);
  EXPECT_TRUE(mask[registry_.Find("b")]);
  EXPECT_TRUE(mask[registry_.Find("c")]);
  EXPECT_FALSE(mask[registry_.Find("d")]);
}

TEST_F(Fig1TrieTest, ThresholdIsAdjustable) {
  trie_.set_support_threshold(0.05);
  EXPECT_EQ(trie_.MotifIds().size(), trie_.NumNodes() - 1);  // all but root
  trie_.set_support_threshold(0.99);
  EXPECT_EQ(trie_.MotifIds().size(), 1u);  // only a-b at 100%
}

TEST_F(Fig1TrieTest, DumpMentionsMotifs) {
  std::string dump = trie_.Dump(registry_);
  EXPECT_NE(dump.find("[motif]"), std::string::npos);
  EXPECT_NE(dump.find("root"), std::string::npos);
}

TEST(TpstryTest, IsomorphicQuerySubgraphsMerge) {
  // a-b-c and c-b-a are the same graph; adding both must not duplicate
  // nodes, and supports must accumulate.
  LabelRegistry reg;
  const graph::LabelId a = reg.Intern("a");
  const graph::LabelId b = reg.Intern("b");
  const graph::LabelId c = reg.Intern("c");
  signature::LabelValues values(3, 251, 1);
  signature::SignatureCalculator calc(&values);
  Tpstry trie(&calc, 0.4);
  trie.AddQuery(PatternGraph::Path({a, b, c}), 0.5);
  size_t nodes_after_first = trie.NumNodes();
  trie.AddQuery(PatternGraph::Path({c, b, a}), 0.5);
  EXPECT_EQ(trie.NumNodes(), nodes_after_first);
  const auto* node = trie.FindBySignature(
      calc.ComputeSignature(PatternGraph::Path({a, b, c})));
  ASSERT_NE(node, nullptr);
  EXPECT_NEAR(trie.NormalizedSupport(node->id), 1.0, 1e-9);
}

TEST(TpstryTest, SingleEdgeQuery) {
  signature::LabelValues values(2, 251, 1);
  signature::SignatureCalculator calc(&values);
  Tpstry trie(&calc, 0.4);
  trie.AddQuery(PatternGraph::Path({0, 1}), 1.0);
  EXPECT_EQ(trie.NumNodes(), 2u);  // root + a-b
  EXPECT_EQ(trie.MotifIds().size(), 1u);
  EXPECT_EQ(trie.MaxMotifEdges(), 1u);
}

TEST(TpstryTest, NoQueriesMeansNoMotifs) {
  signature::LabelValues values(2, 251, 1);
  signature::SignatureCalculator calc(&values);
  Tpstry trie(&calc, 0.4);
  EXPECT_EQ(trie.MotifIds().size(), 0u);
  EXPECT_EQ(trie.MaxMotifEdges(), 0u);
  EXPECT_EQ(trie.NormalizedSupport(kRootId), 1.0);
}

TEST(TpstryTest, EveryDatasetWorkloadBuilds) {
  for (auto id : datasets::QueryableDatasets()) {
    auto ds = datasets::MakeDataset(id, 0.02);
    signature::LabelValues values(ds.registry.size(), 251, 1);
    signature::SignatureCalculator calc(&values);
    Tpstry trie(&calc, 0.4);
    for (const auto& q : ds.workload.queries()) {
      trie.AddQuery(q.pattern, q.frequency);
    }
    EXPECT_GT(trie.NumNodes(), 1u) << datasets::ToString(id);
    EXPECT_GT(trie.MotifIds().size(), 0u) << datasets::ToString(id);
  }
}

}  // namespace
}  // namespace tpstry
}  // namespace loom
