#include "graph/adjacency_arena.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <string>

namespace loom {
namespace graph {

namespace {

/// Slab size: amortise allocations without holding large mostly-empty
/// slabs for tiny graphs. Pages are carved at mixed strides (geometric
/// chain growth), so the slab is tracked in bytes, not page counts.
constexpr size_t kTargetSlabBytes = 16 * 1024;

uint32_t ClampCapacity(uint64_t requested) {
  if (requested < 1) return 1;
  if (requested > AdjacencyArena::kMaxPageCapacity) {
    return AdjacencyArena::kMaxPageCapacity;
  }
  return static_cast<uint32_t>(requested);
}

/// Bytes a page of `capacity` slots occupies in the slab, header included,
/// rounded so the next page's header stays pointer-aligned.
size_t PageBytes(uint32_t capacity) {
  const size_t raw =
      sizeof(AdjacencyPage) + static_cast<size_t>(capacity) * sizeof(VertexId);
  return (raw + alignof(AdjacencyPage) - 1) & ~(alignof(AdjacencyPage) - 1);
}

}  // namespace

uint32_t AdjacencyArena::ResolvePageCapacity(uint32_t requested) {
  if (requested != 0) return ClampCapacity(requested);
  // Environment default, resolved once per process (same pattern as
  // LOOM_SIMD): lets CI force tiny pages for every suite without plumbing
  // a knob through each test's construction path.
  static const uint32_t env_default = [] {
    const char* s = std::getenv("LOOM_ADJ_PAGE");
    if (s == nullptr || *s == '\0') return kDefaultPageCapacity;
    char* end = nullptr;
    const unsigned long long v = std::strtoull(s, &end, 10);
    if (end == s || *end != '\0' || v < 1 || v > kMaxPageCapacity) {
      std::fprintf(stderr,
                   "loom: ignoring LOOM_ADJ_PAGE='%s' (want an integer in "
                   "[1, %u]); using %u\n",
                   s, kMaxPageCapacity, kDefaultPageCapacity);
      return kDefaultPageCapacity;
    }
    return static_cast<uint32_t>(v);
  }();
  return env_default;
}

void AdjacencyArena::ReserveEntries(uint64_t expected_entries) {
  if (expected_entries == 0) return;
  // Slot bytes plus a header allowance: chains grow geometrically from
  // FirstCapacity(), so the worst case (every vertex low-degree) pays
  // roughly one header per FirstCapacity() entries.
  const uint64_t headers = expected_entries / FirstCapacity() + 1;
  const uint64_t bytes =
      expected_entries * sizeof(VertexId) +
      headers * (sizeof(AdjacencyPage) + alignof(AdjacencyPage));
  if (bytes <= slab_bytes_left_) return;
  // One big slab; whatever was left of the current slab is abandoned (the
  // same waste NewPage accepts when a page doesn't fit).
  slabs_.push_back(std::make_unique<std::byte[]>(bytes));
  slab_cursor_ = slabs_.back().get();
  slab_bytes_left_ = static_cast<size_t>(bytes);
}

AdjacencyPage* AdjacencyArena::NewPage(uint32_t capacity) {
  const size_t bytes = PageBytes(capacity);
  if (slab_bytes_left_ < bytes) {
    // A max-capacity page can exceed the target slab size; give it its own.
    const size_t slab = bytes > kTargetSlabBytes ? bytes : kTargetSlabBytes;
    slabs_.push_back(std::make_unique<std::byte[]>(slab));
    slab_cursor_ = slabs_.back().get();
    slab_bytes_left_ = slab;
  }
  std::byte* p = slab_cursor_;
  slab_cursor_ += bytes;
  slab_bytes_left_ -= bytes;
  AdjacencyPage* page = new (p) AdjacencyPage();
  page->capacity = capacity;
  return page;
}

void AdjacencyArena::Append(VertexId v, VertexId w) {
  assert(v < chains_.size() && "Append on an unreserved chain slot");
  Chain& c = chains_[v];
  // Single-writer: the writer's own count load needs no ordering.
  const uint32_t n = c.count.load(std::memory_order_relaxed);
  if (c.tail == nullptr) {
    c.head = c.tail = NewPage(FirstCapacity());
    c.tail_used = 0;
  } else if (c.tail_used == c.tail->capacity) {
    AdjacencyPage* page = NewPage(NextCapacity(c.tail->capacity));
    c.tail->next = page;  // ordered by the release below
    c.tail = page;
    c.tail_used = 0;
  }
  c.tail->slots()[c.tail_used++] = w;
  // Publish: everything above becomes visible to readers that acquire the
  // new count.
  c.count.store(n + 1, std::memory_order_release);
  ++total_entries_;
}

void AdjacencyArena::SaveChain(io::CheckpointWriter* w, VertexId v) const {
  const NeighborRange r = Neighbors(v);
  w->U64(r.size());
  r.ForEachChunk(
      [w](const VertexId* data, size_t n) { w->PodArray(data, n); });
}

void AdjacencyArena::LoadChain(io::CheckpointReader* r, VertexId v) {
  EnsureSlot(v);
  Chain& c = chains_[v];
  assert(c.count.load(std::memory_order_relaxed) == 0 &&
         "LoadChain into a non-empty chain");
  const uint64_t n = r->U64();
  if (n > std::numeric_limits<uint32_t>::max()) {
    r->Fail("adjacency chain length " + std::to_string(n) +
            " exceeds the 32-bit degree bound (corrupt chain count)");
  }
  uint64_t left = n;
  uint32_t capacity = FirstCapacity();
  while (left > 0) {
    const size_t take =
        left < capacity ? static_cast<size_t>(left) : static_cast<size_t>(capacity);
    AdjacencyPage* page = NewPage(capacity);
    if (c.head == nullptr) {
      c.head = c.tail = page;
    } else {
      c.tail->next = page;
      c.tail = page;
    }
    r->PodArray(page->slots(), take);
    left -= take;
    // A short final read leaves the tail partially filled; later Appends
    // continue from there.
    c.tail_used = static_cast<uint32_t>(take);
    capacity = NextCapacity(capacity);
  }
  // Load runs single-threaded (restore happens before any reader exists).
  c.count.store(static_cast<uint32_t>(n), std::memory_order_relaxed);
  total_entries_ += n;
}

}  // namespace graph
}  // namespace loom
