#include "motif/match_pool.h"

namespace loom {
namespace motif {

MatchHandle MatchPool::Allocate() {
  uint32_t idx;
  if (!free_.empty()) {
    idx = free_.back();
    free_.pop_back();
    ++reused_;
  } else {
    idx = next_index_++;
    assert(idx <= kMatchIndexMask && "match pool exhausted");
    if ((idx >> kChunkBits) >= chunks_.size()) {
      chunks_.push_back(std::make_unique<Slot[]>(kChunkSize));
    }
    ++fresh_;
  }
  Slot& s = slot(idx);
  s.live = true;
  s.match.Reset();
  ++live_;
  return (s.generation << kMatchIndexBits) | idx;
}

void MatchPool::Release(MatchHandle h) {
  assert(IsLive(h));
  const uint32_t idx = MatchIndexOf(h);
  Slot& s = slot(idx);
  s.live = false;
  --live_;
  // Bump the generation so retained copies of `h` read as stale. A slot that
  // exhausts its generation space is retired instead of recycled (ABA-proof;
  // needs 1024 reuses of one slot to ever happen).
  if (++s.generation < kMatchGenerationLimit) free_.push_back(idx);
}

}  // namespace motif
}  // namespace loom
