// Incrementally growable labelled graph.
//
// Streaming partitioners (LDG, Fennel, Loom) see the graph one edge at a
// time; heuristics like "number of neighbours already in partition S" need
// the adjacency of the streamed-so-far prefix. DynamicGraph provides that:
// O(1) amortised edge insertion, label assignment on first sight of a
// vertex, and neighbour iteration.

#ifndef LOOM_GRAPH_DYNAMIC_GRAPH_H_
#define LOOM_GRAPH_DYNAMIC_GRAPH_H_

#include <span>
#include <vector>

#include "graph/neighbor_view.h"
#include "graph/types.h"
#include "io/checkpoint.h"

namespace loom {
namespace graph {

/// Adjacency-list labelled graph supporting online edge insertion. Vertex
/// ids are externally assigned (dense in practice: dataset generators number
/// vertices 0..n-1); the structure grows to accommodate the largest id seen.
/// Implements NeighborView so the LDG/equal-opportunism scoring cores can
/// also run over substituted views (see graph/neighbor_view.h); `final` so
/// direct callers keep devirtualised, inlinable Neighbors() scans.
class DynamicGraph final : public NeighborView {
 public:
  DynamicGraph() = default;

  /// Optionally pre-sizes internal arrays for `n` vertices.
  explicit DynamicGraph(size_t n) { Reserve(n); }

  void Reserve(size_t n);

  /// Records vertex `v` with `label`. Idempotent; relabeling an existing
  /// vertex with a different label is a programming error (asserted).
  void TouchVertex(VertexId v, LabelId label);

  /// Inserts undirected edge (u,v); both endpoints must have been touched.
  /// Duplicate edges are permitted (callers dedupe upstream if needed).
  void AddEdge(VertexId u, VertexId v);

  /// Number of vertex slots (max touched id + 1; untouched slots have
  /// kInvalidLabel and degree 0).
  size_t NumSlots() const { return labels_.size(); }

  /// Number of vertices actually touched.
  size_t NumVertices() const { return num_vertices_; }

  /// Number of inserted edges.
  size_t NumEdges() const { return num_edges_; }

  bool Known(VertexId v) const {
    return v < labels_.size() && labels_[v] != kInvalidLabel;
  }

  LabelId label(VertexId v) const { return labels_[v]; }

  std::span<const VertexId> Neighbors(VertexId v) const override {
    if (v >= adj_.size()) return {};
    return {adj_[v].data(), adj_[v].size()};
  }

  size_t Degree(VertexId v) const { return v < adj_.size() ? adj_[v].size() : 0; }

  /// Writes the graph as checkpoint section `name` (labels, adjacency in
  /// insertion order — neighbour order feeds scoring, so it must survive).
  void SaveTo(io::CheckpointWriter* w, std::string_view name) const;

  /// Restores a SaveTo snapshot; requires this graph to be empty.
  void LoadFrom(io::CheckpointReader* r, std::string_view name);

 private:
  std::vector<LabelId> labels_;
  std::vector<std::vector<VertexId>> adj_;
  size_t num_vertices_ = 0;
  size_t num_edges_ = 0;
};

}  // namespace graph
}  // namespace loom

#endif  // LOOM_GRAPH_DYNAMIC_GRAPH_H_
