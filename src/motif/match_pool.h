// Slab allocator for Match records (Sec. 3's matchList entries).
//
// Matches are born and die at stream rate, and the old
// std::shared_ptr<Match> representation paid a control-block allocation plus
// atomic refcounts for each — and 16 bytes per posting-list entry. A
// MatchHandle is instead a 32-bit generational id: the low bits index a slot
// in a chunked slab (chunks are never moved, so Match& references stay valid
// across allocations), the high bits carry the slot's generation. Releasing
// a slot bumps its generation, so any handle retained by a posting list after
// its match died dereferences to "stale" instead of to a recycled stranger.
// Recycled slots keep their Match's vector capacity — steady-state match
// construction allocates nothing.

#ifndef LOOM_MOTIF_MATCH_POOL_H_
#define LOOM_MOTIF_MATCH_POOL_H_

#include <cassert>
#include <cstdint>
#include <memory>
#include <vector>

#include "io/checkpoint.h"
#include "motif/match.h"

namespace loom {
namespace motif {

/// Generational handle to a pooled Match. 22 index bits (4.2M simultaneously
/// live matches, orders of magnitude above any window's population) and 10
/// generation bits.
using MatchHandle = uint32_t;

inline constexpr uint32_t kMatchIndexBits = 22;
inline constexpr uint32_t kMatchIndexMask = (1u << kMatchIndexBits) - 1;
inline constexpr uint32_t kMatchGenerationLimit = 1u << (32 - kMatchIndexBits);
inline constexpr MatchHandle kNullMatch = ~MatchHandle{0};

inline uint32_t MatchIndexOf(MatchHandle h) { return h & kMatchIndexMask; }
inline uint32_t MatchGenerationOf(MatchHandle h) { return h >> kMatchIndexBits; }

class MatchPool {
 public:
  MatchPool() = default;

  /// Hands out a handle to a cleared Match record (vectors empty but with
  /// whatever capacity the slot's previous tenant grew).
  MatchHandle Allocate();

  /// Recycles the slot behind `h` and invalidates every copy of `h`.
  void Release(MatchHandle h);

  /// True if `h` refers to a currently-allocated match (stale handles from
  /// previous generations of the slot return false).
  bool IsLive(MatchHandle h) const {
    const uint32_t idx = MatchIndexOf(h);
    if (idx >= next_index_) return false;
    const Slot& s = slot(idx);
    return s.live && s.generation == MatchGenerationOf(h);
  }

  /// Dereferences a live handle. References stay valid until Release (slabs
  /// never move).
  Match& Get(MatchHandle h) {
    assert(IsLive(h));
    return slot(MatchIndexOf(h)).match;
  }
  const Match& Get(MatchHandle h) const {
    assert(IsLive(h));
    return slot(MatchIndexOf(h)).match;
  }

  /// Dereference tolerating staleness: nullptr when `h` is not live.
  const Match* Find(MatchHandle h) const {
    return IsLive(h) ? &slot(MatchIndexOf(h)).match : nullptr;
  }

  size_t NumLive() const { return live_; }

  /// Slots created from scratch (each cost one Match construction).
  uint64_t fresh_allocations() const { return fresh_; }

  /// Allocations served by recycling a released slot — each one is a
  /// shared_ptr-era heap allocation avoided.
  uint64_t reused_allocations() const { return reused_; }

  /// Applies `fn(MatchHandle, const Match&)` to every live match, ascending
  /// slot index.
  template <typename Fn>
  void ForEachLive(Fn&& fn) const {
    for (uint32_t idx = 0; idx < next_index_; ++idx) {
      const Slot& s = slot(idx);
      if (s.live) fn((s.generation << kMatchIndexBits) | idx, s.match);
    }
  }

  /// Appends the pool verbatim to the writer's open section. The free-list
  /// order and per-slot generations are preserved exactly: future Allocate
  /// calls must hand out the same handles (and fresh/reused counters) the
  /// uninterrupted run would have, or final stats drift.
  void SaveTo(io::CheckpointWriter* w) const;

  /// Restores a SaveTo snapshot; requires a fresh pool.
  void LoadFrom(io::CheckpointReader* r);

 private:
  struct Slot {
    Match match;
    uint32_t generation = 0;
    bool live = false;
  };

  static constexpr size_t kChunkBits = 9;  // 512 slots per slab
  static constexpr size_t kChunkSize = size_t{1} << kChunkBits;

  Slot& slot(uint32_t idx) {
    return chunks_[idx >> kChunkBits][idx & (kChunkSize - 1)];
  }
  const Slot& slot(uint32_t idx) const {
    return chunks_[idx >> kChunkBits][idx & (kChunkSize - 1)];
  }

  std::vector<std::unique_ptr<Slot[]>> chunks_;
  std::vector<uint32_t> free_;  // recycled slot indices
  uint32_t next_index_ = 0;
  size_t live_ = 0;
  uint64_t fresh_ = 0;
  uint64_t reused_ = 0;
};

}  // namespace motif
}  // namespace loom

#endif  // LOOM_MOTIF_MATCH_POOL_H_
