// Ablation (paper Sec. 6 future work): workload change over time.
//
// We stream the first half of a ProvGen graph under an attribution-dominant
// workload (agent-centred, whose hub motifs give Loom little to exploit),
// then shift to the canonical derivation-dominant workload (whose E-A-E
// motif is highly exploitable). Three Loom configurations are compared on
// the *shifted* workload's ipt:
//   - oracle: knew the final workload all along,
//   - adaptive: calls UpdateWorkload() at the shift (decayed trie supports),
//   - stale: keeps optimising for the original workload.
// The gap stale - adaptive is the recoverable cost of workload drift; the
// gap adaptive - oracle is what only a re-partitioner (the paper's planned
// integration, Sec. 6) could win back, since the first half of the stream is
// already placed.

#include <iostream>

#include "bench_common.h"
#include "core/loom_partitioner.h"
#include "datasets/dataset_registry.h"
#include "engine/session.h"
#include "eval/experiment.h"
#include "query/workload_runner.h"
#include "util/table_writer.h"

namespace {

using namespace loom;

// The pre-shift workload: attribution-heavy (agents are hubs; the only
// motifs are agent-centred and largely un-exploitable).
query::Workload InitialWorkload(graph::LabelRegistry* reg) {
  query::Workload w;
  const graph::LabelId entity = reg->Intern("Entity");
  const graph::LabelId activity = reg->Intern("Activity");
  const graph::LabelId agent = reg->Intern("Agent");
  w.Add("attribution", graph::PatternGraph::Path({entity, activity, agent}),
        0.70);
  w.Add("derivation", graph::PatternGraph::Path({entity, activity, entity}),
        0.30);
  return w;
}

double RunVariant(const datasets::Dataset& ds, const stream::EdgeStream& es,
                  const query::Workload& initial,
                  const query::Workload& final_w, bool adapt, bool oracle) {
  engine::EngineOptions options;
  options.k = 8;
  options.expected_vertices = ds.NumVertices();
  options.expected_edges = ds.NumEdges();
  options.window_size = bench::BenchWindow();

  const query::Workload& start_w = oracle ? final_w : initial;
  std::string error;
  engine::SessionConfig session_config;
  session_config.spec = "loom";
  session_config.options = options;
  auto session = engine::Session::Create(
      session_config, {&start_w, ds.registry.size()}, &error);
  if (session == nullptr) {
    std::cerr << "engine: " << error << "\n";
    std::exit(1);
  }
  // Step the session to the shift point, drift the workload, keep going.
  // Workload drift is a Loom-specific capability reached through the
  // session's backend() escape hatch; the run lifecycle stays Session's.
  engine::EdgeStreamSource source(es);
  const size_t half = es.size() / 2;
  session->IngestSome(source, half);
  if (adapt) {
    auto* loom = dynamic_cast<core::LoomPartitioner*>(&session->backend());
    loom->UpdateWorkload(final_w, /*decay=*/0.2);
  }
  session->IngestSome(source, es.size() - half);
  session->Finish();
  query::ExecutorConfig ex;
  ex.max_seeds = 4000;
  return query::RunWorkload(ds.graph, session->partitioning(), final_w, ex)
      .weighted_ipt;
}

}  // namespace

int main() {
  bench::Banner("Ablation — workload shift (Sec. 6 future work)",
                "Sec. 6, workload-change robustness");

  datasets::Dataset ds =
      datasets::MakeDataset(datasets::DatasetId::kProvGen, bench::BenchScale());
  const stream::EdgeStream es =
      stream::MakeStream(ds.graph, stream::StreamOrder::kBreadthFirst);
  // The post-shift workload is the dataset's canonical, derivation-dominant
  // one; the pre-shift workload is attribution-heavy.
  query::Workload initial_w = InitialWorkload(&ds.registry);
  query::Workload final_w = ds.workload;

  util::TableWriter t({"variant", "ipt on shifted workload"});
  const double oracle =
      RunVariant(ds, es, initial_w, final_w, /*adapt=*/false, /*oracle=*/true);
  const double adaptive =
      RunVariant(ds, es, initial_w, final_w, /*adapt=*/true, /*oracle=*/false);
  const double stale =
      RunVariant(ds, es, initial_w, final_w, /*adapt=*/false, /*oracle=*/false);
  t.AddRow({"oracle (knew final Q)", util::TableWriter::Fmt(oracle, 0)});
  t.AddRow({"adaptive (UpdateWorkload at shift)",
            util::TableWriter::Fmt(adaptive, 0)});
  t.AddRow({"stale (never updated)", util::TableWriter::Fmt(stale, 0)});
  t.Print(std::cout);

  std::cout << "\nExpected shape: oracle <= adaptive <= stale — updating the "
               "TPSTry++ mid-stream\nrecovers part of the ipt a workload "
               "shift costs; the rest is locked into the\nalready-placed "
               "prefix, motivating the paper's planned re-partitioner "
               "integration.\n";
  return 0;
}
