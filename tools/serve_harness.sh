#!/usr/bin/env bash
# Out-of-process acceptance for loom_serve: drive a real server over its
# unix socket with loom_ctl and require the served result to be
# bit-identical to an offline loom_partition run over the same stream —
# then SIGKILL the server mid-service and require --resume plus a client
# re-send from the STATS cursor to land on the same answer.
#
# Leg 1 (per backend: loom, loom-sharded:shards=3):
#   loom_serve <- loom_ctl ingest-file -> FINALIZE -> SNAPSHOT-QUALITY,
#   SIGTERM drain (exit 0), sorted assignment TSV diffed against the
#   offline reference, served cut checked against --evaluate's cut.
# Leg 2: serve with checkpoints, SIGKILL while ingesting, restart with
#   --resume, re-send from the cursor, FINALIZE — same TSV, same quality.
#
# This is the in-process serve_server_test.cc story re-proven across real
# process boundaries, real signals and a real socket.
#
# Usage: tools/serve_harness.sh [BUILD_DIR]   (default: ./build)
set -euo pipefail

BIN_DIR="${1:-build}"
GEN="$BIN_DIR/loom_generate"
PART="$BIN_DIR/loom_partition"
SERVE="$BIN_DIR/loom_serve"
CTL="$BIN_DIR/loom_ctl"
for bin in "$GEN" "$PART" "$SERVE" "$CTL"; do
  if [ ! -x "$bin" ]; then
    echo "serve_harness: missing binary $bin (build the repo first)" >&2
    exit 2
  fi
done

WORKDIR="$(mktemp -d)"
SERVER_PID=""
cleanup() {
  [ -n "$SERVER_PID" ] && kill -9 "$SERVER_PID" 2>/dev/null || true
  rm -rf "$WORKDIR"
}
trap cleanup EXIT

SEED=20260808  # fixed: every leg sees one stream
SOCK="$WORKDIR/loom.sock"

wait_for_socket() {
  for _ in $(seq 1 200); do
    [ -S "$SOCK" ] && return 0
    sleep 0.05
  done
  echo "serve_harness: server never bound $SOCK" >&2
  cat "$WORKDIR/serve.log" >&2 || true
  exit 1
}

echo "== generating fixed-seed stream + workload (seed $SEED)"
"$GEN" --dataset musicbrainz --scale 0.5 \
  --workload-out "$WORKDIR/q.lw" \
  --write-stream "$WORKDIR/s.les" --order bfs --seed "$SEED" >/dev/null 2>&1

for SYSTEM in "loom" "loom-sharded:shards=3"; do
  COMMON=(--workload "$WORKDIR/q.lw" --system "$SYSTEM" --k 8 --window 2000)
  echo "== [$SYSTEM] offline reference"
  "$PART" --input "$WORKDIR/s.les" "${COMMON[@]}" \
    --out "$WORKDIR/ref.tsv" --evaluate 2> "$WORKDIR/ref.log"
  REF_CUT=$(sed -n 's/^edge cut: \([0-9]*\) .*/\1/p' "$WORKDIR/ref.log")
  sort -n "$WORKDIR/ref.tsv" > "$WORKDIR/ref.sorted"
  echo "   cut=$REF_CUT"

  echo "== [$SYSTEM] leg 1: serve + ingest over socket + SIGTERM drain"
  rm -f "$SOCK"
  "$SERVE" --socket "$SOCK" --like "$WORKDIR/s.les" "${COMMON[@]}" \
    --out "$WORKDIR/srv.tsv" 2> "$WORKDIR/serve.log" &
  SERVER_PID=$!
  wait_for_socket
  "$CTL" --socket "$SOCK" ingest-file "$WORKDIR/s.les" >/dev/null
  "$CTL" --socket "$SOCK" finalize >/dev/null
  QUALITY=$("$CTL" --socket "$SOCK" quality)
  SRV_CUT=$(sed -n 's/.* cut=\([0-9]*\) .*/\1/p' <<<"$QUALITY")
  kill -TERM "$SERVER_PID"
  wait "$SERVER_PID" && status=0 || status=$?
  SERVER_PID=""
  if [ "$status" -ne 0 ]; then
    echo "serve_harness: SIGTERM drain exited $status" >&2
    cat "$WORKDIR/serve.log" >&2
    exit 1
  fi
  sort -n "$WORKDIR/srv.tsv" | cmp -s - "$WORKDIR/ref.sorted" || {
    echo "serve_harness: [$SYSTEM] served assignments differ from offline" >&2
    exit 1
  }
  if [ "$SRV_CUT" != "$REF_CUT" ]; then
    echo "serve_harness: [$SYSTEM] served cut $SRV_CUT != offline $REF_CUT" >&2
    exit 1
  fi
  echo "   served == offline (cut=$SRV_CUT, assignments identical), drained clean"
done

SYSTEM="loom"
COMMON=(--workload "$WORKDIR/q.lw" --system "$SYSTEM" --k 8 --window 2000)
echo "== leg 2: SIGKILL mid-ingest, --resume, re-send from STATS cursor"
killed=0
for attempt in $(seq 1 20); do
  rm -f "$SOCK" "$WORKDIR"/ck.loomck "$WORKDIR"/ck.loomck.prev
  "$SERVE" --socket "$SOCK" --like "$WORKDIR/s.les" "${COMMON[@]}" \
    --checkpoint "$WORKDIR/ck.loomck" --checkpoint-every 10000 \
    2> "$WORKDIR/serve2.log" &
  SERVER_PID=$!
  wait_for_socket
  "$CTL" --socket "$SOCK" ingest-file "$WORKDIR/s.les" >/dev/null 2>&1 &
  CTL_PID=$!
  # Kill as soon as the first checkpoint lands; if the ingest finished
  # first the attempt proves nothing — retry.
  while kill -0 "$SERVER_PID" 2>/dev/null && [ ! -f "$WORKDIR/ck.loomck" ]; do
    sleep 0.005
  done
  kill -9 "$SERVER_PID" 2>/dev/null || true
  wait "$SERVER_PID" 2>/dev/null || true
  SERVER_PID=""
  wait "$CTL_PID" 2>/dev/null || true
  if [ -f "$WORKDIR/ck.loomck" ]; then
    killed=1
    echo "   attempt $attempt: SIGKILL landed with a checkpoint on disk"
    break
  fi
done
if [ "$killed" -ne 1 ]; then
  echo "serve_harness: could not land a SIGKILL mid-ingest in 20 tries" >&2
  exit 1
fi

rm -f "$SOCK"
"$SERVE" --socket "$SOCK" --like "$WORKDIR/s.les" "${COMMON[@]}" \
  --resume "$WORKDIR/ck.loomck" --checkpoint "$WORKDIR/ck.loomck" \
  --out "$WORKDIR/resumed.tsv" 2> "$WORKDIR/serve3.log" &
SERVER_PID=$!
wait_for_socket
CURSOR=$("$CTL" --socket "$SOCK" stats | sed -n 's/^OK edges=\([0-9]*\) .*/\1/p')
echo "   resumed at edge $CURSOR; re-sending the suffix"
"$CTL" --socket "$SOCK" ingest-file "$WORKDIR/s.les" --from "$CURSOR" >/dev/null
"$CTL" --socket "$SOCK" finalize >/dev/null
QUALITY=$("$CTL" --socket "$SOCK" quality)
SRV_CUT=$(sed -n 's/.* cut=\([0-9]*\) .*/\1/p' <<<"$QUALITY")
"$CTL" --socket "$SOCK" shutdown >/dev/null
wait "$SERVER_PID" && status=0 || status=$?
SERVER_PID=""
if [ "$status" -ne 0 ]; then
  echo "serve_harness: resumed server exited $status" >&2
  cat "$WORKDIR/serve3.log" >&2
  exit 1
fi
sort -n "$WORKDIR/resumed.tsv" | cmp -s - "$WORKDIR/ref.sorted" || {
  echo "serve_harness: resumed assignments differ from offline reference" >&2
  exit 1
}
if [ "$SRV_CUT" != "$REF_CUT" ]; then
  echo "serve_harness: resumed cut $SRV_CUT != offline $REF_CUT" >&2
  exit 1
fi
echo "   resumed == offline (cut=$SRV_CUT, assignments identical)"
echo "== serve_harness: PASS"
