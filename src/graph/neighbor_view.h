// Read-only adjacency access for streaming heuristics.
//
// LDG's neighbour tallies and equal opportunism's bid terms only ever ask
// one question of the streamed-so-far graph: "who are v's neighbours right
// now?". NeighborView is that single-method seam. DynamicGraph implements
// it directly; the sharded backend substitutes a view over per-shard
// adjacency slices whose visible prefix tracks the sequencer's position, so
// the same scoring code sees bit-identical state whether the graph was
// built inline or by worker threads running ahead of the decisions.
//
// The returned NeighborRange (see graph/adjacency_arena.h) walks the
// chunk-stable page chain the adjacency now lives in: valid while the
// underlying arena lives (chains only grow — pages are never reallocated),
// entries in insertion (stream) order, duplicates preserved, self-loops as
// a single entry. Consumers either range-for over elements or hand each
// contiguous page span to the SIMD kernels via ForEachChunk.

#ifndef LOOM_GRAPH_NEIGHBOR_VIEW_H_
#define LOOM_GRAPH_NEIGHBOR_VIEW_H_

#include "graph/adjacency_arena.h"
#include "graph/types.h"

namespace loom {
namespace graph {

class NeighborView {
 public:
  virtual ~NeighborView() = default;

  /// Neighbours of `v` in the visible portion of the streamed-so-far graph
  /// (possibly empty for unknown vertices). Insertion order; duplicate
  /// edges appear once per insertion; a self-loop contributes one entry.
  virtual NeighborRange Neighbors(VertexId v) const = 0;

  /// Number of entries Neighbors(v) would return, under the same
  /// visibility rules. Overridden wherever a cheaper read than
  /// constructing the range exists — this sits on the per-edge
  /// hub-threshold probe path (HubTallyCache::NoteEntry).
  virtual size_t Degree(VertexId v) const { return Neighbors(v).size(); }
};

}  // namespace graph
}  // namespace loom

#endif  // LOOM_GRAPH_NEIGHBOR_VIEW_H_
