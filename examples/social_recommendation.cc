// Social-style scenario: "real-time" collaboration recommendation over a
// growing bibliographic network (the paper's Sec. 1 motivation — social
// networks and recommendation à la Twitter [9]).
//
// We grow a DBLP-like graph edge by edge (papers arriving with their author
// and citation edges), partition it online with Loom vs Fennel, and report
// how many inter-partition traversals a co-authorship recommendation
// workload incurs on each partitioning. eval::RunComparison drives all four
// backends through engine::PartitionerRegistry over one replayed pull-based
// EdgeSource — the same facade quickstart.cc uses directly.
//
// Run:  ./example_social_recommendation [scale]

#include <cstdlib>
#include <iostream>

#include "datasets/dataset_registry.h"
#include "eval/experiment.h"
#include "query/workload_runner.h"
#include "util/string_util.h"
#include "util/table_writer.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace loom;
  // Finite-positive parse (atof happily returns inf/nan for bad input).
  double scale = 0.5;
  if (argc > 1 &&
      (!util::ParseFiniteDouble(argv[1], &scale) || scale <= 0.0)) {
    std::cerr << "usage: " << argv[0] << " [scale > 0]\n";
    return 2;
  }

  std::cout << "Generating a DBLP-like bibliographic network (scale=" << scale
            << ")...\n";
  datasets::Dataset ds =
      datasets::MakeDataset(datasets::DatasetId::kDblp, scale);
  std::cout << "  " << ds.NumVertices() << " vertices, " << ds.NumEdges()
            << " edges, " << ds.NumLabels() << " labels\n\n";

  std::cout << "Recommendation workload:\n";
  for (const auto& q : ds.workload.queries()) {
    std::cout << "  " << q.name << " " << q.pattern.ToString(ds.registry)
              << " @ " << q.frequency * 100 << "%\n";
  }

  eval::ExperimentConfig cfg;
  cfg.k = 8;
  cfg.window_size = 4000;
  cfg.order = stream::StreamOrder::kBreadthFirst;

  std::cout << "\nStreaming through each partitioner (k = " << cfg.k
            << ", window = " << cfg.window_size << ")...\n";
  util::Timer timer;
  eval::ComparisonResult cmp = eval::RunComparison(ds, cfg);
  std::cout << "  done in " << util::TableWriter::Fmt(timer.ElapsedSeconds(), 1)
            << "s\n\n";

  util::TableWriter t({"system", "weighted ipt", "vs hash", "edge cut",
                       "imbalance", "ms / 10k edges"});
  for (const auto& r : cmp.systems) {
    t.AddRow({eval::ToString(r.system), util::TableWriter::Fmt(r.weighted_ipt, 0),
              util::TableWriter::Pct(r.ipt_vs_hash),
              std::to_string(r.edge_cut), util::TableWriter::Pct(r.imbalance),
              util::TableWriter::Fmt(r.ms_per_10k_edges, 1)});
  }
  t.Print(std::cout);

  const auto* loom_r = cmp.Find(eval::System::kLoom);
  const auto* fennel_r = cmp.Find(eval::System::kFennel);
  std::cout << "\nLoom answers the recommendation workload with "
            << util::TableWriter::Pct(
                   1.0 - loom_r->weighted_ipt / fennel_r->weighted_ipt)
            << " fewer inter-partition traversals than Fennel.\n";
  return 0;
}
