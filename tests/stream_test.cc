#include <gtest/gtest.h>

#include <set>

#include "datasets/dataset_registry.h"
#include "stream/edge_stream.h"
#include "stream/sliding_window.h"
#include "stream/stream_order.h"

namespace loom {
namespace stream {
namespace {

graph::LabeledGraph SmallGraph() {
  graph::LabeledGraph::Builder b;
  for (int i = 0; i < 4; ++i) b.AddVertex(static_cast<graph::LabelId>(i % 2));
  b.AddEdge(0, 1);
  b.AddEdge(1, 2);
  b.AddEdge(2, 3);
  return b.Build();
}

// ------------------------------------------------------------- edge stream

TEST(EdgeStreamTest, CarriesLabelsAndPositions) {
  graph::LabeledGraph g = SmallGraph();
  EdgeStream es(g, {0, 1, 2});
  ASSERT_EQ(es.size(), 3u);
  for (size_t i = 0; i < es.size(); ++i) {
    EXPECT_EQ(es[i].id, i);
    EXPECT_EQ(es[i].label_u, g.label(es[i].u));
    EXPECT_EQ(es[i].label_v, g.label(es[i].v));
  }
}

TEST(EdgeStreamTest, RespectsPermutation) {
  graph::LabeledGraph g = SmallGraph();
  EdgeStream es(g, {2, 0, 1});
  EXPECT_EQ(es[0].u, g.edge(2).u);
  EXPECT_EQ(es[0].v, g.edge(2).v);
}

TEST(StreamEdgeTest, Accessors) {
  StreamEdge e{0, 5, 9, 1, 2};
  EXPECT_EQ(e.Other(5), 9u);
  EXPECT_EQ(e.Other(9), 5u);
  EXPECT_EQ(e.LabelOf(5), 1);
  EXPECT_EQ(e.LabelOf(9), 2);
  EXPECT_TRUE(e.Incident(5));
  EXPECT_FALSE(e.Incident(6));
}

// ------------------------------------------------------------ stream order

TEST(StreamOrderTest, AllOrdersCoverAllEdges) {
  auto ds = datasets::MakeFigure1Dataset();
  for (auto order : {StreamOrder::kBreadthFirst, StreamOrder::kDepthFirst,
                     StreamOrder::kRandom}) {
    EdgeStream es = MakeStream(ds.graph, order);
    EXPECT_EQ(es.size(), ds.graph.NumEdges()) << ToString(order);
    std::set<graph::Edge, bool (*)(const graph::Edge&, const graph::Edge&)> seen(
        +[](const graph::Edge& a, const graph::Edge& b) {
          graph::Edge na = a.Normalized(), nb = b.Normalized();
          return na.u != nb.u ? na.u < nb.u : na.v < nb.v;
        });
    for (const StreamEdge& e : es) seen.insert(graph::Edge(e.u, e.v));
    EXPECT_EQ(seen.size(), ds.graph.NumEdges());
  }
}

TEST(StreamOrderTest, RandomSeedChangesOrder) {
  auto ds = datasets::MakeDataset(datasets::DatasetId::kProvGen, 0.05);
  EdgeStream a = MakeStream(ds.graph, StreamOrder::kRandom, 1);
  EdgeStream b = MakeStream(ds.graph, StreamOrder::kRandom, 2);
  bool differs = false;
  for (size_t i = 0; i < a.size() && !differs; ++i) {
    differs = a[i].u != b[i].u || a[i].v != b[i].v;
  }
  EXPECT_TRUE(differs);
}

TEST(StreamOrderTest, Names) {
  EXPECT_EQ(ToString(StreamOrder::kBreadthFirst), "bfs");
  EXPECT_EQ(ToString(StreamOrder::kDepthFirst), "dfs");
  EXPECT_EQ(ToString(StreamOrder::kRandom), "random");
}

// ---------------------------------------------------------- sliding window

StreamEdge MakeEdge(graph::EdgeId id) {
  StreamEdge e;
  e.id = id;
  e.u = id * 2;
  e.v = id * 2 + 1;
  e.label_u = 0;
  e.label_v = 0;
  return e;
}

TEST(SlidingWindowTest, FifoSemantics) {
  SlidingWindow w(2);
  w.Push(MakeEdge(0));
  w.Push(MakeEdge(1));
  EXPECT_FALSE(w.OverCapacity());
  w.Push(MakeEdge(2));
  EXPECT_TRUE(w.OverCapacity());
  auto oldest = w.PopOldest();
  ASSERT_TRUE(oldest.has_value());
  EXPECT_EQ(oldest->id, 0u);
  EXPECT_FALSE(w.OverCapacity());
  EXPECT_EQ(w.size(), 2u);
}

TEST(SlidingWindowTest, FindAndContains) {
  SlidingWindow w(4);
  w.Push(MakeEdge(7));
  EXPECT_TRUE(w.Contains(7));
  EXPECT_FALSE(w.Contains(8));
  const StreamEdge* e = w.Find(7);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->u, 14u);
  EXPECT_EQ(w.Find(8), nullptr);
}

TEST(SlidingWindowTest, RemoveArbitrary) {
  SlidingWindow w(4);
  for (graph::EdgeId i = 0; i < 4; ++i) w.Push(MakeEdge(i));
  EXPECT_TRUE(w.Remove(1));
  EXPECT_FALSE(w.Remove(1));  // already gone
  EXPECT_EQ(w.size(), 3u);
  // Removal of a middle element must not disturb FIFO order of the rest.
  EXPECT_EQ(w.PopOldest()->id, 0u);
  EXPECT_EQ(w.PopOldest()->id, 2u);
  EXPECT_EQ(w.PopOldest()->id, 3u);
  EXPECT_FALSE(w.PopOldest().has_value());
}

TEST(SlidingWindowTest, RemoveHeadThenPop) {
  SlidingWindow w(4);
  w.Push(MakeEdge(0));
  w.Push(MakeEdge(1));
  w.Remove(0);
  auto e = w.PopOldest();
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e->id, 1u);
}

TEST(SlidingWindowTest, PeekOldestSkipsRemoved) {
  SlidingWindow w(4);
  w.Push(MakeEdge(0));
  w.Push(MakeEdge(1));
  w.Remove(0);
  const StreamEdge* e = w.PeekOldest();
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->id, 1u);
  EXPECT_EQ(w.size(), 2u - 1u);
}

TEST(SlidingWindowTest, ForEachVisitsLiveInOrder) {
  SlidingWindow w(8);
  for (graph::EdgeId i = 0; i < 5; ++i) w.Push(MakeEdge(i));
  w.Remove(2);
  std::vector<graph::EdgeId> ids;
  w.ForEach([&](const StreamEdge& e) { ids.push_back(e.id); });
  EXPECT_EQ(ids, (std::vector<graph::EdgeId>{0, 1, 3, 4}));
}

TEST(SlidingWindowTest, EmptyWindow) {
  SlidingWindow w(3);
  EXPECT_TRUE(w.empty());
  EXPECT_FALSE(w.PopOldest().has_value());
  EXPECT_EQ(w.PeekOldest(), nullptr);
}

}  // namespace
}  // namespace stream
}  // namespace loom
