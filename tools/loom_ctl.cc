// loom_ctl — command-line client for a running loom_serve.
//
// Usage:
//   loom_ctl --socket PATH stats
//   loom_ctl --socket PATH get VERTEX
//   loom_ctl --socket PATH ingest U V LABEL_U LABEL_V
//   loom_ctl --socket PATH checkpoint | finalize | quality | shutdown
//   loom_ctl --socket PATH ingest-file S.les [--from N] [--depth N]
//
// Single commands print the server's reply line on stdout and exit 0 on
// "OK ...", 1 on "ERR ...".
//
// ingest-file replays an edge-stream file (binary or text) as INGEST
// commands, keeping up to --depth (default 512) commands in flight — the
// server replies strictly in order, so replies are matched positionally;
// pipelining hides the per-line socket round trip. --from N skips the
// first N edges: after a server crash, pass the STATS edges= cursor to
// re-send exactly the undecided suffix. Label ids are the stream file's
// own — start loom_serve with --like pointing at the same file (or one
// with an identical label table) so both sides agree.

#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "io/edge_stream_io.h"
#include "serve/client.h"
#include "serve/protocol.h"

namespace {

void Usage() {
  std::cerr << "usage: loom_ctl --socket PATH COMMAND\n"
               "commands:\n"
               "  stats | checkpoint | finalize | quality | shutdown\n"
               "  get VERTEX\n"
               "  ingest U V LABEL_U LABEL_V\n"
               "  ingest-file S.les [--from N] [--depth N]\n";
}

// One command line in, the reply line printed; exit status from OK/ERR.
int Roundtrip(loom::serve::Client* client, const std::string& line) {
  std::string reply, error;
  if (!client->Roundtrip(line, &reply, &error)) {
    std::cerr << "error: " << error << "\n";
    return 1;
  }
  std::cout << reply << "\n";
  return loom::serve::IsOk(reply) ? 0 : 1;
}

int IngestFile(loom::serve::Client* client, const std::string& path,
               uint64_t from, size_t depth) {
  using loom::serve::Command;
  using loom::serve::CommandType;
  loom::io::FileEdgeSource source(path);
  if (from > 0) source.SkipTo(from);
  std::vector<loom::stream::StreamEdge> batch(1024);
  std::string error, reply;
  uint64_t sent = 0, acked = 0, rejected = 0;
  size_t in_flight = 0;
  auto drain_one = [&]() -> bool {
    if (!client->ReadReply(&reply, &error)) {
      std::cerr << "error: " << error << " (after " << acked << " replies)\n";
      return false;
    }
    ++acked;
    if (!loom::serve::IsOk(reply)) {
      ++rejected;
      if (rejected <= 10) std::cerr << "rejected: " << reply << "\n";
    }
    --in_flight;
    return true;
  };
  for (;;) {
    const size_t n = source.NextBatch(batch);
    if (n == 0) break;
    for (size_t i = 0; i < n; ++i) {
      Command c;
      c.type = CommandType::kIngest;
      c.edge = batch[i];
      while (in_flight >= depth) {
        if (!drain_one()) return 1;
      }
      if (!client->SendLine(loom::serve::FormatCommand(c), &error)) {
        std::cerr << "error: " << error << " (after " << sent << " sends)\n";
        return 1;
      }
      ++sent;
      ++in_flight;
    }
  }
  while (in_flight > 0) {
    if (!drain_one()) return 1;
  }
  std::cout << "sent " << sent << " edges from " << path;
  if (from > 0) std::cout << " (skipped first " << from << ")";
  std::cout << ", " << rejected << " rejected\n";
  return rejected == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string socket_path;
  std::vector<std::string> rest;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--socket") == 0) {
      if (i + 1 >= argc) {
        std::cerr << "--socket requires a value\n";
        return 2;
      }
      socket_path = argv[++i];
    } else if (std::strcmp(argv[i], "--help") == 0) {
      Usage();
      return 0;
    } else {
      rest.emplace_back(argv[i]);
    }
  }
  if (socket_path.empty() || rest.empty()) {
    Usage();
    return 2;
  }

  loom::serve::Client client;
  std::string error;
  if (!client.Connect(socket_path, &error)) {
    std::cerr << "error: " << error << "\n";
    return 1;
  }

  const std::string& cmd = rest[0];
  try {
    if (cmd == "stats" && rest.size() == 1) {
      return Roundtrip(&client, "STATS");
    } else if (cmd == "checkpoint" && rest.size() == 1) {
      return Roundtrip(&client, "CHECKPOINT");
    } else if (cmd == "finalize" && rest.size() == 1) {
      return Roundtrip(&client, "FINALIZE");
    } else if (cmd == "quality" && rest.size() == 1) {
      return Roundtrip(&client, "SNAPSHOT-QUALITY");
    } else if (cmd == "shutdown" && rest.size() == 1) {
      return Roundtrip(&client, "SHUTDOWN");
    } else if (cmd == "get" && rest.size() == 2) {
      return Roundtrip(&client, "GET " + rest[1]);
    } else if (cmd == "ingest" && rest.size() == 5) {
      return Roundtrip(&client, "INGEST " + rest[1] + " " + rest[2] + " " +
                                    rest[3] + " " + rest[4]);
    } else if (cmd == "ingest-file" && rest.size() >= 2) {
      uint64_t from = 0;
      size_t depth = 512;
      for (size_t i = 2; i < rest.size(); i += 2) {
        if (i + 1 >= rest.size()) {
          Usage();
          return 2;
        }
        if (rest[i] == "--from") {
          from = std::stoull(rest[i + 1]);
        } else if (rest[i] == "--depth") {
          depth = std::stoul(rest[i + 1]);
          if (depth == 0) depth = 1;
        } else {
          Usage();
          return 2;
        }
      }
      return IngestFile(&client, rest[1], from, depth);
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  Usage();
  return 2;
}
