// Pattern-matching queries and workloads (Sec. 1.3).
//
// A workload Q is a multiset of pattern graphs with relative frequencies:
// Q = {(q1, n1), ..., (qh, nh)}. Frequencies need not sum to 1 on input;
// Normalize() rescales them (the TPSTry++ normalises supports internally
// regardless).

#ifndef LOOM_QUERY_QUERY_H_
#define LOOM_QUERY_QUERY_H_

#include <string>
#include <vector>

#include "graph/pattern_graph.h"

namespace loom {
namespace query {

/// One workload entry: a connected pattern graph and its relative frequency.
struct Query {
  std::string name;
  graph::PatternGraph pattern;
  double frequency = 0.0;
};

/// A multiset of queries. Order is preserved (it is the deterministic
/// iteration order everywhere).
class Workload {
 public:
  Workload() = default;

  void Add(std::string name, graph::PatternGraph pattern, double frequency);

  const std::vector<Query>& queries() const { return queries_; }
  size_t size() const { return queries_.size(); }
  bool empty() const { return queries_.empty(); }

  /// Sum of frequencies.
  double TotalFrequency() const;

  /// Rescales frequencies to sum to 1 (no-op on an empty workload).
  void Normalize();

 private:
  std::vector<Query> queries_;
};

}  // namespace query
}  // namespace loom

#endif  // LOOM_QUERY_QUERY_H_
