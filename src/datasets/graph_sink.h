// The emit seam that lets dataset generators run without materialising a
// graph.
//
// Every Table 1 generator is a deterministic walk that interleaves
// AddVertex/AddEdge calls; before this seam the only consumer of that walk
// was graph::LabeledGraph::Builder, which forces the full CSR graph into
// RAM even when the caller only wants the *edge sequence* (streaming
// experiments, file export). GraphSink abstracts the consumer: the same
// generator body feeds a BuilderSink (materialised Dataset, as before) or
// a lightweight collector that keeps just labels + an edge list
// (engine::GeneratorEdgeSource) — identical RNG draws either way, so the
// two paths describe bit-identical graphs.

#ifndef LOOM_DATASETS_GRAPH_SINK_H_
#define LOOM_DATASETS_GRAPH_SINK_H_

#include "graph/labeled_graph.h"
#include "graph/types.h"

namespace loom {
namespace datasets {

/// Receives a generator's vertex/edge emission in generation order.
class GraphSink {
 public:
  virtual ~GraphSink() = default;

  /// Registers the next vertex (dense ids, assigned in call order) with its
  /// label; returns the id the generator should reference it by.
  virtual graph::VertexId AddVertex(graph::LabelId label) = 0;

  /// Emits an undirected edge between two previously added vertices.
  /// Generators may be sloppy (duplicates, self-loops) — consumers
  /// normalise exactly like LabeledGraph::Builder::Build does.
  virtual void AddEdge(graph::VertexId u, graph::VertexId v) = 0;
};

/// The materialising consumer: forwards into LabeledGraph::Builder.
class BuilderSink : public GraphSink {
 public:
  graph::VertexId AddVertex(graph::LabelId label) override {
    return builder_.AddVertex(label);
  }
  void AddEdge(graph::VertexId u, graph::VertexId v) override {
    builder_.AddEdge(u, v);
  }

  /// Finalises into an immutable graph (dedupe, CSR); see Builder::Build.
  graph::LabeledGraph Build() { return builder_.Build(); }

 private:
  graph::LabeledGraph::Builder builder_;
};

}  // namespace datasets
}  // namespace loom

#endif  // LOOM_DATASETS_GRAPH_SINK_H_
