// loom_generate — materialise a synthetic evaluation dataset (graph +
// canonical workload) to files usable by loom_partition.
//
// Usage:
//   loom_generate --dataset dblp|provgen|musicbrainz|lubm-100|lubm-4000
//                 [--scale 1.0] --graph-out G.lg --workload-out Q.lw

#include <cstring>
#include <iostream>
#include <string>

#include "datasets/dataset_registry.h"
#include "graph/graph_io.h"
#include "query/workload_io.h"

int main(int argc, char** argv) {
  using namespace loom;
  std::string dataset_name, graph_out, workload_out;
  double scale = 1.0;
  for (int i = 1; i < argc; ++i) {
    auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (std::strcmp(argv[i], "--dataset") == 0) {
      const char* v = value();
      if (v) dataset_name = v;
    } else if (std::strcmp(argv[i], "--scale") == 0) {
      const char* v = value();
      if (v) scale = std::stod(v);
    } else if (std::strcmp(argv[i], "--graph-out") == 0) {
      const char* v = value();
      if (v) graph_out = v;
    } else if (std::strcmp(argv[i], "--workload-out") == 0) {
      const char* v = value();
      if (v) workload_out = v;
    }
  }
  if (dataset_name.empty() || graph_out.empty() || workload_out.empty()) {
    std::cerr << "usage: loom_generate --dataset NAME [--scale F] "
                 "--graph-out G.lg --workload-out Q.lw\n";
    return 2;
  }

  datasets::DatasetId id;
  if (dataset_name == "dblp") id = datasets::DatasetId::kDblp;
  else if (dataset_name == "provgen") id = datasets::DatasetId::kProvGen;
  else if (dataset_name == "musicbrainz") id = datasets::DatasetId::kMusicBrainz;
  else if (dataset_name == "lubm-100") id = datasets::DatasetId::kLubm100;
  else if (dataset_name == "lubm-4000") id = datasets::DatasetId::kLubm4000;
  else {
    std::cerr << "unknown dataset: " << dataset_name << "\n";
    return 2;
  }

  try {
    datasets::Dataset ds = datasets::MakeDataset(id, scale);
    graph::WriteGraphFile(ds.graph, ds.registry, graph_out);
    query::WriteWorkloadFile(ds.workload, ds.registry, workload_out);
    std::cerr << "wrote " << ds.NumVertices() << " vertices / "
              << ds.NumEdges() << " edges to " << graph_out << " and "
              << ds.workload.size() << " queries to " << workload_out << "\n";
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
