// Checkpoint/restore under crash-fault injection.
//
// The recovery contract this suite pins: a run that is cut off at ANY
// point, restored from its last LOOMCK checkpoint into a fresh process
// state, and driven to the end must finish bit-identically to the run
// that was never interrupted — same assignments (quality triple), same
// deterministic backend counters (FinalStatsEvent), same observer event
// totals. And the failure half: every corrupted, truncated or
// version/configuration-skewed checkpoint must be REJECTED with an
// actionable error — a checkpoint that loads and silently diverges is the
// one unacceptable outcome. The two-slot rotation means rejection of the
// newest checkpoint falls back to the previous good one.
//
// The kill-point matrix here cuts runs in-process (build state to edge b,
// checkpoint, throw the session away — exactly what SIGKILL leaves on
// disk, since Commit is atomic); tools/crash_harness.sh kills a real
// loom_partition child with SIGKILL for the full out-of-process story.

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "datasets/dataset_registry.h"
#include "engine/session.h"
#include "graph/dynamic_graph.h"
#include "io/checkpoint.h"
#include "stream/stream_order.h"
#include "test_util.h"

namespace loom {
namespace {

namespace fs = std::filesystem;

std::string TempPath(const std::string& name) {
  const fs::path dir = fs::path(testing::TempDir()) / "loom_crash_recovery";
  fs::create_directories(dir);
  return (dir / name).string();
}

// ------------------------------------------------ LOOMCK format basics

TEST(CheckpointFormatTest, RoundTripsEveryFieldKind) {
  const std::string path = TempPath("roundtrip.loomck");
  io::CheckpointWriter w;
  w.BeginSection("alpha");
  w.U8(7);
  w.U16(65535);
  w.U32(123456789);
  w.U64(0xDEADBEEFCAFEF00DULL);
  w.F64(-0.1);
  w.Str("hello checkpoint");
  w.PodVec(std::vector<uint32_t>{1, 2, 3});
  w.EndSection();
  w.BeginSection("beta");
  w.U64(42);
  w.EndSection();
  w.Commit(path);

  io::CheckpointReader r(path);
  EXPECT_TRUE(r.Has("alpha"));
  EXPECT_TRUE(r.Has("beta"));
  EXPECT_FALSE(r.Has("gamma"));
  r.Open("alpha");
  EXPECT_EQ(r.U8(), 7);
  EXPECT_EQ(r.U16(), 65535);
  EXPECT_EQ(r.U32(), 123456789u);
  EXPECT_EQ(r.U64(), 0xDEADBEEFCAFEF00DULL);
  EXPECT_EQ(r.F64(), -0.1);
  EXPECT_EQ(r.Str(), "hello checkpoint");
  std::vector<uint32_t> v;
  r.PodVec(&v);
  EXPECT_EQ(v, (std::vector<uint32_t>{1, 2, 3}));
  r.Close();
  // Sections open in any order.
  r.Open("beta");
  EXPECT_EQ(r.U64(), 42u);
  r.Close();
}

TEST(CheckpointFormatTest, LayoutSkewIsAnError) {
  const std::string path = TempPath("skew.loomck");
  io::CheckpointWriter w;
  w.BeginSection("s");
  w.U64(1);
  w.U64(2);
  w.EndSection();
  w.Commit(path);

  io::CheckpointReader r(path);
  r.Open("s");
  r.U64();
  // Closing with unread bytes = this build expects a shorter layout than
  // the writer produced — must be an error, not silent padding.
  EXPECT_THROW(r.Close(), std::runtime_error);

  io::CheckpointReader r2(path);
  r2.Open("s");
  r2.U64();
  r2.U64();
  // Reading past the end = this build expects a longer layout.
  EXPECT_THROW(r2.U64(), std::runtime_error);

  io::CheckpointReader r3(path);
  try {
    r3.Open("missing");
    FAIL() << "opening an absent section should throw";
  } catch (const std::runtime_error& e) {
    // The error names what IS there — actionable, not just "not found".
    EXPECT_NE(std::string(e.what()).find("s"), std::string::npos) << e.what();
  }
}

// --------------------------------------------------- kill-point matrix

struct RunOutcome {
  test_util::Quality quality;
  engine::StatCounters backend_stats;
  engine::StatsObserver::Totals totals;
};

engine::SessionConfig ConfigFor(const std::string& spec,
                                const datasets::Dataset& ds) {
  engine::SessionConfig config;
  config.spec = spec;
  config.options = test_util::OptionsFor(ds, /*k=*/8, /*window=*/128);
  return config;
}

std::unique_ptr<engine::Session> MustCreate(const std::string& spec,
                                            const datasets::Dataset& ds) {
  std::string error;
  auto session = engine::Session::Create(ConfigFor(spec, ds),
                                         test_util::ContextFor(ds), &error);
  EXPECT_NE(session, nullptr) << error;
  return session;
}

// Advances `source` past `n` edges without ingesting them — what a resumed
// driver does to reach the checkpoint's stream cursor.
void SkipEdges(engine::EdgeSource& source, uint64_t n) {
  std::vector<stream::StreamEdge> scratch(256);
  uint64_t done = 0;
  while (done < n) {
    const size_t want = static_cast<size_t>(
        std::min<uint64_t>(scratch.size(), n - done));
    const size_t got =
        source.NextBatch(std::span<stream::StreamEdge>(scratch.data(), want));
    ASSERT_GT(got, 0u) << "stream ran dry while skipping to " << n;
    done += got;
  }
}

RunOutcome Outcome(engine::Session& session, const engine::RunReport& report,
                   const datasets::Dataset& ds) {
  return {test_util::QualityOf(session.backend(), ds), report.backend_stats,
          report.events};
}

// Everything deterministic must match. shard_slices/shard_queue_stalls are
// documented as reporting-only scheduling telemetry (loom_sharded.h) — a
// resumed process restarts them — so they are the two exclusions.
void ExpectSameOutcome(const RunOutcome& resumed, const RunOutcome& baseline,
                       const std::string& label) {
  EXPECT_EQ(resumed.quality, baseline.quality) << label;
  EXPECT_EQ(resumed.backend_stats, baseline.backend_stats) << label;
  const engine::StatsObserver::Totals& a = resumed.totals;
  const engine::StatsObserver::Totals& b = baseline.totals;
  EXPECT_EQ(a.vertices_assigned, b.vertices_assigned) << label;
  EXPECT_EQ(a.evictions, b.evictions) << label;
  EXPECT_EQ(a.empty_cluster_evictions, b.empty_cluster_evictions) << label;
  EXPECT_EQ(a.cluster_decisions, b.cluster_decisions) << label;
  EXPECT_EQ(a.fallback_decisions, b.fallback_decisions) << label;
  EXPECT_EQ(a.cluster_edges_assigned, b.cluster_edges_assigned) << label;
  EXPECT_EQ(a.last_progress.edges_ingested, b.last_progress.edges_ingested)
      << label;
  EXPECT_EQ(a.last_progress.edges_bypassed, b.last_progress.edges_bypassed)
      << label;
  EXPECT_EQ(a.last_progress.window_population,
            b.last_progress.window_population)
      << label;
}

struct MatrixCase {
  std::string name;
  std::string spec;
  datasets::DatasetId dataset;
  double scale;
};

class KillPointMatrixTest : public testing::TestWithParam<MatrixCase> {};

TEST_P(KillPointMatrixTest, ResumeFinishesBitIdenticallyFromEveryKillPoint) {
  const MatrixCase& c = GetParam();
  const datasets::Dataset ds = datasets::MakeDataset(c.dataset, c.scale);
  const stream::EdgeStream es =
      stream::MakeStream(ds.graph, stream::StreamOrder::kBreadthFirst);
  const uint64_t m = es.size();
  ASSERT_GT(m, 12u);

  auto baseline_session = MustCreate(c.spec, ds);
  ASSERT_NE(baseline_session, nullptr);
  engine::EdgeStreamSource baseline_source(es);
  baseline_session->IngestSome(baseline_source, m);
  const RunOutcome baseline =
      Outcome(*baseline_session, baseline_session->Finish(), ds);

  // Kill points: the stream's start, interior points including awkward
  // non-boundary offsets, and the very last edge.
  const std::vector<uint64_t> kill_points = {0,         m / 6,     m / 3,
                                             m / 2 + 1, 5 * m / 6, m - 1};
  for (const uint64_t b : kill_points) {
    const std::string label = c.name + " @kill " + std::to_string(b);
    const std::string path = TempPath(c.name + ".loomck");

    // Phase 1: the doomed run — ingest to b, checkpoint, die (session
    // destroyed with all in-memory state; only the file survives).
    {
      auto doomed = MustCreate(c.spec, ds);
      ASSERT_NE(doomed, nullptr) << label;
      engine::EdgeStreamSource source(es);
      ASSERT_EQ(doomed->IngestSome(source, b), b) << label;
      std::string error;
      ASSERT_TRUE(doomed->Checkpoint(path, &error)) << label << ": " << error;
    }

    // Phase 2: recover into a fresh session and finish the stream.
    auto resumed = MustCreate(c.spec, ds);
    ASSERT_NE(resumed, nullptr) << label;
    std::string error;
    ASSERT_TRUE(resumed->Resume(path, &error)) << label << ": " << error;
    EXPECT_EQ(resumed->edges_ingested(), b) << label;
    engine::EdgeStreamSource source(es);
    SkipEdges(source, b);
    resumed->IngestSome(source, m);
    ExpectSameOutcome(Outcome(*resumed, resumed->Finish(), ds), baseline,
                      label);
  }
}

INSTANTIATE_TEST_SUITE_P(
    BackendsAndDatasets, KillPointMatrixTest,
    testing::ValuesIn(std::vector<MatrixCase>{
        {"loom_provgen", "loom", datasets::DatasetId::kProvGen, 0.05},
        {"loom_musicbrainz", "loom", datasets::DatasetId::kMusicBrainz, 0.05},
        {"sharded_provgen", "loom-sharded:shards=3",
         datasets::DatasetId::kProvGen, 0.05},
        {"sharded_musicbrainz", "loom-sharded:shards=3",
         datasets::DatasetId::kMusicBrainz, 0.05},
        // Edge partitioners: backend_stats carries the whole quality triple
        // (replica_total, max/min part edges, edge_assignment_hash), so the
        // same EXPECT_EQ proves RF/balance/hash survive a kill -9.
        {"hdrf_provgen", "hdrf:lambda=1.1", datasets::DatasetId::kProvGen,
         0.05},
        {"dbh_musicbrainz", "dbh", datasets::DatasetId::kMusicBrainz, 0.05},
        // hep adds core adjacency + promotion bitset to the checkpoint; the
        // kill-point matrix proves a resume mid-promotion stays bit-exact.
        {"hep_provgen", "hep:threshold_factor=4", datasets::DatasetId::kProvGen,
         0.05},
    }),
    [](const testing::TestParamInfo<MatrixCase>& info) {
      return info.param.name;
    });

// Baselines ride the same machinery through their own SaveState paths:
// hash restores the table alone, ldg/fennel also restore the seen graph
// (their placement decisions read adjacency, so table-only would diverge).
TEST(BaselineRecoveryTest, TableAndSeenGraphBackendsResumeIdentically) {
  const datasets::Dataset ds =
      datasets::MakeDataset(datasets::DatasetId::kProvGen, 0.05);
  const stream::EdgeStream es =
      stream::MakeStream(ds.graph, stream::StreamOrder::kBreadthFirst);
  const uint64_t m = es.size();
  for (const char* spec : {"hash", "ldg", "fennel"}) {
    auto baseline_session = MustCreate(spec, ds);
    engine::EdgeStreamSource baseline_source(es);
    baseline_session->IngestSome(baseline_source, m);
    const RunOutcome baseline =
        Outcome(*baseline_session, baseline_session->Finish(), ds);

    const std::string path = TempPath(std::string(spec) + ".loomck");
    {
      auto doomed = MustCreate(spec, ds);
      engine::EdgeStreamSource source(es);
      doomed->IngestSome(source, m / 2);
      std::string error;
      ASSERT_TRUE(doomed->Checkpoint(path, &error)) << spec << ": " << error;
    }
    auto resumed = MustCreate(spec, ds);
    std::string error;
    ASSERT_TRUE(resumed->Resume(path, &error)) << spec << ": " << error;
    engine::EdgeStreamSource source(es);
    SkipEdges(source, m / 2);
    resumed->IngestSome(source, m);
    ExpectSameOutcome(Outcome(*resumed, resumed->Finish(), ds), baseline,
                      spec);
  }
}

// ------------------------------------------- open alphabet mid-stream

// A service stream need not respect the label alphabet the run started
// with. New labels must (a) grow the signature value table chunk-wise
// without perturbing earlier labels' values, (b) re-fit the matcher's
// admission memos, and (c) replay identically through checkpoint/restore
// (the checkpoint stores the grown count; restore re-draws the values
// from the retained RNG).
TEST(OpenAlphabetTest, LabelsBeyondTheCtorAlphabetGrowAndRecover) {
  const datasets::Dataset ds =
      datasets::MakeDataset(datasets::DatasetId::kProvGen, 0.05);
  const stream::EdgeStream es =
      stream::MakeStream(ds.graph, stream::StreamOrder::kBreadthFirst);
  const auto base_labels = static_cast<graph::LabelId>(ds.registry.size());

  // Rewrite a slice of the stream to carry labels the run has never seen —
  // starting early, so the grown state is behind the checkpoint too. Labels
  // are a per-vertex property, so the override must hold at every occurrence
  // of a relabelled vertex, not just the edge that introduced it.
  std::vector<stream::StreamEdge> edges(es.begin(), es.end());
  std::map<graph::VertexId, graph::LabelId> relabel;
  for (size_t i = 10; i < edges.size(); i += 7) {
    relabel.emplace(edges[i].u,
                    static_cast<graph::LabelId>(base_labels + (i % 5)));
  }
  for (stream::StreamEdge& e : edges) {
    if (auto it = relabel.find(e.u); it != relabel.end()) {
      e.label_u = it->second;
    }
    if (auto it = relabel.find(e.v); it != relabel.end()) {
      e.label_v = it->second;
    }
  }

  class VectorSource : public engine::EdgeSource {
   public:
    explicit VectorSource(const std::vector<stream::StreamEdge>& edges)
        : edges_(&edges) {}
    size_t NextBatch(std::span<stream::StreamEdge> out) override {
      const size_t n = std::min(out.size(), edges_->size() - pos_);
      std::copy_n(edges_->begin() + static_cast<ptrdiff_t>(pos_), n,
                  out.begin());
      pos_ += n;
      return n;
    }
    size_t SizeHint() const override { return edges_->size(); }
    void Reset() override { pos_ = 0; }

   private:
    const std::vector<stream::StreamEdge>* edges_;
    size_t pos_ = 0;
  };

  const uint64_t m = edges.size();
  for (const char* spec : {"loom", "loom-sharded:shards=3"}) {
    auto baseline_session = MustCreate(spec, ds);
    ASSERT_NE(baseline_session, nullptr);
    VectorSource baseline_source(edges);
    baseline_session->IngestSome(baseline_source, m);
    const RunOutcome baseline =
        Outcome(*baseline_session, baseline_session->Finish(), ds);

    const std::string path = TempPath("open_alphabet.loomck");
    {
      auto doomed = MustCreate(spec, ds);
      VectorSource source(edges);
      doomed->IngestSome(source, m / 2);
      std::string error;
      ASSERT_TRUE(doomed->Checkpoint(path, &error)) << spec << ": " << error;
    }
    auto resumed = MustCreate(spec, ds);
    std::string error;
    ASSERT_TRUE(resumed->Resume(path, &error)) << spec << ": " << error;
    VectorSource source(edges);
    SkipEdges(source, m / 2);
    resumed->IngestSome(source, m);
    ExpectSameOutcome(Outcome(*resumed, resumed->Finish(), ds), baseline,
                      std::string(spec) + " open alphabet");
  }
}

// ---------------------------------------------- corruption & skew legs

class CorruptionTest : public testing::Test {
 protected:
  void SetUp() override {
    ds_ = datasets::MakeDataset(datasets::DatasetId::kProvGen, 0.05);
    es_ = stream::MakeStream(ds_.graph, stream::StreamOrder::kBreadthFirst);
    path_ = TempPath("victim.loomck");
    auto session = MustCreate("loom", ds_);
    ASSERT_NE(session, nullptr);
    engine::EdgeStreamSource source(es_);
    session->IngestSome(source, es_.size() / 2);
    std::string error;
    ASSERT_TRUE(session->Checkpoint(path_, &error)) << error;
    std::ifstream in(path_, std::ios::binary);
    bytes_.assign(std::istreambuf_iterator<char>(in),
                  std::istreambuf_iterator<char>());
    ASSERT_GT(bytes_.size(), 64u);
  }

  std::string WriteVariant(const std::string& name,
                           const std::vector<char>& bytes) {
    const std::string path = TempPath(name);
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    return path;
  }

  // Every rejection must (a) fail, (b) say which file, (c) not be empty
  // boilerplate. Rejection may surface at reader construction or at
  // restore — both end in Resume returning false.
  void ExpectRejected(const std::string& path, const std::string& label) {
    auto session = MustCreate("loom", ds_);
    ASSERT_NE(session, nullptr) << label;
    std::string error;
    EXPECT_FALSE(session->Resume(path, &error)) << label;
    EXPECT_NE(error.find(path), std::string::npos)
        << label << ": error does not name the file: " << error;
    EXPECT_GT(error.size(), path.size() + 10) << label << ": " << error;
  }

  datasets::Dataset ds_;
  stream::EdgeStream es_;
  std::string path_;
  std::vector<char> bytes_;
};

TEST_F(CorruptionTest, EveryTruncationIsRejected) {
  // Sweep cut points across the whole file, plus the pathological sizes.
  std::vector<size_t> cuts = {0, 1, 5, 7};  // inside magic/version/header
  for (size_t i = 1; i <= 16; ++i) cuts.push_back(bytes_.size() * i / 17);
  cuts.push_back(bytes_.size() - 1);
  for (const size_t cut : cuts) {
    if (cut >= bytes_.size()) continue;
    const std::vector<char> truncated(bytes_.begin(),
                                      bytes_.begin() + static_cast<ptrdiff_t>(cut));
    ExpectRejected(WriteVariant("truncated.loomck", truncated),
                   "truncated at " + std::to_string(cut));
  }
}

TEST_F(CorruptionTest, EveryFlippedByteIsDetected) {
  // A single flipped bit anywhere — framing, section names, payloads,
  // checksums — must never restore: flip one byte at offsets spread over
  // the file and expect rejection each time.
  for (size_t i = 0; i < 23; ++i) {
    const size_t offset = bytes_.size() * i / 23;
    std::vector<char> flipped = bytes_;
    flipped[offset] = static_cast<char>(flipped[offset] ^ 0x5a);
    ExpectRejected(WriteVariant("flipped.loomck", flipped),
                   "byte flipped at " + std::to_string(offset));
  }
}

TEST_F(CorruptionTest, BadMagicAndFutureVersionAreActionable) {
  std::vector<char> bad_magic = bytes_;
  bad_magic[0] = 'X';
  ExpectRejected(WriteVariant("magic.loomck", bad_magic), "bad magic");

  std::vector<char> future = bytes_;
  // The u16 format version sits right after the 6-byte magic.
  future[6] = 99;
  future[7] = 0;
  const std::string path = WriteVariant("future.loomck", future);
  auto session = MustCreate("loom", ds_);
  std::string error;
  EXPECT_FALSE(session->Resume(path, &error));
  EXPECT_NE(error.find("version"), std::string::npos) << error;
}

TEST_F(CorruptionTest, ConfigurationSkewIsNamedNotSilent) {
  // Different window size: the rejection must name the offending knob.
  {
    engine::SessionConfig config = ConfigFor("loom", ds_);
    config.options.window_size = 64;
    std::string error;
    auto session = engine::Session::Create(config, test_util::ContextFor(ds_),
                                           &error);
    ASSERT_NE(session, nullptr) << error;
    EXPECT_FALSE(session->Resume(path_, &error));
    EXPECT_NE(error.find("window_size"), std::string::npos) << error;
  }
  // Different backend entirely.
  {
    auto session = MustCreate("hash", ds_);
    std::string error;
    EXPECT_FALSE(session->Resume(path_, &error));
    EXPECT_NE(error.find("backend mismatch"), std::string::npos) << error;
    EXPECT_NE(error.find("loom"), std::string::npos) << error;
  }
  // Different label space (same options, drifted label registry).
  {
    std::string error;
    engine::BuildContext skewed{&ds_.workload, ds_.registry.size() + 3};
    auto session =
        engine::Session::Create(ConfigFor("loom", ds_), skewed, &error);
    ASSERT_NE(session, nullptr) << error;
    EXPECT_FALSE(session->Resume(path_, &error));
    EXPECT_NE(error.find("label-space mismatch"), std::string::npos) << error;
  }
  // Different shard count is an options skew too (and the backend's own
  // shard section guards the same invariant one layer deeper).
  {
    const std::string sharded_path = TempPath("sharded_victim.loomck");
    auto writer = MustCreate("loom-sharded:shards=3", ds_);
    engine::EdgeStreamSource source(es_);
    writer->IngestSome(source, es_.size() / 2);
    std::string error;
    ASSERT_TRUE(writer->Checkpoint(sharded_path, &error)) << error;
    auto session = MustCreate("loom-sharded:shards=2", ds_);
    EXPECT_FALSE(session->Resume(sharded_path, &error));
    EXPECT_NE(error.find("shards"), std::string::npos) << error;
  }
  // A used session cannot Resume (restore assumes pristine structures).
  {
    auto session = MustCreate("loom", ds_);
    engine::EdgeStreamSource source(es_);
    session->IngestSome(source, 8);
    std::string error;
    EXPECT_FALSE(session->Resume(path_, &error));
    EXPECT_NE(error.find("fresh"), std::string::npos) << error;
  }
}

// ------------------------------------ semantic validation beyond checksums

// The flip/truncation sweeps above are caught by FRAMING (section lengths,
// FNV checksums). But FNV is not cryptographic and checkpoints are plain
// files: a hand-edited or tool-rewritten file arrives with checksums that
// match its lying payload. Counters that travel alongside the tables they
// describe (graph vertex/edge counts, the cut tracker's pending counter)
// must therefore be recomputed at load — this pins the graph loader's
// recompute-or-reject against a file whose framing is INTACT.
TEST(SemanticCorruptionTest, SelfConsistentButDesyncedCountersAreRejected) {
  const auto write = [](uint64_t num_vertices, uint64_t num_edges) {
    io::CheckpointWriter w;
    w.BeginSection("seen_graph");
    w.U64(num_vertices);
    w.U64(num_edges);
    w.PodVec(std::vector<graph::LabelId>{0, 0});
    w.U64(2);
    w.PodVec(std::vector<graph::VertexId>{1});  // adj(0) = {1}
    w.PodVec(std::vector<graph::VertexId>{0});  // adj(1) = {0}
    w.EndSection();
    const std::string path = TempPath("desynced_counters.loomck");
    w.Commit(path);
    return path;
  };

  // Control: the true counters (2 vertices, 1 edge) restore cleanly —
  // rejection below is the counter check, not framing.
  {
    io::CheckpointReader r(write(2, 1));
    graph::DynamicGraph g;
    g.LoadFrom(&r, "seen_graph");
    EXPECT_EQ(g.NumVertices(), 2u);
    EXPECT_EQ(g.NumEdges(), 1u);
  }
  // Same tables, lying counters, valid checksums.
  for (const auto& [nv, ne] : std::vector<std::pair<uint64_t, uint64_t>>{
           {3, 1}, {2, 9}, {0, 1}, {2, 0}}) {
    io::CheckpointReader r(write(nv, ne));
    EXPECT_TRUE(r.Has("seen_graph"));  // framing and checksums intact
    graph::DynamicGraph g;
    try {
      g.LoadFrom(&r, "seen_graph");
      FAIL() << "counter desync (" << nv << "," << ne
             << ") restored silently";
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find("counter desync"),
                std::string::npos)
          << e.what();
    }
  }
}

// ------------------------------------------------- two-slot rotation

TEST(RotationTest, CorruptNewestFallsBackToPreviousAndStillFinishesRight) {
  const datasets::Dataset ds =
      datasets::MakeDataset(datasets::DatasetId::kProvGen, 0.05);
  const stream::EdgeStream es =
      stream::MakeStream(ds.graph, stream::StreamOrder::kBreadthFirst);
  const uint64_t m = es.size();

  auto baseline_session = MustCreate("loom", ds);
  engine::EdgeStreamSource baseline_source(es);
  baseline_session->IngestSome(baseline_source, m);
  const RunOutcome baseline =
      Outcome(*baseline_session, baseline_session->Finish(), ds);

  const std::string path = TempPath("rotating.loomck");
  fs::remove(path);
  fs::remove(path + ".prev");
  {
    auto doomed = MustCreate("loom", ds);
    engine::EdgeStreamSource source(es);
    std::string error;
    doomed->IngestSome(source, m / 3);
    ASSERT_TRUE(engine::CheckpointSessionRotating(doomed.get(), path, &error))
        << error;
    doomed->IngestSome(source, m / 3);
    ASSERT_TRUE(engine::CheckpointSessionRotating(doomed.get(), path, &error))
        << error;
  }
  ASSERT_TRUE(fs::exists(path));
  ASSERT_TRUE(fs::exists(path + ".prev"));

  // Torch the newest slot (torn tail: chop the last quarter off).
  const auto size = static_cast<size_t>(fs::file_size(path));
  fs::resize_file(path, size - size / 4);

  const auto make = [&](std::string* err) {
    return engine::Session::Create(ConfigFor("loom", ds),
                                   test_util::ContextFor(ds), err);
  };
  std::string error;
  bool used_fallback = false;
  auto resumed =
      engine::ResumeSessionWithFallback(make, path, &error, &used_fallback);
  ASSERT_NE(resumed, nullptr) << error;
  EXPECT_TRUE(used_fallback);
  EXPECT_EQ(resumed->edges_ingested(), m / 3);

  engine::EdgeStreamSource source(es);
  SkipEdges(source, m / 3);
  resumed->IngestSome(source, m);
  ExpectSameOutcome(Outcome(*resumed, resumed->Finish(), ds), baseline,
                    "rotation fallback");

  // Both slots dead -> both errors surface, joined.
  fs::resize_file(path + ".prev", 10);
  auto dead = engine::ResumeSessionWithFallback(make, path, &error);
  EXPECT_EQ(dead, nullptr);
  EXPECT_NE(error.find(path), std::string::npos) << error;
  EXPECT_NE(error.find(".prev"), std::string::npos) << error;
}

}  // namespace
}  // namespace loom
