#include "stream/stream_order.h"

#include "graph/graph_algos.h"
#include "util/rng.h"

namespace loom {
namespace stream {

std::string ToString(StreamOrder order) {
  switch (order) {
    case StreamOrder::kBreadthFirst: return "bfs";
    case StreamOrder::kDepthFirst: return "dfs";
    case StreamOrder::kRandom: return "random";
  }
  return "?";
}

EdgeStream MakeStream(const graph::LabeledGraph& g, StreamOrder order,
                      uint64_t seed) {
  switch (order) {
    case StreamOrder::kBreadthFirst:
      return EdgeStream(g, graph::BfsEdgeOrder(g));
    case StreamOrder::kDepthFirst:
      return EdgeStream(g, graph::DfsEdgeOrder(g));
    case StreamOrder::kRandom: {
      util::Rng rng(seed);
      return EdgeStream(g, graph::RandomEdgeOrder(g, &rng));
    }
  }
  return EdgeStream();
}

}  // namespace stream
}  // namespace loom
