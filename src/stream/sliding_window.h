// The paper's Ptemp (Sec. 3): a fixed-capacity FIFO window over the edge
// stream that also supports out-of-order removal (edges that are assigned
// early as part of a motif-match cluster leave the window before they age
// out).
//
// Implementation: a dense ring buffer exploiting the fact that stream edge
// ids are unique and monotonically increasing. An edge with id `i` lives in
// slot `i & mask` of a power-of-two slot array; a tombstone bitmap records
// which slots hold live edges. Find/Contains/Remove are a single indexed
// load, Push is an indexed store (amortised: the buffer doubles when the live
// id span outgrows it, e.g. because many admitted ids are interleaved with
// bypassed ones), and PopOldest/PeekOldest advance a lazy head cursor past
// tombstones — each tombstone is skipped exactly once, so the old O(n)
// PeekOldest rescan is gone. No per-edge heap allocation anywhere.
//
// Memory bound: the ring covers an id span of at most ~16x the window
// capacity. When admission is so rare that a lingering old edge would
// stretch the span beyond that (stream ids race ahead while the window
// never fills), the stragglers spill into a small ordered overflow map —
// the overflow holds at most `size()` entries, so total memory is bounded
// by the capacity, not by the stream's id range. External behaviour is
// unchanged; only long-lingering edges pay a map lookup.

#ifndef LOOM_STREAM_SLIDING_WINDOW_H_
#define LOOM_STREAM_SLIDING_WINDOW_H_

#include <map>
#include <optional>
#include <vector>

#include "stream/stream_edge.h"

namespace loom {
namespace stream {

/// FIFO buffer of the most recent motif-relevant edges. Capacity is the
/// paper's window size t; callers Push then drain with PopOldest while
/// OverCapacity().
class SlidingWindow {
 public:
  explicit SlidingWindow(size_t capacity);

  size_t capacity() const { return capacity_; }

  /// Number of live (non-removed) edges.
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// True once size() exceeds capacity — time to evict.
  bool OverCapacity() const { return size_ > capacity_; }

  /// Adds an edge. Ids must be unique and increasing (stream positions);
  /// gaps are fine (bypassed edges consume stream ids without entering).
  void Push(const StreamEdge& e);

  /// True if edge `id` is live in the window.
  bool Contains(graph::EdgeId id) const {
    if (InSpan(id)) return LiveBit(SlotOf(id));
    return !overflow_.empty() && overflow_.count(id) > 0;
  }

  /// Looks up a live edge by id; nullptr if absent/removed. The pointer is
  /// invalidated by the next Push (the buffer may grow).
  const StreamEdge* Find(graph::EdgeId id) const {
    if (InSpan(id)) {
      return LiveBit(SlotOf(id)) ? &slots_[SlotOf(id)] : nullptr;
    }
    if (!overflow_.empty()) {
      auto it = overflow_.find(id);
      if (it != overflow_.end()) return &it->second;
    }
    return nullptr;
  }

  /// Removes and returns the oldest live edge; nullopt when empty.
  std::optional<StreamEdge> PopOldest();

  /// Returns the oldest live edge without removing it; nullptr when empty.
  /// Same invalidation rule as Find.
  const StreamEdge* PeekOldest() const;

  /// Removes an arbitrary live edge. Returns false if not present.
  bool Remove(graph::EdgeId id);

  /// Applies `fn` to every live edge, oldest first.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (const auto& [id, e] : overflow_) {  // all overflow ids are < head_
      (void)id;
      fn(e);
    }
    for (graph::EdgeId id = head_; id < tail_; ++id) {
      if (LiveBit(SlotOf(id))) fn(slots_[SlotOf(id)]);
    }
  }

  /// Current slot-array size (for tests and capacity-growth stats).
  size_t NumSlots() const { return slots_.size(); }

 private:
  size_t SlotOf(graph::EdgeId id) const { return id & mask_; }
  bool InSpan(graph::EdgeId id) const { return id >= head_ && id < tail_; }
  bool LiveBit(size_t slot) const {
    return (live_[slot >> 6] >> (slot & 63)) & 1u;
  }
  void SetLiveBit(size_t slot) { live_[slot >> 6] |= uint64_t{1} << (slot & 63); }
  void ClearLiveBit(size_t slot) {
    live_[slot >> 6] &= ~(uint64_t{1} << (slot & 63));
  }

  /// Doubles the slot array until it covers ids [head_, upto], re-placing
  /// live edges under the new mask.
  void Grow(graph::EdgeId upto);

  /// Moves head_ to the oldest live id. Requires size_ > 0. Lazy (mutable):
  /// each tombstone is stepped over exactly once across the window's life.
  void AdvanceHead() const;

  size_t capacity_;
  std::vector<StreamEdge> slots_;  // power-of-two ring, indexed by id & mask_
  std::vector<uint64_t> live_;     // tombstone bitmap, one bit per slot
  size_t mask_ = 0;
  size_t max_slots_ = 0;            // ring growth cap (see class comment)
  mutable graph::EdgeId head_ = 0;  // no ring-live id is < head_
  graph::EdgeId tail_ = 0;          // one past the newest pushed id
  size_t size_ = 0;                 // live count (ring + overflow)
  /// Lingering live edges whose ids fell behind the ring's coverage; every
  /// key is < head_. Ordered so the oldest is begin().
  std::map<graph::EdgeId, StreamEdge> overflow_;
};

}  // namespace stream
}  // namespace loom

#endif  // LOOM_STREAM_SLIDING_WINDOW_H_
