// Streaming EDGE partitioning (ROADMAP item 2: the HDRF/DBH family).
//
// Loom and its paper baselines partition *vertices*: every vertex lives in
// exactly one part and quality is edge-cut. The competing family from the
// related work (HDRF, DBH, HEP, split-merge) partitions *edges*: every edge
// lives in exactly one part, a vertex is REPLICATED into every part that
// holds one of its edges, and quality is the replication factor
// RF = (Σ_v |R(v)|) / |V| together with edge balance
// max_p load(p) / (m / k).
//
// EdgePartitioner is the shared base: it owns the per-vertex replica sets
// (bitmask words), the online partial-degree counters both scoring rules
// read, the per-part edge loads, a running FNV-1a hash over the per-edge
// placements (the edge-stream analogue of partition::AssignmentHash), and a
// "primary" vertex Partitioning — each vertex's FIRST replica part — routed
// through AssignAndNotify so OnAssign events, assignment sinks, eval's
// edge-cut/imbalance readouts and the bench quality triple keep working
// unchanged for edge backends. Subclasses implement one virtual,
// PlaceEdge(), and inherit ingest bookkeeping, deterministic final stats
// and checkpoint Save/RestoreState.
//
// Determinism contract (pinned by tests/edge_partition_test.cc and the
// crash-recovery kill-point matrix): placements depend only on the edge
// sequence — identical across batch splits, EdgeSource kinds and
// checkpoint/resume.

#ifndef LOOM_PARTITION_EDGE_EDGE_PARTITIONER_H_
#define LOOM_PARTITION_EDGE_EDGE_PARTITIONER_H_

#include <cstdint>
#include <limits>
#include <vector>

#include "partition/partitioner.h"

namespace loom {
namespace partition {
namespace edge {

class EdgePartitioner : public Partitioner {
 public:
  explicit EdgePartitioner(const PartitionerConfig& config);

  /// Updates partial degrees, asks the subclass for a placement, then
  /// commits: replica sets, part load, edge hash, primary vertex placement
  /// (AssignAndNotify) and the OnEdgeAssign observer event.
  void Ingest(const stream::StreamEdge& e) final;

  /// Edge partitioners buffer nothing; Finalize is a no-op (trivially
  /// idempotent and non-terminal, per the Partitioner contract).
  void Finalize() override {}

  const Partitioning& partitioning() const override { return partitioning_; }

  /// Deterministic end-of-run counters: edge_assignments, vertices_seen,
  /// replica_total, max/min_part_edges and edge_assignment_hash — the raw
  /// integers eval derives the (replication factor, edge balance, edge
  /// hash) quality triple from.
  void FillFinalStats(engine::FinalStatsEvent* stats) const override;

  bool SaveState(io::CheckpointWriter* w, std::string* error) const override;
  bool RestoreState(io::CheckpointReader* r, std::string* error) override;

  // ------------------------------------------------------ quality readouts

  /// Σ_v |R(v)| / |{v : R(v) ≠ ∅}|; 1.0 is perfect (no replication), k is
  /// the worst case. 0 before any edge arrives.
  double ReplicationFactor() const;

  /// max_p load(p) · k / m; 1.0 is perfectly even. 0 before any edge.
  double EdgeBalance() const;

  /// FNV-1a over the per-edge partition choices in stream order.
  uint64_t EdgeAssignmentHash() const { return edge_hash_; }

  uint64_t EdgesAssigned() const { return edges_assigned_; }

  /// Edges placed in part p; 0 for out-of-range p (these readouts are the
  /// public quality surface — serve handlers and tools pass through ids
  /// straight from clients, so none of them may index unchecked).
  uint64_t EdgeLoad(graph::PartitionId p) const {
    return p < loads_.size() ? loads_[p] : 0;
  }

  /// True if some edge incident to v was placed in p; false for a
  /// never-seen vertex or an out-of-range part.
  bool IsReplicaOf(graph::VertexId v, graph::PartitionId p) const;

  /// |R(v)| — parts holding at least one of v's edges.
  uint32_t ReplicaCount(graph::VertexId v) const;

 protected:
  /// The one scoring decision. Called with BOTH endpoints' partial degrees
  /// already incremented for this edge (the NuCut/Adwise HDRF convention);
  /// must return a partition in [0, k) from the current state only —
  /// nothing downstream of the return has been committed yet.
  virtual graph::PartitionId PlaceEdge(const stream::StreamEdge& e) = 0;

  /// Subclass scalars carried inside the "edge_state" section (HDRF's λ/ε
  /// fingerprint). Restore returns false + `*error` on mismatch.
  virtual void SaveExtra(io::CheckpointWriter*) const {}
  virtual bool RestoreExtra(io::CheckpointReader*, std::string*) {
    return true;
  }

  Partitioning* MutablePartitioning() override { return &partitioning_; }

  uint32_t k() const { return partitioning_.k(); }

  /// Streamed-so-far degree of v (0 for never-seen vertices).
  uint32_t PartialDegree(graph::VertexId v) const {
    return v < degrees_.size() ? degrees_[v] : 0;
  }

  const std::vector<uint64_t>& loads() const { return loads_; }

  /// The canonical HDRF greedy pick for edge e (Petroni et al.; see
  /// hdrf_partitioner.h for the scoring formula) — shared by the "hdrf"
  /// backend and hep's high-degree fallback so the two stay bit-identical
  /// where they overlap. Parts whose load would exceed `capacity` are
  /// skipped (the default +inf capacity never skips; finite callers must
  /// guarantee at least one part qualifies — the min-loaded part always
  /// does for capacity > (edges+1)/k). Tie-breaking is pinned: strictly
  /// greater score wins, equal score -> smaller load, equal load -> lower
  /// id.
  graph::PartitionId HdrfGreedyPick(
      const stream::StreamEdge& e, double lambda, double epsilon,
      double capacity = std::numeric_limits<double>::infinity()) const;

 private:
  /// Grows the per-vertex tables to cover id v.
  void EnsureVertex(graph::VertexId v);

  /// Sets bit p in R(v), maintaining replica_total_/vertices_seen_.
  void AddReplica(graph::VertexId v, graph::PartitionId p);

  Partitioning partitioning_;  // primary (first-replica) vertex placement
  const uint32_t words_;       // replica mask words per vertex: ceil(k/64)
  std::vector<uint32_t> degrees_;    // partial degree per vertex slot
  std::vector<uint64_t> replicas_;   // slots × words_ bitmask words
  std::vector<uint64_t> loads_;      // edges per part
  uint64_t edges_assigned_ = 0;
  uint64_t replica_total_ = 0;       // Σ_v |R(v)|
  uint64_t vertices_seen_ = 0;       // |{v : R(v) ≠ ∅}|
  uint64_t edge_hash_ = 0xcbf29ce484222325ULL;  // FNV-1a offset basis
};

}  // namespace edge
}  // namespace partition
}  // namespace loom

#endif  // LOOM_PARTITION_EDGE_EDGE_PARTITIONER_H_
