// Quickstart: the paper's Fig. 1 example, end to end, on engine::Session.
//
// Builds the 8-vertex graph G with labels a/b/c/d, declares the workload
// Q = {q1: a-b square 30%, q2: a-b-c path 60%, q3: a-b-c-d path 10%},
// opens a Session for "loom" (string-addressable options — the same spec
// a CLI or bench config would pass), inspects the TPSTry++ and its motifs,
// streams G through a pull-based EdgeSource with an in-memory assignment
// sink attached, reads the run's behaviour from the event-sourced
// RunReport, and compares workload ipt against the Hash/LDG/Fennel
// baselines.
//
// Run:  ./example_quickstart

#include <iostream>

#include "core/loom_partitioner.h"
#include "datasets/dataset_registry.h"
#include "engine/session.h"
#include "eval/experiment.h"
#include "eval/report.h"
#include "io/assignment_sink.h"
#include "query/workload_runner.h"

int main() {
  using namespace loom;

  // 1. The Fig. 1 graph and workload.
  datasets::Dataset ds = datasets::MakeFigure1Dataset();
  std::cout << "Graph G: " << ds.NumVertices() << " vertices, "
            << ds.NumEdges() << " edges, labels {a, b, c, d}\n";
  std::cout << "Workload Q:\n";
  for (const auto& q : ds.workload.queries()) {
    std::cout << "  " << q.name << " " << q.pattern.ToString(ds.registry)
              << " @ " << q.frequency * 100 << "%\n";
  }

  // 2. One Session owns the run: a registry spec (overrides inline, like
  //    any CLI would pass), typed options, sinks and observers.
  engine::SessionConfig config;
  config.spec = "loom:k=2,window_size=6";
  config.options.expected_vertices = ds.NumVertices();
  config.options.expected_edges = ds.NumEdges();
  std::string error;
  auto session = engine::Session::Create(
      config, {&ds.workload, ds.registry.size()}, &error);
  if (session == nullptr) {
    std::cerr << "engine: " << error << "\n";
    return 1;
  }

  // Inspect the trie Loom derived from Q (Sec. 2). backend() is the
  // documented escape hatch for poking at a concrete backend; nothing in
  // the report below needs it.
  auto* loom_p = dynamic_cast<core::LoomPartitioner*>(&session->backend());
  std::cout << "\nTPSTry++ built from Q (T = 40%):\n"
            << loom_p->trie().Dump(ds.registry);

  // 3. Stream G breadth-first (Sec. 3-4): batches are pulled from an
  //    EdgeSource; assignments land in a sink as they happen.
  io::MemoryAssignmentSink assignments;
  session->AddSink(&assignments);
  auto source = engine::MakeEdgeSource(ds, stream::StreamOrder::kBreadthFirst);
  const engine::RunReport report = session->Run(*source);

  std::cout << "\nLoom's 2-way partitioning of G ("
            << report.events.vertices_assigned << " vertices assigned, "
            << report.events.cluster_decisions << " match clusters, "
            << report.Stat("matcher_extension_matches") +
                   report.Stat("matcher_join_matches")
            << " multi-edge motif matches):\n";
  for (const auto& [vertex, partition] : assignments.assignments()) {
    std::cout << "  vertex " << vertex + 1 << " (" /* 1-based like the paper */
              << ds.registry.Name(ds.graph.label(vertex)) << ") -> partition "
              << partition << "\n";
  }

  // 4. Execute the workload and count inter-partition traversals.
  query::WorkloadResult loom_result =
      query::RunWorkload(ds.graph, session->partitioning(), ds.workload);
  std::cout << "\nLoom: weighted ipt = " << loom_result.weighted_ipt
            << " over " << loom_result.weighted_traversals
            << " weighted traversals\n";

  // 5. Compare against Hash / LDG / Fennel on the same stream (the eval
  //    harness opens a Session per system under the hood).
  eval::ExperimentConfig cfg;
  cfg.k = 2;
  cfg.window_size = 6;
  eval::ComparisonResult cmp = eval::RunComparison(ds, cfg);
  std::cout << "\nAll systems (ipt as % of Hash):\n";
  eval::PrintRelativeIptTable({cmp}, std::cout);
  return 0;
}
