#include "util/binomial.h"

#include <cassert>
#include <cmath>

namespace loom {
namespace util {

double LogFactorial(uint64_t n) { return std::lgamma(static_cast<double>(n) + 1.0); }

double LogBinomialCoefficient(uint64_t n, uint64_t k) {
  assert(k <= n);
  return LogFactorial(n) - LogFactorial(k) - LogFactorial(n - k);
}

double BinomialPmf(uint64_t n, uint64_t k, double p) {
  assert(p >= 0.0 && p <= 1.0);
  if (k > n) return 0.0;
  if (p == 0.0) return k == 0 ? 1.0 : 0.0;
  if (p == 1.0) return k == n ? 1.0 : 0.0;
  double log_pmf = LogBinomialCoefficient(n, k) +
                   static_cast<double>(k) * std::log(p) +
                   static_cast<double>(n - k) * std::log1p(-p);
  return std::exp(log_pmf);
}

double BinomialCdf(uint64_t n, uint64_t k, double p) {
  if (k >= n) return 1.0;
  double sum = 0.0;
  for (uint64_t x = 0; x <= k; ++x) sum += BinomialPmf(n, x, p);
  return sum > 1.0 ? 1.0 : sum;
}

}  // namespace util
}  // namespace loom
