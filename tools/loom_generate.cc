// loom_generate — materialise a synthetic evaluation dataset (graph +
// canonical workload) to files usable by loom_partition, and/or export its
// edge sequence as a replayable stream file.
//
// Usage:
//   loom_generate --dataset dblp|provgen|musicbrainz|lubm-100|lubm-4000
//                 [--scale 1.0] [--graph-out G.lg] [--workload-out Q.lw]
//                 [--write-stream S.les] [--stream-format binary|text]
//                 [--order bfs|dfs|random|canonical] [--seed N] [--lazy]
//
// --write-stream exports the dataset's edge sequence (io/edge_stream_io.h)
// in the chosen arrival order; loom_partition --input replays it with
// bounded memory. With --lazy the edges come straight from the generator
// through engine::GeneratorEdgeSource — no graph is ever materialised, so
// LUBM exports at full paper scale on small machines (lazy orders:
// canonical/random; bfs/dfs need adjacency and therefore the materialised
// path). The lazy and materialised exports are bit-identical for the same
// order and seed.

#include <cstring>
#include <iostream>
#include <memory>
#include <string>

#include "datasets/dataset_registry.h"
#include "engine/generator_source.h"
#include "graph/graph_io.h"
#include "io/edge_stream_io.h"
#include "query/workload_io.h"
#include "util/string_util.h"

int main(int argc, char** argv) {
  using namespace loom;
  std::string dataset_name, graph_out, workload_out, stream_out;
  std::string format_name = "binary", order_name = "canonical";
  double scale = 1.0;
  uint64_t seed = 0x10c5;
  bool lazy = false;
  // Numeric flags parse through exception-free helpers: a typo'd value
  // must print the usual error line, not an unhandled-exception abort.
  bool parse_ok = true;
  auto parse_double = [&](const char* flag, const char* v, double* out) {
    // util::ParseFiniteDouble, not std::stod: stod accepts "nan"/"inf",
    // and a NaN scale passes every downstream range check unnoticed.
    if (!util::ParseFiniteDouble(v, out)) {
      std::cerr << flag << ": not a finite number: '" << v << "'\n";
      parse_ok = false;
    }
  };
  auto parse_u64 = [&](const char* flag, const char* v, uint64_t* out) {
    size_t end = 0;
    try {
      *out = std::stoull(v, &end, 0);
    } catch (const std::exception&) {
      end = 0;
    }
    if (end != std::strlen(v)) {
      std::cerr << flag << ": not an integer: '" << v << "'\n";
      parse_ok = false;
    }
  };
  for (int i = 1; i < argc; ++i) {
    auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (std::strcmp(argv[i], "--dataset") == 0) {
      const char* v = value();
      if (v) dataset_name = v;
    } else if (std::strcmp(argv[i], "--scale") == 0) {
      const char* v = value();
      if (v) parse_double("--scale", v, &scale);
    } else if (std::strcmp(argv[i], "--graph-out") == 0) {
      const char* v = value();
      if (v) graph_out = v;
    } else if (std::strcmp(argv[i], "--workload-out") == 0) {
      const char* v = value();
      if (v) workload_out = v;
    } else if (std::strcmp(argv[i], "--write-stream") == 0) {
      const char* v = value();
      if (v) stream_out = v;
    } else if (std::strcmp(argv[i], "--stream-format") == 0) {
      const char* v = value();
      if (v) format_name = v;
    } else if (std::strcmp(argv[i], "--order") == 0) {
      const char* v = value();
      if (v) order_name = v;
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      const char* v = value();
      if (v) parse_u64("--seed", v, &seed);
    } else if (std::strcmp(argv[i], "--lazy") == 0) {
      lazy = true;
    }
  }
  if (!parse_ok) return 2;
  if (dataset_name.empty() ||
      (graph_out.empty() && workload_out.empty() && stream_out.empty())) {
    std::cerr << "usage: loom_generate --dataset NAME [--scale F]\n"
                 "         [--graph-out G.lg] [--workload-out Q.lw]\n"
                 "         [--write-stream S.les] [--stream-format "
                 "binary|text]\n"
                 "         [--order bfs|dfs|random|canonical] [--seed N] "
                 "[--lazy]\n"
                 "(at least one output flag is required)\n";
    return 2;
  }

  datasets::DatasetId id;
  if (dataset_name == "dblp") id = datasets::DatasetId::kDblp;
  else if (dataset_name == "provgen") id = datasets::DatasetId::kProvGen;
  else if (dataset_name == "musicbrainz") id = datasets::DatasetId::kMusicBrainz;
  else if (dataset_name == "lubm-100") id = datasets::DatasetId::kLubm100;
  else if (dataset_name == "lubm-4000") id = datasets::DatasetId::kLubm4000;
  else {
    std::cerr << "unknown dataset: " << dataset_name << "\n";
    return 2;
  }

  io::StreamFormat format = io::StreamFormat::kBinary;
  if (!io::ParseStreamFormat(format_name, &format)) {
    std::cerr << "unknown stream format: " << format_name << "\n";
    return 2;
  }
  stream::StreamOrder order = stream::StreamOrder::kCanonical;
  if (!stream::ParseStreamOrder(order_name, &order)) {
    std::cerr << "unknown order: " << order_name << "\n";
    return 2;
  }

  try {
    if (lazy) {
      if (!graph_out.empty()) {
        std::cerr << "--lazy cannot materialise a graph file; drop "
                     "--graph-out or the --lazy flag\n";
        return 2;
      }
      // Generator -> stream file, no graph in RAM at any point.
      engine::GeneratorEdgeSource source(id, scale, order, seed);
      if (!stream_out.empty()) {
        const uint64_t written = io::WriteEdgeStream(
            stream_out, source.registry(), source.NumVertices(), &source,
            format);
        std::cerr << "wrote " << written << " edges over "
                  << source.NumVertices() << " vertices to " << stream_out
                  << " (" << io::ToString(format) << ", " << order_name
                  << ", lazy)\n";
      }
      if (!workload_out.empty()) {
        graph::LabelRegistry registry = source.registry();
        query::Workload workload = datasets::WorkloadFor(id, &registry);
        query::WriteWorkloadFile(workload, registry, workload_out);
        std::cerr << "wrote " << workload.size() << " queries to "
                  << workload_out << "\n";
      }
      return 0;
    }

    datasets::Dataset ds = datasets::MakeDataset(id, scale);
    if (!graph_out.empty()) {
      graph::WriteGraphFile(ds.graph, ds.registry, graph_out);
      std::cerr << "wrote " << ds.NumVertices() << " vertices / "
                << ds.NumEdges() << " edges to " << graph_out << "\n";
    }
    if (!workload_out.empty()) {
      query::WriteWorkloadFile(ds.workload, ds.registry, workload_out);
      std::cerr << "wrote " << ds.workload.size() << " queries to "
                << workload_out << "\n";
    }
    if (!stream_out.empty()) {
      std::unique_ptr<engine::EdgeSource> source =
          engine::MakeEdgeSource(ds, order, seed);
      const uint64_t written = io::WriteEdgeStream(
          stream_out, ds.registry, ds.NumVertices(), source.get(), format);
      std::cerr << "wrote " << written << " edges to " << stream_out << " ("
                << io::ToString(format) << ", " << order_name << ")\n";
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
