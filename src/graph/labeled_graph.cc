#include "graph/labeled_graph.h"

#include <algorithm>
#include <cassert>
#include <unordered_set>

namespace loom {
namespace graph {

VertexId LabeledGraph::Builder::AddVertex(LabelId label) {
  VertexId id = static_cast<VertexId>(labels_.size());
  labels_.push_back(label);
  return id;
}

void LabeledGraph::Builder::AddEdge(VertexId u, VertexId v) {
  assert(u < labels_.size() && v < labels_.size());
  edges_.emplace_back(u, v);
}

LabeledGraph LabeledGraph::Builder::Build() {
  LabeledGraph g;
  g.labels_ = std::move(labels_);
  labels_.clear();

  // Normalise, drop self loops, dedupe.
  std::vector<Edge> uniq;
  uniq.reserve(edges_.size());
  for (const Edge& e : edges_) {
    if (e.u == e.v) continue;
    uniq.push_back(e.Normalized());
  }
  edges_.clear();
  std::sort(uniq.begin(), uniq.end(), [](const Edge& a, const Edge& b) {
    return a.u != b.u ? a.u < b.u : a.v < b.v;
  });
  uniq.erase(std::unique(uniq.begin(), uniq.end(),
                         [](const Edge& a, const Edge& b) {
                           return a.u == b.u && a.v == b.v;
                         }),
             uniq.end());
  g.edges_ = std::move(uniq);

  // CSR construction: counting sort on endpoints.
  const size_t n = g.labels_.size();
  const size_t m = g.edges_.size();
  g.offsets_.assign(n + 1, 0);
  for (const Edge& e : g.edges_) {
    ++g.offsets_[e.u + 1];
    ++g.offsets_[e.v + 1];
  }
  for (size_t i = 1; i <= n; ++i) g.offsets_[i] += g.offsets_[i - 1];
  g.adj_.resize(2 * m);
  g.adj_eids_.resize(2 * m);
  std::vector<size_t> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
  for (EdgeId eid = 0; eid < m; ++eid) {
    const Edge& e = g.edges_[eid];
    g.adj_[cursor[e.u]] = e.v;
    g.adj_eids_[cursor[e.u]++] = eid;
    g.adj_[cursor[e.v]] = e.u;
    g.adj_eids_[cursor[e.v]++] = eid;
  }
  return g;
}

bool LabeledGraph::HasEdge(VertexId u, VertexId v) const {
  if (Degree(u) > Degree(v)) std::swap(u, v);
  for (VertexId w : Neighbors(u)) {
    if (w == v) return true;
  }
  return false;
}

std::vector<size_t> LabeledGraph::LabelHistogram() const {
  LabelId max_label = 0;
  for (LabelId l : labels_) max_label = std::max(max_label, l);
  std::vector<size_t> hist(labels_.empty() ? 0 : max_label + 1, 0);
  for (LabelId l : labels_) ++hist[l];
  return hist;
}

}  // namespace graph
}  // namespace loom
