// Text serialisation of labelled graphs.
//
// Format (line-oriented, '#' comments):
//   L <label-name>        -- one per label, in LabelId order
//   V <vertex-id> <label-id>
//   E <u> <v>
// Vertex ids must be dense 0..n-1. This keeps generated datasets inspectable
// and lets users bring their own graphs to the examples.

#ifndef LOOM_GRAPH_GRAPH_IO_H_
#define LOOM_GRAPH_GRAPH_IO_H_

#include <iosfwd>
#include <string>

#include "graph/label_registry.h"
#include "graph/labeled_graph.h"

namespace loom {
namespace graph {

/// Writes `g` (and its label names) to `os`.
void WriteGraph(const LabeledGraph& g, const LabelRegistry& registry,
                std::ostream& os);

/// Reads a graph written by WriteGraph. Throws std::runtime_error on
/// malformed input. Labels are interned into `registry` in file order.
LabeledGraph ReadGraph(std::istream& is, LabelRegistry* registry);

/// File-path conveniences.
void WriteGraphFile(const LabeledGraph& g, const LabelRegistry& registry,
                    const std::string& path);
LabeledGraph ReadGraphFile(const std::string& path, LabelRegistry* registry);

}  // namespace graph
}  // namespace loom

#endif  // LOOM_GRAPH_GRAPH_IO_H_
