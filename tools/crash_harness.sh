#!/usr/bin/env bash
# Crash-fault injection harness: SIGKILL a real loom_partition child
# mid-stream, resume from whatever LOOMCK checkpoint survived on disk, and
# require the finished run to be bit-identical to an uninterrupted
# reference — same assignment set, same edge cut, same imbalance.
#
# This is the out-of-process half of the recovery story
# (tests/crash_recovery_test.cc cuts runs in-process at exact kill points;
# here the kill lands wherever the scheduler puts it, including mid-commit,
# which is exactly what the two-slot rotation must survive).
#
# Usage: tools/crash_harness.sh [BUILD_DIR]   (default: ./build)
set -euo pipefail

BIN_DIR="${1:-build}"
GEN="$BIN_DIR/loom_generate"
PART="$BIN_DIR/loom_partition"
for bin in "$GEN" "$PART"; do
  if [ ! -x "$bin" ]; then
    echo "crash_harness: missing binary $bin (build the repo first)" >&2
    exit 2
  fi
done

WORKDIR="$(mktemp -d)"
trap 'rm -rf "$WORKDIR"' EXIT

SEED=20260808  # fixed: the reference and every crash attempt see one stream
COMMON=(--workload "$WORKDIR/q.lw" --system loom --k 8 --window 2000)

echo "== generating fixed-seed dataset + stream (seed $SEED)"
"$GEN" --dataset provgen --scale 3.0 \
  --graph-out "$WORKDIR/g.lg" --workload-out "$WORKDIR/q.lw" \
  --write-stream "$WORKDIR/s.les" --order bfs --seed "$SEED" >/dev/null 2>&1

echo "== reference run (uninterrupted)"
"$PART" --input "$WORKDIR/s.les" "${COMMON[@]}" \
  --out "$WORKDIR/ref.tsv" --evaluate 2> "$WORKDIR/ref.log"
REF_QUALITY=$(grep -o 'edge cut: [0-9]* / [0-9]*, imbalance [0-9.]*%' "$WORKDIR/ref.log")
echo "   $REF_QUALITY"

# Crash loop: start a checkpointing child, SIGKILL it as soon as the first
# checkpoint appears on disk. If the child managed to finish before the
# kill landed, the attempt proves nothing — retry.
killed=0
for attempt in $(seq 1 20); do
  rm -f "$WORKDIR"/ck.loomck "$WORKDIR"/ck.loomck.prev "$WORKDIR"/ck.loomck.tmp
  "$PART" --input "$WORKDIR/s.les" "${COMMON[@]}" \
    --out "$WORKDIR/crash.tsv" \
    --checkpoint "$WORKDIR/ck.loomck" --checkpoint-every 10000 \
    2> "$WORKDIR/crash.log" &
  pid=$!
  while kill -0 "$pid" 2>/dev/null && [ ! -f "$WORKDIR/ck.loomck" ]; do
    sleep 0.005
  done
  kill -9 "$pid" 2>/dev/null || true
  wait "$pid" 2>/dev/null && status=0 || status=$?
  if [ "$status" -eq 137 ] && [ -f "$WORKDIR/ck.loomck" ]; then
    echo "== attempt $attempt: SIGKILL landed mid-stream ($(grep -c checkpointed "$WORKDIR/crash.log" || true) checkpoints written)"
    killed=1
    break
  fi
  echo "   attempt $attempt: child finished before the kill (status $status), retrying"
done
if [ "$killed" -ne 1 ]; then
  echo "crash_harness: FAIL — could not land a mid-stream SIGKILL in 20 attempts" >&2
  exit 1
fi

echo "== resuming from the surviving checkpoint"
"$PART" --input "$WORKDIR/s.les" "${COMMON[@]}" \
  --out "$WORKDIR/resumed.tsv" --resume "$WORKDIR/ck.loomck" \
  --evaluate 2> "$WORKDIR/resume.log"
grep 'resumed from' "$WORKDIR/resume.log" | sed 's/^/   /'
RES_QUALITY=$(grep -o 'edge cut: [0-9]* / [0-9]*, imbalance [0-9.]*%' "$WORKDIR/resume.log")
echo "   $RES_QUALITY"

# The bar: identical assignment set (placement order legitimately differs —
# the resumed run re-emits restored placements first) and identical quality.
sort "$WORKDIR/ref.tsv" > "$WORKDIR/ref.sorted"
sort "$WORKDIR/resumed.tsv" > "$WORKDIR/resumed.sorted"
if ! cmp -s "$WORKDIR/ref.sorted" "$WORKDIR/resumed.sorted"; then
  echo "crash_harness: FAIL — resumed assignments diverge from the reference:" >&2
  diff "$WORKDIR/ref.sorted" "$WORKDIR/resumed.sorted" | head -20 >&2
  exit 1
fi
if [ "$REF_QUALITY" != "$RES_QUALITY" ]; then
  echo "crash_harness: FAIL — quality drifted: '$REF_QUALITY' vs '$RES_QUALITY'" >&2
  exit 1
fi

echo "crash_harness: PASS — resumed run is bit-identical to the uninterrupted reference"
