// Small string helpers shared across IO and the harness.

#ifndef LOOM_UTIL_STRING_UTIL_H_
#define LOOM_UTIL_STRING_UTIL_H_

#include <string>
#include <vector>

namespace loom {
namespace util {

/// Splits `s` on `delim`, keeping empty fields.
std::vector<std::string> Split(const std::string& s, char delim);

/// Strips ASCII whitespace from both ends.
std::string Trim(const std::string& s);

/// True if `s` begins with `prefix`.
bool StartsWith(const std::string& s, const std::string& prefix);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, const std::string& sep);

/// Human-readable count: 1234567 -> "1.2M", 12345 -> "12.3k".
std::string HumanCount(uint64_t n);

}  // namespace util
}  // namespace loom

#endif  // LOOM_UTIL_STRING_UTIL_H_
