// The paper's Ptemp (Sec. 3): a fixed-capacity FIFO window over the edge
// stream that also supports out-of-order removal (edges that are assigned
// early as part of a motif-match cluster leave the window before they age
// out).
//
// Implementation: FIFO deque of stream edge ids with lazy deletion, plus a
// hash map for id -> edge lookup. All operations are O(1) amortised.

#ifndef LOOM_STREAM_SLIDING_WINDOW_H_
#define LOOM_STREAM_SLIDING_WINDOW_H_

#include <deque>
#include <optional>
#include <unordered_map>

#include "stream/stream_edge.h"

namespace loom {
namespace stream {

/// FIFO buffer of the most recent motif-relevant edges. Capacity is the
/// paper's window size t; callers Push then drain with PopOldest while
/// OverCapacity().
class SlidingWindow {
 public:
  explicit SlidingWindow(size_t capacity) : capacity_(capacity) {}

  size_t capacity() const { return capacity_; }

  /// Number of live (non-removed) edges.
  size_t size() const { return edges_.size(); }
  bool empty() const { return edges_.empty(); }

  /// True once size() exceeds capacity — time to evict.
  bool OverCapacity() const { return edges_.size() > capacity_; }

  /// Adds an edge. Ids must be unique and increasing (stream positions).
  void Push(const StreamEdge& e);

  /// True if edge `id` is live in the window.
  bool Contains(graph::EdgeId id) const { return edges_.count(id) > 0; }

  /// Looks up a live edge by id; nullptr if absent/removed.
  const StreamEdge* Find(graph::EdgeId id) const;

  /// Removes and returns the oldest live edge; nullopt when empty.
  std::optional<StreamEdge> PopOldest();

  /// Returns the oldest live edge without removing it; nullptr when empty.
  const StreamEdge* PeekOldest() const;

  /// Removes an arbitrary live edge. Returns false if not present.
  bool Remove(graph::EdgeId id);

  /// Applies `fn` to every live edge, oldest first.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (graph::EdgeId id : fifo_) {
      auto it = edges_.find(id);
      if (it != edges_.end()) fn(it->second);
    }
  }

 private:
  // Drops removed ids from the front of the FIFO.
  void SkimFront();
  void SkimFrontMutable();

  size_t capacity_;
  std::deque<graph::EdgeId> fifo_;  // may contain removed ids (lazy deletion)
  std::unordered_map<graph::EdgeId, StreamEdge> edges_;  // live edges only
};

}  // namespace stream
}  // namespace loom

#endif  // LOOM_STREAM_SLIDING_WINDOW_H_
