#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <tuple>

#include "datasets/dataset_registry.h"
#include "engine/engine.h"
#include "eval/experiment.h"
#include "partition/fennel_partitioner.h"
#include "partition/hash_partitioner.h"
#include "partition/ldg_partitioner.h"
#include "partition/partition_metrics.h"
#include "stream/stream_order.h"
#include "test_util.h"

namespace loom {
namespace partition {
namespace {

using test_util::RunAll;

PartitionerConfig ConfigFor(const datasets::Dataset& ds, uint32_t k) {
  PartitionerConfig cfg;
  cfg.k = k;
  cfg.expected_vertices = ds.NumVertices();
  cfg.expected_edges = ds.NumEdges();
  return cfg;
}

// ---------------------------------------------------------------- hash

TEST(HashPartitionerTest, DeterministicPlacement) {
  auto ds = datasets::MakeFigure1Dataset();
  HashPartitioner a(ConfigFor(ds, 4)), b(ConfigFor(ds, 4));
  for (graph::VertexId v = 0; v < 100; ++v) {
    EXPECT_EQ(a.HashPlace(v), b.HashPlace(v));
    EXPECT_LT(a.HashPlace(v), 4u);
  }
}

TEST(HashPartitionerTest, RoughlyBalancedOnLargeInput) {
  auto ds = datasets::MakeDataset(datasets::DatasetId::kProvGen, 0.1);
  HashPartitioner p(ConfigFor(ds, 8));
  auto es = stream::MakeStream(ds.graph, stream::StreamOrder::kBreadthFirst);
  RunAll(&p, es);
  EXPECT_TRUE(FullyAssigned(ds.graph, p.partitioning()));
  EXPECT_LT(Imbalance(p.partitioning()), 0.10);
}

// ----------------------------------------------------------------- ldg

TEST(LdgPartitionerTest, NearPerfectBalance) {
  auto ds = datasets::MakeDataset(datasets::DatasetId::kProvGen, 0.1);
  LdgPartitioner p(ConfigFor(ds, 8));
  auto es = stream::MakeStream(ds.graph, stream::StreamOrder::kBreadthFirst);
  RunAll(&p, es);
  EXPECT_TRUE(FullyAssigned(ds.graph, p.partitioning()));
  // Strict C = n/k keeps LDG within a few percent (paper: 1-3%).
  EXPECT_LT(Imbalance(p.partitioning()), 0.05);
}

TEST(LdgPartitionerTest, BeatsHashOnEdgeCut) {
  auto ds = datasets::MakeDataset(datasets::DatasetId::kProvGen, 0.1);
  auto es = stream::MakeStream(ds.graph, stream::StreamOrder::kBreadthFirst);
  LdgPartitioner ldg(ConfigFor(ds, 8));
  HashPartitioner hash(ConfigFor(ds, 8));
  RunAll(&ldg, es);
  RunAll(&hash, es);
  EXPECT_LT(EdgeCut(ds.graph, ldg.partitioning()),
            EdgeCut(ds.graph, hash.partitioning()));
}

TEST(LdgHeuristicTest, FollowsNeighbourMajority) {
  graph::DynamicGraph seen;
  Partitioning part(2, 10);
  for (graph::VertexId v = 0; v < 5; ++v) seen.TouchVertex(v, 0);
  // Vertices 1, 2 in partition 1; vertex 0 connects to them.
  seen.AddEdge(0, 1);
  seen.AddEdge(0, 2);
  part.Assign(1, 1);
  part.Assign(2, 1);
  EXPECT_EQ(LdgHeuristic::ChooseForVertex(0, seen, part), 1u);
}

TEST(LdgHeuristicTest, ZeroSignalGoesLeastLoaded) {
  graph::DynamicGraph seen;
  Partitioning part(3, 30);
  seen.TouchVertex(0, 0);
  part.Assign(10, 0);  // make partition 0 bigger
  bool had_signal = true;
  stream::StreamEdge e;
  e.u = 0;
  e.v = 0;
  e.label_u = e.label_v = 0;
  graph::PartitionId chosen = LdgHeuristic::Choose(e, seen, part, &had_signal);
  EXPECT_FALSE(had_signal);
  EXPECT_NE(chosen, 0u);  // least-loaded is 1 or 2
}

TEST(LdgHeuristicTest, ResidualCapacityDiscountsFullPartitions) {
  graph::DynamicGraph seen;
  Partitioning part(2, 8, 1.0);  // capacity 4
  for (graph::VertexId v = 0; v < 8; ++v) seen.TouchVertex(v, 0);
  // Partition 0 nearly full with 3 of vertex 0's neighbours; partition 1 has
  // 2 neighbours but lots of room.
  seen.AddEdge(0, 1);
  seen.AddEdge(0, 2);
  seen.AddEdge(0, 3);
  seen.AddEdge(0, 4);
  seen.AddEdge(0, 5);
  part.Assign(1, 0);
  part.Assign(2, 0);
  part.Assign(3, 0);
  part.Assign(6, 0);  // filler -> partition 0 at capacity 4
  part.Assign(4, 1);
  part.Assign(5, 1);
  // Partition 0 is AtCapacity -> excluded; partition 1 wins.
  EXPECT_EQ(LdgHeuristic::ChooseForVertex(0, seen, part), 1u);
}

// -------------------------------------------------------------- fennel

TEST(FennelPartitionerTest, AlphaMatchesFormula) {
  auto ds = datasets::MakeDataset(datasets::DatasetId::kProvGen, 0.05);
  FennelPartitioner p(ConfigFor(ds, 8));
  const double n = static_cast<double>(ds.NumVertices());
  const double m = static_cast<double>(ds.NumEdges());
  EXPECT_NEAR(p.alpha(), std::sqrt(8.0) * m / std::pow(n, 1.5), 1e-9);
  EXPECT_DOUBLE_EQ(p.gamma(), 1.5);
}

TEST(FennelPartitionerTest, FullyAssignsAndRespectsImbalance) {
  auto ds = datasets::MakeDataset(datasets::DatasetId::kProvGen, 0.1);
  FennelPartitioner p(ConfigFor(ds, 8));
  auto es = stream::MakeStream(ds.graph, stream::StreamOrder::kBreadthFirst);
  RunAll(&p, es);
  EXPECT_TRUE(FullyAssigned(ds.graph, p.partitioning()));
  EXPECT_LT(Imbalance(p.partitioning()), 0.11);
}

TEST(FennelPartitionerTest, BeatsLdgOnEdgeCut) {
  // The paper (citing [31]): Fennel cuts fewer edges than LDG at k = 8.
  auto ds = datasets::MakeDataset(datasets::DatasetId::kProvGen, 0.15);
  auto es = stream::MakeStream(ds.graph, stream::StreamOrder::kBreadthFirst);
  FennelPartitioner fennel(ConfigFor(ds, 8));
  LdgPartitioner ldg(ConfigFor(ds, 8));
  RunAll(&fennel, es);
  RunAll(&ldg, es);
  EXPECT_LT(EdgeCut(ds.graph, fennel.partitioning()),
            EdgeCut(ds.graph, ldg.partitioning()));
}

// ------------------------------------- cross-system parameterised sweep

using SweepParam =
    std::tuple<datasets::DatasetId, stream::StreamOrder, uint32_t /*k*/>;

class PartitionerSweepTest : public ::testing::TestWithParam<SweepParam> {};

TEST_P(PartitionerSweepTest, AllSystemsFullyAssignWithinBalance) {
  auto [dataset, order, k] = GetParam();
  auto ds = datasets::MakeDataset(dataset, 0.05);
  auto es = stream::MakeStream(ds.graph, order, 0x5eed);
  PartitionerConfig cfg = ConfigFor(ds, k);

  HashPartitioner hash(cfg);
  LdgPartitioner ldg(cfg);
  FennelPartitioner fennel(cfg);
  for (Partitioner* p :
       std::initializer_list<Partitioner*>{&hash, &ldg, &fennel}) {
    RunAll(p, es);
    EXPECT_TRUE(FullyAssigned(ds.graph, p->partitioning()))
        << p->name() << " on " << datasets::ToString(dataset);
    if (p->name() != "hash") {
      EXPECT_LT(Imbalance(p->partitioning()), 0.12) << p->name();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PartitionerSweepTest,
    ::testing::Combine(
        ::testing::Values(datasets::DatasetId::kDblp,
                          datasets::DatasetId::kProvGen,
                          datasets::DatasetId::kLubm100),
        ::testing::Values(stream::StreamOrder::kBreadthFirst,
                          stream::StreamOrder::kDepthFirst,
                          stream::StreamOrder::kRandom),
        ::testing::Values(2u, 8u, 32u)));

// -------------------------------------------- Finalize contract (all five)
//
// Pins the partitioner.h contract: Finalize is idempotent, and Ingest after
// Finalize resumes the stream (a later Finalize covers the new vertices).
// "loom-sharded" runs the same suite: its worker threads live across
// checkpoints, so these tests double as thread-lifecycle coverage (and as
// race targets for the TSan CI leg).

class PartitionerContractTest
    : public ::testing::TestWithParam<const char*> {};

TEST_P(PartitionerContractTest, DoubleFinalizeIsIdempotent) {
  auto ds = datasets::MakeDataset(datasets::DatasetId::kProvGen, 0.05);
  auto es = stream::MakeStream(ds.graph, stream::StreamOrder::kBreadthFirst);

  // The small OptionsFor window forces a real drain at Finalize.
  auto p = test_util::MakeBackend(GetParam(), test_util::OptionsFor(ds), ds);
  ASSERT_NE(p, nullptr);

  for (const stream::StreamEdge& e : es) p->Ingest(e);
  p->Finalize();
  const uint64_t first = eval::HashAssignment(p->partitioning(),
                                              ds.NumVertices());
  const size_t assigned = p->partitioning().NumAssigned();
  p->Finalize();
  p->Finalize();
  EXPECT_EQ(eval::HashAssignment(p->partitioning(), ds.NumVertices()), first);
  EXPECT_EQ(p->partitioning().NumAssigned(), assigned);
}

TEST_P(PartitionerContractTest, IngestAfterFinalizeResumesTheStream) {
  auto ds = datasets::MakeDataset(datasets::DatasetId::kProvGen, 0.05);
  auto es = stream::MakeStream(ds.graph, stream::StreamOrder::kBreadthFirst);
  ASSERT_GT(es.size(), 100u);

  auto p = test_util::MakeBackend(GetParam(), test_util::OptionsFor(ds), ds);
  ASSERT_NE(p, nullptr);

  // Finalize mid-stream (a checkpoint), then keep streaming.
  const size_t half = es.size() / 2;
  for (size_t i = 0; i < half; ++i) p->Ingest(es[i]);
  p->Finalize();
  for (size_t i = half; i < es.size(); ++i) p->Ingest(es[i]);
  p->Finalize();
  EXPECT_TRUE(FullyAssigned(ds.graph, p->partitioning())) << p->name();
}

TEST_P(PartitionerContractTest, IngestBatchMatchesPerEdgeIngest) {
  auto ds = datasets::MakeDataset(datasets::DatasetId::kProvGen, 0.05);
  auto es = stream::MakeStream(ds.graph, stream::StreamOrder::kBreadthFirst);

  const engine::EngineOptions options = test_util::OptionsFor(ds);
  auto per_edge = test_util::MakeBackend(GetParam(), options, ds);
  auto batched = test_util::MakeBackend(GetParam(), options, ds);
  ASSERT_NE(per_edge, nullptr);
  ASSERT_NE(batched, nullptr);

  for (const stream::StreamEdge& e : es) per_edge->Ingest(e);
  per_edge->Finalize();

  std::vector<stream::StreamEdge> all(es.begin(), es.end());
  const size_t kBatch = 61;  // awkward on purpose
  for (size_t i = 0; i < all.size(); i += kBatch) {
    batched->IngestBatch(std::span<const stream::StreamEdge>(
        all.data() + i, std::min(kBatch, all.size() - i)));
  }
  batched->Finalize();

  EXPECT_EQ(eval::HashAssignment(per_edge->partitioning(), ds.NumVertices()),
            eval::HashAssignment(batched->partitioning(), ds.NumVertices()))
      << GetParam();
}

TEST_P(PartitionerContractTest, SeededCheckpointScheduleIsDeterministic) {
  // Randomized schedule property: random batch sizes interleaved with
  // mid-stream Finalize checkpoints. Two runs of the same seeded schedule
  // must agree bit-for-bit, end fully assigned, and re-Finalize stably.
  // For loom-sharded this is the determinism probe across thread
  // interleavings — the schedule is fixed, the OS scheduling is not.
  auto ds = datasets::MakeDataset(datasets::DatasetId::kProvGen, 0.05);
  auto es = stream::MakeStream(ds.graph, stream::StreamOrder::kRandom, 0x7ab);
  const std::vector<stream::StreamEdge> all(es.begin(), es.end());
  const engine::EngineOptions options = test_util::OptionsFor(ds);

  auto run = [&](uint64_t seed) -> test_util::Quality {
    std::mt19937_64 rng(seed);
    auto p = test_util::MakeBackend(GetParam(), options, ds);
    if (p == nullptr) return {};
    size_t i = 0;
    while (i < all.size()) {
      const size_t n = std::min<size_t>(1 + rng() % 200, all.size() - i);
      p->IngestBatch(std::span<const stream::StreamEdge>(all.data() + i, n));
      i += n;
      if (rng() % 8 == 0) p->Finalize();  // checkpoint, then resume
    }
    p->Finalize();
    EXPECT_TRUE(FullyAssigned(ds.graph, p->partitioning())) << p->name();
    const test_util::Quality q = test_util::QualityOf(*p, ds);
    p->Finalize();
    EXPECT_EQ(test_util::QualityOf(*p, ds), q) << p->name();
    return q;
  };

  for (const uint64_t seed : {uint64_t{42}, uint64_t{0xfeed}}) {
    EXPECT_EQ(run(seed), run(seed)) << GetParam() << " seed=" << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(AllBackends, PartitionerContractTest,
                         ::testing::Values("hash", "ldg", "fennel", "loom",
                                           "loom-sharded", "hdrf:lambda=1.1",
                                           "dbh", "hep:threshold_factor=4"));

}  // namespace
}  // namespace partition
}  // namespace loom
