// Lazy dataset-generator edge source: stream a Table 1 dataset without
// building the graph.
//
// MakeDataset materialises a full CSR LabeledGraph (edges + two adjacency
// mirrors + offsets, ~24 bytes/edge) plus the workload before a single
// edge is streamed. GeneratorEdgeSource runs the same generator walk
// through the datasets::GraphSink seam but keeps only what streaming
// needs: the normalised edge list (8 bytes/edge) and one label per vertex
// — about a third of the footprint, and no adjacency structure at all.
// That is what lets LUBM stream at full paper scale on hardware that
// cannot hold its CSR form.
//
// Fidelity: the source replicates LabeledGraph::Builder::Build's
// normalisation (self-loop drop, (min,max) orientation, sort, dedupe) and
// MakeDataset's DropIsolatedVertices compaction, so its edge sequence is
// bit-identical to streaming MakeDataset(id, scale).graph with the same
// StreamOrder — pinned by the edge-source contract suite. Orders that are
// computable without adjacency are supported (kCanonical, kRandom);
// kBreadthFirst/kDepthFirst need the materialised graph and throw an
// actionable std::invalid_argument.

#ifndef LOOM_ENGINE_GENERATOR_SOURCE_H_
#define LOOM_ENGINE_GENERATOR_SOURCE_H_

#include <vector>

#include "datasets/dataset_registry.h"
#include "engine/edge_source.h"
#include "graph/label_registry.h"
#include "stream/stream_order.h"

namespace loom {
namespace engine {

class GeneratorEdgeSource : public EdgeSource {
 public:
  /// Runs the `id` generator at `scale` once (labels + edge list only; no
  /// CSR). `seed` matters only for StreamOrder::kRandom, where it matches
  /// MakeEdgeSource's. Throws std::invalid_argument for orders that need
  /// adjacency (bfs/dfs).
  GeneratorEdgeSource(datasets::DatasetId id, double scale,
                      stream::StreamOrder order = stream::StreamOrder::kCanonical,
                      uint64_t seed = 0x10c5);

  size_t NextBatch(std::span<stream::StreamEdge> out) override;
  size_t SizeHint() const override { return edges_.size(); }
  void Reset() override { pos_ = 0; }

  /// Post-compaction totals, for sizing EngineOptions.
  size_t NumVertices() const { return labels_.size(); }
  size_t NumEdges() const { return edges_.size(); }

  /// The generator's label table (what an EdgeStreamWriter should persist).
  const graph::LabelRegistry& registry() const { return registry_; }

 private:
  graph::LabelRegistry registry_;
  std::vector<graph::LabelId> labels_;  // per (compacted) vertex
  std::vector<graph::Edge> edges_;      // normalised, ordered per `order`
  size_t pos_ = 0;
};

}  // namespace engine
}  // namespace loom

#endif  // LOOM_ENGINE_GENERATOR_SOURCE_H_
