// End-to-end checks of the headline claims: Loom's partitionings beat the
// naive and workload-agnostic baselines on workload ipt, across datasets and
// stream orders, while staying balanced. These run at reduced scale so the
// full suite stays fast; the bench binaries reproduce the paper-scale
// figures.

#include <gtest/gtest.h>

#include "datasets/dataset_registry.h"
#include "eval/experiment.h"
#include "partition/partition_metrics.h"
#include "test_util.h"

namespace loom {
namespace eval {
namespace {

ExperimentConfig FastConfig(stream::StreamOrder order, uint32_t k = 8) {
  ExperimentConfig cfg;
  cfg.order = order;
  cfg.k = k;
  cfg.window_size = 1000;
  cfg.executor.max_seeds = 1000;
  return cfg;
}

class OrderSweepTest : public ::testing::TestWithParam<stream::StreamOrder> {};

TEST_P(OrderSweepTest, LoomBeatsHashAndLdgOnProvGen) {
  auto ds = datasets::MakeDataset(datasets::DatasetId::kProvGen, 0.2);
  ComparisonResult cmp = RunComparison(ds, FastConfig(GetParam()));
  const double hash = cmp.Find(System::kHash)->weighted_ipt;
  const double ldg = cmp.Find(System::kLdg)->weighted_ipt;
  const double loom = cmp.Find(System::kLoom)->weighted_ipt;
  EXPECT_LT(loom, hash * 0.8) << stream::ToString(GetParam());
  EXPECT_LT(loom, ldg) << stream::ToString(GetParam());
}

INSTANTIATE_TEST_SUITE_P(Orders, OrderSweepTest,
                         ::testing::Values(stream::StreamOrder::kBreadthFirst,
                                           stream::StreamOrder::kDepthFirst,
                                           stream::StreamOrder::kRandom),
                         [](const auto& info) {
                           return stream::ToString(info.param);
                         });

TEST(IntegrationTest, LoomBeatsFennelOnOrderedProvGen) {
  // The paper's headline: 15-40%+ fewer ipt than Fennel on ordered streams.
  auto ds = datasets::MakeDataset(datasets::DatasetId::kProvGen, 0.2);
  ComparisonResult cmp =
      RunComparison(ds, FastConfig(stream::StreamOrder::kBreadthFirst));
  const double fennel = cmp.Find(System::kFennel)->weighted_ipt;
  const double loom = cmp.Find(System::kLoom)->weighted_ipt;
  EXPECT_LT(loom, fennel * 0.9);
}

TEST(IntegrationTest, LoomBeatsFennelOnMusicBrainz) {
  // MusicBrainz is the most heterogeneous dataset; the paper reports Loom's
  // largest margin there.
  auto ds = datasets::MakeDataset(datasets::DatasetId::kMusicBrainz, 0.15);
  ExperimentConfig cfg = FastConfig(stream::StreamOrder::kBreadthFirst);
  cfg.window_size = 2000;
  ComparisonResult cmp = RunComparison(ds, cfg);
  const double fennel = cmp.Find(System::kFennel)->weighted_ipt;
  const double loom = cmp.Find(System::kLoom)->weighted_ipt;
  EXPECT_LT(loom, fennel);
}

class KSweepTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(KSweepTest, RelativeStandingsStableAcrossK) {
  auto ds = datasets::MakeDataset(datasets::DatasetId::kProvGen, 0.15);
  ComparisonResult cmp =
      RunComparison(ds, FastConfig(stream::StreamOrder::kBreadthFirst,
                                   GetParam()));
  const double hash = cmp.Find(System::kHash)->weighted_ipt;
  const double loom = cmp.Find(System::kLoom)->weighted_ipt;
  if (GetParam() > 1) {
    EXPECT_LT(loom, hash);
  }
}

INSTANTIATE_TEST_SUITE_P(Ks, KSweepTest, ::testing::Values(2u, 8u, 32u));

TEST(IntegrationTest, AllSystemsProduceValidPartitionings) {
  auto ds = datasets::MakeDataset(datasets::DatasetId::kLubm100, 0.1);
  auto es = stream::MakeStream(ds.graph, stream::StreamOrder::kDepthFirst);
  for (System s : AllSystems()) {
    auto p = MakePartitioner(s, ds, FastConfig(stream::StreamOrder::kDepthFirst));
    test_util::RunAll(p.get(), es);
    EXPECT_TRUE(partition::FullyAssigned(ds.graph, p->partitioning()))
        << ToString(s);
  }
  // The sharded backend rides the same end-to-end check (and, being
  // bit-identical to loom, the headline quality claims transfer to it).
  auto sharded = test_util::MakeBackend(
      "loom-sharded:shards=2",
      test_util::OptionsFor(ds, 8, /*window_size=*/1000), ds);
  ASSERT_NE(sharded, nullptr);
  test_util::RunAll(sharded.get(), es);
  EXPECT_TRUE(partition::FullyAssigned(ds.graph, sharded->partitioning()));
}

TEST(IntegrationTest, LoomWindowSizeImprovesQualityUpToAPoint) {
  // Fig. 9's shape: growing the window from tiny to moderate reduces ipt.
  auto ds = datasets::MakeDataset(datasets::DatasetId::kProvGen, 0.2);
  auto es = stream::MakeStream(ds.graph, stream::StreamOrder::kRandom, 7);
  double tiny_ipt = 0, large_ipt = 0;
  for (size_t window : {16u, 4096u}) {
    ExperimentConfig cfg = FastConfig(stream::StreamOrder::kRandom);
    cfg.window_size = window;
    SystemResult r = RunSystem(System::kLoom, ds, es, cfg);
    if (window == 16u) {
      tiny_ipt = r.weighted_ipt;
    } else {
      large_ipt = r.weighted_ipt;
    }
  }
  EXPECT_LT(large_ipt, tiny_ipt);
}

TEST(IntegrationTest, DeterministicEndToEnd) {
  auto ds = datasets::MakeDataset(datasets::DatasetId::kDblp, 0.05);
  ExperimentConfig cfg = FastConfig(stream::StreamOrder::kRandom);
  ComparisonResult a = RunComparison(ds, cfg);
  ComparisonResult b = RunComparison(ds, cfg);
  for (size_t i = 0; i < a.systems.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.systems[i].weighted_ipt, b.systems[i].weighted_ipt);
    EXPECT_EQ(a.systems[i].edge_cut, b.systems[i].edge_cut);
  }
}

}  // namespace
}  // namespace eval
}  // namespace loom
