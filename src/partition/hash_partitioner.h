// The naive baseline (Sec. 5.1): vertices are placed by hashing their id —
// the default in several production graph databases, perfectly balanced,
// entirely locality-blind.

#ifndef LOOM_PARTITION_HASH_PARTITIONER_H_
#define LOOM_PARTITION_HASH_PARTITIONER_H_

#include "partition/partitioner.h"

namespace loom {
namespace partition {

class HashPartitioner : public Partitioner {
 public:
  explicit HashPartitioner(const PartitionerConfig& config);

  void Ingest(const stream::StreamEdge& e) override;
  const Partitioning& partitioning() const override { return partitioning_; }
  std::string name() const override { return "hash"; }

  /// The stateless placement rule, exposed for tests.
  graph::PartitionId HashPlace(graph::VertexId v) const;

 protected:
  Partitioning* MutablePartitioning() override { return &partitioning_; }

 private:
  Partitioning partitioning_;
};

}  // namespace partition
}  // namespace loom

#endif  // LOOM_PARTITION_HASH_PARTITIONER_H_
