// "LOOMCK" checkpoint files: versioned, checksummed snapshots of a running
// partitioner, in the same page-file discipline as the LOOMES edge-stream
// format (magic, format version, per-section length + FNV-1a checksum).
//
// A checkpoint is a sequence of named sections. Each layer of the engine
// writes its own section(s) — the session writes "session" (backend id,
// stream cursor, options fingerprint, event totals), a backend writes its
// component state ("loom", "partition", "window", "matches", ...) — so no
// layer parses another's bytes. The writer buffers the whole file in
// memory and Commit() publishes it atomically: write to `path + ".tmp"`,
// fsync, rename over `path`, fsync the directory — a torn write (crash
// mid-checkpoint) can therefore never shadow the last good checkpoint.
//
// The reader loads the file, rebuilds the section directory and verifies
// every section checksum eagerly at construction, so corruption anywhere —
// truncation at any offset, flipped bytes, bad magic, an unsupported
// version — is an actionable std::runtime_error before any state is
// touched. Field-level reads are bounds-checked against their section and
// Close() rejects trailing bytes, which is what catches version-skewed
// section layouts that happen to checksum correctly.
//
// This header deliberately depends on the standard library only, so every
// layer (partition, core, stream, engine) can include it without cycles.

#ifndef LOOM_IO_CHECKPOINT_H_
#define LOOM_IO_CHECKPOINT_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

namespace loom {
namespace io {

/// Format version this build writes and reads.
inline constexpr uint16_t kCheckpointVersion = 1;

/// Builds a checkpoint in memory, then commits it to disk atomically.
/// All methods throw std::runtime_error on misuse or I/O failure.
class CheckpointWriter {
 public:
  CheckpointWriter() = default;

  CheckpointWriter(const CheckpointWriter&) = delete;
  CheckpointWriter& operator=(const CheckpointWriter&) = delete;

  /// Opens a named section; sections cannot nest and names must be unique.
  void BeginSection(std::string_view name);

  /// Seals the open section (stamps its length and FNV-1a checksum).
  void EndSection();

  // Field writers (only valid inside a section). Little-endian, the only
  // platform this library targets (same convention as edge_stream_io).
  void U8(uint8_t v) { Raw(&v, 1); }
  void U16(uint16_t v) { Raw(&v, 2); }
  void U32(uint32_t v) { Raw(&v, 4); }
  void U64(uint64_t v) { Raw(&v, 8); }
  /// Doubles travel as bit patterns: restore is bit-exact, never a parse.
  void F64(double v) {
    uint64_t bits;
    std::memcpy(&bits, &v, 8);
    U64(bits);
  }
  void Str(std::string_view s);

  /// u64 count + raw element bytes. T must be trivially copyable.
  template <typename T>
  void PodVec(const std::vector<T>& v) {
    U64(v.size());
    if (!v.empty()) Raw(v.data(), v.size() * sizeof(T));
  }

  /// Raw element bytes with NO count prefix — for callers assembling a
  /// PodVec-compatible payload from non-contiguous storage (the adjacency
  /// arena writes one U64 count, then one PodArray per page).
  template <typename T>
  void PodArray(const T* data, size_t n) {
    if (n > 0) Raw(data, n * sizeof(T));
  }

  /// Serialises and durably publishes the checkpoint: writes `path + ".tmp"`,
  /// fsyncs it, renames it over `path` and fsyncs the parent directory.
  /// Requires every section to be closed. Throws on I/O failure (the tmp
  /// file is cleaned up best-effort).
  void Commit(const std::string& path);

 private:
  void Raw(const void* data, size_t n);

  struct Section {
    std::string name;
    std::vector<char> payload;
  };

  std::vector<Section> sections_;
  bool in_section_ = false;
  bool committed_ = false;
};

/// Reads a checkpoint file. Construction validates the whole structure
/// (magic, version, section framing, every checksum); Open/field reads are
/// then in-memory and bounds-checked. Structural problems throw
/// std::runtime_error carrying the path and what was wrong.
class CheckpointReader {
 public:
  explicit CheckpointReader(const std::string& path);

  CheckpointReader(const CheckpointReader&) = delete;
  CheckpointReader& operator=(const CheckpointReader&) = delete;

  /// True if the checkpoint carries a section named `name`.
  bool Has(std::string_view name) const;

  /// Positions the cursor at the start of section `name`; throws if absent
  /// (names the sections that are present) or if another section is open.
  void Open(std::string_view name);

  /// Ends the open section; throws if unread bytes remain — a section that
  /// is longer than this build expects is a layout skew, not padding.
  void Close();

  // Field readers; throw on reading past the section's end.
  uint8_t U8();
  uint16_t U16();
  uint32_t U32();
  uint64_t U64();
  double F64() {
    const uint64_t bits = U64();
    double v;
    std::memcpy(&v, &bits, 8);
    return v;
  }
  std::string Str();

  template <typename T>
  void PodVec(std::vector<T>* v) {
    const uint64_t n = U64();
    CheckRemaining(n * sizeof(T), "vector payload");
    v->resize(static_cast<size_t>(n));
    if (n > 0) {
      std::memcpy(v->data(), Cursor(), static_cast<size_t>(n) * sizeof(T));
      pos_ += static_cast<size_t>(n) * sizeof(T);
    }
  }

  /// Raw element bytes with NO count prefix (the read half of
  /// CheckpointWriter::PodArray); bounds-checked against the section.
  template <typename T>
  void PodArray(T* out, size_t n) {
    if (n == 0) return;
    CheckRemaining(static_cast<uint64_t>(n) * sizeof(T), "array payload");
    std::memcpy(out, Cursor(), n * sizeof(T));
    pos_ += n * sizeof(T);
  }

  /// Unread bytes left in the open section.
  uint64_t Remaining() const;

  const std::string& path() const { return path_; }

  /// Throws a std::runtime_error carrying this checkpoint's path — the one
  /// error shape for semantic rejections (fingerprint/label mismatches), so
  /// callers and tests see uniform "checkpoint '<path>': ..." messages.
  [[noreturn]] void Fail(const std::string& detail) const;

 private:
  struct Section {
    std::string name;
    size_t offset = 0;  // into data_
    size_t length = 0;
  };

  const char* Cursor() const { return data_.data() + pos_; }
  void CheckRemaining(uint64_t need, const char* what);
  const Section* FindSection(std::string_view name) const;

  std::string path_;
  std::vector<char> data_;
  std::vector<Section> sections_;
  const Section* open_ = nullptr;
  size_t pos_ = 0;  // absolute offset into data_ while a section is open
};

}  // namespace io
}  // namespace loom

#endif  // LOOM_IO_CHECKPOINT_H_
