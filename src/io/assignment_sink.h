// Assignment sinks: where a run's vertex placements land.
//
// Partitioners report each placement exactly once through the observer
// on_assign path (partition/partitioner.h, AssignAndNotify); a sink is the
// durable end of that pipe. engine::Session forwards every AssignEvent to
// its bound sinks, so a run can persist assignments while streaming —
// nothing buffers the full vertex set unless the sink chooses to.
//
// Implementations:
//   * FileAssignmentSink   — "<vertex>\t<partition>" lines in assignment
//                            order (the format loom_partition emits and
//                            downstream tooling already consumes).
//   * MemoryAssignmentSink — in-memory record, for tests and callers that
//                            post-process placements.

#ifndef LOOM_IO_ASSIGNMENT_SINK_H_
#define LOOM_IO_ASSIGNMENT_SINK_H_

#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "engine/observer.h"
#include "graph/types.h"

namespace loom {
namespace io {

/// Receives (vertex, partition) placements in assignment order.
class AssignmentSink {
 public:
  virtual ~AssignmentSink() = default;

  /// One vertex's permanent placement. Fired once per vertex.
  virtual void Append(graph::VertexId vertex, graph::PartitionId partition) = 0;

  /// Durability point: flush buffered state. Called by Session at the end
  /// of a run; default is a no-op.
  virtual void Flush() {}
};

/// Tab-separated "<vertex>\t<partition>" lines, one per assignment, in
/// assignment (stream) order. Throws std::runtime_error if the path cannot
/// be opened or a write fails on Flush.
class FileAssignmentSink : public AssignmentSink {
 public:
  explicit FileAssignmentSink(const std::string& path);

  void Append(graph::VertexId vertex, graph::PartitionId partition) override;
  void Flush() override;

  uint64_t assignments_written() const { return written_; }

 private:
  std::string path_;
  std::ofstream out_;
  uint64_t written_ = 0;
};

/// Buffers placements in arrival order.
class MemoryAssignmentSink : public AssignmentSink {
 public:
  void Append(graph::VertexId vertex, graph::PartitionId partition) override {
    assignments_.emplace_back(vertex, partition);
  }

  const std::vector<std::pair<graph::VertexId, graph::PartitionId>>&
  assignments() const {
    return assignments_;
  }

 private:
  std::vector<std::pair<graph::VertexId, graph::PartitionId>> assignments_;
};

/// Observer adapter: forwards OnAssign events into a sink. Session wires
/// this up internally; standalone engine::Drive callers can attach one
/// directly.
class AssignmentSinkObserver : public engine::EngineObserver {
 public:
  explicit AssignmentSinkObserver(AssignmentSink* sink) : sink_(sink) {}

  void OnAssign(const engine::AssignEvent& e) override {
    sink_->Append(e.vertex, e.partition);
  }

 private:
  AssignmentSink* sink_;
};

// ---------------------------------------------------------------- edges
// Edge-partitioning backends (partition/edge/: hdrf, dbh) place EDGES, so
// their durable output is one line per edge, not per vertex. These mirror
// the vertex sinks one-for-one; Session forwards OnEdgeAssign events the
// same way it forwards OnAssign.

/// Receives (edge, u, v, partition) placements in stream order.
class EdgeAssignmentSink {
 public:
  virtual ~EdgeAssignmentSink() = default;

  /// One edge's permanent placement. Fired once per ingested edge.
  virtual void Append(graph::EdgeId edge, graph::VertexId u, graph::VertexId v,
                      graph::PartitionId partition) = 0;

  /// Durability point, as AssignmentSink::Flush.
  virtual void Flush() {}
};

/// Tab-separated "<u>\t<v>\t<partition>" lines, one per edge, in stream
/// order (edge ids are positional, so they are not repeated in the file).
/// Throws std::runtime_error if the path cannot be opened or a write fails
/// on Flush.
class FileEdgeAssignmentSink : public EdgeAssignmentSink {
 public:
  explicit FileEdgeAssignmentSink(const std::string& path);

  void Append(graph::EdgeId edge, graph::VertexId u, graph::VertexId v,
              graph::PartitionId partition) override;
  void Flush() override;

  uint64_t edges_written() const { return written_; }

 private:
  std::string path_;
  std::ofstream out_;
  uint64_t written_ = 0;
};

/// Buffers edge placements in arrival order.
class MemoryEdgeAssignmentSink : public EdgeAssignmentSink {
 public:
  struct Record {
    graph::EdgeId edge;
    graph::VertexId u;
    graph::VertexId v;
    graph::PartitionId partition;
  };

  void Append(graph::EdgeId edge, graph::VertexId u, graph::VertexId v,
              graph::PartitionId partition) override {
    records_.push_back({edge, u, v, partition});
  }

  const std::vector<Record>& records() const { return records_; }

 private:
  std::vector<Record> records_;
};

/// Observer adapter: forwards OnEdgeAssign events into an edge sink.
class EdgeAssignmentSinkObserver : public engine::EngineObserver {
 public:
  explicit EdgeAssignmentSinkObserver(EdgeAssignmentSink* sink)
      : sink_(sink) {}

  void OnEdgeAssign(const engine::EdgeAssignEvent& e) override {
    sink_->Append(e.edge, e.u, e.v, e.partition);
  }

 private:
  EdgeAssignmentSink* sink_;
};

}  // namespace io
}  // namespace loom

#endif  // LOOM_IO_ASSIGNMENT_SINK_H_
