#include "graph/dynamic_graph.h"

#include <cassert>

namespace loom {
namespace graph {

void DynamicGraph::Reserve(size_t n) {
  if (labels_.size() < n) {
    labels_.resize(n, kInvalidLabel);
    adj_.resize(n);
  }
}

void DynamicGraph::TouchVertex(VertexId v, LabelId label) {
  assert(label != kInvalidLabel);
  if (v >= labels_.size()) {
    labels_.resize(v + 1, kInvalidLabel);
    adj_.resize(v + 1);
  }
  if (labels_[v] == kInvalidLabel) {
    labels_[v] = label;
    ++num_vertices_;
  } else {
    assert(labels_[v] == label && "vertex relabelled with a different label");
  }
}

void DynamicGraph::SaveTo(io::CheckpointWriter* w,
                          std::string_view name) const {
  w->BeginSection(name);
  w->U64(num_vertices_);
  w->U64(num_edges_);
  w->PodVec(labels_);
  w->U64(adj_.size());
  for (const std::vector<VertexId>& neighbors : adj_) w->PodVec(neighbors);
  w->EndSection();
}

void DynamicGraph::LoadFrom(io::CheckpointReader* r, std::string_view name) {
  assert(num_vertices_ == 0 && num_edges_ == 0);
  r->Open(name);
  num_vertices_ = r->U64();
  num_edges_ = r->U64();
  r->PodVec(&labels_);
  adj_.assign(r->U64(), {});
  for (std::vector<VertexId>& neighbors : adj_) r->PodVec(&neighbors);
  if (adj_.size() != labels_.size()) {
    r->Fail("graph section '" + std::string(name) +
            "': adjacency/label table size mismatch");
  }
  r->Close();
}

void DynamicGraph::AddEdge(VertexId u, VertexId v) {
  assert(Known(u) && Known(v));
  // First insert jumps straight to a capacity that covers typical degrees;
  // growing 1->2->4->8 costs several tiny reallocations per vertex, paid at
  // stream rate across every partitioner.
  if (adj_[u].capacity() == 0) adj_[u].reserve(8);
  if (adj_[v].capacity() == 0) adj_[v].reserve(8);
  adj_[u].push_back(v);
  adj_[v].push_back(u);
  ++num_edges_;
}

}  // namespace graph
}  // namespace loom
