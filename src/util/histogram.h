// Lock-free log2-bucket histogram for latency-style samples.
//
// The service layer needs "what does a decision cost right now?" answered
// from a thread that is NOT the one making decisions (a STATS request must
// never block ingest). So the histogram is a fixed array of relaxed
// atomics: the recording thread pays one fetch_add per sample, readers
// take a Snapshot whenever they like, and there is no lock anywhere.
// Buckets are powers of two (bucket b holds samples whose bit_width is b,
// i.e. values in [2^(b-1), 2^b)), which is plenty of resolution for
// latencies spanning nanoseconds to seconds and makes Merge/quantile
// arithmetic trivial.
//
// Counts are monotone and the snapshot reads each bucket independently, so
// a snapshot taken mid-Add is a valid histogram of "some recent prefix" of
// the samples — exactly what a stats endpoint wants, with no stronger
// ordering paid for.

#ifndef LOOM_UTIL_HISTOGRAM_H_
#define LOOM_UTIL_HISTOGRAM_H_

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <string>

namespace loom {
namespace util {

/// Point-in-time copy of a Histogram: plain integers, freely copyable,
/// with the quantile/format helpers readers actually want.
struct HistogramSnapshot {
  static constexpr size_t kBuckets = 65;  // bit_width(v) for v in [0, 2^64)

  std::array<uint64_t, kBuckets> buckets{};
  uint64_t max = 0;

  uint64_t Count() const {
    uint64_t n = 0;
    for (uint64_t b : buckets) n += b;
    return n;
  }

  /// Representative value (bucket midpoint, clamped to the observed max)
  /// for the q-quantile, q in [0, 1]. 0 when the histogram is empty.
  uint64_t Quantile(double q) const;

  /// "n=<count> p50=<v> p90=<v> p99=<v> max=<v>" with values formatted by
  /// FormatNs (the histogram itself is unit-agnostic; this helper assumes
  /// nanoseconds, the only unit the engine records).
  std::string Summary() const;

  /// Human latency formatting: "874ns", "12.3us", "4.7ms", "1.2s".
  static std::string FormatNs(uint64_t ns);
};

class Histogram {
 public:
  static constexpr size_t kBuckets = HistogramSnapshot::kBuckets;

  Histogram() = default;
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  /// Records `count` samples of value `v`. Wait-free; safe to call from the
  /// recording thread while any number of threads Snapshot().
  void Add(uint64_t v, uint64_t count = 1) {
    buckets_[std::bit_width(v)].fetch_add(count, std::memory_order_relaxed);
    uint64_t prev = max_.load(std::memory_order_relaxed);
    while (v > prev && !max_.compare_exchange_weak(
                           prev, v, std::memory_order_relaxed)) {
    }
  }

  HistogramSnapshot Snapshot() const {
    HistogramSnapshot s;
    for (size_t b = 0; b < kBuckets; ++b) {
      s.buckets[b] = buckets_[b].load(std::memory_order_relaxed);
    }
    s.max = max_.load(std::memory_order_relaxed);
    return s;
  }

  void Reset() {
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
    max_.store(0, std::memory_order_relaxed);
  }

 private:
  std::array<std::atomic<uint64_t>, kBuckets> buckets_{};
  std::atomic<uint64_t> max_{0};
};

}  // namespace util
}  // namespace loom

#endif  // LOOM_UTIL_HISTOGRAM_H_
