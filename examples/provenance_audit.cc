// Provenance-audit scenario: PROV lineage queries over wiki-page revision
// provenance (the paper's ProvGen dataset [6], with the common PROV queries
// of Dey et al. [5]: derivation, attribution, multi-step lineage).
//
// Demonstrates the per-query view: which query patterns benefit most from
// Loom's motif-aware placement, and how the motif machinery behaved
// (admissions, matches, cluster allocations) — the latter observed through
// the engine's EngineObserver events rather than backend-specific getters.
//
// Run:  ./example_provenance_audit [scale]

#include <cstdlib>
#include <iostream>

#include "datasets/dataset_registry.h"
#include "engine/session.h"
#include "eval/experiment.h"
#include "query/workload_runner.h"
#include "util/string_util.h"
#include "util/table_writer.h"

int main(int argc, char** argv) {
  using namespace loom;
  // Finite-positive parse (atof happily returns inf/nan for bad input).
  double scale = 0.5;
  if (argc > 1 &&
      (!util::ParseFiniteDouble(argv[1], &scale) || scale <= 0.0)) {
    std::cerr << "usage: " << argv[0] << " [scale > 0]\n";
    return 2;
  }

  datasets::Dataset ds =
      datasets::MakeDataset(datasets::DatasetId::kProvGen, scale);
  std::cout << "PROV provenance graph: " << ds.NumVertices() << " vertices, "
            << ds.NumEdges() << " edges (Entity / Activity / Agent)\n\n";

  eval::ExperimentConfig cfg;
  cfg.k = 8;
  cfg.window_size = 4000;

  // Both backends run as Sessions over the same replayed lazy EdgeSource;
  // everything reported below is event-sourced (RunReport) — no backend
  // getters, no downcasts.
  engine::SessionConfig session_config;
  session_config.options = eval::ToEngineOptions(cfg, ds);
  engine::BuildContext context{&ds.workload, ds.registry.size()};
  auto source = engine::MakeEdgeSource(ds, cfg.order, cfg.stream_seed);
  std::string error;

  session_config.spec = "loom";
  auto loom = engine::Session::Create(session_config, context, &error);
  session_config.spec = "fennel";
  auto fennel = engine::Session::Create(session_config, context, &error);
  if (loom == nullptr || fennel == nullptr) {
    std::cerr << "engine: " << error << "\n";
    return 1;
  }

  const engine::RunReport lr = loom->Run(*source);
  source->Reset();
  fennel->Run(*source);

  const engine::ProgressEvent& final_progress = lr.events.last_progress;
  std::cout << "Loom's motif machinery (via the session's RunReport):\n"
            << "  edges bypassing the window (never motif-matchable): "
            << final_progress.edges_bypassed << "\n"
            << "  edges admitted to Ptemp: "
            << final_progress.edges_ingested - final_progress.edges_bypassed
            << "\n"
            << "  multi-edge motif matches found: "
            << lr.Stat("matcher_extension_matches") +
                   lr.Stat("matcher_join_matches")
            << "\n"
            << "  match slots recycled by the pool: "
            << lr.Stat("match_allocs_reused") << " (vs "
            << lr.Stat("match_allocs_fresh") << " fresh)\n"
            << "  match clusters allocated: " << lr.events.cluster_decisions
            << " (" << lr.events.fallback_decisions << " via LDG fallback, "
            << lr.events.cluster_edges_assigned << " edges co-located)\n\n";

  query::WorkloadResult lw =
      query::RunWorkload(ds.graph, loom->partitioning(), ds.workload);
  query::WorkloadResult fw =
      query::RunWorkload(ds.graph, fennel->partitioning(), ds.workload);

  util::TableWriter t({"query", "freq", "loom ipt", "fennel ipt", "loom wins by"});
  for (size_t i = 0; i < lw.per_query.size(); ++i) {
    const auto& lq = lw.per_query[i];
    const auto& fq = fw.per_query[i];
    const double gain =
        fq.result.ipt > 0
            ? 1.0 - static_cast<double>(lq.result.ipt) /
                        static_cast<double>(fq.result.ipt)
            : 0.0;
    t.AddRow({lq.name, util::TableWriter::Pct(lq.frequency, 0),
              std::to_string(lq.result.ipt), std::to_string(fq.result.ipt),
              util::TableWriter::Pct(gain)});
  }
  t.Print(std::cout);

  std::cout << "\nWorkload-weighted: loom "
            << util::TableWriter::Fmt(lw.weighted_ipt, 0) << " ipt vs fennel "
            << util::TableWriter::Fmt(fw.weighted_ipt, 0) << " ("
            << util::TableWriter::Pct(1.0 - lw.weighted_ipt / fw.weighted_ipt)
            << " fewer).\n";
  return 0;
}
