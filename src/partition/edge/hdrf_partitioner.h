// HDRF — High-Degree Replicated First streaming edge partitioner
// (Petroni et al., CIKM'15; the strongest cheap baseline in the
// split-merge/NuCut/Adwise zoo, see ROADMAP item 2 and SNIPPETS.md
// Snippet 2).
//
// For edge (u,v), each part p is scored
//
//   C(p) = C_rep(p) + λ · C_bal(p)
//   C_rep(p) = [p ∈ R(u)] · (1 + (1 − δu)) + [p ∈ R(v)] · (1 + (1 − δv))
//   C_bal(p) = (maxload − load(p)) / (ε + maxload − minload)
//
// where δu = θu / (θu + θv) is u's share of the edge's combined PARTIAL
// degree (streamed-so-far counts, this edge included). The (1 − δ) weight
// is the algorithm's one idea: when an edge must be cut, prefer replicating
// the HIGHER-degree endpoint — its replicas amortise over more future
// edges. λ trades replication against balance (λ=0 is pure greedy; large λ
// approaches round-robin); ε only guards the λ-term's denominator.
//
// Tie-breaking is pinned for bit-determinism: scan parts in id order, a
// strictly greater score wins; on equal score the part with the smaller
// load wins; on equal load the lower id is kept.

#ifndef LOOM_PARTITION_EDGE_HDRF_PARTITIONER_H_
#define LOOM_PARTITION_EDGE_HDRF_PARTITIONER_H_

#include "partition/edge/edge_partitioner.h"

namespace loom {
namespace partition {
namespace edge {

class HdrfPartitioner final : public EdgePartitioner {
 public:
  /// `lambda` >= 0 weights the balance term; `epsilon` > 0 guards its
  /// denominator. (Engine spec: "hdrf:lambda=1.1,epsilon=1".)
  HdrfPartitioner(const PartitionerConfig& config, double lambda,
                  double epsilon);

  std::string name() const override { return "hdrf"; }

  double lambda() const { return lambda_; }
  double epsilon() const { return epsilon_; }

 protected:
  graph::PartitionId PlaceEdge(const stream::StreamEdge& e) override;

  /// λ/ε ride in the checkpoint and are verified on restore — a drifted
  /// balance weight would silently change every post-resume placement.
  void SaveExtra(io::CheckpointWriter* w) const override;
  bool RestoreExtra(io::CheckpointReader* r, std::string* error) override;

 private:
  const double lambda_;
  const double epsilon_;
};

}  // namespace edge
}  // namespace partition
}  // namespace loom

#endif  // LOOM_PARTITION_EDGE_HDRF_PARTITIONER_H_
