// Executes a whole workload Q over a partitioned graph and aggregates the
// frequency-weighted ipt — the number the paper's Figs. 7-9 report (relative
// to Hash).

#ifndef LOOM_QUERY_WORKLOAD_RUNNER_H_
#define LOOM_QUERY_WORKLOAD_RUNNER_H_

#include <string>
#include <vector>

#include "query/query.h"
#include "query/query_executor.h"

namespace loom {
namespace query {

struct QueryOutcome {
  std::string name;
  double frequency = 0.0;
  ExecutionResult result;
};

struct WorkloadResult {
  /// Σ frequency_i · ipt_i — the workload-weighted ipt count.
  double weighted_ipt = 0.0;
  /// Σ frequency_i · traversals_i.
  double weighted_traversals = 0.0;
  uint64_t total_matches = 0;
  std::vector<QueryOutcome> per_query;

  /// Fraction of traversals that crossed partitions, in [0, 1].
  double IptRatio() const {
    return weighted_traversals > 0 ? weighted_ipt / weighted_traversals : 0.0;
  }
};

/// Runs every query of `w` (frequencies normalised internally) over `g`
/// partitioned by `p`.
WorkloadResult RunWorkload(const graph::LabeledGraph& g,
                           const partition::Partitioning& p, const Workload& w,
                           ExecutorConfig config = {});

}  // namespace query
}  // namespace loom

#endif  // LOOM_QUERY_WORKLOAD_RUNNER_H_
