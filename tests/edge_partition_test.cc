// Differential + brute-force suite for the streaming EDGE partitioners
// (partition/edge/): HDRF and DBH.
//
// The determinism contract under test (edge_partitioner.h): placements
// depend only on the edge sequence — identical across batch splits,
// EdgeSource kinds and checkpoint/resume — and the deterministic final
// stats (replication factor, edge balance, edge assignment hash) are
// exactly recomputable from the per-edge placement log a sink records.

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <set>
#include <span>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "datasets/dataset_registry.h"
#include "engine/engine.h"
#include "engine/generator_source.h"
#include "io/assignment_sink.h"
#include "io/checkpoint.h"
#include "io/edge_stream_io.h"
#include "partition/edge/dbh_partitioner.h"
#include "partition/edge/hdrf_partitioner.h"
#include "partition/partition_metrics.h"
#include "stream/edge_stream.h"
#include "test_util.h"

namespace loom {
namespace partition {
namespace edge {
namespace {

namespace fs = std::filesystem;

constexpr double kScale = 0.05;

PartitionerConfig ConfigFor(const datasets::Dataset& ds, uint32_t k = 8) {
  PartitionerConfig config;
  config.k = k;
  config.expected_vertices = ds.NumVertices();
  config.expected_edges = ds.NumEdges();
  return config;
}

engine::StatCounters FinalStatsOf(const Partitioner& p) {
  engine::FinalStatsEvent stats;
  p.FillFinalStats(&stats);
  return stats.counters;
}

std::string TempPath(const std::string& name) {
  const fs::path dir = fs::path(testing::TempDir()) / "loom_edge_partition";
  fs::create_directories(dir);
  return (dir / name).string();
}

// ------------------------------------------------------- registry plumbing

TEST(EdgePartitionRegistryTest, SpecStringsBuildConfiguredBackends) {
  const datasets::Dataset ds =
      datasets::MakeDataset(datasets::DatasetId::kProvGen, kScale);
  const engine::EngineOptions options = test_util::OptionsFor(ds);

  for (const char* spec :
       {"hdrf", "hdrf:lambda=1.1", "hdrf:lambda=0,epsilon=2.5", "dbh"}) {
    SCOPED_TRACE(spec);
    auto p = test_util::MakeBackend(spec, options, ds);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(std::string(p->name()),
              std::string(spec).substr(0, 4) == "hdrf" ? "hdrf" : "dbh");
  }
}

TEST(EdgePartitionRegistryTest, BadKnobValuesFailActionably) {
  const datasets::Dataset ds =
      datasets::MakeDataset(datasets::DatasetId::kProvGen, kScale);
  const engine::BuildContext context = test_util::ContextFor(ds);

  struct BadSpec {
    const char* spec;
    const char* expect_in_error;
  };
  for (const BadSpec& bad :
       {BadSpec{"hdrf:lambda=-1", "lambda"},
        BadSpec{"hdrf:epsilon=0", "epsilon"},
        BadSpec{"hdrf:lambda=banana", "lambda"}}) {
    SCOPED_TRACE(bad.spec);
    std::string error;
    auto p = engine::BuildPartitioner(bad.spec, test_util::OptionsFor(ds),
                                      context, &error);
    EXPECT_EQ(p, nullptr);
    EXPECT_NE(error.find(bad.expect_in_error), std::string::npos) << error;
  }
}

// --------------------------------------------- brute-force stats recompute
//
// Everything FillFinalStats reports must be exactly recomputable from the
// per-edge placement log: replica sets, part loads, replication factor,
// max/min loads and the FNV-1a placement hash. A MemoryEdgeAssignmentSink
// (fed through the OnEdgeAssign observer event, the same path loom_partition
// --edge-out uses) records the log.

void CheckBruteForce(EdgePartitioner* p, const stream::EdgeStream& es,
                     uint32_t k) {
  io::MemoryEdgeAssignmentSink sink;
  io::EdgeAssignmentSinkObserver observer(&sink);
  p->SetObserver(&observer);
  for (const stream::StreamEdge& e : es) p->Ingest(e);
  p->Finalize();
  p->SetObserver(nullptr);

  ASSERT_EQ(sink.records().size(), es.size());

  std::vector<uint64_t> loads(k, 0);
  std::vector<std::set<graph::PartitionId>> replicas;
  uint64_t hash = 0xcbf29ce484222325ULL;
  for (size_t i = 0; i < sink.records().size(); ++i) {
    const io::MemoryEdgeAssignmentSink::Record& r = sink.records()[i];
    ASSERT_EQ(r.edge, es[i].id);
    ASSERT_EQ(r.u, es[i].u);
    ASSERT_EQ(r.v, es[i].v);
    ASSERT_LT(r.partition, k);
    ++loads[r.partition];
    const size_t top = std::max(r.u, r.v);
    if (top >= replicas.size()) replicas.resize(top + 1);
    replicas[r.u].insert(r.partition);
    replicas[r.v].insert(r.partition);
    hash = (hash ^ r.partition) * 0x100000001b3ULL;
  }

  uint64_t replica_total = 0, vertices_seen = 0;
  for (size_t v = 0; v < replicas.size(); ++v) {
    replica_total += replicas[v].size();
    if (!replicas[v].empty()) ++vertices_seen;
    EXPECT_EQ(p->ReplicaCount(static_cast<graph::VertexId>(v)),
              replicas[v].size());
    for (graph::PartitionId part = 0; part < k; ++part) {
      EXPECT_EQ(p->IsReplicaOf(static_cast<graph::VertexId>(v), part),
                replicas[v].count(part) > 0);
    }
  }
  const uint64_t max_load = *std::max_element(loads.begin(), loads.end());
  const uint64_t min_load = *std::min_element(loads.begin(), loads.end());

  const engine::StatCounters counters = FinalStatsOf(*p);
  EXPECT_EQ(engine::FindCounter(counters, "edge_assignments", 1), es.size());
  EXPECT_EQ(engine::FindCounter(counters, "vertices_seen", 1), vertices_seen);
  EXPECT_EQ(engine::FindCounter(counters, "replica_total", 1), replica_total);
  EXPECT_EQ(engine::FindCounter(counters, "max_part_edges", 1), max_load);
  EXPECT_EQ(engine::FindCounter(counters, "min_part_edges", 1), min_load);
  EXPECT_EQ(engine::FindCounter(counters, "edge_assignment_hash", 1), hash);

  EXPECT_EQ(p->EdgesAssigned(), es.size());
  EXPECT_EQ(p->EdgeAssignmentHash(), hash);
  EXPECT_DOUBLE_EQ(p->ReplicationFactor(),
                   static_cast<double>(replica_total) / vertices_seen);
  EXPECT_DOUBLE_EQ(p->EdgeBalance(),
                   static_cast<double>(max_load) * k / es.size());
  for (graph::PartitionId part = 0; part < k; ++part) {
    EXPECT_EQ(p->EdgeLoad(part), loads[part]);
  }

  // The primary vertex placement is each vertex's FIRST replica part, so
  // every streamed vertex must be assigned to one of its replica parts.
  const Partitioning& vp = p->partitioning();
  for (size_t v = 0; v < replicas.size(); ++v) {
    if (replicas[v].empty()) continue;
    ASSERT_TRUE(vp.IsAssigned(static_cast<graph::VertexId>(v)));
    EXPECT_TRUE(replicas[v].count(
        vp.PartitionOf(static_cast<graph::VertexId>(v))) > 0);
  }
}

TEST(EdgePartitionBruteForceTest, HdrfStatsMatchPlacementLogReplay) {
  const datasets::Dataset ds =
      datasets::MakeDataset(datasets::DatasetId::kProvGen, kScale);
  const stream::EdgeStream es =
      stream::MakeStream(ds.graph, stream::StreamOrder::kBreadthFirst);
  HdrfPartitioner p(ConfigFor(ds), /*lambda=*/1.1, /*epsilon=*/1.0);
  CheckBruteForce(&p, es, /*k=*/8);
}

TEST(EdgePartitionBruteForceTest, DbhStatsMatchPlacementLogReplay) {
  const datasets::Dataset ds =
      datasets::MakeDataset(datasets::DatasetId::kMusicBrainz, kScale);
  const stream::EdgeStream es =
      stream::MakeStream(ds.graph, stream::StreamOrder::kDepthFirst);
  DbhPartitioner p(ConfigFor(ds));
  CheckBruteForce(&p, es, /*k=*/8);
}

// ----------------------------------------------------- scoring properties

TEST(HdrfPropertyTest, LargeLambdaForcesNearPerfectEdgeBalance) {
  // λ → ∞ reduces HDRF to pure load balancing: part loads may never drift
  // apart by more than one edge.
  const datasets::Dataset ds =
      datasets::MakeDataset(datasets::DatasetId::kDblp, kScale);
  const stream::EdgeStream es =
      stream::MakeStream(ds.graph, stream::StreamOrder::kBreadthFirst);
  HdrfPartitioner p(ConfigFor(ds), /*lambda=*/1000.0, /*epsilon=*/1.0);
  for (const stream::StreamEdge& e : es) p.Ingest(e);
  uint64_t max_load = 0, min_load = UINT64_MAX;
  for (graph::PartitionId part = 0; part < 8; ++part) {
    max_load = std::max(max_load, p.EdgeLoad(part));
    min_load = std::min(min_load, p.EdgeLoad(part));
  }
  EXPECT_LE(max_load - min_load, 1u);
}

TEST(HdrfPropertyTest, GreedyBeatsHashingOnReplicationFactor) {
  // HDRF's whole point: degree-aware greedy placement replicates less
  // than degree-based hashing on skewed graphs.
  const datasets::Dataset ds =
      datasets::MakeDataset(datasets::DatasetId::kProvGen, kScale);
  const stream::EdgeStream es =
      stream::MakeStream(ds.graph, stream::StreamOrder::kBreadthFirst);
  HdrfPartitioner hdrf(ConfigFor(ds), /*lambda=*/1.1, /*epsilon=*/1.0);
  DbhPartitioner dbh(ConfigFor(ds));
  for (const stream::StreamEdge& e : es) {
    hdrf.Ingest(e);
    dbh.Ingest(e);
  }
  EXPECT_LT(hdrf.ReplicationFactor(), dbh.ReplicationFactor());
  EXPECT_GE(hdrf.ReplicationFactor(), 1.0);
  EXPECT_GE(dbh.ReplicationFactor(), 1.0);
}

// ------------------------------------------------- batch-split determinism

TEST(EdgePartitionDeterminismTest, BatchSplitsNeverChangePlacements) {
  const datasets::Dataset ds =
      datasets::MakeDataset(datasets::DatasetId::kLubm100, kScale);
  const stream::EdgeStream es =
      stream::MakeStream(ds.graph, stream::StreamOrder::kBreadthFirst);
  const std::vector<stream::StreamEdge> all(es.begin(), es.end());
  const engine::EngineOptions options = test_util::OptionsFor(ds);

  for (const char* spec : {"hdrf:lambda=1.1", "dbh"}) {
    SCOPED_TRACE(spec);
    auto run = [&](size_t batch) {
      auto p = test_util::MakeBackend(spec, options, ds);
      EXPECT_NE(p, nullptr);
      for (size_t i = 0; i < all.size(); i += batch) {
        p->IngestBatch(std::span<const stream::StreamEdge>(
            all.data() + i, std::min(batch, all.size() - i)));
      }
      p->Finalize();
      return std::pair{FinalStatsOf(*p), test_util::QualityOf(*p, ds)};
    };
    const auto reference = run(1);
    for (const size_t batch : {size_t{3}, size_t{64}, size_t{1024}}) {
      EXPECT_EQ(run(batch), reference) << "batch=" << batch;
    }
  }
}

// --------------------------------------------------- source-kind diffs
//
// file_stream_smoke_test already proves the VERTEX quality triple is
// source-independent for every registered backend (including hdrf/dbh);
// this leg pins the EDGE triple — replica counters and placement hash —
// across RAM, binary file, text file and lazy generator sources.

TEST(EdgePartitionDeterminismTest, EdgeTripleIdenticalAcrossAllSourceKinds) {
  const datasets::Dataset ds =
      datasets::MakeDataset(datasets::DatasetId::kProvGen, kScale);
  const engine::EngineOptions options = test_util::OptionsFor(ds);

  const std::string binary_path = TempPath("provgen.les");
  const std::string text_path = TempPath("provgen_text.les");
  for (auto [path, format] :
       {std::pair{binary_path, io::StreamFormat::kBinary},
        std::pair{text_path, io::StreamFormat::kText}}) {
    auto source = engine::MakeEdgeSource(ds, stream::StreamOrder::kCanonical);
    io::WriteEdgeStream(path, ds.registry, ds.NumVertices(), source.get(),
                        format);
  }

  for (const char* spec : {"hdrf:lambda=1.1", "dbh"}) {
    SCOPED_TRACE(spec);
    auto drive = [&](engine::EdgeSource& source) {
      auto p = test_util::MakeBackend(spec, options, ds);
      EXPECT_NE(p, nullptr);
      source.Reset();
      engine::Drive(p.get(), &source);
      return FinalStatsOf(*p);
    };

    auto ram = engine::MakeEdgeSource(ds, stream::StreamOrder::kCanonical);
    const engine::StatCounters reference = drive(*ram);
    EXPECT_GT(engine::FindCounter(reference, "edge_assignments", 0), 0u);

    io::FileEdgeSource binary(binary_path);
    EXPECT_EQ(drive(binary), reference) << "binary file stream diverged";

    io::FileEdgeSource text(text_path);
    EXPECT_EQ(drive(text), reference) << "text file stream diverged";

    engine::GeneratorEdgeSource lazy(datasets::DatasetId::kProvGen, kScale,
                                     stream::StreamOrder::kCanonical);
    EXPECT_EQ(drive(lazy), reference) << "lazy generator stream diverged";
  }
}

// ------------------------------------------------------------ checkpoints

TEST(EdgePartitionCheckpointTest, MidStreamRoundTripFinishesBitIdentically) {
  const datasets::Dataset ds =
      datasets::MakeDataset(datasets::DatasetId::kProvGen, kScale);
  const stream::EdgeStream es =
      stream::MakeStream(ds.graph, stream::StreamOrder::kBreadthFirst);
  const size_t half = es.size() / 2;

  for (const char* which : {"hdrf", "dbh"}) {
    SCOPED_TRACE(which);
    auto make = [&]() -> std::unique_ptr<EdgePartitioner> {
      if (std::string(which) == "hdrf") {
        return std::make_unique<HdrfPartitioner>(ConfigFor(ds), 1.1, 1.0);
      }
      return std::make_unique<DbhPartitioner>(ConfigFor(ds));
    };

    auto baseline = make();
    for (const stream::StreamEdge& e : es) baseline->Ingest(e);
    baseline->Finalize();

    const std::string path = TempPath(std::string(which) + "_half.loomck");
    {
      auto doomed = make();
      for (size_t i = 0; i < half; ++i) doomed->Ingest(es[i]);
      io::CheckpointWriter w;
      std::string error;
      ASSERT_TRUE(doomed->SaveState(&w, &error)) << error;
      w.Commit(path);
    }

    auto resumed = make();
    io::CheckpointReader r(path);
    std::string error;
    ASSERT_TRUE(resumed->RestoreState(&r, &error)) << error;
    for (size_t i = half; i < es.size(); ++i) resumed->Ingest(es[i]);
    resumed->Finalize();

    EXPECT_EQ(FinalStatsOf(*resumed), FinalStatsOf(*baseline));
    EXPECT_EQ(test_util::QualityOf(*resumed, ds),
              test_util::QualityOf(*baseline, ds));
  }
}

TEST(EdgePartitionCheckpointTest, HdrfParameterMismatchIsRejected) {
  const datasets::Dataset ds =
      datasets::MakeDataset(datasets::DatasetId::kProvGen, kScale);
  const stream::EdgeStream es =
      stream::MakeStream(ds.graph, stream::StreamOrder::kBreadthFirst);

  const std::string path = TempPath("hdrf_lambda.loomck");
  {
    HdrfPartitioner p(ConfigFor(ds), /*lambda=*/1.1, /*epsilon=*/1.0);
    for (size_t i = 0; i < 64 && i < es.size(); ++i) p.Ingest(es[i]);
    io::CheckpointWriter w;
    std::string error;
    ASSERT_TRUE(p.SaveState(&w, &error)) << error;
    w.Commit(path);
  }

  HdrfPartitioner other(ConfigFor(ds), /*lambda=*/2.0, /*epsilon=*/1.0);
  io::CheckpointReader r(path);
  std::string error;
  EXPECT_FALSE(other.RestoreState(&r, &error));
  EXPECT_NE(error.find("lambda"), std::string::npos) << error;
}

TEST(EdgePartitionCheckpointTest, RestoreIntoUsedInstanceIsRejected) {
  const datasets::Dataset ds =
      datasets::MakeDataset(datasets::DatasetId::kProvGen, kScale);
  const stream::EdgeStream es =
      stream::MakeStream(ds.graph, stream::StreamOrder::kBreadthFirst);

  const std::string path = TempPath("dbh_used.loomck");
  {
    DbhPartitioner p(ConfigFor(ds));
    p.Ingest(es[0]);
    io::CheckpointWriter w;
    std::string error;
    ASSERT_TRUE(p.SaveState(&w, &error)) << error;
    w.Commit(path);
  }

  DbhPartitioner used(ConfigFor(ds));
  used.Ingest(es[1]);
  io::CheckpointReader r(path);
  std::string error;
  EXPECT_FALSE(used.RestoreState(&r, &error));
  EXPECT_NE(error.find("fresh"), std::string::npos) << error;
}

// A checkpoint whose scalar counters disagree with its tables must be
// rejected with a "counter desync" error, not silently adopted — same
// discipline as DynamicGraph::LoadFrom. The desynced files are crafted
// with the public writer against the documented edge_state layout.
TEST(EdgePartitionCheckpointTest, CounterDesyncIsRejected) {
  struct Craft {
    const char* name;
    uint64_t edges_assigned;
    uint64_t replica_total;
    uint64_t vertices_seen;
  };
  // loads sum to 3; masks hold 4 bits over 2 vertices.
  for (const Craft& c : {Craft{"bad_loads", 7, 4, 2},
                         Craft{"bad_replicas", 3, 9, 2},
                         Craft{"bad_vertices", 3, 4, 1}}) {
    SCOPED_TRACE(c.name);
    const std::string path = TempPath(std::string(c.name) + ".loomck");
    io::CheckpointWriter w;
    w.BeginSection("edge_state");
    w.U32(8);                   // k
    w.U32(1);                   // words per vertex
    w.U64(c.edges_assigned);
    w.U64(0x12345678u);         // hash (not validated semantically)
    w.U64(c.replica_total);
    w.U64(c.vertices_seen);
    w.PodVec(std::vector<uint64_t>{2, 1, 0, 0, 0, 0, 0, 0});  // loads
    w.PodVec(std::vector<uint32_t>{2, 1});                    // degrees
    w.PodVec(std::vector<uint64_t>{0b11, 0b100});             // replica masks
    w.EndSection();
    w.Commit(path);

    PartitionerConfig config;
    config.k = 8;
    DbhPartitioner p(config);
    io::CheckpointReader r(path);
    std::string error;
    EXPECT_FALSE(p.RestoreState(&r, &error));
    EXPECT_NE(error.find("counter desync"), std::string::npos) << error;
  }
}

// ------------------------------------------------------------- file sink

TEST(EdgeAssignmentSinkTest, FileSinkWritesOneLinePerEdgeInStreamOrder) {
  const std::string path = TempPath("edges.tsv");
  {
    io::FileEdgeAssignmentSink sink(path);
    sink.Append(0, 10, 20, 3);
    sink.Append(1, 20, 30, 0);
    sink.Flush();
    EXPECT_EQ(sink.edges_written(), 2u);
  }
  std::ifstream in(path);
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line, "10\t20\t3");
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line, "20\t30\t0");
  EXPECT_FALSE(std::getline(in, line));
}

}  // namespace
}  // namespace edge
}  // namespace partition
}  // namespace loom
