// file_stream smoke: generates a dataset, exports its stream (binary and
// text), re-streams it through io::FileEdgeSource and the lazy
// engine::GeneratorEdgeSource, and diffs the quality triple (assignment
// hash, edge-cut, imbalance) against the in-memory GraphEdgeSource path —
// for ALL registered backends. This is the PR's acceptance differential:
// no matter where the edges come from (RAM, file, generator), every
// backend must produce bit-identical partitionings. Registered with ctest
// via the standard glob, so it also rides the ASan/UBSan/TSan CI matrix.

#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "datasets/dataset_registry.h"
#include "engine/engine.h"
#include "engine/generator_source.h"
#include "io/edge_stream_io.h"
#include "stream/stream_order.h"
#include "test_util.h"

namespace loom {
namespace {

namespace fs = std::filesystem;

constexpr double kScale = 0.05;

test_util::Quality DriveSource(const std::string& spec,
                               const datasets::Dataset& ds,
                               const engine::EngineOptions& options,
                               engine::EdgeSource& source) {
  auto p = test_util::MakeBackend(spec, options, ds);
  if (p == nullptr) return test_util::Quality{};
  source.Reset();
  engine::Drive(p.get(), &source);
  return test_util::QualityOf(*p, ds);
}

TEST(FileStreamSmokeTest, AllBackendsBitIdenticalAcrossRamFileAndLazySources) {
  const datasets::Dataset ds =
      datasets::MakeDataset(datasets::DatasetId::kProvGen, kScale);
  const engine::EngineOptions options =
      test_util::OptionsFor(ds, /*k=*/8, /*window_size=*/256);

  // Export once per format, canonical order — the one order every source
  // kind (including the lazy generator) can produce.
  const fs::path dir = fs::path(testing::TempDir()) / "loom_file_stream_smoke";
  fs::create_directories(dir);
  const std::string binary_path = (dir / "stream.les").string();
  const std::string text_path = (dir / "stream_text.les").string();
  for (auto [path, format] :
       {std::pair{binary_path, io::StreamFormat::kBinary},
        std::pair{text_path, io::StreamFormat::kText}}) {
    auto source =
        engine::MakeEdgeSource(ds, stream::StreamOrder::kCanonical);
    io::WriteEdgeStream(path, ds.registry, ds.NumVertices(), source.get(),
                        format);
  }

  const std::vector<std::string> backends =
      engine::PartitionerRegistry::Global().Names();
  ASSERT_GE(backends.size(), 5u);

  for (const std::string& spec : backends) {
    SCOPED_TRACE(spec);
    auto in_memory =
        engine::MakeEdgeSource(ds, stream::StreamOrder::kCanonical);
    const test_util::Quality reference =
        DriveSource(spec, ds, options, *in_memory);

    io::FileEdgeSource binary(binary_path);
    EXPECT_EQ(DriveSource(spec, ds, options, binary), reference)
        << "binary file stream diverged";

    io::FileEdgeSource text(text_path);
    EXPECT_EQ(DriveSource(spec, ds, options, text), reference)
        << "text file stream diverged";

    engine::GeneratorEdgeSource lazy(datasets::DatasetId::kProvGen, kScale,
                                     stream::StreamOrder::kCanonical);
    EXPECT_EQ(DriveSource(spec, ds, options, lazy), reference)
        << "lazy generator stream diverged";
  }
}

TEST(FileStreamSmokeTest, FileReplayMatchesBfsPathForAllBackends) {
  // Same differential over the evaluation's default (BFS) arrival order:
  // the written file preserves an arbitrary permutation exactly.
  const datasets::Dataset ds =
      datasets::MakeDataset(datasets::DatasetId::kLubm100, 0.03);
  const engine::EngineOptions options =
      test_util::OptionsFor(ds, /*k=*/8, /*window_size=*/256);

  const fs::path dir = fs::path(testing::TempDir()) / "loom_file_stream_smoke";
  fs::create_directories(dir);
  const std::string path = (dir / "lubm_bfs.les").string();
  {
    auto source =
        engine::MakeEdgeSource(ds, stream::StreamOrder::kBreadthFirst);
    io::WriteEdgeStream(path, ds.registry, ds.NumVertices(), source.get(),
                        io::StreamFormat::kBinary);
  }

  for (const std::string& spec :
       engine::PartitionerRegistry::Global().Names()) {
    SCOPED_TRACE(spec);
    auto in_memory =
        engine::MakeEdgeSource(ds, stream::StreamOrder::kBreadthFirst);
    const test_util::Quality reference =
        DriveSource(spec, ds, options, *in_memory);
    io::FileEdgeSource replay(path);
    EXPECT_EQ(DriveSource(spec, ds, options, replay), reference);
  }
}

}  // namespace
}  // namespace loom
