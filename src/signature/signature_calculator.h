// Computes signature factors for graphs and for incremental edge additions
// (Sec. 2.1). All arithmetic is in the finite field [1, p]: a residue of 0 is
// replaced by p ("we don't consider 0 a valid factor").
//
// Undirected edge factors subtract the two endpoint values in a consistent
// order (the paper suggests lexicographical; we use LabelId order, which is
// lexicographic when a schema registers labels alphabetically and is
// consistent regardless). For a directed extension, subtract target from
// source instead — only this function changes.

#ifndef LOOM_SIGNATURE_SIGNATURE_CALCULATOR_H_
#define LOOM_SIGNATURE_SIGNATURE_CALCULATOR_H_

#include <span>

#include "graph/pattern_graph.h"
#include "graph/types.h"
#include "signature/label_values.h"
#include "signature/signature.h"
#include "stream/stream_edge.h"

namespace loom {
namespace signature {

/// Stateless (beyond the shared LabelValues) factor computations.
class SignatureCalculator {
 public:
  /// `values` must outlive the calculator.
  explicit SignatureCalculator(const LabelValues* values) : values_(values) {}

  uint32_t prime() const { return values_->prime(); }

  /// Size of the label space the shared LabelValues covers.
  size_t num_labels() const { return values_->num_labels(); }

  /// Edge factor for an edge between labels a and b:
  /// (r(min(a,b)) - r(max(a,b))) mod p, zero mapped to p.
  Factor EdgeFactor(graph::LabelId a, graph::LabelId b) const;

  /// Directed variant (the paper's inline extension, Sec. 2.1: "the random
  /// value for the target vertex's label is subtracted from the random value
  /// for the source vertex's label"). The rest of the machinery is direction
  /// agnostic; a directed deployment swaps this in for EdgeFactor.
  Factor DirectedEdgeFactor(graph::LabelId source, graph::LabelId target) const;

  /// The factor a vertex of label l contributes when its degree reaches
  /// `degree` (the paper's (r(l) + degree) mod p term), zero mapped to p.
  Factor DegreeFactor(graph::LabelId l, uint32_t degree) const;

  /// Factors contributed by adding one edge whose endpoints reach degrees
  /// `new_deg_u` / `new_deg_v` inside the grown sub-graph: exactly
  /// {EdgeFactor, DegreeFactor(u), DegreeFactor(v)}.
  FactorDelta FactorsForEdgeAddition(graph::LabelId lu, uint32_t new_deg_u,
                                     graph::LabelId lv, uint32_t new_deg_v) const;

  /// Allocation-free variant for the matcher's hot path: clears and refills
  /// `out` (which keeps its capacity across calls).
  void FactorsForEdgeAddition(graph::LabelId lu, uint32_t new_deg_u,
                              graph::LabelId lv, uint32_t new_deg_v,
                              FactorDelta* out) const;

  /// Full signature of a pattern graph: one edge factor per edge plus degree
  /// factors 1..deg(v) per vertex (3|E| factors total).
  Signature ComputeSignature(const graph::PatternGraph& g) const;

  /// Full signature of a sub-graph given as a set of stream edges (degrees
  /// are computed within the set). Used by tests to cross-check the
  /// incremental factor bookkeeping of the motif matcher.
  Signature ComputeSignature(std::span<const stream::StreamEdge> edges) const;

  /// Signature of a single labelled edge (degree 1 on both endpoints).
  Signature SingleEdgeSignature(graph::LabelId a, graph::LabelId b) const;

 private:
  /// Appends DegreeFactor(l, 1..degree) to `out`, batching the residues
  /// through the util::simd kernels in the paper regime (p <= 255).
  void AppendDegreeRun(graph::LabelId l, uint32_t degree,
                       std::vector<Factor>* out) const;

  const LabelValues* values_;
};

}  // namespace signature
}  // namespace loom

#endif  // LOOM_SIGNATURE_SIGNATURE_CALCULATOR_H_
