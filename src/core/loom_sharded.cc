#include "core/loom_sharded.h"

#include <algorithm>
#include <cassert>

#include "core/loom_checkpoint.h"
#include "partition/ldg_partitioner.h"

namespace loom {
namespace core {

LoomShardedPartitioner::LoomShardedPartitioner(
    const LoomShardedOptions& options, const query::Workload& workload,
    size_t num_labels)
    : options_(options),
      ctor_num_labels_(num_labels),
      partitioning_(options.loom.base.k, options.loom.base.expected_vertices,
                    options.loom.base.max_imbalance),
      seen_(std::max<uint32_t>(options.shards, 1),
            options.loom.base.adj_page_entries),
      hub_(options.loom.base.k, options.loom.base.hub_degree_threshold),
      window_(options.loom.window_size) {
  options_.shards = seen_.num_shards();
  label_values_ = std::make_unique<signature::LabelValues>(
      num_labels, options_.loom.prime, options_.loom.signature_seed);
  calc_ = std::make_unique<signature::SignatureCalculator>(label_values_.get());
  trie_ = std::make_unique<tpstry::Tpstry>(calc_.get(),
                                           options_.loom.support_threshold);
  query::Workload normalised = workload;
  normalised.Normalize();
  for (const query::Query& q : normalised.queries()) {
    trie_->AddQuery(q.pattern, q.frequency);
  }
  matcher_ = std::make_unique<motif::MotifMatcher>(trie_.get(), calc_.get(),
                                                   options_.loom.matcher);
  allocator_ = std::make_unique<EqualOpportunism>(
      trie_.get(), &seen_, options_.loom.equal_opportunism);
  const std::vector<bool> mask = trie_->MotifLabelMask(num_labels);
  motif_label_.assign(mask.begin(), mask.end());
  match_list_.ReserveEdgeSpan(options_.loom.window_size + 1);

  const size_t per_shard =
      options_.loom.base.expected_vertices / options_.shards + 1;
  shard_matchers_.reserve(options_.shards);
  const uint64_t entries_per_shard =
      2 * options_.loom.base.expected_edges / options_.shards + 1;
  for (uint32_t s = 0; s < options_.shards; ++s) {
    seen_.part(s).Reserve(per_shard);
    seen_.part(s).ReserveEntries(entries_per_shard);
    shard_matchers_.push_back(std::make_unique<motif::MotifMatcher>(
        trie_.get(), calc_.get(), options_.loom.matcher));
  }
  // Workers last: they may touch any of the members above.
  team_ = std::make_unique<ShardTeam>(
      options_.shards, options_.shard_queue_depth, options_.slice_edges,
      [this](uint32_t shard, const ShardTeam::Slice& slice) {
        ProcessSlice(shard, slice);
      });
}

void LoomShardedPartitioner::ProcessSlice(uint32_t shard,
                                          const ShardTeam::Slice& slice) {
  ShardGraphPart& part = seen_.part(shard);
  motif::MotifMatcher& admission = *shard_matchers_[shard];
  for (size_t j = 0; j < slice.edges.size(); ++j) {
    const stream::StreamEdge& e = slice.edges[j];
    if (seen_.Owner(e.u) == shard) {
      part.TouchVertex(seen_.Local(e.u), e.label_u);
      part.Append(seen_.Local(e.u), e.v);
      // u's owner stamps the admission bit (cell owned by this shard).
      admit_scratch_[slice.base + j] =
          admission.SingleEdgeMotif(e) != nullptr;
    }
    // For a self-loop the u-branch above already wrote its single canonical
    // entry (matching DynamicGraph::AddEdge); a second append here would
    // double the hub's self-degree on this backend only.
    if (e.u != e.v && seen_.Owner(e.v) == shard) {
      part.TouchVertex(seen_.Local(e.v), e.label_v);
      part.Append(seen_.Local(e.v), e.u);
    }
  }
}

void LoomShardedPartitioner::Ingest(const stream::StreamEdge& e) {
  IngestBatch(std::span<const stream::StreamEdge>(&e, 1));
}

void LoomShardedPartitioner::EnsureLabelSpace(graph::LabelId max_label) {
  if (max_label < calc_->num_labels()) return;
  label_values_->EnsureLabels(static_cast<size_t>(max_label) + 1);
  // Every matcher (sequencer's + the shards' admission memos) is sized by
  // the label count; the workers are quiescent here, so this is race-free.
  matcher_->InvalidateMotifCache();
  for (auto& m : shard_matchers_) m->InvalidateMotifCache();
  const std::vector<bool> mask =
      trie_->MotifLabelMask(label_values_->num_labels());
  motif_label_.assign(mask.begin(), mask.end());
}

void LoomShardedPartitioner::IngestBatch(
    std::span<const stream::StreamEdge> batch) {
  if (batch.empty()) return;
  // Open-alphabet growth must land before fan-out: workers probe their
  // admission memos against the label space.
  graph::LabelId max_label = 0;
  for (const stream::StreamEdge& e : batch) {
    max_label = std::max({max_label, e.label_u, e.label_v});
  }
  EnsureLabelSpace(max_label);
  // Size the admission bitmap before fan-out (workers write its cells).
  admit_scratch_.assign(batch.size(), 0);
  if (batch.size() == 1) {
    // Per-edge ingest: a cross-thread round trip per shard buys zero
    // parallel work for a single edge. Run every shard's (pure,
    // shard-local) slice inline — the workers are quiescent outside
    // Dispatch, so this is race-free and bit-identical to the fan-out.
    const ShardTeam::Slice slice{batch, 0};
    for (uint32_t s = 0; s < options_.shards; ++s) ProcessSlice(s, slice);
  } else {
    team_->Dispatch(batch);
  }
  // Barrier passed: all shards quiescent, every adjacency entry and
  // admission bit of this batch is in place. Replay decisions in stream
  // order; the visibility cursors keep reads prefix-exact per edge.
  for (size_t i = 0; i < batch.size(); ++i) {
    const stream::StreamEdge& e = batch[i];
    seen_.Advance(e.u, e.v);
    // Hub rows track the VISIBLE adjacency, so the hook rides the cursor
    // bump (not the workers' appends) — mirroring AddEdge-then-hook in the
    // serial backends.
    hub_.OnEdgeVisible(e.u, e.v, seen_, partitioning_);
    IngestSequenced(e, admit_scratch_[i] != 0);
  }
}

bool LoomShardedPartitioner::IsDeferred(graph::VertexId v,
                                        graph::LabelId label) {
  if (partitioning_.IsAssigned(v)) return false;
  if (label < motif_label_.size() && motif_label_[label] != 0) return true;
  return match_list_.HasLiveAt(v);
}

void LoomShardedPartitioner::AssignVertex(graph::VertexId v,
                                          graph::PartitionId p) {
  // First placement only (mirrors LoomPartitioner::AssignVertex): cluster
  // assignment revisits placed vertices, and the hub hook must fire once.
  if (partitioning_.IsAssigned(v)) return;
  const graph::PartitionId actual = AssignAndNotify(&partitioning_, v, p);
  hub_.OnAssign(v, actual, seen_);
}

void LoomShardedPartitioner::AssignImmediately(const stream::StreamEdge& e) {
  const bool place_u =
      !partitioning_.IsAssigned(e.u) && !IsDeferred(e.u, e.label_u);
  const bool place_v =
      !partitioning_.IsAssigned(e.v) && !IsDeferred(e.v, e.label_v);
  if (!place_u && !place_v) return;
  const graph::PartitionId p = partition::LdgHeuristic::Choose(
      e, seen_, partitioning_, /*had_signal=*/nullptr, &hub_);
  if (place_u) AssignVertex(e.u, p);
  if (place_v) AssignVertex(e.v, p);
}

void LoomShardedPartitioner::IngestSequenced(const stream::StreamEdge& e,
                                             bool admitted) {
  ++stats_.edges_ingested;

  if (!admitted) {
    ++stats_.edges_bypassed;
    AssignImmediately(e);
    return;
  }

  window_.Push(e);
  matcher_->OnEdgeAdded(e, window_, &match_list_);

  while (window_.OverCapacity()) EvictOldest();

  if (++edges_since_compact_ >= options_.loom.compact_interval) {
    match_list_.Compact();
    edges_since_compact_ = 0;
  }
}

void LoomShardedPartitioner::FillProgress(
    engine::ProgressEvent* progress) const {
  progress->edges_ingested = stats_.edges_ingested;
  progress->edges_bypassed = stats_.edges_bypassed;
  progress->window_population = window_.size();
  const ShardSequencerStats& seq = team_->stats();
  progress->shards = options_.shards;
  progress->shard_slices = seq.slices_posted;
  progress->shard_queue_stalls = seq.queue_full_stalls;
}

void LoomShardedPartitioner::FillFinalStats(
    engine::FinalStatsEvent* stats) const {
  // Same keys and (bit-identical) values as "loom" — the sequencer runs
  // the identical decision pipeline over its own pool/matcher, and the
  // shared helper makes key drift impossible; queue/stall numbers are
  // timing-dependent and deliberately stay out (they ride ProgressEvent).
  FillLoomFinalStats(match_list_.pool(), matcher_->stats(), stats);
}

void LoomShardedPartitioner::EvictOldest() {
  std::optional<stream::StreamEdge> evictee = window_.PopOldest();
  if (!evictee.has_value()) return;
  ++stats_.edges_via_window;

  me_scratch_.clear();
  match_list_.CollectLiveWithEdge(evictee->id, &me_scratch_);
  if (observer() != nullptr) {
    observer()->OnEviction({evictee->id, me_scratch_.size()});
  }
  if (me_scratch_.empty()) {
    AssignImmediately(*evictee);
    match_list_.RemoveMatchesWithEdge(evictee->id);
    return;
  }

  AllocationDecision decision =
      allocator_->DecideBids(match_list_, me_scratch_, partitioning_);
  const bool used_fallback = decision.partition == graph::kNoPartition;
  if (used_fallback) {
    const graph::PartitionId fallback = partition::LdgHeuristic::Choose(
        *evictee, seen_, partitioning_, /*had_signal=*/nullptr, &hub_);
    decision.partition = partitioning_.AtCapacity(fallback)
                             ? partitioning_.LeastLoaded()
                             : fallback;
    decision.take = me_scratch_.size();
  }
  ++stats_.clusters_allocated;

  std::vector<graph::EdgeId>& to_assign = assign_scratch_;
  to_assign.clear();
  for (size_t i = 0; i < decision.take; ++i) {
    const motif::Match& m = match_list_.match(me_scratch_[i]);
    to_assign.insert(to_assign.end(), m.edges.begin(), m.edges.end());
  }
  std::sort(to_assign.begin(), to_assign.end());
  to_assign.erase(std::unique(to_assign.begin(), to_assign.end()),
                  to_assign.end());
  assert(!to_assign.empty());

  uint64_t edges_assigned = 0;
  for (graph::EdgeId eid : to_assign) {
    const stream::StreamEdge* se =
        eid == evictee->id ? &*evictee : window_.Find(eid);
    if (se == nullptr) continue;  // already left the window
    AssignVertex(se->u, decision.partition);
    AssignVertex(se->v, decision.partition);
    window_.Remove(eid);
    ++edges_assigned;
  }
  stats_.cluster_edges_assigned += edges_assigned;
  for (graph::EdgeId eid : to_assign) match_list_.RemoveMatchesWithEdge(eid);

  if (observer() != nullptr) {
    observer()->OnClusterDecision({decision.partition, me_scratch_.size(),
                                   decision.take, edges_assigned,
                                   used_fallback});
  }
}

bool LoomShardedPartitioner::SaveState(io::CheckpointWriter* w,
                                       std::string* error) const {
  (void)error;
  auto* self = const_cast<LoomShardedPartitioner*>(this);
  LoomCoreState st;
  st.options = &options_.loom;
  st.ctor_num_labels = ctor_num_labels_;
  st.label_values = self->label_values_.get();
  st.trie = trie_.get();
  st.partitioning = &self->partitioning_;
  st.window = &self->window_;
  st.match_list = &self->match_list_;
  st.matcher = self->matcher_.get();
  st.stats = &self->stats_;
  st.edges_since_compact = &self->edges_since_compact_;
  SaveLoomCore(w, st);
  seen_.SaveTo(w);
  return true;
}

bool LoomShardedPartitioner::RestoreState(io::CheckpointReader* r,
                                          std::string* error) {
  (void)error;
  LoomCoreState st;
  st.options = &options_.loom;
  st.ctor_num_labels = ctor_num_labels_;
  st.label_values = label_values_.get();
  st.trie = trie_.get();
  st.partitioning = &partitioning_;
  st.window = &window_;
  st.match_list = &match_list_;
  st.matcher = matcher_.get();
  st.stats = &stats_;
  st.edges_since_compact = &edges_since_compact_;
  const size_t grown = RestoreLoomCore(r, st);
  seen_.LoadFrom(r);
  // Derived state — re-built over the restored visible adjacency.
  hub_.Rebuild(seen_, seen_.NumSlots(), partitioning_);
  if (grown != ctor_num_labels_) {
    matcher_->InvalidateMotifCache();
    for (auto& m : shard_matchers_) m->InvalidateMotifCache();
    const std::vector<bool> mask = trie_->MotifLabelMask(grown);
    motif_label_.assign(mask.begin(), mask.end());
  }
  return true;
}

void LoomShardedPartitioner::UpdateWorkload(const query::Workload& workload,
                                            double decay) {
  assert(decay >= 0.0 && decay < 1.0);
  if (decay > 0.0) {
    trie_->DecaySupports(decay);
  } else {
    trie_->DecaySupports(1e-12);
  }
  query::Workload normalised = workload;
  normalised.Normalize();
  const double new_mass = 1.0 - decay;
  for (const query::Query& q : normalised.queries()) {
    trie_->AddQuery(q.pattern, q.frequency * new_mass);
  }
  const std::vector<bool> mask = trie_->MotifLabelMask(motif_label_.size());
  motif_label_.assign(mask.begin(), mask.end());
  matcher_->InvalidateMotifCache();
  // The shards' admission memos cache the same motif statuses; they are
  // quiescent between dispatches, so invalidation here is race-free.
  for (auto& m : shard_matchers_) m->InvalidateMotifCache();
}

void LoomShardedPartitioner::Finalize() {
  while (!window_.empty()) EvictOldest();
  match_list_.Compact();
  for (graph::VertexId v = 0; v < seen_.NumSlots(); ++v) {
    if (!seen_.Known(v) || partitioning_.IsAssigned(v)) continue;
    AssignVertex(v, partition::LdgHeuristic::ChooseForVertex(
                        v, seen_, partitioning_, &hub_));
  }
}

}  // namespace core
}  // namespace loom
