// Workload-agnostic partitioning quality measures: edge-cut and balance.
// (The workload-*sensitive* measure, ipt, lives in query/ because it needs
// the query executor.)

#ifndef LOOM_PARTITION_PARTITION_METRICS_H_
#define LOOM_PARTITION_PARTITION_METRICS_H_

#include "graph/labeled_graph.h"
#include "partition/partitioning.h"

namespace loom {
namespace partition {

/// Number of edges whose endpoints lie in different partitions.
size_t EdgeCut(const graph::LabeledGraph& g, const Partitioning& p);

/// EdgeCut / |E| in [0, 1].
double EdgeCutRatio(const graph::LabeledGraph& g, const Partitioning& p);

/// Relative imbalance: max_i |V(Si)| / (n/k) - 1. 0 means perfectly even;
/// the paper reports 1-3% for LDG and 7-10% for Fennel/Loom.
double Imbalance(const Partitioning& p);

/// True if every vertex of `g` has been assigned.
bool FullyAssigned(const graph::LabeledGraph& g, const Partitioning& p);

/// FNV-1a over the first `num_vertices` assignments — the "assignment hash"
/// leg of the quality triple every differential suite and bench baseline
/// compares (eval::HashAssignment delegates here; loom_serve's
/// SNAPSHOT-QUALITY reports the same function so socket-fed runs can be
/// diffed bit-for-bit against offline ones).
uint64_t AssignmentHash(const Partitioning& p, size_t num_vertices);

}  // namespace partition
}  // namespace loom

#endif  // LOOM_PARTITION_PARTITION_METRICS_H_
