// Small string helpers shared across IO and the harness.

#ifndef LOOM_UTIL_STRING_UTIL_H_
#define LOOM_UTIL_STRING_UTIL_H_

#include <string>
#include <vector>

namespace loom {
namespace util {

/// Splits `s` on `delim`, keeping empty fields.
std::vector<std::string> Split(const std::string& s, char delim);

/// Strips ASCII whitespace from both ends.
std::string Trim(const std::string& s);

/// True if `s` begins with `prefix`.
bool StartsWith(const std::string& s, const std::string& prefix);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, const std::string& sep);

/// Human-readable count: 1234567 -> "1.2M", 12345 -> "12.3k".
std::string HumanCount(uint64_t n);

/// Parses a FINITE double from the whole of `s` (no trailing junk) into
/// `*out`; returns false otherwise. "nan"/"inf" are rejected: std::stod
/// happily produces them, and NaN then slips through every `x < lo`/`x > hi`
/// range check downstream (ordered comparisons on NaN are always false) —
/// the exact hole that let hdrf:lambda=nan corrupt placements. Every CLI
/// flag and file field that feeds a double must come through here or
/// EngineOptions.
bool ParseFiniteDouble(const std::string& s, double* out);

}  // namespace util
}  // namespace loom

#endif  // LOOM_UTIL_STRING_UTIL_H_
