// Stream ordering policies used throughout the evaluation (Sec. 5.1):
// breadth-first, depth-first and random permutations of a graph's edges.

#ifndef LOOM_STREAM_STREAM_ORDER_H_
#define LOOM_STREAM_STREAM_ORDER_H_

#include <string>
#include <string_view>

#include "graph/labeled_graph.h"
#include "stream/edge_stream.h"

namespace loom {
namespace stream {

/// The three arrival orders from the paper's evaluation, plus the
/// canonical (builder edge-id) order — the order file exports and the lazy
/// generator sources stream in, since it needs no adjacency to compute.
enum class StreamOrder {
  kBreadthFirst,
  kDepthFirst,
  kRandom,
  kCanonical,
};

/// Name for reports ("bfs" / "dfs" / "random" / "canonical").
std::string ToString(StreamOrder order);

/// Parses the ToString names; false on anything else.
bool ParseStreamOrder(std::string_view name, StreamOrder* out);

/// The arrival permutation of g's edge ids under `order`. `seed` only
/// matters for kRandom; BFS/DFS orders are fully determined by the graph.
/// Single source of the order -> permutation mapping, shared by MakeStream
/// and engine::MakeEdgeSource so their streams stay bit-identical.
std::vector<graph::EdgeId> EdgeOrderFor(const graph::LabeledGraph& g,
                                        StreamOrder order,
                                        uint64_t seed = 0x10c5);

/// Materialises a stream of `g` under `order`.
EdgeStream MakeStream(const graph::LabeledGraph& g, StreamOrder order,
                      uint64_t seed = 0x10c5);

}  // namespace stream
}  // namespace loom

#endif  // LOOM_STREAM_STREAM_ORDER_H_
