// Fig. 4: probability of fewer than C% factor collisions for various numbers
// of factors (24/36/48, i.e. query graphs of 8/12/16 edges) and finite
// fields p in [2, 317], at tolerances 5%, 10% and 20%.
//
// Also cross-checks the analytic per-factor collision rate 2/p against a
// Monte-Carlo estimate, and prints the acceptance probability at the paper's
// chosen p = 251 ("a negligible probability of significant factor
// collisions").

#include <iostream>

#include "bench_common.h"
#include "signature/collision_model.h"
#include "util/table_writer.h"

int main() {
  using namespace loom;
  bench::Banner("Fig. 4 — probability of acceptable factor collisions",
                "Fig. 4, Sec. 2.3");

  const std::vector<uint32_t> factor_counts = {24, 36, 48};
  const std::vector<double> tolerances = {0.05, 0.10, 0.20};
  // A representative sweep of the primes in [2, 317] (the figure's x axis).
  const std::vector<uint32_t> primes = {2,  5,  11,  17,  31,  51 + 2 /*53*/,
                                        79, 101, 151, 199, 251, 317};

  for (double tol : tolerances) {
    std::cout << "Probability of acceptance, tolerance "
              << static_cast<int>(tol * 100) << "%\n";
    std::vector<std::string> header = {"p"};
    for (uint32_t f : factor_counts) {
      header.push_back("#factors=" + std::to_string(f));
    }
    util::TableWriter t(header);
    for (uint32_t p : primes) {
      std::vector<std::string> row = {std::to_string(p)};
      for (uint32_t f : factor_counts) {
        row.push_back(util::TableWriter::Fmt(
            signature::ProbAcceptableCollisions(f, tol, p), 4));
      }
      t.AddRow(std::move(row));
    }
    t.Print(std::cout);
    std::cout << "\n";
  }

  std::cout << "Monte-Carlo cross-check of the 2/p per-factor collision "
               "model:\n";
  util::TableWriter mc({"p", "model 2/p", "empirical"});
  for (uint32_t p : {11u, 51u + 2u, 101u, 251u}) {
    mc.AddRow({std::to_string(p), util::TableWriter::Fmt(2.0 / p, 5),
               util::TableWriter::Fmt(
                   signature::EmpiricalFactorCollisionRate(p, 400000, 13), 5)});
  }
  mc.Print(std::cout);

  std::cout << "\nAt the paper's p = 251 with 48 factors and 5% tolerance, "
               "acceptance = "
            << util::TableWriter::Fmt(
                   signature::ProbAcceptableCollisions(48, 0.05, 251), 6)
            << " (expected: ~1, i.e. negligible collision risk).\n"
            << "Expected shape: curves rise steeply with p and saturate near "
               "1 well before p = 251;\nsmaller factor counts saturate "
               "earlier, matching Fig. 4.\n";
  return 0;
}
