// Runtime-dispatched SIMD kernels for the streaming hot loops.
//
// Three of Loom's per-edge costs are data-parallel over small dense arrays:
// the signature layer's finite-field residues and multiset-extension test
// (factors are uint32 residues mod p; the paper's p = 251 packs into uint8
// lanes), equal opportunism's Eq. 1 bid totals across all k partitions, and
// the LDG neighbour tally (gather the partition of every neighbour, count
// per partition). Each kernel here exists in up to three implementations —
// portable scalar, SSE2 (the x86-64 baseline) and AVX2 — selected at
// runtime.
//
// THE CONTRACT THAT MAKES THIS SAFE: every level of every kernel is
// bit-identical to the scalar implementation on every input — identical
// integers, identical doubles (same operation order per output lane, no
// FMA contraction, masked lanes contribute exactly +0.0), identical
// booleans. Partition quality therefore cannot depend on the dispatch
// level; tests/simd_kernels_test.cc proves the kernels equal on exhaustive
// small domains and seeded fuzz, and tests/simd_equivalence_test.cc proves
// whole backends hash-identical under forced-scalar vs auto dispatch.
//
// Dispatch: the process-wide active level defaults to the strongest level
// the CPU supports, overridable by the LOOM_SIMD environment variable
// ("scalar" | "sse2" | "avx2" | "auto") or the engine option key "simd"
// (applied on every PartitionerRegistry::Create — note it is process-wide,
// not per-backend-instance; harmless because all levels are equivalent).
// Requests beyond what the CPU supports clamp down with a one-time stderr
// note. Non-x86 builds compile the scalar level only.

#ifndef LOOM_UTIL_SIMD_H_
#define LOOM_UTIL_SIMD_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

namespace loom {
namespace util {
namespace simd {

enum class Level : uint8_t { kScalar = 0, kSSE2 = 1, kAVX2 = 2 };

namespace detail {
/// 0xFF = not yet resolved from LOOM_SIMD / cpuid. Relaxed atomic: readers
/// only need *a* level, and every level computes identical results.
extern std::atomic<uint8_t> g_active_level;
/// Resolves (env, cpuid), installs and returns the level. Out of line.
Level ResolveActiveLevel();
}  // namespace detail

/// Display name: "scalar" / "sse2" / "avx2".
const char* LevelName(Level level);

/// Parses "scalar" / "sse2" / "avx2"; "auto" yields the CPU's best level.
/// Returns false on anything else.
bool ParseLevel(std::string_view text, Level* out);

/// Strongest level this CPU can run (kScalar on non-x86 builds).
Level DetectCpuLevel();

/// Every level the CPU supports, weakest first (always includes kScalar).
/// Differential tests iterate this.
std::vector<Level> SupportedLevels();

/// The process-wide dispatch level. Resolved once on first use: LOOM_SIMD
/// if set (clamped to DetectCpuLevel), else DetectCpuLevel. Inline — the
/// hot wrappers below read it per call.
inline Level ActiveLevel() {
  const uint8_t v = detail::g_active_level.load(std::memory_order_relaxed);
  return v != 0xFF ? static_cast<Level>(v) : detail::ResolveActiveLevel();
}

/// Forces the active level (clamped to DetectCpuLevel; returns the level
/// actually installed). Thread-compatible with concurrent kernel calls
/// (relaxed atomic), but callers should quiesce workers before switching —
/// the sharded backend only reads the level from its serial stage.
Level SetActiveLevel(Level level);

/// Applies an engine-option / CLI spelling: "auto" is a no-op (keep the
/// active level — the environment default until something forces one),
/// anything else goes through ParseLevel + SetActiveLevel. Returns false
/// (and leaves the level untouched) on an unknown spelling.
bool Configure(std::string_view spec);

// ---------------------------------------------------------------------------
// Kernels. Each has an explicit-level form (tests drive every level) and a
// dispatched form using ActiveLevel(). All pointers may alias only where
// noted; n == 0 is always legal.
// ---------------------------------------------------------------------------

// ---- multiset / ordered-array primitives (signature layer) ----

/// Number of elements of a[0..n) that are <= v (on sorted input this is the
/// upper_bound index).
size_t CountLessEqU32(Level level, const uint32_t* a, size_t n, uint32_t v);
size_t CountLessEqU32(const uint32_t* a, size_t n, uint32_t v);

/// memcmp-style equality of two uint32 ranges.
bool RangeEqualU32(Level level, const uint32_t* a, const uint32_t* b,
                   size_t n);
bool RangeEqualU32(const uint32_t* a, const uint32_t* b, size_t n);

/// True iff sorted `grown`[0..m) equals the sorted multiset union of sorted
/// `base`[0..n) and sorted `delta`[0..d). The hot membership test of
/// Alg. 2: child.sig == node.sig ∪ edge-addition factors. The SIMD levels
/// locate delta's insertion points with CountLessEqU32 and compare the
/// segments between them with RangeEqualU32 — one vector pass over each
/// array instead of an element-at-a-time merge walk.
bool MultisetExtendsU32(Level level, const uint32_t* base, size_t n,
                        const uint32_t* delta, size_t d, const uint32_t* grown,
                        size_t m);
bool MultisetExtendsU32(const uint32_t* base, size_t n, const uint32_t* delta,
                        size_t d, const uint32_t* grown, size_t m);

/// Writes the needles NOT present in sorted `haystack`[0..n) to out (in
/// their original order) and returns how many were written. The join
/// preamble of Alg. 2: remaining = smaller.edges \ base.edges, with match
/// edge sets capped at kMaxQueryEdges (the SIMD levels compare each needle
/// against the whole haystack in 8-lane chunks instead of binary
/// searching). out must not alias haystack; out == needles is allowed
/// (in-place filter).
size_t SortedDifferenceU32(Level level, const uint32_t* needles, size_t m,
                           const uint32_t* haystack, size_t n, uint32_t* out);
size_t SortedDifferenceU32(const uint32_t* needles, size_t m,
                           const uint32_t* haystack, size_t n, uint32_t* out);

// ---- finite-field residues (signature layer; paper regime p <= 255) ----

/// out[i] = nonzero-mod(a[i] - b[i], p): the residue in [1, p] with 0
/// mapped to p (Sec. 2.1 edge factors). Requires p in [2, 255] and
/// a[i], b[i] < p. out may alias a or b.
void ResidueDiffU16(Level level, const uint16_t* a, const uint16_t* b,
                    size_t n, uint32_t p, uint16_t* out);
void ResidueDiffU16(const uint16_t* a, const uint16_t* b, size_t n, uint32_t p,
                    uint16_t* out);

/// out[i] = nonzero-mod(v[i], p) for arbitrary uint16 v[i]; p in [2, 255].
/// (Degree factors: (r(l) + degree) mod p with the value pre-summed into a
/// uint16.) out may alias v.
void ResidueU16(Level level, const uint16_t* v, size_t n, uint32_t p,
                uint16_t* out);
void ResidueU16(const uint16_t* v, size_t n, uint32_t p, uint16_t* out);

/// The three factors contributed by one edge addition (Sec. 2.1):
///   out[0] = nonzero-mod(va - vb, p)          edge factor, va/vb already in
///                                             the caller's canonical order
///   out[1] = nonzero-mod(vu + deg_u, p)       endpoint degree factors
///   out[2] = nonzero-mod(vv + deg_v, p)
/// va, vb, vu, vv < p; p >= 2 (any uint32 prime — levels above scalar
/// engage only in the uint16-friendly regime and fall back internally
/// otherwise, still bit-identical).
void EdgeAdditionFactors(Level level, uint32_t va, uint32_t vb, uint32_t vu,
                         uint32_t deg_u, uint32_t vv, uint32_t deg_v,
                         uint32_t p, uint32_t out[3]);

namespace detail {
/// Division-free residue triple for the non-scalar levels: three lanes are
/// far too few to amortise vector setup (measured 15x slower through the
/// uint16 kernels), so "SIMD" here means the lane arithmetic the batch
/// kernels use — compare/subtract instead of 64-bit division — scalarised
/// and inlined at the call site (~3M calls/s on the matcher hot path).
inline void EdgeAdditionFactorsFast(uint32_t va, uint32_t vb, uint32_t vu,
                                    uint32_t deg_u, uint32_t vv,
                                    uint32_t deg_v, uint32_t p,
                                    uint32_t out[3]) {
  // va, vb < p: one wrap (64-bit sum: p may be any uint32).
  const uint64_t t0 = static_cast<uint64_t>(va) + p - vb;  // in (0, 2p)
  const uint32_t r0 = static_cast<uint32_t>(t0 >= p ? t0 - p : t0);
  out[0] = r0 == 0 ? p : r0;
  // vu, vv < p; in-match degrees are tiny (one reduction), but stay exact
  // for any uint32 degree via the % fallback.
  const uint64_t t1 = static_cast<uint64_t>(vu) + deg_u;
  const uint32_t r1 = t1 < 2 * static_cast<uint64_t>(p)
                          ? static_cast<uint32_t>(t1 >= p ? t1 - p : t1)
                          : static_cast<uint32_t>(t1 % p);
  out[1] = r1 == 0 ? p : r1;
  const uint64_t t2 = static_cast<uint64_t>(vv) + deg_v;
  const uint32_t r2 = t2 < 2 * static_cast<uint64_t>(p)
                          ? static_cast<uint32_t>(t2 >= p ? t2 - p : t2)
                          : static_cast<uint32_t>(t2 % p);
  out[2] = r2 == 0 ? p : r2;
}
}  // namespace detail

inline void EdgeAdditionFactors(uint32_t va, uint32_t vb, uint32_t vu,
                                uint32_t deg_u, uint32_t vv, uint32_t deg_v,
                                uint32_t p, uint32_t out[3]) {
  if (ActiveLevel() != Level::kScalar) {
    detail::EdgeAdditionFactorsFast(va, vb, vu, deg_u, vv, deg_v, p, out);
    return;
  }
  EdgeAdditionFactors(Level::kScalar, va, vb, vu, deg_u, vv, deg_v, p, out);
}

// ---- partition tallies (LDG + equal opportunism) ----

/// out[i] = table[idx[i]] if idx[i] < table_n else oob.
void GatherU32(Level level, const uint32_t* table, size_t table_n,
               const uint32_t* idx, size_t n, uint32_t oob, uint32_t* out);
void GatherU32(const uint32_t* table, size_t table_n, const uint32_t* idx,
               size_t n, uint32_t oob, uint32_t* out);

/// counts[v] += #occurrences of v in vals[0..n) for every v < k; values
/// >= k (e.g. kNoPartition) are ignored. counts must hold k entries and is
/// accumulated into, not cleared.
void TallyU32(Level level, const uint32_t* vals, size_t n, uint32_t k,
              uint32_t* counts);
void TallyU32(const uint32_t* vals, size_t n, uint32_t k, uint32_t* counts);

/// Fused gather + tally: counts[table[idx[i]]] for idx[i] < table_n,
/// skipping entries whose gathered value is >= k. THE LDG/Eq. 1 neighbour
/// tally: table = the assignment array, idx = a neighbour span.
void TallyGatherU32(Level level, const uint32_t* table, size_t table_n,
                    const uint32_t* idx, size_t n, uint32_t k,
                    uint32_t* counts);

namespace detail {
/// Spans below this never reach the vector sweep: the per-partition
/// compare pass can't amortise its setup, and most neighbour spans are a
/// handful of entries — those run the histogram inline at the call site.
inline constexpr size_t kSmallTally = 32;
/// Above this k the compare sweep (k * n/32 compares) loses to the plain
/// histogram (n dependent increments) at any n.
inline constexpr uint32_t kTallyCompareMaxK = 32;
}  // namespace detail

inline void TallyGatherU32(const uint32_t* table, size_t table_n,
                           const uint32_t* idx, size_t n, uint32_t k,
                           uint32_t* counts) {
  if (n < detail::kSmallTally || k > detail::kTallyCompareMaxK) {
    for (size_t i = 0; i < n; ++i) {
      if (idx[i] >= table_n) continue;
      const uint32_t v = table[idx[i]];
      if (v < k) ++counts[v];
    }
    return;
  }
  TallyGatherU32(ActiveLevel(), table, table_n, idx, n, k, counts);
}

/// dst[i] += src[i] for i < n (integer, exact).
void AddU32(Level level, uint32_t* dst, const uint32_t* src, size_t n);

inline void AddU32(uint32_t* dst, const uint32_t* src, size_t n) {
  if (n <= 16) {  // typical k: below a vector's worth of call overhead
    for (size_t i = 0; i < n; ++i) dst[i] += src[i];
    return;
  }
  AddU32(ActiveLevel(), dst, src, n);
}

/// dst[i] += weight * double(src[i]); requires src[i] < 2^31 so the int
/// conversion is exact. Per-lane operation order matches the scalar loop,
/// so results are bit-identical doubles.
void AccumulateScaledU32(Level level, double* dst, const uint32_t* src,
                         double weight, size_t n);

inline void AccumulateScaledU32(double* dst, const uint32_t* src,
                                double weight, size_t n) {
  if (n <= 16) {
    for (size_t i = 0; i < n; ++i) {
      dst[i] += weight * static_cast<double>(src[i]);
    }
    return;
  }
  AccumulateScaledU32(ActiveLevel(), dst, src, weight, n);
}

// ---- Eq. 1 bid totals (equal opportunism) ----

/// For every partition si < k:
///   totals[si] = sum over i in [0, count[si]) of
///                  (overlap[i*k + si] * residual[si]) * support[i]
/// skipping terms whose overlap is <= 0 (they contribute exactly +0.0; the
/// SIMD levels add the masked +0.0 instead, which is bit-identical because
/// every term and every partial sum is >= +0.0). count[si] <= rows.
/// Accumulation order per partition is i ascending — the same operation
/// sequence as the scalar per-partition loop, so totals are bit-identical
/// doubles at every level. overlap must not overlap totals.
void BidTotals(Level level, const double* overlap, size_t rows, uint32_t k,
               const double* residual, const double* support,
               const uint32_t* count, double* totals);

inline void BidTotals(const double* overlap, size_t rows, uint32_t k,
                      const double* residual, const double* support,
                      const uint32_t* count, double* totals) {
  if (rows * k < 64) {  // single-match clusters dominate; skip the hop
    for (uint32_t si = 0; si < k; ++si) {
      double total = 0.0;
      for (size_t i = 0; i < count[si]; ++i) {
        const double ov = overlap[i * k + si];
        if (ov <= 0.0) continue;  // contributes exactly +0.0
        total += (ov * residual[si]) * support[i];
      }
      totals[si] = total;
    }
    return;
  }
  BidTotals(ActiveLevel(), overlap, rows, k, residual, support, count, totals);
}

}  // namespace simd
}  // namespace util
}  // namespace loom

#endif  // LOOM_UTIL_SIMD_H_
