#include "datasets/provgen_generator.h"

#include <algorithm>
#include <vector>

#include "util/rng.h"

namespace loom {
namespace datasets {

void EmitProvGen(const ProvGenConfig& config, graph::LabelRegistry* registry,
                 GraphSink* sink) {
  auto& reg = *registry;
  GraphSink& b = *sink;
  const graph::LabelId kEntity = reg.Intern("Entity");
  const graph::LabelId kActivity = reg.Intern("Activity");
  const graph::LabelId kAgent = reg.Intern("Agent");

  util::Rng rng(config.seed);

  const size_t num_pages = std::max<size_t>(config.num_pages, 10);
  const size_t num_agents = std::max<size_t>(num_pages / 12, 3);

  std::vector<graph::VertexId> agents;
  for (size_t i = 0; i < num_agents; ++i) agents.push_back(b.AddVertex(kAgent));

  // Remember some entities for cross-page derivation branches.
  std::vector<graph::VertexId> recent_entities;

  for (size_t page = 0; page < num_pages; ++page) {
    const size_t revisions =
        1 + rng.Uniform(2 * std::max<size_t>(config.mean_revisions, 1));
    graph::VertexId current = b.AddVertex(kEntity);
    for (size_t r = 0; r < revisions; ++r) {
      const graph::VertexId activity = b.AddVertex(kActivity);
      const graph::VertexId next = b.AddVertex(kEntity);
      b.AddEdge(activity, current);  // prov:used
      b.AddEdge(activity, next);     // prov:wasGeneratedBy (inverted)
      // prov:wasAssociatedWith — Zipf editor activity.
      b.AddEdge(activity, agents[rng.Zipf(num_agents, 1.1)]);
      // ~6% of revisions also draw on an entity from another page
      // (content reuse), creating cross-chain structure.
      if (!recent_entities.empty() && rng.Bernoulli(0.06)) {
        b.AddEdge(activity,
                  recent_entities[rng.Uniform(recent_entities.size())]);
      }
      current = next;
    }
    recent_entities.push_back(current);
    if (recent_entities.size() > 500) {
      recent_entities.erase(recent_entities.begin(),
                            recent_entities.begin() + 250);
    }
  }
}

Dataset GenerateProvGen(const ProvGenConfig& config) {
  Dataset ds;
  ds.meta.name = "provgen";
  ds.meta.real_world_analog = false;
  ds.meta.description = "Wiki page provenance (PROV entity/activity/agent)";

  BuilderSink sink;
  EmitProvGen(config, &ds.registry, &sink);
  ds.graph = sink.Build();
  return ds;
}

}  // namespace datasets
}  // namespace loom
