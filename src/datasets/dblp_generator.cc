#include "datasets/dblp_generator.h"

#include <algorithm>
#include <vector>

#include "util/rng.h"

namespace loom {
namespace datasets {

void EmitDblp(const DblpConfig& config, graph::LabelRegistry* registry,
              GraphSink* sink) {
  auto& reg = *registry;
  GraphSink& b = *sink;
  const graph::LabelId kAuthor = reg.Intern("Author");
  const graph::LabelId kPaper = reg.Intern("Paper");
  const graph::LabelId kVenue = reg.Intern("Venue");
  const graph::LabelId kProceedings = reg.Intern("Proceedings");
  const graph::LabelId kYear = reg.Intern("Year");
  const graph::LabelId kOrganization = reg.Intern("Organization");
  const graph::LabelId kTopic = reg.Intern("Topic");
  const graph::LabelId kEditor = reg.Intern("Editor");

  util::Rng rng(config.seed);

  const size_t num_papers = std::max<size_t>(config.num_papers, 50);
  const size_t num_authors = std::max<size_t>(num_papers * 11 / 20, 10);
  const size_t num_venues = std::max<size_t>(num_papers / 60, 3);
  const size_t num_years = 40;
  const size_t num_orgs = std::max<size_t>(num_papers / 120, 3);
  const size_t num_topics = std::max<size_t>(num_papers / 40, 5);
  const size_t num_editors = std::max<size_t>(num_venues / 2, 2);

  std::vector<graph::VertexId> authors, papers, venues, proceedings, years,
      orgs, topics, editors;
  for (size_t i = 0; i < num_authors; ++i) authors.push_back(b.AddVertex(kAuthor));
  for (size_t i = 0; i < num_papers; ++i) papers.push_back(b.AddVertex(kPaper));
  for (size_t i = 0; i < num_venues; ++i) {
    venues.push_back(b.AddVertex(kVenue));
    proceedings.push_back(b.AddVertex(kProceedings));
  }
  for (size_t i = 0; i < num_years; ++i) years.push_back(b.AddVertex(kYear));
  for (size_t i = 0; i < num_orgs; ++i) orgs.push_back(b.AddVertex(kOrganization));
  for (size_t i = 0; i < num_topics; ++i) topics.push_back(b.AddVertex(kTopic));
  for (size_t i = 0; i < num_editors; ++i) editors.push_back(b.AddVertex(kEditor));

  // Venue plumbing: proceedings belong to venues, editors curate them.
  for (size_t i = 0; i < num_venues; ++i) {
    b.AddEdge(venues[i], proceedings[i]);
    b.AddEdge(proceedings[i], editors[rng.Zipf(num_editors, 1.0)]);
  }
  // Author affiliation (~60% of authors).
  for (graph::VertexId a : authors) {
    if (rng.Bernoulli(0.6)) b.AddEdge(a, orgs[rng.Zipf(num_orgs, 0.8)]);
  }

  for (size_t i = 0; i < num_papers; ++i) {
    const graph::VertexId paper = papers[i];
    // 1-4 authors, Zipf productivity (a few prolific authors).
    const size_t n_authors = 1 + rng.Uniform(4);
    for (size_t a = 0; a < n_authors; ++a) {
      b.AddEdge(paper, authors[rng.Zipf(num_authors, 0.65)]);
    }
    // Citations to earlier papers, preferential toward low ids (the "old
    // famous papers" effect), only once a prefix exists.
    if (i > 10) {
      const size_t n_cites = rng.Uniform(3);  // 0-2
      for (size_t c = 0; c < n_cites; ++c) {
        b.AddEdge(paper, papers[rng.Zipf(i, 0.6)]);
      }
    }
    // Venue + year are hub-like attributes.
    b.AddEdge(paper, venues[rng.Zipf(num_venues, 1.0)]);
    b.AddEdge(paper, years[rng.Uniform(num_years)]);
    // ~70% of papers carry a topic.
    if (rng.Bernoulli(0.7)) b.AddEdge(paper, topics[rng.Zipf(num_topics, 1.0)]);
  }
}

Dataset GenerateDblp(const DblpConfig& config) {
  Dataset ds;
  ds.meta.name = "dblp";
  ds.meta.real_world_analog = true;
  ds.meta.description = "Publications & citations (synthetic DBLP analog)";

  BuilderSink sink;
  EmitDblp(config, &ds.registry, &sink);
  ds.graph = sink.Build();
  return ds;
}

}  // namespace datasets
}  // namespace loom
