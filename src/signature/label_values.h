// Random label values r(l) in [1, p) for the number-theoretic signatures of
// Sec. 2.1. One instance is shared by the TPSTry++ builder and the stream
// matcher so that factors computed in either place agree.

#ifndef LOOM_SIGNATURE_LABEL_VALUES_H_
#define LOOM_SIGNATURE_LABEL_VALUES_H_

#include <cstdint>
#include <vector>

#include "graph/types.h"
#include "util/rng.h"

namespace loom {
namespace signature {

/// Default finite-field prime. The paper selects 251 ("when identifying and
/// matching motifs, we use a p value of 251") via the Fig. 4 analysis.
inline constexpr uint32_t kDefaultPrime = 251;

/// Assigns each label a pseudo-random value r(l) in [1, p). Deterministic
/// given (num_labels, p, seed) — and, because the generator is retained and
/// values are drawn sequentially by index, r(l) is the same whether label l
/// existed at construction or arrived later through EnsureLabels: an open
/// alphabet never perturbs the values of earlier labels.
class LabelValues {
 public:
  /// Requires p >= 3 (so that [1, p) has at least two values).
  LabelValues(size_t num_labels, uint32_t p, uint64_t seed = 0xC0FFEE);

  uint32_t prime() const { return p_; }
  size_t num_labels() const { return values_.size(); }

  /// r(l) for label l. Requires l < num_labels.
  uint32_t Value(graph::LabelId l) const { return values_[l]; }

  /// Grows the table to cover at least `num_labels` labels (no-op when it
  /// already does). Growth is chunked — the table extends to a multiple of
  /// kLabelChunk — so an open-alphabet stream that reveals labels one at a
  /// time pays one extension per chunk, not per label.
  void EnsureLabels(size_t num_labels);

  static constexpr size_t kLabelChunk = 16;

 private:
  uint32_t p_;
  util::Rng rng_;  // retained: value i is always the i-th draw
  std::vector<uint32_t> values_;
};

}  // namespace signature
}  // namespace loom

#endif  // LOOM_SIGNATURE_LABEL_VALUES_H_
