#include "serve/protocol.h"

#include <charconv>
#include <vector>

namespace loom {
namespace serve {

namespace {

/// Splits on single spaces. Empty fields (leading / trailing / doubled
/// spaces) yield empty tokens, which the arity checks below reject — the
/// wire format is exact, not whitespace-tolerant.
std::vector<std::string_view> SplitFields(std::string_view line) {
  std::vector<std::string_view> out;
  size_t start = 0;
  for (;;) {
    const size_t space = line.find(' ', start);
    if (space == std::string_view::npos) {
      out.push_back(line.substr(start));
      return out;
    }
    out.push_back(line.substr(start, space - start));
    start = space + 1;
  }
}

template <typename T>
bool ParseNum(std::string_view token, T* out) {
  if (token.empty()) return false;
  const char* end = token.data() + token.size();
  const auto [ptr, ec] = std::from_chars(token.data(), end, *out);
  return ec == std::errc() && ptr == end;
}

bool ParseVertex(std::string_view token, graph::VertexId* out,
                 std::string* error) {
  uint64_t wide = 0;
  if (!ParseNum(token, &wide) || wide >= graph::kInvalidVertex) {
    *error = "bad vertex id '" + std::string(token) + "'";
    return false;
  }
  *out = static_cast<graph::VertexId>(wide);
  return true;
}

bool ParseLabel(std::string_view token, graph::LabelId* out,
                std::string* error) {
  uint64_t wide = 0;
  if (!ParseNum(token, &wide) || wide >= graph::kInvalidLabel) {
    *error = "bad label id '" + std::string(token) + "'";
    return false;
  }
  *out = static_cast<graph::LabelId>(wide);
  return true;
}

bool CheckArity(const std::vector<std::string_view>& fields, size_t want,
                std::string* error) {
  if (fields.size() == want) return true;
  *error = std::string(fields[0]) + " takes " + std::to_string(want - 1) +
           " argument(s), got " + std::to_string(fields.size() - 1);
  return false;
}

}  // namespace

bool ParseCommand(std::string_view line, Command* out, std::string* error) {
  if (line.empty()) {
    *error = "empty command";
    return false;
  }
  if (line.size() > kMaxLineBytes) {
    *error = "line exceeds " + std::to_string(kMaxLineBytes) + " bytes";
    return false;
  }
  const std::vector<std::string_view> fields = SplitFields(line);
  const std::string_view verb = fields[0];
  if (verb == "INGEST") {
    // 4 payload fields, plus an optional trailing sequence number.
    if (fields.size() != 5 && fields.size() != 6) {
      *error = "INGEST takes 4 or 5 argument(s) (u v label_u label_v [seq]), "
               "got " +
               std::to_string(fields.size() - 1);
      return false;
    }
    out->type = CommandType::kIngest;
    stream::StreamEdge& e = out->edge;
    if (!ParseVertex(fields[1], &e.u, error)) return false;
    if (!ParseVertex(fields[2], &e.v, error)) return false;
    if (!ParseLabel(fields[3], &e.label_u, error)) return false;
    if (!ParseLabel(fields[4], &e.label_v, error)) return false;
    if (e.u == e.v) {
      *error = "self-loop " + std::string(fields[1]) + " -> " +
               std::string(fields[2]);
      return false;
    }
    out->has_seq = fields.size() == 6;
    out->seq = 0;
    if (out->has_seq && !ParseNum(fields[5], &out->seq)) {
      *error = "bad sequence number '" + std::string(fields[5]) + "'";
      return false;
    }
    return true;
  }
  if (verb == "GET") {
    if (!CheckArity(fields, 2, error)) return false;
    out->type = CommandType::kGet;
    return ParseVertex(fields[1], &out->vertex, error);
  }
  struct Bare {
    std::string_view verb;
    CommandType type;
  };
  static constexpr Bare kBare[] = {
      {"STATS", CommandType::kStats},
      {"CHECKPOINT", CommandType::kCheckpoint},
      {"FINALIZE", CommandType::kFinalize},
      {"SNAPSHOT-QUALITY", CommandType::kSnapshotQuality},
      {"SHUTDOWN", CommandType::kShutdown},
  };
  for (const Bare& b : kBare) {
    if (verb == b.verb) {
      if (!CheckArity(fields, 1, error)) return false;
      out->type = b.type;
      return true;
    }
  }
  *error = "unknown command '" + std::string(verb) + "'";
  return false;
}

std::string FormatCommand(const Command& c) {
  switch (c.type) {
    case CommandType::kIngest:
      return "INGEST " + std::to_string(c.edge.u) + " " +
             std::to_string(c.edge.v) + " " + std::to_string(c.edge.label_u) +
             " " + std::to_string(c.edge.label_v) +
             (c.has_seq ? " " + std::to_string(c.seq) : "");
    case CommandType::kGet:
      return "GET " + std::to_string(c.vertex);
    case CommandType::kStats:
      return "STATS";
    case CommandType::kCheckpoint:
      return "CHECKPOINT";
    case CommandType::kFinalize:
      return "FINALIZE";
    case CommandType::kSnapshotQuality:
      return "SNAPSHOT-QUALITY";
    case CommandType::kShutdown:
      return "SHUTDOWN";
  }
  return "";
}

std::string ErrReply(std::string_view detail) {
  return "ERR " + std::string(detail);
}

bool IsOk(std::string_view reply) {
  return reply.rfind("OK", 0) == 0 &&
         (reply.size() == 2 || reply[2] == ' ');
}

void LineFramer::Feed(std::string_view bytes) { buf_.append(bytes); }

LineFramer::Result LineFramer::Next(std::string* line) {
  if (discarding_) {
    const size_t nl = buf_.find('\n');
    if (nl == std::string::npos) {
      buf_.clear();  // still inside the oversize line; drop and keep waiting
      return Result::kNeedMore;
    }
    buf_.erase(0, nl + 1);
    discarding_ = false;
    return Result::kOversize;
  }
  const size_t nl = buf_.find('\n');
  if (nl == std::string::npos) {
    if (buf_.size() > max_) {
      // The line is already over budget with no end in sight: switch to
      // discard mode so buffered bytes stay bounded.
      buf_.clear();
      discarding_ = true;
    }
    return Result::kNeedMore;
  }
  if (nl > max_) {
    buf_.erase(0, nl + 1);
    return Result::kOversize;
  }
  line->assign(buf_, 0, nl);
  buf_.erase(0, nl + 1);
  if (!line->empty() && line->back() == '\r') line->pop_back();
  return Result::kLine;
}

}  // namespace serve
}  // namespace loom
