// Small labelled query/pattern graphs (the paper's q = (Vq, Eq)).
//
// Pattern graphs are tiny (the paper: "of the order of 10 edges"), so we use
// simple vectors and O(degree) scans; clarity over asymptotics. They feed
// both the TPSTry++ construction (Sec. 2) and the query executor (Sec. 5).

#ifndef LOOM_GRAPH_PATTERN_GRAPH_H_
#define LOOM_GRAPH_PATTERN_GRAPH_H_

#include <string>
#include <vector>

#include "graph/label_registry.h"
#include "graph/types.h"

namespace loom {
namespace graph {

/// A connected labelled pattern graph with dense vertex ids 0..n-1.
class PatternGraph {
 public:
  PatternGraph() = default;

  /// Adds a vertex with the given label; returns its id.
  VertexId AddVertex(LabelId label);

  /// Adds an undirected edge; both endpoints must exist, no self loops.
  /// Duplicate edges are rejected (returns false).
  bool AddEdge(VertexId u, VertexId v);

  size_t NumVertices() const { return labels_.size(); }
  size_t NumEdges() const { return edges_.size(); }

  LabelId label(VertexId v) const { return labels_[v]; }
  const std::vector<LabelId>& labels() const { return labels_; }
  const std::vector<Edge>& edges() const { return edges_; }
  const Edge& edge(EdgeId e) const { return edges_[e]; }

  /// Neighbour list of v (rebuilt lazily is avoided: maintained on insert).
  const std::vector<VertexId>& Neighbors(VertexId v) const { return adj_[v]; }
  size_t Degree(VertexId v) const { return adj_[v].size(); }

  bool HasEdge(VertexId u, VertexId v) const;

  /// True if the pattern is connected (empty/1-vertex patterns count as
  /// connected). The paper's queries are always connected.
  bool IsConnected() const;

  /// Builds a path pattern l0 - l1 - ... - lk (k edges).
  static PatternGraph Path(const std::vector<LabelId>& labels);

  /// Builds a cycle pattern over the given labels (>= 3 vertices).
  static PatternGraph Cycle(const std::vector<LabelId>& labels);

  /// Builds a star: `center` connected to each leaf label.
  static PatternGraph Star(LabelId center, const std::vector<LabelId>& leaves);

  /// Parses a path shorthand like "a-b-c" against `registry` (interning
  /// missing labels). Convenience for tests and examples.
  static PatternGraph ParsePath(const std::string& spec, LabelRegistry* registry);

  /// Human-readable description, e.g. "[a-b, b-c]" using `registry` names.
  std::string ToString(const LabelRegistry& registry) const;

 private:
  std::vector<LabelId> labels_;
  std::vector<Edge> edges_;
  std::vector<std::vector<VertexId>> adj_;
};

}  // namespace graph
}  // namespace loom

#endif  // LOOM_GRAPH_PATTERN_GRAPH_H_
