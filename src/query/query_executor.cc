#include "query/query_executor.h"

#include <algorithm>
#include <cassert>

namespace loom {
namespace query {

QueryExecutor::QueryExecutor(const graph::LabeledGraph* g,
                             ExecutorConfig config)
    : g_(g), config_(config), label_counts_(g->LabelHistogram()) {}

std::vector<QueryExecutor::PlanStep> QueryExecutor::BuildPlan(
    const graph::PatternGraph& q) const {
  assert(q.NumVertices() >= 2 && q.IsConnected());

  // Anchor: the pattern vertex whose label is rarest in the data graph
  // (fewest seed candidates); ties toward higher pattern degree, then id.
  graph::VertexId anchor = 0;
  auto rarity = [&](graph::VertexId v) -> size_t {
    graph::LabelId l = q.label(v);
    return l < label_counts_.size() ? label_counts_[l] : 0;
  };
  for (graph::VertexId v = 1; v < q.NumVertices(); ++v) {
    if (rarity(v) < rarity(anchor) ||
        (rarity(v) == rarity(anchor) && q.Degree(v) > q.Degree(anchor))) {
      anchor = v;
    }
  }

  // BFS order from the anchor; record parent + closure edges per step.
  std::vector<PlanStep> plan;
  std::vector<bool> placed(q.NumVertices(), false);
  std::vector<graph::VertexId> order;
  order.push_back(anchor);
  placed[anchor] = true;
  for (size_t head = 0; head < order.size(); ++head) {
    for (graph::VertexId w : q.Neighbors(order[head])) {
      if (!placed[w]) {
        placed[w] = true;
        order.push_back(w);
      }
    }
  }
  assert(order.size() == q.NumVertices());

  std::vector<bool> mapped(q.NumVertices(), false);
  for (graph::VertexId pv : order) {
    PlanStep step;
    step.pattern_vertex = pv;
    for (graph::VertexId w : q.Neighbors(pv)) {
      if (!mapped[w]) continue;
      if (step.parent == graph::kInvalidVertex) {
        step.parent = w;
      } else {
        step.closures.push_back(w);
      }
    }
    mapped[pv] = true;
    plan.push_back(std::move(step));
  }
  return plan;
}

void QueryExecutor::Backtrack(const graph::PatternGraph& q,
                              const std::vector<PlanStep>& plan, size_t depth,
                              std::vector<graph::VertexId>& mapping,
                              const partition::Partitioning& p,
                              uint64_t& budget,
                              ExecutionResult* result) const {
  if (budget == 0) return;
  if (depth == plan.size()) {
    ++result->matches;
    --budget;
    return;
  }
  const PlanStep& step = plan[depth];
  const graph::VertexId parent_pv = step.parent;
  assert(parent_pv != graph::kInvalidVertex);
  const graph::VertexId parent_gv = mapping[parent_pv];
  const graph::LabelId want = q.label(step.pattern_vertex);

  for (graph::VertexId cand : g_->Neighbors(parent_gv)) {
    if (budget == 0) return;
    // Label filter first: GDBMS adjacency is label-indexed, so neighbours of
    // the wrong label are skipped without dereferencing them. Expanding to a
    // label-matching neighbour is one traversal; it costs an ipt when it
    // crosses partitions.
    if (g_->label(cand) != want) continue;
    ++result->traversals;
    if (p.PartitionOf(parent_gv) != p.PartitionOf(cand)) ++result->ipt;
    // Injectivity.
    bool used = false;
    for (size_t d = 0; d < depth; ++d) {
      if (mapping[plan[d].pattern_vertex] == cand) {
        used = true;
        break;
      }
    }
    if (used) continue;

    // Closure edges must exist; confirming one is a traversal too.
    bool ok = true;
    for (graph::VertexId closure_pv : step.closures) {
      const graph::VertexId closure_gv = mapping[closure_pv];
      if (!g_->HasEdge(cand, closure_gv)) {
        ok = false;
        break;
      }
      ++result->traversals;
      if (p.PartitionOf(cand) != p.PartitionOf(closure_gv)) ++result->ipt;
    }
    if (!ok) continue;

    mapping[step.pattern_vertex] = cand;
    Backtrack(q, plan, depth + 1, mapping, p, budget, result);
    mapping[step.pattern_vertex] = graph::kInvalidVertex;
  }
}

ExecutionResult QueryExecutor::Execute(const graph::PatternGraph& q,
                                       const partition::Partitioning& p) const {
  ExecutionResult result;
  if (q.NumEdges() == 0) return result;
  const std::vector<PlanStep> plan = BuildPlan(q);
  const graph::VertexId anchor = plan[0].pattern_vertex;
  const graph::LabelId anchor_label = q.label(anchor);

  // Seed candidates: all data vertices with the anchor label, subsampled by
  // a deterministic stride when over the cap.
  const size_t candidates = anchor_label < label_counts_.size()
                                ? label_counts_[anchor_label]
                                : 0;
  if (candidates == 0) return result;
  const size_t stride =
      candidates > config_.max_seeds
          ? (candidates + config_.max_seeds - 1) / config_.max_seeds
          : 1;

  std::vector<graph::VertexId> mapping(q.NumVertices(), graph::kInvalidVertex);
  size_t seen = 0;
  for (graph::VertexId v = 0; v < g_->NumVertices(); ++v) {
    if (g_->label(v) != anchor_label) continue;
    const bool take = (seen % stride) == 0;
    ++seen;
    if (!take) continue;
    mapping[anchor] = v;
    uint64_t budget = config_.max_matches_per_seed;
    Backtrack(q, plan, 1, mapping, p, budget, &result);
    mapping[anchor] = graph::kInvalidVertex;
  }
  return result;
}

}  // namespace query
}  // namespace loom
