// Cross-validation of the streaming matcher (Alg. 2) against brute force.
//
// The paper proves signatures admit no false negatives; the matcher built on
// them must therefore find EVERY motif-matching sub-graph whose edges are
// simultaneously inside the window. We verify that exhaustively: stream a
// random labelled graph with an unbounded window, enumerate every connected
// edge subset of the final window (brute force), test each for signature
// equality with a motif, and require the matchList to contain it.

#include <gtest/gtest.h>

#include <bit>
#include <functional>
#include <map>
#include <set>

#include "datasets/workloads.h"
#include "motif/motif_matcher.h"
#include "tpstry/subgraph_enumerator.h"
#include "util/rng.h"

namespace loom {
namespace motif {
namespace {

class ExhaustiveMatchTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ExhaustiveMatchTest, MatcherFindsEveryWindowResidentMotifMatch) {
  util::Rng rng(GetParam());

  // Fig. 1 workload at a low threshold so multi-edge motifs (up to the
  // 4-edge square) are in play.
  graph::LabelRegistry registry;
  query::Workload workload = datasets::Figure1Workload(&registry);
  signature::LabelValues values(registry.size(), 251, 0xC0FFEE);
  signature::SignatureCalculator calc(&values);
  tpstry::Tpstry trie(&calc, 0.05);
  for (const auto& q : workload.queries()) {
    trie.AddQuery(q.pattern, q.frequency);
  }
  MotifMatcher matcher(&trie, &calc);

  // Random small labelled graph (labels a/b/c/d), streamed in random order.
  const size_t n = 6 + rng.Uniform(4);
  std::vector<graph::LabelId> labels(n);
  for (auto& l : labels) l = static_cast<graph::LabelId>(rng.Uniform(4));
  std::vector<std::pair<graph::VertexId, graph::VertexId>> edges;
  for (graph::VertexId v = 1; v < n; ++v) {
    edges.emplace_back(v, static_cast<graph::VertexId>(rng.Uniform(v)));
  }
  for (size_t i = 0; i < n / 2; ++i) {
    graph::VertexId a = static_cast<graph::VertexId>(rng.Uniform(n));
    graph::VertexId b = static_cast<graph::VertexId>(rng.Uniform(n));
    if (a == b) continue;
    bool dup = false;
    for (auto [x, y] : edges) {
      if ((x == a && y == b) || (x == b && y == a)) dup = true;
    }
    if (!dup) edges.emplace_back(a, b);
  }

  // Stream with an unbounded window.
  stream::SlidingWindow window(1000);
  MatchList ml;
  std::vector<stream::StreamEdge> admitted;
  graph::EdgeId next_id = 0;
  for (auto [u, v] : edges) {
    stream::StreamEdge e;
    e.id = next_id++;
    e.u = u;
    e.v = v;
    e.label_u = labels[u];
    e.label_v = labels[v];
    if (matcher.SingleEdgeMotif(e) == nullptr) continue;
    window.Push(e);
    matcher.OnEdgeAdded(e, window, &ml);
    admitted.push_back(e);
  }
  if (admitted.empty()) return;  // nothing admissible under this seed
  ASSERT_LE(admitted.size(), 25u) << "keep brute force tractable";

  // Brute force: every connected subset of admitted edges whose signature
  // equals some motif's signature must be in the matchList.
  const size_t m = admitted.size();
  const uint32_t max_motif_edges = trie.MaxMotifEdges();
  size_t expected = 0, found = 0;
  for (uint64_t mask = 1; mask < (uint64_t{1} << m); ++mask) {
    const int bits = std::popcount(mask);
    if (bits < 1 || static_cast<uint32_t>(bits) > max_motif_edges) continue;
    std::vector<stream::StreamEdge> subset;
    for (size_t i = 0; i < m; ++i) {
      if (mask & (uint64_t{1} << i)) subset.push_back(admitted[i]);
    }
    // Connectivity check via union-find on vertex ids.
    std::set<graph::VertexId> verts;
    for (const auto& e : subset) {
      verts.insert(e.u);
      verts.insert(e.v);
    }
    std::map<graph::VertexId, graph::VertexId> parent;
    for (graph::VertexId v : verts) parent[v] = v;
    std::function<graph::VertexId(graph::VertexId)> find =
        [&](graph::VertexId x) {
          while (parent[x] != x) x = parent[x] = parent[parent[x]];
          return x;
        };
    for (const auto& e : subset) parent[find(e.u)] = find(e.v);
    bool connected = true;
    for (graph::VertexId v : verts) {
      if (find(v) != find(*verts.begin())) connected = false;
    }
    if (!connected) continue;

    signature::Signature sig = calc.ComputeSignature(subset);
    const tpstry::TpsNode* node = trie.FindBySignature(sig);
    if (node == nullptr || !trie.IsMotif(node->id)) continue;
    ++expected;

    // The matchList must contain exactly this edge set with this motif.
    bool present = false;
    for (MatchHandle h : ml.LiveWithEdge(subset[0].id)) {
      const Match& match = ml.match(h);
      if (match.node_id != node->id) continue;
      if (match.edges.size() != subset.size()) continue;
      bool same = true;
      for (const auto& e : subset) {
        if (!match.ContainsEdge(e.id)) same = false;
      }
      if (same) present = true;
    }
    if (present) ++found;
    EXPECT_TRUE(present) << "seed " << GetParam() << ": motif match of "
                         << subset.size() << " edges missed by Alg. 2";
  }
  EXPECT_EQ(found, expected);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExhaustiveMatchTest,
                         ::testing::Range<uint64_t>(0, 40));

}  // namespace
}  // namespace motif
}  // namespace loom
