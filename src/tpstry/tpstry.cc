#include "tpstry/tpstry.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <set>
#include <sstream>

namespace loom {
namespace tpstry {

Tpstry::Tpstry(const signature::SignatureCalculator* calc,
               double support_threshold)
    : calc_(calc), support_threshold_(support_threshold) {
  TpsNode root;
  root.id = kRootId;
  nodes_.push_back(std::move(root));
}

uint32_t Tpstry::FindOrCreateNode(const signature::Signature& sig,
                                  const graph::PatternGraph& rep,
                                  uint32_t num_edges) {
  auto it = by_signature_.find(sig);
  if (it != by_signature_.end()) return it->second;
  uint32_t id = static_cast<uint32_t>(nodes_.size());
  TpsNode n;
  n.id = id;
  n.sig = sig;
  n.rep = rep;
  n.num_edges = num_edges;
  nodes_.push_back(std::move(n));
  by_signature_.emplace(sig, id);
  return id;
}

void Tpstry::Link(uint32_t parent, uint32_t child) {
  auto& kids = nodes_[parent].children;
  if (std::find(kids.begin(), kids.end(), child) == kids.end()) {
    kids.push_back(child);
    nodes_[child].parents.push_back(parent);
  }
}

void Tpstry::AddQuery(const graph::PatternGraph& q, double frequency) {
  assert(q.NumEdges() >= 1 && q.NumEdges() <= kMaxQueryEdges);
  assert(q.IsConnected());
  assert(frequency > 0.0);

  const std::vector<EdgeMask> masks = ConnectedEdgeSubsets(q);

  // Mask -> node id, so link construction can navigate by mask.
  std::unordered_map<EdgeMask, uint32_t> node_of_mask;
  node_of_mask.reserve(masks.size());
  std::set<uint32_t> distinct_nodes;  // support counted once per query

  for (EdgeMask mask : masks) {
    graph::PatternGraph sub = SubgraphFromMask(q, mask);
    signature::Signature sig = calc_->ComputeSignature(sub);
    uint32_t id = FindOrCreateNode(sig, sub, static_cast<uint32_t>(std::popcount(mask)));
    node_of_mask.emplace(mask, id);
    distinct_nodes.insert(id);
  }

  for (uint32_t id : distinct_nodes) nodes_[id].support += frequency;
  total_frequency_ += frequency;

  // Parent/child links: every connected subset S and incident edge e not in
  // S yields S -> S+e (S+e is connected by construction, hence enumerated).
  for (EdgeMask mask : masks) {
    const uint32_t parent =
        std::popcount(mask) == 1 ? kRootId : node_of_mask.at(mask);
    if (std::popcount(mask) == 1) Link(kRootId, node_of_mask.at(mask));
    (void)parent;
    for (size_t e = 0; e < q.NumEdges(); ++e) {
      EdgeMask bit = EdgeMask{1} << e;
      if (mask & bit) continue;
      EdgeMask grown = mask | bit;
      auto it = node_of_mask.find(grown);
      if (it == node_of_mask.end()) continue;  // grown subset disconnected
      Link(node_of_mask.at(mask), it->second);
    }
  }
}

void Tpstry::DecaySupports(double factor) {
  assert(factor > 0.0 && factor <= 1.0);
  for (TpsNode& n : nodes_) n.support *= factor;
  total_frequency_ *= factor;
}

double Tpstry::NormalizedSupport(uint32_t id) const {
  if (id == kRootId) return 1.0;
  if (total_frequency_ <= 0.0) return 0.0;
  return nodes_[id].support / total_frequency_;
}

bool Tpstry::IsMotif(uint32_t id) const {
  if (id == kRootId) return false;
  // A hair of slack so thresholds expressed in decimal (0.4) accept supports
  // computed from sums like 0.3 + 0.1.
  return NormalizedSupport(id) >= support_threshold_ - 1e-9;
}

std::vector<uint32_t> Tpstry::MotifIds() const {
  std::vector<uint32_t> out;
  for (uint32_t id = 1; id < nodes_.size(); ++id) {
    if (IsMotif(id)) out.push_back(id);
  }
  return out;
}

uint32_t Tpstry::MaxMotifEdges() const {
  uint32_t best = 0;
  for (uint32_t id = 1; id < nodes_.size(); ++id) {
    if (IsMotif(id)) best = std::max(best, nodes_[id].num_edges);
  }
  return best;
}

const TpsNode* Tpstry::FindBySignature(const signature::Signature& sig) const {
  auto it = by_signature_.find(sig);
  return it == by_signature_.end() ? nullptr : &nodes_[it->second];
}

const TpsNode* Tpstry::FindSingleEdgeMotif(
    const signature::Signature& sig) const {
  const TpsNode* n = FindBySignature(sig);
  if (n == nullptr || n->num_edges != 1 || !IsMotif(n->id)) return nullptr;
  return n;
}

const TpsNode* Tpstry::FindMotifChild(
    uint32_t node_id, const signature::FactorDelta& delta) const {
  const TpsNode& n = nodes_[node_id];
  if (n.children.empty()) return nullptr;
  // Sort the delta once; every child membership test shares it (ExtendsBy
  // would otherwise copy + sort per child on the Alg. 2 hot path).
  // thread_local: the trie is shared by the sharded backend's admission
  // workers, which must not contend on a member scratch.
  thread_local signature::FactorDelta sorted_delta;
  sorted_delta = delta;
  std::sort(sorted_delta.begin(), sorted_delta.end());
  for (uint32_t cid : n.children) {
    const TpsNode& c = nodes_[cid];
    if (!IsMotif(cid)) continue;
    if (n.sig.ExtendsBySorted(sorted_delta, c.sig)) return &c;
  }
  return nullptr;
}

std::vector<bool> Tpstry::MotifLabelMask(size_t num_labels) const {
  std::vector<bool> mask(num_labels, false);
  for (uint32_t id = 1; id < nodes_.size(); ++id) {
    if (!IsMotif(id)) continue;
    for (graph::LabelId l : nodes_[id].rep.labels()) {
      if (l < num_labels) mask[l] = true;
    }
  }
  return mask;
}

std::string Tpstry::Dump(const graph::LabelRegistry& registry) const {
  std::ostringstream os;
  for (const TpsNode& n : nodes_) {
    if (n.id == kRootId) {
      os << "#0 root\n";
      continue;
    }
    os << "#" << n.id << " " << n.rep.ToString(registry)
       << " support=" << NormalizedSupport(n.id)
       << (IsMotif(n.id) ? " [motif]" : "") << " children={";
    for (size_t i = 0; i < n.children.size(); ++i) {
      if (i) os << ",";
      os << n.children[i];
    }
    os << "}\n";
  }
  return os.str();
}

}  // namespace tpstry
}  // namespace loom
