// engine::Session coverage: run lifecycle (Run vs IngestSome+Finish, bit
// identical), event-sourced RunReports (totals, final stats, no backend
// getters anywhere), sink fan-out, spec error reporting — plus the eval
// harness's generic backend_stats satellite (SystemResult carries whatever
// the backend reported, nothing else).

#include <algorithm>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "datasets/dataset_registry.h"
#include "engine/session.h"
#include "eval/experiment.h"
#include "io/assignment_sink.h"
#include "stream/stream_order.h"
#include "test_util.h"

namespace loom {
namespace engine {
namespace {

datasets::Dataset& TestDataset() {
  static datasets::Dataset* ds = new datasets::Dataset(
      datasets::MakeDataset(datasets::DatasetId::kProvGen, 0.03));
  return *ds;
}

SessionConfig ConfigFor(const std::string& spec, const datasets::Dataset& ds,
                        uint64_t window = 128) {
  SessionConfig config;
  config.spec = spec;
  config.options = test_util::OptionsFor(ds, /*k=*/8, window);
  return config;
}

std::unique_ptr<Session> MustCreate(const std::string& spec,
                                    const datasets::Dataset& ds,
                                    uint64_t window = 128) {
  std::string error;
  auto session = Session::Create(ConfigFor(spec, ds, window),
                                 test_util::ContextFor(ds), &error);
  EXPECT_NE(session, nullptr) << error;
  return session;
}

TEST(SessionTest, CreateReportsActionableErrors) {
  const datasets::Dataset& ds = TestDataset();
  std::string error;

  EXPECT_EQ(Session::Create(ConfigFor("metis", ds),
                            test_util::ContextFor(ds), &error),
            nullptr);
  EXPECT_NE(error.find("metis"), std::string::npos) << error;

  EXPECT_EQ(Session::Create(ConfigFor("loom:frobnicate=1", ds),
                            test_util::ContextFor(ds), &error),
            nullptr);
  EXPECT_NE(error.find("frobnicate"), std::string::npos) << error;

  EXPECT_EQ(Session::Create(ConfigFor("loom", ds), BuildContext{}, &error),
            nullptr);
  EXPECT_NE(error.find("workload"), std::string::npos) << error;
}

TEST(SessionTest, RunReportIsEventSourcedAndComplete) {
  const datasets::Dataset& ds = TestDataset();
  auto session = MustCreate("loom", ds);
  auto source = MakeEdgeSource(ds, stream::StreamOrder::kBreadthFirst);
  const RunReport report = session->Run(*source);

  EXPECT_EQ(report.backend, "loom");
  EXPECT_EQ(report.edges, ds.NumEdges());
  EXPECT_GT(report.ms, 0.0);
  EXPECT_GT(report.edges_per_sec, 0.0);
  EXPECT_EQ(report.events.vertices_assigned,
            session->partitioning().NumAssigned());
  EXPECT_GT(report.events.evictions, 0u);
  EXPECT_TRUE(report.events.last_progress.finalizing);
  EXPECT_EQ(report.events.last_progress.edges_ingested, ds.NumEdges());

  // Final stats arrived through the observer event, not a getter.
  EXPECT_GT(report.Stat("match_allocs_fresh"), 0u);
  EXPECT_GT(report.Stat("matcher_edges_admitted"), 0u);
  EXPECT_EQ(report.Stat("no_such_counter", 1234u), 1234u);
}

TEST(SessionTest, BaselinesReportNoBackendStats) {
  const datasets::Dataset& ds = TestDataset();
  for (const char* spec : {"hash", "ldg", "fennel"}) {
    auto session = MustCreate(spec, ds);
    auto source = MakeEdgeSource(ds, stream::StreamOrder::kBreadthFirst);
    const RunReport report = session->Run(*source);
    EXPECT_TRUE(report.backend_stats.empty()) << spec;
    EXPECT_EQ(report.events.vertices_assigned,
              session->partitioning().NumAssigned())
        << spec;
  }
}

TEST(SessionTest, SinksReceiveEveryAssignmentExactlyOnce) {
  const datasets::Dataset& ds = TestDataset();
  auto session = MustCreate("loom", ds);
  io::MemoryAssignmentSink sink;
  session->AddSink(&sink);
  auto source = MakeEdgeSource(ds, stream::StreamOrder::kBreadthFirst);
  session->Run(*source);

  const partition::Partitioning& p = session->partitioning();
  EXPECT_EQ(sink.assignments().size(), p.NumAssigned());
  std::vector<bool> seen(ds.NumVertices(), false);
  for (const auto& [vertex, partition] : sink.assignments()) {
    ASSERT_LT(vertex, ds.NumVertices());
    EXPECT_FALSE(seen[vertex]) << "vertex " << vertex << " assigned twice";
    seen[vertex] = true;
    EXPECT_EQ(partition, p.PartitionOf(vertex)) << vertex;
  }
}

TEST(SessionTest, StepDrivenStreamMatchesOneShotRunBitForBit) {
  const datasets::Dataset& ds = TestDataset();
  const stream::EdgeStream es =
      stream::MakeStream(ds.graph, stream::StreamOrder::kBreadthFirst);

  auto one_shot = MustCreate("loom", ds);
  EdgeStreamSource source_a(es);
  const RunReport run_report = one_shot->Run(source_a);

  auto stepped = MustCreate("loom", ds);
  EdgeStreamSource source_b(es);
  size_t total = 0;
  for (size_t chunk : {1u, 7u, 500u}) {  // awkward, uneven strides
    total += stepped->IngestSome(source_b, chunk);
  }
  // Drain the rest in one large gulp, then checkpoint.
  total += stepped->IngestSome(source_b, es.size());
  const RunReport step_report = stepped->Finish();

  EXPECT_EQ(total, es.size());
  EXPECT_EQ(step_report.edges, run_report.edges);
  EXPECT_EQ(eval::HashAssignment(one_shot->partitioning(), ds.NumVertices()),
            eval::HashAssignment(stepped->partitioning(), ds.NumVertices()));
  EXPECT_EQ(step_report.backend_stats, run_report.backend_stats);
  EXPECT_EQ(step_report.events.vertices_assigned,
            run_report.events.vertices_assigned);
  EXPECT_EQ(step_report.events.cluster_decisions,
            run_report.events.cluster_decisions);
  EXPECT_TRUE(step_report.events.last_progress.finalizing);
}

TEST(SessionTest, CheckpointFlushesSinksExactlyOnce) {
  // The durability contract: when Checkpoint() commits, everything the
  // snapshot claims as assigned must already have been flushed to the
  // sinks — and checkpointing must never replay an assignment into them.
  class CountingSink : public io::AssignmentSink {
   public:
    void Append(graph::VertexId v, graph::PartitionId) override {
      ++appends_per_vertex_[v];
      ++unflushed_;
    }
    void Flush() override {
      ++flushes_;
      unflushed_ = 0;
    }
    std::map<graph::VertexId, int> appends_per_vertex_;
    int flushes_ = 0;
    int unflushed_ = 0;
  };

  const datasets::Dataset& ds = TestDataset();
  auto session = MustCreate("loom", ds);
  CountingSink sink;
  session->AddSink(&sink);
  const stream::EdgeStream es =
      stream::MakeStream(ds.graph, stream::StreamOrder::kBreadthFirst);
  EdgeStreamSource source(es);
  session->IngestSome(source, es.size() / 2);

  const std::string path =
      (std::filesystem::path(testing::TempDir()) / "flush.loomck").string();
  std::string error;
  ASSERT_TRUE(session->Checkpoint(path, &error)) << error;
  EXPECT_EQ(sink.flushes_, 1);
  EXPECT_EQ(sink.unflushed_, 0)
      << "assignments appended after the checkpoint's flush";
  const size_t at_checkpoint = sink.appends_per_vertex_.size();
  EXPECT_EQ(at_checkpoint, session->partitioning().NumAssigned());

  // Drive to the end: the sink sees each remaining vertex once — nothing
  // is replayed by the checkpoint machinery.
  session->IngestSome(source, es.size());
  session->Finish();
  EXPECT_EQ(sink.appends_per_vertex_.size(),
            session->partitioning().NumAssigned());
  for (const auto& [vertex, count] : sink.appends_per_vertex_) {
    ASSERT_EQ(count, 1) << "vertex " << vertex << " appended " << count
                        << " times";
  }
  std::filesystem::remove(path);
}

TEST(SessionTest, ExternalObserversSeeTheEventStream) {
  const datasets::Dataset& ds = TestDataset();
  auto session = MustCreate("loom", ds);
  StatsObserver external;
  session->AddObserver(&external);
  auto source = MakeEdgeSource(ds, stream::StreamOrder::kBreadthFirst);
  const RunReport report = session->Run(*source);

  EXPECT_EQ(external.totals().vertices_assigned,
            report.events.vertices_assigned);
  EXPECT_EQ(external.totals().evictions, report.events.evictions);
  EXPECT_EQ(external.final_stats().counters, report.backend_stats);
}

TEST(SessionTest, ShardedBackendReportsIdenticalFinalStatsToLoom) {
  const datasets::Dataset& ds = TestDataset();
  auto loom = MustCreate("loom", ds);
  auto sharded = MustCreate("loom-sharded:shards=3", ds);
  auto source = MakeEdgeSource(ds, stream::StreamOrder::kBreadthFirst);
  const RunReport loom_report = loom->Run(*source);
  source->Reset();
  const RunReport sharded_report = sharded->Run(*source);

  EXPECT_EQ(eval::HashAssignment(loom->partitioning(), ds.NumVertices()),
            eval::HashAssignment(sharded->partitioning(), ds.NumVertices()));
  EXPECT_EQ(loom_report.backend_stats, sharded_report.backend_stats);
  EXPECT_FALSE(loom_report.backend_stats.empty());
}

// ------------------------------------------------- eval satellite checks

TEST(EvalBackendStatsTest, SystemResultCarriesGenericStatsOnly) {
  const datasets::Dataset& ds = TestDataset();
  eval::ExperimentConfig cfg;
  cfg.window_size = 128;
  cfg.executor.max_seeds = 100;

  auto source = MakeEdgeSource(ds, stream::StreamOrder::kBreadthFirst);
  const eval::SystemResult loom =
      eval::RunSystemTimingOnly(eval::System::kLoom, ds, *source, cfg);
  EXPECT_GT(loom.BackendStat("match_allocs_fresh"), 0u);
  EXPECT_GT(loom.BackendStat("matcher_edges_admitted"), 0u);
  EXPECT_EQ(loom.BackendStat("never_reported"), 0u);

  const eval::SystemResult hash =
      eval::RunSystemTimingOnly(eval::System::kHash, ds, *source, cfg);
  // No more per-backend magic zeros: backends that report nothing carry
  // nothing.
  EXPECT_TRUE(hash.backend_stats.empty());
}

}  // namespace
}  // namespace engine
}  // namespace loom
