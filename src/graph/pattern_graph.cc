#include "graph/pattern_graph.h"

#include <cassert>

#include "util/string_util.h"

namespace loom {
namespace graph {

VertexId PatternGraph::AddVertex(LabelId label) {
  VertexId id = static_cast<VertexId>(labels_.size());
  labels_.push_back(label);
  adj_.emplace_back();
  return id;
}

bool PatternGraph::AddEdge(VertexId u, VertexId v) {
  assert(u < labels_.size() && v < labels_.size());
  if (u == v) return false;
  if (HasEdge(u, v)) return false;
  edges_.emplace_back(u, v);
  adj_[u].push_back(v);
  adj_[v].push_back(u);
  return true;
}

bool PatternGraph::HasEdge(VertexId u, VertexId v) const {
  for (VertexId w : adj_[u]) {
    if (w == v) return true;
  }
  return false;
}

bool PatternGraph::IsConnected() const {
  if (labels_.size() <= 1) return true;
  std::vector<bool> seen(labels_.size(), false);
  std::vector<VertexId> stack = {0};
  seen[0] = true;
  size_t count = 1;
  while (!stack.empty()) {
    VertexId v = stack.back();
    stack.pop_back();
    for (VertexId w : adj_[v]) {
      if (!seen[w]) {
        seen[w] = true;
        ++count;
        stack.push_back(w);
      }
    }
  }
  return count == labels_.size();
}

PatternGraph PatternGraph::Path(const std::vector<LabelId>& labels) {
  PatternGraph p;
  VertexId prev = kInvalidVertex;
  for (LabelId l : labels) {
    VertexId v = p.AddVertex(l);
    if (prev != kInvalidVertex) p.AddEdge(prev, v);
    prev = v;
  }
  return p;
}

PatternGraph PatternGraph::Cycle(const std::vector<LabelId>& labels) {
  assert(labels.size() >= 3);
  PatternGraph p = Path(labels);
  p.AddEdge(static_cast<VertexId>(labels.size() - 1), 0);
  return p;
}

PatternGraph PatternGraph::Star(LabelId center, const std::vector<LabelId>& leaves) {
  PatternGraph p;
  VertexId c = p.AddVertex(center);
  for (LabelId l : leaves) {
    VertexId leaf = p.AddVertex(l);
    p.AddEdge(c, leaf);
  }
  return p;
}

PatternGraph PatternGraph::ParsePath(const std::string& spec,
                                     LabelRegistry* registry) {
  std::vector<LabelId> labels;
  for (const std::string& part : util::Split(spec, '-')) {
    labels.push_back(registry->Intern(util::Trim(part)));
  }
  return Path(labels);
}

std::string PatternGraph::ToString(const LabelRegistry& registry) const {
  std::string out = "[";
  for (size_t i = 0; i < edges_.size(); ++i) {
    if (i) out += ", ";
    out += registry.Name(labels_[edges_[i].u]);
    out += "-";
    out += registry.Name(labels_[edges_[i].v]);
  }
  out += "]";
  return out;
}

}  // namespace graph
}  // namespace loom
