// The common interface every streaming partitioner implements: consume a
// stream of labelled edges one at a time, finalize, expose the resulting
// vertex partitioning.

#ifndef LOOM_PARTITION_PARTITIONER_H_
#define LOOM_PARTITION_PARTITIONER_H_

#include <string>

#include "partition/partitioning.h"
#include "stream/stream_edge.h"

namespace loom {
namespace partition {

/// Shared configuration. Streaming partitioners (LDG, Fennel and the paper's
/// Loom evaluation) are parameterised by the expected totals n and m — a
/// standard assumption for this family of algorithms.
struct PartitionerConfig {
  uint32_t k = 8;                    // number of partitions
  size_t expected_vertices = 0;      // n
  size_t expected_edges = 0;         // m
  double max_imbalance = 1.1;        // ν: capacity = ν·n/k
};

class Partitioner {
 public:
  virtual ~Partitioner() = default;

  /// Consumes the next stream element.
  virtual void Ingest(const stream::StreamEdge& e) = 0;

  /// Flushes buffered state (e.g. Loom's window). Idempotent.
  virtual void Finalize() {}

  /// The (possibly still partial, before Finalize) partitioning.
  virtual const Partitioning& partitioning() const = 0;

  /// Short name for reports ("hash", "ldg", "fennel", "loom").
  virtual std::string name() const = 0;
};

}  // namespace partition
}  // namespace loom

#endif  // LOOM_PARTITION_PARTITIONER_H_
