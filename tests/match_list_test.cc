#include "motif/match_list.h"

#include <gtest/gtest.h>

namespace loom {
namespace motif {
namespace {

Match MakeRecord(std::vector<graph::EdgeId> edges,
                 std::vector<graph::VertexId> vertices, uint32_t node) {
  Match m;
  m.edges = std::move(edges);
  m.vertices = std::move(vertices);
  m.degrees.assign(m.vertices.size(), 1);
  m.node_id = node;
  return m;
}

/// Acquires, fills and commits; kNullMatch when rejected as duplicate.
MatchHandle AddMatch(MatchList& ml, std::vector<graph::EdgeId> edges,
                     std::vector<graph::VertexId> vertices, uint32_t node) {
  MatchHandle h = ml.Acquire();
  ml.match(h).CopyFrom(MakeRecord(std::move(edges), std::move(vertices), node));
  return ml.Commit(h) ? h : kNullMatch;
}

TEST(MatchTest, ContainsChecks) {
  Match m = MakeRecord({2, 5, 9}, {1, 3}, 7);
  EXPECT_TRUE(m.ContainsEdge(5));
  EXPECT_FALSE(m.ContainsEdge(4));
  EXPECT_TRUE(m.ContainsVertex(3));
  EXPECT_FALSE(m.ContainsVertex(2));
}

TEST(MatchTest, KeyIsContentBased) {
  Match a = MakeRecord({1, 2}, {0, 1, 2}, 3);
  Match b = MakeRecord({1, 2}, {0, 1, 2}, 3);
  Match c = MakeRecord({1, 2}, {0, 1, 2}, 4);  // different motif
  Match d = MakeRecord({1, 3}, {0, 1, 2}, 3);  // different edges
  EXPECT_EQ(a.Key(), b.Key());
  EXPECT_NE(a.Key(), c.Key());
  EXPECT_NE(a.Key(), d.Key());
}

TEST(MatchListTest, AddAndLookup) {
  MatchList ml;
  MatchHandle m = AddMatch(ml, {0}, {10, 11}, 1);
  EXPECT_NE(m, kNullMatch);
  EXPECT_EQ(ml.NumLive(), 1u);
  EXPECT_EQ(ml.LiveAt(10).size(), 1u);
  EXPECT_EQ(ml.LiveAt(11).size(), 1u);
  EXPECT_EQ(ml.LiveAt(12).size(), 0u);
  EXPECT_EQ(ml.LiveWithEdge(0).size(), 1u);
  EXPECT_EQ(ml.LiveWithEdge(1).size(), 0u);
  EXPECT_TRUE(ml.HasLiveAt(10));
  EXPECT_FALSE(ml.HasLiveAt(12));
}

TEST(MatchListTest, DuplicateRejected) {
  MatchList ml;
  EXPECT_NE(AddMatch(ml, {0, 1}, {5, 6, 7}, 2), kNullMatch);
  EXPECT_EQ(AddMatch(ml, {0, 1}, {5, 6, 7}, 2), kNullMatch);
  EXPECT_EQ(ml.NumLive(), 1u);
  EXPECT_EQ(ml.TotalAdded(), 1u);
}

TEST(MatchListTest, SameEdgesDifferentMotifCoexist) {
  MatchList ml;
  EXPECT_NE(AddMatch(ml, {0, 1}, {5, 6, 7}, 2), kNullMatch);
  EXPECT_NE(AddMatch(ml, {0, 1}, {5, 6, 7}, 3), kNullMatch);
  EXPECT_EQ(ml.NumLive(), 2u);
}

TEST(MatchListTest, RemoveMatchesWithEdgeKillsAllContaining) {
  MatchList ml;
  MatchHandle m1 = AddMatch(ml, {0}, {5, 6}, 1);
  MatchHandle m2 = AddMatch(ml, {0, 1}, {5, 6, 7}, 2);
  MatchHandle m3 = AddMatch(ml, {1}, {6, 7}, 1);
  ml.RemoveMatchesWithEdge(0);
  EXPECT_FALSE(ml.IsLive(m1));
  EXPECT_FALSE(ml.IsLive(m2));
  EXPECT_TRUE(ml.IsLive(m3));
  EXPECT_EQ(ml.NumLive(), 1u);
  EXPECT_EQ(ml.LiveAt(5).size(), 0u);
  EXPECT_EQ(ml.LiveAt(6).size(), 1u);
  EXPECT_EQ(ml.LiveWithEdge(1).size(), 1u);
}

TEST(MatchListTest, DeadMatchCanBeReAdded) {
  MatchList ml;
  AddMatch(ml, {0}, {5, 6}, 1);
  ml.RemoveMatchesWithEdge(0);
  // Same content is allowed again once the original died.
  EXPECT_NE(AddMatch(ml, {0}, {5, 6}, 1), kNullMatch);
  EXPECT_EQ(ml.NumLive(), 1u);
}

TEST(MatchListTest, CompactPurgesDeadEntries) {
  MatchList ml;
  for (graph::EdgeId e = 0; e < 10; ++e) {
    AddMatch(ml, {e}, {e * 2, e * 2 + 1}, 1);
  }
  for (graph::EdgeId e = 0; e < 5; ++e) ml.RemoveMatchesWithEdge(e);
  ml.Compact();
  EXPECT_EQ(ml.NumLive(), 5u);
  for (graph::EdgeId e = 0; e < 5; ++e) {
    EXPECT_TRUE(ml.LiveAt(e * 2).empty());
    EXPECT_EQ(ml.IndexEntriesAt(e * 2), 0u);
  }
  for (graph::EdgeId e = 5; e < 10; ++e) {
    EXPECT_EQ(ml.LiveAt(e * 2).size(), 1u);
  }
}

TEST(MatchListTest, RemoveUnknownEdgeIsNoop) {
  MatchList ml;
  AddMatch(ml, {3}, {0, 1}, 1);
  ml.RemoveMatchesWithEdge(99);
  EXPECT_EQ(ml.NumLive(), 1u);
}

TEST(MatchListTest, IterationPrunesMostlyDeadLists) {
  // Vertex 5 accumulates 32 matches; killing 31 of them leaves dead handles
  // in the posting list, which the next iteration must prune in place —
  // memory stays bounded without waiting for a full Compact().
  MatchList ml;
  for (graph::EdgeId e = 0; e < 32; ++e) {
    ASSERT_NE(AddMatch(ml, {e}, {5, 100 + e}, 1), kNullMatch);
  }
  EXPECT_EQ(ml.IndexEntriesAt(5), 32u);
  for (graph::EdgeId e = 0; e < 31; ++e) ml.RemoveMatchesWithEdge(e);
  EXPECT_EQ(ml.IndexEntriesAt(5), 32u);  // dead handles still parked
  std::vector<MatchHandle> live;
  ml.CollectLiveAt(5, &live);
  ASSERT_EQ(live.size(), 1u);
  EXPECT_EQ(ml.match(live[0]).edges, (std::vector<graph::EdgeId>{31}));
  EXPECT_EQ(ml.IndexEntriesAt(5), 1u);  // pruned during iteration
}

TEST(MatchListTest, CollectAppendsInInsertionOrder) {
  MatchList ml;
  MatchHandle a = AddMatch(ml, {0}, {9}, 1);
  MatchHandle b = AddMatch(ml, {1}, {9}, 1);
  MatchHandle c = AddMatch(ml, {2}, {9}, 1);
  std::vector<MatchHandle> out;
  ml.CollectLiveAt(9, &out);
  EXPECT_EQ(out, (std::vector<MatchHandle>{a, b, c}));
}

TEST(MatchListTest, EdgeRingSurvivesSparseGrowingIds) {
  // Edge ids with large gaps (bypassed stream positions) force the edge ring
  // to grow and re-place its posting lists.
  MatchList ml;
  std::vector<MatchHandle> handles;
  for (graph::EdgeId i = 0; i < 50; ++i) {
    handles.push_back(AddMatch(ml, {i * 97}, {i, i + 1}, 1));
    ASSERT_NE(handles.back(), kNullMatch);
  }
  for (graph::EdgeId i = 0; i < 50; ++i) {
    ASSERT_EQ(ml.LiveWithEdge(i * 97).size(), 1u) << i;
  }
  // Retire in arbitrary order; the ring head chases the oldest active key.
  for (graph::EdgeId i : {7u, 0u, 49u, 23u}) {
    ml.RemoveMatchesWithEdge(i * 97);
    EXPECT_FALSE(ml.IsLive(handles[i]));
  }
  EXPECT_EQ(ml.NumLive(), 46u);
}

TEST(MatchListTest, EdgeRingGrowthStepAboveCapWithSpanBelowCapKeepsKeys) {
  // Regression: x4 ring growth overshooting the 2^18 cap while the key span
  // still fits must clamp, not spill (the spill new-head would underflow
  // and strand the newest key's posting list).
  MatchList ml;
  MatchHandle a = AddMatch(ml, {0}, {1, 2}, 1);
  MatchHandle b = AddMatch(ml, {100000}, {2, 3}, 1);  // ring at 131072
  MatchHandle c = AddMatch(ml, {200000}, {3, 4}, 1);  // x4 > cap, span fits
  ASSERT_NE(a, kNullMatch);
  ASSERT_NE(b, kNullMatch);
  ASSERT_NE(c, kNullMatch);
  EXPECT_EQ(ml.LiveWithEdge(0).size(), 1u);
  EXPECT_EQ(ml.LiveWithEdge(100000).size(), 1u);
  ASSERT_EQ(ml.LiveWithEdge(200000).size(), 1u);
  ml.RemoveMatchesWithEdge(200000);
  EXPECT_FALSE(ml.IsLive(c));
  EXPECT_EQ(ml.NumLive(), 2u);
}

TEST(MatchListTest, DrainedRingRestartDoesNotShadowSpilledKey) {
  // Regression: after a spill, retiring every ring key drains the ring;
  // a later match on the spilled key must extend its overflow list, not
  // create a duplicate ring slot that RemoveMatchesWithEdge would miss.
  MatchList ml;
  MatchHandle old_match = AddMatch(ml, {0}, {1, 2}, 1);
  MatchHandle far = AddMatch(ml, {400000}, {2, 3}, 1);  // spills key 0
  ASSERT_NE(old_match, kNullMatch);
  ASSERT_NE(far, kNullMatch);
  ml.RemoveMatchesWithEdge(400000);  // drains the ring (head == tail)
  MatchHandle again = AddMatch(ml, {0}, {1, 2}, 2);  // same spilled edge
  ASSERT_NE(again, kNullMatch);
  EXPECT_EQ(ml.LiveWithEdge(0).size(), 2u);
  ml.RemoveMatchesWithEdge(0);
  EXPECT_FALSE(ml.IsLive(old_match));
  EXPECT_FALSE(ml.IsLive(again));
  EXPECT_TRUE(ml.LiveWithEdge(0).empty());
  EXPECT_EQ(ml.NumLive(), 0u);
}

TEST(MatchListTest, EdgeRingSpillsLingeringKeysBeyondCap) {
  // The edge ring caps its growth (default 2^18 slots); a key left far
  // behind by the advancing id span spills to the overflow map and must
  // remain fully functional there.
  MatchList ml;
  MatchHandle old_match = AddMatch(ml, {0}, {1, 2}, 1);
  ASSERT_NE(old_match, kNullMatch);
  MatchHandle new_match = AddMatch(ml, {400000}, {2, 3}, 1);
  ASSERT_NE(new_match, kNullMatch);
  // Key 0 now lives behind the ring's coverage; lookups still find it.
  ASSERT_EQ(ml.LiveWithEdge(0).size(), 1u);
  EXPECT_EQ(ml.LiveWithEdge(0)[0], old_match);
  ASSERT_EQ(ml.LiveWithEdge(400000).size(), 1u);
  // A later match can still reference the spilled edge.
  MatchHandle joint = AddMatch(ml, {0, 400000}, {1, 2, 3}, 2);
  ASSERT_NE(joint, kNullMatch);
  EXPECT_EQ(ml.LiveWithEdge(0).size(), 2u);
  // Retiring the spilled edge kills every match containing it.
  ml.RemoveMatchesWithEdge(0);
  EXPECT_FALSE(ml.IsLive(old_match));
  EXPECT_FALSE(ml.IsLive(joint));
  EXPECT_TRUE(ml.IsLive(new_match));
  EXPECT_TRUE(ml.LiveWithEdge(0).empty());
  EXPECT_EQ(ml.NumLive(), 1u);
}

}  // namespace
}  // namespace motif
}  // namespace loom
