// A motif-matching sub-graph inside the sliding window (Sec. 3).
//
// The paper's matchList entries are pairs ⟨Ei, mi⟩: a set of window edges Ei
// whose induced sub-graph has the same signature as motif mi. We add the
// (derivable) vertex set because the allocator's bid function (Eq. 1) scores
// matches by vertex overlap with partitions.

#ifndef LOOM_MOTIF_MATCH_H_
#define LOOM_MOTIF_MATCH_H_

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include "graph/types.h"

namespace loom {
namespace motif {

/// One ⟨edge-set, motif⟩ pair. Immutable after construction except for the
/// liveness flag (matches die when any constituent edge is assigned to a
/// permanent partition and leaves the window).
struct Match {
  std::vector<graph::EdgeId> edges;      // sorted stream edge ids
  std::vector<graph::VertexId> vertices; // sorted vertex ids
  uint32_t node_id = 0;                  // TPSTry++ motif node
  bool alive = true;

  bool ContainsEdge(graph::EdgeId e) const {
    return std::binary_search(edges.begin(), edges.end(), e);
  }
  bool ContainsVertex(graph::VertexId v) const {
    return std::binary_search(vertices.begin(), vertices.end(), v);
  }

  /// Content key for de-duplication: hashes (node_id, edges). Two matches
  /// with the same edge set and motif are the same match.
  uint64_t Key() const {
    uint64_t h = 0xcbf29ce484222325ULL;
    auto mix = [&h](uint64_t x) {
      h ^= x;
      h *= 0x100000001b3ULL;
    };
    mix(node_id);
    for (graph::EdgeId e : edges) mix(e + 1);
    return h;
  }
};

using MatchPtr = std::shared_ptr<Match>;

}  // namespace motif
}  // namespace loom

#endif  // LOOM_MOTIF_MATCH_H_
