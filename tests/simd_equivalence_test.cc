// Backend-level differential proof for the util::simd dispatch: a finished
// partitioning must be BIT-IDENTICAL — assignment hash, edge-cut, imbalance
// — no matter which kernel level computed it. The kernel-level suite
// (simd_kernels_test.cc) proves each kernel equal on its own inputs; this
// suite proves the composition: whole backends (loom, loom-sharded, ldg —
// every consumer of the signature / equal-opportunism / LDG-tally kernels)
// driven end to end over real datasets under forced-scalar vs the CPU's
// best level, plus the engine-option spelling ("name:simd=scalar") that
// tools and benches use.
//
// A divergence here means a kernel is NOT bit-identical on some input the
// synthetic fuzz missed — quality silently depending on the host CPU — so
// this suite is the dispatch layer's real acceptance gate. It rides the
// ASan/UBSan/TSan ctest matrix like every differential suite.

#include <gtest/gtest.h>

#include <cctype>
#include <map>
#include <optional>
#include <string>
#include <tuple>
#include <vector>

#include "datasets/dataset_registry.h"
#include "engine/engine.h"
#include "stream/stream_order.h"
#include "test_util.h"
#include "util/simd.h"

namespace loom {
namespace core {
namespace {

/// Small-but-eviction-heavy scales (same reasoning as the sharded
/// equivalence suite: cluster allocation traffic is where the double
/// arithmetic lives).
double ScaleFor(datasets::DatasetId id) {
  return id == datasets::DatasetId::kProvGen ? 0.06 : 0.05;
}

using SimdParam = std::tuple<datasets::DatasetId, const char*>;

class SimdEquivalenceTest : public ::testing::TestWithParam<SimdParam> {};

TEST_P(SimdEquivalenceTest, BitIdenticalAcrossEveryDispatchLevel) {
  const auto [dataset, spec] = GetParam();
  const datasets::Dataset ds = datasets::MakeDataset(dataset, ScaleFor(dataset));
  const engine::EngineOptions options = test_util::OptionsFor(ds);
  const uint64_t seed = 0x51D;

  // ForEachSimdLevel visits scalar first (pinned by SimdDispatchTest), so
  // the first drive is the forced-scalar reference; it also restores the
  // pre-test level afterwards.
  std::optional<test_util::Quality> reference;
  test_util::ForEachSimdLevel([&](util::simd::Level level) {
    const test_util::Quality q = test_util::DriveSpec(
        spec, ds, options, stream::StreamOrder::kBreadthFirst, seed,
        /*batch_size=*/256);
    if (!reference.has_value()) {
      ASSERT_EQ(level, util::simd::Level::kScalar);
      reference = q;
      return;
    }
    EXPECT_EQ(q, *reference)
        << spec << " diverged from the scalar twin at dispatch level "
        << util::simd::LevelName(level);
  });
  EXPECT_TRUE(reference.has_value());
}

TEST_P(SimdEquivalenceTest, EngineOptionSpellingForcesTheLevel) {
  const auto [dataset, spec] = GetParam();
  const datasets::Dataset ds = datasets::MakeDataset(dataset, ScaleFor(dataset));
  const engine::EngineOptions options = test_util::OptionsFor(ds);
  const uint64_t seed = 0x51D;

  // The spec-string spelling every CLI/bench surface uses: force each
  // supported level through "name:simd=<level>" and compare.
  std::map<std::string, test_util::Quality> by_level;
  for (util::simd::Level level : util::simd::SupportedLevels()) {
    const std::string forced = std::string(spec) +
                               (std::string(spec).find(':') == std::string::npos
                                    ? ":simd="
                                    : ",simd=") +
                               util::simd::LevelName(level);
    by_level[util::simd::LevelName(level)] = test_util::DriveSpec(
        forced, ds, options, stream::StreamOrder::kBreadthFirst, seed,
        /*batch_size=*/512);
  }
  for (const auto& [name, quality] : by_level) {
    EXPECT_EQ(quality, by_level.at("scalar"))
        << spec << " with simd=" << name << " diverged from simd=scalar";
  }
}

INSTANTIATE_TEST_SUITE_P(
    BackendsAndDatasets, SimdEquivalenceTest,
    ::testing::Combine(::testing::Values(datasets::DatasetId::kMusicBrainz,
                                         datasets::DatasetId::kProvGen),
                       ::testing::Values("loom", "loom-sharded:shards=3",
                                         "ldg")),
    [](const ::testing::TestParamInfo<SimdParam>& info) {
      std::string name =
          datasets::MakeDataset(std::get<0>(info.param), 0.01).meta.name;
      std::string spec = std::get<1>(info.param);
      for (std::string* s : {&name, &spec}) {
        for (char& c : *s) {
          if (!isalnum(static_cast<unsigned char>(c))) c = '_';
        }
      }
      return name + "_" + spec;
    });

}  // namespace
}  // namespace core
}  // namespace loom
