#include "core/shard_sequencer.h"

#include <algorithm>
#include <cassert>

namespace loom {
namespace core {

ShardTeam::ShardTeam(uint32_t num_shards, size_t queue_depth,
                     size_t slice_edges, SliceFn fn)
    : queue_depth_(std::max<size_t>(queue_depth, 1)),
      slice_edges_(std::max<size_t>(slice_edges, 1)),
      fn_(std::move(fn)) {
  assert(num_shards >= 1);
  workers_.reserve(num_shards);
  for (uint32_t s = 0; s < num_shards; ++s) {
    workers_.push_back(std::make_unique<Worker>());
  }
  // Spawn only after the vector is fully built: a worker that wakes early
  // must never observe workers_ mid-construction.
  for (uint32_t s = 0; s < num_shards; ++s) {
    workers_[s]->thread = std::thread([this, s] { WorkerLoop(s); });
  }
}

ShardTeam::~ShardTeam() {
  for (auto& w : workers_) {
    {
      std::lock_guard<std::mutex> lock(w->mu);
      w->stop = true;
    }
    w->work_ready.notify_one();
  }
  for (auto& w : workers_) w->thread.join();
}

void ShardTeam::WorkerLoop(uint32_t shard) {
  Worker& w = *workers_[shard];
  for (;;) {
    Slice slice;
    {
      std::unique_lock<std::mutex> lock(w.mu);
      w.work_ready.wait(lock, [&] { return w.stop || !w.queue.empty(); });
      if (w.queue.empty()) return;  // stop requested and fully drained
      slice = w.queue.front();
      w.queue.pop_front();
    }
    // Process outside the lock: slice work only touches shard-owned state,
    // and the producer may keep posting into the freed slot meanwhile.
    fn_(shard, slice);
    {
      std::lock_guard<std::mutex> lock(w.mu);
      ++w.done;
    }
    w.drained.notify_one();
  }
}

void ShardTeam::Post(Worker& w, const Slice& slice) {
  std::unique_lock<std::mutex> lock(w.mu);
  if (w.queue.size() >= queue_depth_) {
    ++stats_.queue_full_stalls;
    w.drained.wait(lock, [&] { return w.queue.size() < queue_depth_; });
  }
  w.queue.push_back(slice);
  ++w.posted;
  stats_.max_queue_depth = std::max<uint64_t>(stats_.max_queue_depth,
                                              w.queue.size());
  lock.unlock();
  w.work_ready.notify_one();
}

void ShardTeam::Dispatch(std::span<const stream::StreamEdge> batch) {
  ++stats_.batches_dispatched;
  for (size_t base = 0; base < batch.size(); base += slice_edges_) {
    const size_t n = std::min(slice_edges_, batch.size() - base);
    const Slice slice{batch.subspan(base, n), base};
    for (auto& w : workers_) Post(*w, slice);
    stats_.slices_posted += workers_.size();
  }
  // Sequencing barrier: wait for every shard to drain the whole batch.
  for (auto& w : workers_) {
    std::unique_lock<std::mutex> lock(w->mu);
    if (w->done != w->posted) {
      ++stats_.barrier_waits;
      w->drained.wait(lock, [&] { return w->done == w->posted; });
    }
  }
}

}  // namespace core
}  // namespace loom
