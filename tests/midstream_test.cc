#include "eval/midstream.h"

#include <gtest/gtest.h>

#include "datasets/dataset_registry.h"
#include "stream/stream_order.h"

namespace loom {
namespace eval {
namespace {

engine::EngineOptions OptionsFor(const datasets::Dataset& ds, size_t window) {
  engine::EngineOptions options;
  options.k = 4;
  options.expected_vertices = ds.NumVertices();
  options.expected_edges = ds.NumEdges();
  options.window_size = window;
  return options;
}

TEST(MidstreamTest, ProducesRequestedCheckpoints) {
  auto ds = datasets::MakeDataset(datasets::DatasetId::kProvGen, 0.05);
  auto es = stream::MakeStream(ds.graph, stream::StreamOrder::kBreadthFirst);
  MidstreamConfig cfg;
  cfg.num_checkpoints = 3;
  MidstreamResult r = RunLoomMidstream(ds, es, OptionsFor(ds, 256), cfg);
  ASSERT_GE(r.checkpoints.size(), 3u);
  // Checkpoints are ordered and the final one covers the whole stream.
  for (size_t i = 1; i < r.checkpoints.size(); ++i) {
    EXPECT_GT(r.checkpoints[i].edges_streamed,
              r.checkpoints[i - 1].edges_streamed);
  }
  EXPECT_EQ(r.checkpoints.back().edges_streamed, es.size());
}

TEST(MidstreamTest, PtempShareGrowsWithWindow) {
  auto ds = datasets::MakeDataset(datasets::DatasetId::kProvGen, 0.05);
  auto es = stream::MakeStream(ds.graph, stream::StreamOrder::kBreadthFirst);
  auto share = [&](size_t window) {
    MidstreamResult r = RunLoomMidstream(ds, es, OptionsFor(ds, window));
    double total = 0;
    for (const auto& cp : r.checkpoints) total += cp.ptemp_share;
    return total / static_cast<double>(r.checkpoints.size());
  };
  EXPECT_LT(share(64), share(100000));
}

TEST(MidstreamTest, FinalCheckpointHasNoPtempAfterSmallWindow) {
  auto ds = datasets::MakeDataset(datasets::DatasetId::kProvGen, 0.05);
  auto es = stream::MakeStream(ds.graph, stream::StreamOrder::kBreadthFirst);
  MidstreamConfig cfg;
  cfg.num_checkpoints = 2;
  MidstreamResult r = RunLoomMidstream(ds, es, OptionsFor(ds, 32), cfg);
  // With a 32-edge window, at most a sliver of vertices sit in Ptemp at any
  // checkpoint.
  for (const auto& cp : r.checkpoints) {
    EXPECT_LT(cp.ptemp_share, 0.10);
  }
}

TEST(MidstreamTest, MeanMatchesCheckpoints) {
  auto ds = datasets::MakeDataset(datasets::DatasetId::kProvGen, 0.05);
  auto es = stream::MakeStream(ds.graph, stream::StreamOrder::kBreadthFirst);
  MidstreamResult r = RunLoomMidstream(ds, es, OptionsFor(ds, 256));
  double total = 0;
  for (const auto& cp : r.checkpoints) total += cp.weighted_ipt;
  EXPECT_NEAR(r.mean_weighted_ipt,
              total / static_cast<double>(r.checkpoints.size()), 1e-9);
}

TEST(MidstreamTest, EmptyStreamYieldsEmptyResult) {
  auto ds = datasets::MakeFigure1Dataset();
  stream::EdgeStream empty;
  MidstreamResult r = RunLoomMidstream(ds, empty, OptionsFor(ds, 8));
  EXPECT_TRUE(r.checkpoints.empty());
  EXPECT_EQ(r.mean_weighted_ipt, 0.0);
}

}  // namespace
}  // namespace eval
}  // namespace loom
