#include "motif/match_pool.h"

#include <gtest/gtest.h>

namespace loom {
namespace motif {
namespace {

TEST(MatchPoolTest, AllocateGivesClearedLiveRecord) {
  MatchPool pool;
  MatchHandle h = pool.Allocate();
  EXPECT_TRUE(pool.IsLive(h));
  EXPECT_EQ(pool.NumLive(), 1u);
  Match& m = pool.Get(h);
  EXPECT_TRUE(m.edges.empty());
  EXPECT_TRUE(m.vertices.empty());
  EXPECT_TRUE(m.degrees.empty());
  EXPECT_EQ(m.node_id, 0u);
}

TEST(MatchPoolTest, ReleaseMakesHandleStale) {
  MatchPool pool;
  MatchHandle h = pool.Allocate();
  pool.Get(h).node_id = 7;
  pool.Release(h);
  EXPECT_FALSE(pool.IsLive(h));
  EXPECT_EQ(pool.Find(h), nullptr);
  EXPECT_EQ(pool.NumLive(), 0u);
}

TEST(MatchPoolTest, RecycledSlotGetsNewGeneration) {
  MatchPool pool;
  MatchHandle h1 = pool.Allocate();
  pool.Release(h1);
  MatchHandle h2 = pool.Allocate();
  // Same slot, different generation: the stale handle stays stale.
  EXPECT_EQ(MatchIndexOf(h1), MatchIndexOf(h2));
  EXPECT_NE(MatchGenerationOf(h1), MatchGenerationOf(h2));
  EXPECT_FALSE(pool.IsLive(h1));
  EXPECT_TRUE(pool.IsLive(h2));
  EXPECT_EQ(pool.reused_allocations(), 1u);
  EXPECT_EQ(pool.fresh_allocations(), 1u);
}

TEST(MatchPoolTest, RecyclingKeepsVectorCapacity) {
  MatchPool pool;
  MatchHandle h1 = pool.Allocate();
  Match& m1 = pool.Get(h1);
  for (graph::EdgeId e = 0; e < 100; ++e) m1.edges.push_back(e);
  const size_t cap = m1.edges.capacity();
  pool.Release(h1);
  MatchHandle h2 = pool.Allocate();
  ASSERT_EQ(MatchIndexOf(h1), MatchIndexOf(h2));
  Match& m2 = pool.Get(h2);
  EXPECT_TRUE(m2.edges.empty());
  EXPECT_GE(m2.edges.capacity(), cap);  // the slab kept the buffer
}

TEST(MatchPoolTest, ManyAllocationsSpanChunks) {
  MatchPool pool;
  std::vector<MatchHandle> handles;
  for (uint32_t i = 0; i < 2000; ++i) {
    MatchHandle h = pool.Allocate();
    pool.Get(h).node_id = i;
    handles.push_back(h);
  }
  EXPECT_EQ(pool.NumLive(), 2000u);
  // Slabs never move: every record is still addressable and intact.
  for (uint32_t i = 0; i < 2000; ++i) {
    ASSERT_TRUE(pool.IsLive(handles[i]));
    EXPECT_EQ(pool.Get(handles[i]).node_id, i);
  }
  for (MatchHandle h : handles) pool.Release(h);
  EXPECT_EQ(pool.NumLive(), 0u);
}

TEST(MatchPoolTest, StaleHandleSurvivesManyRecycles) {
  MatchPool pool;
  MatchHandle first = pool.Allocate();
  pool.Release(first);
  // Recycle the same slot repeatedly; the original handle must never read
  // as live again (generations only move forward, and a slot that exhausts
  // its generation space is retired, not wrapped).
  MatchHandle h = first;
  for (int i = 0; i < 500; ++i) {
    h = pool.Allocate();
    EXPECT_FALSE(pool.IsLive(first));
    pool.Release(h);
  }
  EXPECT_FALSE(pool.IsLive(first));
  EXPECT_FALSE(pool.IsLive(h));
}

// ------------------------------------------------ Match record invariants

TEST(MatchRecordTest, DegreeTrackingRoundTrip) {
  Match m;
  m.AddEdge(10, 1, 2);
  m.AddEdge(11, 2, 3);
  EXPECT_EQ(m.edges, (std::vector<graph::EdgeId>{10, 11}));
  EXPECT_EQ(m.vertices, (std::vector<graph::VertexId>{1, 2, 3}));
  EXPECT_EQ(m.DegreeOf(1), 1u);
  EXPECT_EQ(m.DegreeOf(2), 2u);
  EXPECT_EQ(m.DegreeOf(3), 1u);
  EXPECT_EQ(m.DegreeOf(4), 0u);
  m.RemoveEdge(11, 2, 3);
  EXPECT_EQ(m.edges, (std::vector<graph::EdgeId>{10}));
  EXPECT_EQ(m.vertices, (std::vector<graph::VertexId>{1, 2}));
  EXPECT_EQ(m.DegreeOf(2), 1u);
  EXPECT_EQ(m.DegreeOf(3), 0u);
}

TEST(MatchRecordTest, CopyFromReplacesContent) {
  Match a;
  a.AddEdge(1, 5, 6);
  a.node_id = 3;
  Match b;
  b.AddEdge(2, 7, 8);
  b.CopyFrom(a);
  EXPECT_EQ(b.edges, a.edges);
  EXPECT_EQ(b.vertices, a.vertices);
  EXPECT_EQ(b.degrees, a.degrees);
  EXPECT_EQ(b.node_id, 3u);
}

}  // namespace
}  // namespace motif
}  // namespace loom
