// Binomial tail probabilities used by the paper's Fig. 4 collision analysis
// (Sec. 2.3): P(X <= c) for X ~ Binomial(n, q), evaluated in log space so the
// result stays exact-ish for n up to a few hundred without overflow.

#ifndef LOOM_UTIL_BINOMIAL_H_
#define LOOM_UTIL_BINOMIAL_H_

#include <cstdint>

namespace loom {
namespace util {

/// log(n!) via lgamma.
double LogFactorial(uint64_t n);

/// log C(n, k). Requires k <= n.
double LogBinomialCoefficient(uint64_t n, uint64_t k);

/// P(X == k) for X ~ Binomial(n, p). p in [0,1].
double BinomialPmf(uint64_t n, uint64_t k, double p);

/// P(X <= k) for X ~ Binomial(n, p): the cumulative probability the paper
/// sums over "acceptable outcomes" (Sec. 2.3).
double BinomialCdf(uint64_t n, uint64_t k, double p);

}  // namespace util
}  // namespace loom

#endif  // LOOM_UTIL_BINOMIAL_H_
