#include "io/edge_stream_io.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <thread>

namespace loom {
namespace io {

namespace {

// Binary layout (little-endian, the only platform this library targets):
//   [0..5]   magic "LOOMES"
//   [6..7]   uint16 version (kBinaryVersion)
//   [8..15]  uint64 edge_count     (back-patched on Close)
//   [16..23] uint64 vertex_count
//   [24..27] uint32 label_count
//   [28..35] uint64 payload checksum (FNV-1a over edge records, patched)
// then label_count x { uint16 len, bytes }, then edge_count x 12-byte
// records { u32 u, u32 v, u16 label_u, u16 label_v }.
constexpr char kMagic[6] = {'L', 'O', 'O', 'M', 'E', 'S'};
constexpr uint16_t kBinaryVersion = 1;
constexpr size_t kEdgeCountOffset = 8;
constexpr size_t kChecksumOffset = 28;
constexpr size_t kRecordBytes = 12;

constexpr char kTextMagic[] = "# loom-edge-stream v1";

constexpr uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr uint64_t kFnvPrime = 0x100000001b3ULL;

uint64_t FnvMix(uint64_t h, const char* bytes, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    h ^= static_cast<unsigned char>(bytes[i]);
    h *= kFnvPrime;
  }
  return h;
}

void PackRecord(const stream::StreamEdge& e, char* out) {
  std::memcpy(out, &e.u, 4);
  std::memcpy(out + 4, &e.v, 4);
  std::memcpy(out + 8, &e.label_u, 2);
  std::memcpy(out + 10, &e.label_v, 2);
}

template <typename T>
void WriteRaw(std::ostream& os, T value) {
  os.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
bool ReadRaw(std::istream& is, T* value) {
  is.read(reinterpret_cast<char*>(value), sizeof(T));
  return static_cast<size_t>(is.gcount()) == sizeof(T);
}

[[noreturn]] void Fail(const std::string& path, const std::string& detail) {
  throw std::runtime_error("edge stream '" + path + "': " + detail);
}

/// Thrown (follow mode only) where ReadHeader hits a condition that a
/// still-growing file explains — truncated fields, a line without its
/// newline yet — so the constructor can poll and re-parse from the top.
/// Definitive errors (bad magic, version skew, malformed complete lines)
/// keep throwing std::runtime_error straight through.
struct RetryableHeader {};

}  // namespace

bool ParseStreamFormat(std::string_view name, StreamFormat* out) {
  if (name == "binary") {
    *out = StreamFormat::kBinary;
    return true;
  }
  if (name == "text") {
    *out = StreamFormat::kText;
    return true;
  }
  return false;
}

std::string ToString(StreamFormat format) {
  return format == StreamFormat::kBinary ? "binary" : "text";
}

// ----------------------------------------------------------------- writer

EdgeStreamWriter::EdgeStreamWriter(const std::string& path,
                                   const graph::LabelRegistry& registry,
                                   uint64_t vertex_count, StreamFormat format)
    : path_(path),
      out_(path, std::ios::binary | std::ios::trunc),
      format_(format),
      checksum_(kFnvOffset) {
  if (!out_) Fail(path_, "cannot open for writing");
  if (format_ == StreamFormat::kBinary) {
    out_.write(kMagic, sizeof(kMagic));
    WriteRaw(out_, kBinaryVersion);
    WriteRaw(out_, uint64_t{0});  // edge_count, patched on Close
    WriteRaw(out_, vertex_count);
    WriteRaw(out_, static_cast<uint32_t>(registry.size()));
    WriteRaw(out_, uint64_t{0});  // checksum, patched on Close
    for (const std::string& name : registry.names()) {
      if (name.size() > std::numeric_limits<uint16_t>::max()) {
        Fail(path_, "label name too long: '" + name.substr(0, 32) + "...'");
      }
      WriteRaw(out_, static_cast<uint16_t>(name.size()));
      out_.write(name.data(), static_cast<std::streamsize>(name.size()));
    }
  } else {
    // The final edge count is unknown until Close; reserve a fixed-width
    // (20-digit, zero-padded) field so it can be back-patched in place.
    out_ << kTextMagic << "\n"
         << "N " << vertex_count << " ";
    count_offset_ = out_.tellp();
    out_ << std::string(20, '0') << "\n";
    for (const std::string& name : registry.names()) out_ << "L " << name << "\n";
  }
  if (!out_) Fail(path_, "write failed while emitting the header");
}

EdgeStreamWriter::~EdgeStreamWriter() {
  try {
    Close();
  } catch (...) {
    // Destructors must not throw; an explicit Close() reports the error.
  }
}

void EdgeStreamWriter::Append(const stream::StreamEdge& e) {
  AppendBatch(std::span<const stream::StreamEdge>(&e, 1));
}

void EdgeStreamWriter::AppendBatch(std::span<const stream::StreamEdge> batch) {
  if (closed_) Fail(path_, "Append after Close");
  if (format_ == StreamFormat::kBinary) {
    char record[kRecordBytes];
    for (const stream::StreamEdge& e : batch) {
      PackRecord(e, record);
      checksum_ = FnvMix(checksum_, record, kRecordBytes);
      out_.write(record, kRecordBytes);
    }
  } else {
    for (const stream::StreamEdge& e : batch) {
      out_ << "E " << e.u << " " << e.v << " " << e.label_u << " " << e.label_v
           << "\n";
    }
  }
  edges_written_ += batch.size();
  if (!out_) Fail(path_, "write failed while appending edges");
}

void EdgeStreamWriter::Flush() {
  if (closed_) return;
  out_.flush();
  if (!out_) Fail(path_, "flush failed");
}

void EdgeStreamWriter::Close() {
  if (closed_) return;
  closed_ = true;
  if (format_ == StreamFormat::kBinary) {
    out_.seekp(static_cast<std::streamoff>(kEdgeCountOffset));
    WriteRaw(out_, edges_written_);
    out_.seekp(static_cast<std::streamoff>(kChecksumOffset));
    WriteRaw(out_, checksum_);
  } else {
    // Patch the fixed-width edge count inside the N line.
    std::ostringstream count;
    count.width(20);
    count.fill('0');
    count << edges_written_;
    out_.seekp(count_offset_);
    out_ << count.str();
  }
  out_.flush();
  if (!out_) Fail(path_, "flush failed on Close");
  out_.close();
}

uint64_t WriteEdgeStream(const std::string& path,
                         const graph::LabelRegistry& registry,
                         uint64_t vertex_count, engine::EdgeSource* source,
                         StreamFormat format) {
  EdgeStreamWriter writer(path, registry, vertex_count, format);
  std::vector<stream::StreamEdge> batch(4096);
  for (;;) {
    const size_t n = source->NextBatch(batch);
    if (n == 0) break;
    writer.AppendBatch(std::span<const stream::StreamEdge>(batch.data(), n));
  }
  writer.Close();
  return writer.edges_written();
}

// ----------------------------------------------------------------- reader

FileEdgeSource::FileEdgeSource(const std::string& path)
    : FileEdgeSource(path, FollowOptions{}) {}

FileEdgeSource::FileEdgeSource(const std::string& path,
                               const FollowOptions& follow)
    : path_(path),
      in_(path, std::ios::binary),
      follow_(follow),
      checksum_(kFnvOffset) {
  if (!follow_.follow) {
    if (!in_) Fail(path_, "cannot open for reading");
    ReadHeader();
    return;
  }
  // Follow mode: the producer may still be creating the file or writing its
  // header — poll until a complete header (text: plus the first edge line,
  // the only unambiguous end-of-header marker) is on disk. Definitive
  // errors propagate immediately.
  for (;;) {
    if (in_.is_open() && in_) {
      try {
        ReadHeader();
        break;
      } catch (const RetryableHeader&) {
        // Not enough bytes yet — fall through to poll and re-parse.
      }
    }
    if (Stopped()) {
      Fail(path_, "stopped while waiting for a complete header (follow)");
    }
    Poll();
    info_ = EdgeStreamInfo{};
    in_.close();
    in_.open(path_, std::ios::binary);  // a successful open clears failbits
  }
  verify_checksum_ = false;  // the header's checksum is patched on Close only
}

void FileEdgeSource::ReadHeader() {
  char magic[6];
  in_.read(magic, sizeof(magic));
  if (follow_.follow && in_.gcount() < 6 &&
      std::memcmp(magic, kMagic, static_cast<size_t>(in_.gcount())) == 0) {
    // Empty file, or a binary header's first bytes still landing. (A text
    // stream's magic starts '#', so any strict kMagic prefix rules it out.)
    throw RetryableHeader{};
  }
  if (in_.gcount() == 6 && std::memcmp(magic, kMagic, 6) == 0) {
    info_.format = StreamFormat::kBinary;
    uint16_t version = 0;
    uint32_t label_count = 0;
    uint64_t expected_checksum = 0;
    if (!ReadRaw(in_, &version) || !ReadRaw(in_, &info_.edge_count) ||
        !ReadRaw(in_, &info_.vertex_count) || !ReadRaw(in_, &label_count) ||
        !ReadRaw(in_, &expected_checksum)) {
      if (follow_.follow) throw RetryableHeader{};
      Fail(path_, "truncated binary header (file shorter than 36 bytes)");
    }
    if (version != kBinaryVersion) {
      Fail(path_, "unsupported format version " + std::to_string(version) +
                      " (this reader speaks v" +
                      std::to_string(kBinaryVersion) + ")");
    }
    expected_checksum_ = expected_checksum;
    info_.labels.reserve(label_count);
    for (uint32_t i = 0; i < label_count; ++i) {
      uint16_t len = 0;
      if (!ReadRaw(in_, &len)) {
        if (follow_.follow) throw RetryableHeader{};
        Fail(path_, "truncated label table");
      }
      std::string name(len, '\0');
      in_.read(name.data(), len);
      if (static_cast<size_t>(in_.gcount()) != len) {
        if (follow_.follow) throw RetryableHeader{};
        Fail(path_, "truncated label table");
      }
      info_.labels.push_back(std::move(name));
    }
  } else {
    // Text: the whole first line must be the magic comment (an exact
    // match, so "... v10" is an unsupported version, not silently v1).
    in_.clear();
    in_.seekg(0);
    std::string line;
    if (!std::getline(in_, line)) {
      if (follow_.follow) throw RetryableHeader{};
      Fail(path_,
           "bad magic: neither a LOOMES binary stream nor a '" +
               std::string(kTextMagic) + "' text stream");
    }
    // A line that hit EOF has no terminating newline yet — the producer may
    // still be mid-write, so nothing on it is definitive.
    if (follow_.follow && in_.eof()) throw RetryableHeader{};
    if (line != kTextMagic) {
      if (line.rfind("# loom-edge-stream ", 0) == 0) {
        Fail(path_, "unsupported format version '" +
                        line.substr(std::strlen("# loom-edge-stream ")) +
                        "' (this reader speaks v1)");
      }
      Fail(path_,
           "bad magic: neither a LOOMES binary stream nor a '" +
               std::string(kTextMagic) + "' text stream");
    }
    info_.format = StreamFormat::kText;
    bool saw_counts = false;
    for (std::streampos before = in_.tellg(); std::getline(in_, line);
         before = in_.tellg()) {
      if (follow_.follow && in_.eof()) throw RetryableHeader{};
      if (line.empty() || line[0] == '#') continue;
      if (line[0] == 'N') {
        std::istringstream ls(line.substr(1));
        if (!(ls >> info_.vertex_count >> info_.edge_count)) {
          Fail(path_, "malformed counts line: '" + line + "'");
        }
        saw_counts = true;
      } else if (line[0] == 'L') {
        if (line.size() < 3 || line[1] != ' ') {
          Fail(path_, "malformed label line: '" + line + "'");
        }
        info_.labels.push_back(line.substr(2));
      } else if (line[0] == 'E') {
        // First edge record: the header is over.
        in_.clear();
        in_.seekg(before);
        break;
      } else {
        Fail(path_, "unexpected line in header: '" + line + "'");
      }
    }
    if (!saw_counts) {
      if (follow_.follow) throw RetryableHeader{};
      Fail(path_, "missing 'N <vertices> <edges>' line");
    }
    if (!in_) {
      // The header loop ran to EOF without meeting an 'E' line. In follow
      // mode that E line is the only unambiguous end-of-header marker (more
      // L lines may still be coming), so keep waiting; offline it's legal —
      // a zero-edge stream — so clear the fail state and let tellg() (and a
      // later Reset) land on end-of-file instead of -1.
      if (follow_.follow) throw RetryableHeader{};
      in_.clear();
      in_.seekg(0, std::ios::end);
    }
  }
  data_start_ = in_.tellg();
}

bool FileEdgeSource::Stopped() const {
  return follow_.stop != nullptr &&
         follow_.stop->load(std::memory_order_acquire);
}

void FileEdgeSource::Poll() const {
  std::this_thread::sleep_for(
      std::chrono::milliseconds(std::max(1, follow_.poll_interval_ms)));
}

size_t FileEdgeSource::ReadFollow(std::span<stream::StreamEdge> out) {
  if (info_.format == StreamFormat::kBinary) {
    buffer_.resize(out.size() * kRecordBytes);
    for (;;) {
      in_.clear();
      in_.read(buffer_.data(), static_cast<std::streamsize>(buffer_.size()));
      const size_t complete = static_cast<size_t>(in_.gcount()) / kRecordBytes;
      // Only whole records count; park the cursor right after the last
      // complete one so a partially flushed record is re-read intact once
      // its tail lands.
      in_.clear();
      in_.seekg(data_start_ +
                static_cast<std::streamoff>((pos_ + complete) * kRecordBytes));
      if (!in_) Fail(path_, "seek failed while tailing");
      if (complete > 0) {
        for (size_t i = 0; i < complete; ++i) {
          const char* rec = buffer_.data() + i * kRecordBytes;
          stream::StreamEdge& e = out[i];
          std::memcpy(&e.u, rec, 4);
          std::memcpy(&e.v, rec + 4, 4);
          std::memcpy(&e.label_u, rec + 8, 2);
          std::memcpy(&e.label_v, rec + 10, 2);
          e.id = static_cast<graph::EdgeId>(pos_ + i);
        }
        return complete;
      }
      if (Stopped()) return 0;
      Poll();
    }
  }
  // Text: only a '\n'-terminated line is complete; getline at EOF hands back
  // the unterminated tail, so rewind and re-read it on the next poll.
  size_t produced = 0;
  std::string line;
  for (;;) {
    in_.clear();
    const std::streampos before = in_.tellg();
    if (!std::getline(in_, line) || in_.eof()) {
      in_.clear();
      in_.seekg(before);
      if (produced > 0) return produced;
      if (Stopped()) return 0;
      Poll();
      continue;
    }
    if (line.empty() || line[0] == '#') continue;
    stream::StreamEdge& e = out[produced];
    unsigned long long u = 0, v = 0, lu = 0, lv = 0;
    std::istringstream ls(line);
    char tag = 0;
    if (!(ls >> tag >> u >> v >> lu >> lv) || tag != 'E') {
      Fail(path_, "malformed edge line: '" + line + "'");
    }
    e.u = static_cast<graph::VertexId>(u);
    e.v = static_cast<graph::VertexId>(v);
    e.label_u = static_cast<graph::LabelId>(lu);
    e.label_v = static_cast<graph::LabelId>(lv);
    e.id = static_cast<graph::EdgeId>(pos_ + produced);
    ++produced;
    if (produced == out.size()) return produced;
  }
}

size_t FileEdgeSource::NextBatch(std::span<stream::StreamEdge> out) {
  if (exhausted_ || out.empty()) return 0;
  const uint64_t remaining =
      follow_.follow ? std::numeric_limits<uint64_t>::max()
                     : info_.edge_count - pos_;
  const size_t want =
      static_cast<size_t>(std::min<uint64_t>(out.size(), remaining));
  size_t produced = 0;

  if (follow_.follow) {
    produced = ReadFollow(out);
    if (produced == 0) {
      // Stop signal observed mid-tail: the live stream is over for us.
      exhausted_ = true;
      return 0;
    }
  } else if (info_.format == StreamFormat::kBinary) {
    buffer_.resize(want * kRecordBytes);
    in_.read(buffer_.data(), static_cast<std::streamsize>(buffer_.size()));
    const size_t got = static_cast<size_t>(in_.gcount());
    if (got != buffer_.size()) {
      Fail(path_, "truncated: header declares " +
                      std::to_string(info_.edge_count) + " edges but the " +
                      "file ends after " +
                      std::to_string(pos_ + got / kRecordBytes));
    }
    for (size_t i = 0; i < want; ++i) {
      const char* rec = buffer_.data() + i * kRecordBytes;
      stream::StreamEdge& e = out[i];
      std::memcpy(&e.u, rec, 4);
      std::memcpy(&e.v, rec + 4, 4);
      std::memcpy(&e.label_u, rec + 8, 2);
      std::memcpy(&e.label_v, rec + 10, 2);
      e.id = static_cast<graph::EdgeId>(pos_ + i);
    }
    checksum_ = FnvMix(checksum_, buffer_.data(), buffer_.size());
    produced = want;
  } else {
    std::string line;
    while (produced < want && std::getline(in_, line)) {
      if (line.empty() || line[0] == '#') continue;
      stream::StreamEdge& e = out[produced];
      unsigned long long u = 0, v = 0, lu = 0, lv = 0;
      std::istringstream ls(line);
      char tag = 0;
      if (!(ls >> tag >> u >> v >> lu >> lv) || tag != 'E') {
        Fail(path_, "malformed edge line: '" + line + "'");
      }
      e.u = static_cast<graph::VertexId>(u);
      e.v = static_cast<graph::VertexId>(v);
      e.label_u = static_cast<graph::LabelId>(lu);
      e.label_v = static_cast<graph::LabelId>(lv);
      e.id = static_cast<graph::EdgeId>(pos_ + produced);
      ++produced;
    }
    if (produced < want) {
      Fail(path_, "truncated: header declares " +
                      std::to_string(info_.edge_count) +
                      " edges but the file ends after " +
                      std::to_string(pos_ + produced));
    }
  }

  // Per-record sanity against the header's declared spaces.
  for (size_t i = 0; i < produced; ++i) {
    const stream::StreamEdge& e = out[i];
    if (e.u >= info_.vertex_count || e.v >= info_.vertex_count) {
      Fail(path_, "edge " + std::to_string(pos_ + i) + " (" +
                      std::to_string(e.u) + "," + std::to_string(e.v) +
                      ") exceeds the declared vertex count " +
                      std::to_string(info_.vertex_count));
    }
    if (e.label_u >= info_.labels.size() || e.label_v >= info_.labels.size()) {
      Fail(path_, "edge " + std::to_string(pos_ + i) +
                      " references a label id outside the table (" +
                      std::to_string(info_.labels.size()) + " labels)");
    }
    // Graphs in this library are self-loop-free (graph/types.h); reject at
    // the ingest boundary like every other producer (generators drop them,
    // serve's protocol refuses them) instead of letting one slip into the
    // backends, where it would have been double-counted pre-canonicalisation.
    if (e.u == e.v) {
      Fail(path_, "edge " + std::to_string(pos_ + i) + " is a self-loop (" +
                      std::to_string(e.u) + "," + std::to_string(e.v) +
                      "); the stream format forbids self-loops");
    }
  }

  pos_ += produced;
  if (!follow_.follow && pos_ == info_.edge_count) {
    exhausted_ = true;
    if (info_.format == StreamFormat::kBinary && verify_checksum_ &&
        checksum_ != expected_checksum_) {
      Fail(path_, "payload checksum mismatch (file corrupt, or written "
                  "without Close())");
    }
  }
  return produced;
}

void FileEdgeSource::Reset() {
  in_.clear();
  in_.seekg(data_start_);
  if (!in_) Fail(path_, "seek failed on Reset");
  pos_ = 0;
  checksum_ = kFnvOffset;
  verify_checksum_ = !follow_.follow;
  exhausted_ = false;
}

void FileEdgeSource::SkipTo(uint64_t stream_id) {
  // A live file's declared count is stale, so the bound only means
  // something offline; in follow mode any cursor is reachable — we wait.
  if (!follow_.follow && stream_id > info_.edge_count) {
    Fail(path_, "cannot skip to edge " + std::to_string(stream_id) +
                    ": the stream declares only " +
                    std::to_string(info_.edge_count) + " edges");
  }
  Reset();
  if (stream_id == 0) return;
  if (info_.format == StreamFormat::kBinary) {
    in_.seekg(data_start_ +
              static_cast<std::streamoff>(stream_id * kRecordBytes));
    if (!in_) Fail(path_, "seek failed on SkipTo");
  } else {
    // Text has no fixed record width: walk forward, counting edge lines.
    // Follow mode counts only complete lines and polls until the cursor's
    // worth of edges is on disk.
    std::string line;
    uint64_t skipped = 0;
    while (skipped < stream_id) {
      in_.clear();
      const std::streampos before = in_.tellg();
      if (!std::getline(in_, line) || (follow_.follow && in_.eof())) {
        if (!follow_.follow) {
          Fail(path_, "truncated: header declares " +
                          std::to_string(info_.edge_count) +
                          " edges but the file ends after " +
                          std::to_string(skipped));
        }
        in_.clear();
        in_.seekg(before);
        if (Stopped()) {
          Fail(path_, "stopped while skipping to the resume cursor (follow)");
        }
        Poll();
        continue;
      }
      if (line.empty() || line[0] == '#') continue;
      ++skipped;
    }
  }
  pos_ = stream_id;
  // The running checksum covers the payload from edge 0; a resumed reader
  // never sees the skipped prefix, so the end-of-stream check must not fire.
  verify_checksum_ = false;
  exhausted_ = !follow_.follow && pos_ == info_.edge_count;
}

bool FileEdgeSource::InternLabels(graph::LabelRegistry* registry,
                                  std::string* error) const {
  // Validate the whole table first so a failed check leaves `registry`
  // untouched (no partially interned, id-shifting label pollution), then
  // intern in a second pass.
  size_t simulated_size = registry->size();
  for (size_t i = 0; i < info_.labels.size(); ++i) {
    const graph::LabelId existing = registry->Find(info_.labels[i]);
    const graph::LabelId would_be =
        existing != graph::kInvalidLabel
            ? existing
            : static_cast<graph::LabelId>(simulated_size++);
    if (would_be != static_cast<graph::LabelId>(i)) {
      if (error != nullptr) {
        *error = "edge stream '" + path_ + "': label '" + info_.labels[i] +
                 "' is id " + std::to_string(i) + " in the file but id " +
                 std::to_string(would_be) +
                 " in the target registry — incompatible label spaces";
      }
      return false;
    }
  }
  for (const std::string& name : info_.labels) registry->Intern(name);
  return true;
}

}  // namespace io
}  // namespace loom
