#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "util/binomial.h"
#include "util/csv_writer.h"
#include "util/flat_map64.h"
#include "util/flat_set64.h"
#include "util/histogram.h"
#include "util/string_util.h"
#include "util/table_writer.h"
#include "util/timer.h"

namespace loom {
namespace util {
namespace {

// ---------------------------------------------------------------- binomial

TEST(BinomialTest, LogFactorialBasics) {
  EXPECT_NEAR(LogFactorial(0), 0.0, 1e-12);
  EXPECT_NEAR(LogFactorial(1), 0.0, 1e-12);
  EXPECT_NEAR(LogFactorial(5), std::log(120.0), 1e-9);
}

TEST(BinomialTest, CoefficientMatchesPascal) {
  EXPECT_NEAR(std::exp(LogBinomialCoefficient(5, 2)), 10.0, 1e-6);
  EXPECT_NEAR(std::exp(LogBinomialCoefficient(10, 0)), 1.0, 1e-6);
  EXPECT_NEAR(std::exp(LogBinomialCoefficient(10, 10)), 1.0, 1e-6);
  EXPECT_NEAR(std::exp(LogBinomialCoefficient(52, 5)), 2598960.0, 1.0);
}

TEST(BinomialTest, PmfEdgeCases) {
  EXPECT_DOUBLE_EQ(BinomialPmf(10, 0, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(BinomialPmf(10, 3, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(BinomialPmf(10, 10, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(BinomialPmf(10, 9, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(BinomialPmf(5, 6, 0.5), 0.0);  // k > n
}

TEST(BinomialTest, PmfSumsToOne) {
  for (double p : {0.1, 0.5, 0.9}) {
    double sum = 0;
    for (uint64_t k = 0; k <= 30; ++k) sum += BinomialPmf(30, k, p);
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST(BinomialTest, PmfMatchesClosedFormSmall) {
  // Binomial(4, 0.5): P(X=2) = 6/16.
  EXPECT_NEAR(BinomialPmf(4, 2, 0.5), 0.375, 1e-12);
}

TEST(BinomialTest, CdfMonotoneInK) {
  double prev = -1;
  for (uint64_t k = 0; k <= 20; ++k) {
    double c = BinomialCdf(20, k, 0.3);
    EXPECT_GE(c, prev);
    prev = c;
  }
  EXPECT_NEAR(prev, 1.0, 1e-9);
}

TEST(BinomialTest, CdfFullRangeIsOne) {
  EXPECT_DOUBLE_EQ(BinomialCdf(10, 10, 0.7), 1.0);
  EXPECT_DOUBLE_EQ(BinomialCdf(10, 25, 0.7), 1.0);
}

// ------------------------------------------------------------ table writer

TEST(TableWriterTest, AlignsAndUnderlines) {
  TableWriter t({"name", "value"});
  t.AddRow({"x", "1"});
  t.AddRow({"longer-name", "22"});
  std::ostringstream os;
  t.Print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("longer-name"), std::string::npos);
  EXPECT_NE(out.find("----"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(TableWriterTest, ShortRowsPadded) {
  TableWriter t({"a", "b", "c"});
  t.AddRow({"only"});
  std::ostringstream os;
  t.Print(os);
  EXPECT_NE(os.str().find("only"), std::string::npos);
}

TEST(TableWriterTest, Formatting) {
  EXPECT_EQ(TableWriter::Fmt(3.14159, 2), "3.14");
  EXPECT_EQ(TableWriter::Fmt(2.0, 0), "2");
  EXPECT_EQ(TableWriter::Pct(0.4215, 1), "42.1%");
  EXPECT_EQ(TableWriter::Pct(1.0, 0), "100%");
}

// -------------------------------------------------------------- csv writer

TEST(CsvWriterTest, EscapesSpecials) {
  EXPECT_EQ(CsvWriter::Escape("plain"), "plain");
  EXPECT_EQ(CsvWriter::Escape("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvWriter::Escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(CsvWriter::Escape("line\nbreak"), "\"line\nbreak\"");
}

TEST(CsvWriterTest, WritesRows) {
  std::ostringstream os;
  CsvWriter w(os);
  w.WriteRow({"a", "b,c", "d"});
  EXPECT_EQ(os.str(), "a,\"b,c\",d\n");
}

// ------------------------------------------------------------- string util

TEST(StringUtilTest, SplitKeepsEmptyFields) {
  EXPECT_EQ(Split("a-b-c", '-'), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("a--b", '-'), (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(Split("", '-'), (std::vector<std::string>{""}));
}

TEST(StringUtilTest, Trim) {
  EXPECT_EQ(Trim("  x  "), "x");
  EXPECT_EQ(Trim("x"), "x");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim("\ta b\n"), "a b");
}

TEST(StringUtilTest, StartsWith) {
  EXPECT_TRUE(StartsWith("hello", "he"));
  EXPECT_TRUE(StartsWith("hello", ""));
  EXPECT_FALSE(StartsWith("he", "hello"));
}

TEST(StringUtilTest, Join) {
  EXPECT_EQ(Join({"a", "b"}, ", "), "a, b");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"solo"}, ","), "solo");
}

TEST(StringUtilTest, HumanCount) {
  EXPECT_EQ(HumanCount(999), "999");
  EXPECT_EQ(HumanCount(1200), "1.2k");
  EXPECT_EQ(HumanCount(2500000), "2.5M");
  EXPECT_EQ(HumanCount(1300000000ULL), "1.3B");
}

// ------------------------------------------------------------------- timer

TEST(TimerTest, MonotoneNonNegative) {
  Timer t;
  int64_t a = t.ElapsedUs();
  int64_t b = t.ElapsedUs();
  EXPECT_GE(a, 0);
  EXPECT_GE(b, a);
  EXPECT_GE(t.ElapsedMs(), 0.0);
  EXPECT_GE(t.ElapsedSeconds(), 0.0);
}

// ------------------------------------------------------------ flat set/map

TEST(FlatSet64Test, InsertContainsErase) {
  FlatSet64 s;
  EXPECT_TRUE(s.empty());
  EXPECT_TRUE(s.Insert(42));
  EXPECT_FALSE(s.Insert(42));  // duplicate
  EXPECT_TRUE(s.Contains(42));
  EXPECT_FALSE(s.Contains(43));
  EXPECT_EQ(s.size(), 1u);
  EXPECT_TRUE(s.Erase(42));
  EXPECT_FALSE(s.Erase(42));
  EXPECT_FALSE(s.Contains(42));
  EXPECT_TRUE(s.empty());
}

TEST(FlatSet64Test, SurvivesGrowthAndChurn) {
  FlatSet64 s;
  // Heavy insert/erase churn with a small live set: the table must stay
  // correct across rehashes and tombstone recycling.
  for (uint64_t round = 0; round < 50; ++round) {
    for (uint64_t i = 0; i < 100; ++i) {
      EXPECT_TRUE(s.Insert(round * 1000 + i));
    }
    for (uint64_t i = 0; i < 100; ++i) {
      EXPECT_TRUE(s.Contains(round * 1000 + i));
    }
    for (uint64_t i = 0; i < 95; ++i) {
      EXPECT_TRUE(s.Erase(round * 1000 + i));
    }
  }
  EXPECT_EQ(s.size(), 50u * 5u);
  EXPECT_TRUE(s.Contains(49 * 1000 + 97));
  EXPECT_FALSE(s.Contains(49 * 1000 + 3));
}

TEST(FlatMap64Test, InsertFindOverwriteClear) {
  FlatMap64<int> m;
  EXPECT_EQ(m.Find(7), nullptr);
  m.Insert(7, 70);
  m.Insert(9, 90);
  ASSERT_NE(m.Find(7), nullptr);
  EXPECT_EQ(*m.Find(7), 70);
  m.Insert(7, 71);  // overwrite
  EXPECT_EQ(*m.Find(7), 71);
  EXPECT_EQ(m.size(), 2u);
  for (uint64_t i = 100; i < 400; ++i) m.Insert(i, static_cast<int>(i));
  for (uint64_t i = 100; i < 400; ++i) {
    ASSERT_NE(m.Find(i), nullptr) << i;
    EXPECT_EQ(*m.Find(i), static_cast<int>(i));
  }
  m.Clear();
  EXPECT_EQ(m.size(), 0u);
  EXPECT_EQ(m.Find(7), nullptr);
}

TEST(TimerTest, StartResets) {
  Timer t;
  // Burn a little time.
  volatile double x = 0;
  for (int i = 0; i < 100000; ++i) x = x + i;
  (void)x;
  int64_t before = t.ElapsedUs();
  t.Start();
  EXPECT_LE(t.ElapsedUs(), before + 1000000);
}

TEST(HistogramTest, EmptyIsZeroEverywhere) {
  Histogram h;
  const HistogramSnapshot s = h.Snapshot();
  EXPECT_EQ(s.Count(), 0u);
  EXPECT_EQ(s.max, 0u);
  EXPECT_EQ(s.Quantile(0.5), 0u);
  EXPECT_EQ(s.Summary(), "n=0");
}

TEST(HistogramTest, BucketsByBitWidth) {
  Histogram h;
  h.Add(0);
  h.Add(1);
  h.Add(2);
  h.Add(3);
  h.Add(4, 3);  // weighted
  const HistogramSnapshot s = h.Snapshot();
  EXPECT_EQ(s.buckets[0], 1u);  // value 0
  EXPECT_EQ(s.buckets[1], 1u);  // value 1
  EXPECT_EQ(s.buckets[2], 2u);  // values in [2, 3]
  EXPECT_EQ(s.buckets[3], 3u);  // values in [4, 7]
  EXPECT_EQ(s.Count(), 7u);
  EXPECT_EQ(s.max, 4u);
}

TEST(HistogramTest, QuantilesWalkBucketsAndClampToMax) {
  Histogram h;
  h.Add(100, 99);  // bucket 7: [64, 127]
  h.Add(5000);     // bucket 13: [4096, 8191]
  const HistogramSnapshot s = h.Snapshot();
  // p50 lands in the 99-sample bucket: its midpoint.
  EXPECT_EQ(s.Quantile(0.5), 64u + (127u - 64u) / 2);
  // p100 lands in the tail bucket, whose midpoint (6143) exceeds the
  // observed max — the estimate must clamp to it.
  EXPECT_EQ(s.Quantile(1.0), 5000u);
  EXPECT_EQ(s.max, 5000u);
}

// Nearest-rank with ceil (1-based): rank ⌈q·n⌉. The old floor-based rank
// rounded small samples down a whole rank (p90 of 10 samples picked the
// 9th instead of the ⌈9⌉th = 9th but p50 of 3 picked the 1st instead of
// the 2nd) and sent p100 to a bucket midpoint instead of the true max.
TEST(HistogramTest, QuantileUsesCeilNearestRank) {
  Histogram h;
  h.Add(1);   // bucket 1
  h.Add(2);   // bucket 2
  h.Add(8);   // bucket 4: [8, 15]
  const HistogramSnapshot s = h.Snapshot();
  // n=3: p50 → rank ⌈1.5⌉ = 2 → the middle sample's bucket.
  EXPECT_EQ(s.Quantile(0.5), 2u);
  // p0 → rank clamps up to 1 → the smallest sample's bucket.
  EXPECT_EQ(s.Quantile(0.0), 1u);
  // p100 → the tracked maximum exactly, never a midpoint estimate.
  EXPECT_EQ(s.Quantile(1.0), 8u);
  // Out-of-domain q behaves as the nearest endpoint.
  EXPECT_EQ(s.Quantile(-0.5), 1u);
  EXPECT_EQ(s.Quantile(2.0), 8u);
}

TEST(HistogramTest, SingleSampleIsEveryQuantile) {
  Histogram h;
  h.Add(700);  // bucket 10: [512, 1023], midpoint 767
  const HistogramSnapshot s = h.Snapshot();
  EXPECT_EQ(s.Quantile(0.0), 700u);
  EXPECT_EQ(s.Quantile(0.5), 700u);
  EXPECT_EQ(s.Quantile(0.99), 700u);
  EXPECT_EQ(s.Quantile(1.0), 700u);
}

// A bucket whose midpoint overshoots the observed max must clamp at every
// quantile that lands in it, not only at p100.
TEST(HistogramTest, SaturatedBucketClampsMidQuantilesToMax) {
  Histogram h;
  h.Add(4100, 10);  // all mass in bucket 13 [4096, 8191], midpoint 6143
  const HistogramSnapshot s = h.Snapshot();
  EXPECT_EQ(s.Quantile(0.5), 4100u);
  EXPECT_EQ(s.Quantile(0.9), 4100u);
  EXPECT_EQ(s.Quantile(1.0), 4100u);
}

TEST(HistogramTest, ResetClears) {
  Histogram h;
  h.Add(42, 10);
  h.Reset();
  EXPECT_EQ(h.Snapshot().Count(), 0u);
  EXPECT_EQ(h.Snapshot().max, 0u);
}

TEST(HistogramTest, FormatNsTiers) {
  EXPECT_EQ(HistogramSnapshot::FormatNs(874), "874ns");
  EXPECT_EQ(HistogramSnapshot::FormatNs(12'300), "12.3us");
  EXPECT_EQ(HistogramSnapshot::FormatNs(4'700'000), "4.7ms");
  EXPECT_EQ(HistogramSnapshot::FormatNs(1'200'000'000), "1.20s");
}

}  // namespace
}  // namespace util
}  // namespace loom
