// Synthetic LUBM-like university benchmark graph (15 labels).
//
// Follows the LUBM generator's profile, scaled: universities contain
// departments; departments employ professors (full/associate/assistant) and
// lecturers, host research groups, enrol under/graduate students; students
// take courses taught by faculty; graduate students have advisors and act as
// teaching/research assistants; faculty and graduate students co-author
// publications. The `universities` knob mirrors LUBM-N's N.

#ifndef LOOM_DATASETS_LUBM_GENERATOR_H_
#define LOOM_DATASETS_LUBM_GENERATOR_H_

#include <cstdint>

#include "datasets/graph_sink.h"
#include "datasets/schema.h"

namespace loom {
namespace datasets {

struct LubmConfig {
  /// LUBM-N's N, at reproduction scale (departments are smaller than the
  /// original profile so large N remains laptop sized).
  size_t universities = 12;
  /// Departments per university (LUBM: 15-25; scaled default keeps shape).
  size_t min_departments = 4;
  size_t max_departments = 8;
  uint64_t seed = 0x10BA;
  /// Dataset display name ("lubm-100" / "lubm-4000").
  const char* name = "lubm";
};

Dataset GenerateLubm(const LubmConfig& config);

/// Emit-only path (see graph_sink.h): same walk, no materialised graph —
/// how LUBM streams at full paper scale without building the graph.
void EmitLubm(const LubmConfig& config, graph::LabelRegistry* registry,
              GraphSink* sink);

}  // namespace datasets
}  // namespace loom

#endif  // LOOM_DATASETS_LUBM_GENERATOR_H_
